(* The quad-core RV64 case study: two CPU clusters, four memory banks, two
   UARTs, virtio devices and virtual network channels, partitioned into
   three VMs — the full llhsc workflow at a larger scale than the paper's
   CustomSBC.

     dune exec examples/quad_rv64.exe            # run the workflow
     dune exec examples/quad_rv64.exe -- dump D  # materialise fixture in D

   The dump mode writes the embedded fixture (DTS, feature model, deltas,
   schemas, VM selections) as files, so the CLI — and CI's parallel smoke
   job — can run `llhsc pipeline`/`llhsc build` against the same case
   study the in-process tests use. *)

module Q = Llhsc.Quad_rv64

let dump dir =
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let mkdir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
  mkdir dir;
  let p f = Filename.concat dir f in
  write (p "quad-rv64.dts") Q.core_dts;
  write (p "quad-rv64.fm") Q.feature_model_src;
  write (p "quad-rv64.deltas") Q.deltas_src;
  mkdir (p "schemas");
  List.iteri
    (fun i src -> write (p (Printf.sprintf "schemas/schema-%d.yaml" i)) src)
    Q.schemas_src;
  let vms = [ Q.vm1_features; Q.vm2_features; Q.vm3_features ] in
  (* One comma-joined selection per line: shell-friendly input for
     building repeated `--vm` flags. *)
  write (p "vms.txt")
    (String.concat "\n" (List.map (String.concat ",") vms) ^ "\n");
  (* And the same run as a project file for `llhsc build`. *)
  write (p "quad-rv64.proj.yaml")
    (String.concat "\n"
       ([ "core: quad-rv64.dts";
          "deltas: [quad-rv64.deltas]";
          "model: quad-rv64.fm";
          "schemas: schemas";
          "exclusive: [" ^ String.concat ", " Q.exclusive ^ "]";
          "vms:" ]
       @ List.map
           (fun fs -> "  - features: [" ^ String.concat ", " fs ^ "]")
           vms)
    ^ "\n");
  Fmt.pr "quad_rv64 fixture written to %s@." dir

let run () =
  let env = Featuremodel.Analysis.encode (Q.feature_model ()) in
  Fmt.pr "QuadRV64 feature model: %d valid products@.@."
    (Featuremodel.Analysis.count_products env);

  let outcome = Q.run_pipeline () in
  Fmt.pr "%a@." Llhsc.Pipeline.pp_outcome outcome;
  if not (Llhsc.Pipeline.ok outcome) then exit 1;

  let product name =
    List.find (fun p -> p.Llhsc.Pipeline.name = name) outcome.Llhsc.Pipeline.products
  in
  let platform = (product "platform").Llhsc.Pipeline.tree in
  Fmt.pr "== platform.c ==@.%s@." (Bao.Platform.to_c (Bao.Platform.of_tree platform));
  let vms =
    List.filter (fun p -> p.Llhsc.Pipeline.name <> "platform") outcome.Llhsc.Pipeline.products
    |> List.map (fun p -> (p.Llhsc.Pipeline.name, p.Llhsc.Pipeline.tree))
  in
  Fmt.pr "== config.c (3 VMs) ==@.%s@." (Bao.Config.to_c (Bao.Config.of_vm_trees vms));
  Fmt.pr "== QEMU, vm1 ==@.%s@."
    (Bao.Qemu.command_line ~arch:Bao.Qemu.Rv64 (product "vm1").Llhsc.Pipeline.tree)

let () =
  match Sys.argv with
  | [| _; "dump"; dir |] -> dump dir
  | _ -> run ()
