(* llhsc benchmark harness.

   The paper (DSN'23) is a tool paper whose evaluation is the running
   example; its reproducible artifacts are figures/listings plus claims in
   the text.  This harness has two parts:

   1. An *experiment report* (printed first): each experiment E1..E11 from
      DESIGN.md is executed and its measured outcome is printed next to the
      paper's claim.  This is the data recorded in EXPERIMENTS.md.

   2. *Timing benches* (Bechamel, one Test.make per experiment id),
      including the scaling sweeps E10/E11 and the ablations (E12
      incremental-vs-scratch, CDCL-vs-DPLL) that characterise the solver
      substrate standing in for Z3.

     dune exec bench/main.exe            # full run
     dune exec bench/main.exe -- report  # experiment report only *)

open Bechamel

module RE = Llhsc.Running_example
module T = Devicetree.Tree

(* ------------------------------------------------------------------ *)
(* Shared workloads                                                     *)
(* ------------------------------------------------------------------ *)

let run_pipeline () =
  Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
    ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
    ~vm_requests:[ RE.vm1_features; RE.vm2_features ] ()

let clash_tree () =
  let t = RE.core_tree () in
  T.set_prop t ~path:"/uart@20000000" "reg"
    [ Devicetree.Ast.Cells
        { bits = 32;
          cells = List.map (fun v -> Devicetree.Ast.Cell_int v) [ 0x0L; 0x60000000L; 0x0L; 0x1000L ]
        }
    ]

let truncated_tree () =
  let deltas = List.filter (fun d -> d.Delta.Lang.name <> "d4") (RE.deltas ()) in
  Delta.Apply.generate ~core:(RE.core_tree ()) ~deltas ~selected:RE.vm1_features

(* Synthetic tree with [n] disjoint device nodes (for the E11 sweep). *)
let synthetic_tree n =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "/dts-v1/;\n/ { #address-cells = <1>; #size-cells = <1>;\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  dev%d@%x { reg = <0x%x 0x1000>; };\n" i (0x10000000 + (i * 0x10000))
         (0x10000000 + (i * 0x10000)))
  done;
  Buffer.add_string buf "};\n";
  T.of_source ~file:"synthetic.dts" (Buffer.contents buf)

(* Synthetic feature model: [groups] XOR groups of [width] children each. *)
let synthetic_model ~groups ~width =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "feature abstract Root {\n";
  for g = 0 to groups - 1 do
    Buffer.add_string buf (Printf.sprintf "  mandatory abstract g%d xor {\n" g);
    for c = 0 to width - 1 do
      Buffer.add_string buf (Printf.sprintf "    g%dc%d;\n" g c)
    done;
    Buffer.add_string buf "  }\n"
  done;
  Buffer.add_string buf "}\n";
  Featuremodel.Parse.parse (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Part 1: experiment report (paper claim vs measured)                  *)
(* ------------------------------------------------------------------ *)

let check mark = if mark then "OK" else "DIFFERS"

let report () =
  Fmt.pr "==================================================================@.";
  Fmt.pr "llhsc experiment report (paper claim vs measured)@.";
  Fmt.pr "==================================================================@.";

  (* E1: Fig. 1a has 12 valid products. *)
  let env = Featuremodel.Analysis.encode (RE.feature_model ()) in
  let nproducts = Featuremodel.Analysis.count_products env in
  Fmt.pr "E1  (Fig 1a)   valid products:           paper=12        measured=%d  [%s]@."
    nproducts (check (nproducts = 12));

  (* E2: Fig. 1b/1c products are valid; max 2 VMs. *)
  let fig1b = Featuremodel.Analysis.is_valid_product env RE.vm1_features in
  let fig1c = Featuremodel.Analysis.is_valid_product env RE.vm2_features in
  let maxvms = Featuremodel.Multi.max_vms ~exclusive:RE.exclusive (RE.feature_model ()) in
  Fmt.pr "E2  (Fig 1b/c) products valid, max VMs:  paper=yes,2     measured=%b/%b,%d  [%s]@."
    fig1b fig1c maxvms (check (fig1b && fig1c && maxvms = 2));

  (* E3: end-to-end pipeline green. *)
  let outcome = run_pipeline () in
  Fmt.pr "E3  (Fig 2)    end-to-end checks:        paper=green     measured=%s  [%s]@."
    (if Llhsc.Pipeline.ok outcome then "green" else "red")
    (check (Llhsc.Pipeline.ok outcome));

  (* E4: delta orders d3 < d4 < d_add. *)
  let order1 = List.assoc "vm1" outcome.Llhsc.Pipeline.delta_orders in
  let order2 = List.assoc "vm2" outcome.Llhsc.Pipeline.delta_orders in
  let pos x xs =
    let rec go i = function [] -> -1 | y :: r -> if x = y then i else go (i + 1) r in
    go 0 xs
  in
  let ok1 = pos "d3" order1 < pos "d4" order1 && pos "d4" order1 < pos "d1" order1 in
  let ok2 = pos "d3" order2 < pos "d4" order2 && pos "d4" order2 < pos "d2" order2 in
  Fmt.pr "E4  (SIII-B)   delta orders:             paper=d3<d4<add measured=%s; %s  [%s]@."
    (String.concat "<" order1) (String.concat "<" order2)
    (check (ok1 && ok2));

  (* E5: uart/memory clash detected semantically, invisible syntactically. *)
  let t5 = clash_tree () in
  let direct5 =
    Llhsc.Report.errors (Llhsc.Syntactic.check_direct ~schemas:(RE.schemas_for t5) t5)
  in
  let sem5 = Llhsc.Semantic.check_memory t5 in
  Fmt.pr "E5  (SI-A)     uart clash:               paper=sem-only  measured=dt-schema:%d llhsc:%d  [%s]@."
    (List.length direct5) (List.length sem5)
    (check (direct5 = [] && List.length sem5 = 1));

  (* E6: omitting d4 -> 4 banks, collision at 0x0. *)
  let t6 = truncated_tree () in
  let banks =
    Devicetree.Addresses.decode_reg ~address_cells:1 ~size_cells:1
      (Option.get (T.get_prop (T.find_exn t6 "/memory@40000000") "reg"))
  in
  let sem6 = Llhsc.Semantic.check_memory t6 in
  let at_zero =
    List.exists (fun f -> Llhsc.Util.contains f.Llhsc.Report.message "at address 0x0") sem6
  in
  Fmt.pr "E6  (SIV-C)    64->32 truncation:        paper=4banks@@0  measured=%dbanks,0x0:%b  [%s]@."
    (List.length banks) at_zero
    (check (List.length banks = 4 && at_zero));

  (* E7: constraints (1)-(6) discharge; a const mutation flips to UNSAT. *)
  let smt_fails tree =
    Schema.Compile.check_tree (Smt.Solver.create ()) ~schemas:(RE.schemas_for tree) tree
  in
  let intact = smt_fails (RE.core_tree ()) = [] in
  let broken =
    smt_fails
      (T.set_prop (RE.core_tree ()) ~path:"/memory@40000000" "device_type"
         [ Devicetree.Ast.Str "ram" ])
    <> []
  in
  Fmt.pr "E7  (Lst 5)    constraints (1)-(6):      paper=SAT/UNSAT measured=%b/%b  [%s]@."
    intact broken (check (intact && broken));

  (* E8: platform.c fields match Listing 3. *)
  let platform_prod =
    List.find (fun p -> p.Llhsc.Pipeline.name = "platform") outcome.Llhsc.Pipeline.products
  in
  let pc = Bao.Platform.to_c (Bao.Platform.of_tree platform_prod.Llhsc.Pipeline.tree) in
  let has s = Llhsc.Util.contains pc s in
  let e8 =
    has ".cpu_num = 2" && has ".region_num = 2"
    && has "{ .base = 0x40000000, .size = 0x20000000 }"
    && has "{ .base = 0x60000000, .size = 0x20000000 }"
    && has ".core_num = (uint8_t[]) {2}"
  in
  Fmt.pr "E8  (Lst 3)    platform_desc fields:     paper=match     measured=%s  [%s]@."
    (if e8 then "match" else "mismatch") (check e8);

  (* E9: struct config fields match Listing 6's shape. *)
  let vms =
    List.filter (fun p -> p.Llhsc.Pipeline.name <> "platform") outcome.Llhsc.Pipeline.products
  in
  let cc =
    Bao.Config.to_c
      (Bao.Config.of_vm_trees
         (List.map (fun p -> (p.Llhsc.Pipeline.name, p.Llhsc.Pipeline.tree)) vms))
  in
  let hasc s = Llhsc.Util.contains cc s in
  let e9 =
    hasc ".vmlist_size = 2" && hasc ".entry = 0x40000000"
    && hasc "{ .pa = 0x20000000, .va = 0x20000000, .size = 0x1000 }"
    && hasc ".ipc_num = 1" && hasc ".shmemlist_size = 2"
  in
  Fmt.pr "E9  (Lst 6)    struct config fields:     paper=match     measured=%s  [%s]@."
    (if e9 then "match" else "mismatch") (check e9);

  (* E10/E11 functional outcomes (timings in part 2). *)
  let t0 = Unix.gettimeofday () in
  let m =
    Featuremodel.Multi.encode ~exclusive:[ "g0" ] (synthetic_model ~groups:4 ~width:8) ~vms:4
  in
  let alloc_sat = Featuremodel.Multi.is_allocatable m in
  let t1 = Unix.gettimeofday () in
  Fmt.pr "E10 (SIV-A)    alloc 4 VMs x 8 cpus:     sat=%b in %.1f ms@." alloc_sat
    ((t1 -. t0) *. 1000.);
  let t0 = Unix.gettimeofday () in
  let n_overlaps = List.length (Llhsc.Semantic.check_memory (synthetic_tree 64)) in
  let t1 = Unix.gettimeofday () in
  Fmt.pr "E11 (frm 7)    overlap check, 64 regions: collisions=%d in %.1f ms@." n_overlaps
    ((t1 -. t0) *. 1000.);
  (* E13: cross-VM partitioning — shared hardware warns, d7/d8 partition. *)
  let shared_warnings = List.length outcome.Llhsc.Pipeline.partition_findings in
  let partitioned =
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
      ~core:(RE.core_tree ()) ~deltas:(RE.partitioned_deltas ())
      ~schemas_for:RE.schemas_for
      ~vm_requests:[ RE.vm1_partitioned_features; RE.vm2_partitioned_features ] ()
  in
  let part_findings = List.length partitioned.Llhsc.Pipeline.partition_findings in
  Fmt.pr
    "E13 (SI-A)     RAM partitioning:         shared=%d warn  partitioned=%d  [%s]@."
    shared_warnings part_findings
    (check (shared_warnings = 4 && part_findings = 0));
  (* E14: the quad-core RV64 case study, three VMs fully partitioned. *)
  let quad = Llhsc.Quad_rv64.run_pipeline () in
  Fmt.pr "E14 (scale)    quad RV64, 3 VMs:         green=%b cross-VM=%d  [%s]@."
    (Llhsc.Pipeline.ok quad)
    (List.length quad.Llhsc.Pipeline.partition_findings)
    (check (Llhsc.Pipeline.ok quad && quad.Llhsc.Pipeline.partition_findings = []));
  Fmt.pr "==================================================================@.@."

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel timing benches                                      *)
(* ------------------------------------------------------------------ *)

let stage = Staged.stage

let e1_bench =
  Test.make ~name:"E01-fig1-count-products"
    (stage @@ fun () ->
    Featuremodel.Analysis.count_products (Featuremodel.Analysis.encode (RE.feature_model ())))

let e2_bench =
  Test.make ~name:"E02-fig1-two-vm-allocation"
    (stage @@ fun () ->
    Llhsc.Alloc.allocate ~exclusive:RE.exclusive (RE.feature_model ()) ~vms:2
      ~requests:[ Llhsc.Alloc.request 1 [ "veth0" ]; Llhsc.Alloc.request 2 [ "veth1" ] ])

let e3_bench = Test.make ~name:"E03-fig2-end-to-end" (stage run_pipeline)

let e4_bench =
  let deltas = RE.deltas () in
  Test.make ~name:"E04-delta-linearize"
    (stage @@ fun () -> Delta.Apply.order ~selected:RE.vm1_features deltas)

let e5_bench =
  let tree = clash_tree () in
  Test.make ~name:"E05-clash-detection" (stage @@ fun () -> Llhsc.Semantic.check_memory tree)

let e6_bench =
  let tree = truncated_tree () in
  Test.make ~name:"E06-truncation-detection"
    (stage @@ fun () -> Llhsc.Semantic.check_memory tree)

let e7_bench =
  let tree = RE.core_tree () in
  let schemas = RE.schemas_for tree in
  Test.make ~name:"E07-syntactic-smt"
    (stage @@ fun () -> Schema.Compile.check_tree (Smt.Solver.create ()) ~schemas tree)

let e7_baseline_bench =
  let tree = RE.core_tree () in
  let schemas = RE.schemas_for tree in
  Test.make ~name:"E07-syntactic-direct-baseline"
    (stage @@ fun () -> Schema.Validate.check schemas tree)

let e8_bench =
  let outcome = run_pipeline () in
  let platform =
    (List.find (fun p -> p.Llhsc.Pipeline.name = "platform") outcome.Llhsc.Pipeline.products)
      .Llhsc.Pipeline.tree
  in
  Test.make ~name:"E08-gen-platform-config"
    (stage @@ fun () -> Bao.Platform.to_c (Bao.Platform.of_tree platform))

let e9_bench =
  let outcome = run_pipeline () in
  let vms =
    List.filter (fun p -> p.Llhsc.Pipeline.name <> "platform") outcome.Llhsc.Pipeline.products
    |> List.map (fun p -> (p.Llhsc.Pipeline.name, p.Llhsc.Pipeline.tree))
  in
  Test.make ~name:"E09-gen-vm-config"
    (stage @@ fun () -> Bao.Config.to_c (Bao.Config.of_vm_trees vms))

(* E10: allocation solving time vs problem size (n cpus x m VMs). *)
let e10_benches =
  List.map
    (fun (width, vms) ->
      let model = synthetic_model ~groups:2 ~width in
      Test.make ~name:(Printf.sprintf "E10-alloc-scaling-n%02d-m%d" width vms)
        (stage @@ fun () ->
        Featuremodel.Multi.is_allocatable
          (Featuremodel.Multi.encode ~exclusive:[ "g0" ] model ~vms)))
    [ (4, 2); (8, 2); (8, 4); (16, 4); (32, 4); (32, 8) ]

(* E11: overlap checking time vs number of regions, in both the
   paper-faithful all-pairs formulation and with the sweep prefilter. *)
let e11_benches =
  List.concat_map
    (fun n ->
      let tree = synthetic_tree n in
      [ Test.make ~name:(Printf.sprintf "E11-overlap-pairwise-%03d" n)
          (stage @@ fun () -> Llhsc.Semantic.check_memory ~strategy:`Pairwise tree);
        Test.make ~name:(Printf.sprintf "E11-overlap-sweep-%03d" n)
          (stage @@ fun () -> Llhsc.Semantic.check_memory ~strategy:`Sweep tree)
      ])
    [ 2; 8; 32 ]

(* E12: incremental (one solver, push/pop) vs from-scratch solving — the
   paper's §VI argument for adding constraints to the same Z3 instance. *)
let e12_regions =
  List.init 12 (fun i ->
      { Llhsc.Semantic.owner = Printf.sprintf "/dev%d" i;
        region = { Devicetree.Addresses.base = Int64.of_int (0x1000 * i); size = 0x800L };
        loc = Devicetree.Loc.dummy
      })

let all_pairs =
  let rec pairs = function
    | [] -> []
    | r :: rest -> List.map (fun r' -> (r, r')) rest @ pairs rest
  in
  pairs e12_regions

let e12_incremental =
  Test.make ~name:"E12-incremental-one-solver"
    (stage @@ fun () ->
    let solver = Smt.Solver.create () in
    List.iter
      (fun (a, b) -> ignore (Llhsc.Semantic.pair_overlap solver a b : [ `Overlap of int64 | `Disjoint | `Inconclusive ]))
      all_pairs)

let e12_scratch =
  Test.make ~name:"E12-scratch-solver-per-query"
    (stage @@ fun () ->
    List.iter
      (fun (a, b) ->
        let solver = Smt.Solver.create () in
        ignore (Llhsc.Semantic.pair_overlap solver a b : [ `Overlap of int64 | `Disjoint | `Inconclusive ]))
      all_pairs)

(* Ablation: CDCL vs plain DPLL on the same Tseitin encoding of a
   feature-model formula. *)
let ablation_model = synthetic_model ~groups:3 ~width:6

let ablation_formula num_vars_ref =
  (* Atoms are pre-numbered 0..n-1 so both solvers see identical CNF. *)
  let names = Featuremodel.Model.feature_names ablation_model in
  let vars = List.mapi (fun i n -> (n, i)) names in
  num_vars_ref := List.length names;
  Featuremodel.Analysis.formula ablation_model (fun n -> List.assoc n vars)

let ablation_cdcl =
  Test.make ~name:"ablation-cdcl-fm-sat"
    (stage @@ fun () ->
    let nv = ref 0 in
    let formula = ablation_formula nv in
    let solver = Sat.Solver.create () in
    for _ = 1 to !nv do
      ignore (Sat.Solver.new_var solver : int)
    done;
    ignore (Sat.Formula.assert_in solver formula : bool);
    Sat.Solver.solve solver)

let ablation_dpll =
  Test.make ~name:"ablation-dpll-fm-sat"
    (stage @@ fun () ->
    let nv = ref 0 in
    let formula = ablation_formula nv in
    let problem = Sat.Dpll.of_formula ~num_vars:!nv formula in
    Sat.Dpll.solve problem)

let e14_bench =
  Test.make ~name:"E14-quad-rv64-pipeline"
    (stage @@ fun () -> Llhsc.Quad_rv64.run_pipeline ())

(* Certification column: the same workload with proof logging + independent
   checking of every verdict.  The delta vs E14 is the certification
   overhead reported in BENCH_certify.json. *)
let e14_certify_bench =
  Test.make ~name:"E14-quad-rv64-certify"
    (stage @@ fun () -> Llhsc.Quad_rv64.run_pipeline ~certify:true ())

let e13_bench =
  Test.make ~name:"E13-partition-check"
    (stage @@ fun () ->
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
      ~core:(RE.core_tree ()) ~deltas:(RE.partitioned_deltas ())
      ~schemas_for:RE.schemas_for
      ~vm_requests:[ RE.vm1_partitioned_features; RE.vm2_partitioned_features ] ())

let all_tests =
  [ e1_bench; e2_bench; e3_bench; e4_bench; e5_bench; e6_bench; e7_bench;
    e7_baseline_bench; e8_bench; e9_bench ]
  @ e10_benches @ e11_benches
  @ [ e12_incremental; e12_scratch; e13_bench; e14_bench; e14_certify_bench;
      ablation_cdcl; ablation_dpll ]

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  Fmt.pr "benchmarks (time per run, OLS estimate over monotonic clock):@.";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols (List.hd instances) raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ e ] -> e
            | Some _ | None -> nan
          in
          let name = Test.Elt.name elt in
          if ns > 1_000_000. then Fmt.pr "  %-36s %10.3f ms/run@." name (ns /. 1_000_000.)
          else if ns > 1_000. then Fmt.pr "  %-36s %10.3f us/run@." name (ns /. 1_000.)
          else Fmt.pr "  %-36s %10.1f ns/run@." name ns)
        (Test.elements test))
    all_tests

(* ------------------------------------------------------------------ *)
(* Certification overhead measurement (BENCH_certify.json)              *)
(* ------------------------------------------------------------------ *)

(* Median wall-clock of [runs] executions of [f]. *)
let median_ms ~runs f =
  let samples =
    List.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        (Unix.gettimeofday () -. t0) *. 1000.)
  in
  match List.sort compare samples with
  | s -> List.nth s (runs / 2)

let write_certify_json path =
  let runs = 11 in
  let plain_ms = median_ms ~runs (fun () -> Llhsc.Quad_rv64.run_pipeline ()) in
  let certify_ms =
    median_ms ~runs (fun () -> Llhsc.Quad_rv64.run_pipeline ~certify:true ())
  in
  let outcome = Llhsc.Quad_rv64.run_pipeline ~certify:true () in
  let queries, steps, check_ms, failures =
    match outcome.Llhsc.Pipeline.cert with
    | None -> (0, 0, 0., 0)
    | Some r ->
      ( List.length r.Smt.Solver.certs,
        List.fold_left (fun a (c : Smt.Solver.cert) -> a + c.steps) 0 r.Smt.Solver.certs,
        1000.
        *. List.fold_left (fun a (c : Smt.Solver.cert) -> a +. c.time) 0. r.Smt.Solver.certs,
        List.length r.Smt.Solver.failures )
  in
  Llhsc.Durable.with_file ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "workload": "quad_rv64 pipeline (3 VMs + platform)",
  "runs": %d,
  "plain_ms": %.3f,
  "certify_ms": %.3f,
  "overhead_pct": %.1f,
  "certified_queries": %d,
  "trace_steps_total": %d,
  "checker_ms": %.3f,
  "failures": %d
}
|}
    runs plain_ms certify_ms
    (100. *. ((certify_ms /. plain_ms) -. 1.))
    queries steps check_ms failures);
  Fmt.pr "wrote %s (plain %.2f ms, certify %.2f ms, %d queries, %d steps)@." path
    plain_ms certify_ms queries steps

(* ------------------------------------------------------------------ *)
(* Resilience measurement (BENCH_resilience.json)                       *)
(* ------------------------------------------------------------------ *)

(* The fail-operational column: quad_rv64 under a deliberately tight solver
   budget, with and without the retry-with-escalation ladder, plus the cost
   of journaling the run and of resuming from that journal. *)

let count_inconclusive (outcome : Llhsc.Pipeline.outcome) =
  let contains_inconclusive msg =
    let n = String.length msg and p = "inconclusive" in
    let k = String.length p in
    let rec scan i = i + k <= n && (String.sub msg i k = p || scan (i + 1)) in
    scan 0
  in
  let count fs =
    List.length
      (List.filter (fun (f : Llhsc.Report.finding) -> contains_inconclusive f.message) fs)
  in
  List.fold_left
    (fun acc (p : Llhsc.Pipeline.product) -> acc + count p.findings)
    (count outcome.Llhsc.Pipeline.partition_findings)
    outcome.Llhsc.Pipeline.products

let write_resilience_json path =
  let runs = 11 in
  let budget () = Sat.Solver.budget ~max_propagations:2000 () in
  let retry () = Smt.Escalation.ladder ~attempts:3 () in
  let plain_ms = median_ms ~runs (fun () -> Llhsc.Quad_rv64.run_pipeline ~budget:(budget ()) ()) in
  let retry_ms =
    median_ms ~runs (fun () ->
        Llhsc.Quad_rv64.run_pipeline ~budget:(budget ()) ~retry:(retry ()) ())
  in
  let plain = Llhsc.Quad_rv64.run_pipeline ~budget:(budget ()) () in
  let escalated = Llhsc.Quad_rv64.run_pipeline ~budget:(budget ()) ~retry:(retry ()) () in
  let total_queries, retried, recovered, attempts_total =
    match escalated.Llhsc.Pipeline.retry with
    | None -> (0, 0, 0, 0)
    | Some r ->
      ( r.Smt.Solver.total_queries,
        List.length r.Smt.Solver.retried,
        List.length
          (List.filter (fun (e : Smt.Solver.retry_entry) -> e.recovered) r.Smt.Solver.retried),
        List.fold_left
          (fun a (e : Smt.Solver.retry_entry) -> a + List.length e.attempts)
          0 r.Smt.Solver.retried )
  in
  (* Resume column: full-budget run journaled to a scratch file, then
     replayed.  Journal overhead = fsync'd record per product; resume cost =
     hash checks + delta re-application, no solver work. *)
  let journal_path = Filename.temp_file "llhsc-bench" ".jsonl" in
  let inputs_hash = Llhsc.Journal.inputs_hash ~parts:[ "bench-resilience" ] in
  let base_ms = median_ms ~runs (fun () -> Llhsc.Quad_rv64.run_pipeline ()) in
  let journal_ms =
    median_ms ~runs (fun () ->
        if Sys.file_exists journal_path then Sys.remove journal_path;
        let sink = Llhsc.Journal.open_ ~path:journal_path ~inputs_hash in
        let o = Llhsc.Quad_rv64.run_pipeline ~inputs_hash ~journal:sink () in
        Llhsc.Journal.close sink;
        o)
  in
  let entries = Llhsc.Journal.load ~path:journal_path ~inputs_hash in
  let resume_ms =
    median_ms ~runs (fun () -> Llhsc.Quad_rv64.run_pipeline ~inputs_hash ~resume:entries ())
  in
  Sys.remove journal_path;
  Llhsc.Durable.with_file ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "workload": "quad_rv64 pipeline (3 VMs + platform), max_propagations=2000",
  "runs": %d,
  "plain_ms": %.3f,
  "retry_ms": %.3f,
  "inconclusive_without_retry": %d,
  "inconclusive_with_retry": %d,
  "total_queries": %d,
  "queries_retried": %d,
  "queries_recovered": %d,
  "escalation_success_rate": %.3f,
  "attempts_per_retried_query": %.2f,
  "full_budget_ms": %.3f,
  "journal_ms": %.3f,
  "journal_overhead_pct": %.1f,
  "resume_ms": %.3f,
  "resume_vs_full_pct": %.1f
}
|}
    runs plain_ms retry_ms (count_inconclusive plain) (count_inconclusive escalated)
    total_queries retried recovered
    (if retried = 0 then 1. else float_of_int recovered /. float_of_int retried)
    (if retried = 0 then 1. else float_of_int attempts_total /. float_of_int retried)
    base_ms journal_ms
    (100. *. ((journal_ms /. base_ms) -. 1.))
    resume_ms
    (100. *. (resume_ms /. base_ms)));
  Fmt.pr
    "wrote %s (plain %.2f ms, retry %.2f ms, %d/%d retried queries recovered; resume %.2f ms vs full %.2f ms)@."
    path plain_ms retry_ms recovered retried resume_ms base_ms

(* ------------------------------------------------------------------ *)
(* Parallel check-phase measurement (BENCH_parallel.json)               *)
(* ------------------------------------------------------------------ *)

(* The --jobs column: quad_rv64 with the check phase sharded across forked
   workers.  Wall-clock speedup needs real cores, so the detected online
   CPU count is recorded next to the timings: on a single-core host the
   workers serialise and the ratio degrades to fork + pipe overhead, which
   is worth knowing but is not a scheduling regression. *)

let online_cpus () =
  try
    let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
    let n = try int_of_string (String.trim (input_line ic)) with _ -> 1 in
    ignore (Unix.close_process_in ic : Unix.process_status);
    max 1 n
  with _ -> 1

let outcome_string o = Fmt.str "%a" Llhsc.Pipeline.pp_outcome o

let write_parallel_json path =
  let runs = 11 in
  let time ?certify jobs =
    median_ms ~runs (fun () -> Llhsc.Quad_rv64.run_pipeline ?certify ~jobs ())
  in
  let j1 = time 1 in
  let j2 = time 2 in
  let j4 = time 4 in
  let c1 = time ~certify:true 1 in
  let c4 = time ~certify:true 4 in
  (* The determinism contract, asserted on the spot: the rendered report
     must not depend on the job count, certifying or not. *)
  let identical =
    outcome_string (Llhsc.Quad_rv64.run_pipeline ~jobs:4 ())
    = outcome_string (Llhsc.Quad_rv64.run_pipeline ~jobs:1 ())
    && outcome_string (Llhsc.Quad_rv64.run_pipeline ~certify:true ~jobs:4 ())
       = outcome_string (Llhsc.Quad_rv64.run_pipeline ~certify:true ~jobs:1 ())
  in
  let cpus = online_cpus () in
  Llhsc.Durable.with_file ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "workload": "quad_rv64 pipeline (3 VMs + platform), check phase sharded",
  "runs": %d,
  "online_cpus": %d,
  "jobs1_ms": %.3f,
  "jobs2_ms": %.3f,
  "jobs4_ms": %.3f,
  "speedup_jobs2": %.2f,
  "speedup_jobs4": %.2f,
  "certify_jobs1_ms": %.3f,
  "certify_jobs4_ms": %.3f,
  "certify_speedup_jobs4": %.2f,
  "reports_byte_identical": %b
}
|}
    runs cpus j1 j2 j4 (j1 /. j2) (j1 /. j4) c1 c4 (c1 /. c4) identical);
  Fmt.pr
    "wrote %s (%d cpus; j1 %.2f ms, j2 %.2f ms, j4 %.2f ms, speedup x%.2f; certify j1 %.2f ms, j4 %.2f ms, x%.2f; identical=%b)@."
    path cpus j1 j2 j4 (j1 /. j4) c1 c4 (c1 /. c4) identical

(* ------------------------------------------------------------------ *)
(* Supervision measurement (BENCH_supervision.json)                     *)
(* ------------------------------------------------------------------ *)

(* The self-healing column: what do leases/heartbeats/deadlines cost on a
   healthy run, and what does recovering from a SIGKILLed worker cost?
   The kill-recovery run must still merge byte-identically — asserted on
   the spot, like the parallel determinism contract. *)

let with_env var value f =
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var "") f

let write_supervision_json path =
  let runs = 11 in
  let time ?task_deadline ?mem_limit ?cpu_limit jobs =
    median_ms ~runs (fun () ->
        Llhsc.Quad_rv64.run_pipeline ?task_deadline ?mem_limit ?cpu_limit ~jobs ())
  in
  let j1 = time 1 in
  let j2 = time 2 in
  let j4 = time 4 in
  (* Supervised extras on a healthy run: lease clock + heartbeat parsing
     (deadline), plus rlimit installation in every worker (guards). *)
  let j4_deadline = time ~task_deadline:30. 4 in
  let j4_guarded = time ~task_deadline:30. ~mem_limit:2048 ~cpu_limit:300 4 in
  (* Kill-recovery: the worker dispatched task 0 SIGKILLs itself, crashes
     its replacement too, and the task is quarantined and retried
     in-process — the full supervision path on every run. *)
  let baseline = outcome_string (Llhsc.Quad_rv64.run_pipeline ~jobs:1 ()) in
  let kill_ms, kill_identical =
    with_env "LLHSC_FAULT_KILL_WORKER" "0" (fun () ->
        let ms =
          median_ms ~runs (fun () -> Llhsc.Quad_rv64.run_pipeline ~jobs:2 ())
        in
        (ms, outcome_string (Llhsc.Quad_rv64.run_pipeline ~jobs:2 ()) = baseline))
  in
  let identical =
    kill_identical
    && outcome_string
         (Llhsc.Quad_rv64.run_pipeline ~jobs:4 ~task_deadline:30. ~mem_limit:2048
            ~cpu_limit:300 ())
       = baseline
  in
  let cpus = online_cpus () in
  Llhsc.Durable.with_file ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "workload": "quad_rv64 pipeline (3 VMs + platform), supervised pool",
  "runs": %d,
  "online_cpus": %d,
  "jobs1_ms": %.3f,
  "jobs2_ms": %.3f,
  "jobs4_ms": %.3f,
  "jobs4_deadline_ms": %.3f,
  "deadline_overhead_pct": %.1f,
  "jobs4_guarded_ms": %.3f,
  "guard_overhead_pct": %.1f,
  "kill_recovery_jobs2_ms": %.3f,
  "kill_recovery_overhead_pct": %.1f,
  "reports_byte_identical": %b
}
|}
    runs cpus j1 j2 j4 j4_deadline
    (100. *. ((j4_deadline /. j4) -. 1.))
    j4_guarded
    (100. *. ((j4_guarded /. j4) -. 1.))
    kill_ms
    (100. *. ((kill_ms /. j2) -. 1.))
    identical);
  Fmt.pr
    "wrote %s (%d cpus; j4 %.2f ms, +deadline %.2f ms, +guards %.2f ms; kill-recovery %.2f ms vs j2 %.2f ms; identical=%b)@."
    path cpus j4 j4_deadline j4_guarded kill_ms j2 identical

(* ------------------------------------------------------------------ *)
(* Serve measurement (BENCH_serve.json)                                 *)
(* ------------------------------------------------------------------ *)

(* The daemon column: request latency through the full HTTP + fork/exec
   path on a healthy run, and the shed behaviour under a burst at 2x
   capacity.  The daemon is the real binary on an ephemeral port; the
   client is a minimal blocking HTTP/1.1 writer (one request per
   connection, matching the daemon's contract). *)

let serve_dts =
  "/dts-v1/;\n/ {\n\t#address-cells = <2>;\n\t#size-cells = <2>;\n\
   \tmemory@80000000 {\n\t\tdevice_type = \"memory\";\n\
   \t\treg = <0x0 0x80000000 0x0 0x40000000>;\n\t};\n};\n"

let serve_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.;
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let serve_send fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* Read to EOF (the daemon closes after one response); return the status. *)
let serve_read_status fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  try Scanf.sscanf (Buffer.contents buf) "HTTP/1.1 %d" (fun s -> s)
  with Scanf.Scan_failure _ | End_of_file -> -1

let serve_request ?(headers = "") port body =
  let fd = serve_connect port in
  serve_send fd
    (Printf.sprintf "POST /v1/check HTTP/1.1\r\nHost: b\r\n%sContent-Length: %d\r\n\r\n%s"
       headers (String.length body) body);
  let status = serve_read_status fd in
  Unix.close fd;
  status

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let write_serve_json path =
  let llhsc =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/main.exe"
  in
  let workers = 2 and queue = 4 in
  let out_r, out_w = Unix.pipe () in
  let env = Array.append (Unix.environment ()) [| "LLHSC_SERVE_TEST_HOOKS=1" |] in
  let pid =
    Unix.create_process_env llhsc
      [| llhsc; "serve"; "--port"; "0"; "--workers"; string_of_int workers;
         "--queue"; string_of_int queue |]
      env Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let log = Unix.in_channel_of_descr out_r in
  let port =
    Scanf.sscanf (input_line log) "llhsc serve: listening on %[0-9.]:%d" (fun _ p -> p)
  in
  (* Latency: sequential requests through the whole HTTP + fork/exec +
     check path, p50/p95 over a healthy run. *)
  let requests = 60 in
  let latencies =
    Array.init requests (fun _ ->
        let t0 = Unix.gettimeofday () in
        let status = serve_request port serve_dts in
        let ms = 1000. *. (Unix.gettimeofday () -. t0) in
        if status <> 200 then failwith (Printf.sprintf "healthy request got %d" status);
        ms)
  in
  Array.sort compare latencies;
  let p50 = percentile latencies 0.50 and p95 = percentile latencies 0.95 in
  (* Overload: a burst at 2x capacity (capacity = workers running + queue
     waiting), all in flight before the first delayed job finishes.  The
     daemon must shed the excess immediately with 429 and answer every
     accepted request. *)
  let capacity = workers + queue in
  let burst = 2 * capacity in
  let fds =
    Array.init burst (fun _ ->
        let fd = serve_connect port in
        serve_send fd
          (Printf.sprintf
             "POST /v1/check HTTP/1.1\r\nHost: b\r\nX-Llhsc-Test-Delay-Ms: 300\r\n\
              Content-Length: %d\r\n\r\n%s"
             (String.length serve_dts) serve_dts);
        fd)
  in
  let statuses =
    Array.map
      (fun fd ->
        let s = serve_read_status fd in
        Unix.close fd;
        s)
      fds
  in
  let count s = Array.fold_left (fun acc x -> if x = s then acc + 1 else acc) 0 statuses in
  let ok = count 200 and shed = count 429 in
  let unanswered = burst - ok - shed in
  (* Drain: SIGTERM must exit 0. *)
  Unix.kill pid Sys.sigterm;
  let drain_clean = match Unix.waitpid [] pid with _, Unix.WEXITED 0 -> true | _ -> false in
  close_in_noerr log;
  Llhsc.Durable.with_file ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "workload": "llhsc serve, POST /v1/check (fork/exec of the batch CLI per request)",
  "workers": %d,
  "queue": %d,
  "requests": %d,
  "latency_p50_ms": %.3f,
  "latency_p95_ms": %.3f,
  "burst": %d,
  "burst_capacity": %d,
  "burst_ok": %d,
  "burst_shed": %d,
  "shed_rate": %.3f,
  "unanswered": %d,
  "drain_exit_clean": %b
}
|}
    workers queue requests p50 p95 burst capacity ok shed
    (float_of_int shed /. float_of_int burst)
    unanswered drain_clean);
  Fmt.pr
    "wrote %s (p50 %.2f ms, p95 %.2f ms; burst %d -> %d ok, %d shed, %d unanswered; drain=%b)@."
    path p50 p95 burst ok shed unanswered drain_clean;
  if unanswered > 0 then failwith "serve bench: some burst requests went unanswered";
  if not drain_clean then failwith "serve bench: drain did not exit 0"

(* ------------------------------------------------------------------ *)
(* Fleet measurement (BENCH_fleet.json)                                 *)
(* ------------------------------------------------------------------ *)

(* The socket-transport column: the quad_rv64 pipeline dispatched to real
   worker processes over loopback TCP, against the in-process --jobs
   baselines, plus the cost of recovering from a worker that dies
   mid-task.  Everything runs the real binary end to end (fork/exec,
   handshake, spec shipping, frame I/O), so the fleet timings carry the
   whole transport overhead, not just the check phase. *)

let write_fleet_json path =
  let llhsc =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/main.exe"
  in
  (* Materialise the quad_rv64 fixture (same layout as
     `examples/quad_rv64.exe dump`). *)
  let module Q = Llhsc.Quad_rv64 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llhsc-bench-fleet-%d" (Unix.getpid ()))
  in
  let rec rm_rf p =
    match Unix.lstat p with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      (try Unix.rmdir p with Unix.Unix_error _ -> ())
    | _ -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  at_exit (fun () -> rm_rf dir);
  let write_file p contents =
    let oc = open_out (Filename.concat dir p) in
    output_string oc contents;
    close_out oc
  in
  write_file "quad-rv64.dts" Q.core_dts;
  write_file "quad-rv64.fm" Q.feature_model_src;
  write_file "quad-rv64.deltas" Q.deltas_src;
  Unix.mkdir (Filename.concat dir "schemas") 0o700;
  List.iteri
    (fun i src -> write_file (Printf.sprintf "schemas/schema-%d.yaml" i) src)
    Q.schemas_src;
  let p f = Filename.concat dir f in
  let pipeline_tail =
    [ "--core"; p "quad-rv64.dts"; "--deltas"; p "quad-rv64.deltas";
      "--model"; p "quad-rv64.fm"; "--schemas"; p "schemas";
      "--exclusive"; String.concat "," Q.exclusive ]
    @ List.concat_map
        (fun fs -> [ "--vm"; String.concat "," fs ])
        [ Q.vm1_features; Q.vm2_features; Q.vm3_features ]
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let spawn ?(env = []) ~out args =
    Unix.create_process_env llhsc
      (Array.of_list (llhsc :: args))
      (Array.append (Unix.environment ()) (Array.of_list env))
      Unix.stdin out devnull
  in
  let wait_zero what pid =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _, Unix.WEXITED c -> failwith (Printf.sprintf "fleet bench: %s exited %d" what c)
    | _ -> failwith (Printf.sprintf "fleet bench: %s died on a signal" what)
  in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let out_file = p "report.out" in
  let with_out f =
    let out = Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
    Fun.protect ~finally:(fun () -> Unix.close out) (fun () -> f out)
  in
  (* One in-process run: seconds + report bytes. *)
  let local_run jobs =
    let t0 = Unix.gettimeofday () in
    with_out (fun out ->
        wait_zero "pipeline"
          (spawn ~out (("pipeline" :: pipeline_tail) @ [ "--jobs"; string_of_int jobs ])));
    (Unix.gettimeofday () -. t0, read_file out_file)
  in
  (* One fleet run: dispatcher + [workers] worker processes on loopback,
     timed from dispatcher spawn to dispatcher exit (the user-visible
     wall clock, transport included).  [kill] seeds the self-kill hook
     in the first worker. *)
  let fleet_run ?(kill = false) workers =
    let port_file = p "port" in
    (try Sys.remove port_file with Sys_error _ -> ());
    let t0 = Unix.gettimeofday () in
    let dpid =
      with_out (fun out ->
          spawn ~out
            (("dispatch" :: "--listen" :: "127.0.0.1:0" :: "--port-file" :: port_file
              :: "--wait-workers" :: "30" :: pipeline_tail)))
    in
    let rec wait_port tries =
      if (try (Unix.stat port_file).Unix.st_size > 0 with Unix.Unix_error _ -> false)
      then ()
      else if tries = 0 then failwith "fleet bench: dispatcher never wrote its port"
      else begin
        Unix.sleepf 0.05;
        wait_port (tries - 1)
      end
    in
    wait_port 200;
    let wpids =
      List.init workers (fun i ->
          let env = if kill && i = 0 then [ "LLHSC_FAULT_KILL_WORKER=1" ] else [] in
          spawn ~env ~out:devnull
            [ "worker"; "--port-file"; port_file; "--max-reconnects"; "3" ])
    in
    wait_zero "dispatcher" dpid;
    let dt = Unix.gettimeofday () -. t0 in
    List.iter
      (fun pid ->
        let rec poll tries =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ when tries > 0 ->
            Unix.sleepf 0.05;
            poll (tries - 1)
          | 0, _ ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid)
          | _ -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        in
        poll 100)
      wpids;
    (dt, read_file out_file)
  in
  let runs = 5 in
  let median_of f =
    let samples = List.init runs (fun _ -> f ()) in
    let times = List.sort compare (List.map fst samples) in
    (1000. *. List.nth times (runs / 2), snd (List.hd samples))
  in
  let j1, base = median_of (fun () -> local_run 1) in
  let j4, j4_report = median_of (fun () -> local_run 4) in
  let f2, f2_report = median_of (fun () -> fleet_run 2) in
  let f3, f3_report = median_of (fun () -> fleet_run 3) in
  let fk, fk_report = median_of (fun () -> fleet_run ~kill:true 2) in
  Unix.close devnull;
  (* Setup-payload sizes: the spec this workload ships to each worker,
     plain vs --compress (LZ77 + base64, as it travels in the frame). *)
  let spec =
    { Fleet.Spec.core = { Fleet.Spec.file = "quad-rv64.dts"; text = Q.core_dts };
      deltas = { Fleet.Spec.file = "quad-rv64.deltas"; text = Q.deltas_src };
      model = Q.feature_model_src;
      schemas = Q.schemas_src;
      files = [];
      vms = [ Q.vm1_features; Q.vm2_features; Q.vm3_features ];
      exclusive = Q.exclusive;
      certify = false; retry = None; max_conflicts = None; solver_timeout = None;
      unsound = None; skip = [] }
  in
  let spec_bytes =
    String.length (Llhsc.Json.to_string (Fleet.Spec.to_wire spec))
  in
  let spec_bytes_compressed =
    String.length (Llhsc.Json.to_string (Fleet.Spec.to_wire ~compress:true spec))
  in
  let identical =
    j4_report = base && f2_report = base && f3_report = base && fk_report = base
  in
  let cpus = online_cpus () in
  Llhsc.Durable.with_file ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "workload": "quad_rv64 pipeline (3 VMs + platform), dispatched over loopback TCP",
  "runs": %d,
  "online_cpus": %d,
  "jobs1_ms": %.3f,
  "jobs4_ms": %.3f,
  "fleet2_ms": %.3f,
  "fleet3_ms": %.3f,
  "fleet3_vs_jobs1_speedup": %.2f,
  "fleet3_vs_jobs4_overhead_pct": %.1f,
  "kill_recovery_fleet2_ms": %.3f,
  "kill_recovery_overhead_pct": %.1f,
  "spec_wire_bytes": %d,
  "spec_wire_bytes_compressed": %d,
  "spec_compression_ratio": %.2f,
  "reports_byte_identical": %b
}
|}
    runs cpus j1 j4 f2 f3 (j1 /. f3)
    (100. *. ((f3 /. j4) -. 1.))
    fk
    (100. *. ((fk /. f2) -. 1.))
    spec_bytes spec_bytes_compressed
    (float_of_int spec_bytes /. float_of_int (max 1 spec_bytes_compressed))
    identical);
  Fmt.pr
    "wrote %s (%d cpus; j1 %.2f ms, j4 %.2f ms; fleet2 %.2f ms, fleet3 %.2f ms; kill-recovery %.2f ms; spec %d -> %d bytes; identical=%b)@."
    path cpus j1 j4 f2 f3 fk spec_bytes spec_bytes_compressed identical;
  if not identical then failwith "fleet bench: reports diverged from --jobs 1"

(* ------------------------------------------------------------------ *)
(* Durability measurement (BENCH_durability.json)                       *)
(* ------------------------------------------------------------------ *)

(* The storage column: what the fsync-per-record discipline costs against
   a buffered append of the same bytes, what the atomic
   write-temp/fsync/rename whole-file commit costs against a plain
   write, and how long [llhsc journal fsck]/[compact] take on a journal
   big enough to matter.  The big journal is built by replicating real
   fsync'd record lines (the shape of a long resumed run that appended
   the same products many times over), so compact's last-wins collapse
   is measured on genuine superseded records, not synthetic noise. *)

let write_durability_json path =
  let runs = 11 in
  let n_records = 256 in
  let inputs_hash = Llhsc.Journal.inputs_hash ~parts:[ "bench-durability" ] in
  let entry i =
    {
      Llhsc.Journal.kind = Llhsc.Journal.Product;
      name = Printf.sprintf "vm%03d" i;
      hash = Llhsc.Journal.product_hash ~inputs_hash ~name:(Printf.sprintf "vm%03d" i)
          ~features:[ "cpu"; "mem" ];
      features = [ "cpu"; "mem" ];
      order = [];
      findings = [];
      certified = false;
      cert_failures = 0;
    }
  in
  let scratch = Filename.temp_file "llhsc-bench-durability" ".jsonl" in
  let journal_ms =
    median_ms ~runs (fun () ->
        if Sys.file_exists scratch then Sys.remove scratch;
        let sink = Llhsc.Journal.open_ ~path:scratch ~inputs_hash in
        for i = 0 to n_records - 1 do
          Llhsc.Journal.record sink (entry i)
        done;
        Llhsc.Journal.close sink)
  in
  (* The same bytes through a buffered channel with no fsync: the
     baseline the durability premium is measured against. *)
  let lines =
    let ic = open_in scratch in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file -> List.rev acc
    in
    let ls = go [] in
    close_in ic;
    ls
  in
  let buffered_ms =
    median_ms ~runs (fun () ->
        let oc = open_out scratch in
        List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
        close_out oc)
  in
  (* Atomic whole-file commit vs plain write, report-sized payload. *)
  let blob = String.make (1 lsl 20) 'x' in
  let atomic_ms =
    median_ms ~runs (fun () -> Llhsc.Durable.write_file ~path:scratch blob)
  in
  let plain_ms =
    median_ms ~runs (fun () ->
        let oc = open_out_bin scratch in
        output_string oc blob;
        close_out oc)
  in
  (* fsck/compact at scale: replicate the real record lines (keeping the
     header first) until the journal holds ~50k lines. *)
  let header, records =
    match lines with h :: t -> (h, t) | [] -> failwith "durability bench: empty journal"
  in
  let big_lines = 50_000 in
  let big =
    let b = Buffer.create (big_lines * 128) in
    Buffer.add_string b header;
    Buffer.add_char b '\n';
    let rec fill n =
      if n < big_lines then begin
        List.iter
          (fun l ->
            Buffer.add_string b l;
            Buffer.add_char b '\n')
          records;
        fill (n + List.length records)
      end
    in
    fill 0;
    Buffer.contents b
  in
  Llhsc.Durable.write_file ~path:scratch big;
  let fsck_ms = median_ms ~runs (fun () -> Llhsc.Journal.fsck ~path:scratch) in
  let report =
    match Llhsc.Journal.fsck ~path:scratch with
    | Some r -> r
    | None -> failwith "durability bench: fsck could not read the big journal"
  in
  (* compact rewrites the file, so restore it outside the timed region. *)
  let compact_samples =
    List.init runs (fun _ ->
        Llhsc.Durable.write_file ~path:scratch big;
        let t0 = Unix.gettimeofday () in
        (match Llhsc.Journal.compact ~path:scratch with
        | Ok _ -> ()
        | Error e -> failwith ("durability bench: compact failed: " ^ e));
        (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let compact_ms = List.nth (List.sort compare compact_samples) (runs / 2) in
  let compacted =
    match Llhsc.Journal.fsck ~path:scratch with
    | Some r -> r.Llhsc.Journal.records
    | None -> -1
  in
  Sys.remove scratch;
  Llhsc.Durable.with_file ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "workload": "journal record stream + atomic whole-file commit",
  "runs": %d,
  "journal_records": %d,
  "journal_fsync_ms": %.3f,
  "buffered_append_ms": %.3f,
  "fsync_premium_x": %.1f,
  "fsync_us_per_record": %.1f,
  "atomic_commit_1mib_ms": %.3f,
  "plain_write_1mib_ms": %.3f,
  "big_journal_lines": %d,
  "big_journal_records": %d,
  "big_journal_entries": %d,
  "big_journal_torn": %d,
  "big_journal_invalid": %d,
  "fsck_ms": %.3f,
  "compact_ms": %.3f,
  "compacted_records": %d
}
|}
    runs n_records journal_ms buffered_ms
    (journal_ms /. Float.max 0.001 buffered_ms)
    (1000. *. journal_ms /. float_of_int n_records)
    atomic_ms plain_ms
    (report.Llhsc.Journal.records + report.Llhsc.Journal.torn
   + report.Llhsc.Journal.invalid)
    report.Llhsc.Journal.records
    report.Llhsc.Journal.entries report.Llhsc.Journal.torn
    report.Llhsc.Journal.invalid fsck_ms compact_ms compacted);
  Fmt.pr
    "wrote %s (%d records: fsync'd %.2f ms vs buffered %.2f ms; fsck %.2f ms, compact %.2f ms over %d lines -> %d entries)@."
    path n_records journal_ms buffered_ms fsck_ms compact_ms
    report.Llhsc.Journal.records report.Llhsc.Journal.entries

(* A measurement mode that silently produces nothing poisons the
   committed BENCH_*.json trail, so every mode is checked for a
   non-empty output file and an unrecognised mode is an error instead of
   a silent fall-through to the default report. *)
let checked_output mode path write =
  write path;
  match Unix.stat path with
  | exception Unix.Unix_error _ ->
    Printf.eprintf "bench %s: expected output %s was never written\n" mode path;
    exit 1
  | { Unix.st_size = 0; _ } ->
    Printf.eprintf "bench %s: output %s is empty\n" mode path;
    exit 1
  | _ -> ()

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "" in
  match arg with
  | "certify" -> checked_output arg "BENCH_certify.json" write_certify_json
  | "resilience" -> checked_output arg "BENCH_resilience.json" write_resilience_json
  | "parallel" -> checked_output arg "BENCH_parallel.json" write_parallel_json
  | "supervision" -> checked_output arg "BENCH_supervision.json" write_supervision_json
  | "serve" -> checked_output arg "BENCH_serve.json" write_serve_json
  | "fleet" -> checked_output arg "BENCH_fleet.json" write_fleet_json
  | "durability" -> checked_output arg "BENCH_durability.json" write_durability_json
  | "report" -> report ()
  | "" ->
    report ();
    run_benchmarks ()
  | other ->
    Printf.eprintf
      "bench: unknown mode %S (want certify|resilience|parallel|supervision|serve|fleet|durability|report)\n"
      other;
    exit 1
