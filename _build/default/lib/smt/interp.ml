(* Reference interpreter for terms under a total assignment of variables.
   Serves two purposes: evaluating terms in a model returned by the solver,
   and differential testing of the bit-blaster (the interpreter and the
   blasted circuit must agree on every term). *)

type value =
  | V_bool of bool
  | V_bv of { width : int; value : int64 }
  | V_enum of { sort : string; value : string }

type env = {
  bool_var : string -> bool;
  bv_var : string -> int64;
  enum_var : string -> string;
  pred : string -> string list -> bool;
}

exception Eval_error of string

let error fmt = Fmt.kstr (fun msg -> raise (Eval_error msg)) fmt

let mask width v =
  if width = 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

(* sign-extend a w-bit value into a full int64 *)
let sext width v =
  if width = 64 then v
  else if Int64.logand v (Int64.shift_left 1L (width - 1)) <> 0L then
    Int64.logor v (Int64.shift_left (-1L) width)
  else v

let pp_value ppf = function
  | V_bool b -> Fmt.bool ppf b
  | V_bv { width; value } -> Fmt.pf ppf "#x%Lx[%d]" value width
  | V_enum { value; _ } -> Fmt.pf ppf "%S" value

let as_bool = function V_bool b -> b | v -> error "expected bool, got %a" pp_value v

let as_bv = function
  | V_bv { width; value } -> (width, value)
  | v -> error "expected bit-vector, got %a" pp_value v

let rec eval env (t : Term.t) : value =
  match t with
  | True -> V_bool true
  | False -> V_bool false
  | Bool_var name -> V_bool (env.bool_var name)
  | Not t -> V_bool (not (as_bool (eval env t)))
  | And ts -> V_bool (List.for_all (fun t -> as_bool (eval env t)) ts)
  | Or ts -> V_bool (List.exists (fun t -> as_bool (eval env t)) ts)
  | Implies (a, b) -> V_bool ((not (as_bool (eval env a))) || as_bool (eval env b))
  | Iff (a, b) -> V_bool (as_bool (eval env a) = as_bool (eval env b))
  | Xor (a, b) -> V_bool (as_bool (eval env a) <> as_bool (eval env b))
  | Ite (c, a, b) -> if as_bool (eval env c) then eval env a else eval env b
  | Eq (a, b) -> V_bool (value_equal (eval env a) (eval env b))
  | Distinct ts ->
    let vs = List.map (eval env) ts in
    let rec all_distinct = function
      | [] -> true
      | v :: rest -> (not (List.exists (value_equal v) rest)) && all_distinct rest
    in
    V_bool (all_distinct vs)
  | Bv_const { width; value } -> V_bv { width; value = mask width value }
  | Bv_var (name, width) -> V_bv { width; value = mask width (env.bv_var name) }
  | Bv_unop (op, a) ->
    let w, v = as_bv (eval env a) in
    let r = match op with Term.Bv_neg -> Int64.neg v | Term.Bv_not -> Int64.lognot v in
    V_bv { width = w; value = mask w r }
  | Bv_binop (op, a, b) ->
    let w, va = as_bv (eval env a) in
    let _, vb = as_bv (eval env b) in
    let r =
      match op with
      | Term.Bv_add -> Int64.add va vb
      | Term.Bv_sub -> Int64.sub va vb
      | Term.Bv_mul -> Int64.mul va vb
      | Term.Bv_and -> Int64.logand va vb
      | Term.Bv_or -> Int64.logor va vb
      | Term.Bv_xor -> Int64.logxor va vb
      | Term.Bv_shl ->
        if Int64.unsigned_compare vb (Int64.of_int w) >= 0 then 0L
        else Int64.shift_left va (Int64.to_int vb)
      | Term.Bv_lshr ->
        if Int64.unsigned_compare vb (Int64.of_int w) >= 0 then 0L
        else Int64.shift_right_logical (mask w va) (Int64.to_int vb)
    in
    V_bv { width = w; value = mask w r }
  | Bv_cmp (op, a, b) ->
    let w, va = as_bv (eval env a) in
    let _, vb = as_bv (eval env b) in
    let r =
      match op with
      | Term.Ult -> Int64.unsigned_compare va vb < 0
      | Term.Ule -> Int64.unsigned_compare va vb <= 0
      | Term.Slt -> Int64.compare (sext w va) (sext w vb) < 0
      | Term.Sle -> Int64.compare (sext w va) (sext w vb) <= 0
    in
    V_bool r
  | Bv_extract { hi; lo; arg } ->
    let _, v = as_bv (eval env arg) in
    let width = hi - lo + 1 in
    V_bv { width; value = mask width (Int64.shift_right_logical v lo) }
  | Bv_concat (a, b) ->
    let wa, va = as_bv (eval env a) in
    let wb, vb = as_bv (eval env b) in
    V_bv { width = wa + wb; value = Int64.logor (Int64.shift_left va wb) vb }
  | Bv_extend { signed; by; arg } ->
    let w, v = as_bv (eval env arg) in
    let v' = if signed then sext w v else v in
    V_bv { width = w + by; value = mask (w + by) v' }
  | Enum_const { sort; value } -> V_enum { sort; value }
  | Enum_var (name, sort) -> V_enum { sort; value = env.enum_var name }
  | Pred (name, args) ->
    let values =
      List.map
        (fun a ->
          match eval env a with
          | V_enum { value; _ } -> value
          | v -> error "predicate %s argument evaluated to %a" name pp_value v)
        args
    in
    V_bool (env.pred name values)

and value_equal a b =
  match (a, b) with
  | V_bool x, V_bool y -> x = y
  | V_bv { width = w; value = x }, V_bv { width = w'; value = y } -> w = w' && Int64.equal x y
  | V_enum { sort = s; value = x }, V_enum { sort = s'; value = y } ->
    String.equal s s' && String.equal x y
  | (V_bool _ | V_bv _ | V_enum _), _ -> error "comparing values of different sorts"
