(* Bit-blasting of terms onto the CDCL solver, the route the paper ascribes
   to Z3 for its address constraints ("the technique of bit-blasting is used
   ... to encode memory addresses inside bit-vectors which are then
   translated into a SAT problem", §IV-C).

   Booleans become literals; a bit-vector of width w becomes an array of w
   literals, least-significant bit first.  Enum values are bit-vectors of
   ceil(log2 n) bits constrained below the universe size.  All gates use the
   definitional (both-polarity) encoding so blasted literals can be used as
   assumptions under either sign. *)

module S = Sat.Solver
module L = Sat.Lit

type ctx = {
  sat : S.t;
  true_lit : L.t;
  bool_memo : (Term.t, L.t) Hashtbl.t;
  bv_memo : (Term.t, L.t array) Hashtbl.t;
  bool_vars : (string, L.t) Hashtbl.t;
  bv_vars : (string, L.t array) Hashtbl.t;
  enum_vars : (string, string * L.t array) Hashtbl.t; (* name -> sort, bits *)
  pred_vars : (string, L.t) Hashtbl.t;
  enum_universe : string -> string array; (* resolved by the Solver layer *)
  sort_of : Term.t -> Term.sort;
}

let create ~sat ~enum_universe ~sort_of =
  let v = S.new_var sat in
  let true_lit = L.of_var v in
  ignore (S.add_clause sat [ true_lit ] : bool);
  {
    sat;
    true_lit;
    bool_memo = Hashtbl.create 256;
    bv_memo = Hashtbl.create 256;
    bool_vars = Hashtbl.create 64;
    bv_vars = Hashtbl.create 64;
    enum_vars = Hashtbl.create 64;
    pred_vars = Hashtbl.create 64;
    enum_universe;
    sort_of;
  }

let false_lit ctx = L.neg ctx.true_lit
let fresh ctx = L.of_var (S.new_var ctx.sat)
let add ctx lits = ignore (S.add_clause ctx.sat lits : bool)

(* --- gates ---------------------------------------------------------------- *)

let mk_not l = L.neg l

let mk_and ctx ls =
  let ls = List.filter (fun l -> not (L.equal l ctx.true_lit)) ls in
  if List.exists (fun l -> L.equal l (false_lit ctx)) ls then false_lit ctx
  else
    match ls with
    | [] -> ctx.true_lit
    | [ l ] -> l
    | _ ->
      let r = fresh ctx in
      List.iter (fun l -> add ctx [ L.neg r; l ]) ls;
      add ctx (r :: List.map L.neg ls);
      r

let mk_or ctx ls =
  let ls = List.filter (fun l -> not (L.equal l (false_lit ctx))) ls in
  if List.exists (fun l -> L.equal l ctx.true_lit) ls then ctx.true_lit
  else
    match ls with
    | [] -> false_lit ctx
    | [ l ] -> l
    | _ ->
      let r = fresh ctx in
      List.iter (fun l -> add ctx [ r; L.neg l ]) ls;
      add ctx (L.neg r :: ls);
      r

let mk_xor ctx a b =
  if L.equal a (false_lit ctx) then b
  else if L.equal b (false_lit ctx) then a
  else if L.equal a ctx.true_lit then mk_not b
  else if L.equal b ctx.true_lit then mk_not a
  else begin
    let r = fresh ctx in
    add ctx [ L.neg r; a; b ];
    add ctx [ L.neg r; L.neg a; L.neg b ];
    add ctx [ r; L.neg a; b ];
    add ctx [ r; a; L.neg b ];
    r
  end

let mk_iff ctx a b = mk_not (mk_xor ctx a b)

(* mux: if c then a else b *)
let mk_mux ctx c a b =
  if L.equal a b then a
  else if L.equal c ctx.true_lit then a
  else if L.equal c (false_lit ctx) then b
  else begin
    let r = fresh ctx in
    add ctx [ L.neg c; L.neg r; a ];
    add ctx [ L.neg c; r; L.neg a ];
    add ctx [ c; L.neg r; b ];
    add ctx [ c; r; L.neg b ];
    r
  end

(* full adder: returns (sum, carry_out) *)
let full_adder ctx a b cin =
  let sum = mk_xor ctx (mk_xor ctx a b) cin in
  let carry = mk_or ctx [ mk_and ctx [ a; b ]; mk_and ctx [ a; cin ]; mk_and ctx [ b; cin ] ] in
  (sum, carry)

(* --- bit-vector circuits --------------------------------------------------- *)

let bv_const ctx ~width value =
  Array.init width (fun i ->
      if Int64.logand (Int64.shift_right_logical value i) 1L = 1L then ctx.true_lit
      else false_lit ctx)

let ripple_add ctx a b cin =
  let w = Array.length a in
  let out = Array.make w cin in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder ctx a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  out

let bv_add ctx a b = ripple_add ctx a b (false_lit ctx)
let bv_not a = Array.map mk_not a
let bv_sub ctx a b = ripple_add ctx a (bv_not b) ctx.true_lit
let bv_neg ctx a = bv_sub ctx (bv_const ctx ~width:(Array.length a) 0L) a

let bv_bitwise ctx f a b = Array.init (Array.length a) (fun i -> f ctx a.(i) b.(i))

let bv_mul ctx a b =
  let w = Array.length a in
  let acc = ref (bv_const ctx ~width:w 0L) in
  for i = 0 to w - 1 do
    let partial =
      Array.init w (fun j ->
          if j < i then false_lit ctx else mk_and ctx [ a.(j - i); b.(i) ])
    in
    acc := bv_add ctx !acc partial
  done;
  !acc

(* Equality of a bit-vector with a small integer constant. *)
let bv_eq_const ctx a k =
  let w = Array.length a in
  let bits =
    List.init w (fun i ->
        if k land (1 lsl i) <> 0 then a.(i) else mk_not a.(i))
  in
  mk_and ctx bits

(* Shift by a (possibly symbolic) amount: mux over all in-range constant
   amounts; out-of-range amounts yield zero, matching SMT-LIB semantics for
   widths <= 64. *)
let bv_shift ctx ~left a b =
  let w = Array.length a in
  let conds = Array.init w (fun s -> bv_eq_const ctx b s) in
  Array.init w (fun i ->
      let picks = ref [] in
      for s = 0 to w - 1 do
        let src = if left then i - s else i + s in
        if src >= 0 && src < w then picks := mk_and ctx [ conds.(s); a.(src) ] :: !picks
      done;
      mk_or ctx !picks)

let bv_eq ctx a b =
  mk_and ctx (List.init (Array.length a) (fun i -> mk_iff ctx a.(i) b.(i)))

let bv_ult ctx a b =
  let w = Array.length a in
  let res = ref (false_lit ctx) in
  for i = 0 to w - 1 do
    let lt_here = mk_and ctx [ mk_not a.(i); b.(i) ] in
    let eq_here = mk_iff ctx a.(i) b.(i) in
    res := mk_or ctx [ lt_here; mk_and ctx [ eq_here; !res ] ]
  done;
  !res

let bv_ule ctx a b = mk_not (bv_ult ctx b a)

let flip_msb a =
  let w = Array.length a in
  Array.init w (fun i -> if i = w - 1 then mk_not a.(i) else a.(i))

let bv_slt ctx a b = bv_ult ctx (flip_msb a) (flip_msb b)
let bv_sle ctx a b = bv_ule ctx (flip_msb a) (flip_msb b)

let bv_mux ctx c a b = Array.init (Array.length a) (fun i -> mk_mux ctx c a.(i) b.(i))

(* --- enum encoding --------------------------------------------------------- *)

let enum_width n =
  let rec go w = if 1 lsl w >= n then w else go (w + 1) in
  max 1 (go 0)

(* index of a value in its universe *)
let enum_index ctx sort value =
  let universe = ctx.enum_universe sort in
  let rec find i =
    if i >= Array.length universe then
      Fmt.invalid_arg "enum value %S not in sort %s" value sort
    else if String.equal universe.(i) value then i
    else find (i + 1)
  in
  find 0

(* --- main blaster ----------------------------------------------------------- *)

let rec blast_bool ctx (t : Term.t) : L.t =
  match Hashtbl.find_opt ctx.bool_memo t with
  | Some l -> l
  | None ->
    let l =
      match t with
      | True -> ctx.true_lit
      | False -> false_lit ctx
      | Bool_var name ->
        (match Hashtbl.find_opt ctx.bool_vars name with
         | Some l -> l
         | None ->
           let l = fresh ctx in
           Hashtbl.add ctx.bool_vars name l;
           l)
      | Not t -> mk_not (blast_bool ctx t)
      | And ts -> mk_and ctx (List.map (blast_bool ctx) ts)
      | Or ts -> mk_or ctx (List.map (blast_bool ctx) ts)
      | Implies (a, b) -> mk_or ctx [ mk_not (blast_bool ctx a); blast_bool ctx b ]
      | Iff (a, b) -> mk_iff ctx (blast_bool ctx a) (blast_bool ctx b)
      | Xor (a, b) -> mk_xor ctx (blast_bool ctx a) (blast_bool ctx b)
      | Ite (c, a, b) ->
        (match ctx.sort_of a with
         | Bool -> mk_mux ctx (blast_bool ctx c) (blast_bool ctx a) (blast_bool ctx b)
         | Bitvec _ | Enum _ ->
           Fmt.invalid_arg "blast_bool: ite of non-boolean sort")
      | Eq (a, b) ->
        (match ctx.sort_of a with
         | Bool -> mk_iff ctx (blast_bool ctx a) (blast_bool ctx b)
         | Bitvec _ | Enum _ -> bv_eq ctx (blast_bv ctx a) (blast_bv ctx b))
      | Distinct ts ->
        let rec pairs = function
          | [] -> []
          | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
        in
        let distinct_pair (a, b) =
          match ctx.sort_of a with
          | Bool -> mk_xor ctx (blast_bool ctx a) (blast_bool ctx b)
          | Bitvec _ | Enum _ -> mk_not (bv_eq ctx (blast_bv ctx a) (blast_bv ctx b))
        in
        mk_and ctx (List.map distinct_pair (pairs ts))
      | Bv_cmp (op, a, b) ->
        let ba = blast_bv ctx a and bb = blast_bv ctx b in
        (match op with
         | Ult -> bv_ult ctx ba bb
         | Ule -> bv_ule ctx ba bb
         | Slt -> bv_slt ctx ba bb
         | Sle -> bv_sle ctx ba bb)
      | Pred (name, args) ->
        (* Ground over the finite universes of the argument sorts. *)
        let arg_sorts =
          List.map
            (fun a ->
              match ctx.sort_of a with
              | Enum s -> s
              | Bool | Bitvec _ -> Fmt.invalid_arg "predicate %s on non-enum" name)
            args
        in
        let arg_bits = List.map (blast_bv ctx) args in
        let rec tuples = function
          | [] -> [ [] ]
          | s :: rest ->
            let universe = Array.to_list (ctx.enum_universe s) in
            List.concat_map
              (fun v -> List.map (fun tl -> v :: tl) (tuples rest))
              universe
        in
        let instance_lit values =
          let key = name ^ "(" ^ String.concat "," values ^ ")" in
          match Hashtbl.find_opt ctx.pred_vars key with
          | Some l -> l
          | None ->
            let l = fresh ctx in
            Hashtbl.add ctx.pred_vars key l;
            l
        in
        let cases =
          List.map
            (fun values ->
              let matches =
                List.map2
                  (fun bits (sort, v) ->
                    bv_eq ctx bits
                      (bv_const ctx ~width:(Array.length bits)
                         (Int64.of_int (enum_index ctx sort v))))
                  arg_bits
                  (List.combine arg_sorts values)
              in
              mk_and ctx (instance_lit values :: matches))
            (tuples arg_sorts)
        in
        mk_or ctx cases
      | Bv_const _ | Bv_var _ | Bv_unop _ | Bv_binop _ | Bv_extract _ | Bv_concat _
      | Bv_extend _ | Enum_const _ | Enum_var _ ->
        Fmt.invalid_arg "blast_bool: term %a is not boolean" Term.pp t
    in
    Hashtbl.add ctx.bool_memo t l;
    l

and blast_bv ctx (t : Term.t) : L.t array =
  match Hashtbl.find_opt ctx.bv_memo t with
  | Some bits -> bits
  | None ->
    let bits =
      match t with
      | Bv_const { width; value } -> bv_const ctx ~width value
      | Bv_var (name, width) ->
        (match Hashtbl.find_opt ctx.bv_vars name with
         | Some bits -> bits
         | None ->
           let bits = Array.init width (fun _ -> fresh ctx) in
           Hashtbl.add ctx.bv_vars name bits;
           bits)
      | Bv_unop (Bv_neg, a) -> bv_neg ctx (blast_bv ctx a)
      | Bv_unop (Bv_not, a) -> bv_not (blast_bv ctx a)
      | Bv_binop (op, a, b) ->
        let ba = blast_bv ctx a and bb = blast_bv ctx b in
        (match op with
         | Bv_add -> bv_add ctx ba bb
         | Bv_sub -> bv_sub ctx ba bb
         | Bv_mul -> bv_mul ctx ba bb
         | Bv_and -> bv_bitwise ctx (fun ctx x y -> mk_and ctx [ x; y ]) ba bb
         | Bv_or -> bv_bitwise ctx (fun ctx x y -> mk_or ctx [ x; y ]) ba bb
         | Bv_xor -> bv_bitwise ctx mk_xor ba bb
         | Bv_shl -> bv_shift ctx ~left:true ba bb
         | Bv_lshr -> bv_shift ctx ~left:false ba bb)
      | Bv_extract { hi; lo; arg } ->
        let bits = blast_bv ctx arg in
        Array.sub bits lo (hi - lo + 1)
      | Bv_concat (a, b) ->
        (* SMT-LIB concat: a is the high part. *)
        let ba = blast_bv ctx a and bb = blast_bv ctx b in
        Array.append bb ba
      | Bv_extend { signed; by; arg } ->
        let bits = blast_bv ctx arg in
        let w = Array.length bits in
        let top = if signed then bits.(w - 1) else false_lit ctx in
        Array.init (w + by) (fun i -> if i < w then bits.(i) else top)
      | Enum_const { sort; value } ->
        let universe = ctx.enum_universe sort in
        let width = enum_width (Array.length universe) in
        bv_const ctx ~width (Int64.of_int (enum_index ctx sort value))
      | Enum_var (name, sort) ->
        (match Hashtbl.find_opt ctx.enum_vars name with
         | Some (_, bits) -> bits
         | None ->
           let universe = ctx.enum_universe sort in
           let n = Array.length universe in
           let width = enum_width n in
           let bits = Array.init width (fun _ -> fresh ctx) in
           Hashtbl.add ctx.enum_vars name (sort, bits);
           (* Constrain the encoding below the universe size (no-op when the
              universe exactly fills the width). *)
           if n < 1 lsl width then begin
             let bound = bv_const ctx ~width (Int64.of_int n) in
             add ctx [ bv_ult ctx bits bound ]
           end;
           bits)
      | Ite (c, a, b) -> bv_mux ctx (blast_bool ctx c) (blast_bv ctx a) (blast_bv ctx b)
      | True | False | Bool_var _ | Not _ | And _ | Or _ | Implies _ | Iff _ | Xor _
      | Eq _ | Distinct _ | Bv_cmp _ | Pred _ ->
        Fmt.invalid_arg "blast_bv: term %a is not a bit-vector" Term.pp t
    in
    Hashtbl.add ctx.bv_memo t bits;
    bits
