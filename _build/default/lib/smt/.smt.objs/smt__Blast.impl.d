lib/smt/blast.ml: Array Fmt Hashtbl Int64 List Sat String Term
