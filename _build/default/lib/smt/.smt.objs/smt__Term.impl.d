lib/smt/term.ml: Fmt Int64 List String
