lib/smt/term.mli: Format
