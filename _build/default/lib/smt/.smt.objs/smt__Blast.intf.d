lib/smt/blast.mli: Hashtbl Sat Term
