lib/smt/interp.ml: Fmt Int64 List String Term
