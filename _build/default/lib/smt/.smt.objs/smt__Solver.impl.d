lib/smt/solver.ml: Array Blast Fmt Hashtbl Int64 Interp Lazy List Option Sat String Term
