lib/smt/solver.mli: Format Interp Term
