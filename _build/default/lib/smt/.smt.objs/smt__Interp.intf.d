lib/smt/interp.mli: Format Term
