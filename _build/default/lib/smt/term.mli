(** Terms of the llhsc constraint language: quantifier-free booleans,
    fixed-width bit-vectors (width 1–64), finite enumeration sorts (the
    paper's "hybrid theory" string encoding), and uninterpreted predicates
    over enumeration sorts (the paper's presence predicates [R]/[C]).

    Universal quantification over an enumeration sort is finite and is
    expanded by {!Solver.forall_enum}; the term language itself stays
    quantifier-free, mirroring how Z3 would ground these axioms. *)

type sort =
  | Bool
  | Bitvec of int        (** width in bits, 1..64 *)
  | Enum of string       (** named finite sort; universe declared in solver *)

type bv_unop = Bv_neg | Bv_not
type bv_binop = Bv_add | Bv_sub | Bv_mul | Bv_and | Bv_or | Bv_xor | Bv_shl | Bv_lshr
type bv_cmp = Ult | Ule | Slt | Sle

type t =
  | True
  | False
  | Bool_var of string
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Xor of t * t
  | Ite of t * t * t
  | Eq of t * t
  | Distinct of t list
  | Bv_const of { width : int; value : int64 }
  | Bv_var of string * int
  | Bv_unop of bv_unop * t
  | Bv_binop of bv_binop * t * t
  | Bv_cmp of bv_cmp * t * t
  | Bv_extract of { hi : int; lo : int; arg : t }
  | Bv_concat of t * t
  | Bv_extend of { signed : bool; by : int; arg : t }
  | Enum_const of { sort : string; value : string }
  | Enum_var of string * string  (** variable name, sort name *)
  | Pred of string * t list      (** uninterpreted predicate over enum terms *)

(** {1 Smart constructors} *)

val tt : t
val ff : t
val bool_var : string -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t
val xor : t -> t -> t
val ite : t -> t -> t -> t
val eq : t -> t -> t
val distinct : t list -> t

(** [bv ~width v] builds a bit-vector constant; the value is truncated to
    [width] bits.  Raises [Invalid_argument] unless [1 <= width <= 64]. *)
val bv : width:int -> int64 -> t

val bv_of_int : width:int -> int -> t
val bv_var : string -> width:int -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val extract : hi:int -> lo:int -> t -> t
val concat : t -> t -> t
val zero_extend : by:int -> t -> t
val sign_extend : by:int -> t -> t
val enum : sort:string -> string -> t
val enum_var : string -> sort:string -> t
val pred : string -> t list -> t

(** {1 Sort checking} *)

exception Sort_error of string

(** [sort_of ~enum_sorts t] computes the sort, raising {!Sort_error} on
    ill-sorted terms.  [enum_sorts] resolves enum sort universes (used to
    check that enum constants belong to their sort). *)
val sort_of : enum_sorts:(string -> string list option) -> t -> sort

val pp_sort : Format.formatter -> sort -> unit

(** SMT-LIB2-flavoured printer (for diagnostics and golden tests). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal_sort : sort -> sort -> bool
