(** Reference interpreter for terms under a total variable assignment.
    Used for evaluating terms in solver models and for differential testing
    of the bit-blaster. *)

type value =
  | V_bool of bool
  | V_bv of { width : int; value : int64 }
  | V_enum of { sort : string; value : string }

type env = {
  bool_var : string -> bool;
  bv_var : string -> int64;     (** masked to the variable's width *)
  enum_var : string -> string;
  pred : string -> string list -> bool;
}

exception Eval_error of string

val pp_value : Format.formatter -> value -> unit
val eval : env -> Term.t -> value

(** Structural equality of values; raises {!Eval_error} across sorts. *)
val value_equal : value -> value -> bool
