type sort =
  | Bool
  | Bitvec of int
  | Enum of string

type bv_unop = Bv_neg | Bv_not
type bv_binop = Bv_add | Bv_sub | Bv_mul | Bv_and | Bv_or | Bv_xor | Bv_shl | Bv_lshr
type bv_cmp = Ult | Ule | Slt | Sle

type t =
  | True
  | False
  | Bool_var of string
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Xor of t * t
  | Ite of t * t * t
  | Eq of t * t
  | Distinct of t list
  | Bv_const of { width : int; value : int64 }
  | Bv_var of string * int
  | Bv_unop of bv_unop * t
  | Bv_binop of bv_binop * t * t
  | Bv_cmp of bv_cmp * t * t
  | Bv_extract of { hi : int; lo : int; arg : t }
  | Bv_concat of t * t
  | Bv_extend of { signed : bool; by : int; arg : t }
  | Enum_const of { sort : string; value : string }
  | Enum_var of string * string
  | Pred of string * t list

(* --- smart constructors --------------------------------------------------- *)

let tt = True
let ff = False
let bool_var name = Bool_var name

let not_ = function
  | True -> False
  | False -> True
  | Not t -> t
  | t -> Not t

let and_ ts =
  let ts = List.filter (fun t -> t <> True) ts in
  if List.exists (fun t -> t = False) ts then False
  else match ts with [] -> True | [ t ] -> t | _ -> And ts

let or_ ts =
  let ts = List.filter (fun t -> t <> False) ts in
  if List.exists (fun t -> t = True) ts then True
  else match ts with [] -> False | [ t ] -> t | _ -> Or ts

let implies a b =
  match (a, b) with
  | True, b -> b
  | False, _ -> True
  | _, True -> True
  | a, False -> not_ a
  | _ -> Implies (a, b)

let iff a b =
  match (a, b) with
  | True, b | b, True -> b
  | False, b | b, False -> not_ b
  | _ -> Iff (a, b)

let xor a b =
  match (a, b) with
  | False, b | b, False -> b
  | True, b | b, True -> not_ b
  | _ -> Xor (a, b)

let ite c a b = match c with True -> a | False -> b | _ -> Ite (c, a, b)
let eq a b = if a = b then True else Eq (a, b)
let distinct = function [] | [ _ ] -> True | ts -> Distinct ts

let mask width v =
  if width = 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let bv ~width value =
  if width < 1 || width > 64 then invalid_arg "Term.bv: width must be in 1..64";
  Bv_const { width; value = mask width value }

let bv_of_int ~width v = bv ~width (Int64.of_int v)
let bv_var name ~width =
  if width < 1 || width > 64 then invalid_arg "Term.bv_var: width must be in 1..64";
  Bv_var (name, width)

let add a b = Bv_binop (Bv_add, a, b)
let sub a b = Bv_binop (Bv_sub, a, b)
let mul a b = Bv_binop (Bv_mul, a, b)
let neg a = Bv_unop (Bv_neg, a)
let band a b = Bv_binop (Bv_and, a, b)
let bor a b = Bv_binop (Bv_or, a, b)
let bxor a b = Bv_binop (Bv_xor, a, b)
let bnot a = Bv_unop (Bv_not, a)
let shl a b = Bv_binop (Bv_shl, a, b)
let lshr a b = Bv_binop (Bv_lshr, a, b)
let ult a b = Bv_cmp (Ult, a, b)
let ule a b = Bv_cmp (Ule, a, b)
let ugt a b = Bv_cmp (Ult, b, a)
let uge a b = Bv_cmp (Ule, b, a)
let slt a b = Bv_cmp (Slt, a, b)
let sle a b = Bv_cmp (Sle, a, b)

let extract ~hi ~lo arg =
  if lo < 0 || hi < lo then invalid_arg "Term.extract";
  Bv_extract { hi; lo; arg }

let concat a b = Bv_concat (a, b)
let zero_extend ~by arg =
  if by < 0 then invalid_arg "Term.zero_extend";
  if by = 0 then arg else Bv_extend { signed = false; by; arg }

let sign_extend ~by arg =
  if by < 0 then invalid_arg "Term.sign_extend";
  if by = 0 then arg else Bv_extend { signed = true; by; arg }

let enum ~sort value = Enum_const { sort; value }
let enum_var name ~sort = Enum_var (name, sort)
let pred name args = Pred (name, args)

(* --- sort checking -------------------------------------------------------- *)

exception Sort_error of string

let equal_sort a b =
  match (a, b) with
  | Bool, Bool -> true
  | Bitvec w, Bitvec w' -> w = w'
  | Enum s, Enum s' -> String.equal s s'
  | (Bool | Bitvec _ | Enum _), _ -> false

let pp_sort ppf = function
  | Bool -> Fmt.string ppf "Bool"
  | Bitvec w -> Fmt.pf ppf "(_ BitVec %d)" w
  | Enum s -> Fmt.pf ppf "(Enum %s)" s

let sort_error fmt = Fmt.kstr (fun msg -> raise (Sort_error msg)) fmt

let sort_of ~enum_sorts term =
  let rec go term =
    match term with
    | True | False | Bool_var _ -> Bool
    | Not t -> expect Bool t; Bool
    | And ts | Or ts ->
      List.iter (expect Bool) ts;
      Bool
    | Implies (a, b) | Iff (a, b) | Xor (a, b) ->
      expect Bool a;
      expect Bool b;
      Bool
    | Ite (c, a, b) ->
      expect Bool c;
      let sa = go a and sb = go b in
      if not (equal_sort sa sb) then
        sort_error "ite branches have sorts %a and %a" pp_sort sa pp_sort sb;
      sa
    | Eq (a, b) ->
      let sa = go a and sb = go b in
      if not (equal_sort sa sb) then
        sort_error "= applied to sorts %a and %a" pp_sort sa pp_sort sb;
      Bool
    | Distinct ts ->
      (match ts with
       | [] -> Bool
       | t :: rest ->
         let s = go t in
         List.iter (expect s) rest;
         Bool)
    | Bv_const { width; _ } -> Bitvec width
    | Bv_var (_, width) -> Bitvec width
    | Bv_unop (_, a) ->
      (match go a with
       | Bitvec w -> Bitvec w
       | s -> sort_error "bit-vector op applied to %a" pp_sort s)
    | Bv_binop (_, a, b) ->
      (match (go a, go b) with
       | Bitvec w, Bitvec w' when w = w' -> Bitvec w
       | sa, sb -> sort_error "bit-vector op applied to %a, %a" pp_sort sa pp_sort sb)
    | Bv_cmp (_, a, b) ->
      (match (go a, go b) with
       | Bitvec w, Bitvec w' when w = w' -> Bool
       | sa, sb -> sort_error "bit-vector comparison of %a, %a" pp_sort sa pp_sort sb)
    | Bv_extract { hi; lo; arg } ->
      (match go arg with
       | Bitvec w when hi < w && lo >= 0 && lo <= hi -> Bitvec (hi - lo + 1)
       | Bitvec w -> sort_error "extract [%d:%d] out of range for width %d" hi lo w
       | s -> sort_error "extract applied to %a" pp_sort s)
    | Bv_concat (a, b) ->
      (match (go a, go b) with
       | Bitvec w, Bitvec w' when w + w' <= 64 -> Bitvec (w + w')
       | Bitvec w, Bitvec w' -> sort_error "concat width %d exceeds 64" (w + w')
       | sa, sb -> sort_error "concat applied to %a, %a" pp_sort sa pp_sort sb)
    | Bv_extend { by; arg; _ } ->
      (match go arg with
       | Bitvec w when w + by <= 64 -> Bitvec (w + by)
       | Bitvec w -> sort_error "extend width %d exceeds 64" (w + by)
       | s -> sort_error "extend applied to %a" pp_sort s)
    | Enum_const { sort; value } ->
      (match enum_sorts sort with
       | None -> sort_error "unknown enum sort %s" sort
       | Some universe ->
         if not (List.mem value universe) then
           sort_error "%S is not a member of enum sort %s" value sort;
         Enum sort)
    | Enum_var (_, sort) ->
      (match enum_sorts sort with
       | None -> sort_error "unknown enum sort %s" sort
       | Some _ -> Enum sort)
    | Pred (name, args) ->
      List.iter
        (fun a ->
          match go a with
          | Enum _ -> ()
          | s -> sort_error "predicate %s applied to non-enum sort %a" name pp_sort s)
        args;
      Bool
  and expect s t =
    let s' = go t in
    if not (equal_sort s s') then
      sort_error "expected sort %a, found %a" pp_sort s pp_sort s'
  in
  go term

(* --- printing ------------------------------------------------------------- *)

let bv_unop_name = function Bv_neg -> "bvneg" | Bv_not -> "bvnot"

let bv_binop_name = function
  | Bv_add -> "bvadd"
  | Bv_sub -> "bvsub"
  | Bv_mul -> "bvmul"
  | Bv_and -> "bvand"
  | Bv_or -> "bvor"
  | Bv_xor -> "bvxor"
  | Bv_shl -> "bvshl"
  | Bv_lshr -> "bvlshr"

let bv_cmp_name = function Ult -> "bvult" | Ule -> "bvule" | Slt -> "bvslt" | Sle -> "bvsle"

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Bool_var v -> Fmt.string ppf v
  | Not t -> Fmt.pf ppf "(not %a)" pp t
  | And ts -> Fmt.pf ppf "(and %a)" Fmt.(list ~sep:sp pp) ts
  | Or ts -> Fmt.pf ppf "(or %a)" Fmt.(list ~sep:sp pp) ts
  | Implies (a, b) -> Fmt.pf ppf "(=> %a %a)" pp a pp b
  | Iff (a, b) -> Fmt.pf ppf "(= %a %a)" pp a pp b
  | Xor (a, b) -> Fmt.pf ppf "(xor %a %a)" pp a pp b
  | Ite (c, a, b) -> Fmt.pf ppf "(ite %a %a %a)" pp c pp a pp b
  | Eq (a, b) -> Fmt.pf ppf "(= %a %a)" pp a pp b
  | Distinct ts -> Fmt.pf ppf "(distinct %a)" Fmt.(list ~sep:sp pp) ts
  | Bv_const { width; value } -> Fmt.pf ppf "(_ bv%Lu %d)" value width
  | Bv_var (v, _) -> Fmt.string ppf v
  | Bv_unop (op, a) -> Fmt.pf ppf "(%s %a)" (bv_unop_name op) pp a
  | Bv_binop (op, a, b) -> Fmt.pf ppf "(%s %a %a)" (bv_binop_name op) pp a pp b
  | Bv_cmp (op, a, b) -> Fmt.pf ppf "(%s %a %a)" (bv_cmp_name op) pp a pp b
  | Bv_extract { hi; lo; arg } -> Fmt.pf ppf "((_ extract %d %d) %a)" hi lo pp arg
  | Bv_concat (a, b) -> Fmt.pf ppf "(concat %a %a)" pp a pp b
  | Bv_extend { signed; by; arg } ->
    Fmt.pf ppf "((_ %s_extend %d) %a)" (if signed then "sign" else "zero") by pp arg
  | Enum_const { value; _ } -> Fmt.pf ppf "%S" value
  | Enum_var (v, _) -> Fmt.string ppf v
  | Pred (name, args) -> Fmt.pf ppf "(%s %a)" name Fmt.(list ~sep:sp pp) args

let to_string t = Fmt.str "%a" pp t
