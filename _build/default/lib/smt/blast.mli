(** Bit-blasting of terms onto the CDCL solver — the route the paper
    ascribes to Z3 for its address constraints (§IV-C).

    Booleans become literals; a width-w bit-vector becomes w literals (LSB
    first); enum values are bit-vectors of ceil(log2 n) bits constrained
    below the universe size; predicates over enum sorts are grounded over
    the finite universe.  All gates use the definitional (both-polarity)
    encoding so blasted literals can be assumed under either sign.

    The variable tables are exposed for model extraction by {!Solver}. *)

type ctx = {
  sat : Sat.Solver.t;
  true_lit : Sat.Lit.t;
  bool_memo : (Term.t, Sat.Lit.t) Hashtbl.t;
  bv_memo : (Term.t, Sat.Lit.t array) Hashtbl.t;
  bool_vars : (string, Sat.Lit.t) Hashtbl.t;
  bv_vars : (string, Sat.Lit.t array) Hashtbl.t;
  enum_vars : (string, string * Sat.Lit.t array) Hashtbl.t; (** name -> sort, bits *)
  pred_vars : (string, Sat.Lit.t) Hashtbl.t; (** key: "name(v1,...,vk)" *)
  enum_universe : string -> string array;
  sort_of : Term.t -> Term.sort;
}

val create :
  sat:Sat.Solver.t ->
  enum_universe:(string -> string array) ->
  sort_of:(Term.t -> Term.sort) ->
  ctx

(** Bits needed to encode a universe of [n] values (min 1). *)
val enum_width : int -> int

(** Blast a boolean term to a literal equivalent to it in every model.
    Raises [Invalid_argument] on non-boolean terms. *)
val blast_bool : ctx -> Term.t -> Sat.Lit.t

(** Blast a bit-vector or enum term to its bit literals. *)
val blast_bv : ctx -> Term.t -> Sat.Lit.t array
