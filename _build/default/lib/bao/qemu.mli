(** QEMU rendering of a checked DTS product — the "other virtualization
    solutions such as QEMU" path of §V, for aarch64 and RV64. *)

type arch = Aarch64 | Rv64

exception Error of string

val arch_of_string : string -> arch
val arch_name : arch -> string

(** Total memory (MiB) across the tree's memory nodes. *)
val memory_mib : Devicetree.Tree.t -> int

(** CPU count under /cpus (at least 1). *)
val smp : Devicetree.Tree.t -> int

(** Command-line argv for booting the product (the DTB from
    [Devicetree.Fdt.encode] goes to [dtb_path]).  Raises {!Error} when the
    product has no memory. *)
val command : ?dtb_path:string -> arch:arch -> Devicetree.Tree.t -> string list

val command_line : ?dtb_path:string -> arch:arch -> Devicetree.Tree.t -> string
