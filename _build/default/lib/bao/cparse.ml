(* Parser for the C struct-literal subset the generators emit: designated
   initializers, nested braces, arrays with casts, hex/binary/decimal
   integers, and macro invocations (kept as atoms).  It exists so the test
   suite can *round-trip* Listing 3/Listing 6 files — parse the generated C
   back and compare against the structures that produced it — instead of
   merely grepping for substrings. *)

type cvalue =
  | Int of int64
  | Atom of string (* CONFIG_HEADER, VM_IMAGE_OFFSET(vm1), string literals *)
  | Struct of (string option * cvalue) list
      (* field designator (".x" or "[i]") or positional *)

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

(* --- tokenizer ------------------------------------------------------------- *)

type token =
  | IDENT of string
  | NUMBER of int64
  | STRING of string
  | DOT
  | COMMA
  | EQUALS
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | EOF

let tokenize src =
  let toks = ref [] in
  let n = String.length src in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  let is_ident c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (src.[!i] = '*' && src.[!i + 1] = '/') do
        incr i
      done;
      i := !i + 2
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '#' then
      (* preprocessor line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '"' then begin
      let start = !i + 1 in
      incr i;
      while !i < n && src.[!i] <> '"' do
        incr i
      done;
      push (STRING (String.sub src start (!i - start)));
      incr i
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      incr i;
      while !i < n && (is_ident src.[!i]) do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      let value =
        if String.length text > 2 && text.[0] = '0' && (text.[1] = 'b' || text.[1] = 'B') then
          (* OCaml's Int64.of_string understands 0b *)
          Int64.of_string_opt text
        else Int64.of_string_opt text
      in
      match value with
      | Some v -> push (NUMBER v)
      | None -> error "bad number %S" text
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      push (IDENT (String.sub src start (!i - start)))
    end
    else begin
      (match c with
       | '.' -> push DOT
       | ',' -> push COMMA
       | '=' -> push EQUALS
       | '{' -> push LBRACE
       | '}' -> push RBRACE
       | '(' -> push LPAREN
       | ')' -> push RPAREN
       | '[' -> push LBRACKET
       | ']' -> push RBRACKET
       | ';' -> push SEMI
       | '*' | '&' -> () (* pointers in casts: ignore *)
       | c -> error "unexpected character %C" c);
      incr i
    end
  done;
  push EOF;
  Array.of_list (List.rev !toks)

(* --- parser ----------------------------------------------------------------- *)

type state = { toks : token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st else error "expected %s" what

(* Skip a parenthesised cast like (struct mem_region[]) or (uint8_t[]). *)
let skip_cast st =
  if peek st = LPAREN then begin
    let depth = ref 0 in
    let continue = ref true in
    while !continue do
      (match peek st with
       | LPAREN -> incr depth
       | RPAREN ->
         decr depth;
         if !depth = 0 then continue := false
       | EOF -> error "unterminated cast"
       | _ -> ());
      advance st
    done
  end

let rec parse_value st =
  skip_cast st;
  match peek st with
  | NUMBER v ->
    advance st;
    Int v
  | STRING s ->
    advance st;
    Atom s
  | IDENT name -> begin
    advance st;
    (* Macro invocation: flatten to an atom. *)
    if peek st = LPAREN then begin
      let buf = Buffer.create 16 in
      Buffer.add_string buf name;
      let depth = ref 0 in
      let continue = ref true in
      while !continue do
        (match peek st with
         | LPAREN ->
           incr depth;
           Buffer.add_char buf '('
         | RPAREN ->
           decr depth;
           Buffer.add_char buf ')';
           if !depth = 0 then continue := false
         | IDENT s -> Buffer.add_string buf s
         | NUMBER v -> Buffer.add_string buf (Int64.to_string v)
         | COMMA -> Buffer.add_char buf ','
         | DOT -> Buffer.add_char buf '.'
         | EOF -> error "unterminated macro call"
         | _ -> ());
        advance st
      done;
      Atom (Buffer.contents buf)
    end
    else Atom name
  end
  | LBRACE -> parse_struct st
  | tok ->
    ignore tok;
    error "expected a value"

and parse_struct st =
  expect st LBRACE "'{'";
  let fields = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | RBRACE ->
      advance st;
      continue := false
    | COMMA -> advance st
    | DOT -> begin
      advance st;
      match peek st with
      | IDENT name ->
        advance st;
        expect st EQUALS "'='";
        fields := (Some ("." ^ name), parse_value st) :: !fields
      | _ -> error "expected field name after '.'"
    end
    | LBRACKET -> begin
      advance st;
      match peek st with
      | NUMBER idx ->
        advance st;
        expect st RBRACKET "']'";
        expect st EQUALS "'='";
        fields := (Some (Printf.sprintf "[%Ld]" idx), parse_value st) :: !fields
      | _ -> error "expected index after '['"
    end
    | EOF -> error "unterminated initializer"
    | _ -> fields := (None, parse_value st) :: !fields
  done;
  Struct (List.rev !fields)

(* Parse "... <ident> = { ... };" — the single top-level definition the
   generators emit — returning the initializer. *)
let parse_toplevel src =
  let st = { toks = tokenize src; pos = 0 } in
  (* Scan forward to the first '=' at depth 0, then parse the value. *)
  let continue = ref true in
  while !continue do
    match peek st with
    | EQUALS ->
      advance st;
      continue := false
    | EOF -> error "no definition found"
    | _ -> advance st
  done;
  let v = parse_value st in
  v

(* --- accessors ---------------------------------------------------------------- *)

let field name = function
  | Struct fields -> List.assoc_opt (Some name) fields
  | Int _ | Atom _ -> None

let field_exn name v =
  match field name v with
  | Some x -> x
  | None -> error "missing field %s" name

let as_int = function
  | Int v -> v
  | Atom a -> error "expected integer, got atom %s" a
  | Struct _ -> error "expected integer, got struct"

let positional = function
  | Struct fields -> List.filter_map (fun (n, v) -> if n = None then Some v else None) fields
  | Int _ | Atom _ -> []

(* --- domain extraction ----------------------------------------------------------- *)

(* Re-extract a platform description from generated Listing-3 C text. *)
let platform_of_string src =
  let v = parse_toplevel src in
  let regions =
    positional (field_exn ".regions" v)
    |> List.map (fun r ->
           { Platform.base = as_int (field_exn ".base" r);
             size = as_int (field_exn ".size" r)
           })
  in
  let console_base = Option.map (fun c -> as_int (field_exn ".base" c)) (field ".console" v) in
  let arch = field_exn ".arch" v in
  let clusters = field_exn ".clusters" arch in
  let core_nums = List.map as_int (positional (field_exn ".core_num" clusters)) in
  {
    Platform.cpu_num = Int64.to_int (as_int (field_exn ".cpu_num" v));
    core_nums = List.map Int64.to_int core_nums;
    regions;
    console_base;
  }

type vm_summary = {
  entry : int64;
  cpu_affinity : int64;
  cpu_num : int;
  region_count : int;
  dev_count : int;
  ipc_count : int;
  interrupts : int64 list;
}

(* Re-extract the per-VM structure from generated Listing-6 C text. *)
let config_summary_of_string src =
  let v = parse_toplevel src in
  let vms =
    positional (field_exn ".vmlist" v)
    |> List.map (fun vm ->
           let platform = field_exn ".platform" vm in
           {
             entry = as_int (field_exn ".entry" vm);
             cpu_affinity = as_int (field_exn ".cpu_affinity" vm);
             cpu_num = Int64.to_int (as_int (field_exn ".cpu_num" platform));
             region_count = List.length (positional (field_exn ".regions" platform));
             dev_count =
               (match field ".devs" platform with
                | Some d -> List.length (positional d)
                | None -> 0);
             ipc_count =
               (match field ".ipcs" vm with Some i -> List.length (positional i) | None -> 0);
             interrupts =
               (match field ".interrupts" platform with
                | Some i -> List.map as_int (positional i)
                | None -> []);
           })
  in
  let shmem_count =
    match field ".shmemlist" v with
    | Some (Struct fields) -> List.length fields
    | _ -> 0
  in
  (vms, shmem_count)
