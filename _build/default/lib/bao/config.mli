(** Bao VM configuration: the [struct config] C file (Listing 6) generated
    from the per-VM DTSs. *)

type dev_region = {
  pa : int64;
  va : int64;
  size : int64;
}

type ipc = {
  ipc_base : int64;
  ipc_size : int64;
  shmem_id : int;
}

type vm = {
  name : string;
  image_base : int64;
  entry : int64;
  cpu_affinity : int; (** bitmask over CPU ids *)
  cpu_num : int;
  regions : Platform.mem_region list;
  devs : dev_region list; (** pass-through MMIO devices, pa = va *)
  ipcs : ipc list;        (** virtual Ethernet / shared-memory channels *)
  interrupts : int64 list; (** pass-through interrupt lines, deduplicated *)
}

type t = {
  vms : vm list;
  shmem_sizes : (int * int64) list; (** shmem id -> size *)
}

exception Error of string

(** Default shared-memory object size per veth channel (Listing 6). *)
val default_shmem_size : int64

(** Extract one VM's configuration from its DTS. *)
val vm_of_tree : name:string -> Devicetree.Tree.t -> vm

(** Build the full configuration from named VM trees. *)
val of_vm_trees : (string * Devicetree.Tree.t) list -> t

(** Render the C file in the shape of Listing 6. *)
val to_c : t -> string

val pp_vm : Format.formatter -> vm -> unit
