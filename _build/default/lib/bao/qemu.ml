(* QEMU rendering of a checked DTS product: the "other virtualization
   solutions such as QEMU" path of §V.  The product's devices map onto a
   qemu-system command line (aarch64 or riscv64), and the DTB produced by
   [Devicetree.Fdt] can be passed through -dtb. *)

module T = Devicetree.Tree
module Addr = Devicetree.Addresses

type arch = Aarch64 | Rv64

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

let arch_of_string = function
  | "aarch64" -> Aarch64
  | "rv64" | "riscv64" -> Rv64
  | s -> error "unsupported architecture %s (use aarch64 or rv64)" s

let arch_name = function Aarch64 -> "aarch64" | Rv64 -> "riscv64"
let machine = function Aarch64 -> "virt" | Rv64 -> "virt"
let cpu_model = function Aarch64 -> "cortex-a53" | Rv64 -> "rv64"

(* Total memory in MiB across the tree's memory nodes. *)
let memory_mib tree =
  let bytes =
    List.fold_left
      (fun acc (nr : Addr.node_regions) ->
        match T.find tree nr.Addr.path with
        | Some node when Platform.is_memory_node node ->
          List.fold_left (fun acc (r : Addr.region) -> Int64.add acc r.Addr.size) acc nr.Addr.regions
        | Some _ | None -> acc)
      0L
      (Addr.regions_in_root_space tree)
  in
  Int64.to_int (Int64.div bytes 0x100000L)

let smp tree =
  match T.find tree "/cpus" with
  | None -> 1
  | Some cpus -> max 1 (List.length (List.filter Platform.is_cpu_node cpus.T.children))

(* Command-line arguments for booting the product under QEMU. *)
let command ?(dtb_path = "product.dtb") ~arch tree =
  let mem = memory_mib tree in
  if mem = 0 then error "product has no memory; cannot boot";
  let base =
    [ Printf.sprintf "qemu-system-%s" (arch_name arch);
      "-machine"; machine arch;
      "-cpu"; cpu_model arch;
      "-smp"; string_of_int (smp tree);
      "-m"; string_of_int mem;
      "-nographic";
      "-dtb"; dtb_path
    ]
  in
  let uarts =
    T.fold
      (fun _path node acc -> if Platform.is_uart_node node then acc + 1 else acc)
      tree 0
  in
  let serials = List.concat (List.init uarts (fun _ -> [ "-serial"; "mon:stdio" ])) in
  base @ serials

let command_line ?dtb_path ~arch tree =
  String.concat " " (command ?dtb_path ~arch tree)
