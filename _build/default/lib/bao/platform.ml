(* Bao platform description (Listing 3): the `struct platform_desc` C file
   generated from the *platform* DTS — the union product of all VMs.

   Extraction rules:
   - cpu_num / clusters: the /cpus node; each child cluster (or the cpus
     node itself when cpus are direct children) contributes its core count;
   - regions: the reg banks of every device_type = "memory" node;
   - console: the first UART-compatible node's base address. *)

module T = Devicetree.Tree
module Addr = Devicetree.Addresses

type mem_region = {
  base : int64;
  size : int64;
}

type t = {
  cpu_num : int;
  core_nums : int list; (* cores per cluster *)
  regions : mem_region list;
  console_base : int64 option;
}

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

let uart_compatibles = [ "ns16550a"; "ns16550"; "arm,pl011"; "snps,dw-apb-uart" ]

let is_memory_node node =
  match T.get_prop node "device_type" with
  | Some p -> T.prop_string p = Some "memory"
  | None -> false

let is_uart_node node =
  match T.get_prop node "compatible" with
  | Some p -> List.exists (fun c -> List.mem c uart_compatibles) (T.prop_strings p)
  | None -> false

let is_cpu_node node =
  match T.get_prop node "device_type" with
  | Some p -> T.prop_string p = Some "cpu"
  | None -> Devicetree.Ast.base_name node.T.name = "cpu"

(* Memory-mapped regions of nodes satisfying [select], in root space. *)
let regions_of tree ~select =
  List.concat_map
    (fun (nr : Addr.node_regions) ->
      match T.find tree nr.Addr.path with
      | Some node when select node ->
        List.map (fun (r : Addr.region) -> { base = r.Addr.base; size = r.Addr.size }) nr.Addr.regions
      | Some _ | None -> [])
    (Addr.regions_in_root_space tree)

let of_tree tree =
  let cpus =
    match T.find tree "/cpus" with
    | Some c -> c
    | None -> error "platform DTS has no /cpus node"
  in
  (* Clusters: children that are themselves containers of cpu nodes; when
     cpu nodes hang directly off /cpus, that is a single cluster. *)
  let direct_cpus = List.filter is_cpu_node cpus.T.children in
  let cluster_nodes =
    List.filter
      (fun c -> (not (is_cpu_node c)) && List.exists is_cpu_node c.T.children)
      cpus.T.children
  in
  let core_nums =
    match (direct_cpus, cluster_nodes) with
    | [], [] -> error "no cpu nodes under /cpus"
    | [], clusters -> List.map (fun c -> List.length (List.filter is_cpu_node c.T.children)) clusters
    | cpus, [] -> [ List.length cpus ]
    | cpus, clusters ->
      List.length cpus :: List.map (fun c -> List.length (List.filter is_cpu_node c.T.children)) clusters
  in
  let regions = regions_of tree ~select:is_memory_node in
  if regions = [] then error "platform DTS has no memory regions";
  let console_base =
    match regions_of tree ~select:is_uart_node with
    | { base; _ } :: _ -> Some base
    | [] -> None
  in
  { cpu_num = List.fold_left ( + ) 0 core_nums; core_nums; regions; console_base }

(* Render the platform_desc C file in the shape of Listing 3. *)
let to_c t =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "#include <platform.h>\n\n";
  add "struct platform_desc platform = {\n";
  add "    .cpu_num = %d,\n" t.cpu_num;
  add "    .region_num = %d,\n" (List.length t.regions);
  add "    .regions = (struct mem_region[]) {\n";
  List.iter
    (fun r -> add "        { .base = 0x%Lx, .size = 0x%Lx },\n" r.base r.size)
    t.regions;
  add "    },\n";
  (match t.console_base with
   | Some base ->
     add "\n";
     add "    .console = { .base = 0x%Lx },\n" base
   | None -> ());
  add "\n";
  add "    .arch = {\n";
  add "        .clusters = {\n";
  add "            .num = %d,\n" (List.length t.core_nums);
  add "            .core_num = (uint8_t[]) {%s}\n"
    (String.concat ", " (List.map string_of_int t.core_nums));
  add "        },\n";
  add "    }\n";
  add "};\n";
  Buffer.contents buf

let pp ppf t =
  Fmt.pf ppf "platform: %d cpu(s) in %d cluster(s), %d memory region(s)%a" t.cpu_num
    (List.length t.core_nums) (List.length t.regions)
    Fmt.(option (fun ppf b -> pf ppf ", console at 0x%Lx" b))
    t.console_base
