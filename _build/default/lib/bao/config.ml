(* Bao VM configuration (Listing 6): the `struct config` C file generated
   from the per-VM DTSs.

   Extraction per VM tree:
   - regions: the VM's memory banks (device_type = "memory");
   - entry/image base: the first memory bank's base;
   - cpu_affinity: a bitmask over the CPU ids present under /cpus;
   - devs: pass-through devices with a reg (UARTs and other MMIO devices,
     excluding memory and virtual devices) — pa = va, per the paper's
     simplifying assumption in §IV-C;
   - ipcs/shmem: the virtual Ethernet devices (compatible = "veth"), one
     shared-memory object per veth id. *)

module T = Devicetree.Tree
module Addr = Devicetree.Addresses

type dev_region = {
  pa : int64;
  va : int64;
  size : int64;
}

type ipc = {
  ipc_base : int64;
  ipc_size : int64;
  shmem_id : int;
}

type vm = {
  name : string;
  image_base : int64;
  entry : int64;
  cpu_affinity : int;
  cpu_num : int;
  regions : Platform.mem_region list;
  devs : dev_region list;
  ipcs : ipc list;
  interrupts : int64 list; (* pass-through interrupt lines, deduplicated *)
}

type t = {
  vms : vm list;
  shmem_sizes : (int * int64) list; (* shmem id -> size *)
}

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

let is_veth_node node =
  match T.get_prop node "compatible" with
  | Some p -> List.mem "veth" (T.prop_strings p)
  | None -> false

let cpu_ids tree =
  match T.find tree "/cpus" with
  | None -> []
  | Some cpus ->
    (* CPUs may hang directly off /cpus or inside cluster containers. *)
    let rec collect node acc =
      let acc =
        if Platform.is_cpu_node node then
          match T.get_prop node "reg" with
          | Some p ->
            (match T.prop_u32s p with id :: _ -> Int64.to_int id :: acc | [] -> acc)
          | None -> acc
        else acc
      in
      List.fold_left (fun acc c -> collect c acc) acc node.T.children
    in
    List.rev (collect cpus [])

let node_regions_matching tree ~select =
  List.concat_map
    (fun (nr : Addr.node_regions) ->
      match T.find tree nr.Addr.path with
      | Some node when select node ->
        List.map (fun (r : Addr.region) -> (nr.Addr.path, r)) nr.Addr.regions
      | Some _ | None -> [])
    (Addr.regions_in_root_space tree)

let vm_of_tree ~name tree =
  let memory =
    List.map
      (fun (_, (r : Addr.region)) -> { Platform.base = r.Addr.base; size = r.Addr.size })
      (node_regions_matching tree ~select:Platform.is_memory_node)
  in
  (match memory with
   | [] -> error "VM %s has no memory regions" name
   | _ -> ());
  let entry = (List.hd memory).Platform.base in
  let ids = cpu_ids tree in
  let cpu_affinity = List.fold_left (fun acc id -> acc lor (1 lsl id)) 0 ids in
  let devs =
    node_regions_matching tree ~select:(fun node ->
        (not (Platform.is_memory_node node))
        && (not (is_veth_node node))
        && not (Platform.is_cpu_node node))
    |> List.map (fun (_, (r : Addr.region)) ->
           { pa = r.Addr.base; va = r.Addr.base; size = r.Addr.size })
  in
  let interrupts =
    match Devicetree.Interrupts.specs (T.resolve_phandles tree) with
    | exception Devicetree.Interrupts.Error _ -> []
    | specs ->
      List.sort_uniq Int64.compare
        (List.filter_map
           (fun s ->
             match s.Devicetree.Interrupts.cells with
             | irq :: _ -> Some irq
             | [] -> None)
           specs)
  in
  let ipcs =
    T.fold
      (fun _path node acc ->
        if is_veth_node node then begin
          let id =
            match T.get_prop node "id" with
            | Some p -> (match T.prop_u32s p with v :: _ -> Int64.to_int v | [] -> 0)
            | None -> 0
          in
          match T.get_prop node "reg" with
          | Some p ->
            (match T.prop_u32s p with
             | [ base; size ] ->
               { ipc_base = base; ipc_size = size; shmem_id = id } :: acc
             | _ -> error "VM %s: veth node has malformed reg" name)
          | None -> acc
        end
        else acc)
      tree []
    |> List.rev
  in
  {
    name;
    image_base = entry;
    entry;
    cpu_affinity;
    cpu_num = List.length ids;
    regions = memory;
    devs;
    ipcs;
    interrupts;
  }

(* Default shared-memory object size for a veth channel (Listing 6). *)
let default_shmem_size = 0x10000L

let of_vm_trees named_trees =
  let vms = List.map (fun (name, tree) -> vm_of_tree ~name tree) named_trees in
  let shmem_sizes =
    List.sort_uniq compare
      (List.concat_map (fun vm -> List.map (fun i -> (i.shmem_id, default_shmem_size)) vm.ipcs) vms)
  in
  { vms; shmem_sizes }

(* Render the struct config C file in the shape of Listing 6. *)
let to_c t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "#include <config.h>\n\n";
  List.iter (fun vm -> add "VM_IMAGE(%s, %s.bin);\n" vm.name vm.name) t.vms;
  add "\nstruct config config = {\n";
  add "    CONFIG_HEADER\n";
  add "    .vmlist_size = %d,\n" (List.length t.vms);
  add "    .vmlist = {\n";
  List.iter
    (fun vm ->
      add "        { .image = {\n";
      add "              .base_addr = 0x%Lx,\n" vm.image_base;
      add "              .load_addr = VM_IMAGE_OFFSET(%s),\n" vm.name;
      add "              .size = VM_IMAGE_SIZE(%s)\n" vm.name;
      add "          },\n";
      add "          .entry = 0x%Lx,\n" vm.entry;
      add "          .cpu_affinity = 0b%s,\n"
        (if vm.cpu_affinity = 0 then "0"
         else
           let rec bits n = if n = 0 then "" else bits (n lsr 1) ^ string_of_int (n land 1) in
           bits vm.cpu_affinity);
      add "          .platform = { .cpu_num = %d, .dev_num = %d,\n" vm.cpu_num
        (List.length vm.devs);
      add "              .region_num = %d,\n" (List.length vm.regions);
      add "              .regions = (struct mem_region[]) {\n";
      List.iter
        (fun (r : Platform.mem_region) ->
          add "                  { .base = 0x%Lx, .size = 0x%Lx },\n" r.Platform.base
            r.Platform.size)
        vm.regions;
      add "              },\n";
      if vm.devs <> [] then begin
        add "              .devs = (struct dev_region[]) {\n";
        List.iter
          (fun d ->
            add "                  { .pa = 0x%Lx, .va = 0x%Lx, .size = 0x%Lx },\n" d.pa d.va
              d.size)
          vm.devs;
        add "              },\n"
      end;
      if vm.interrupts <> [] then begin
        add "              .interrupt_num = %d,\n" (List.length vm.interrupts);
        add "              .interrupts = (irqid_t[]) {%s},\n"
          (String.concat ", " (List.map Int64.to_string vm.interrupts))
      end;
      add "          },\n";
      if vm.ipcs <> [] then begin
        add "          .ipc_num = %d,\n" (List.length vm.ipcs);
        add "          .ipcs = (struct ipc[]) {\n";
        List.iter
          (fun i ->
            add "              { .base = 0x%Lx, .size = 0x%Lx, .shmem_id = %d },\n" i.ipc_base
              i.ipc_size i.shmem_id)
          vm.ipcs;
        add "          },\n"
      end;
      add "        },\n")
    t.vms;
  add "    },\n";
  if t.shmem_sizes <> [] then begin
    add "    .shmemlist_size = %d,\n" (List.length t.shmem_sizes);
    add "    .shmemlist = (struct shmem[]) {\n";
    List.iter (fun (id, size) -> add "        [%d] = { .size = 0x%Lx },\n" id size) t.shmem_sizes;
    add "    },\n"
  end;
  add "};\n";
  Buffer.contents buf

let pp_vm ppf vm =
  Fmt.pf ppf "vm %s: %d cpu(s) (affinity 0x%x), %d region(s), %d dev(s), %d ipc(s), %d irq(s)"
    vm.name vm.cpu_num vm.cpu_affinity (List.length vm.regions) (List.length vm.devs)
    (List.length vm.ipcs) (List.length vm.interrupts)
