(** Parser for the C struct-literal subset the generators emit, so the test
    suite can round-trip Listing 3/Listing 6 files: parse the generated C
    back and compare it with the structures that produced it. *)

type cvalue =
  | Int of int64
  | Atom of string (** macros, identifiers and string literals *)
  | Struct of (string option * cvalue) list
      (** field designator (".x"/"[i]") or positional *)

exception Error of string

(** Initializer of the single top-level definition in the text. *)
val parse_toplevel : string -> cvalue

val field : string -> cvalue -> cvalue option
val field_exn : string -> cvalue -> cvalue
val as_int : cvalue -> int64

(** Positional (undesignated) elements of a struct/array initializer. *)
val positional : cvalue -> cvalue list

(** Re-extract the platform description from Listing-3 C text. *)
val platform_of_string : string -> Platform.t

type vm_summary = {
  entry : int64;
  cpu_affinity : int64;
  cpu_num : int;
  region_count : int;
  dev_count : int;
  ipc_count : int;
  interrupts : int64 list;
}

(** Per-VM summaries and the shmem count from Listing-6 C text. *)
val config_summary_of_string : string -> vm_summary list * int
