lib/bao/config.mli: Devicetree Format Platform
