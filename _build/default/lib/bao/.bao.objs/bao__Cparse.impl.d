lib/bao/cparse.ml: Array Buffer Fmt Int64 List Option Platform Printf String
