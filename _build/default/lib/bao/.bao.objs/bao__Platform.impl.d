lib/bao/platform.ml: Buffer Devicetree Fmt List Printf String
