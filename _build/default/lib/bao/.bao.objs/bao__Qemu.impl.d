lib/bao/qemu.ml: Devicetree Fmt Int64 List Platform Printf String
