lib/bao/platform.mli: Devicetree Format
