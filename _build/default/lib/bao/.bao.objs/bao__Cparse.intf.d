lib/bao/cparse.mli: Platform
