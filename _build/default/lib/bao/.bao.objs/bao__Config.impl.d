lib/bao/config.ml: Buffer Devicetree Fmt Int64 List Platform Printf String
