lib/bao/qemu.mli: Devicetree
