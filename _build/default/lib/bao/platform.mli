(** Bao platform description: the [struct platform_desc] C file (Listing 3)
    generated from the platform DTS (the union product of all VMs). *)

type mem_region = {
  base : int64;
  size : int64;
}

type t = {
  cpu_num : int;
  core_nums : int list; (** cores per cluster *)
  regions : mem_region list;
  console_base : int64 option;
}

exception Error of string

(** Node classifiers shared with {!Config}. *)
val is_memory_node : Devicetree.Tree.t -> bool

val is_uart_node : Devicetree.Tree.t -> bool
val is_cpu_node : Devicetree.Tree.t -> bool

(** Extract the platform description; requires a /cpus node with cpu
    children and at least one memory region. *)
val of_tree : Devicetree.Tree.t -> t

(** Render the C file in the shape of Listing 3. *)
val to_c : t -> string

val pp : Format.formatter -> t -> unit
