(** Application of delta modules to a core DTS (DOP semantics, §III-B):
    activation by feature selection, linearisation of the [after] partial
    order, application of operations, and error trace-back to the offending
    delta. *)

type error = {
  delta : string option; (** [None] = ordering-level error *)
  message : string;
  loc : Devicetree.Loc.t;
}

exception Error of error

val pp_error : Format.formatter -> error -> unit

(** Is a delta activated by the selected feature set? *)
val is_active : selected:string list -> Lang.t -> bool

val active_deltas : selected:string list -> Lang.t list -> Lang.t list

(** Linearise deltas along [after] (edges to absent deltas are ignored).
    Where the partial order leaves a choice, structural deltas
    (modifies/removes only) apply before additive ones, then declaration
    order — the deterministic rule that reproduces §III-B's sequences.
    Raises {!Error} on cycles. *)
val linearize : Lang.t list -> Lang.t list

(** Application order (delta names) for a selection, e.g.
    ["d3"; "d4"; "d1"]. *)
val order : selected:string list -> Lang.t list -> string list

(** Apply one delta; raises {!Error} naming the delta on any failure. *)
val apply_delta : Devicetree.Tree.t -> Lang.t -> Devicetree.Tree.t

(** Generate the product for a feature selection: activate, order, apply. *)
val generate :
  core:Devicetree.Tree.t -> deltas:Lang.t list -> selected:string list -> Devicetree.Tree.t
