(** Parser for delta files:

    {v
    delta d1 after d3 when veth0 {
        adds binding vEthernet { veth0@80000000 { ... }; };
    }
    v}

    Operation bodies are ordinary DTS node bodies (the DeviceTree grammar is
    reused).  Targets are ["/"], bare node names (resolved uniquely at
    application time), or absolute paths. *)

exception Error of string * Devicetree.Loc.t

(** Parse a delta file.  With [validate_refs] (the default), checks that
    delta names are unique and every [after] references a declared delta;
    pass [~validate_refs:false] when assembling a delta set from several
    files and run {!validate} on the concatenation instead. *)
val parse : ?validate_refs:bool -> file:string -> string -> Lang.t list

(** Referential validation of a (possibly multi-file) delta set. *)
val validate : Lang.t list -> unit
