lib/delta/analysis.ml: Devicetree Featuremodel Fmt Lang List Printf Sat String
