lib/delta/parse.ml: Array Devicetree Featuremodel Fmt Lang List String
