lib/delta/parse.mli: Devicetree Lang
