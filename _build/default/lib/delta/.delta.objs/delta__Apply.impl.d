lib/delta/apply.ml: Devicetree Featuremodel Fmt Lang List String
