lib/delta/lang.mli: Devicetree Featuremodel Format
