lib/delta/apply.mli: Devicetree Format Lang
