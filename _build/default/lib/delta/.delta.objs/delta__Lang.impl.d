lib/delta/lang.ml: Devicetree Featuremodel Fmt String
