lib/delta/analysis.mli: Featuremodel Format Lang
