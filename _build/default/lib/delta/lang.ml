(* The delta-module language for DTS product lines (Listing 4):

     delta d1 after d3 when veth0 {
         adds binding vEthernet {
             veth0@80000000 {
                 compatible = "veth";
                 reg = <0x80000000 0x10000000>;
                 id = <0>;
             };
         };
     }

   A delta is activated by the [when] formula over feature names; [after]
   induces a strict partial order among *active* deltas that the applier
   linearises.  Operation targets are node names (resolved uniquely in the
   tree) or absolute paths. *)

type operation =
  | Adds of { target : string; body : Devicetree.Ast.node }
      (** add the body's properties and child nodes to [target]; adding
          something that already exists is an error *)
  | Modifies of { target : string; body : Devicetree.Ast.node }
      (** merge the body into [target] with dtc overlay semantics *)
  | Removes of { target : string }  (** delete the [target] node *)

type t = {
  name : string;
  after : string list;
  condition : Featuremodel.Bexpr.t option; (* [when] clause; None = always active *)
  ops : operation list;
  loc : Devicetree.Loc.t;
}

let operation_target = function
  | Adds { target; _ } | Modifies { target; _ } | Removes { target } -> target

let pp_operation ppf = function
  | Adds { target; _ } -> Fmt.pf ppf "adds binding %s" target
  | Modifies { target; _ } -> Fmt.pf ppf "modifies %s" target
  | Removes { target } -> Fmt.pf ppf "removes %s" target

let pp ppf d =
  Fmt.pf ppf "delta %s%s%a { %a }" d.name
    (match d.after with [] -> "" | a -> " after " ^ String.concat ", " a)
    Fmt.(option (fun ppf c -> pf ppf " when %a" Featuremodel.Bexpr.pp c))
    d.condition
    Fmt.(list ~sep:(any "; ") pp_operation)
    d.ops
