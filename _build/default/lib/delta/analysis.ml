(* Static analysis of a delta set against a feature model — product-line
   level well-formedness beyond single-product application:

   - *dead* deltas: the activation condition is satisfiable in no valid
     product (the delta can never fire);
   - *always-on* deltas: active in every product (should arguably be part
     of the core module);
   - *conflicts*: two deltas that some product activates together, whose
     application order is not fixed by [after], and that write the same
     property of the same target (or one removes a node the other writes).
     The product's DTS then depends on the linearizer's tie-breaking — the
     classic DOP conflict the [after] clauses exist to prevent.

   All "is there a product such that ..." questions are SAT queries on the
   feature model. *)

type conflict = {
  delta_a : string;
  delta_b : string;
  target : string; (* node the two deltas both write *)
  detail : string; (* which property/child, or removal *)
}

type result = {
  dead : string list;
  always_on : string list;
  conflicts : conflict list;
}

(* Feature-model satisfiability of [cond] (plus the model itself). *)
let activatable env cond =
  match cond with
  | None -> true
  | Some cond ->
    let names = Featuremodel.Bexpr.vars cond in
    ignore names;
    (* Encode: FM ∧ cond.  Reuse the Analysis solver via an assumption on a
       fresh guarded definition is not exposed; simplest is a fresh encode
       per query on small models, but we can piggyback on
       is_consistent_selection only for conjunctions of literals.  General
       conditions get a dedicated solver. *)
    let model = env in
    let solver = Sat.Solver.create () in
    let vars =
      List.map
        (fun name -> (name, Sat.Solver.new_var solver))
        (Featuremodel.Model.feature_names model)
    in
    let lookup n = List.assoc n vars in
    ignore
      (Sat.Formula.assert_in solver (Featuremodel.Analysis.formula model lookup) : bool);
    ignore
      (Sat.Formula.assert_in solver (Featuremodel.Bexpr.to_formula lookup cond) : bool);
    Sat.Solver.solve solver = Sat.Solver.Sat

let co_activatable model a b =
  let conj =
    match (a.Lang.condition, b.Lang.condition) with
    | None, None -> None
    | Some c, None | None, Some c -> Some c
    | Some ca, Some cb -> Some (Featuremodel.Bexpr.And (ca, cb))
  in
  activatable model conj

let never_inactive model (d : Lang.t) =
  match d.Lang.condition with
  | None -> true
  | Some cond -> not (activatable model (Some (Featuremodel.Bexpr.Not cond)))

(* The (target, item) pairs a delta writes; items are property names, child
   node names, or `Remove for whole-node removal. *)
let writes (d : Lang.t) =
  List.concat_map
    (fun op ->
      match op with
      | Lang.Removes { target } -> [ (target, `Remove) ]
      | Lang.Adds { target; body } | Lang.Modifies { target; body } ->
        List.filter_map
          (function
            | Devicetree.Ast.Prop { prop_name; _ } -> Some (target, `Prop prop_name)
            | Devicetree.Ast.Child c -> Some (target, `Child c.Devicetree.Ast.node_name)
            | Devicetree.Ast.Delete_node (n, _) -> Some (target, `Child n)
            | Devicetree.Ast.Delete_prop (p, _) -> Some (target, `Prop p))
          body.Devicetree.Ast.node_entries)
    d.Lang.ops

(* Is the order of a and b fixed by the transitive [after] relation? *)
let ordered deltas a_name b_name =
  let after_of n =
    match List.find_opt (fun d -> d.Lang.name = n) deltas with
    | Some d -> d.Lang.after
    | None -> []
  in
  let rec reaches src dst visited =
    if List.mem src visited then false
    else
      let preds = after_of src in
      List.mem dst preds || List.exists (fun p -> reaches p dst (src :: visited)) preds
  in
  reaches a_name b_name [] || reaches b_name a_name []

let item_conflicts wa wb =
  List.concat_map
    (fun (ta, ia) ->
      List.filter_map
        (fun (tb, ib) ->
          if ta <> tb then None
          else
            match (ia, ib) with
            | `Prop p, `Prop q when p = q -> Some (ta, Printf.sprintf "property %s" p)
            | `Child c, `Child c' when c = c' -> Some (ta, Printf.sprintf "child node %s" c)
            | `Remove, `Remove -> Some (ta, "node removal")
            | `Remove, (`Prop _ | `Child _) | (`Prop _ | `Child _), `Remove ->
              Some (ta, "removal vs. modification")
            | _ -> None)
        wb)
    wa

let rec pairs = function [] -> [] | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let analyze ~model deltas =
  let dead =
    List.filter_map
      (fun d -> if activatable model d.Lang.condition then None else Some d.Lang.name)
      deltas
  in
  let always_on =
    List.filter_map (fun d -> if never_inactive model d then Some d.Lang.name else None) deltas
  in
  let conflicts =
    List.concat_map
      (fun (a, b) ->
        if ordered deltas a.Lang.name b.Lang.name then []
        else if not (co_activatable model a b) then []
        else
          List.map
            (fun (target, detail) ->
              { delta_a = a.Lang.name; delta_b = b.Lang.name; target; detail })
            (item_conflicts (writes a) (writes b)))
      (pairs deltas)
  in
  { dead; always_on; conflicts }

let pp_conflict ppf c =
  Fmt.pf ppf "deltas %s and %s both write %s of %s without an 'after' order" c.delta_a
    c.delta_b c.detail c.target

let pp ppf r =
  (match r.dead with
   | [] -> Fmt.pf ppf "no dead deltas@."
   | ds -> Fmt.pf ppf "dead deltas: %s@." (String.concat ", " ds));
  (match r.always_on with
   | [] -> ()
   | ds -> Fmt.pf ppf "always-on deltas (core-module candidates): %s@." (String.concat ", " ds));
  match r.conflicts with
  | [] -> Fmt.pf ppf "no unordered write conflicts@."
  | cs -> List.iter (fun c -> Fmt.pf ppf "conflict: %a@." pp_conflict c) cs
