(* Application of delta modules to a core DTS (DOP semantics, §III-B):

   1. activate deltas whose [when] condition holds under the feature
      selection;
   2. linearise the active deltas along the strict partial order induced by
      [after] (stable: declaration order breaks ties); a cycle is an error;
   3. apply each delta's operations in order; any failure is reported with
      the *name of the offending delta*, the trace-back property the paper
      derives from encoding delta dependencies as constraints. *)

module T = Devicetree.Tree

type error = {
  delta : string option; (* None = ordering-level error *)
  message : string;
  loc : Devicetree.Loc.t;
}

exception Error of error

let fail ?delta ~loc fmt =
  Fmt.kstr (fun message -> raise (Error { delta; message; loc })) fmt

let pp_error ppf e =
  match e.delta with
  | Some d -> Fmt.pf ppf "delta %s: %s (%a)" d e.message Devicetree.Loc.pp e.loc
  | None -> Fmt.pf ppf "%s (%a)" e.message Devicetree.Loc.pp e.loc

(* --- activation ----------------------------------------------------------------- *)

let is_active ~selected (d : Lang.t) =
  match d.condition with
  | None -> true
  | Some cond -> Featuremodel.Bexpr.eval (fun f -> List.mem f selected) cond

let active_deltas ~selected deltas = List.filter (is_active ~selected) deltas

(* --- linearisation ---------------------------------------------------------------- *)

(* Topological sort by Kahn's algorithm over the [after] edges ([after]
   edges to inactive deltas impose no order).  Where the partial order
   leaves a choice, *structural* deltas (modifies/removes only) are applied
   before *additive* deltas, with declaration order as the final
   tie-breaker.  This deterministic rule reproduces the application orders
   of §III-B (d3 < d4 < d_add): modifications that establish nodes and
   address semantics land before the additions that rely on them. *)
let linearize (deltas : Lang.t list) =
  let names = List.map (fun d -> d.Lang.name) deltas in
  let preds d = List.filter (fun a -> List.mem a names) d.Lang.after in
  let additive d =
    List.exists (function Lang.Adds _ -> true | Lang.Modifies _ | Lang.Removes _ -> false) d.Lang.ops
  in
  let rec go remaining done_names acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let ready, blocked =
        List.partition
          (fun d -> List.for_all (fun p -> List.mem p done_names) (preds d))
          remaining
      in
      (match ready with
       | [] ->
         let cycle = String.concat ", " (List.map (fun d -> d.Lang.name) blocked) in
         fail ~loc:(List.hd blocked).Lang.loc "cyclic 'after' dependencies among: %s" cycle
       | _ ->
         let first =
           match List.filter (fun d -> not (additive d)) ready with
           | d :: _ -> d
           | [] -> List.hd ready
         in
         go
           (List.filter (fun d -> d.Lang.name <> first.Lang.name) remaining)
           (first.Lang.name :: done_names)
           (first :: acc))
  in
  go deltas [] []

(* The application order for a given selection, by name ("d3 < d4 < d2"). *)
let order ~selected deltas =
  List.map (fun d -> d.Lang.name) (linearize (active_deltas ~selected deltas))

(* --- target resolution --------------------------------------------------------------- *)

(* A target is "/" (the root), an absolute path, or a node name that must
   occur exactly once in the tree. *)
let resolve_target ~delta ~loc tree target =
  if String.equal target "/" then "/"
  else if String.length target > 0 && target.[0] = '/' then begin
    match T.find tree target with
    | Some _ -> target
    | None -> fail ~delta ~loc "target node %s not found" target
  end
  else begin
    let matches =
      T.fold
        (fun path node acc -> if String.equal node.T.name target then path :: acc else acc)
        tree []
    in
    match matches with
    | [ path ] -> path
    | [] -> fail ~delta ~loc "target node %s not found" target
    | _ :: _ :: _ -> fail ~delta ~loc "target node %s is ambiguous (%d matches)" target (List.length matches)
  end

(* --- operations ------------------------------------------------------------------------ *)

let apply_adds ~delta ~loc tree path (body : Devicetree.Ast.node) =
  let node = T.find_exn tree path in
  (* "adds" must introduce only new content. *)
  List.iter
    (function
      | Devicetree.Ast.Prop { prop_name; prop_loc; _ } ->
        if T.has_prop node prop_name then
          fail ~delta ~loc:prop_loc "adds: property %s already exists in %s" prop_name path
      | Devicetree.Ast.Child child ->
        if List.exists (fun c -> String.equal c.T.name child.Devicetree.Ast.node_name) node.T.children
        then
          fail ~delta ~loc:child.Devicetree.Ast.node_loc "adds: node %s already exists in %s"
            child.Devicetree.Ast.node_name path
      | Devicetree.Ast.Delete_node (_, dloc) | Devicetree.Ast.Delete_prop (_, dloc) ->
        fail ~delta ~loc:dloc "adds: delete directives are not allowed; use 'removes'")
    body.Devicetree.Ast.node_entries;
  ignore loc;
  T.merge_at tree ~path body

let apply_modifies ~delta ~loc tree path (body : Devicetree.Ast.node) =
  ignore delta;
  ignore loc;
  T.merge_at tree ~path body

let apply_removes ~delta ~loc tree path =
  if String.equal path "/" then fail ~delta ~loc "removes: cannot remove the root node";
  T.remove_node tree ~path

let apply_operation ~delta ~loc tree op =
  let target = Lang.operation_target op in
  let path = resolve_target ~delta ~loc tree target in
  match op with
  | Lang.Adds { body; _ } -> apply_adds ~delta ~loc tree path body
  | Lang.Modifies { body; _ } -> apply_modifies ~delta ~loc tree path body
  | Lang.Removes _ -> apply_removes ~delta ~loc tree path

let apply_delta tree (d : Lang.t) =
  List.fold_left
    (fun tree op ->
      try apply_operation ~delta:d.Lang.name ~loc:d.Lang.loc tree op with
      | T.Error (msg, loc) -> fail ~delta:d.Lang.name ~loc "%s" msg)
    tree d.Lang.ops

(* Generate the product for a feature selection: activate, order, apply. *)
let generate ~core ~deltas ~selected =
  let active = active_deltas ~selected deltas in
  let ordered = linearize active in
  List.fold_left apply_delta core ordered
