(** Static analysis of a delta set against its feature model: dead deltas
    (never activatable in a valid product), always-on deltas (core-module
    candidates), and DOP write conflicts — pairs of deltas some product
    activates together, unordered by [after], writing the same property or
    child of the same target, so the product depends on linearizer
    tie-breaking. *)

type conflict = {
  delta_a : string;
  delta_b : string;
  target : string;
  detail : string;
}

type result = {
  dead : string list;
  always_on : string list;
  conflicts : conflict list;
}

val analyze : model:Featuremodel.Model.t -> Lang.t list -> result
val pp_conflict : Format.formatter -> conflict -> unit
val pp : Format.formatter -> result -> unit
