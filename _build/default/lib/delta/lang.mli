(** The delta-module language for DTS product lines (Listing 4 of the
    paper): named deltas with [after] ordering hints and [when] activation
    conditions, whose operations add, modify or remove DTS fragments. *)

type operation =
  | Adds of { target : string; body : Devicetree.Ast.node }
      (** add the body's properties/children to [target]; adding something
          that already exists is an error *)
  | Modifies of { target : string; body : Devicetree.Ast.node }
      (** merge the body into [target] (dtc overlay semantics) *)
  | Removes of { target : string }  (** delete the target node *)

type t = {
  name : string;
  after : string list;
  condition : Featuremodel.Bexpr.t option; (** [when]; [None] = always active *)
  ops : operation list;
  loc : Devicetree.Loc.t;
}

val operation_target : operation -> string
val pp_operation : Format.formatter -> operation -> unit
val pp : Format.formatter -> t -> unit
