(** A deliberately plain DPLL solver: unit propagation by full clause scans,
    no watched literals, no learning, no heuristics.  The ablation baseline
    for the CDCL solver and a differential-testing oracle. *)

type result = Sat of bool array | Unsat

(** Clauses in DIMACS-like form: variable [v] is [v+1], its negation
    [-(v+1)]. *)
type problem = {
  num_vars : int;
  clauses : int list list;
}

(** Build a problem from {!Lit}-encoded clauses. *)
val of_lits : num_vars:int -> Lit.t list list -> problem

(** Tseitin conversion of a propositional formula (atoms 0..num_vars-1);
    definition variables are appended after [num_vars]. *)
val of_formula : num_vars:int -> Formula.t -> problem

val solve : problem -> result

(** Count models projected onto the given variables (0-based), by
    exhaustive branching. *)
val count_models : problem -> over:int list -> int
