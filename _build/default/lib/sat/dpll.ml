(* A deliberately plain DPLL solver: unit propagation by full clause scans,
   no watched literals, no clause learning, no activity heuristic.  It exists
   as the ablation baseline for the CDCL solver (bench: sat_ablation) and as
   a differential-testing oracle in the test suite. *)

type result = Sat of bool array | Unsat

(* Clauses are lists of literals in DIMACS-like form: var v is represented
   by v+1, its negation by -(v+1). *)
type problem = {
  num_vars : int;
  clauses : int list list;
}

let of_lits ~num_vars clauses =
  { num_vars; clauses = List.map (List.map Lit.to_dimacs) clauses }

(* Value of a literal under a partial assignment (0 = unassigned). *)
let lit_value assign l =
  let v = assign.(abs l - 1) in
  if v = 0 then 0 else if (l > 0) = (v > 0) then 1 else -1

let solve { num_vars; clauses } =
  let assign = Array.make num_vars 0 in
  (* Unit propagation: scan all clauses to a fixpoint.  Returns false on an
     empty clause. *)
  let rec propagate () =
    let changed = ref false in
    let ok =
      List.for_all
        (fun clause ->
          let unassigned = ref [] in
          let satisfied = ref false in
          List.iter
            (fun l ->
              match lit_value assign l with
              | 1 -> satisfied := true
              | 0 -> unassigned := l :: !unassigned
              | _ -> ())
            clause;
          if !satisfied then true
          else
            match !unassigned with
            | [] -> false
            | [ l ] ->
              assign.(abs l - 1) <- (if l > 0 then 1 else -1);
              changed := true;
              true
            | _ -> true)
        clauses
    in
    if not ok then false else if !changed then propagate () else true
  in
  let rec search trail_len =
    ignore trail_len;
    let snapshot = Array.copy assign in
    if not (propagate ()) then begin
      Array.blit snapshot 0 assign 0 num_vars;
      false
    end
    else begin
      (* Pick the first unassigned variable. *)
      let rec pick v = if v >= num_vars then None else if assign.(v) = 0 then Some v else pick (v + 1) in
      match pick 0 with
      | None -> true
      | Some v ->
        let try_value value =
          let snap = Array.copy assign in
          assign.(v) <- value;
          if search 0 then true
          else begin
            Array.blit snap 0 assign 0 num_vars;
            false
          end
        in
        if try_value 1 then true
        else if try_value (-1) then true
        else begin
          Array.blit snapshot 0 assign 0 num_vars;
          false
        end
    end
  in
  if search 0 then Sat (Array.map (fun v -> v > 0) assign) else Unsat

(* Tseitin conversion of a propositional formula into a [problem], with
   fresh definition variables appended after [num_vars].  Mirrors
   [Formula.assert_in] so the ablation benchmark feeds both solvers the same
   encoding. *)
let of_formula ~num_vars formula =
  let next = ref num_vars in
  let clauses = ref [] in
  let fresh () =
    incr next;
    !next (* 1-based DIMACS var *)
  in
  let add c = clauses := c :: !clauses in
  let rec define (f : Formula.t) : int =
    match f with
    | Formula.True ->
      let p = fresh () in
      add [ p ];
      p
    | Formula.False ->
      let p = fresh () in
      add [ -p ];
      p
    | Formula.Atom v -> v + 1
    | Formula.Not f -> -define f
    | Formula.And fs ->
      let ps = List.map define fs in
      let q = fresh () in
      List.iter (fun p -> add [ -q; p ]) ps;
      add (q :: List.map (fun p -> -p) ps);
      q
    | Formula.Or fs ->
      let ps = List.map define fs in
      let q = fresh () in
      List.iter (fun p -> add [ q; -p ]) ps;
      add (-q :: ps);
      q
    | Formula.Implies (a, b) -> define (Formula.Or [ Formula.Not a; b ])
    | Formula.Iff (a, b) ->
      let pa = define a and pb = define b in
      let q = fresh () in
      add [ -q; -pa; pb ];
      add [ -q; pa; -pb ];
      add [ q; pa; pb ];
      add [ q; -pa; -pb ];
      q
    | Formula.Xor (a, b) -> define (Formula.Not (Formula.Iff (a, b)))
  in
  let root = define formula in
  add [ root ];
  { num_vars = !next; clauses = !clauses }

(* Count models over the given variables by exhaustive branching (used to
   cross-check product counting). *)
let count_models problem ~over =
  let rec go assumptions = function
    | [] ->
      let p = { problem with clauses = assumptions @ problem.clauses } in
      (match solve p with Sat _ -> 1 | Unsat -> 0)
    | v :: rest ->
      go ([ v + 1 ] :: assumptions) rest + go ([ -(v + 1) ] :: assumptions) rest
  in
  go [] over
