type t =
  | True
  | False
  | Atom of int
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Xor of t * t

let tt = True
let ff = False
let atom v = Atom v

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let conj fs =
  let fs = List.filter (fun f -> f <> True) fs in
  if List.exists (fun f -> f = False) fs then False
  else match fs with [] -> True | [ f ] -> f | _ -> And fs

let disj fs =
  let fs = List.filter (fun f -> f <> False) fs in
  if List.exists (fun f -> f = True) fs then True
  else match fs with [] -> False | [ f ] -> f | _ -> Or fs

let implies a b =
  match (a, b) with
  | True, b -> b
  | False, _ -> True
  | _, True -> True
  | a, False -> neg a
  | _ -> Implies (a, b)

let iff a b =
  match (a, b) with
  | True, b -> b
  | b, True -> b
  | False, b -> neg b
  | b, False -> neg b
  | _ -> Iff (a, b)

let xor a b =
  match (a, b) with
  | False, b -> b
  | b, False -> b
  | True, b -> neg b
  | b, True -> neg b
  | _ -> Xor (a, b)

let at_most_one fs =
  let rec pairs = function
    | [] -> []
    | f :: rest -> List.map (fun g -> disj [ neg f; neg g ]) rest @ pairs rest
  in
  conj (pairs fs)

let exactly_one fs = conj [ disj fs; at_most_one fs ]

let rec size = function
  | True | False | Atom _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs
  | Implies (a, b) | Iff (a, b) | Xor (a, b) -> 1 + size a + size b

let rec eval assign = function
  | True -> true
  | False -> false
  | Atom v -> assign v
  | Not f -> not (eval assign f)
  | And fs -> List.for_all (eval assign) fs
  | Or fs -> List.exists (eval assign) fs
  | Implies (a, b) -> (not (eval assign a)) || eval assign b
  | Iff (a, b) -> eval assign a = eval assign b
  | Xor (a, b) -> eval assign a <> eval assign b

let atoms f =
  let rec collect acc = function
    | True | False -> acc
    | Atom v -> v :: acc
    | Not f -> collect acc f
    | And fs | Or fs -> List.fold_left collect acc fs
    | Implies (a, b) | Iff (a, b) | Xor (a, b) -> collect (collect acc a) b
  in
  List.sort_uniq Int.compare (collect [] f)

(* --- Tseitin ------------------------------------------------------------- *)

(* [define solver f] returns a literal [p] with clauses enforcing p <-> f.
   The encoding is the full (both-direction) Tseitin transform so defined
   literals can be used under either polarity (needed by [define_in]). *)
let rec define solver f : Lit.t =
  let fresh () = Lit.of_var (Solver.new_var solver) in
  let add lits = ignore (Solver.add_clause solver lits : bool) in
  match f with
  | True ->
    let p = fresh () in
    add [ p ];
    p
  | False ->
    let p = fresh () in
    add [ Lit.neg p ];
    p
  | Atom v -> Lit.of_var v
  | Not f -> Lit.neg (define solver f)
  | And fs ->
    let ps = List.map (define solver) fs in
    let q = fresh () in
    List.iter (fun p -> add [ Lit.neg q; p ]) ps;
    add (q :: List.map Lit.neg ps);
    q
  | Or fs ->
    let ps = List.map (define solver) fs in
    let q = fresh () in
    List.iter (fun p -> add [ q; Lit.neg p ]) ps;
    add (Lit.neg q :: ps);
    q
  | Implies (a, b) -> define solver (Or [ Not a; b ])
  | Iff (a, b) ->
    let pa = define solver a and pb = define solver b in
    let q = fresh () in
    add [ Lit.neg q; Lit.neg pa; pb ];
    add [ Lit.neg q; pa; Lit.neg pb ];
    add [ q; pa; pb ];
    add [ q; Lit.neg pa; Lit.neg pb ];
    q
  | Xor (a, b) ->
    let pa = define solver a and pb = define solver b in
    let q = fresh () in
    add [ Lit.neg q; pa; pb ];
    add [ Lit.neg q; Lit.neg pa; Lit.neg pb ];
    add [ q; Lit.neg pa; pb ];
    add [ q; pa; Lit.neg pb ];
    q

let define_in solver f = define solver f

(* Assert [f] directly, clausifying top-level conjunction/disjunction
   structure without a definition variable where possible. *)
let assert_in solver f =
  let ok = ref true in
  let add lits = if not (Solver.add_clause solver lits) then ok := false in
  let rec assert_true = function
    | True -> ()
    | False -> add []
    | And fs -> List.iter assert_true fs
    | Or fs ->
      let lits = List.map (define solver) fs in
      add lits
    | Not f -> assert_false f
    | Atom v -> add [ Lit.of_var v ]
    | Implies (a, b) -> assert_true (Or [ Not a; b ])
    | (Iff _ | Xor _) as f -> add [ define solver f ]
  and assert_false = function
    | True -> add []
    | False -> ()
    | Not f -> assert_true f
    | Atom v -> add [ Lit.neg (Lit.of_var v) ]
    | Or fs -> List.iter assert_false fs
    | And fs ->
      let lits = List.map (fun f -> Lit.neg (define solver f)) fs in
      add lits
    | Implies (a, b) ->
      assert_true a;
      assert_false b
    | (Iff _ | Xor _) as f -> add [ Lit.neg (define solver f) ]
  in
  assert_true f;
  !ok

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom v -> Fmt.pf ppf "x%d" v
  | Not f -> Fmt.pf ppf "!%a" pp_atomic f
  | And fs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " & ") pp_atomic) fs
  | Or fs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " | ") pp_atomic) fs
  | Implies (a, b) -> Fmt.pf ppf "(%a -> %a)" pp_atomic a pp_atomic b
  | Iff (a, b) -> Fmt.pf ppf "(%a <-> %a)" pp_atomic a pp_atomic b
  | Xor (a, b) -> Fmt.pf ppf "(%a ^ %a)" pp_atomic a pp_atomic b

and pp_atomic ppf f = pp ppf f
