(* Growable array with amortized O(1) push, used pervasively by the solver.
   A [dummy] element fills unused capacity; it is never observed. *)

type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  dummy : 'a;
}

let create ?(capacity = 16) dummy =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; size = 0; dummy }

let size t = t.size
let is_empty t = t.size = 0

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get";
  Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.size then invalid_arg "Vec.set";
  Array.unsafe_set t.data i x

let unsafe_get t i = Array.unsafe_get t.data i
let unsafe_set t i x = Array.unsafe_set t.data i x

let grow_to t capacity =
  if capacity > Array.length t.data then begin
    let capacity' = max capacity (2 * Array.length t.data) in
    let data = Array.make capacity' t.dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t x =
  grow_to t (t.size + 1);
  Array.unsafe_set t.data t.size x;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then invalid_arg "Vec.pop";
  t.size <- t.size - 1;
  let x = Array.unsafe_get t.data t.size in
  Array.unsafe_set t.data t.size t.dummy;
  x

let last t =
  if t.size = 0 then invalid_arg "Vec.last";
  Array.unsafe_get t.data (t.size - 1)

let clear t =
  for i = 0 to t.size - 1 do
    Array.unsafe_set t.data i t.dummy
  done;
  t.size <- 0

(* Truncate to [n] elements; [n] must not exceed the current size. *)
let shrink_to t n =
  if n < 0 || n > t.size then invalid_arg "Vec.shrink_to";
  for i = n to t.size - 1 do
    Array.unsafe_set t.data i t.dummy
  done;
  t.size <- n

(* Remove element at [i] by swapping in the last element (order not kept). *)
let swap_remove t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.swap_remove";
  t.size <- t.size - 1;
  Array.unsafe_set t.data i (Array.unsafe_get t.data t.size);
  Array.unsafe_set t.data t.size t.dummy

let iter f t =
  for i = 0 to t.size - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i (Array.unsafe_get t.data i)
  done

let exists p t =
  let rec loop i = i < t.size && (p (Array.unsafe_get t.data i) || loop (i + 1)) in
  loop 0

let for_all p t = not (exists (fun x -> not (p x)) t)

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let of_list dummy xs =
  let t = create ~capacity:(max 1 (List.length xs)) dummy in
  List.iter (push t) xs;
  t

let to_array t = Array.sub t.data 0 t.size

let copy t = { data = Array.copy t.data; size = t.size; dummy = t.dummy }

(* In-place filter keeping elements satisfying [p]; preserves order. *)
let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let x = Array.unsafe_get t.data i in
    if p x then begin
      Array.unsafe_set t.data !j x;
      incr j
    end
  done;
  shrink_to t !j

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.size
