(** Propositional formulas over integer atoms, with a Tseitin-style
    clausification into a {!Solver}.

    Atoms are solver variables (allocated with {!Solver.new_var}).  The
    feature-model and SMT layers build formulas here and clausify them once;
    the Tseitin transform introduces fresh definition variables so the CNF
    is linear in the formula size. *)

type t =
  | True
  | False
  | Atom of int          (** a solver variable *)
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Xor of t * t

val tt : t
val ff : t
val atom : int -> t
val neg : t -> t
val conj : t list -> t
val disj : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t
val xor : t -> t -> t

(** Exactly one of the formulas holds. *)
val exactly_one : t list -> t

(** At most one of the formulas holds (pairwise encoding). *)
val at_most_one : t list -> t

(** Structural size (number of connectives and atoms). *)
val size : t -> int

(** [eval assign f] evaluates [f] under a total assignment of atoms. *)
val eval : (int -> bool) -> t -> bool

(** Atoms occurring in the formula, ascending and without duplicates. *)
val atoms : t -> int list

(** [assert_in solver f] clausifies [f] and asserts it into [solver].
    Returns [false] if the solver became trivially unsatisfiable. *)
val assert_in : Solver.t -> t -> bool

(** [define_in solver f] clausifies [f] and returns a literal that is
    equivalent to [f] in every model, without asserting it.  Used to guard
    formulas by activation literals (incremental push/pop). *)
val define_in : Solver.t -> t -> Lit.t

val pp : Format.formatter -> t -> unit
