(** Binary max-heap over variable indices ordered by an external activity
    score, with position tracking for in-place reordering — the order
    structure behind the VSIDS decision heuristic. *)

type t

(** [create score] builds an empty heap; [score] is consulted on every
    comparison, so externally bumping a variable's activity must be followed
    by {!decrease}. *)
val create : (int -> float) -> t

val in_heap : t -> int -> bool
val is_empty : t -> bool
val size : t -> int
val insert : t -> int -> unit

(** Re-establish heap order after the variable's activity increased. *)
val decrease : t -> int -> unit

val remove_max : t -> int
