(** Growable array with amortized O(1) push; the workhorse container of the
    solver.  A [dummy] element fills unused capacity and is never observed. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val unsafe_get : 'a t -> int -> 'a
val unsafe_set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
val last : 'a t -> 'a
val clear : 'a t -> unit

(** Truncate to [n] elements ([n <= size]). *)
val shrink_to : 'a t -> int -> unit

(** Remove element [i] by swapping in the last element (order not kept). *)
val swap_remove : 'a t -> int -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
val of_list : 'a -> 'a list -> 'a t
val to_array : 'a t -> 'a array
val copy : 'a t -> 'a t

(** In-place filter preserving order. *)
val filter_in_place : ('a -> bool) -> 'a t -> unit

val sort : ('a -> 'a -> int) -> 'a t -> unit
