(* Binary max-heap over variable indices ordered by an external activity
   score, with position tracking so keys can be re-ordered in place.  This is
   the order structure behind the VSIDS decision heuristic. *)

type t = {
  heap : int Vec.t;            (* positions -> vars *)
  mutable indices : int array; (* var -> position in heap, or -1 *)
  score : int -> float;        (* activity lookup, owned by the solver *)
}

let create score =
  { heap = Vec.create (-1); indices = [||]; score }

let ensure_var t v =
  let n = Array.length t.indices in
  if v >= n then begin
    let n' = max (v + 1) (max 16 (2 * n)) in
    let indices = Array.make n' (-1) in
    Array.blit t.indices 0 indices 0 n;
    t.indices <- indices
  end

let in_heap t v = v < Array.length t.indices && t.indices.(v) >= 0
let is_empty t = Vec.is_empty t.heap
let size t = Vec.size t.heap

let left i = (2 * i) + 1
let right i = (2 * i) + 2
let parent i = (i - 1) / 2

let swap t i j =
  let vi = Vec.get t.heap i and vj = Vec.get t.heap j in
  Vec.set t.heap i vj;
  Vec.set t.heap j vi;
  t.indices.(vi) <- j;
  t.indices.(vj) <- i

let rec percolate_up t i =
  if i > 0 then begin
    let p = parent i in
    if t.score (Vec.get t.heap i) > t.score (Vec.get t.heap p) then begin
      swap t i p;
      percolate_up t p
    end
  end

let rec percolate_down t i =
  let n = Vec.size t.heap in
  let l = left i and r = right i in
  let largest = ref i in
  if l < n && t.score (Vec.get t.heap l) > t.score (Vec.get t.heap !largest)
  then largest := l;
  if r < n && t.score (Vec.get t.heap r) > t.score (Vec.get t.heap !largest)
  then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    percolate_down t !largest
  end

let insert t v =
  ensure_var t v;
  if not (in_heap t v) then begin
    t.indices.(v) <- Vec.size t.heap;
    Vec.push t.heap v;
    percolate_up t t.indices.(v)
  end

(* Re-establish heap order after [v]'s activity increased. *)
let decrease t v = if in_heap t v then percolate_up t t.indices.(v)

let remove_max t =
  if is_empty t then invalid_arg "Heap.remove_max";
  let top = Vec.get t.heap 0 in
  let last = Vec.pop t.heap in
  t.indices.(top) <- -1;
  if not (Vec.is_empty t.heap) then begin
    Vec.set t.heap 0 last;
    t.indices.(last) <- 0;
    percolate_down t 0
  end;
  top
