(* Literals are integers: variable [v] (0-based) yields the positive literal
   [2*v] and the negative literal [2*v+1], MiniSat-style.  This lets watch
   lists and assignments be indexed by literal directly. *)

type t = int

let make ~var ~negated = (var lsl 1) lor (if negated then 1 else 0)
let of_var v = v lsl 1
let neg l = l lxor 1
let var l = l lsr 1
let is_neg l = l land 1 = 1
let is_pos l = l land 1 = 0

(* Sign as used in DIMACS: positive literal of var v is v+1, negative -(v+1). *)
let to_dimacs l =
  let v = var l + 1 in
  if is_neg l then -v else v

let of_dimacs d =
  if d = 0 then invalid_arg "Lit.of_dimacs";
  let v = abs d - 1 in
  make ~var:v ~negated:(d < 0)

let compare = Int.compare
let equal = Int.equal
let pp ppf l = Fmt.pf ppf "%d" (to_dimacs l)
