(** Literals encoded as integers, MiniSat-style: variable [v] (0-based)
    yields positive literal [2v] and negative literal [2v+1], so watch lists
    and assignments can be indexed by literal. *)

type t = int

val make : var:int -> negated:bool -> t
val of_var : int -> t (** the positive literal *)

val neg : t -> t
val var : t -> int
val is_neg : t -> bool
val is_pos : t -> bool

(** DIMACS form: positive literal of var v is [v+1], negative [-(v+1)]. *)
val to_dimacs : t -> int

val of_dimacs : int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
