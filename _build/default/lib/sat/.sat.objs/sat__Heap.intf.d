lib/sat/heap.mli:
