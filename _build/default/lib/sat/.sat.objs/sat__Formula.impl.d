lib/sat/formula.ml: Fmt Int List Lit Solver
