lib/sat/vec.mli:
