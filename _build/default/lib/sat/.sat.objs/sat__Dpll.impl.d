lib/sat/dpll.ml: Array Formula List Lit
