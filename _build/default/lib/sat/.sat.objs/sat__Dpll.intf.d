lib/sat/dpll.mli: Formula Lit
