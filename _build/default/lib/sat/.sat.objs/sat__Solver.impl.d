lib/sat/solver.ml: Array Float Fmt Heap Int Lazy List Lit Vec
