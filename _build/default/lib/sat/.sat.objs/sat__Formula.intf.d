lib/sat/formula.mli: Format Lit Solver
