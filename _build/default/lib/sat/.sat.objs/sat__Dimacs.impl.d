lib/sat/dimacs.ml: Fmt List Lit Printf Solver String
