lib/sat/heap.ml: Array Vec
