(** Conflict-driven clause-learning (CDCL) SAT solver.

    A from-scratch MiniSat-style solver: two-watched-literal propagation,
    first-UIP clause learning, EVSIDS decision heuristic with phase saving,
    Luby restarts, and activity/LBD-driven deletion of learnt clauses.  It
    supports incremental solving under assumptions and extraction of an
    unsatisfiable core over those assumptions, which is what the SMT layer
    builds its push/pop discipline and explanations on. *)

type t

(** Result of a [solve] call. *)
type result =
  | Sat   (** a model is available via {!value} / {!model} *)
  | Unsat (** an assumption core is available via {!unsat_core} *)

val create : unit -> t

(** [new_var t] allocates a fresh variable and returns it (0-based). *)
val new_var : t -> int

(** Number of variables allocated so far. *)
val num_vars : t -> int

(** Number of problem (non-learnt) clauses currently held. *)
val num_clauses : t -> int

(** Number of conflicts encountered since creation (a work measure). *)
val num_conflicts : t -> int

(** [add_clause t lits] adds a clause over literals built with {!Lit}.
    Returns [false] iff the clause system became trivially unsatisfiable
    (at decision level 0).  Variables must have been allocated. *)
val add_clause : t -> Lit.t list -> bool

(** [solve ?assumptions t] decides satisfiability of the current clause set
    under the given assumption literals. *)
val solve : ?assumptions:Lit.t list -> t -> result

(** Value of a variable in the most recent [Sat] model. *)
val value : t -> int -> bool

(** Value of a literal in the most recent [Sat] model. *)
val lit_value : t -> Lit.t -> bool

(** The most recent model as an array indexed by variable. *)
val model : t -> bool array

(** Subset of the assumptions sufficient for the last [Unsat] answer,
    in no particular order. *)
val unsat_core : t -> Lit.t list

(** [set_polarity t v b] sets the initial phase of variable [v]. *)
val set_polarity : t -> int -> bool -> unit

(** Pretty-print solver statistics (decisions, conflicts, propagations). *)
val pp_stats : Format.formatter -> t -> unit
