(* Hand-written lexer for DeviceTree source.

   Notes on the trickier bits of DTS lexing:
   - names are liberal: node and property names may contain [a-zA-Z0-9,._+?#-]
     and node names additionally '@' for the unit address;
   - directives look like /word/ ("/dts-v1/", "/include/", "/delete-node/",
     "/bits/", ...); a bare '/' is the root node or, inside parenthesised
     expressions, division;
   - '<' and '>' delimit cell lists but also occur in expressions; we emit
     single-character tokens and let the parser pair "<<"/">>" inside
     expressions;
   - byte strings "[ aa bb ]" are lexed wholesale into BYTES. *)

type token =
  | IDENT of string
  | NUMBER of int64
  | STRING of string
  | BYTES of string
  | LABEL of string   (* name: *)
  | REF of string     (* &label *)
  | DIRECTIVE of string (* word of /word/ *)
  | LBRACE
  | RBRACE
  | SEMI
  | EQUALS
  | LT
  | GT
  | LPAREN
  | RPAREN
  | COMMA
  | SLASH
  | OP of char        (* + - * % & | ^ ~ ! ? : = (in ==) handled via pairs *)
  | EOF

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | ',' | '.' | '_' | '+' | '?' | '#' | '-' | '@'
    -> true
  | _ -> false

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (if st.pos < String.length st.src && st.src.[st.pos] = '\n' then begin
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   end);
  st.pos <- st.pos + 1

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
    let start = loc st in
    advance st;
    advance st;
    let rec find () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        find ()
      | None, _ -> error start "unterminated comment"
    in
    find ();
    skip_ws_and_comments st
  | Some _ | None -> ()

let lex_string st =
  let start = loc st in
  advance st; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error start "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> begin
      advance st;
      (match peek st with
       | Some 'n' -> Buffer.add_char buf '\n'
       | Some 't' -> Buffer.add_char buf '\t'
       | Some 'r' -> Buffer.add_char buf '\r'
       | Some '0' -> Buffer.add_char buf '\000'
       | Some '\\' -> Buffer.add_char buf '\\'
       | Some '"' -> Buffer.add_char buf '"'
       | Some 'x' ->
         advance st;
         let hex_val c =
           if is_digit c then Char.code c - Char.code '0'
           else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
           else if c >= 'A' && c <= 'F' then Char.code c - Char.code 'A' + 10
           else error (loc st) "bad hex escape"
         in
         let h =
           match peek st with
           | Some c when is_hex_digit c -> hex_val c
           | _ -> error (loc st) "bad hex escape"
         in
         (match peek2 st with
          | Some c when is_hex_digit c ->
            advance st;
            Buffer.add_char buf (Char.chr ((h * 16) + hex_val c))
          | _ -> Buffer.add_char buf (Char.chr h))
       | Some c -> error (loc st) "unknown escape \\%c" c
       | None -> error start "unterminated string");
      advance st;
      go ()
    end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  STRING (Buffer.contents buf)

let lex_bytes st =
  let start = loc st in
  advance st; (* '[' *)
  let buf = Buffer.create 16 in
  let digits = Buffer.create 2 in
  let flush () =
    if Buffer.length digits = 2 then begin
      Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ Buffer.contents digits)));
      Buffer.clear digits
    end
    else if Buffer.length digits <> 0 then error start "odd number of hex digits in byte string"
  in
  let rec go () =
    match peek st with
    | None -> error start "unterminated byte string"
    | Some ']' ->
      flush ();
      advance st
    | Some (' ' | '\t' | '\r' | '\n') ->
      flush ();
      advance st;
      go ()
    | Some c when is_hex_digit c ->
      Buffer.add_char digits c;
      if Buffer.length digits = 2 then flush ();
      advance st;
      go ()
    | Some c -> error (loc st) "invalid character %C in byte string" c
  in
  go ();
  BYTES (Buffer.contents buf)

let lex_name st =
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st name lc =
  let parse s =
    match Int64.of_string_opt s with
    | Some v -> v
    | None -> error lc "invalid number %S" s
  in
  (* Strip C-style U/L suffixes accepted by dtc. *)
  let name =
    let n = String.length name in
    let rec strip i =
      if i > 0 && (match name.[i - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
      then strip (i - 1)
      else i
    in
    String.sub name 0 (strip n)
  in
  ignore st;
  NUMBER (parse name)

let lex_char_literal st =
  let start = loc st in
  advance st; (* opening quote *)
  let c =
    match peek st with
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some 'n' -> '\n'
       | Some 't' -> '\t'
       | Some 'r' -> '\r'
       | Some '0' -> '\000'
       | Some '\\' -> '\\'
       | Some '\'' -> '\''
       | _ -> error start "bad escape in char literal")
    | Some c -> c
    | None -> error start "unterminated char literal"
  in
  advance st;
  (match peek st with
   | Some '\'' -> advance st
   | _ -> error start "unterminated char literal");
  NUMBER (Int64.of_int (Char.code c))

let next_token st =
  skip_ws_and_comments st;
  let lc = loc st in
  match peek st with
  | None -> (EOF, lc)
  | Some '"' -> (lex_string st, lc)
  | Some '[' -> (lex_bytes st, lc)
  | Some '\'' -> (lex_char_literal st, lc)
  | Some '{' -> advance st; (LBRACE, lc)
  | Some '}' -> advance st; (RBRACE, lc)
  | Some ';' -> advance st; (SEMI, lc)
  | Some '=' when peek2 st = Some '=' -> advance st; advance st; (OP 'E', lc) (* == *)
  | Some '=' -> advance st; (EQUALS, lc)
  | Some '<' when peek2 st = Some '=' -> advance st; advance st; (OP 'l', lc) (* <= *)
  | Some '<' -> advance st; (LT, lc)
  | Some '>' when peek2 st = Some '=' -> advance st; advance st; (OP 'g', lc) (* >= *)
  | Some '>' -> advance st; (GT, lc)
  | Some '(' -> advance st; (LPAREN, lc)
  | Some ')' -> advance st; (RPAREN, lc)
  | Some ',' -> advance st; (COMMA, lc)
  | Some '!' when peek2 st = Some '=' -> advance st; advance st; (OP 'N', lc) (* != *)
  | Some '!' -> advance st; (OP '!', lc)
  | Some '&' when peek2 st = Some '&' -> advance st; advance st; (OP 'A', lc) (* && *)
  | Some '|' when peek2 st = Some '|' -> advance st; advance st; (OP 'O', lc) (* || *)
  | Some '&' -> begin
    advance st;
    match peek st with
    | Some c when is_name_char c && not (is_digit c) ->
      let name = lex_name st in
      (REF name, lc)
    | Some '{' ->
      (* &{/full/path} reference-by-path *)
      advance st;
      let start = st.pos in
      while peek st <> None && peek st <> Some '}' do
        advance st
      done;
      (match peek st with
       | Some '}' ->
         let path = String.sub st.src start (st.pos - start) in
         advance st;
         (REF path, lc)
       | _ -> error lc "unterminated &{...} reference")
    | _ -> (OP '&', lc)
  end
  | Some ('+' | '-' | '*' | '%' | '|' | '^' | '~' | '?' | ':') ->
    let c = Option.get (peek st) in
    advance st;
    (OP c, lc)
  | Some '/' -> begin
    (* Directive /word/, or a lone '/'. *)
    let save = st.pos in
    advance st;
    match peek st with
    | Some c when is_name_char c ->
      let name = lex_name st in
      (match peek st with
       | Some '/' ->
         advance st;
         (DIRECTIVE name, lc)
       | _ ->
         (* Not a directive: rewind and emit '/'.  This happens for paths in
            /delete-node/ arguments, which we lex as '/' + names. *)
         st.pos <- save;
         advance st;
         (SLASH, lc))
    | _ -> (SLASH, lc)
  end
  | Some c when is_name_char c ->
    let name = lex_name st in
    let is_number =
      name <> ""
      && is_digit name.[0]
      && (match Int64.of_string_opt name with
          | Some _ -> true
          | None ->
            (* allow U/L suffixes *)
            let rec strip i =
              if
                i > 0
                && match name.[i - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false
              then strip (i - 1)
              else i
            in
            let stripped = String.sub name 0 (strip (String.length name)) in
            Int64.of_string_opt stripped <> None)
    in
    if is_number then (lex_number st name lc, lc)
    else if peek st = Some ':' then begin
      advance st;
      (LABEL name, lc)
    end
    else (IDENT name, lc)
  | Some c -> error lc "unexpected character %C" c

let tokenize ~file src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let (tok, lc) = next_token st in
    if tok = EOF then List.rev ((tok, lc) :: acc) else go ((tok, lc) :: acc)
  in
  Array.of_list (go [])

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | NUMBER n -> Fmt.pf ppf "number %Ld" n
  | STRING s -> Fmt.pf ppf "string %S" s
  | BYTES _ -> Fmt.string ppf "byte string"
  | LABEL s -> Fmt.pf ppf "label %S" s
  | REF s -> Fmt.pf ppf "reference &%s" s
  | DIRECTIVE s -> Fmt.pf ppf "directive /%s/" s
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | SEMI -> Fmt.string ppf "';'"
  | EQUALS -> Fmt.string ppf "'='"
  | LT -> Fmt.string ppf "'<'"
  | GT -> Fmt.string ppf "'>'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | COMMA -> Fmt.string ppf "','"
  | SLASH -> Fmt.string ppf "'/'"
  | OP c -> Fmt.pf ppf "operator %C" c
  | EOF -> Fmt.string ppf "end of input"
