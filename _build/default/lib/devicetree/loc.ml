(* Source positions for diagnostics; every parse error and checker finding
   points back into the DTS text it came from. *)

type t = {
  file : string;
  line : int; (* 1-based *)
  col : int;  (* 1-based *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }
let make ~file ~line ~col = { file; line; col }
let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col
let to_string t = Fmt.str "%a" pp t
