(* Interrupt topology resolution, per the DeviceTree interrupt-mapping
   conventions:

   - a device's interrupt parent is its [interrupt-parent] phandle, inherited
     from the nearest ancestor when absent, falling back to the nearest
     ancestor that is itself an [interrupt-controller];
   - the controller's [#interrupt-cells] (default 1) determines how many
     cells form one interrupt specifier in [interrupts];
   - [interrupts-extended] interleaves an explicit controller phandle before
     each specifier, overriding the inherited parent.

   Nexus nodes ([interrupt-map]) are traversed: a specifier targeting a
   nexus is masked with [interrupt-map-mask], matched against the map
   entries and routed (possibly through several nexus levels) to its final
   controller; the common #address-cells = 0 nexus form is supported.
   Phandles must be resolved ([Tree.resolve_phandles]) before calling in
   here. *)

type spec = {
  device : string;           (* path of the node raising the interrupt *)
  controller : string;       (* path of the interrupt parent *)
  cells : int64 list;        (* one specifier, #interrupt-cells long *)
  loc : Loc.t;
}

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

let is_controller node = Tree.has_prop node "interrupt-controller"

(* phandle value -> node path *)
let phandle_table tree =
  Tree.fold
    (fun path node acc ->
      match Tree.get_prop node "phandle" with
      | Some p -> (match Tree.prop_u32s p with [ v ] -> (v, path) :: acc | _ -> acc)
      | None -> acc)
    tree []

let interrupt_cells node =
  match Tree.get_prop node "#interrupt-cells" with
  | None -> 1
  | Some p ->
    (match Tree.prop_u32s p with
     | [ v ] ->
       let n = Int64.to_int v in
       if n < 1 || n > 8 then error p.Tree.p_loc "#interrupt-cells value %d out of range" n;
       n
     | _ -> error p.Tree.p_loc "#interrupt-cells must be a single cell")

let chunk ~loc ~what n cells =
  let rec go cells acc =
    match cells with
    | [] -> List.rev acc
    | _ ->
      let rec take k cells spec =
        if k = 0 then (List.rev spec, cells)
        else
          match cells with
          | [] -> error loc "%s: trailing cells do not form a full specifier" what
          | c :: rest -> take (k - 1) rest (c :: spec)
      in
      let spec, rest = take n cells [] in
      go rest (spec :: acc)
  in
  go cells []

(* --- interrupt nexus (interrupt-map) -------------------------------------------- *)

(* An interrupt nexus routes child specifiers to (possibly several) parent
   controllers through its [interrupt-map]:

     entry := child-unit-address child-spec parent-phandle
              parent-unit-address parent-spec

   with the child address/spec masked by [interrupt-map-mask] before
   matching.  We support the common #address-cells = 0 nexus (no unit
   addresses on the child side), which covers PCI-less embedded maps. *)
type map_entry = {
  child_spec : int64 list;
  parent_phandle : int64;
  parent_spec : int64 list;
}

let nexus_map tree node =
  match Tree.get_prop node "interrupt-map" with
  | None -> None
  | Some p ->
    let loc = p.Tree.p_loc in
    let child_cells = interrupt_cells node in
    let address_cells =
      match Tree.get_prop node "#address-cells" with
      | Some ac -> (match Tree.prop_u32s ac with [ v ] -> Int64.to_int v | _ -> 0)
      | None -> 0
    in
    if address_cells <> 0 then
      error loc "interrupt-map with #address-cells > 0 is not supported";
    let mask =
      match Tree.get_prop node "interrupt-map-mask" with
      | None -> List.init child_cells (fun _ -> 0xFFFFFFFFL)
      | Some m ->
        let cells = Tree.prop_u32s m in
        if List.length cells <> child_cells then
          error loc "interrupt-map-mask has %d cells, expected %d" (List.length cells)
            child_cells
        else cells
    in
    let phandles = phandle_table tree in
    let rec take k cells acc =
      if k = 0 then (List.rev acc, cells)
      else
        match cells with
        | [] -> error loc "interrupt-map: truncated entry"
        | c :: rest -> take (k - 1) rest (c :: acc)
    in
    let rec entries cells acc =
      match cells with
      | [] -> List.rev acc
      | _ ->
        let child_spec, cells = take child_cells cells [] in
        let parent_phandle, cells =
          match cells with
          | [] -> error loc "interrupt-map: missing parent phandle"
          | p :: rest -> (p, rest)
        in
        let parent_path =
          match List.assoc_opt parent_phandle phandles with
          | Some path -> path
          | None -> error loc "interrupt-map parent phandle %Ld does not resolve" parent_phandle
        in
        let parent_node =
          match Tree.find tree parent_path with
          | Some n -> n
          | None -> error loc "interrupt-map parent %s not found" parent_path
        in
        let parent_ac =
          match Tree.get_prop parent_node "#address-cells" with
          | Some ac -> (match Tree.prop_u32s ac with [ v ] -> Int64.to_int v | _ -> 0)
          | None -> 0
        in
        let _, cells = take parent_ac cells [] in
        let parent_spec, cells = take (interrupt_cells parent_node) cells [] in
        entries cells ({ child_spec; parent_phandle; parent_spec } :: acc)
    in
    Some (mask, entries (Tree.prop_u32s p) [])

(* Route a specifier through a nexus; [None] when no entry matches. *)
let route_through_nexus ~mask entries spec =
  let masked = List.map2 Int64.logand spec mask in
  List.find_map
    (fun e ->
      let entry_masked = List.map2 Int64.logand e.child_spec mask in
      if entry_masked = masked then Some (e.parent_phandle, e.parent_spec) else None)
    entries

(* Resolve all interrupt specifiers of the tree. *)
let specs tree =
  let phandles = phandle_table tree in
  let controller_of_phandle ~loc v =
    match List.assoc_opt v phandles with
    | Some path -> path
    | None -> error loc "interrupt parent phandle %Ld does not resolve" v
  in
  let rec walk node path ~(inherited : int64 option) ~(ancestors : (string * Tree.t) list)
      acc =
    let own_parent =
      match Tree.get_prop node "interrupt-parent" with
      | Some p -> (match Tree.prop_u32s p with v :: _ -> Some v | [] -> inherited)
      | None -> inherited
    in
    let resolve_parent ~loc =
      match own_parent with
      | Some v ->
        let cpath = controller_of_phandle ~loc v in
        (match Tree.find tree cpath with
         | Some cnode -> (cpath, cnode)
         | None -> error loc "interrupt parent %s not found" cpath)
      | None ->
        (* Nearest ancestor that is an interrupt controller; with none
           declared anywhere, devices share the root as an implicit default
           domain (dtc merely warns in this situation). *)
        (match List.find_opt (fun (_, a) -> is_controller a) ancestors with
         | Some (apath, anode) -> (apath, anode)
         | None ->
           ignore loc;
           ("/", tree))
    in
    (* Follow interrupt-map nexus nodes (bounded, to reject cycles) until a
       real controller is reached. *)
    let rec through_nexus ~loc depth cpath cnode spec =
      if depth > 8 then error loc "interrupt-map nesting too deep (cycle?)";
      match nexus_map tree cnode with
      | None -> (cpath, spec)
      | Some (mask, entries) -> begin
        match route_through_nexus ~mask entries spec with
        | None ->
          error loc "no interrupt-map entry of %s matches specifier <%s>" cpath
            (String.concat " " (List.map Int64.to_string spec))
        | Some (parent_phandle, parent_spec) ->
          let parent_path = controller_of_phandle ~loc parent_phandle in
          let parent_node =
            match Tree.find tree parent_path with
            | Some n -> n
            | None -> error loc "interrupt parent %s not found" parent_path
          in
          through_nexus ~loc (depth + 1) parent_path parent_node parent_spec
      end
    in
    let acc =
      match Tree.get_prop node "interrupts" with
      | None -> acc
      | Some p ->
        let loc = p.Tree.p_loc in
        let cpath, cnode = resolve_parent ~loc in
        let n = interrupt_cells cnode in
        let cells = Tree.prop_u32s p in
        acc
        @ List.map
            (fun spec ->
              let controller, cells = through_nexus ~loc 0 cpath cnode spec in
              { device = path; controller; cells; loc })
            (chunk ~loc ~what:"interrupts" n cells)
    in
    let acc =
      match Tree.get_prop node "interrupts-extended" with
      | None -> acc
      | Some p ->
        let loc = p.Tree.p_loc in
        let rec go cells acc =
          match cells with
          | [] -> acc
          | ph :: rest ->
            let cpath = controller_of_phandle ~loc ph in
            let cnode =
              match Tree.find tree cpath with
              | Some c -> c
              | None -> error loc "interrupt parent %s not found" cpath
            in
            let n = interrupt_cells cnode in
            let rec take k cells spec =
              if k = 0 then (List.rev spec, cells)
              else
                match cells with
                | [] -> error loc "interrupts-extended: truncated specifier"
                | c :: r -> take (k - 1) r (c :: spec)
            in
            let spec, rest = take n rest [] in
            let controller, cells = through_nexus ~loc 0 cpath cnode spec in
            go rest (acc @ [ { device = path; controller; cells; loc } ])
        in
        go (Tree.prop_u32s p) acc
    in
    List.fold_left
      (fun acc child ->
        walk child (Tree.join_path path child.Tree.name) ~inherited:own_parent
          ~ancestors:((path, node) :: ancestors)
          acc)
      acc node.Tree.children
  in
  walk tree "/" ~inherited:None ~ancestors:[] []

(* Pack a specifier into a single 64-bit key (first two cells); used by the
   semantic checker's Distinct constraint. *)
let spec_key s =
  match s.cells with
  | [] -> 0L
  | [ a ] -> Int64.logand a 0xFFFFFFFFL
  | a :: b :: _ ->
    Int64.logor (Int64.shift_left (Int64.logand a 0xFFFFFFFFL) 32) (Int64.logand b 0xFFFFFFFFL)

let pp_spec ppf s =
  Fmt.pf ppf "%s -> %s <%a>" s.device s.controller
    Fmt.(list ~sep:sp (fmt "%Ld"))
    s.cells
