(** Interpretation of [reg] and [ranges] under #address-cells/#size-cells
    context — the "dynamic semantics" of property values that motivates the
    semantic checker (§II-A of the paper). *)

type region = {
  base : int64;
  size : int64;
}

exception Error of string * Loc.t

(** 2, per the DeviceTree specification. *)
val default_address_cells : int

(** 1, per the DeviceTree specification. *)
val default_size_cells : int

(** #address-cells of a node (the value its {e children}'s reg addresses are
    parsed with), or the spec default. *)
val address_cells : Tree.t -> int

val size_cells : Tree.t -> int

(** Decode a [reg] property into (base, size) regions given the parent's
    cell counts.  Raises {!Error} when the cell count is not a multiple of
    the stride or a value exceeds 64 bits. *)
val decode_reg : address_cells:int -> size_cells:int -> Tree.prop -> region list

type range_entry = {
  child_base : int64;
  parent_base : int64;
  length : int64;
}

(** Decode a [ranges] property; an empty value means identity mapping. *)
val decode_ranges :
  child_address_cells:int ->
  parent_address_cells:int ->
  child_size_cells:int ->
  Tree.prop ->
  [ `Identity | `Map of range_entry list ]

(** Translate a child-bus address to the parent bus; [None] if no range
    entry covers it. *)
val translate_address : [ `Identity | `Map of range_entry list ] -> int64 -> int64 option

(** The regions of one node, translated towards the root address space.
    [translated = false] marks nodes behind a bus without usable [ranges]
    (their reg values are bus-private — e.g. cpu ids — and must not be
    compared against root-space addresses). *)
type node_regions = {
  path : string;
  regions : region list;
  translated : bool;
  reg_loc : Loc.t;
}

(** All nodes with a [reg], walking the tree with the correct cell context
    at every level and applying [ranges] translations. *)
val regions_in_root_space : Tree.t -> node_regions list

(** End address (base + size) with an overflow check. *)
val region_end : loc:Loc.t -> region -> int64

val pp_region : Format.formatter -> region -> unit
