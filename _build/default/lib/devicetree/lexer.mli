(** Hand-written lexer for DeviceTree source. *)

type token =
  | IDENT of string      (** node/property names (liberal character set) *)
  | NUMBER of int64
  | STRING of string
  | BYTES of string      (** contents of a [[ aa bb ]] byte string *)
  | LABEL of string      (** [name:] *)
  | REF of string        (** [&label] or [&{/path}] *)
  | DIRECTIVE of string  (** the word of [/word/], e.g. "dts-v1", "include" *)
  | LBRACE
  | RBRACE
  | SEMI
  | EQUALS
  | LT
  | GT
  | LPAREN
  | RPAREN
  | COMMA
  | SLASH
  | OP of char
      (** expression operators; two-character operators are packed:
          'E' [==], 'N' [!=], 'l' [<=], 'g' [>=], 'A' [&&], 'O' [||] *)
  | EOF

exception Error of string * Loc.t

(** Tokenize a whole source text; the result always ends with [EOF].
    Raises {!Error} on invalid input. *)
val tokenize : file:string -> string -> (token * Loc.t) array

val pp_token : Format.formatter -> token -> unit
