(* Pretty-printing of trees back to DeviceTree source.  The output parses
   back to an equal tree (round-trip property exercised by the tests). *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 || Char.code c > 126 ->
        Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_cell ppf = function
  | Ast.Cell_int v ->
    if Int64.unsigned_compare v 10L < 0 then Fmt.pf ppf "%Ld" v else Fmt.pf ppf "0x%Lx" v
  | Ast.Cell_ref label -> Fmt.pf ppf "&%s" label

let pp_piece ppf = function
  | Ast.Cells { bits; cells } ->
    if bits <> 32 then Fmt.pf ppf "/bits/ %d " bits;
    Fmt.pf ppf "<%a>" Fmt.(list ~sep:(any " ") pp_cell) cells
  | Ast.Str s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | Ast.Bytes b ->
    Fmt.pf ppf "[";
    String.iteri
      (fun i c ->
        if i > 0 then Fmt.string ppf " ";
        Fmt.pf ppf "%02x" (Char.code c))
      b;
    Fmt.pf ppf "]"
  | Ast.Ref_path label -> Fmt.pf ppf "&%s" label

let pp_prop ~indent ppf (p : Tree.prop) =
  match p.p_value with
  | [] -> Fmt.pf ppf "%s%s;@." indent p.p_name
  | pieces ->
    Fmt.pf ppf "%s%s = %a;@." indent p.p_name
      Fmt.(list ~sep:(any ", ") pp_piece)
      pieces

let rec pp_node ~indent ppf (node : Tree.t) =
  let labels = String.concat "" (List.map (fun l -> l ^ ": ") node.labels) in
  Fmt.pf ppf "%s%s%s {@." indent labels node.name;
  let inner = indent ^ "    " in
  List.iter (pp_prop ~indent:inner ppf) node.props;
  List.iter
    (fun child ->
      Fmt.pf ppf "@.";
      pp_node ~indent:inner ppf child)
    node.children;
  Fmt.pf ppf "%s};@." indent

let pp ppf (tree : Tree.t) =
  Fmt.pf ppf "/dts-v1/;@.@.";
  Fmt.pf ppf "/ {@.";
  let inner = "    " in
  List.iter (pp_prop ~indent:inner ppf) tree.props;
  List.iter
    (fun child ->
      Fmt.pf ppf "@.";
      pp_node ~indent:inner ppf child)
    tree.children;
  Fmt.pf ppf "};@."

let to_string tree = Fmt.str "%a" pp tree
