(* Structural diff between two trees: added/removed nodes, added/removed/
   changed properties.  Used by the CLI to explain what a delta set or an
   overlay actually did to a DTS, and by tests to pin down regressions. *)

type change =
  | Node_added of string            (* path *)
  | Node_removed of string
  | Prop_added of string * string   (* path, property *)
  | Prop_removed of string * string
  | Prop_changed of string * string (* path, property *)

let path_of = function
  | Node_added p | Node_removed p | Prop_added (p, _) | Prop_removed (p, _)
  | Prop_changed (p, _) ->
    p

let pp_change ppf = function
  | Node_added p -> Fmt.pf ppf "+ node %s" p
  | Node_removed p -> Fmt.pf ppf "- node %s" p
  | Prop_added (p, name) -> Fmt.pf ppf "+ %s : %s" p name
  | Prop_removed (p, name) -> Fmt.pf ppf "- %s : %s" p name
  | Prop_changed (p, name) -> Fmt.pf ppf "~ %s : %s" p name

(* Serialised form used for property comparison (type-insensitive: a value
   and its DTB-decoded byte form compare equal). *)
let prop_repr (p : Tree.prop) =
  match Fdt.prop_raw_bytes p with
  | raw -> `Raw raw
  | exception Fdt.Error _ -> `Pieces p.Tree.p_value

let rec diff_nodes path (a : Tree.t) (b : Tree.t) acc =
  (* Properties. *)
  let acc =
    List.fold_left
      (fun acc (pa : Tree.prop) ->
        match Tree.get_prop b pa.Tree.p_name with
        | None -> Prop_removed (path, pa.Tree.p_name) :: acc
        | Some pb ->
          if prop_repr pa = prop_repr pb then acc
          else Prop_changed (path, pa.Tree.p_name) :: acc)
      acc a.Tree.props
  in
  let acc =
    List.fold_left
      (fun acc (pb : Tree.prop) ->
        if Tree.has_prop a pb.Tree.p_name then acc
        else Prop_added (path, pb.Tree.p_name) :: acc)
      acc b.Tree.props
  in
  (* Children. *)
  let acc =
    List.fold_left
      (fun acc (ca : Tree.t) ->
        let child_path = Tree.join_path path ca.Tree.name in
        match List.find_opt (fun c -> String.equal c.Tree.name ca.Tree.name) b.Tree.children with
        | None -> Node_removed child_path :: acc
        | Some cb -> diff_nodes child_path ca cb acc)
      acc a.Tree.children
  in
  List.fold_left
    (fun acc (cb : Tree.t) ->
      if List.exists (fun c -> String.equal c.Tree.name cb.Tree.name) a.Tree.children then acc
      else Node_added (Tree.join_path path cb.Tree.name) :: acc)
    acc b.Tree.children

(* All changes from [a] to [b], in path order. *)
let diff a b =
  List.sort
    (fun c1 c2 -> String.compare (path_of c1) (path_of c2))
    (diff_nodes "/" a b [])

let pp ppf changes =
  match changes with
  | [] -> Fmt.string ppf "(no differences)"
  | _ -> Fmt.(list ~sep:cut pp_change) ppf changes
