(** Recursive-descent parser for DeviceTree source.

    The token-stream state and [parse_node_body] are exposed so that other
    front ends (notably the delta-module language, which embeds DTS node
    bodies) can reuse the grammar. *)

exception Error of string * Loc.t

type state = {
  toks : (Lexer.token * Loc.t) array;
  mutable pos : int;
}

(** Parse a whole DTS file. *)
val parse : file:string -> string -> Ast.file

(** Parse a brace-delimited node body at the current position; consumes the
    closing brace but not a trailing semicolon. *)
val parse_node_body : state -> labels:string list -> name:string -> loc:Loc.t -> Ast.node

(** Parse and constant-fold a parenthesised C-like integer expression. *)
val parse_paren_expr : state -> int64
