(* Interpretation of [reg] and [ranges] under #address-cells/#size-cells
   context — the "dynamic semantics" of Section II-A that motivates the
   semantic checker: the same property text means different things depending
   on the values of these properties in the parent node. *)

type region = {
  base : int64;
  size : int64;
}

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

(* Defaults mandated by the DeviceTree specification for the root node. *)
let default_address_cells = 2
let default_size_cells = 1

let cells_prop node name ~default =
  match Tree.get_prop node name with
  | None -> default
  | Some p ->
    (match Tree.prop_u32s p with
     | [ v ] ->
       let n = Int64.to_int v in
       if n < 0 || n > 4 then error p.Tree.p_loc "%s value %d out of range" name n;
       n
     | _ -> error p.Tree.p_loc "%s must be a single cell" name)

let address_cells node = cells_prop node "#address-cells" ~default:default_address_cells
let size_cells node = cells_prop node "#size-cells" ~default:default_size_cells

(* Combine [n] 32-bit cells (most significant first) into one int64. *)
let combine_cells ~loc ~what n cells =
  let rec take acc k cells =
    if k = 0 then (acc, cells)
    else
      match cells with
      | [] -> error loc "%s: ran out of cells" what
      | c :: rest ->
        if k > 2 && Int64.compare c 0L <> 0 then
          error loc "%s: value does not fit in 64 bits" what;
        let acc =
          if k > 2 then acc else Int64.logor (Int64.shift_left acc 32) (Int64.logand c 0xFFFFFFFFL)
        in
        take acc (k - 1) rest
  in
  take 0L n cells

(* Decode a [reg] property given the parent's cell counts. *)
let decode_reg ~address_cells ~size_cells prop =
  let cells = Tree.prop_u32s prop in
  let stride = address_cells + size_cells in
  let loc = prop.Tree.p_loc in
  if stride = 0 then []
  else begin
    if List.length cells mod stride <> 0 then
      error loc "reg has %d cells, not a multiple of #address-cells + #size-cells = %d"
        (List.length cells) stride;
    let rec go cells acc =
      match cells with
      | [] -> List.rev acc
      | _ ->
        let base, cells = combine_cells ~loc ~what:"reg address" address_cells cells in
        let size, cells = combine_cells ~loc ~what:"reg size" size_cells cells in
        go cells ({ base; size } :: acc)
    in
    go cells []
  end

(* One entry of a [ranges] property: child-bus address, parent-bus address,
   length. *)
type range_entry = {
  child_base : int64;
  parent_base : int64;
  length : int64;
}

let decode_ranges ~child_address_cells ~parent_address_cells ~child_size_cells prop =
  let cells = Tree.prop_u32s prop in
  let loc = prop.Tree.p_loc in
  let stride = child_address_cells + parent_address_cells + child_size_cells in
  if cells = [] then `Identity
  else begin
    if stride = 0 || List.length cells mod stride <> 0 then
      error loc "ranges has %d cells, not a multiple of %d" (List.length cells) stride;
    let rec go cells acc =
      match cells with
      | [] -> `Map (List.rev acc)
      | _ ->
        let child_base, cells =
          combine_cells ~loc ~what:"ranges child address" child_address_cells cells
        in
        let parent_base, cells =
          combine_cells ~loc ~what:"ranges parent address" parent_address_cells cells
        in
        let length, cells = combine_cells ~loc ~what:"ranges length" child_size_cells cells in
        go cells ({ child_base; parent_base; length } :: acc)
    in
    go cells []
  end

(* Translate a child-bus address to the parent bus through a ranges map. *)
let translate_address ranges addr =
  match ranges with
  | `Identity -> Some addr
  | `Map entries ->
    List.find_map
      (fun { child_base; parent_base; length } ->
        let off = Int64.sub addr child_base in
        if Int64.unsigned_compare addr child_base >= 0
           && Int64.unsigned_compare off length < 0
        then Some (Int64.add parent_base off)
        else None)
      entries

(* All memory-mapped regions of the tree, translated into the root address
   space.  Returns (path, region list, source location) per node with [reg].
   Nodes behind a non-translatable bus (no usable ranges entry) keep their
   local addresses and are flagged [translated = false]. *)
type node_regions = {
  path : string;
  regions : region list;
  translated : bool;
  reg_loc : Loc.t;
}

let regions_in_root_space tree =
  let rec go node path ~parent_ac ~parent_sc ~(to_root : int64 -> int64 option)
      ~translatable acc =
    let acc =
      match Tree.get_prop node "reg" with
      | None -> acc
      | Some prop when String.equal path "/" ->
        ignore prop;
        acc
      | Some prop ->
        let regions = decode_reg ~address_cells:parent_ac ~size_cells:parent_sc prop in
        let translated_regions, all_ok =
          List.fold_left
            (fun (rs, ok) r ->
              match to_root r.base with
              | Some base when translatable -> (rs @ [ { r with base } ], ok)
              | _ -> (rs @ [ r ], false))
            ([], translatable) regions
        in
        acc
        @ [ { path; regions = translated_regions; translated = all_ok; reg_loc = prop.Tree.p_loc } ]
    in
    let ac = address_cells node and sc = size_cells node in
    let child_ranges =
      match Tree.get_prop node "ranges" with
      | None -> if String.equal path "/" then Some `Identity else None
      | Some prop ->
        Some
          (decode_ranges ~child_address_cells:ac ~parent_address_cells:parent_ac
             ~child_size_cells:sc prop)
    in
    let child_to_root, child_translatable =
      match child_ranges with
      | None ->
        (* No ranges: child addresses are not mapped onto the parent bus. *)
        ((fun a -> Some a), false)
      | Some ranges ->
        ( (fun a ->
            match translate_address ranges a with
            | None -> None
            | Some parent_addr -> to_root parent_addr),
          translatable )
    in
    List.fold_left
      (fun acc child ->
        go child (Tree.join_path path child.Tree.name) ~parent_ac:ac ~parent_sc:sc
          ~to_root:child_to_root ~translatable:child_translatable acc)
      acc node.Tree.children
  in
  go tree "/" ~parent_ac:default_address_cells ~parent_sc:default_size_cells
    ~to_root:(fun a -> Some a)
    ~translatable:true []

(* End address of a region with overflow check. *)
let region_end ~loc { base; size } =
  let e = Int64.add base size in
  if Int64.unsigned_compare e base < 0 then
    error loc "region 0x%Lx + 0x%Lx overflows the 64-bit address space" base size;
  e

let pp_region ppf { base; size } = Fmt.pf ppf "[0x%Lx, 0x%Lx)" base (Int64.add base size)
