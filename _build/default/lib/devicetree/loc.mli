(** Source positions for diagnostics. *)

type t = {
  file : string;
  line : int; (** 1-based *)
  col : int;  (** 1-based *)
}

(** Placeholder for synthesized nodes with no source text. *)
val dummy : t

val make : file:string -> line:int -> col:int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
