lib/devicetree/tree.mli: Ast Loc
