lib/devicetree/tree.ml: Ast Char Fmt Int64 List Loc Parser String
