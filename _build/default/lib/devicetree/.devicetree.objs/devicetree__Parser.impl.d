lib/devicetree/parser.ml: Array Ast Fmt Int64 Lexer List Loc
