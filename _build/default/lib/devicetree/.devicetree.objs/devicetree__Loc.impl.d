lib/devicetree/loc.ml: Fmt
