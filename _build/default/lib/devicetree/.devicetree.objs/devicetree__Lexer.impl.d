lib/devicetree/lexer.ml: Array Buffer Char Fmt Int64 List Loc Option String
