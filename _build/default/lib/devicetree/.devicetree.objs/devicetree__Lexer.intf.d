lib/devicetree/lexer.mli: Format Loc
