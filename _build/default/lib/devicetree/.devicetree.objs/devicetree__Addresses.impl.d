lib/devicetree/addresses.ml: Fmt Int64 List Loc String Tree
