lib/devicetree/parser.mli: Ast Lexer Loc
