lib/devicetree/fdt.mli: Tree
