lib/devicetree/printer.ml: Ast Buffer Char Fmt Int64 List Printf String Tree
