lib/devicetree/diff.mli: Format Tree
