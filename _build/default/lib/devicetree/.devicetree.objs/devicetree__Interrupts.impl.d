lib/devicetree/interrupts.ml: Fmt Int64 List Loc String Tree
