lib/devicetree/ast.mli: Loc
