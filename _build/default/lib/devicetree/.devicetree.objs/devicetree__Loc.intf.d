lib/devicetree/loc.mli: Format
