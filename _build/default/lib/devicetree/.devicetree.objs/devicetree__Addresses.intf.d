lib/devicetree/addresses.mli: Format Loc Tree
