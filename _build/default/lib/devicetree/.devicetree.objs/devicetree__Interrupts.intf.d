lib/devicetree/interrupts.mli: Format Loc Tree
