lib/devicetree/printer.mli: Format Tree
