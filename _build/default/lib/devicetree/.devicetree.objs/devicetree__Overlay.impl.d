lib/devicetree/overlay.ml: Ast Fmt List Loc String Tree
