lib/devicetree/ast.ml: List Loc String
