lib/devicetree/overlay.mli: Loc Tree
