lib/devicetree/fdt.ml: Ast Buffer Char Fmt Hashtbl Int32 Int64 List Loc String Tree
