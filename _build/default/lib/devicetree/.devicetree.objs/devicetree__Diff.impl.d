lib/devicetree/diff.ml: Fdt Fmt List String Tree
