(** Parse-level abstract syntax of DeviceTree source (DTS).

    Mirrors the concrete syntax; semantic concerns (merging repeated nodes,
    resolving label references, phandles) live in {!Tree}. *)

(** One integer cell inside [< ... >]. *)
type cell =
  | Cell_int of int64
  | Cell_ref of string  (** [&label]; becomes the labelled node's phandle *)

(** One piece of a property value; a value is a comma-separated sequence. *)
type piece =
  | Cells of { bits : int; cells : cell list }
      (** [< ... >]; [bits] is 32 unless [/bits/] was used *)
  | Str of string      (** ["..."] *)
  | Bytes of string    (** [[ aa bb ... ]] *)
  | Ref_path of string (** [&label] at value position (the node's path) *)

type prop = {
  prop_name : string;
  prop_value : piece list; (** empty = boolean/empty property *)
  prop_loc : Loc.t;
}

type node = {
  node_labels : string list;
  node_name : string; (** includes the unit address, e.g. ["memory@40000000"] *)
  node_entries : entry list;
  node_loc : Loc.t;
}

and entry =
  | Prop of prop
  | Child of node
  | Delete_node of string * Loc.t
  | Delete_prop of string * Loc.t

type toplevel =
  | Version_tag                   (** [/dts-v1/;] *)
  | Include of string * Loc.t     (** [/include/ "file"] *)
  | Memreserve of int64 * int64   (** [/memreserve/ addr size;] *)
  | Root of node                  (** [/ { ... };] *)
  | Ref_node of string * node     (** [&label { ... };] overlay *)
  | Delete_node_top of string * Loc.t

type file = toplevel list

(** Preorder iteration over a node and its descendants. *)
val iter_nodes : (node -> unit) -> node -> unit

(** Node name without its unit address ("memory\@0" -> "memory"). *)
val base_name : string -> string

(** Unit address of a node name, if any ("memory\@0" -> ["Some "0""]). *)
val unit_address : string -> string option
