(* Flattened DeviceTree (DTB) encoding and decoding, FDT format version 17.

   Layout: header, memory reservation block, structure block
   (BEGIN_NODE/PROP/END_NODE/END tokens, 4-byte aligned), strings block
   (property names).  Encoding serialises typed property pieces to their
   binary form; decoding necessarily returns untyped byte values (the blob
   does not record types), exposed as a single [Ast.Bytes] piece. *)

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

let magic = 0xd00dfeedl
let version = 17l
let last_comp_version = 16l

let tok_begin_node = 0x1l
let tok_end_node = 0x2l
let tok_prop = 0x3l
let tok_nop = 0x4l
let tok_end = 0x9l

(* --- byte-level helpers -------------------------------------------------------- *)

let add_be32 buf v =
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Buffer.add_char buf (Char.chr (Int32.to_int v land 0xff))

let add_be64 buf v =
  add_be32 buf (Int64.to_int32 (Int64.shift_right_logical v 32));
  add_be32 buf (Int64.to_int32 v)

let align4 buf =
  while Buffer.length buf mod 4 <> 0 do
    Buffer.add_char buf '\000'
  done

let get_be32 s off =
  if off + 4 > String.length s then error "truncated blob";
  let b i = Int32.of_int (Char.code s.[off + i]) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

let get_be64 s off =
  let hi = Int64.of_int32 (get_be32 s off) in
  let lo = Int64.of_int32 (get_be32 s (off + 4)) in
  Int64.logor
    (Int64.shift_left (Int64.logand hi 0xFFFFFFFFL) 32)
    (Int64.logand lo 0xFFFFFFFFL)

(* --- property serialisation ------------------------------------------------------ *)

let serialize_piece ~resolve_label buf = function
  | Ast.Cells { bits; cells } ->
    List.iter
      (fun cell ->
        let v =
          match cell with
          | Ast.Cell_int v -> v
          | Ast.Cell_ref label -> resolve_label label
        in
        match bits with
        | 8 -> Buffer.add_char buf (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
        | 16 ->
          Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical v 8) land 0xff));
          Buffer.add_char buf (Char.chr (Int64.to_int v land 0xff))
        | 32 -> add_be32 buf (Int64.to_int32 v)
        | 64 -> add_be64 buf v
        | n -> error "unsupported cell width %d" n)
      cells
  | Ast.Str s ->
    Buffer.add_string buf s;
    Buffer.add_char buf '\000'
  | Ast.Bytes b -> Buffer.add_string buf b
  | Ast.Ref_path path ->
    Buffer.add_string buf path;
    Buffer.add_char buf '\000'

let serialize_value ~resolve_label pieces =
  let buf = Buffer.create 16 in
  List.iter (serialize_piece ~resolve_label buf) pieces;
  Buffer.contents buf

(* --- encoding ---------------------------------------------------------------------- *)

let encode ?(memreserves = []) (tree : Tree.t) =
  let tree = Tree.resolve_phandles tree in
  let phandle_of label =
    match Tree.find_label tree label with
    | Some (_, node) -> begin
      match Tree.get_prop node "phandle" with
      | Some p -> (match Tree.prop_u32s p with [ v ] -> v | _ -> error "bad phandle on &%s" label)
      | None -> error "no phandle for &%s" label
    end
    | None -> error "undefined label &%s" label
  in
  let path_of label =
    match Tree.find_label tree label with
    | Some (path, _) -> path
    | None -> error "undefined label &%s" label
  in
  (* Strings block with de-duplication. *)
  let strings = Buffer.create 64 in
  let string_offsets = Hashtbl.create 16 in
  let intern s =
    match Hashtbl.find_opt string_offsets s with
    | Some off -> off
    | None ->
      let off = Buffer.length strings in
      Buffer.add_string strings s;
      Buffer.add_char strings '\000';
      Hashtbl.add string_offsets s off;
      off
  in
  let struct_buf = Buffer.create 256 in
  let emit_prop (p : Tree.prop) =
    (* &label at value position serialises as the referenced node's path. *)
    let pieces =
      List.map
        (function Ast.Ref_path label -> Ast.Str (path_of label) | piece -> piece)
        p.p_value
    in
    let value = serialize_value ~resolve_label:phandle_of pieces in
    add_be32 struct_buf tok_prop;
    add_be32 struct_buf (Int32.of_int (String.length value));
    add_be32 struct_buf (Int32.of_int (intern p.p_name));
    Buffer.add_string struct_buf value;
    align4 struct_buf
  in
  let rec emit_node (node : Tree.t) ~name =
    add_be32 struct_buf tok_begin_node;
    Buffer.add_string struct_buf name;
    Buffer.add_char struct_buf '\000';
    align4 struct_buf;
    List.iter emit_prop node.props;
    List.iter (fun c -> emit_node c ~name:c.Tree.name) node.children;
    add_be32 struct_buf tok_end_node
  in
  emit_node tree ~name:"";
  add_be32 struct_buf tok_end;
  (* Memory reservation block, terminated by a zero entry. *)
  let rsv = Buffer.create 32 in
  List.iter
    (fun (addr, size) ->
      add_be64 rsv addr;
      add_be64 rsv size)
    memreserves;
  add_be64 rsv 0L;
  add_be64 rsv 0L;
  (* Assemble. *)
  let header_size = 40 in
  let off_rsv = header_size in
  let off_struct = off_rsv + Buffer.length rsv in
  let off_strings = off_struct + Buffer.length struct_buf in
  let total = off_strings + Buffer.length strings in
  let out = Buffer.create total in
  add_be32 out magic;
  add_be32 out (Int32.of_int total);
  add_be32 out (Int32.of_int off_struct);
  add_be32 out (Int32.of_int off_strings);
  add_be32 out (Int32.of_int off_rsv);
  add_be32 out version;
  add_be32 out last_comp_version;
  add_be32 out 0l; (* boot_cpuid_phys *)
  add_be32 out (Int32.of_int (Buffer.length strings));
  add_be32 out (Int32.of_int (Buffer.length struct_buf));
  Buffer.add_buffer out rsv;
  Buffer.add_buffer out struct_buf;
  Buffer.add_buffer out strings;
  Buffer.contents out

(* --- decoding ----------------------------------------------------------------------- *)

let read_cstring s off =
  match String.index_from_opt s off '\000' with
  | None -> error "unterminated string in blob"
  | Some nul -> (String.sub s off (nul - off), nul + 1)

let decode blob =
  if get_be32 blob 0 <> magic then error "bad FDT magic";
  let off_struct = Int32.to_int (get_be32 blob 8) in
  let off_strings = Int32.to_int (get_be32 blob 12) in
  let off_rsv = Int32.to_int (get_be32 blob 16) in
  (* Memory reservations. *)
  let rec read_rsv off acc =
    let addr = get_be64 blob off and size = get_be64 blob (off + 8) in
    if Int64.equal addr 0L && Int64.equal size 0L then List.rev acc
    else read_rsv (off + 16) ((addr, size) :: acc)
  in
  let memreserves = read_rsv off_rsv [] in
  let string_at off =
    let s, _ = read_cstring blob (off_strings + off) in
    s
  in
  let pos = ref off_struct in
  let read_token () =
    let t = get_be32 blob !pos in
    pos := !pos + 4;
    t
  in
  let align () = pos := (!pos + 3) land lnot 3 in
  let rec parse_node name : Tree.t =
    let props = ref [] in
    let children = ref [] in
    let continue = ref true in
    while !continue do
      let tok = read_token () in
      if Int32.equal tok tok_prop then begin
        let len = Int32.to_int (get_be32 blob !pos) in
        let name_off = Int32.to_int (get_be32 blob (!pos + 4)) in
        pos := !pos + 8;
        let value = String.sub blob !pos len in
        pos := !pos + len;
        align ();
        let pieces = if len = 0 then [] else [ Ast.Bytes value ] in
        props :=
          { Tree.p_name = string_at name_off; p_value = pieces; p_loc = Loc.dummy } :: !props
      end
      else if Int32.equal tok tok_begin_node then begin
        let child_name, after = read_cstring blob !pos in
        pos := after;
        align ();
        children := parse_node child_name :: !children
      end
      else if Int32.equal tok tok_end_node then continue := false
      else if Int32.equal tok tok_nop then ()
      else error "unexpected token 0x%lx in structure block" tok
    done;
    {
      Tree.name = (if name = "" then "/" else name);
      labels = [];
      props = List.rev !props;
      children = List.rev !children;
      loc = Loc.dummy;
    }
  in
  let tok = read_token () in
  if not (Int32.equal tok tok_begin_node) then error "structure block must start with BEGIN_NODE";
  let root_name, after = read_cstring blob !pos in
  pos := after;
  align ();
  let tree = parse_node root_name in
  (tree, memreserves)

(* Raw bytes of a property as decoded from a blob (or serialised form of a
   typed property) — the canonical form for comparing trees across a
   DTS -> DTB -> tree round trip. *)
let prop_raw_bytes (p : Tree.prop) =
  serialize_value ~resolve_label:(fun l -> error "unresolved label &%s" l) p.p_value
