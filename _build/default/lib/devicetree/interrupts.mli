(** Interrupt topology resolution per the DeviceTree interrupt-mapping
    conventions: [interrupt-parent] phandles with ancestor inheritance,
    fallback to the nearest ancestor [interrupt-controller],
    [#interrupt-cells]-sized specifiers, [interrupts-extended], and
    [interrupt-map] nexus routing (masked matching, chained nexus levels,
    #address-cells = 0 form).

    Phandles must be resolved ({!Tree.resolve_phandles}) first. *)

type spec = {
  device : string;     (** path of the node raising the interrupt *)
  controller : string; (** path of the resolved interrupt parent *)
  cells : int64 list;  (** one specifier, #interrupt-cells long *)
  loc : Loc.t;
}

exception Error of string * Loc.t

(** Is this node an interrupt controller? *)
val is_controller : Tree.t -> bool

(** [#interrupt-cells] of a controller (default 1). *)
val interrupt_cells : Tree.t -> int

(** All interrupt specifiers of the tree, resolved to their controllers.
    Raises {!Error} on dangling parents or malformed specifier lists. *)
val specs : Tree.t -> spec list

(** Pack a specifier's first two cells into one 64-bit comparison key. *)
val spec_key : spec -> int64

val pp_spec : Format.formatter -> spec -> unit
