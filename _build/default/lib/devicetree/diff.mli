(** Structural diff between two trees: node additions/removals and property
    additions/removals/changes.  Property comparison is type-insensitive
    (a typed value equals its DTB-decoded byte form). *)

type change =
  | Node_added of string             (** path *)
  | Node_removed of string
  | Prop_added of string * string    (** path, property name *)
  | Prop_removed of string * string
  | Prop_changed of string * string

val path_of : change -> string
val pp_change : Format.formatter -> change -> unit

(** All changes from the first tree to the second, sorted by path. *)
val diff : Tree.t -> Tree.t -> change list

val pp : Format.formatter -> change list -> unit
