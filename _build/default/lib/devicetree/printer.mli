(** Pretty-printing of semantic trees back to DeviceTree source.  The output
    parses back to an equal tree (round-trip property in the test suite). *)

val pp : Format.formatter -> Tree.t -> unit
val to_string : Tree.t -> string

(** Escape a string for inclusion in DTS double quotes. *)
val escape_string : string -> string
