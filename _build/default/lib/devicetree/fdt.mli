(** Flattened DeviceTree (DTB) encoding and decoding, FDT format v17 — the
    binary blob consumed by kernels and hypervisors. *)

exception Error of string

(** [encode ?memreserves tree] serialises a tree (labels are resolved to
    phandles first; [&label] value references become path strings). *)
val encode : ?memreserves:(int64 * int64) list -> Tree.t -> string

(** [decode blob] parses a DTB.  Property values come back untyped, as a
    single [Ast.Bytes] piece each (the format does not record types).
    Returns the tree and the memory reservation block. *)
val decode : string -> Tree.t * (int64 * int64) list

(** Serialise one property's value to its binary form; the canonical shape
    for comparing trees across a DTS -> DTB -> tree round trip.  Raises
    {!Error} on unresolved label references. *)
val prop_raw_bytes : Tree.prop -> string
