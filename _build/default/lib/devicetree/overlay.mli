(** DeviceTree overlays (dtbo conventions): fragments with
    [target = <&label>] or [target-path = "/path"] and an [__overlay__]
    body merged into the base tree with dtc semantics. *)

exception Error of string * Loc.t

(** Tree-to-tree merge: properties overwrite, children merge recursively. *)
val merge_trees : Tree.t -> Tree.t -> Tree.t

(** Is this node an overlay fragment (has an [__overlay__] child)? *)
val is_fragment : Tree.t -> bool

(** Apply every fragment of [overlay] to [base].  Raises {!Error} on
    missing targets or an overlay without fragments. *)
val apply : base:Tree.t -> overlay:Tree.t -> Tree.t
