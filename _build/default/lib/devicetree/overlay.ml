(* DeviceTree overlays (dtbo conventions): an overlay source consists of
   fragments, each naming a target in the base tree and carrying an
   __overlay__ body to merge there:

     /dts-v1/;
     / {
         fragment@0 {
             target = <&uart0>;            // or target-path = "/uart@...";
             __overlay__ {
                 status = "okay";
                 current-speed = <115200>;
             };
         };
     };

   Merging follows dtc semantics: properties overwrite, children merge
   recursively.  Labels in [target = <&lbl>] resolve against the *base*
   tree, so the overlay parser leaves them as unresolved references. *)

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

(* Tree-to-tree merge with dtc overlay semantics. *)
let rec merge_trees (base : Tree.t) (over : Tree.t) : Tree.t =
  let props =
    List.fold_left
      (fun props (p : Tree.prop) ->
        let replaced = ref false in
        let props =
          List.map
            (fun (q : Tree.prop) ->
              if String.equal q.Tree.p_name p.Tree.p_name then begin
                replaced := true;
                p
              end
              else q)
            props
        in
        if !replaced then props else props @ [ p ])
      base.Tree.props over.Tree.props
  in
  let children =
    List.fold_left
      (fun children (c : Tree.t) ->
        let merged = ref false in
        let children =
          List.map
            (fun (b : Tree.t) ->
              if String.equal b.Tree.name c.Tree.name then begin
                merged := true;
                merge_trees b c
              end
              else b)
            children
        in
        if !merged then children else children @ [ c ])
      base.Tree.children over.Tree.children
  in
  { base with props; children }

(* The target path of a fragment, resolved against the base tree. *)
let fragment_target ~base (fragment : Tree.t) =
  let loc = fragment.Tree.loc in
  match Tree.get_prop fragment "target" with
  | Some p -> begin
    (* target = <&label>: the reference must still be symbolic. *)
    match p.Tree.p_value with
    | [ Ast.Cells { cells = [ Ast.Cell_ref label ]; _ } ] -> begin
      match Tree.find_label base label with
      | Some (path, _) -> path
      | None -> error p.Tree.p_loc "overlay target &%s not found in the base tree" label
    end
    | _ -> error p.Tree.p_loc "overlay target must be a single &label reference"
  end
  | None -> begin
    match Tree.get_prop fragment "target-path" with
    | Some p -> begin
      match Tree.prop_string p with
      | Some path ->
        if Tree.find base path = None then
          error p.Tree.p_loc "overlay target path %s not found in the base tree" path;
        path
      | None -> error p.Tree.p_loc "target-path must be a string"
    end
    | None -> error loc "fragment %s has neither target nor target-path" fragment.Tree.name
  end

let is_fragment (node : Tree.t) =
  List.exists (fun c -> String.equal c.Tree.name "__overlay__") node.Tree.children

(* Apply an overlay tree to a base tree. *)
let apply ~base ~overlay =
  let fragments = List.filter is_fragment overlay.Tree.children in
  if fragments = [] then error overlay.Tree.loc "overlay contains no fragments";
  List.fold_left
    (fun base fragment ->
      let path = fragment_target ~base fragment in
      let body =
        List.find (fun c -> String.equal c.Tree.name "__overlay__") fragment.Tree.children
      in
      let rec replace node segments =
        match segments with
        | [] -> merge_trees node { body with Tree.name = node.Tree.name }
        | seg :: rest ->
          {
            node with
            Tree.children =
              List.map
                (fun c -> if String.equal c.Tree.name seg then replace c rest else c)
                node.Tree.children;
          }
      in
      replace base (Tree.split_path path))
    base fragments
