(* Parse-level abstract syntax of DeviceTree source (DTS).

   This mirrors the concrete syntax closely: a file is a sequence of
   directives and root-node definitions; node bodies interleave properties,
   children and delete directives.  Semantic concerns (merging repeated
   nodes, resolving label references, computing phandles) live in [Tree]. *)

(* One 32/16/8/64-bit cell inside < ... >. *)
type cell =
  | Cell_int of int64
  | Cell_ref of string (* &label, becomes the labelled node's phandle *)

(* One "piece" of a property value; a value is a comma-separated sequence. *)
type piece =
  | Cells of { bits : int; cells : cell list } (* < ... >, default 32-bit *)
  | Str of string                              (* "..." *)
  | Bytes of string                            (* [ aa bb ... ] *)
  | Ref_path of string                         (* &label at value position *)

type prop = {
  prop_name : string;
  prop_value : piece list; (* empty list = boolean/empty property *)
  prop_loc : Loc.t;
}

type node = {
  node_labels : string list;
  node_name : string; (* includes the unit address, e.g. "memory@40000000" *)
  node_entries : entry list;
  node_loc : Loc.t;
}

and entry =
  | Prop of prop
  | Child of node
  | Delete_node of string * Loc.t
  | Delete_prop of string * Loc.t

type toplevel =
  | Version_tag                  (* /dts-v1/; *)
  | Include of string * Loc.t    (* /include/ "file" *)
  | Memreserve of int64 * int64  (* /memreserve/ addr size; *)
  | Root of node                 (* / { ... }; *)
  | Ref_node of string * node    (* &label { ... }; overlays a labelled node *)
  | Delete_node_top of string * Loc.t

type file = toplevel list

let rec iter_nodes f node =
  f node;
  List.iter
    (function Child c -> iter_nodes f c | Prop _ | Delete_node _ | Delete_prop _ -> ())
    node.node_entries

(* Name of a node without its unit address. *)
let base_name name =
  match String.index_opt name '@' with
  | None -> name
  | Some i -> String.sub name 0 i

(* Unit address of a node name, if any. *)
let unit_address name =
  match String.index_opt name '@' with
  | None -> None
  | Some i -> Some (String.sub name (i + 1) (String.length name - i - 1))
