(* dt-schema-style binding schemas: the model, and conversion from the
   YAML-subset documents ([Yaml_lite]) that mirror dt-schema's file format
   (cf. Listing 5 of the paper).

   The supported fragment covers what the paper's constraints use: const and
   enum values, item-count bounds (minItems/maxItems), the array-stride check
   (multipleOf — dt-schema expresses it through nested items; we keep the
   flattened form), type tags, required properties, and — the paper's
   extension — required child nodes. *)

type item_type = Ty_string | Ty_cells | Ty_bytes | Ty_flag

type prop_schema = {
  const_string : string option;
  const_cells : int64 list option;
  enum_values : string list; (* [] = unconstrained *)
  min_items : int option;
  max_items : int option;
  multiple_of : int option;  (* cell-count divisibility, e.g. #addr+#size cells *)
  item_type : item_type option;
  minimum : int64 option;    (* bounds on the first cell value, e.g. a *)
  maximum : int64 option;    (* manufacturer-given clock-frequency range *)
}

let empty_prop_schema =
  {
    const_string = None;
    const_cells = None;
    enum_values = [];
    min_items = None;
    max_items = None;
    multiple_of = None;
    item_type = None;
    minimum = None;
    maximum = None;
  }

type t = {
  id : string;
  description : string option;
  select_compatible : string list; (* applies when node's compatible intersects *)
  select_node_name : string option; (* or the node's base name matches *)
  properties : (string * prop_schema) list;
  required : string list;
  required_nodes : string list;
  additional_properties : bool; (* false = strict: unknown properties rejected *)
}

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

(* --- YAML conversion ---------------------------------------------------------- *)

let string_list ~what = function
  | Yaml_lite.List items ->
    List.map
      (fun item ->
        match Yaml_lite.as_string item with
        | Some s -> s
        | None -> error "%s: expected a list of strings" what)
      items
  | Yaml_lite.Str s -> [ s ]
  | _ -> error "%s: expected a list" what

let int_opt ~what = function
  | None -> None
  | Some y ->
    (match Yaml_lite.as_int y with
     | Some v -> Some (Int64.to_int v)
     | None -> error "%s: expected an integer" what)

let prop_schema_of_yaml name yaml =
  match yaml with
  | Yaml_lite.Null -> empty_prop_schema (* "reg: {}" or bare key: any value *)
  | Yaml_lite.Map _ ->
    let find k = Yaml_lite.find k yaml in
    let const_string, const_cells =
      match find "const" with
      | None -> (None, None)
      | Some (Yaml_lite.Str s) -> (Some s, None)
      | Some (Yaml_lite.Int v) -> (None, Some [ v ])
      | Some (Yaml_lite.List items) ->
        ( None,
          Some
            (List.map
               (fun i ->
                 match Yaml_lite.as_int i with
                 | Some v -> v
                 | None -> error "property %s: const list must be integers" name)
               items) )
      | Some _ -> error "property %s: unsupported const form" name
    in
    let enum_values =
      match find "enum" with
      | None -> []
      | Some y -> string_list ~what:(Printf.sprintf "property %s enum" name) y
    in
    let item_type =
      match find "type" with
      | None -> None
      | Some (Yaml_lite.Str "string") -> Some Ty_string
      | Some (Yaml_lite.Str ("cells" | "uint32-array" | "uint32")) -> Some Ty_cells
      | Some (Yaml_lite.Str ("bytes" | "uint8-array")) -> Some Ty_bytes
      | Some (Yaml_lite.Str ("flag" | "boolean")) -> Some Ty_flag
      | Some y -> error "property %s: unsupported type %a" name Yaml_lite.pp y
    in
    let int64_opt ~what = function
      | None -> None
      | Some y ->
        (match Yaml_lite.as_int y with
         | Some v -> Some v
         | None -> error "%s: expected an integer" what)
    in
    {
      const_string;
      const_cells;
      enum_values;
      min_items = int_opt ~what:(name ^ " minItems") (find "minItems");
      max_items = int_opt ~what:(name ^ " maxItems") (find "maxItems");
      multiple_of = int_opt ~what:(name ^ " multipleOf") (find "multipleOf");
      item_type;
      minimum = int64_opt ~what:(name ^ " minimum") (find "minimum");
      maximum = int64_opt ~what:(name ^ " maximum") (find "maximum");
    }
  | _ -> error "property %s: expected a map of constraints" name

let of_yaml yaml =
  let find k = Yaml_lite.find k yaml in
  let id =
    match Option.bind (find "$id") Yaml_lite.as_string with
    | Some s -> s
    | None -> error "schema is missing $id"
  in
  let description = Option.bind (find "description") Yaml_lite.as_string in
  let select_compatible, select_node_name =
    match find "select" with
    | None -> ([], None)
    | Some sel ->
      let compat =
        match Yaml_lite.find "compatible" sel with
        | None -> []
        | Some y -> string_list ~what:"select compatible" y
      in
      let node_name = Option.bind (Yaml_lite.find "node-name" sel) Yaml_lite.as_string in
      (compat, node_name)
  in
  let properties =
    match find "properties" with
    | None -> []
    | Some (Yaml_lite.Map entries) ->
      List.map (fun (name, y) -> (name, prop_schema_of_yaml name y)) entries
    | Some _ -> error "properties: expected a map"
  in
  let required =
    match find "required" with
    | None -> []
    | Some y -> string_list ~what:"required" y
  in
  let required_nodes =
    match find "requiredNodes" with
    | None -> []
    | Some y -> string_list ~what:"requiredNodes" y
  in
  let additional_properties =
    match find "additionalProperties" with
    | Some (Yaml_lite.Bool b) -> b
    | Some _ -> error "additionalProperties: expected a boolean"
    | None -> true
  in
  { id; description; select_compatible; select_node_name; properties; required;
    required_nodes; additional_properties }

let of_string src = of_yaml (Yaml_lite.parse src)

(* Property names a strict schema tolerates: its own declarations plus the
   standard DT bookkeeping properties every node may carry. *)
let standard_properties =
  [ "#address-cells"; "#size-cells"; "#interrupt-cells"; "phandle"; "status"; "ranges";
    "compatible"; "interrupt-parent"; "device_type" ]

let known_properties t =
  List.map fst t.properties @ t.required @ standard_properties

(* --- selection ------------------------------------------------------------------ *)

(* Does this schema apply to the given tree node? *)
let selects t (node : Devicetree.Tree.t) =
  let by_compatible =
    t.select_compatible <> []
    &&
    match Devicetree.Tree.get_prop node "compatible" with
    | None -> false
    | Some p ->
      let compats = Devicetree.Tree.prop_strings p in
      List.exists (fun c -> List.mem c t.select_compatible) compats
  in
  let by_name =
    match t.select_node_name with
    | None -> false
    | Some n -> String.equal n (Devicetree.Ast.base_name node.Devicetree.Tree.name)
  in
  by_compatible || by_name

(* Schemas applicable to each node of a tree: (path, node, schemas). *)
let applicable schemas tree =
  Devicetree.Tree.fold
    (fun path node acc ->
      match List.filter (fun s -> selects s node) schemas with
      | [] -> acc
      | applicable -> (path, node, applicable) :: acc)
    tree []
  |> List.rev

(* --- item counting ---------------------------------------------------------------- *)

(* Number of "items" in a property value: strings and byte blocks count one
   each; cell groups count as one item per group, except when the schema
   gives [multiple_of], in which case items are sub-arrays of that many
   cells (the dt-schema reading used in the paper: reg with 8 cells and
   sub-array size 4 has 2 items). *)
let item_count prop_schema (p : Devicetree.Tree.prop) =
  let cells = List.length (Devicetree.Tree.prop_cells p) in
  let groups =
    List.length
      (List.filter (function Devicetree.Ast.Cells _ -> true | _ -> false) p.p_value)
  in
  let non_cell_pieces =
    List.length
      (List.filter (function Devicetree.Ast.Cells _ -> false | _ -> true) p.p_value)
  in
  match prop_schema.multiple_of with
  | Some m when m > 0 && cells mod m = 0 -> (cells / m) + non_cell_pieces
  | Some _ | None -> groups + non_cell_pieces
