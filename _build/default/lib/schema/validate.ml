(* Direct (non-SMT) schema validation — the dt-schema baseline the paper
   compares against.  Walks the tree, finds applicable schemas, and checks
   each constraint procedurally.  This checker is intentionally limited to
   what dt-schema can express: per-property structural constraints.  It
   cannot see relations *between* values (address overlaps etc.); that is
   the semantic checker's job (lib/llhsc). *)

module T = Devicetree.Tree

type violation = {
  node_path : string;
  rule : string;    (* stable rule id, e.g. "memory:required:reg" *)
  message : string;
  loc : Devicetree.Loc.t;
}

let violation ~node_path ~rule ~loc fmt =
  Fmt.kstr (fun message -> { node_path; rule; message; loc }) fmt

let pp_violation ppf v =
  Fmt.pf ppf "%s: [%s] %s (%a)" v.node_path v.rule v.message Devicetree.Loc.pp v.loc

(* --- per-property checks ----------------------------------------------------------- *)

let check_prop ~node_path ~schema_id (name, (ps : Binding.prop_schema)) (node : T.t) =
  match T.get_prop node name with
  | None -> [] (* absence is handled by [required] *)
  | Some p ->
    let loc = p.T.p_loc in
    let errs = ref [] in
    let push v = errs := v :: !errs in
    (match ps.const_string with
     | Some expected -> begin
       match T.prop_string p with
       | Some actual when String.equal actual expected -> ()
       | Some actual ->
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:const:%s" schema_id name) ~loc
              "property %s is %S, schema requires %S" name actual expected)
       | None ->
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:const:%s" schema_id name) ~loc
              "property %s must be the string %S" name expected)
     end
     | None -> ());
    (match ps.const_cells with
     | Some expected ->
       let actual = List.map snd (T.prop_cells p) in
       if actual <> expected then
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:const:%s" schema_id name) ~loc
              "property %s cells do not match the schema constant" name)
     | None -> ());
    (if ps.enum_values <> [] then
       match T.prop_string p with
       | Some actual when List.mem actual ps.enum_values -> ()
       | Some actual ->
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:enum:%s" schema_id name) ~loc
              "property %s is %S, not one of {%s}" name actual
              (String.concat ", " ps.enum_values))
       | None ->
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:enum:%s" schema_id name) ~loc
              "property %s must be one of {%s}" name (String.concat ", " ps.enum_values)));
    (match ps.item_type with
     | Some Binding.Ty_string ->
       if T.prop_strings p = [] then
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:type:%s" schema_id name) ~loc
              "property %s must be a string" name)
     | Some Binding.Ty_cells ->
       if T.prop_cells p = [] then
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:type:%s" schema_id name) ~loc
              "property %s must be a cell array" name)
     | Some Binding.Ty_bytes ->
       if not (List.exists (function Devicetree.Ast.Bytes _ -> true | _ -> false) p.p_value)
       then
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:type:%s" schema_id name) ~loc
              "property %s must be a byte array" name)
     | Some Binding.Ty_flag ->
       if p.p_value <> [] then
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:type:%s" schema_id name) ~loc
              "property %s must be an empty (flag) property" name)
     | None -> ());
    (match ps.multiple_of with
     | Some m when m > 0 ->
       let cells = List.length (T.prop_cells p) in
       if cells mod m <> 0 then
         push
           (violation ~node_path ~rule:(Printf.sprintf "%s:multipleOf:%s" schema_id name) ~loc
              "property %s has %d cells, not a multiple of %d" name cells m)
     | Some _ | None -> ());
    (* Value-range bounds on the first cell (manufacturer-given ranges,
       e.g. clock-frequency). *)
    let first_cell = match T.prop_cells p with (_, v) :: _ -> Some v | [] -> None in
    (match (ps.minimum, first_cell) with
     | Some min, Some v when Int64.unsigned_compare v min < 0 ->
       push
         (violation ~node_path ~rule:(Printf.sprintf "%s:minimum:%s" schema_id name) ~loc
            "property %s is %Lu, below the minimum %Lu" name v min)
     | Some min, None ->
       push
         (violation ~node_path ~rule:(Printf.sprintf "%s:minimum:%s" schema_id name) ~loc
            "property %s must carry a cell value (minimum %Lu)" name min)
     | _ -> ());
    (match (ps.maximum, first_cell) with
     | Some max, Some v when Int64.unsigned_compare v max > 0 ->
       push
         (violation ~node_path ~rule:(Printf.sprintf "%s:maximum:%s" schema_id name) ~loc
            "property %s is %Lu, above the maximum %Lu" name v max)
     | Some max, None ->
       push
         (violation ~node_path ~rule:(Printf.sprintf "%s:maximum:%s" schema_id name) ~loc
            "property %s must carry a cell value (maximum %Lu)" name max)
     | _ -> ());
    let items = Binding.item_count ps p in
    (match ps.min_items with
     | Some n when items < n ->
       push
         (violation ~node_path ~rule:(Printf.sprintf "%s:minItems:%s" schema_id name) ~loc
            "property %s has %d items, schema requires at least %d" name items n)
     | Some _ | None -> ());
    (match ps.max_items with
     | Some n when items > n ->
       push
         (violation ~node_path ~rule:(Printf.sprintf "%s:maxItems:%s" schema_id name) ~loc
            "property %s has %d items, schema allows at most %d" name items n)
     | Some _ | None -> ());
    List.rev !errs

(* --- per-node checks ----------------------------------------------------------------- *)

let check_node ~node_path (schema : Binding.t) (node : T.t) =
  let prop_violations =
    List.concat_map
      (fun entry -> check_prop ~node_path ~schema_id:schema.id entry node)
      schema.properties
  in
  let required_violations =
    List.filter_map
      (fun name ->
        if T.has_prop node name then None
        else
          Some
            (violation ~node_path
               ~rule:(Printf.sprintf "%s:required:%s" schema.id name)
               ~loc:node.T.loc "required property %s is missing" name))
      schema.required
  in
  let required_node_violations =
    List.filter_map
      (fun child_name ->
        let present =
          List.exists
            (fun c -> String.equal (Devicetree.Ast.base_name c.T.name) child_name)
            node.T.children
        in
        if present then None
        else
          Some
            (violation ~node_path
               ~rule:(Printf.sprintf "%s:requiredNode:%s" schema.id child_name)
               ~loc:node.T.loc "required child node %s is missing" child_name))
      schema.required_nodes
  in
  let additional_violations =
    if schema.additional_properties then []
    else
      let known = Binding.known_properties schema in
      List.filter_map
        (fun (p : T.prop) ->
          if List.mem p.T.p_name known then None
          else
            Some
              (violation ~node_path
                 ~rule:(Printf.sprintf "%s:additionalProperties:%s" schema.id p.T.p_name)
                 ~loc:p.T.p_loc "property %s is not allowed by the (strict) schema" p.T.p_name))
        node.T.props
  in
  prop_violations @ required_violations @ required_node_violations @ additional_violations

(* Validate a whole tree against a schema set. *)
let check schemas tree =
  List.concat_map
    (fun (path, node, applicable) ->
      List.concat_map (fun schema -> check_node ~node_path:path schema node) applicable)
    (Binding.applicable schemas tree)
