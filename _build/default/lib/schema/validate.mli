(** Direct (non-SMT) schema validation — the dt-schema baseline the paper
    compares against.  Intentionally limited to per-property structural
    constraints; relations between values (address overlaps, ...) are the
    semantic checker's job. *)

type violation = {
  node_path : string;
  rule : string;    (** stable id, e.g. "memory:required:reg" *)
  message : string;
  loc : Devicetree.Loc.t;
}

val pp_violation : Format.formatter -> violation -> unit

(** Check one node against one schema. *)
val check_node : node_path:string -> Binding.t -> Devicetree.Tree.t -> violation list

(** Validate a whole tree against a schema set. *)
val check : Binding.t list -> Devicetree.Tree.t -> violation list
