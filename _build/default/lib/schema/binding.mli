(** dt-schema-style binding schemas (the model and YAML conversion).

    The supported fragment covers what the paper's constraints use (Listing
    5 and §IV-B): const/enum values, item-count bounds, array stride
    (multipleOf), type tags, value ranges (minimum/maximum), required
    properties, and — the paper's extension — required child nodes. *)

type item_type = Ty_string | Ty_cells | Ty_bytes | Ty_flag

type prop_schema = {
  const_string : string option;
  const_cells : int64 list option;
  enum_values : string list;  (** [] = unconstrained *)
  min_items : int option;
  max_items : int option;
  multiple_of : int option;   (** cell-count divisibility, e.g. #addr+#size *)
  item_type : item_type option;
  minimum : int64 option;     (** lower bound on the first cell value *)
  maximum : int64 option;     (** upper bound on the first cell value *)
}

val empty_prop_schema : prop_schema

type t = {
  id : string;
  description : string option;
  select_compatible : string list; (** applies when compatible intersects *)
  select_node_name : string option; (** or the node's base name matches *)
  properties : (string * prop_schema) list;
  required : string list;
  required_nodes : string list;
  additional_properties : bool; (** false = strict: unknown properties rejected *)
}

exception Error of string

(** Convert a parsed YAML document; raises {!Error} on malformed schemas. *)
val of_yaml : Yaml_lite.t -> t

(** Parse a YAML schema from text. *)
val of_string : string -> t

(** Property names a strict schema tolerates: its declarations plus the
    standard DT bookkeeping properties. *)
val known_properties : t -> string list

(** Does this schema apply to the given node? *)
val selects : t -> Devicetree.Tree.t -> bool

(** Schemas applicable to each node of a tree, in preorder:
    (path, node, applicable schemas); nodes with none are omitted. *)
val applicable :
  t list -> Devicetree.Tree.t -> (string * Devicetree.Tree.t * t list) list

(** Number of "items" in a property value under this schema's reading:
    strings/bytes count one each; cell groups count per [multiple_of]-sized
    sub-array when given, else per [< >] group. *)
val item_count : prop_schema -> Devicetree.Tree.prop -> int
