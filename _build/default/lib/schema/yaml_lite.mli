(** A small YAML-subset parser, sufficient for dt-schema-style binding
    schemas: block maps, block lists, flow lists, quoted/plain scalars,
    integers (incl. 0x...), booleans and comments.  No anchors, multi-line
    scalars, or multi-document streams. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Str of string
  | List of t list
  | Map of (string * t) list

exception Error of string * int (** message, 1-based line *)

val parse : string -> t

(** {1 Accessors} *)

val find : string -> t -> t option
val as_list : t -> t list option

(** [as_string] also stringifies [Int]s. *)
val as_string : t -> string option

val as_int : t -> int64 option
val pp : Format.formatter -> t -> unit
