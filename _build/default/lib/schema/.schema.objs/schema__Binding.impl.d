lib/schema/binding.ml: Devicetree Fmt Int64 List Option Printf String Yaml_lite
