lib/schema/compile.mli: Binding Devicetree Smt
