lib/schema/binding.mli: Devicetree Yaml_lite
