lib/schema/yaml_lite.ml: Buffer Fmt Int64 List String
