lib/schema/compile.ml: Binding Devicetree List Option Printf Smt String
