lib/schema/validate.mli: Binding Devicetree Format
