lib/schema/validate.ml: Binding Devicetree Fmt Int64 List Printf String
