lib/schema/yaml_lite.mli: Format
