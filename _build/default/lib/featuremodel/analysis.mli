(** Automated analysis of feature models via the SAT solver (§II-B):
    translation to propositional logic, void detection, product validity,
    enumeration/counting, dead/core features.

    Products are identified by their {e concrete} feature sets. *)

type t

exception Error of string

(** Propositional semantics of a model, given an atom lookup (used directly
    by {!Multi} for per-VM instantiation). *)
val formula : Model.t -> (string -> int) -> Sat.Formula.t

(** Encode a model into a fresh solver; the returned environment supports
    any number of subsequent queries. *)
val encode : Model.t -> t

(** No valid configuration at all? *)
val is_void : t -> bool

(** [is_valid_product t selected] — is there a configuration whose concrete
    features are exactly [selected]?  Raises {!Error} on unknown names. *)
val is_valid_product : t -> string list -> bool

(** All products (sorted concrete feature sets).  Enumeration does not
    perturb later queries on the same environment. *)
val enumerate_products : ?limit:int -> t -> string list list

val count_products : ?limit:int -> t -> int

(** Features not selectable in any valid configuration. *)
val dead_features : t -> string list

(** Features present in every valid configuration. *)
val core_features : t -> string list

(** Is a partial selection extensible to a full valid configuration? *)
val is_consistent_selection : t -> selected:string list -> deselected:string list -> bool

(** Optional features forced by their parent anyway ("false optional"). *)
val false_optional_features : t -> string list

(** Cross-tree constraints implied by the rest of the model. *)
val redundant_constraints : t -> Bexpr.t list
