(* Boolean expressions over feature names: the language of cross-tree
   constraints ("composition rules" in FODA terms). *)

type t =
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t

let rec vars = function
  | Var v -> [ v ]
  | Not e -> vars e
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> vars a @ vars b

let rec eval env = function
  | Var v -> env v
  | Not e -> not (eval env e)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Implies (a, b) -> (not (eval env a)) || eval env b
  | Iff (a, b) -> eval env a = eval env b

(* Lower onto SAT formulas given a variable mapping. *)
let rec to_formula lookup = function
  | Var v -> Sat.Formula.atom (lookup v)
  | Not e -> Sat.Formula.neg (to_formula lookup e)
  | And (a, b) -> Sat.Formula.conj [ to_formula lookup a; to_formula lookup b ]
  | Or (a, b) -> Sat.Formula.disj [ to_formula lookup a; to_formula lookup b ]
  | Implies (a, b) -> Sat.Formula.implies (to_formula lookup a) (to_formula lookup b)
  | Iff (a, b) -> Sat.Formula.iff (to_formula lookup a) (to_formula lookup b)

let rec pp ppf = function
  | Var v -> Fmt.string ppf v
  | Not e -> Fmt.pf ppf "!%a" pp_atom e
  | And (a, b) -> Fmt.pf ppf "%a & %a" pp_atom a pp_atom b
  | Or (a, b) -> Fmt.pf ppf "%a | %a" pp_atom a pp_atom b
  | Implies (a, b) -> Fmt.pf ppf "%a => %a" pp_atom a pp_atom b
  | Iff (a, b) -> Fmt.pf ppf "%a <=> %a" pp_atom a pp_atom b

and pp_atom ppf = function
  | Var v -> Fmt.string ppf v
  | e -> Fmt.pf ppf "(%a)" pp e
