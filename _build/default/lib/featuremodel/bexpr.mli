(** Boolean expressions over feature names: the language of cross-tree
    constraints (composition rules). *)

type t =
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t

(** Feature names occurring in the expression (with duplicates). *)
val vars : t -> string list

(** Evaluate under a truth assignment of features. *)
val eval : (string -> bool) -> t -> bool

(** Lower onto SAT formulas given a feature-to-variable mapping. *)
val to_formula : (string -> int) -> t -> Sat.Formula.t

val pp : Format.formatter -> t -> unit
