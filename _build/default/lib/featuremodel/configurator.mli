(** Stepwise, propagation-complete configuration — the mechanism behind the
    paper's greyed-out features (Fig. 1) and the §IV-A guarantee that an
    invalid feature set can never be selected.

    After each decision, every undecided feature is classified as [Free],
    [Forced] (in every remaining valid configuration) or [Forbidden] (in
    none); invalid decisions are rejected outright. *)

type status = Selected | Deselected | Forced | Forbidden | Free

type t

exception Error of string

(** Raises {!Error} on a void model. *)
val create : Model.t -> t

(** Classify one feature under the current decisions. *)
val status : t -> string -> status

(** [decide t name value] — select ([true]) or deselect a feature.  Raises
    {!Error} if the feature is already decided or the decision would
    violate the model. *)
val decide : t -> string -> bool -> unit

(** Revert the most recent decision; returns the feature name. *)
val undo : t -> string

(** Status of every feature, in model (preorder) order. *)
val state : t -> (string * status) list

(** Every concrete feature decided or implied? *)
val is_complete : t -> bool

(** The unique product of a complete configuration.  Raises {!Error}
    otherwise. *)
val product : t -> string list

val pp_status : Format.formatter -> status -> unit
