(* Textual syntax for feature models, used by the CLI and tests:

     feature CustomSBC {
         mandatory memory;
         mandatory abstract cpus xor {
             cpu@0;
             cpu@1;
         }
         abstract uarts or {
             uart@20000000;
             uart@30000000;
         }
     }
     constraint veth0 => cpu@0;
     constraint veth1 => cpu@1;

   Children default to optional; groups default to AND.  Feature names may
   contain the same liberal character set as DT node names. *)

exception Error of string * int (* message, line *)

let error line fmt = Fmt.kstr (fun msg -> raise (Error (msg, line))) fmt

type token =
  | WORD of string
  | LBRACE
  | RBRACE
  | SEMI
  | LPAREN
  | RPAREN
  | NOT
  | AND
  | OR_OP
  | IMPLIES
  | IFF
  | EOF

let is_word_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '@' | '_' | '-' | '.' | ',' | '+' | '#' -> true
  | _ -> false

let tokenize src =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    (match src.[!i] with
     | '\n' ->
       incr line;
       incr i
     | ' ' | '\t' | '\r' -> incr i
     | '/' when !i + 1 < n && src.[!i + 1] = '/' ->
       while !i < n && src.[!i] <> '\n' do
         incr i
       done
     | '{' -> push LBRACE; incr i
     | '}' -> push RBRACE; incr i
     | ';' -> push SEMI; incr i
     | '(' -> push LPAREN; incr i
     | ')' -> push RPAREN; incr i
     | '!' -> push NOT; incr i
     | '&' -> push AND; incr i; if !i < n && src.[!i] = '&' then incr i
     | '|' -> push OR_OP; incr i; if !i < n && src.[!i] = '|' then incr i
     | '=' when !i + 1 < n && src.[!i + 1] = '>' ->
       push IMPLIES;
       i := !i + 2
     | '<' when !i + 2 < n && src.[!i + 1] = '=' && src.[!i + 2] = '>' ->
       push IFF;
       i := !i + 3
     | c when is_word_char c ->
       let start = !i in
       while !i < n && is_word_char src.[!i] do
         incr i
       done;
       push (WORD (String.sub src start (!i - start)))
     | c -> error !line "unexpected character %C" c)
  done;
  push EOF;
  Array.of_list (List.rev !toks)

type state = {
  toks : (token * int) array;
  mutable pos : int;
}

let peek st = fst st.toks.(st.pos)
let peek_line st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st else error (peek_line st) "expected %s" what

let word st what =
  match peek st with
  | WORD w ->
    advance st;
    w
  | _ -> error (peek_line st) "expected %s" what

(* --- constraint expressions (precedence: <=> lowest, then =>, |, &, !) ---- *)

let rec parse_iff st =
  let a = parse_implies st in
  if peek st = IFF then begin
    advance st;
    Bexpr.Iff (a, parse_iff st)
  end
  else a

and parse_implies st =
  let a = parse_or st in
  if peek st = IMPLIES then begin
    advance st;
    Bexpr.Implies (a, parse_implies st)
  end
  else a

and parse_or st =
  let a = ref (parse_and st) in
  while peek st = OR_OP do
    advance st;
    a := Bexpr.Or (!a, parse_and st)
  done;
  !a

and parse_and st =
  let a = ref (parse_not st) in
  while peek st = AND do
    advance st;
    a := Bexpr.And (!a, parse_not st)
  done;
  !a

and parse_not st =
  match peek st with
  | NOT ->
    advance st;
    Bexpr.Not (parse_not st)
  | LPAREN ->
    advance st;
    let e = parse_iff st in
    expect st RPAREN "')'";
    e
  | WORD w ->
    advance st;
    Bexpr.Var w
  | _ -> error (peek_line st) "expected constraint expression"

(* --- features ---------------------------------------------------------------- *)

let rec parse_feature st ~mandatory ~abstract =
  let mandatory = ref mandatory and abstract = ref abstract in
  let continue = ref true in
  while !continue do
    match peek st with
    | WORD "mandatory" ->
      advance st;
      mandatory := true
    | WORD "optional" ->
      advance st;
      mandatory := false
    | WORD "abstract" ->
      advance st;
      abstract := true
    | _ -> continue := false
  done;
  let name = word st "feature name" in
  let group =
    match peek st with
    | WORD "or" ->
      advance st;
      Model.Or_group
    | WORD "xor" ->
      advance st;
      Model.Xor_group
    | WORD "and" ->
      advance st;
      Model.And_group
    | _ -> Model.And_group
  in
  let children =
    if peek st = LBRACE then begin
      advance st;
      let kids = ref [] in
      while peek st <> RBRACE do
        let kid = parse_feature st ~mandatory:false ~abstract:false in
        (* Child declarations end with ';' unless they have a block. *)
        if peek st = SEMI then advance st;
        kids := kid :: !kids
      done;
      expect st RBRACE "'}'";
      List.rev !kids
    end
    else []
  in
  {
    Model.name;
    abstract = !abstract;
    mandatory = !mandatory;
    group;
    children;
  }

let parse src =
  let st = { toks = tokenize src; pos = 0 } in
  expect st (WORD "feature") "'feature'";
  let root = parse_feature st ~mandatory:true ~abstract:false in
  let constraints = ref [] in
  while peek st <> EOF do
    match peek st with
    | WORD "constraint" ->
      advance st;
      let e = parse_iff st in
      expect st SEMI "';'";
      constraints := e :: !constraints
    | SEMI -> advance st
    | _ -> error (peek_line st) "expected 'constraint' or end of input"
  done;
  Model.make ~constraints:(List.rev !constraints) root
