(* Feature models: a tree of features with AND/OR/XOR group decomposition,
   mandatory/optional/abstract markers, and cross-tree constraints
   (Section II-B of the paper). *)

type group = And_group | Or_group | Xor_group

type feature = {
  name : string;
  abstract : bool;
  mandatory : bool; (* relative to the parent; ignored for the root *)
  group : group;    (* decomposition semantics of this feature's children *)
  children : feature list;
}

type t = {
  root : feature;
  constraints : Bexpr.t list;
}

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

let feature ?(abstract = false) ?(mandatory = false) ?(group = And_group) ?(children = [])
    name =
  { name; abstract; mandatory; group; children }

let make ?(constraints = []) root =
  (* Check feature-name uniqueness up front. *)
  let rec collect f acc = List.fold_left (fun acc c -> collect c acc) (f.name :: acc) f.children in
  let names = collect root [] in
  let dupes =
    List.filter (fun n -> List.length (List.filter (String.equal n) names) > 1) names
  in
  (match dupes with
   | [] -> ()
   | d :: _ -> error "duplicate feature name %s" d);
  (* Constraints must refer to existing features. *)
  List.iter
    (fun c ->
      List.iter
        (fun v -> if not (List.mem v names) then error "constraint mentions unknown feature %s" v)
        (Bexpr.vars c))
    constraints;
  { root; constraints }

let rec find_feature f name =
  if String.equal f.name name then Some f
  else List.find_map (fun c -> find_feature c name) f.children

let mem t name = find_feature t.root name <> None

(* All features in preorder. *)
let all_features t =
  let rec go f acc = List.fold_left (fun acc c -> go c acc) (acc @ [ f ]) f.children in
  go t.root []

let feature_names t = List.map (fun f -> f.name) (all_features t)

(* Concrete (non-abstract) features define product identity. *)
let concrete_names t =
  List.filter_map (fun f -> if f.abstract then None else Some f.name) (all_features t)

let pp_group ppf = function
  | And_group -> Fmt.string ppf "and"
  | Or_group -> Fmt.string ppf "or"
  | Xor_group -> Fmt.string ppf "xor"

let rec pp_feature ppf f =
  Fmt.pf ppf "@[<v 2>%s%s%s%s {%a@]@,}"
    (if f.abstract then "abstract " else "")
    f.name
    (if f.mandatory then " (mandatory)" else "")
    (match f.group with And_group -> "" | Or_group -> " or" | Xor_group -> " xor")
    Fmt.(list ~sep:nop (fun ppf c -> Fmt.pf ppf "@,%a" pp_feature c))
    f.children

let pp ppf t =
  pp_feature ppf t.root;
  List.iter (fun c -> Fmt.pf ppf "@,constraint %a;" Bexpr.pp c) t.constraints
