(* Stepwise, propagation-complete configuration (the behaviour behind the
   paper's greyed-out features in Fig. 1 and the guarantee of §IV-A that "a
   set of features that violates the constraints is never selected by the
   user").

   After every user decision the configurator computes, for each undecided
   feature, whether it is *forced* (selected in every remaining valid
   configuration) or *forbidden* (selected in none) — both by SAT queries
   under the current decisions — so the UI can grey it out.  Decisions that
   would make the configuration invalid are rejected. *)

type status =
  | Selected   (* decided by the user *)
  | Deselected (* decided by the user *)
  | Forced     (* implied by the decisions: must be selected *)
  | Forbidden  (* implied by the decisions: cannot be selected *)
  | Free       (* still open *)

type t = {
  env : Analysis.t;
  model : Model.t;
  mutable decisions : (string * bool) list; (* newest first *)
}

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

let create model =
  let env = Analysis.encode model in
  if Analysis.is_void env then error "feature model is void";
  { env; model; decisions = [] }

let decided t name = List.assoc_opt name t.decisions

let selected_of t = List.filter_map (fun (n, v) -> if v then Some n else None) t.decisions
let deselected_of t = List.filter_map (fun (n, v) -> if v then None else Some n) t.decisions

let consistent_with t ~extra_selected ~extra_deselected =
  Analysis.is_consistent_selection t.env
    ~selected:(extra_selected @ selected_of t)
    ~deselected:(extra_deselected @ deselected_of t)

let status t name =
  if not (Model.mem t.model name) then error "unknown feature %s" name;
  match decided t name with
  | Some true -> Selected
  | Some false -> Deselected
  | None ->
    let can_select = consistent_with t ~extra_selected:[ name ] ~extra_deselected:[] in
    let can_deselect = consistent_with t ~extra_selected:[] ~extra_deselected:[ name ] in
    (match (can_select, can_deselect) with
     | true, true -> Free
     | true, false -> Forced
     | false, true -> Forbidden
     | false, false ->
       (* Cannot happen while the decision set is consistent. *)
       assert false)

(* Decide a feature; rejected (with an [Error]) when it contradicts the
   model under the current decisions. *)
let decide t name value =
  if not (Model.mem t.model name) then error "unknown feature %s" name;
  (match decided t name with
   | Some v when v = value -> ()
   | Some _ -> error "feature %s already decided; undo first" name
   | None ->
     let ok =
       if value then consistent_with t ~extra_selected:[ name ] ~extra_deselected:[]
       else consistent_with t ~extra_selected:[] ~extra_deselected:[ name ]
     in
     if not ok then
       error "%s %s would violate the feature model" (if value then "selecting" else "deselecting")
         name;
     t.decisions <- (name, value) :: t.decisions)

let undo t =
  match t.decisions with
  | [] -> error "nothing to undo"
  | (name, _) :: rest ->
    t.decisions <- rest;
    name

(* Current state of every feature, in model order. *)
let state t = List.map (fun f -> (f.Model.name, status t f.Model.name)) (Model.all_features t.model)

(* The configuration is complete when every concrete feature is decided or
   implied; the resulting product is then unique. *)
let is_complete t =
  List.for_all
    (fun name -> match status t name with Free -> false | _ -> true)
    (Model.concrete_names t.model)

(* The product implied by a complete configuration. *)
let product t =
  if not (is_complete t) then error "configuration is not complete";
  List.filter
    (fun name -> match status t name with Selected | Forced -> true | _ -> false)
    (Model.concrete_names t.model)

let pp_status ppf = function
  | Selected -> Fmt.string ppf "selected"
  | Deselected -> Fmt.string ppf "deselected"
  | Forced -> Fmt.string ppf "forced"
  | Forbidden -> Fmt.string ppf "forbidden"
  | Free -> Fmt.string ppf "free"
