(** Textual syntax for feature models:

    {v
    feature abstract CustomSBC {
        mandatory memory;
        mandatory abstract cpus xor { cpu@0; cpu@1; }
    }
    constraint veth0 => cpu@0;
    v}

    Children default to optional, groups to AND.  Constraint expressions use
    [!], [&], [|], [=>], [<=>] with C-like precedence. *)

exception Error of string * int (** message, 1-based line *)

(** Parse a feature model.  Raises {!Error} on syntax errors and
    [Model.Error] on semantic ones (duplicate names, unknown features). *)
val parse : string -> Model.t
