(** Feature models: a tree of features with AND/OR/XOR group decomposition,
    mandatory/optional/abstract markers, and cross-tree constraints
    (§II-B of the paper). *)

type group = And_group | Or_group | Xor_group

type feature = {
  name : string;
  abstract : bool;  (** abstract features do not distinguish products *)
  mandatory : bool; (** relative to the parent; ignored for the root *)
  group : group;    (** decomposition semantics of this feature's children *)
  children : feature list;
}

type t = {
  root : feature;
  constraints : Bexpr.t list;
}

exception Error of string

(** Construct a single feature (defaults: concrete, optional, AND, no
    children). *)
val feature :
  ?abstract:bool ->
  ?mandatory:bool ->
  ?group:group ->
  ?children:feature list ->
  string ->
  feature

(** Build a model, checking name uniqueness and that constraints refer to
    declared features.  Raises {!Error} otherwise. *)
val make : ?constraints:Bexpr.t list -> feature -> t

val find_feature : feature -> string -> feature option
val mem : t -> string -> bool

(** All features in preorder. *)
val all_features : t -> feature list

val feature_names : t -> string list

(** Concrete (non-abstract) feature names; these define product identity. *)
val concrete_names : t -> string list

val pp_group : Format.formatter -> group -> unit
val pp_feature : Format.formatter -> feature -> unit
val pp : Format.formatter -> t -> unit
