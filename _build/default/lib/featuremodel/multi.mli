(** Multi-product feature models for static partitioning (§IV-A): the base
    model instantiated once per VM, with designated resource groups
    {e exclusive} — at most one member per VM (the base model's XOR) and
    each member in at most one VM. *)

type t

exception Error of string

(** [encode ?exclusive base ~vms] builds the k-VM model.  Each name in
    [exclusive] must be a feature of [base] with children (the resources
    being partitioned).  Raises {!Error} otherwise or when [vms < 1]. *)
val encode : ?exclusive:string list -> Model.t -> vms:int -> t

(** Satisfiability under per-VM pins; on success returns each VM's complete
    concrete product. *)
val solve :
  ?selected:(int * string) list ->
  ?deselected:(int * string) list ->
  t ->
  [ `Sat of (int * string list) list | `Unsat ]

val is_allocatable : t -> bool

(** Union of the per-VM products — the platform product (§III-A). *)
val platform_features : (int * string list) list -> string list

(** Largest VM count for which the model stays satisfiable (0 if even one
    VM does not fit); the paper notes m = 2 for the 2-CPU example. *)
val max_vms : ?bound:int -> ?exclusive:string list -> Model.t -> int
