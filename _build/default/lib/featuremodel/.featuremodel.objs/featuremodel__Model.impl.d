lib/featuremodel/model.ml: Bexpr Fmt List String
