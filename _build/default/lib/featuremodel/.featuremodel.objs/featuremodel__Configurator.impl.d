lib/featuremodel/configurator.ml: Analysis Fmt List Model
