lib/featuremodel/analysis.mli: Bexpr Model Sat
