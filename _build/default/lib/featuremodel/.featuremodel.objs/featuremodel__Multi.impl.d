lib/featuremodel/multi.ml: Analysis Fmt List Model Sat String
