lib/featuremodel/parse.ml: Array Bexpr Fmt List Model String
