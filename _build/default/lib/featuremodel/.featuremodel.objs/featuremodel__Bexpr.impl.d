lib/featuremodel/bexpr.ml: Fmt Sat
