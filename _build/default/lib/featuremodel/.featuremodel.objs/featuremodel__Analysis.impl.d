lib/featuremodel/analysis.ml: Bexpr Fmt List Model Option Sat String
