lib/featuremodel/bexpr.mli: Format Sat
