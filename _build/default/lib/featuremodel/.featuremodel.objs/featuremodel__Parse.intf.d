lib/featuremodel/parse.mli: Model
