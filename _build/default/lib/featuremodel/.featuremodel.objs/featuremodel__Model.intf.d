lib/featuremodel/model.mli: Bexpr Format
