lib/featuremodel/multi.mli: Model
