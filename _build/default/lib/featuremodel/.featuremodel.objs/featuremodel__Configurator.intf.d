lib/featuremodel/configurator.mli: Format Model
