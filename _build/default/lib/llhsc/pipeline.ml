(* The end-to-end llhsc workflow (Fig. 2):

      feature model + per-VM requests
        └─ alloc checker (§IV-A) ─ completed products, platform product
      core DTS + delta modules
        └─ delta application per product (§III-B)
      generated DTSs
        └─ syntactic checker (§IV-B) + semantic checker (§IV-C)
      artifacts: checked VM DTSs + platform DTS (+ hypervisor configs,
      rendered by lib/bao from these trees)

   All SMT-based checks share one incremental solver instance per run
   (push/pop scoped), as the paper advocates (§VI). *)

module T = Devicetree.Tree

type product = {
  name : string;            (* "vm1", "vm2", ..., "platform" *)
  features : string list;   (* the product's concrete features *)
  tree : T.t;
  findings : Report.finding list;
}

type outcome = {
  products : product list;
  alloc_findings : Report.finding list;
  partition_findings : Report.finding list; (* cross-VM checks *)
  delta_orders : (string * string list) list; (* product -> application order *)
}

let ok outcome =
  Report.is_clean outcome.alloc_findings
  && Report.is_clean outcome.partition_findings
  && List.for_all (fun p -> Report.is_clean p.findings) outcome.products

(* Generate and check a single product. *)
let build_product ~solver ~core ~deltas ~schemas_for ~name ~features =
  match Delta.Apply.generate ~core ~deltas ~selected:features with
  | exception Delta.Apply.Error e ->
    let finding =
      Report.finding ~checker:"delta" ~node_path:(Option.value ~default:"?" e.Delta.Apply.delta)
        ~loc:e.Delta.Apply.loc "product %s: %s" name e.Delta.Apply.message
    in
    { name; features; tree = core; findings = [ finding ] }
  | tree ->
    let schemas = schemas_for tree in
    let syntactic = Syntactic.check ~solver ~schemas ~product:name tree in
    let semantic = Semantic.check ~solver tree in
    { name; features; tree; findings = syntactic @ semantic }

(* Run the full workflow.

   [vm_requests]: per-VM feature selections (possibly partial; the alloc
   checker completes them).  The platform product is the union of the
   completed VM products, matching §III-A: "the platform DTS is the union of
   selected features in both products". *)
let run ?(exclusive = []) ~model ~core ~deltas ~schemas_for ~vm_requests () =
  let solver = Smt.Solver.create () in
  let vms = List.length vm_requests in
  let requests =
    List.mapi (fun i selected -> Alloc.request (i + 1) selected) vm_requests
  in
  match Alloc.allocate ~exclusive model ~vms ~requests with
  | Alloc.Rejected findings ->
    { products = []; alloc_findings = findings; partition_findings = []; delta_orders = [] }
  | Alloc.Allocated { vms = completed; platform } ->
    let vm_products =
      List.map
        (fun (vm, features) ->
          let name = Printf.sprintf "vm%d" vm in
          build_product ~solver ~core ~deltas ~schemas_for ~name ~features)
        completed
    in
    let platform_product =
      build_product ~solver ~core ~deltas ~schemas_for ~name:"platform" ~features:platform
    in
    let delta_orders =
      List.map
        (fun p -> (p.name, Delta.Apply.order ~selected:p.features deltas))
        (vm_products @ [ platform_product ])
    in
    let partition_findings =
      Partition.check ~solver ~platform:platform_product.tree
        (List.map (fun p -> (p.name, p.tree)) vm_products)
    in
    {
      products = vm_products @ [ platform_product ];
      alloc_findings = [];
      partition_findings;
      delta_orders;
    }

let pp_outcome ppf outcome =
  List.iter
    (fun p ->
      Fmt.pf ppf "product %s: features {%s}@." p.name (String.concat ", " p.features);
      (match List.assoc_opt p.name outcome.delta_orders with
       | Some order when order <> [] ->
         Fmt.pf ppf "  delta order: %s@." (String.concat " < " order)
       | _ -> ());
      match p.findings with
      | [] -> Fmt.pf ppf "  all checks passed@."
      | fs -> List.iter (fun f -> Fmt.pf ppf "  %a@." Report.pp f) fs)
    outcome.products;
  List.iter (fun f -> Fmt.pf ppf "%a@." Report.pp f) outcome.alloc_findings;
  (match outcome.partition_findings with
   | [] -> ()
   | fs ->
     Fmt.pf ppf "cross-VM partitioning:@.";
     List.iter (fun f -> Fmt.pf ppf "  %a@." Report.pp f) fs)
