(* Small string helpers shared by the llhsc modules. *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix
