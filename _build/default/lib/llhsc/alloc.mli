(** The resource allocation checker (§IV-A): per-VM feature requests are
    validated against the feature model and completed into full products,
    with exclusive resources (e.g. CPUs) partitioned across VMs
    automatically. *)

type request = {
  vm : int; (** 1-based VM index *)
  selected : string list;
  deselected : string list;
}

type allocation = {
  vms : (int * string list) list; (** completed per-VM products *)
  platform : string list;         (** union of the per-VM products *)
}

type result =
  | Allocated of allocation
  | Rejected of Report.finding list

val request : ?deselected:string list -> int -> string list -> request

(** [allocate ?exclusive model ~vms ~requests] — per-VM validity failures
    are attributed to the VM; cross-VM exclusivity failures to the
    platform. *)
val allocate :
  ?exclusive:string list -> Featuremodel.Model.t -> vms:int -> requests:request list -> result
