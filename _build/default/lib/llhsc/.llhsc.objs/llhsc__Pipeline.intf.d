lib/llhsc/pipeline.mli: Delta Devicetree Featuremodel Format Report Schema
