lib/llhsc/alloc.mli: Featuremodel Report
