lib/llhsc/util.mli:
