lib/llhsc/running_example.ml: Delta Devicetree Featuremodel List Printf Schema
