lib/llhsc/util.ml: String
