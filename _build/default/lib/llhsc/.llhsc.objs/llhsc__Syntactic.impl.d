lib/llhsc/syntactic.ml: Devicetree List Report Schema Smt String Util
