lib/llhsc/running_example.mli: Delta Devicetree Featuremodel Schema
