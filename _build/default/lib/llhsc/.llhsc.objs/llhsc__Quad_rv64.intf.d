lib/llhsc/quad_rv64.mli: Delta Devicetree Featuremodel Pipeline Schema
