lib/llhsc/report.ml: Devicetree Fmt List String
