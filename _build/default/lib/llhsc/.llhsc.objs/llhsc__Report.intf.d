lib/llhsc/report.mli: Devicetree Format
