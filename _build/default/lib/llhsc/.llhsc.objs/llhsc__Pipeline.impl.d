lib/llhsc/pipeline.ml: Alloc Delta Devicetree Fmt List Option Partition Printf Report Semantic Smt String Syntactic
