lib/llhsc/partition.ml: Devicetree List Report Semantic Smt
