lib/llhsc/semantic.ml: Array Devicetree Fmt Int64 List Option Printf Report Smt String
