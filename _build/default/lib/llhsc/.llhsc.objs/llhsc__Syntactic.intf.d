lib/llhsc/syntactic.mli: Devicetree Report Schema Smt
