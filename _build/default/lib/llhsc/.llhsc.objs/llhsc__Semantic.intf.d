lib/llhsc/semantic.mli: Devicetree Report Smt
