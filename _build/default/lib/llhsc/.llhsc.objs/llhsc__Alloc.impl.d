lib/llhsc/alloc.ml: Featuremodel List Printf Report String
