lib/llhsc/partition.mli: Devicetree Report Smt
