lib/llhsc/quad_rv64.ml: Delta Devicetree Featuremodel List Pipeline Schema
