(* The paper's running example, packaged as a reusable fixture: the core DTS
   (Listing 1) with the processor cluster include (Listing 2), the feature
   model (Fig. 1a), the delta modules (Listing 4), and the binding schemas
   (Listing 5 plus the uart/cpu/root schemas the checkers exercise).

   Completions relative to the paper's listings, documented in
   EXPERIMENTS.md:
   - Listing 4's d2 adds a node named "veth0@70000000" with id = <1>; the
     evident intent is a second veth for the second VM.  Moreover the paper
     places it at 0x70000000, *inside* the second memory bank
     [0x60000000, 0x80000000) -- our semantic checker flags exactly that as
     a collision (see the test suite), so the green product line relocates
     it to 0x90000000.
   - d3 gives the vEthernet container #address-cells/#size-cells and an
     identity [ranges]; without them the children's reg cells cannot be
     decoded (spec defaults are 2/1) nor mapped into the root address
     space.
   - The paper's delta set leaves the uarts' reg in 64-bit form after d3
     switches the tree to 32-bit cells; deltas d5/d6 rewrite them (our
     semantic checker flags the products as colliding at 0x0 otherwise —
     the very class of error the tool exists to catch).
   - Removal deltas (rm-cpu0 etc.) drop the device nodes of unselected features, so
     a VM's DTS contains exactly its product's devices. *)

module T = Devicetree.Tree

let cpus_dtsi =
  {|
/ {
    cpus {
        #address-cells = <0x1>;
        #size-cells = <0x0>;

        cpu@0 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            enable-method = "psci";
            reg = <0x0>;
        };

        cpu@1 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            enable-method = "psci";
            reg = <0x1>;
        };
    };
};
|}

let core_dts =
  {|
/dts-v1/;

/ {
    #address-cells = <2>;
    #size-cells = <2>;

    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000
               0x0 0x60000000 0x0 0x20000000>;
    };

    uart0: uart@20000000 {
        compatible = "ns16550a";
        reg = <0x0 0x20000000 0x0 0x1000>;
    };

    uart1: uart@30000000 {
        compatible = "ns16550a";
        reg = <0x0 0x30000000 0x0 0x1000>;
    };
};

/include/ "cpus.dtsi"
|}

let loader = function "cpus.dtsi" -> Some cpus_dtsi | _ -> None

let core_tree () = T.of_source ~loader ~file:"custom-sbc.dts" core_dts

(* Fig. 1a.  Modelling choices reproducing the paper's 12 valid products:
   cpus mandatory XOR (x2), uarts mandatory OR (x3), vEthernet optional XOR
   tied to the CPUs by the cross constraints (x2). *)
let feature_model_src =
  {|
feature abstract CustomSBC {
    mandatory memory;
    mandatory abstract cpus xor {
        cpu@0;
        cpu@1;
    }
    mandatory abstract uarts or {
        uart@20000000;
        uart@30000000;
    }
    optional abstract vEthernet xor {
        veth0;
        veth1;
    }
}
constraint veth0 => cpu@0;
constraint veth1 => cpu@1;
|}

let feature_model () = Featuremodel.Parse.parse feature_model_src

(* Listing 4, with the completions described above. *)
let deltas_src =
  {|
delta d1 after d3 when veth0 {
    adds binding vEthernet {
        veth0@80000000 {
            compatible = "veth";
            reg = <0x80000000 0x10000000>;
            id = <0>;
        };
    };
}

delta d2 after d3 when veth1 {
    adds binding vEthernet {
        veth1@90000000 {
            compatible = "veth";
            reg = <0x90000000 0x10000000>;
            id = <1>;
        };
    };
}

delta d3 when (veth0 || veth1) {
    modifies / {
        #address-cells = <1>;
        #size-cells = <1>;
        vEthernet {
            #address-cells = <1>;
            #size-cells = <1>;
            ranges;
        };
    };
}

delta d4 after d3 when (memory && (veth0 || veth1)) {
    modifies memory@40000000 {
        reg = <0x40000000 0x20000000
               0x60000000 0x20000000>;
    };
}

delta d5 after d3 when (uart@20000000 && (veth0 || veth1)) {
    modifies uart@20000000 {
        reg = <0x20000000 0x1000>;
    };
}

delta d6 after d3 when (uart@30000000 && (veth0 || veth1)) {
    modifies uart@30000000 {
        reg = <0x30000000 0x1000>;
    };
}

delta rm-cpu0 when !cpu@0 { removes cpu@0; }
delta rm-cpu1 when !cpu@1 { removes cpu@1; }
delta rm-uart0 when !uart@20000000 { removes uart@20000000; }
delta rm-uart1 when !uart@30000000 { removes uart@30000000; }
delta rm-memory when !memory { removes memory@40000000; }
|}

let deltas () = Delta.Parse.parse ~file:"custom-sbc.deltas" deltas_src

(* Additional deltas that *actually* partition the hardware per VM — the
   safety requirement of §I-A ("one processor is exclusively assigned to a
   single VM, while the main memory is partitioned between the two VMs"),
   which the paper's Listing-4 delta set leaves unrealised (both VMs keep
   both banks, cf. Listing 6).  With these, the cross-VM partition checker
   reports zero findings. *)
let partitioning_deltas_src =
  {|
delta d7 after d4 when (memory && veth0 && !veth1) {
    modifies memory@40000000 {
        reg = <0x40000000 0x20000000>;
    };
}

delta d8 after d4 when (memory && veth1 && !veth0) {
    modifies memory@40000000 {
        reg = <0x60000000 0x20000000>;
    };
}
|}

let partitioned_deltas () =
  let combined =
    deltas ()
    @ Delta.Parse.parse ~validate_refs:false ~file:"custom-sbc-partitioned.deltas"
        partitioning_deltas_src
  in
  Delta.Parse.validate combined;
  combined

(* The binding schemas.  The memory schema's reg stride follows the tree's
   root #address-cells/#size-cells, the dynamic assertion dt-schema builds
   (Section I-A); [schemas_for] instantiates it for a concrete tree. *)
let memory_schema_src ~stride =
  Printf.sprintf
    {|
$id: memory
description: Fragment of the dt-schema for the memory DT node (Listing 5)
select:
  node-name: memory
properties:
  device_type:
    const: memory
  reg:
    minItems: 1
    maxItems: 1024
    multipleOf: %d
required:
  - device_type
  - reg
|}
    stride

let uart_schema_src ~stride =
  Printf.sprintf
    {|
$id: uart
select:
  compatible: [ns16550a]
properties:
  compatible:
    const: ns16550a
  reg:
    minItems: 1
    maxItems: 1
    multipleOf: %d
required:
  - compatible
  - reg
|}
    stride

let veth_schema_src =
  {|
$id: veth
select:
  compatible: [veth]
properties:
  compatible:
    const: veth
  reg:
    minItems: 1
    maxItems: 1
    multipleOf: 2
  id:
    type: cells
required:
  - compatible
  - reg
  - id
|}

let cpu_schema_src =
  {|
$id: cpu
select:
  node-name: cpu
properties:
  device_type:
    const: cpu
  compatible:
    enum:
      - arm,cortex-a53
      - arm,cortex-a72
      - riscv
  enable-method:
    enum: [psci, spin-table]
  reg:
    minItems: 1
    maxItems: 1
required:
  - device_type
  - compatible
  - reg
|}

let root_schema_src =
  {|
$id: custom-sbc-root
description: A processing unit is a mandatory definition inside the DT
select:
  node-name: /
requiredNodes:
  - cpus
|}

let schemas_for tree =
  let stride = Devicetree.Addresses.(address_cells tree + size_cells tree) in
  List.map Schema.Binding.of_string
    [ memory_schema_src ~stride;
      uart_schema_src ~stride;
      veth_schema_src;
      cpu_schema_src;
      root_schema_src
    ]

(* Fig. 1b / Fig. 1c products. *)
let vm1_features = [ "memory"; "cpu@0"; "uart@20000000"; "uart@30000000"; "veth0" ]
let vm2_features = [ "memory"; "cpu@1"; "uart@20000000"; "uart@30000000"; "veth1" ]

(* Fully partitioned variant: each VM gets its own UART (and, through
   d7/d8, its own memory bank). *)
let vm1_partitioned_features = [ "memory"; "cpu@0"; "uart@20000000"; "veth0" ]
let vm2_partitioned_features = [ "memory"; "cpu@1"; "uart@30000000"; "veth1" ]

(* The exclusive resource group for static partitioning. *)
let exclusive = [ "cpus" ]
