(** The paper's running example as a reusable fixture: the core DTS
    (Listing 1) with the processor-cluster include (Listing 2), the feature
    model (Fig. 1a), the delta modules (Listing 4, with the completions
    documented in EXPERIMENTS.md), and the binding schemas (Listing 5 plus
    uart/veth/cpu/root schemas). *)

val cpus_dtsi : string
val core_dts : string

(** Include loader resolving "cpus.dtsi". *)
val loader : string -> string option

(** Parse the core DTS (Listing 1 + Listing 2). *)
val core_tree : unit -> Devicetree.Tree.t

val feature_model_src : string
val feature_model : unit -> Featuremodel.Model.t

val deltas_src : string
val deltas : unit -> Delta.Lang.t list

(** Extra deltas (d7/d8) that split the memory banks per VM, realising the
    partitioning requirement of §I-A that Listing 4 leaves open. *)
val partitioning_deltas_src : string

val partitioned_deltas : unit -> Delta.Lang.t list

(** Binding schemas instantiated for a tree's root cell context (the reg
    stride follows #address-cells + #size-cells, as dt-schema's dynamic
    assertion does). *)
val schemas_for : Devicetree.Tree.t -> Schema.Binding.t list

(** Fig. 1b / Fig. 1c products. *)
val vm1_features : string list

val vm2_features : string list

(** Fully partitioned variant (per-VM UART; d7/d8 give per-VM banks). *)
val vm1_partitioned_features : string list

val vm2_partitioned_features : string list

(** The exclusive resource group for static partitioning. *)
val exclusive : string list
