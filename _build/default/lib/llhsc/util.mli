(** Small string helpers shared by the llhsc modules. *)

(** Substring search. *)
val contains : string -> string -> bool

val starts_with : prefix:string -> string -> bool
