(* The resource allocation checker (§IV-A): hardware configurations are
   correct by construction with respect to the feature model.  For a
   hypervisor configuration with k VMs there are k+1 feature models: one per
   VM (all sharing the base model) plus the multi-product platform model
   where exclusive resources are partitioned across VMs.

   Given the user's per-VM feature requests, the checker either completes
   them into full per-VM products (automatic assignment of greyed-out
   features, e.g. CPUs) or reports why the allocation is impossible. *)

type request = {
  vm : int; (* 1-based VM index *)
  selected : string list;
  deselected : string list;
}

type allocation = {
  vms : (int * string list) list; (* completed per-VM products *)
  platform : string list;         (* union of the per-VM products *)
}

type result =
  | Allocated of allocation
  | Rejected of Report.finding list

let request ?(deselected = []) vm selected = { vm; selected; deselected }

let allocate ?(exclusive = []) model ~vms ~requests =
  (* Per-VM validity first, to attribute failures to a single VM. *)
  let env = Featuremodel.Analysis.encode model in
  let per_vm_findings =
    List.filter_map
      (fun r ->
        if r.vm < 1 || r.vm > vms then
          Some
            (Report.finding ~checker:"alloc" ~node_path:(Printf.sprintf "vm%d" r.vm)
               "request targets VM %d, but the configuration has %d VM(s)" r.vm vms)
        else if
          not
            (Featuremodel.Analysis.is_consistent_selection env ~selected:r.selected
               ~deselected:r.deselected)
        then
          Some
            (Report.finding ~checker:"alloc" ~node_path:(Printf.sprintf "vm%d" r.vm)
               "feature selection {%s} is invalid for the feature model"
               (String.concat ", " r.selected))
        else None)
      requests
  in
  if per_vm_findings <> [] then Rejected per_vm_findings
  else begin
    let multi = Featuremodel.Multi.encode ~exclusive model ~vms in
    let selected = List.concat_map (fun r -> List.map (fun f -> (r.vm, f)) r.selected) requests in
    let deselected =
      List.concat_map (fun r -> List.map (fun f -> (r.vm, f)) r.deselected) requests
    in
    match Featuremodel.Multi.solve ~selected ~deselected multi with
    | `Sat products ->
      Allocated { vms = products; platform = Featuremodel.Multi.platform_features products }
    | `Unsat ->
      Rejected
        [ Report.finding ~checker:"alloc" ~node_path:"platform"
            "no allocation of exclusive resources {%s} satisfies all %d VM requests"
            (String.concat ", " exclusive) vms
        ]
  end
