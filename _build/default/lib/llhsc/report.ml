(* Unified findings produced by the llhsc checkers.  Every finding carries
   enough context to trace it back to the DTS node (and, through the
   pipeline, to the delta module) that caused it. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  checker : string; (* "alloc" | "syntactic" | "semantic" *)
  node_path : string;
  message : string;
  loc : Devicetree.Loc.t;
  core : string list; (* unsat-core rule names, when the checker is SMT-based *)
}

let finding ?(severity = Error) ?(core = []) ?(loc = Devicetree.Loc.dummy) ~checker ~node_path
    fmt =
  Fmt.kstr (fun message -> { severity; checker; node_path; message; loc; core }) fmt

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let pp ppf f =
  Fmt.pf ppf "[%a] %s: %s: %s" pp_severity f.severity f.checker f.node_path f.message;
  if f.core <> [] then Fmt.pf ppf " (core: %s)" (String.concat "; " f.core)

let errors findings = List.filter (fun f -> f.severity = Error) findings
let is_clean findings = errors findings = []
