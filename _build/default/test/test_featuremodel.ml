(* Tests for feature models: the propositional semantics, the textual
   parser, the standard analyses (void, products, dead/core), the paper's
   running-example model with its 12 valid products (Fig. 1a), and the
   multi-product model with exclusive resources (§IV-A). *)

module M = Featuremodel.Model
module A = Featuremodel.Analysis
module Multi = Featuremodel.Multi

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The running example feature model (Fig. 1a).  The modelling choices that
   reproduce the paper's "12 valid products":
   - cpus: mandatory, abstract, XOR over cpu@0/cpu@1            -> factor 2
   - uarts: mandatory, abstract, OR over the two uarts          -> factor 3
   - vEthernet: optional, abstract, XOR over veth0/veth1, with
     veth_i => cpu@i cross constraints                          -> factor 2
   - memory: mandatory                                          -> factor 1
   2 * 3 * 2 = 12. *)
let running_example_src =
  {|
feature abstract CustomSBC {
    mandatory memory;
    mandatory abstract cpus xor {
        cpu@0;
        cpu@1;
    }
    mandatory abstract uarts or {
        uart@20000000;
        uart@30000000;
    }
    optional abstract vEthernet xor {
        veth0;
        veth1;
    }
}
constraint veth0 => cpu@0;
constraint veth1 => cpu@1;
|}

let running_example () = Featuremodel.Parse.parse running_example_src

(* --- parser -------------------------------------------------------------------- *)

let test_parse () =
  let fm = running_example () in
  check_bool "root" true (fm.M.root.M.name = "CustomSBC");
  check_int "constraints" 2 (List.length fm.M.constraints);
  let cpus = Option.get (M.find_feature fm.M.root "cpus") in
  check_bool "cpus mandatory" true cpus.M.mandatory;
  check_bool "cpus abstract" true cpus.M.abstract;
  check_bool "cpus xor" true (cpus.M.group = M.Xor_group);
  check_int "cpus children" 2 (List.length cpus.M.children);
  let ve = Option.get (M.find_feature fm.M.root "vEthernet") in
  check_bool "vEthernet optional" false ve.M.mandatory

let test_parse_errors () =
  (try
     ignore (Featuremodel.Parse.parse "feature A { b; b; }" : M.t);
     Alcotest.fail "expected duplicate error"
   with M.Error _ -> ());
  (try
     ignore (Featuremodel.Parse.parse "feature A { }\nconstraint nosuch => A;" : M.t);
     Alcotest.fail "expected unknown-feature error"
   with M.Error _ -> ());
  try
    ignore (Featuremodel.Parse.parse "nope A { }" : M.t);
    Alcotest.fail "expected syntax error"
  with Featuremodel.Parse.Error _ -> ()

(* --- semantics ----------------------------------------------------------------- *)

let test_mandatory_semantics () =
  let fm = Featuremodel.Parse.parse "feature R { mandatory a; optional b; }" in
  let env = A.encode fm in
  check_bool "not void" false (A.is_void env);
  check_bool "a in every product" true (List.mem "a" (A.core_features env));
  check_bool "b not core" false (List.mem "b" (A.core_features env));
  check_int "two products" 2 (A.count_products env)

let test_xor_semantics () =
  let fm = Featuremodel.Parse.parse "feature R xor { a; b; c; }" in
  let env = A.encode fm in
  (* R is the root (always selected); XOR forces exactly one child. *)
  check_int "three products" 3 (A.count_products env);
  check_bool "a+b invalid" false (A.is_valid_product env [ "R"; "a"; "b" ]);
  check_bool "a alone valid" true (A.is_valid_product env [ "R"; "a" ])

let test_or_semantics () =
  let fm = Featuremodel.Parse.parse "feature R or { a; b; }" in
  let env = A.encode fm in
  (* Nonempty subsets of {a,b}. *)
  check_int "three products" 3 (A.count_products env);
  check_bool "empty invalid" false (A.is_valid_product env [ "R" ])

let test_and_optional_semantics () =
  let fm = Featuremodel.Parse.parse "feature R { a; b; }" in
  let env = A.encode fm in
  check_int "four products" 4 (A.count_products env)

let test_cross_constraints () =
  let fm =
    Featuremodel.Parse.parse "feature R { a; b; }\nconstraint a => b;\nconstraint b => !a | b;"
  in
  let env = A.encode fm in
  check_bool "a without b invalid" false (A.is_valid_product env [ "R"; "a" ]);
  check_bool "a with b valid" true (A.is_valid_product env [ "R"; "a"; "b" ])

let test_void_and_dead () =
  let void = Featuremodel.Parse.parse "feature R { mandatory a; }\nconstraint !a;" in
  check_bool "void" true (A.is_void (A.encode void));
  let dead =
    Featuremodel.Parse.parse "feature R { a; b; }\nconstraint a => b;\nconstraint a => !b;"
  in
  let env = A.encode dead in
  check_bool "not void" false (A.is_void env);
  check_bool "a is dead" true (List.mem "a" (A.dead_features env))

(* --- running example (Fig. 1a) --------------------------------------------------- *)

let test_running_example_products () =
  let env = A.encode (running_example ()) in
  check_bool "not void" false (A.is_void env);
  (* E1: the paper states the feature model has 12 valid products. *)
  check_int "12 valid products" 12 (A.count_products env);
  check_bool "no dead features" true (A.dead_features env = []);
  check_bool "memory core" true (List.mem "memory" (A.core_features env))

let test_running_example_fig1b () =
  (* Fig. 1b: cpu@0, both uarts, veth0. *)
  let env = A.encode (running_example ()) in
  check_bool "fig1b valid" true
    (A.is_valid_product env
       [ "memory"; "cpu@0"; "uart@20000000"; "uart@30000000"; "veth0" ]);
  (* Selecting both CPUs violates XOR. *)
  check_bool "both cpus invalid" false
    (A.is_valid_product env
       [ "memory"; "cpu@0"; "cpu@1"; "uart@20000000"; "uart@30000000" ]);
  (* veth0 with cpu@1 violates the cross constraint. *)
  check_bool "veth0 with cpu@1 invalid" false
    (A.is_valid_product env [ "memory"; "cpu@1"; "uart@20000000"; "veth0" ])

let test_running_example_fig1c () =
  (* Fig. 1c: cpu@1, both uarts, veth1. *)
  let env = A.encode (running_example ()) in
  check_bool "fig1c valid" true
    (A.is_valid_product env
       [ "memory"; "cpu@1"; "uart@20000000"; "uart@30000000"; "veth1" ])

let test_enumerate_is_stable () =
  (* Enumeration must not poison the solver for later queries. *)
  let env = A.encode (running_example ()) in
  check_int "first count" 12 (A.count_products env);
  check_int "second count" 12 (A.count_products env);
  check_bool "queries still work" true
    (A.is_valid_product env
       [ "memory"; "cpu@0"; "uart@20000000" ])

let test_enumerate_limit () =
  let env = A.encode (running_example ()) in
  check_int "limited" 5 (List.length (A.enumerate_products ~limit:5 env))

(* --- multi-product (§IV-A) -------------------------------------------------------- *)

let test_multi_two_vms () =
  let fm = running_example () in
  let m = Multi.encode ~exclusive:[ "cpus" ] fm ~vms:2 in
  check_bool "2 VMs allocatable" true (Multi.is_allocatable m);
  (* Pin VM1 to cpu@0 and veth0; VM2 must get cpu@1. *)
  (match Multi.solve ~selected:[ (1, "cpu@0"); (1, "veth0"); (2, "veth1") ] m with
   | `Unsat -> Alcotest.fail "expected sat"
   | `Sat products ->
     let vm2 = List.assoc 2 products in
     check_bool "vm2 has cpu@1" true (List.mem "cpu@1" vm2);
     check_bool "vm2 lacks cpu@0" false (List.mem "cpu@0" vm2);
     let platform = Multi.platform_features products in
     check_bool "platform has both cpus" true
       (List.mem "cpu@0" platform && List.mem "cpu@1" platform));
  (* The same CPU in both VMs is rejected. *)
  check_bool "same cpu twice unsat" true
    (Multi.solve ~selected:[ (1, "cpu@0"); (2, "cpu@0") ] m = `Unsat)

let test_multi_max_vms () =
  (* E2: with 2 CPUs, exclusive and mandatory, at most 2 VMs fit. *)
  let fm = running_example () in
  check_int "max VMs is 2" 2 (Multi.max_vms ~exclusive:[ "cpus" ] fm);
  (* 3 VMs must be unallocatable. *)
  let m3 = Multi.encode ~exclusive:[ "cpus" ] fm ~vms:3 in
  check_bool "3 VMs unsat" false (Multi.is_allocatable m3)

let test_multi_no_exclusive () =
  (* Without exclusivity, any number of VMs works. *)
  let fm = running_example () in
  let m3 = Multi.encode fm ~vms:3 in
  check_bool "3 VMs fine without exclusivity" true (Multi.is_allocatable m3)

let test_multi_errors () =
  let fm = running_example () in
  (try
     ignore (Multi.encode ~exclusive:[ "nosuch" ] fm ~vms:2 : Multi.t);
     Alcotest.fail "expected error"
   with Multi.Error _ -> ());
  try
    ignore (Multi.encode ~exclusive:[ "memory" ] fm ~vms:2 : Multi.t);
    Alcotest.fail "expected error (no children)"
  with Multi.Error _ -> ()

(* --- property: product enumeration matches brute force ----------------------------- *)

let prop_products_match_bruteforce =
  QCheck.Test.make ~count:60 ~name:"enumeration matches brute force"
    (QCheck.make
       QCheck.Gen.(
         (* Random small feature model: depth-2 tree over <= 6 features. *)
         let gen_group = oneofl [ M.And_group; M.Or_group; M.Xor_group ] in
         int_range 1 3 >>= fun ngroups ->
         list_repeat ngroups
           (pair gen_group (pair (int_range 1 3) bool))
         >>= fun groups -> return groups))
    (fun groups ->
      let counter = ref 0 in
      let fresh () =
        incr counter;
        Printf.sprintf "f%d" !counter
      in
      let children =
        List.map
          (fun (group, (nkids, mandatory)) ->
            {
              M.name = fresh ();
              abstract = false;
              mandatory;
              group;
              children =
                List.init nkids (fun _ ->
                    { M.name = fresh (); abstract = false; mandatory = false;
                      group = M.And_group; children = [] });
            })
          groups
      in
      let root =
        { M.name = "root"; abstract = false; mandatory = true; group = M.And_group; children }
      in
      let fm = M.make root in
      let env = A.encode fm in
      let products = A.enumerate_products env in
      (* Brute force over all subsets of features. *)
      let names = M.feature_names fm in
      let n = List.length names in
      let valid = ref 0 in
      for mask = 0 to (1 lsl n) - 1 do
        let sel i = mask land (1 lsl i) <> 0 in
        let env_fun name =
          let rec idx i = function
            | [] -> assert false
            | x :: _ when String.equal x name -> i
            | _ :: rest -> idx (i + 1) rest
          in
          sel (idx 0 names)
        in
        let lookup_eval (f : M.feature) = env_fun f.M.name in
        (* Evaluate the FM semantics directly. *)
        let rec feature_ok (f : M.feature) =
          let fv = lookup_eval f in
          List.for_all
            (fun (c : M.feature) ->
              ((not (lookup_eval c)) || fv)
              && ((not (fv && c.M.mandatory)) || lookup_eval c)
              && feature_ok c)
            f.M.children
          &&
          match (f.M.group, f.M.children) with
          | _, [] | M.And_group, _ -> true
          | M.Or_group, kids -> (not fv) || List.exists lookup_eval kids
          | M.Xor_group, kids ->
            (not fv) || List.length (List.filter lookup_eval kids) = 1
        in
        if env_fun "root" && feature_ok root then incr valid
      done;
      List.length products = !valid)


(* --- further analyses --------------------------------------------------------- *)

let test_false_optional () =
  let fm =
    Featuremodel.Parse.parse
      "feature R { mandatory a; optional b; optional c; }\nconstraint a => b;"
  in
  let env = A.encode fm in
  Alcotest.(check (list string)) "b is false optional" [ "b" ]
    (A.false_optional_features env)

let test_redundant_constraints () =
  let fm =
    Featuremodel.Parse.parse
      "feature R { mandatory a; optional b; }\nconstraint a => b;\nconstraint a => b | a;"
  in
  let env = A.encode fm in
  (* The second constraint is a tautology given a mandatory: redundant. *)
  let redundant = A.redundant_constraints env in
  check_bool "at least the tautology" true (List.length redundant >= 1);
  let fm2 = Featuremodel.Parse.parse "feature R { a; b; }\nconstraint a => b;" in
  Alcotest.(check int) "non-redundant kept" 0
    (List.length (A.redundant_constraints (A.encode fm2)))


(* --- configurator (greyed-out features, §IV-A) -------------------------------- *)

module C = Featuremodel.Configurator

let test_configurator_propagation () =
  let c = C.create (running_example ()) in
  (* Initially: memory is forced (mandatory), cpus are free. *)
  check_bool "memory forced" true (C.status c "memory" = C.Forced);
  check_bool "cpu@0 free" true (C.status c "cpu@0" = C.Free);
  (* Selecting veth0 forces cpu@0 (cross constraint) and forbids cpu@1
     (XOR) and veth1. *)
  C.decide c "veth0" true;
  check_bool "cpu@0 forced" true (C.status c "cpu@0" = C.Forced);
  check_bool "cpu@1 forbidden" true (C.status c "cpu@1" = C.Forbidden);
  check_bool "veth1 forbidden" true (C.status c "veth1" = C.Forbidden);
  check_bool "uart still free" true (C.status c "uart@20000000" = C.Free)

let test_configurator_rejects_invalid () =
  let c = C.create (running_example ()) in
  C.decide c "veth0" true;
  (try
     C.decide c "cpu@1" true;
     Alcotest.fail "expected rejection"
   with C.Error msg -> check_bool "mentions violation" true (Test_util.contains msg "violate"));
  (* The failed decision left no trace. *)
  check_bool "cpu@1 still forbidden" true (C.status c "cpu@1" = C.Forbidden)

let test_configurator_complete_product () =
  let c = C.create (running_example ()) in
  C.decide c "veth0" true;
  check_bool "not complete yet" false (C.is_complete c);
  C.decide c "uart@20000000" true;
  C.decide c "uart@30000000" false;
  check_bool "complete" true (C.is_complete c);
  let product = List.sort String.compare (C.product c) in
  Alcotest.(check (list string)) "product"
    [ "cpu@0"; "memory"; "uart@20000000"; "veth0" ] product;
  (* And it is a valid product of the model. *)
  let env = A.encode (running_example ()) in
  check_bool "valid" true (A.is_valid_product env product)

let test_configurator_undo () =
  let c = C.create (running_example ()) in
  C.decide c "veth0" true;
  check_bool "forbidden before undo" true (C.status c "cpu@1" = C.Forbidden);
  Alcotest.(check string) "undo returns name" "veth0" (C.undo c);
  check_bool "free after undo" true (C.status c "cpu@1" = C.Free);
  try
    ignore (C.undo c : string);
    Alcotest.fail "expected error"
  with C.Error _ -> ()

let () =
  Alcotest.run "featuremodel"
    [
      ( "parser",
        [
          Alcotest.test_case "running example" `Quick test_parse;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "mandatory" `Quick test_mandatory_semantics;
          Alcotest.test_case "xor" `Quick test_xor_semantics;
          Alcotest.test_case "or" `Quick test_or_semantics;
          Alcotest.test_case "and/optional" `Quick test_and_optional_semantics;
          Alcotest.test_case "cross constraints" `Quick test_cross_constraints;
          Alcotest.test_case "void and dead" `Quick test_void_and_dead;
        ] );
      ( "running example",
        [
          Alcotest.test_case "12 products (E1)" `Quick test_running_example_products;
          Alcotest.test_case "fig 1b product" `Quick test_running_example_fig1b;
          Alcotest.test_case "fig 1c product" `Quick test_running_example_fig1c;
          Alcotest.test_case "enumeration stability" `Quick test_enumerate_is_stable;
          Alcotest.test_case "enumeration limit" `Quick test_enumerate_limit;
        ] );
      ( "multi-product",
        [
          Alcotest.test_case "two VMs (E2)" `Quick test_multi_two_vms;
          Alcotest.test_case "max VMs (E2)" `Quick test_multi_max_vms;
          Alcotest.test_case "no exclusivity" `Quick test_multi_no_exclusive;
          Alcotest.test_case "errors" `Quick test_multi_errors;
        ] );
      ( "configurator",
        [
          Alcotest.test_case "propagation" `Quick test_configurator_propagation;
          Alcotest.test_case "rejects invalid" `Quick test_configurator_rejects_invalid;
          Alcotest.test_case "complete product" `Quick test_configurator_complete_product;
          Alcotest.test_case "undo" `Quick test_configurator_undo;
        ] );
      ( "analyses",
        [
          Alcotest.test_case "false optional" `Quick test_false_optional;
          Alcotest.test_case "redundant constraints" `Quick test_redundant_constraints;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_products_match_bruteforce ] );
    ]
