(* Tests for the Bao configuration generator: platform_desc extraction and
   rendering (Listing 3, E8), per-VM struct config (Listing 6, E9), and the
   QEMU rendering path (§V). *)

module T = Devicetree.Tree
module RE = Llhsc.Running_example

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_int64 = Alcotest.(check int64)
let contains = Test_util.contains

let platform_tree () =
  (* The platform product: union of both VM feature sets (32-bit form). *)
  let union = List.sort_uniq String.compare (RE.vm1_features @ RE.vm2_features) in
  Delta.Apply.generate ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~selected:union

let vm_tree features =
  Delta.Apply.generate ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~selected:features

(* --- platform (Listing 3, E8) ---------------------------------------------------- *)

let test_platform_extraction () =
  let p = Bao.Platform.of_tree (platform_tree ()) in
  check_int "cpu_num = 2" 2 p.Bao.Platform.cpu_num;
  Alcotest.(check (list int)) "one cluster of 2" [ 2 ] p.Bao.Platform.core_nums;
  check_int "two memory regions" 2 (List.length p.Bao.Platform.regions);
  let r1 = List.nth p.Bao.Platform.regions 0 in
  check_int64 "bank 1 base" 0x40000000L r1.Bao.Platform.base;
  check_int64 "bank 1 size" 0x20000000L r1.Bao.Platform.size;
  check_bool "console found" true (p.Bao.Platform.console_base = Some 0x20000000L)

let test_platform_c_rendering () =
  (* E8: the generated C matches Listing 3 field-for-field. *)
  let c = Bao.Platform.to_c (Bao.Platform.of_tree (platform_tree ())) in
  List.iter
    (fun needle -> check_bool ("contains " ^ needle) true (contains c needle))
    [ "#include <platform.h>";
      "struct platform_desc platform";
      ".cpu_num = 2";
      ".region_num = 2";
      "{ .base = 0x40000000, .size = 0x20000000 }";
      "{ .base = 0x60000000, .size = 0x20000000 }";
      ".console = { .base = 0x20000000 }";
      ".num = 1,";
      ".core_num = (uint8_t[]) {2}"
    ]

let test_platform_errors () =
  let no_cpus = T.of_source ~file:"x.dts" "/dts-v1/;\n/ { memory@0 { device_type = \"memory\"; reg = <0 0 0 0x1000>; }; };" in
  (try
     ignore (Bao.Platform.of_tree no_cpus : Bao.Platform.t);
     Alcotest.fail "expected error"
   with Bao.Platform.Error e -> check_bool "mentions cpus" true (contains e "cpus"));
  let no_mem =
    T.of_source ~loader:RE.loader ~file:"y.dts" "/dts-v1/;\n/ { };\n/include/ \"cpus.dtsi\""
  in
  try
    ignore (Bao.Platform.of_tree no_mem : Bao.Platform.t);
    Alcotest.fail "expected error"
  with Bao.Platform.Error e -> check_bool "mentions memory" true (contains e "memory")

(* --- VM config (Listing 6, E9) ------------------------------------------------------ *)

let test_vm_extraction () =
  let vm = Bao.Config.vm_of_tree ~name:"vm1" (vm_tree RE.vm1_features) in
  check_int "one cpu" 1 vm.Bao.Config.cpu_num;
  check_int "affinity 0b01" 0b01 vm.Bao.Config.cpu_affinity;
  check_int "two memory regions" 2 (List.length vm.Bao.Config.regions);
  check_int64 "entry at first bank" 0x40000000L vm.Bao.Config.entry;
  (* Two uarts as pass-through devices. *)
  check_int "two devs" 2 (List.length vm.Bao.Config.devs);
  let d = List.hd vm.Bao.Config.devs in
  check_int64 "pa = va" d.Bao.Config.pa d.Bao.Config.va;
  (* One veth IPC. *)
  check_int "one ipc" 1 (List.length vm.Bao.Config.ipcs);
  let i = List.hd vm.Bao.Config.ipcs in
  check_int64 "ipc base" 0x80000000L i.Bao.Config.ipc_base;
  check_int "shmem id 0" 0 i.Bao.Config.shmem_id

let test_vm2_affinity () =
  let vm = Bao.Config.vm_of_tree ~name:"vm2" (vm_tree RE.vm2_features) in
  check_int "affinity 0b10" 0b10 vm.Bao.Config.cpu_affinity

let test_config_c_rendering () =
  (* E9: a config in the shape of Listing 6. *)
  let cfg =
    Bao.Config.of_vm_trees
      [ ("vm1", vm_tree RE.vm1_features); ("vm2", vm_tree RE.vm2_features) ]
  in
  let c = Bao.Config.to_c cfg in
  List.iter
    (fun needle -> check_bool ("contains " ^ needle) true (contains c needle))
    [ "#include <config.h>";
      "VM_IMAGE(vm1, vm1.bin);";
      "VM_IMAGE(vm2, vm2.bin);";
      "CONFIG_HEADER";
      ".vmlist_size = 2";
      ".load_addr = VM_IMAGE_OFFSET(vm1)";
      ".entry = 0x40000000";
      ".cpu_affinity = 0b1,";
      ".cpu_affinity = 0b10,";
      "{ .base = 0x40000000, .size = 0x20000000 }";
      "{ .pa = 0x20000000, .va = 0x20000000, .size = 0x1000 }";
      ".ipc_num = 1";
      "{ .base = 0x80000000, .size = 0x10000000, .shmem_id = 0 }";
      ".shmemlist_size = 2";
      "[0] = { .size = 0x10000 }"
    ]

let test_listing6_unpartitioned () =
  (* Listing 6 proper: one VM using all resources, no partitioning. *)
  let all = List.sort_uniq String.compare (RE.vm1_features @ [ "cpu@1" ]) in
  (* cpu@0 and cpu@1 together violate the XOR for a *product*, but Listing 6
     describes exactly this unpartitioned VM; build the tree directly. *)
  ignore all;
  let t = vm_tree [ "memory"; "uart@20000000"; "uart@30000000"; "cpu@0"; "cpu@1" ] in
  let vm = Bao.Config.vm_of_tree ~name:"vm" t in
  check_int "cpu_num = 2" 2 vm.Bao.Config.cpu_num;
  check_int "affinity 0b11" 0b11 vm.Bao.Config.cpu_affinity;
  check_int "dev_num = 2" 2 (List.length vm.Bao.Config.devs);
  check_int "region_num = 2" 2 (List.length vm.Bao.Config.regions)

let test_vm_without_memory_rejected () =
  let t = T.of_source ~loader:RE.loader ~file:"z.dts" "/dts-v1/;\n/ { };\n/include/ \"cpus.dtsi\"" in
  try
    ignore (Bao.Config.vm_of_tree ~name:"bad" t : Bao.Config.vm);
    Alcotest.fail "expected error"
  with Bao.Config.Error e -> check_bool "mentions memory" true (contains e "memory")

(* --- QEMU (§V) ------------------------------------------------------------------------ *)

let test_qemu_command () =
  let t = vm_tree RE.vm1_features in
  let cmd = Bao.Qemu.command_line ~arch:Bao.Qemu.Aarch64 t in
  check_bool "aarch64 binary" true (contains cmd "qemu-system-aarch64");
  check_bool "machine virt" true (contains cmd "-machine virt");
  check_bool "1 cpu" true (contains cmd "-smp 1");
  (* 2 banks x 512 MiB = 1024 MiB *)
  check_bool "memory size" true (contains cmd "-m 1024");
  check_bool "dtb passed" true (contains cmd "-dtb");
  let rv = Bao.Qemu.command_line ~arch:Bao.Qemu.Rv64 t in
  check_bool "riscv64 binary" true (contains rv "qemu-system-riscv64")

let test_qemu_arch_parsing () =
  check_bool "aarch64" true (Bao.Qemu.arch_of_string "aarch64" = Bao.Qemu.Aarch64);
  check_bool "rv64" true (Bao.Qemu.arch_of_string "rv64" = Bao.Qemu.Rv64);
  try
    ignore (Bao.Qemu.arch_of_string "x86" : Bao.Qemu.arch);
    Alcotest.fail "expected error"
  with Bao.Qemu.Error _ -> ()


(* --- C round trip (generate -> parse -> compare) ------------------------------ *)

let test_platform_c_roundtrip () =
  let p = Bao.Platform.of_tree (platform_tree ()) in
  let reparsed = Bao.Cparse.platform_of_string (Bao.Platform.to_c p) in
  check_bool "platform survives the C round trip" true (p = reparsed)

let test_config_c_roundtrip () =
  let trees = [ ("vm1", vm_tree RE.vm1_features); ("vm2", vm_tree RE.vm2_features) ] in
  let cfg = Bao.Config.of_vm_trees trees in
  let vms, shmem_count = Bao.Cparse.config_summary_of_string (Bao.Config.to_c cfg) in
  check_int "two VMs" 2 (List.length vms);
  check_int "shmem entries" (List.length cfg.Bao.Config.shmem_sizes) shmem_count;
  List.iter2
    (fun (expected : Bao.Config.vm) (got : Bao.Cparse.vm_summary) ->
      check_int64 "entry" expected.Bao.Config.entry got.Bao.Cparse.entry;
      check_int64 "affinity" (Int64.of_int expected.Bao.Config.cpu_affinity)
        got.Bao.Cparse.cpu_affinity;
      check_int "cpu_num" expected.Bao.Config.cpu_num got.Bao.Cparse.cpu_num;
      check_int "regions" (List.length expected.Bao.Config.regions) got.Bao.Cparse.region_count;
      check_int "devs" (List.length expected.Bao.Config.devs) got.Bao.Cparse.dev_count;
      check_int "ipcs" (List.length expected.Bao.Config.ipcs) got.Bao.Cparse.ipc_count;
      Alcotest.(check (list int64)) "interrupts" expected.Bao.Config.interrupts
        got.Bao.Cparse.interrupts)
    cfg.Bao.Config.vms vms

let test_quad_config_c_roundtrip () =
  (* The three-VM quad RV64 config also survives the round trip. *)
  let outcome = Llhsc.Quad_rv64.run_pipeline () in
  let vms =
    List.filter (fun p -> p.Llhsc.Pipeline.name <> "platform") outcome.Llhsc.Pipeline.products
    |> List.map (fun p -> (p.Llhsc.Pipeline.name, p.Llhsc.Pipeline.tree))
  in
  let cfg = Bao.Config.of_vm_trees vms in
  let summaries, _ = Bao.Cparse.config_summary_of_string (Bao.Config.to_c cfg) in
  check_int "three VMs" 3 (List.length summaries);
  let affinities = List.map (fun (s : Bao.Cparse.vm_summary) -> s.Bao.Cparse.cpu_affinity) summaries in
  Alcotest.(check (list int64)) "affinities 0b11, 0b100, 0b1000" [ 3L; 4L; 8L ] affinities

let test_cparse_errors () =
  (try
     ignore (Bao.Cparse.parse_toplevel "no definition here" : Bao.Cparse.cvalue);
     Alcotest.fail "expected error"
   with Bao.Cparse.Error _ -> ());
  try
    ignore (Bao.Cparse.parse_toplevel "x = { .a = }" : Bao.Cparse.cvalue);
    Alcotest.fail "expected error"
  with Bao.Cparse.Error _ -> ()

let () =
  Alcotest.run "bao"
    [
      ( "platform",
        [
          Alcotest.test_case "extraction" `Quick test_platform_extraction;
          Alcotest.test_case "C rendering (E8)" `Quick test_platform_c_rendering;
          Alcotest.test_case "errors" `Quick test_platform_errors;
        ] );
      ( "vm-config",
        [
          Alcotest.test_case "extraction" `Quick test_vm_extraction;
          Alcotest.test_case "vm2 affinity" `Quick test_vm2_affinity;
          Alcotest.test_case "C rendering (E9)" `Quick test_config_c_rendering;
          Alcotest.test_case "unpartitioned VM (Listing 6)" `Quick test_listing6_unpartitioned;
          Alcotest.test_case "no memory rejected" `Quick test_vm_without_memory_rejected;
        ] );
      ( "c-roundtrip",
        [
          Alcotest.test_case "platform" `Quick test_platform_c_roundtrip;
          Alcotest.test_case "config" `Quick test_config_c_roundtrip;
          Alcotest.test_case "quad config" `Quick test_quad_config_c_roundtrip;
          Alcotest.test_case "errors" `Quick test_cparse_errors;
        ] );
      ( "qemu",
        [
          Alcotest.test_case "command" `Quick test_qemu_command;
          Alcotest.test_case "arch parsing" `Quick test_qemu_arch_parsing;
        ] );
    ]
