test/test_delta.ml: Alcotest Delta Devicetree Featuremodel List Llhsc Option String Test_util
