test/test_devicetree.mli:
