test/test_smt.ml: Alcotest Fmt Gen Int64 List Printf QCheck QCheck_alcotest Smt Test_util
