test/test_featuremodel.ml: Alcotest Featuremodel List Option Printf QCheck QCheck_alcotest String Test_util
