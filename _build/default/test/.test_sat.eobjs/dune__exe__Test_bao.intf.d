test/test_bao.mli:
