test/test_schema.ml: Alcotest Devicetree Int64 List Option Printf QCheck QCheck_alcotest Schema Smt String Test_util
