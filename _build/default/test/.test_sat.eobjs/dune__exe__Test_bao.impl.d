test/test_bao.ml: Alcotest Bao Delta Devicetree Int64 List Llhsc String Test_util
