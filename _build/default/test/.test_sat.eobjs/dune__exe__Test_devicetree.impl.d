test/test_devicetree.ml: Alcotest Char Delta Devicetree Gen Int64 List Llhsc Option Printf QCheck QCheck_alcotest Schema String Test_util
