test/test_sat.ml: Alcotest Array Fmt List Printf QCheck QCheck_alcotest Sat
