test/test_featuremodel.mli:
