test/test_golden.ml: Alcotest Bao Devicetree Filename Lazy List Llhsc
