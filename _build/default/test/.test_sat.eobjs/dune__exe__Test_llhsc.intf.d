test/test_llhsc.mli:
