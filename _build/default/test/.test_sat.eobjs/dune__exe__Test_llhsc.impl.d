test/test_llhsc.ml: Alcotest Bao Buffer Delta Devicetree Featuremodel Fmt List Llhsc Option Printf QCheck QCheck_alcotest Smt String Test_util
