(* Tests for the delta-oriented programming layer: the delta language parser
   (Listing 4), activation by feature selection, the 'after' partial order
   and its linearisation (E4), application semantics, and error trace-back
   to the offending delta. *)

module T = Devicetree.Tree
module D = Delta.Lang
module RE = Llhsc.Running_example

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let deltas () = RE.deltas ()
let core () = RE.core_tree ()

(* --- parsing ---------------------------------------------------------------------- *)

let test_parse_listing4 () =
  let ds = deltas () in
  check_int "eleven deltas" 11 (List.length ds);
  let d1 = List.find (fun d -> d.D.name = "d1") ds in
  Alcotest.(check (list string)) "d1 after d3" [ "d3" ] d1.D.after;
  check_bool "d1 when veth0" true (d1.D.condition = Some (Featuremodel.Bexpr.Var "veth0"));
  (match d1.D.ops with
   | [ D.Adds { target; body } ] ->
     Alcotest.(check string) "target" "vEthernet" target;
     check_int "one child" 1
       (List.length
          (List.filter
             (function Devicetree.Ast.Child _ -> true | _ -> false)
             body.Devicetree.Ast.node_entries))
   | _ -> Alcotest.fail "d1 should have one adds op");
  let d3 = List.find (fun d -> d.D.name = "d3") ds in
  check_bool "d3 when (veth0 || veth1)" true
    (d3.D.condition
    = Some (Featuremodel.Bexpr.Or (Featuremodel.Bexpr.Var "veth0", Featuremodel.Bexpr.Var "veth1")))

let test_parse_errors () =
  let expect_err src =
    try
      ignore (Delta.Parse.parse ~file:"t.delta" src : D.t list);
      Alcotest.fail "expected parse error"
    with Delta.Parse.Error _ -> ()
  in
  expect_err "delta d1 { adds }";
  expect_err "delta d1 after nosuch { }";
  expect_err "delta d1 { } delta d1 { }";
  expect_err "delta d1 { removes x }" (* missing ';' *)

(* --- activation and ordering (E4) ---------------------------------------------------- *)

let test_activation () =
  let ds = deltas () in
  let active = Delta.Apply.active_deltas ~selected:RE.vm1_features ds in
  let names = List.map (fun d -> d.D.name) active in
  check_bool "d1 active (veth0)" true (List.mem "d1" names);
  check_bool "d2 inactive (veth1 not selected)" false (List.mem "d2" names);
  check_bool "d3 active" true (List.mem "d3" names);
  check_bool "d4 active (memory)" true (List.mem "d4" names);
  check_bool "rm-cpu1 active (!cpu@1)" true (List.mem "rm-cpu1" names);
  check_bool "rm-cpu0 inactive" false (List.mem "rm-cpu0" names)

let index_of x xs =
  let rec go i = function
    | [] -> Alcotest.failf "%s not in order" x
    | y :: _ when String.equal x y -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 xs

let test_order_vm1 () =
  (* E4: the paper's order for the veth0 VM is d3 < d4 < d_add. *)
  let order = Delta.Apply.order ~selected:RE.vm1_features (deltas ()) in
  check_bool "d3 before d4" true (index_of "d3" order < index_of "d4" order);
  check_bool "d4 before d1" true (index_of "d4" order < index_of "d1" order);
  check_bool "d3 first" true (List.hd order = "d3");
  check_bool "d2 not applied" false (List.mem "d2" order)

let test_order_vm2 () =
  let order = Delta.Apply.order ~selected:RE.vm2_features (deltas ()) in
  check_bool "d3 before d4" true (index_of "d3" order < index_of "d4" order);
  check_bool "d4 before d2" true (index_of "d4" order < index_of "d2" order);
  check_bool "d1 not applied" false (List.mem "d1" order)

let test_order_cycle () =
  let ds =
    Delta.Parse.parse ~file:"cyc.delta"
      "delta a after b { modifies / { x = <1>; }; } delta b after a { modifies / { y = <1>; }; }"
  in
  try
    ignore (Delta.Apply.order ~selected:[] ds : string list);
    Alcotest.fail "expected cycle error"
  with Delta.Apply.Error e -> check_bool "mentions cycle" true (Test_util.contains e.Delta.Apply.message "cyclic")

let test_order_ignores_inactive_after () =
  (* 'after' an inactive delta imposes no order and must not block. *)
  let ds =
    Delta.Parse.parse ~file:"ia.delta"
      "delta a when nope { modifies / { x = <1>; }; } delta b after a { modifies / { y = <1>; }; }"
  in
  Alcotest.(check (list string)) "only b" [ "b" ] (Delta.Apply.order ~selected:[] ds)

(* --- application ----------------------------------------------------------------------- *)

let generate selected =
  Delta.Apply.generate ~core:(core ()) ~deltas:(deltas ()) ~selected

let test_generate_vm1 () =
  let t = generate RE.vm1_features in
  (* d3: 32-bit cells and the vEthernet node. *)
  Alcotest.(check int) "address-cells" 1 (Devicetree.Addresses.address_cells t);
  Alcotest.(check int) "size-cells" 1 (Devicetree.Addresses.size_cells t);
  check_bool "vEthernet node" true (T.find t "/vEthernet" <> None);
  (* d1: veth0 under vEthernet. *)
  check_bool "veth0 added" true (T.find t "/vEthernet/veth0@80000000" <> None);
  check_bool "veth1 absent" true (T.find t "/vEthernet/veth1@90000000" = None);
  (* d4: memory rewritten to two 32-bit banks. *)
  let memory = T.find_exn t "/memory@40000000" in
  Alcotest.(check int) "4 cells" 4 (List.length (T.prop_u32s (Option.get (T.get_prop memory "reg"))));
  (* rm-cpu1: cpu@1 removed, cpu@0 kept. *)
  check_bool "cpu@0 kept" true (T.find t "/cpus/cpu@0" <> None);
  check_bool "cpu@1 removed" true (T.find t "/cpus/cpu@1" = None)

let test_generate_vm2 () =
  let t = generate RE.vm2_features in
  check_bool "veth1 added" true (T.find t "/vEthernet/veth1@90000000" <> None);
  check_bool "veth0 absent" true (T.find t "/vEthernet/veth0@80000000" = None);
  check_bool "cpu@0 removed" true (T.find t "/cpus/cpu@0" = None)

let test_generate_no_veth () =
  (* Without veth features, d3 does not fire: the tree stays 64-bit. *)
  let t = generate [ "memory"; "cpu@0"; "uart@20000000" ] in
  Alcotest.(check int) "address-cells still 2" 2 (Devicetree.Addresses.address_cells t);
  check_bool "no vEthernet" true (T.find t "/vEthernet" = None);
  check_bool "uart1 removed" true (T.find t "/uart@30000000" = None)

let test_generate_platform () =
  (* Platform = union of both VM products: both veths, both cpus. *)
  let union =
    List.sort_uniq String.compare (RE.vm1_features @ RE.vm2_features)
  in
  let t = generate union in
  check_bool "both veths" true
    (T.find t "/vEthernet/veth0@80000000" <> None && T.find t "/vEthernet/veth1@90000000" <> None);
  check_bool "both cpus" true
    (T.find t "/cpus/cpu@0" <> None && T.find t "/cpus/cpu@1" <> None)

(* --- error trace-back --------------------------------------------------------------------- *)

let test_adds_existing_is_error () =
  let ds =
    Delta.Parse.parse ~file:"dup.delta"
      "delta bad { adds binding / { memory@40000000 { x = <1>; }; }; }"
  in
  try
    ignore (Delta.Apply.generate ~core:(core ()) ~deltas:ds ~selected:[] : T.t);
    Alcotest.fail "expected error"
  with Delta.Apply.Error e ->
    Alcotest.(check (option string)) "blamed delta" (Some "bad") e.Delta.Apply.delta;
    check_bool "mentions existing" true (Test_util.contains e.Delta.Apply.message "already exists")

let test_modifies_missing_target () =
  let ds =
    Delta.Parse.parse ~file:"missing.delta" "delta ghost { modifies nosuch@0 { x = <1>; }; }"
  in
  try
    ignore (Delta.Apply.generate ~core:(core ()) ~deltas:ds ~selected:[] : T.t);
    Alcotest.fail "expected error"
  with Delta.Apply.Error e ->
    Alcotest.(check (option string)) "blamed delta" (Some "ghost") e.Delta.Apply.delta

let test_ambiguous_target () =
  let core =
    T.of_source ~file:"amb.dts" "/dts-v1/;\n/ { a { dup { }; }; b { dup { }; }; };"
  in
  let ds = Delta.Parse.parse ~file:"amb.delta" "delta amb { modifies dup { x = <1>; }; }" in
  try
    ignore (Delta.Apply.generate ~core ~deltas:ds ~selected:[] : T.t);
    Alcotest.fail "expected error"
  with Delta.Apply.Error e ->
    check_bool "mentions ambiguity" true (Test_util.contains e.Delta.Apply.message "ambiguous")

let test_removes_root_is_error () =
  let ds = Delta.Parse.parse ~file:"rmroot.delta" "delta r { removes /; }" in
  try
    ignore (Delta.Apply.generate ~core:(core ()) ~deltas:ds ~selected:[] : T.t);
    Alcotest.fail "expected error"
  with Delta.Apply.Error _ -> ()

let test_absolute_path_target () =
  let ds =
    Delta.Parse.parse ~file:"abs.delta"
      "delta abs { modifies /cpus/cpu@0 { status = \"okay\"; }; }"
  in
  let t = Delta.Apply.generate ~core:(core ()) ~deltas:ds ~selected:[] in
  check_bool "status set" true (T.has_prop (T.find_exn t "/cpus/cpu@0") "status")


(* --- static analysis of the delta set ------------------------------------------ *)

let test_analysis_running_example () =
  let r = Delta.Analysis.analyze ~model:(RE.feature_model ()) (deltas ()) in
  (* rm-memory fires on !memory, but memory is mandatory: a genuinely dead
     delta in the fixture (kept as defensive symmetry with the other rm
     deltas) that the analysis rightly exposes. *)
  Alcotest.(check (list string)) "rm-memory is dead" [ "rm-memory" ] r.Delta.Analysis.dead;
  check_bool "no conflicts" true (r.Delta.Analysis.conflicts = []);
  check_bool "no always-on" true (r.Delta.Analysis.always_on = [])

let test_analysis_dead_delta () =
  let ds =
    deltas ()
    @ Delta.Parse.parse ~validate_refs:false ~file:"dead.delta"
        "delta ghost when (veth0 && veth1) { modifies / { x = <1>; }; }"
  in
  let r = Delta.Analysis.analyze ~model:(RE.feature_model ()) ds in
  Alcotest.(check (list string)) "ghost is dead (veths are XOR)" [ "rm-memory"; "ghost" ]
    r.Delta.Analysis.dead

let test_analysis_always_on () =
  let ds =
    Delta.Parse.parse ~file:"aon.delta"
      "delta base when memory { modifies / { model = \"sbc\"; }; }"
  in
  let r = Delta.Analysis.analyze ~model:(RE.feature_model ()) ds in
  (* memory is mandatory: the delta fires in every product. *)
  Alcotest.(check (list string)) "always on" [ "base" ] r.Delta.Analysis.always_on

let test_analysis_conflict () =
  let ds =
    Delta.Parse.parse ~file:"conf.delta"
      "delta a when memory { modifies memory@40000000 { reg = <1>; }; }\n\
       delta b when cpu@0 { modifies memory@40000000 { reg = <2>; }; }"
  in
  let r = Delta.Analysis.analyze ~model:(RE.feature_model ()) ds in
  (match r.Delta.Analysis.conflicts with
   | [ c ] ->
     check_bool "names both deltas" true
       ((c.Delta.Analysis.delta_a, c.Delta.Analysis.delta_b) = ("a", "b"));
     check_bool "names the property" true (Test_util.contains c.Delta.Analysis.detail "reg")
   | cs -> Alcotest.failf "expected one conflict, got %d" (List.length cs));
  (* Adding an 'after' edge resolves it. *)
  let ds_ordered =
    Delta.Parse.parse ~file:"conf2.delta"
      "delta a when memory { modifies memory@40000000 { reg = <1>; }; }\n\
       delta b after a when cpu@0 { modifies memory@40000000 { reg = <2>; }; }"
  in
  let r2 = Delta.Analysis.analyze ~model:(RE.feature_model ()) ds_ordered in
  check_bool "ordered pair not a conflict" true (r2.Delta.Analysis.conflicts = [])

let test_analysis_disjoint_conditions_not_conflicting () =
  (* Same writes, but never co-active (veth0 XOR veth1): no conflict. *)
  let ds =
    Delta.Parse.parse ~file:"disj.delta"
      "delta a when veth0 { modifies memory@40000000 { reg = <1>; }; }\n\
       delta b when veth1 { modifies memory@40000000 { reg = <2>; }; }"
  in
  let r = Delta.Analysis.analyze ~model:(RE.feature_model ()) ds in
  check_bool "no conflict" true (r.Delta.Analysis.conflicts = [])


(* --- order independence: with no write conflicts, any valid linearization
   of the 'after' order produces the same tree -------------------------------- *)

(* An alternative linearization: Kahn with *reversed* preference (additive
   deltas first where allowed, later declarations first). *)
let linearize_reversed (ds : D.t list) =
  let names = List.map (fun d -> d.D.name) ds in
  let preds d = List.filter (fun a -> List.mem a names) d.D.after in
  let rec go remaining done_names acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let ready =
        List.filter (fun d -> List.for_all (fun p -> List.mem p done_names) (preds d)) remaining
      in
      (match List.rev ready with
       | [] -> Alcotest.fail "cycle in test linearization"
       | first :: _ ->
         go
           (List.filter (fun d -> d.D.name <> first.D.name) remaining)
           (first.D.name :: done_names)
           (first :: acc))
  in
  go ds [] []

let test_order_independence () =
  (* The running-example delta set has no unordered write conflicts
     (asserted by the analysis tests), so every product must come out
     identical under a completely different tie-breaking rule. *)
  let fm_env = Featuremodel.Analysis.encode (RE.feature_model ()) in
  let products = Featuremodel.Analysis.enumerate_products fm_env in
  List.iter
    (fun selected ->
      let active = Delta.Apply.active_deltas ~selected (deltas ()) in
      let default_tree =
        List.fold_left Delta.Apply.apply_delta (core ()) (Delta.Apply.linearize active)
      in
      let reversed_tree =
        List.fold_left Delta.Apply.apply_delta (core ()) (linearize_reversed active)
      in
      if not (T.equal default_tree reversed_tree) then
        Alcotest.failf "product {%s} depends on delta order" (String.concat ", " selected))
    products

let () =
  Alcotest.run "delta"
    [
      ( "parsing",
        [
          Alcotest.test_case "listing 4" `Quick test_parse_listing4;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "activation" `Quick test_activation;
          Alcotest.test_case "vm1 order (E4)" `Quick test_order_vm1;
          Alcotest.test_case "vm2 order (E4)" `Quick test_order_vm2;
          Alcotest.test_case "cycle detection" `Quick test_order_cycle;
          Alcotest.test_case "inactive after ignored" `Quick test_order_ignores_inactive_after;
        ] );
      ( "application",
        [
          Alcotest.test_case "vm1 product" `Quick test_generate_vm1;
          Alcotest.test_case "vm2 product" `Quick test_generate_vm2;
          Alcotest.test_case "no-veth product stays 64-bit" `Quick test_generate_no_veth;
          Alcotest.test_case "platform product" `Quick test_generate_platform;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "running example clean" `Quick test_analysis_running_example;
          Alcotest.test_case "dead delta" `Quick test_analysis_dead_delta;
          Alcotest.test_case "always-on delta" `Quick test_analysis_always_on;
          Alcotest.test_case "write conflict" `Quick test_analysis_conflict;
          Alcotest.test_case "disjoint conditions" `Quick test_analysis_disjoint_conditions_not_conflicting;
        ] );
      ( "order-independence",
        [ Alcotest.test_case "all products order-independent" `Quick test_order_independence ] );
      ( "trace-back",
        [
          Alcotest.test_case "adds existing" `Quick test_adds_existing_is_error;
          Alcotest.test_case "missing target" `Quick test_modifies_missing_target;
          Alcotest.test_case "ambiguous target" `Quick test_ambiguous_target;
          Alcotest.test_case "removes root" `Quick test_removes_root_is_error;
          Alcotest.test_case "absolute path target" `Quick test_absolute_path_target;
        ] );
    ]
