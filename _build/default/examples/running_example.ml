(* The paper's running example, end to end (Fig. 2):

   1. the feature model of the CustomSBC (Fig. 1a) and its 12 products;
   2. the two VM products of Fig. 1b/1c, completed by the allocation
      checker (CPUs are assigned automatically);
   3. delta application (Listing 4) with the induced orders;
   4. syntactic + semantic checking of every product;
   5. generation of the Bao platform (Listing 3) and VM configuration
      (Listing 6) C files, plus a QEMU command line.

     dune exec examples/running_example.exe *)

module RE = Llhsc.Running_example

let () =
  (* 1. Feature model analyses (E1). *)
  let model = RE.feature_model () in
  let env = Featuremodel.Analysis.encode model in
  let products = Featuremodel.Analysis.enumerate_products env in
  Fmt.pr "== Feature model (Fig. 1a) ==@.";
  Fmt.pr "valid products: %d@." (List.length products);
  List.iteri (fun i p -> Fmt.pr "  %2d: {%s}@." (i + 1) (String.concat ", " p)) products;
  Fmt.pr "dead features: %s@.@."
    (match Featuremodel.Analysis.dead_features env with
     | [] -> "(none)"
     | dead -> String.concat ", " dead);

  (* 2. Static partitioning: two VMs, CPUs exclusive (E2). *)
  Fmt.pr "== Allocation (Section IV-A) ==@.";
  Fmt.pr "max VMs with exclusive CPUs: %d@."
    (Featuremodel.Multi.max_vms ~exclusive:RE.exclusive model);
  (match
     Llhsc.Alloc.allocate ~exclusive:RE.exclusive model ~vms:2
       ~requests:
         [ Llhsc.Alloc.request 1 [ "veth0"; "uart@20000000"; "uart@30000000" ];
           Llhsc.Alloc.request 2 [ "veth1"; "uart@20000000"; "uart@30000000" ]
         ]
   with
   | Llhsc.Alloc.Allocated { vms; _ } ->
     List.iter
       (fun (vm, feats) -> Fmt.pr "  vm%d: {%s}@." vm (String.concat ", " feats))
       vms
   | Llhsc.Alloc.Rejected fs -> List.iter (fun f -> Fmt.pr "  %a@." Llhsc.Report.pp f) fs);
  Fmt.pr "@.";

  (* 3-4. The full pipeline. *)
  Fmt.pr "== Pipeline (Fig. 2) ==@.";
  let outcome =
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model ~core:(RE.core_tree ())
      ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
      ~vm_requests:[ RE.vm1_features; RE.vm2_features ] ()
  in
  Fmt.pr "%a@." Llhsc.Pipeline.pp_outcome outcome;
  if not (Llhsc.Pipeline.ok outcome) then exit 1;

  (* 5. Artifacts. *)
  let product name =
    List.find (fun p -> p.Llhsc.Pipeline.name = name) outcome.Llhsc.Pipeline.products
  in
  let vm1 = product "vm1" and vm2 = product "vm2" and platform = product "platform" in
  Fmt.pr "== vm1.dts ==@.%s@." (Devicetree.Printer.to_string vm1.Llhsc.Pipeline.tree);
  Fmt.pr "== platform.c (Listing 3) ==@.%s@."
    (Bao.Platform.to_c (Bao.Platform.of_tree platform.Llhsc.Pipeline.tree));
  Fmt.pr "== config.c (Listing 6) ==@.%s@."
    (Bao.Config.to_c
       (Bao.Config.of_vm_trees
          [ ("vm1", vm1.Llhsc.Pipeline.tree); ("vm2", vm2.Llhsc.Pipeline.tree) ]));
  Fmt.pr "== QEMU (Section V) ==@.%s@."
    (Bao.Qemu.command_line ~arch:Bao.Qemu.Aarch64 vm1.Llhsc.Pipeline.tree)
