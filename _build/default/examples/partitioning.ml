(* Static partitioning beyond the paper's two-VM example: a quad-core SBC
   partitioned into three VMs, with exclusive CPUs and serial ports.
   Demonstrates the allocation checker's automatic assignment, maximum VM
   count, and rejection diagnostics on over-subscription.

     dune exec examples/partitioning.exe *)

let feature_model_src =
  {|
feature abstract QuadSBC {
    mandatory memory;
    mandatory abstract cpus xor {
        cpu@0;
        cpu@1;
        cpu@2;
        cpu@3;
    }
    mandatory abstract uarts xor {
        uart@9000000;
        uart@9001000;
        uart@9002000;
        uart@9003000;
    }
    optional gpu;
}
constraint gpu => cpu@0;
|}

let model = Featuremodel.Parse.parse feature_model_src

let show_allocation ~vms requests =
  Fmt.pr "allocating %d VM(s):@." vms;
  List.iter
    (fun r ->
      Fmt.pr "  vm%d requests {%s}@." r.Llhsc.Alloc.vm
        (String.concat ", " r.Llhsc.Alloc.selected))
    requests;
  (match Llhsc.Alloc.allocate ~exclusive:[ "cpus"; "uarts" ] model ~vms ~requests with
   | Llhsc.Alloc.Allocated { vms = products; platform } ->
     List.iter
       (fun (vm, feats) -> Fmt.pr "  -> vm%d: {%s}@." vm (String.concat ", " feats))
       products;
     Fmt.pr "  -> platform: {%s}@." (String.concat ", " platform)
   | Llhsc.Alloc.Rejected fs ->
     List.iter (fun f -> Fmt.pr "  -> %a@." Llhsc.Report.pp f) fs);
  Fmt.pr "@."

let run_re ~deltas ~vm_requests =
  let module RE = Llhsc.Running_example in
  Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
    ~core:(RE.core_tree ()) ~deltas ~schemas_for:RE.schemas_for ~vm_requests ()

let () =
  let env = Featuremodel.Analysis.encode model in
  Fmt.pr "QuadSBC feature model: %d products, max VMs with exclusive cpus+uarts: %d@.@."
    (Featuremodel.Analysis.count_products env)
    (Featuremodel.Multi.max_vms ~exclusive:[ "cpus"; "uarts" ] model);

  (* Three VMs; the GPU VM must get cpu@0 via the cross constraint. *)
  show_allocation ~vms:3
    [ Llhsc.Alloc.request 1 [ "gpu" ];
      Llhsc.Alloc.request 2 [ "cpu@2" ];
      Llhsc.Alloc.request 3 []
    ];

  (* Five VMs cannot fit on four CPUs. *)
  show_allocation ~vms:5 (List.init 5 (fun i -> Llhsc.Alloc.request (i + 1) []));

  (* Conflicting pinning: two VMs demand the same CPU. *)
  show_allocation ~vms:2
    [ Llhsc.Alloc.request 1 [ "cpu@1" ]; Llhsc.Alloc.request 2 [ "cpu@1" ] ];

  (* An invalid single-VM selection (gpu without cpu@0). *)
  show_allocation ~vms:1 [ Llhsc.Alloc.request ~deselected:[ "cpu@0" ] 1 [ "gpu" ] ]

(* Shared vs partitioned hardware on the paper's running example: the
   paper-faithful delta set leaves both banks and both uarts in every VM
   (the cross-VM checker warns); deltas d7/d8 plus per-VM uarts partition
   the hardware fully. *)
let () =
  let module RE = Llhsc.Running_example in
  Fmt.pr "== running example: shared hardware (paper-faithful deltas) ==@.";
  let shared = run_re ~deltas:(RE.deltas ()) ~vm_requests:[ RE.vm1_features; RE.vm2_features ] in
  List.iter
    (fun f -> Fmt.pr "  %a@." Llhsc.Report.pp f)
    shared.Llhsc.Pipeline.partition_findings;
  Fmt.pr "@.== running example: partitioned (d7/d8, per-VM uarts) ==@.";
  let partitioned =
    run_re ~deltas:(RE.partitioned_deltas ())
      ~vm_requests:[ RE.vm1_partitioned_features; RE.vm2_partitioned_features ]
  in
  (match partitioned.Llhsc.Pipeline.partition_findings with
   | [] -> Fmt.pr "  no cross-VM findings: RAM, uarts and CPUs are fully partitioned@."
   | fs -> List.iter (fun f -> Fmt.pr "  %a@." Llhsc.Report.pp f) fs);
  List.iter
    (fun p ->
      if p.Llhsc.Pipeline.name <> "platform" then
        Fmt.pr "  %a@." Bao.Config.pp_vm
          (Bao.Config.vm_of_tree ~name:p.Llhsc.Pipeline.name p.Llhsc.Pipeline.tree))
    partitioned.Llhsc.Pipeline.products
