examples/partitioning.mli:
