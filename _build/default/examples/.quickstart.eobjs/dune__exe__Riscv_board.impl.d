examples/riscv_board.ml: Bao Devicetree Fmt List Llhsc String
