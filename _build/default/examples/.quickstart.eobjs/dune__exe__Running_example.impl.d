examples/running_example.ml: Bao Devicetree Featuremodel Fmt List Llhsc String
