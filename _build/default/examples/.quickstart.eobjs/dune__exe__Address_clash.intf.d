examples/address_clash.mli:
