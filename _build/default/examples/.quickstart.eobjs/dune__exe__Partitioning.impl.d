examples/partitioning.ml: Bao Featuremodel Fmt List Llhsc String
