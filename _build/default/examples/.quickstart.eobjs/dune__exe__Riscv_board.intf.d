examples/riscv_board.mli:
