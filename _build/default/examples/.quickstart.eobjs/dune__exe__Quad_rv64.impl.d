examples/quad_rv64.ml: Bao Featuremodel Fmt List Llhsc
