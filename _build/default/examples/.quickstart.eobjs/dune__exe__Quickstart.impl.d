examples/quickstart.ml: Char Devicetree Fmt List Llhsc Schema String
