examples/quickstart.mli:
