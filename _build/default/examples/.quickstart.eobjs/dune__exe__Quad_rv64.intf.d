examples/quad_rv64.mli:
