examples/address_clash.ml: Delta Devicetree Fmt List Llhsc Printf
