(* An RV64 virt-style board assembled from a base DTS plus overlays —
   exercising interrupt resolution (PLIC, #interrupt-cells,
   interrupt-parent inheritance), overlay application, semantic checks,
   DTB emission, and the QEMU rendering path (the paper's "SBCs that use
   aarch64 or RV64 architecture", §V).

     dune exec examples/riscv_board.exe *)

module T = Devicetree.Tree

let base_dts =
  {|
/dts-v1/;

/ {
    #address-cells = <1>;
    #size-cells = <1>;
    compatible = "riscv-virtio";

    cpus {
        #address-cells = <1>;
        #size-cells = <0>;
        cpu@0 {
            device_type = "cpu";
            compatible = "riscv";
            reg = <0>;
        };
        cpu@1 {
            device_type = "cpu";
            compatible = "riscv";
            reg = <1>;
        };
    };

    memory@80000000 {
        device_type = "memory";
        reg = <0x80000000 0x40000000>;
    };

    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        ranges;
        interrupt-parent = <&plic>;

        plic: interrupt-controller@c000000 {
            compatible = "riscv,plic0";
            interrupt-controller;
            #interrupt-cells = <1>;
            reg = <0xc000000 0x4000000>;
        };

        serial@10000000 {
            compatible = "ns16550a";
            reg = <0x10000000 0x100>;
            interrupts = <10>;
            status = "disabled";
        };

        virtio@10001000 {
            compatible = "virtio,mmio";
            reg = <0x10001000 0x1000>;
            interrupts = <1>;
            status = "disabled";
        };
    };
};
|}

(* Overlays enabling devices — note the second one double-books IRQ 10. *)
let enable_serial =
  {|
/dts-v1/;
/ {
    fragment@0 {
        target-path = "/soc/serial@10000000";
        __overlay__ { status = "okay"; };
    };
};
|}

let enable_virtio_bad_irq =
  {|
/dts-v1/;
/ {
    fragment@0 {
        target-path = "/soc/virtio@10001000";
        __overlay__ {
            status = "okay";
            interrupts = <10>;
        };
    };
};
|}

let () =
  let base = T.of_source ~file:"rv64-virt.dts" base_dts in
  let overlay src name = T.of_source ~file:name src in

  (* 1. Interrupt topology of the base board. *)
  Fmt.pr "== interrupt topology ==@.";
  List.iter
    (fun s -> Fmt.pr "  %a@." Devicetree.Interrupts.pp_spec s)
    (Devicetree.Interrupts.specs (T.resolve_phandles base));
  Fmt.pr "@.";

  (* 2. Enable the serial port via an overlay; checks stay green. *)
  let with_serial =
    Devicetree.Overlay.apply ~base ~overlay:(overlay enable_serial "enable-serial.dtso")
  in
  let findings = Llhsc.Semantic.check with_serial in
  Fmt.pr "== base + enable-serial: %d finding(s) ==@." (List.length findings);
  List.iter (fun f -> Fmt.pr "  %a@." Llhsc.Report.pp f) findings;
  Fmt.pr "@.";

  (* 3. A second overlay steals the serial port's interrupt line. *)
  let with_conflict =
    Devicetree.Overlay.apply ~base:with_serial
      ~overlay:(overlay enable_virtio_bad_irq "enable-virtio.dtso")
  in
  let findings = Llhsc.Semantic.check with_conflict in
  Fmt.pr "== + enable-virtio (IRQ 10 double-booked): %d finding(s) ==@."
    (List.length findings);
  List.iter (fun f -> Fmt.pr "  %a@." Llhsc.Report.pp f) findings;
  Fmt.pr "@.";

  (* 4. Ship the good configuration: DTB + QEMU command line. *)
  let blob = Devicetree.Fdt.encode with_serial in
  Fmt.pr "== artifacts ==@.";
  Fmt.pr "DTB: %d bytes@." (String.length blob);
  Fmt.pr "QEMU: %s@." (Bao.Qemu.command_line ~arch:Bao.Qemu.Rv64 with_serial)
