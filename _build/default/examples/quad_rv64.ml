(* The quad-core RV64 case study: two CPU clusters, four memory banks, two
   UARTs, virtio devices and virtual network channels, partitioned into
   three VMs — the full llhsc workflow at a larger scale than the paper's
   CustomSBC.

     dune exec examples/quad_rv64.exe *)

module Q = Llhsc.Quad_rv64

let () =
  let env = Featuremodel.Analysis.encode (Q.feature_model ()) in
  Fmt.pr "QuadRV64 feature model: %d valid products@.@."
    (Featuremodel.Analysis.count_products env);

  let outcome = Q.run_pipeline () in
  Fmt.pr "%a@." Llhsc.Pipeline.pp_outcome outcome;
  if not (Llhsc.Pipeline.ok outcome) then exit 1;

  let product name =
    List.find (fun p -> p.Llhsc.Pipeline.name = name) outcome.Llhsc.Pipeline.products
  in
  let platform = (product "platform").Llhsc.Pipeline.tree in
  Fmt.pr "== platform.c ==@.%s@." (Bao.Platform.to_c (Bao.Platform.of_tree platform));
  let vms =
    List.filter (fun p -> p.Llhsc.Pipeline.name <> "platform") outcome.Llhsc.Pipeline.products
    |> List.map (fun p -> (p.Llhsc.Pipeline.name, p.Llhsc.Pipeline.tree))
  in
  Fmt.pr "== config.c (3 VMs) ==@.%s@." (Bao.Config.to_c (Bao.Config.of_vm_trees vms));
  Fmt.pr "== QEMU, vm1 ==@.%s@."
    (Bao.Qemu.command_line ~arch:Bao.Qemu.Rv64 (product "vm1").Llhsc.Pipeline.tree)
