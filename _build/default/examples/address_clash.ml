(* The detection gap between syntactic tools and the llhsc semantic checker,
   on the paper's three error scenarios:

   A. (Section I-A / E5)  The uart's base address is moved onto the second
      memory bank.  dtc and dt-schema accept the DTS; llhsc reports the
      collision with a witness address.
   B. (Section IV-C / E6)  Delta d4 is omitted, so the 64-bit memory reg is
      reinterpreted under the 32-bit cells installed by d3: four banks
      appear instead of two and everything collides at 0x0.
   C. (Listing 4, as printed)  The paper's own d2 places the second veth at
      0x70000000 — inside the second memory bank.  llhsc flags it.

     dune exec examples/address_clash.exe *)

module T = Devicetree.Tree
module RE = Llhsc.Running_example

let report title tree =
  Fmt.pr "--- %s ---@." title;
  let schemas = RE.schemas_for tree in
  let direct = Llhsc.Report.errors (Llhsc.Syntactic.check_direct ~schemas tree) in
  Fmt.pr "dt-schema-style syntactic check: %s@."
    (match direct with
     | [] -> "PASS (blind to the problem)"
     | fs -> Printf.sprintf "%d finding(s)" (List.length fs));
  let semantic = Llhsc.Report.errors (Llhsc.Semantic.check tree) in
  (match semantic with
   | [] -> Fmt.pr "llhsc semantic check: PASS@."
   | fs ->
     Fmt.pr "llhsc semantic check: %d finding(s)@." (List.length fs);
     List.iter (fun f -> Fmt.pr "  %a@." Llhsc.Report.pp f) fs);
  Fmt.pr "@."

let () =
  (* Scenario A: uart onto the second memory bank. *)
  let t = RE.core_tree () in
  let clash =
    [ Devicetree.Ast.Cells
        { bits = 32;
          cells = List.map (fun v -> Devicetree.Ast.Cell_int v) [ 0x0L; 0x60000000L; 0x0L; 0x1000L ]
        }
    ]
  in
  report "A: uart@60000000 vs memory bank 2 (Section I-A)"
    (T.set_prop t ~path:"/uart@20000000" "reg" clash);

  (* Scenario B: omit d4. *)
  let deltas_without_d4 =
    List.filter (fun d -> d.Delta.Lang.name <> "d4") (RE.deltas ())
  in
  report "B: 64->32-bit truncation, d4 omitted (Section IV-C)"
    (Delta.Apply.generate ~core:(RE.core_tree ()) ~deltas:deltas_without_d4
       ~selected:RE.vm1_features);

  (* Scenario C: the paper-literal veth placement at 0x70000000. *)
  let paper_literal_d2 =
    {|
delta d2x when veth1 {
    adds binding vEthernet {
        veth1@70000000 {
            compatible = "veth";
            reg = <0x70000000 0x10000000>;
            id = <1>;
        };
    };
}
|}
  in
  let d2x =
    match Delta.Parse.parse ~file:"paper-d2.deltas" paper_literal_d2 with
    | [ d ] -> { d with Delta.Lang.after = [ "d3" ] }
    | _ -> assert false
  in
  let deltas =
    List.filter (fun d -> d.Delta.Lang.name <> "d2") (RE.deltas ()) @ [ d2x ]
  in
  report "C: veth1 at 0x70000000, inside memory bank 2 (Listing 4 as printed)"
    (Delta.Apply.generate ~core:(RE.core_tree ()) ~deltas ~selected:RE.vm2_features);

  (* And the repaired product line for contrast. *)
  report "repaired product line (veth1 at 0x90000000, d4 present)"
    (Delta.Apply.generate ~core:(RE.core_tree ()) ~deltas:(RE.deltas ())
       ~selected:RE.vm2_features)
