(* Quickstart: parse a DeviceTree source, decode its memory map, and run the
   llhsc checkers on it.

     dune exec examples/quickstart.exe *)

let dts =
  {|
/dts-v1/;

/ {
    #address-cells = <1>;
    #size-cells = <1>;

    memory@80000000 {
        device_type = "memory";
        reg = <0x80000000 0x40000000>;
    };

    serial@10000000 {
        compatible = "ns16550a";
        reg = <0x10000000 0x100>;
        interrupts = <10>;
    };

    /* Oops: this device's register window sits inside RAM. */
    dma@90000000 {
        compatible = "acme,dma";
        reg = <0x90000000 0x1000>;
        interrupts = <10>;
    };
};
|}

let () =
  (* 1. Parse. *)
  let tree = Devicetree.Tree.of_source ~file:"quickstart.dts" dts in
  Fmt.pr "parsed %d nodes: %s@.@."
    (List.length (Devicetree.Tree.paths tree))
    (String.concat ", " (Devicetree.Tree.paths tree));

  (* 2. Decode the memory map. *)
  Fmt.pr "memory map:@.";
  List.iter
    (fun (nr : Devicetree.Addresses.node_regions) ->
      List.iter
        (fun r -> Fmt.pr "  %-20s %a@." nr.Devicetree.Addresses.path Devicetree.Addresses.pp_region r)
        nr.Devicetree.Addresses.regions)
    (Devicetree.Addresses.regions_in_root_space tree);
  Fmt.pr "@.";

  (* 3. Semantic checks: the DMA window collides with RAM, and both devices
     claim interrupt line 10. *)
  let findings = Llhsc.Semantic.check tree in
  Fmt.pr "semantic checker found %d issue(s):@." (List.length findings);
  List.iter (fun f -> Fmt.pr "  %a@." Llhsc.Report.pp f) findings;
  Fmt.pr "@.";

  (* 4. A schema-based syntactic check. *)
  let schema =
    Schema.Binding.of_string
      {|
$id: serial
select:
  compatible: [ns16550a]
properties:
  compatible:
    const: ns16550a
  reg:
    minItems: 1
    maxItems: 1
    multipleOf: 2
required: [compatible, reg, interrupts]
|}
  in
  let syntactic = Llhsc.Syntactic.check ~schemas:[ schema ] tree in
  Fmt.pr "syntactic checker found %d issue(s)@." (List.length syntactic);
  List.iter (fun f -> Fmt.pr "  %a@." Llhsc.Report.pp f) syntactic;

  (* 5. Emit the flattened DTB. *)
  let blob = Devicetree.Fdt.encode tree in
  Fmt.pr "@.flattened DTB: %d bytes (magic %02x%02x%02x%02x)@." (String.length blob)
    (Char.code blob.[0]) (Char.code blob.[1]) (Char.code blob.[2]) (Char.code blob.[3])
