(* llhsc — DeviceTree syntax and semantic checker (command-line front end).

   Subcommands:
     check     parse a DTS and run the syntactic + semantic checkers
     products  analyse a feature model (count/enumerate/dead features)
     generate  apply delta modules for a feature selection, emit the DTS
     pipeline  full workflow: alloc + generation + checks + Bao configs
     dtb       compile DTS to a flattened DTB (or decompile with -d)
     demo      run the paper's running example end to end *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every artifact the CLI emits (generated DTS, Bao configs, DTBs, SMT
   dumps) commits atomically: a crash or disk error mid-write leaves the
   old bytes or no file, never a torn artifact. *)
let write_file path contents = Llhsc.Durable.write_file ~path contents

(* Resolve /include/ relative to the including file's directory. *)
let loader_for path file =
  let dir = Filename.dirname path in
  let candidate = Filename.concat dir file in
  if Sys.file_exists candidate then Some (read_file candidate) else None

(* All collected input diagnostics for one bad file; printed (every one of
   them) by [handle_errors]. *)
exception Input_errors of Diag.t list

(* A delivery of SIGTERM/SIGINT mid-pipeline.  Raised from the signal
   handler so the journal sink can be fsync'd and closed on the way out —
   an interrupted --journal run must always be --resume-able. *)
exception Interrupted of int

(* Multi-error loading: report every syntax/merge error in the file, not
   just the first. *)
let load_tree path =
  match
    Devicetree.Tree.of_source_diags ~loader:(loader_for path) ~file:path (read_file path)
  with
  | Ok tree -> tree
  | Error errs -> raise (Input_errors (List.map Diag.parse_error errs))

let load_schemas = function
  | None -> []
  | Some dir ->
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter (fun f -> Filename.check_suffix f ".yaml" || Filename.check_suffix f ".yml")
    |> List.map (fun f -> Schema.Binding.of_string (read_file (Filename.concat dir f)))

let print_findings findings =
  List.iter (fun f -> Fmt.pr "%a@." Llhsc.Report.pp f) findings

let exit_of_findings findings = if Llhsc.Report.is_clean findings then 0 else 1

(* Every known library error is mapped to a structured diagnostic by
   [Diag.of_exn], so this list cannot drift as checkers are added; anything
   unknown escapes (and cmdliner turns it into exit 125, which the fault
   harness treats as a bug). *)
let handle_errors f =
  try f () with
  | Input_errors ds ->
    List.iter (fun d -> Fmt.epr "%a@." Diag.pp d) ds;
    2
  | e -> (
    match Diag.of_exn e with
    | Some d ->
      Fmt.epr "%a@." Diag.pp d;
      2
    | None -> raise e)

(* --- check ----------------------------------------------------------------------- *)

(* Print certification failures as error[CERT] diagnostics.  They count as
   findings (exit 1), not input errors (exit 2): the inputs were fine, but a
   solver verdict could not be independently validated, so the run must not
   look clean. *)
let print_cert_failures (r : Smt.Solver.cert_report) =
  List.iter
    (fun msg -> Fmt.epr "%a@." Diag.pp (Diag.make ~code:"CERT" "%s" msg))
    r.Smt.Solver.failures

let cmd_check dts_path schema_dir semantic_only syntactic_only certify =
  handle_errors @@ fun () ->
  let tree = load_tree dts_path in
  let schemas = load_schemas schema_dir in
  let solver = Smt.Solver.create ~certify () in
  let syntactic =
    if semantic_only || schemas = [] then []
    else Llhsc.Syntactic.check ~solver ~schemas tree
  in
  let semantic = if syntactic_only then [] else Llhsc.Semantic.check ~solver tree in
  let findings = syntactic @ semantic in
  if findings = [] then Fmt.pr "%s: all checks passed@." dts_path
  else print_findings findings;
  if certify then begin
    let r = Smt.Solver.cert_report solver in
    Fmt.pr "%a@." Llhsc.Report.pp_cert r;
    print_cert_failures r;
    if r.Smt.Solver.failures <> [] then 1 else exit_of_findings findings
  end
  else exit_of_findings findings

(* --- products -------------------------------------------------------------------- *)

let cmd_products fm_path count_only show_dead show_anomalies =
  handle_errors @@ fun () ->
  let model = Featuremodel.Parse.parse (read_file fm_path) in
  let env = Featuremodel.Analysis.encode model in
  if Featuremodel.Analysis.is_void env then begin
    Fmt.pr "feature model is void (no valid products)@.";
    1
  end
  else begin
    let products = Featuremodel.Analysis.enumerate_products env in
    Fmt.pr "%d valid product(s)@." (List.length products);
    if not count_only then
      List.iteri
        (fun i p -> Fmt.pr "  %2d: {%s}@." (i + 1) (String.concat ", " p))
        products;
    if show_dead then begin
      match Featuremodel.Analysis.dead_features env with
      | [] -> Fmt.pr "no dead features@."
      | dead -> Fmt.pr "dead features: %s@." (String.concat ", " dead)
    end;
    if show_anomalies then begin
      (match Featuremodel.Analysis.false_optional_features env with
       | [] -> Fmt.pr "no false-optional features@."
       | fo -> Fmt.pr "false-optional features: %s@." (String.concat ", " fo));
      match Featuremodel.Analysis.redundant_constraints env with
      | [] -> Fmt.pr "no redundant constraints@."
      | rs ->
        List.iter (fun c -> Fmt.pr "redundant constraint: %a@." Featuremodel.Bexpr.pp c) rs
    end;
    0
  end

(* --- analyze (delta set vs feature model) -------------------------------------------- *)

let cmd_analyze deltas_paths fm_path =
  handle_errors @@ fun () ->
  let deltas =
    let all =
      List.concat_map
        (fun f -> Delta.Parse.parse ~validate_refs:false ~file:f (read_file f))
        deltas_paths
    in
    Delta.Parse.validate all;
    all
  in
  let model = Featuremodel.Parse.parse (read_file fm_path) in
  let r = Delta.Analysis.analyze ~model deltas in
  Fmt.pr "%a" Delta.Analysis.pp r;
  if r.Delta.Analysis.conflicts = [] then 0 else 1

(* --- configure --------------------------------------------------------------------- *)

(* Batch-mode configurator: apply decisions in order, then print each
   feature's propagated status ("forced"/"forbidden" = the greyed-out
   features of the paper's Fig. 1). *)
let cmd_configure fm_path decisions =
  handle_errors @@ fun () ->
  let model = Featuremodel.Parse.parse (read_file fm_path) in
  let c = Featuremodel.Configurator.create model in
  let apply spec =
    match String.index_opt spec '=' with
    | None -> Featuremodel.Configurator.decide c spec true
    | Some i ->
      let name = String.sub spec 0 i in
      let value =
        match String.sub spec (i + 1) (String.length spec - i - 1) with
        | "on" | "true" | "yes" -> true
        | "off" | "false" | "no" -> false
        | v -> failwith (Printf.sprintf "bad decision value %S (use on/off)" v)
      in
      Featuremodel.Configurator.decide c name value
  in
  (try List.iter apply decisions
   with Featuremodel.Configurator.Error msg ->
     Fmt.epr "rejected: %s@." msg;
     exit 1);
  List.iter
    (fun (name, status) ->
      Fmt.pr "%-24s %a@." name Featuremodel.Configurator.pp_status status)
    (Featuremodel.Configurator.state c);
  if Featuremodel.Configurator.is_complete c then
    Fmt.pr "complete product: {%s}@."
      (String.concat ", " (Featuremodel.Configurator.product c));
  0

(* --- generate -------------------------------------------------------------------- *)

let cmd_generate core_path deltas_path features out check =
  handle_errors @@ fun () ->
  let core = load_tree core_path in
  let deltas = Delta.Parse.parse ~file:deltas_path (read_file deltas_path) in
  let tree = Delta.Apply.generate ~core ~deltas ~selected:features in
  let order = Delta.Apply.order ~selected:features deltas in
  Fmt.pr "applied deltas: %s@."
    (match order with [] -> "(none)" | _ -> String.concat " < " order);
  let dts = Devicetree.Printer.to_string tree in
  (match out with
   | Some path ->
     write_file path dts;
     Fmt.pr "wrote %s@." path
   | None -> print_string dts);
  if check then begin
    let findings = Llhsc.Semantic.check tree in
    print_findings findings;
    exit_of_findings findings
  end
  else 0

(* --- pipeline -------------------------------------------------------------------- *)

(* Exit codes: 0 clean, 1 findings, 2 a phase died on bad input (its
   diagnostics are in [outcome.errors] and were already printed). *)
let exit_of_outcome outcome =
  if outcome.Llhsc.Pipeline.errors <> [] then 2
  else if Llhsc.Pipeline.ok outcome then 0
  else 1

let budget_of max_conflicts timeout =
  match (max_conflicts, timeout) with
  | None, None -> None
  | _ -> Some (Sat.Solver.budget ?max_conflicts ?time_limit:timeout ())

(* "drop-lit:3" -> Drop_learnt_literal 3, etc.  A bad spec is an input error
   (failwith -> Diag FAIL -> exit 2). *)
let parse_unsound spec =
  match String.index_opt spec ':' with
  | Some i -> (
    let kind = String.sub spec 0 i in
    let n =
      match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
      | Some n when n > 0 -> n
      | _ -> failwith (Printf.sprintf "bad --unsound period in %S (want a positive int)" spec)
    in
    match kind with
    | "drop-lit" -> Sat.Solver.Drop_learnt_literal n
    | "flip-model" -> Sat.Solver.Flip_model_bit n
    | "mute-proof" -> Sat.Solver.Mute_proof_step n
    | "force-unknown" -> Sat.Solver.Force_unknown n
    | k ->
      failwith
        (Printf.sprintf
           "unknown --unsound kind %S (drop-lit|flip-model|mute-proof|force-unknown)" k))
  | None ->
    failwith (Printf.sprintf "bad --unsound spec %S (want KIND:N)" spec)

let retry_of = function
  | None -> None
  | Some n when n >= 2 -> Some (Smt.Escalation.ladder ~attempts:n ())
  | Some n ->
    failwith (Printf.sprintf "--retry wants at least 2 attempts, got %d" n)

let cmd_pipeline ?runner core_path deltas_path fm_path schema_dir vm_features exclusive
    out_dir max_conflicts timeout certify retry journal_path resume unsound jobs
    task_deadline max_respawns mem_limit cpu_limit =
  handle_errors @@ fun () ->
  if jobs < 0 then
    failwith
      (Printf.sprintf "--jobs wants a worker count >= 0 (0 = auto-detect), got %d" jobs);
  if max_respawns < 0 then
    failwith (Printf.sprintf "--max-respawns wants a count >= 0, got %d" max_respawns);
  (match task_deadline with
   | Some d when d <= 0. ->
     failwith (Printf.sprintf "--task-deadline wants a positive duration, got %g" d)
   | _ -> ());
  (match mem_limit with
   | Some m when m <= 0 ->
     failwith (Printf.sprintf "--mem-limit wants a positive MiB count, got %d" m)
   | _ -> ());
  (match cpu_limit with
   | Some c when c <= 0 ->
     failwith (Printf.sprintf "--cpu-limit wants a positive second count, got %d" c)
   | _ -> ());
  (* Without an explicit --task-deadline, derive one from the per-query
     solver timeout: a worker's lease covers a whole task (at most a
     chunk of obligations), so give it a generous multiple plus slack.
     No deadline at all when neither flag is given — supervision must
     never kill a legitimately slow unbudgeted run. *)
  let task_deadline =
    match (task_deadline, timeout) with
    | (Some _ as d), _ -> d
    | None, Some t -> Some ((t *. 32.) +. 10.)
    | None, None -> None
  in
  let core = load_tree core_path in
  let deltas = Delta.Parse.parse ~file:deltas_path (read_file deltas_path) in
  let model = Featuremodel.Parse.parse (read_file fm_path) in
  let schemas = load_schemas schema_dir in
  let schemas_for _tree = schemas in
  (* Everything a verdict depends on: raw input bytes plus the
     verdict-affecting flags.  Threaded into every journal record's content
     hash, so --resume re-checks when any of it changed. *)
  let inputs_hash =
    let schema_bytes =
      match schema_dir with
      | None -> []
      | Some dir ->
        Sys.readdir dir |> Array.to_list |> List.sort String.compare
        |> List.filter (fun f ->
               Filename.check_suffix f ".yaml" || Filename.check_suffix f ".yml")
        |> List.map (fun f -> read_file (Filename.concat dir f))
    in
    Llhsc.Journal.inputs_hash
      ~parts:
        ([ read_file core_path; read_file deltas_path; read_file fm_path ]
        @ schema_bytes
        @ List.map (String.concat ",") vm_features
        @ exclusive
        @ [ Printf.sprintf "conflicts=%s timeout=%s certify=%b retry=%s unsound=%s"
              (match max_conflicts with Some n -> string_of_int n | None -> "-")
              (match timeout with Some t -> string_of_float t | None -> "-")
              certify
              (match retry with Some n -> string_of_int n | None -> "-")
              (Option.value ~default:"-" unsound) ])
  in
  let resume_entries =
    if not resume then []
    else
      match journal_path with
      | Some path ->
        (* Quiet fsck first: surface (on stderr, never in the report) why
           a journal will not be trusted, instead of silently re-checking
           everything. *)
        (match Llhsc.Journal.fsck ~path with
         | None -> () (* no journal yet: a fresh run, nothing to say *)
         | Some r ->
           (match r.Llhsc.Journal.degraded_reason with
            | Some reason ->
              Fmt.epr
                "resume: journal %s recorded a durability degradation (%s); \
                 not trusting it (run `llhsc journal compact` to re-bless \
                 the surviving entries)@."
                path reason
            | None ->
              if r.Llhsc.Journal.torn > 0 || r.Llhsc.Journal.invalid > 0 then
                Fmt.epr "resume: journal %s: skipping %d torn/corrupt line(s)@."
                  path
                  (r.Llhsc.Journal.torn + r.Llhsc.Journal.invalid)));
        Llhsc.Journal.load ~path ~inputs_hash
      | None -> failwith "--resume requires --journal FILE"
  in
  let sink =
    Option.map (fun path -> Llhsc.Journal.open_ ~path ~inputs_hash) journal_path
  in
  (* Make an interrupt exit journal-clean: the handler raises, the journal
     is flushed/closed, and the run exits with the conventional 128+signal
     code.  Records are individually fsync'd, so everything completed
     before the signal is durable and --resume replays it. *)
  (* OCaml signal numbers are its own encoding (negative); carry the OS
     number so "interrupted by signal 15" and exit 128+15 come out right. *)
  let handler os_signal = Sys.Signal_handle (fun _ -> raise (Interrupted os_signal)) in
  let prev_term = Sys.signal Sys.sigterm (handler 15) in
  let prev_int = Sys.signal Sys.sigint (handler 2) in
  let restore () =
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int
  in
  match
    Llhsc.Pipeline.run ~exclusive ?budget:(budget_of max_conflicts timeout) ~certify
      ?retry:(retry_of retry) ?unsound:(Option.map parse_unsound unsound)
      ~inputs_hash ?journal:sink ~resume:resume_entries ~jobs ?task_deadline
      ~max_respawns ?mem_limit ?cpu_limit ?runner
      ~model ~core ~deltas ~schemas_for ~vm_requests:vm_features ()
  with
  | exception Interrupted s ->
    restore ();
    Option.iter Llhsc.Journal.close sink;
    (match journal_path with
     | Some path ->
       Fmt.epr "interrupted by signal %d: journal %s synced; rerun with --resume@." s path
     | None -> Fmt.epr "interrupted by signal %d@." s);
    128 + s
  | outcome ->
  restore ();
  Option.iter Llhsc.Journal.close sink;
  (* Resume status goes to stderr only: a resumed run's stdout report stays
     byte-identical to an uninterrupted run's. *)
  if resume then begin
    match outcome.Llhsc.Pipeline.replayed with
    | [] -> Fmt.epr "resume: nothing replayable; all products re-checked@."
    | rs -> Fmt.epr "resume: replayed from journal: %s@." (String.concat ", " rs)
  end;
  Fmt.pr "%a" Llhsc.Pipeline.pp_outcome outcome;
  (match out_dir with
   | Some dir when Llhsc.Pipeline.ok outcome ->
     if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
     let vm_products =
       List.filter (fun p -> p.Llhsc.Pipeline.name <> "platform") outcome.Llhsc.Pipeline.products
     in
     List.iter
       (fun p ->
         let path = Filename.concat dir (p.Llhsc.Pipeline.name ^ ".dts") in
         write_file path (Devicetree.Printer.to_string p.Llhsc.Pipeline.tree);
         Fmt.pr "wrote %s@." path)
       outcome.Llhsc.Pipeline.products;
     (* Bao artifacts. *)
     (match
        List.find_opt (fun p -> p.Llhsc.Pipeline.name = "platform") outcome.Llhsc.Pipeline.products
      with
      | Some platform ->
        let c = Bao.Platform.to_c (Bao.Platform.of_tree platform.Llhsc.Pipeline.tree) in
        write_file (Filename.concat dir "platform.c") c;
        Fmt.pr "wrote %s@." (Filename.concat dir "platform.c")
      | None -> ());
     let cfg =
       Bao.Config.of_vm_trees
         (List.map (fun p -> (p.Llhsc.Pipeline.name, p.Llhsc.Pipeline.tree)) vm_products)
     in
     write_file (Filename.concat dir "config.c") (Bao.Config.to_c cfg);
     Fmt.pr "wrote %s@." (Filename.concat dir "config.c")
   | Some _ -> Fmt.pr "checks failed; not writing artifacts@."
   | None -> ());
  exit_of_outcome outcome

(* --- journal maintenance ----------------------------------------------------------- *)

(* Exit-code contract mirrors the CLI's: 0 the journal is clean, 1 it has
   recoverable issues (torn/corrupt lines, a degradation marker), 2 it is
   unusable (missing, unreadable, or the header is gone). *)
let cmd_journal_fsck path quiet =
  handle_errors @@ fun () ->
  match Llhsc.Journal.fsck ~path with
  | None ->
    Fmt.epr "%a@." Diag.pp (Diag.make ~code:"IO" "%s: cannot read journal" path);
    2
  | Some r -> (
    let say fmt =
      if quiet then Format.ifprintf Format.std_formatter fmt else Fmt.pr fmt
    in
    (match r.Llhsc.Journal.header with
     | `Ok ih -> say "journal %s: header ok (inputs %s)@." path ih
     | `Bad -> say "journal %s: unrecognised header@." path
     | `Missing -> say "journal %s: empty@." path);
    say "  records: %d (%d distinct, %d superseded, %d legacy checksum-less)@."
      r.Llhsc.Journal.records r.Llhsc.Journal.entries
      (r.Llhsc.Journal.records - r.Llhsc.Journal.entries)
      r.Llhsc.Journal.legacy;
    if r.Llhsc.Journal.torn > 0 then
      say "  torn: %d line(s) whose checksum does not verify@." r.Llhsc.Journal.torn;
    if r.Llhsc.Journal.invalid > 0 then
      say "  corrupt: %d line(s) that are not valid records@." r.Llhsc.Journal.invalid;
    (match r.Llhsc.Journal.degraded_reason with
     | Some reason ->
       say "  degraded: the writing run lost durability (%s); --resume will \
            refuse this journal until `llhsc journal compact` re-blesses it@."
         reason
     | None -> ());
    match r.Llhsc.Journal.header with
    | `Bad | `Missing -> 2
    | `Ok _ -> if Llhsc.Journal.fsck_issues r then 1 else 0)

let cmd_journal_compact path =
  handle_errors @@ fun () ->
  match Llhsc.Journal.compact ~path with
  | Error reason ->
    Fmt.epr "%a@." Diag.pp (Diag.make ~code:"IO" "%s" reason);
    2
  | Ok (lines, entries) ->
    Fmt.pr "journal %s: compacted %d line(s) to %d entr%s@." path lines entries
      (if entries = 1 then "y" else "ies");
    0

(* --- dispatch / worker (fleet mode) ----------------------------------------------- *)

(* "HOST:PORT" (the last ':' splits, so a future IPv6 form still parses). *)
let parse_hostport what s =
  match String.rindex_opt s ':' with
  | None -> failwith (Printf.sprintf "%s wants HOST:PORT, got %S" what s)
  | Some i -> (
    let host = String.sub s 0 i in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some p when p >= 0 && p <= 65535 -> (host, p)
    | _ -> failwith (Printf.sprintf "%s wants a port in 0..65535, got %S" what s))

(* The shared fleet secret lives in a file (never on the command line,
   where `ps` would leak it).  Surrounding whitespace is trimmed so a
   trailing newline from `echo` does not silently split the fleet. *)
let read_secret_file path =
  let s = String.trim (read_file path) in
  if s = "" then failwith (Printf.sprintf "secret file %s is empty" path);
  s

let cmd_dispatch listen min_workers wait_workers max_inflight port_file ship
    secret_file compress core_path deltas_path fm_path schema_dir vm_features
    exclusive out_dir max_conflicts timeout certify retry journal_path resume
    unsound task_deadline =
  handle_errors @@ fun () ->
  let host, port = parse_hostport "--listen" listen in
  let secret = Option.map read_secret_file secret_file in
  if min_workers < 0 then
    failwith (Printf.sprintf "--min-workers wants a count >= 0, got %d" min_workers);
  if wait_workers < 0. then
    failwith (Printf.sprintf "--wait-workers wants seconds >= 0, got %g" wait_workers);
  if max_inflight < 1 then
    failwith (Printf.sprintf "--max-inflight wants a count >= 1, got %d" max_inflight);
  (match task_deadline with
   | Some d when d <= 0. ->
     failwith (Printf.sprintf "--task-deadline wants a positive duration, got %g" d)
   | _ -> ());
  (* A remote lease must always expire eventually — a partitioned worker
     holds its tasks until then — so unlike the local pool there is a
     hard default. *)
  let deadline =
    match (task_deadline, timeout) with
    | Some d, _ -> d
    | None, Some t -> (t *. 32.) +. 10.
    | None, None -> 60.
  in
  (* Everything a worker needs to replan the run, as raw bytes keyed by
     the original file-name strings (so remote diagnostics match local
     ones byte for byte).  /include/d files are shipped by name:
     .dtsi siblings of the core automatically, anything else via --ship
     (NAME=PATH to override the key). *)
  let ship_entry s =
    match String.index_opt s '=' with
    | Some i ->
      (String.sub s 0 i, read_file (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (Filename.basename s, read_file s)
  in
  let files =
    let dir = Filename.dirname core_path in
    let auto =
      Sys.readdir dir |> Array.to_list |> List.sort String.compare
      |> List.filter (fun f -> Filename.check_suffix f ".dtsi")
      |> List.map (fun f -> (f, read_file (Filename.concat dir f)))
    in
    let explicit = List.map ship_entry ship in
    explicit @ auto (* first match wins on lookup: --ship overrides *)
  in
  let schemas =
    match schema_dir with
    | None -> []
    | Some dir ->
      Sys.readdir dir |> Array.to_list |> List.sort String.compare
      |> List.filter (fun f ->
             Filename.check_suffix f ".yaml" || Filename.check_suffix f ".yml")
      |> List.map (fun f -> read_file (Filename.concat dir f))
  in
  let spec =
    { Fleet.Spec.core = { Fleet.Spec.file = core_path; text = read_file core_path };
      deltas = { Fleet.Spec.file = deltas_path; text = read_file deltas_path };
      model = read_file fm_path;
      schemas;
      files;
      vms = vm_features;
      exclusive;
      certify;
      retry;
      max_conflicts;
      solver_timeout = timeout;
      unsound;
      skip = [] }
  in
  let cfg =
    { Fleet.Dispatch.host; port; min_workers; wait_workers; deadline;
      max_inflight; port_file; secret; compress;
      (* The task journal rides next to the product journal: the
         product journal replays finished products on --resume, the
         task journal replays finished tasks of the interrupted sweep. *)
      task_journal = Option.map (fun p -> p ^ ".tasks") journal_path;
      resume }
  in
  let runner ~skip tasks =
    Fleet.Dispatch.run cfg ~spec:{ spec with Fleet.Spec.skip } tasks
  in
  (* Same driver as `pipeline`, with the fleet in place of the local
     pool: journal, resume, report rendering and exit codes are shared,
     and the local-pool knobs are fixed to their no-op values. *)
  cmd_pipeline ~runner core_path deltas_path fm_path schema_dir vm_features
    exclusive out_dir max_conflicts timeout certify retry journal_path resume
    unsound 1 None 8 None None

let cmd_worker connect port_file max_reconnects mem_limit cpu_limit secret_file
    =
  handle_errors @@ fun () ->
  if max_reconnects < 0 then
    failwith (Printf.sprintf "--max-reconnects wants a count >= 0, got %d" max_reconnects);
  (match mem_limit with
   | Some m when m <= 0 ->
     failwith (Printf.sprintf "--mem-limit wants a positive MiB count, got %d" m)
   | _ -> ());
  (match cpu_limit with
   | Some c when c <= 0 ->
     failwith (Printf.sprintf "--cpu-limit wants a positive second count, got %d" c)
   | _ -> ());
  let host, port =
    match connect with
    | Some s ->
      let h, p = parse_hostport "--connect" s in
      (h, Some p)
    | None -> ("127.0.0.1", None)
  in
  if port = None && port_file = None then
    failwith "worker needs --connect HOST:PORT or --port-file FILE";
  let secret = Option.map read_secret_file secret_file in
  Fleet.Worker.run
    { Fleet.Worker.host; port; port_file; max_reconnects; mem_limit; cpu_limit;
      secret }

(* --- chaosproxy ------------------------------------------------------------- *)

let cmd_chaosproxy listen upstream port_file seed corrupt drop trunc stall
    stall_ms reorder dup split =
  handle_errors @@ fun () ->
  let listen_host, listen_port = parse_hostport "--listen" listen in
  let upstream_host, upstream_port = parse_hostport "--upstream" upstream in
  List.iter
    (fun (flag, p) ->
      if p < 0. || p > 1. then
        failwith (Printf.sprintf "%s wants a probability in 0..1, got %g" flag p))
    [ ("--corrupt", corrupt); ("--drop", drop); ("--truncate", trunc);
      ("--stall", stall); ("--reorder", reorder); ("--dup", dup);
      ("--split", split) ];
  if stall_ms < 0 then
    failwith (Printf.sprintf "--stall-ms wants milliseconds >= 0, got %d" stall_ms);
  Fleet.Chaos.run
    { Fleet.Chaos.listen_host; listen_port; upstream_host; upstream_port;
      port_file; seed; corrupt; drop; trunc; stall; stall_ms; reorder; dup;
      split };
  0

(* --- serve ------------------------------------------------------------------------ *)

let cmd_serve host port workers queue tenant_quota request_deadline read_timeout
    write_timeout max_body max_header retry_after max_request_jobs dispatch
    dispatch_secret_file verbose =
  handle_errors @@ fun () ->
  if port < 0 || port > 65535 then
    failwith (Printf.sprintf "--port wants 0..65535 (0 = ephemeral), got %d" port);
  if workers < 1 then
    failwith (Printf.sprintf "--workers wants a count >= 1, got %d" workers);
  if queue < 1 then failwith (Printf.sprintf "--queue wants a depth >= 1, got %d" queue);
  if tenant_quota < 1 then
    failwith (Printf.sprintf "--tenant-quota wants a count >= 1, got %d" tenant_quota);
  if max_request_jobs < 1 then
    failwith (Printf.sprintf "--max-request-jobs wants a count >= 1, got %d" max_request_jobs);
  if retry_after < 1 then
    failwith (Printf.sprintf "--retry-after wants seconds >= 1, got %d" retry_after);
  List.iter
    (fun (flag, v) ->
      if v <= 0. then failwith (Printf.sprintf "%s wants a positive duration, got %g" flag v))
    [ ("--read-timeout", read_timeout); ("--write-timeout", write_timeout) ];
  (match request_deadline with
   | Some d when d <= 0. ->
     failwith (Printf.sprintf "--request-deadline wants a positive duration, got %g" d)
   | _ -> ());
  List.iter
    (fun (flag, v) ->
      if v < 1024 then failwith (Printf.sprintf "%s wants at least 1024 bytes, got %d" flag v))
    [ ("--max-body", max_body); ("--max-header", max_header) ];
  let dispatch =
    match dispatch with
    | None -> []
    | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun a -> String.trim a <> "")
      |> List.map (fun a -> parse_hostport "--dispatch" (String.trim a))
  in
  (match dispatch_secret_file with
   | Some p -> ignore (read_secret_file p) (* fail fast, before the first job *)
   | None -> ());
  Serve.Server.run
    { Serve.Server.host; port; workers; queue; tenant_quota; request_deadline;
      read_timeout; write_timeout; max_body_bytes = max_body;
      max_header_bytes = max_header; retry_after; max_request_jobs;
      exec = Sys.executable_name; dispatch;
      dispatch_secret_file; verbose }

(* --- dtb -------------------------------------------------------------------------- *)

let cmd_dtb input output decompile =
  handle_errors @@ fun () ->
  if decompile then begin
    let tree, memreserves = Devicetree.Fdt.decode (read_file input) in
    ignore memreserves;
    let dts = Devicetree.Printer.to_string tree in
    match output with
    | Some path ->
      write_file path dts;
      Fmt.pr "wrote %s@." path;
      0
    | None ->
      print_string dts;
      0
  end
  else begin
    let src = read_file input in
    let ast = Devicetree.Parser.parse ~file:input src in
    let memreserves = Devicetree.Tree.memreserves_of_ast ast in
    let tree = Devicetree.Tree.of_ast ~loader:(loader_for input) ast in
    let blob = Devicetree.Fdt.encode ~memreserves tree in
    let out = match output with Some p -> p | None -> Filename.remove_extension input ^ ".dtb" in
    write_file out blob;
    Fmt.pr "wrote %s (%d bytes)@." out (String.length blob);
    0
  end

(* --- diff ------------------------------------------------------------------------- *)

let cmd_diff a_path b_path =
  handle_errors @@ fun () ->
  let a = load_tree a_path and b = load_tree b_path in
  let changes = Devicetree.Diff.diff a b in
  Fmt.pr "%a@." Devicetree.Diff.pp changes;
  if changes = [] then 0 else 1

(* --- build (project file) ----------------------------------------------------------- *)

(* Project file (YAML):
     core: board.dts
     deltas: [board.deltas, extra.deltas]
     model: board.fm
     schemas: schemas          # directory
     exclusive: [cpus]
     vms:
       - name: vm1
         features: [memory, cpu@0]
     output: out               # optional artifact directory
     jobs: 4                   # optional check-phase worker processes (0 = auto-detect cores)
   Paths are relative to the project file. *)
let cmd_build project_path =
  handle_errors @@ fun () ->
  let dir = Filename.dirname project_path in
  let resolve p = if Filename.is_relative p then Filename.concat dir p else p in
  let y = Schema.Yaml_lite.parse (read_file project_path) in
  let str_field name =
    match Option.bind (Schema.Yaml_lite.find name y) Schema.Yaml_lite.as_string with
    | Some s -> s
    | None -> failwith (Printf.sprintf "project file: missing %S" name)
  in
  let str_list name =
    match Schema.Yaml_lite.find name y with
    | Some (Schema.Yaml_lite.List items) ->
      List.filter_map Schema.Yaml_lite.as_string items
    | Some (Schema.Yaml_lite.Str s) -> [ s ]
    | _ -> []
  in
  let core = load_tree (resolve (str_field "core")) in
  let deltas =
    let files = match str_list "deltas" with [] -> failwith "project file: missing deltas" | fs -> fs in
    let all =
      List.concat_map
        (fun f -> Delta.Parse.parse ~validate_refs:false ~file:f (read_file (resolve f)))
        files
    in
    Delta.Parse.validate all;
    all
  in
  let model = Featuremodel.Parse.parse (read_file (resolve (str_field "model"))) in
  let schemas =
    match Option.bind (Schema.Yaml_lite.find "schemas" y) Schema.Yaml_lite.as_string with
    | Some d -> load_schemas (Some (resolve d))
    | None -> []
  in
  let vms =
    match Schema.Yaml_lite.find "vms" y with
    | Some (Schema.Yaml_lite.List items) ->
      List.map
        (fun item ->
          match Schema.Yaml_lite.find "features" item with
          | Some (Schema.Yaml_lite.List fs) -> List.filter_map Schema.Yaml_lite.as_string fs
          | _ -> failwith "project file: vm entry missing features")
        items
    | _ -> failwith "project file: missing vms"
  in
  let exclusive = str_list "exclusive" in
  let jobs =
    (* 0 = auto-detect online cores, mirroring --jobs 0. *)
    match Option.bind (Schema.Yaml_lite.find "jobs" y) Schema.Yaml_lite.as_int with
    | Some n when Int64.compare n 0L >= 0 -> Int64.to_int n
    | Some n -> failwith (Printf.sprintf "project file: jobs must be >= 0, got %Ld" n)
    | None -> 1
  in
  let outcome =
    Llhsc.Pipeline.run ~exclusive ~jobs ~model ~core ~deltas
      ~schemas_for:(fun _ -> schemas) ~vm_requests:vms ()
  in
  Fmt.pr "%a" Llhsc.Pipeline.pp_outcome outcome;
  (match Option.bind (Schema.Yaml_lite.find "output" y) Schema.Yaml_lite.as_string with
   | Some out when Llhsc.Pipeline.ok outcome ->
     let out = resolve out in
     if not (Sys.file_exists out) then Sys.mkdir out 0o755;
     List.iter
       (fun p ->
         write_file
           (Filename.concat out (p.Llhsc.Pipeline.name ^ ".dts"))
           (Devicetree.Printer.to_string p.Llhsc.Pipeline.tree))
       outcome.Llhsc.Pipeline.products;
     (match
        List.find_opt (fun p -> p.Llhsc.Pipeline.name = "platform") outcome.Llhsc.Pipeline.products
      with
      | Some platform ->
        write_file (Filename.concat out "platform.c")
          (Bao.Platform.to_c (Bao.Platform.of_tree platform.Llhsc.Pipeline.tree))
      | None -> ());
     let vm_products =
       List.filter (fun p -> p.Llhsc.Pipeline.name <> "platform") outcome.Llhsc.Pipeline.products
     in
     write_file (Filename.concat out "config.c")
       (Bao.Config.to_c
          (Bao.Config.of_vm_trees
             (List.map (fun p -> (p.Llhsc.Pipeline.name, p.Llhsc.Pipeline.tree)) vm_products)));
     Fmt.pr "artifacts written to %s@." out
   | Some _ -> Fmt.pr "checks failed; not writing artifacts@."
   | None -> ());
  exit_of_outcome outcome

(* --- overlay ---------------------------------------------------------------------- *)

let cmd_overlay base_path overlay_paths output check =
  handle_errors @@ fun () ->
  let base = load_tree base_path in
  let merged =
    List.fold_left
      (fun base path ->
        try Devicetree.Overlay.apply ~base ~overlay:(load_tree path)
        with Devicetree.Overlay.Error (msg, loc) ->
          Fmt.epr "error: %s: %s (%a)@." path msg Devicetree.Loc.pp loc;
          exit 2)
      base overlay_paths
  in
  let dts = Devicetree.Printer.to_string merged in
  (match output with
   | Some path ->
     write_file path dts;
     Fmt.pr "wrote %s@." path
   | None -> print_string dts);
  if check then begin
    let findings = Llhsc.Semantic.check merged in
    print_findings findings;
    exit_of_findings findings
  end
  else 0

(* --- smt2 ------------------------------------------------------------------------- *)

let cmd_smt2 dts_path schema_dir output =
  handle_errors @@ fun () ->
  let tree = load_tree dts_path in
  let schemas = load_schemas schema_dir in
  let solver = Smt.Solver.create () in
  Schema.Compile.compile_tree solver ~schemas tree;
  let dump = Fmt.str "%a" Smt.Solver.pp_smtlib solver in
  (match output with
   | Some path ->
     write_file path dump;
     Fmt.pr "wrote %s@." path
   | None -> print_string dump);
  0

(* --- sat -------------------------------------------------------------------------- *)

let cmd_sat cnf_path certify unsound =
  handle_errors @@ fun () ->
  let cnf = Sat.Dimacs.parse_file cnf_path in
  let solver, preok = Sat.Dimacs.load ~proof:certify cnf in
  Option.iter (fun spec -> Sat.Solver.inject_unsoundness solver (parse_unsound spec)) unsound;
  let result = if preok then Sat.Solver.solve solver else Sat.Solver.Unsat in
  (match result with
   | Sat.Solver.Sat -> Fmt.pr "s SATISFIABLE@."
   | Sat.Solver.Unsat -> Fmt.pr "s UNSATISFIABLE@."
   | Sat.Solver.Unknown -> Fmt.pr "s UNKNOWN@.");
  if not certify then 0
  else begin
    match result with
    | Sat.Solver.Unknown -> 0 (* no verdict to certify *)
    | Sat.Solver.Sat | Sat.Solver.Unsat -> (
      let proof =
        match Sat.Solver.proof solver with
        | Some p -> p
        | None -> assert false (* enabled via ~proof:certify above *)
      in
      let t0 = Unix.gettimeofday () in
      let checked =
        match result with
        | Sat.Solver.Sat ->
          Sat.Checker.check_sat_model proof (fun l -> Sat.Solver.lit_value solver l)
        | _ -> Sat.Checker.check_proof proof
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
      match checked with
      | Ok steps ->
        Fmt.pr "c certificate: %d steps verified in %.2f ms@." steps ms;
        0
      | Error msg ->
        Fmt.epr "%a@." Diag.pp (Diag.make ~code:"CERT" "uncertified verdict: %s" msg);
        1)
  end

(* --- demo ------------------------------------------------------------------------- *)

let cmd_demo () =
  handle_errors @@ fun () ->
  let module RE = Llhsc.Running_example in
  Fmt.pr "== llhsc demo: the paper's running example ==@.@.";
  let model = RE.feature_model () in
  let env = Featuremodel.Analysis.encode model in
  Fmt.pr "feature model: %d valid products@."
    (Featuremodel.Analysis.count_products env);
  let outcome =
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model ~core:(RE.core_tree ())
      ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
      ~vm_requests:[ RE.vm1_features; RE.vm2_features ] ()
  in
  Fmt.pr "%a@." Llhsc.Pipeline.pp_outcome outcome;
  (match
     List.find_opt (fun p -> p.Llhsc.Pipeline.name = "platform") outcome.Llhsc.Pipeline.products
   with
   | Some platform ->
     Fmt.pr "--- platform.c (Listing 3) ---@.%s@."
       (Bao.Platform.to_c (Bao.Platform.of_tree platform.Llhsc.Pipeline.tree))
   | None -> ());
  let vms =
    List.filter (fun p -> p.Llhsc.Pipeline.name <> "platform") outcome.Llhsc.Pipeline.products
  in
  Fmt.pr "--- config.c (Listing 6) ---@.%s@."
    (Bao.Config.to_c
       (Bao.Config.of_vm_trees
          (List.map (fun p -> (p.Llhsc.Pipeline.name, p.Llhsc.Pipeline.tree)) vms)));
  if Llhsc.Pipeline.ok outcome then 0 else 1

(* --- cmdliner wiring ---------------------------------------------------------------- *)

open Cmdliner

let dts_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.dts")

let schema_dir_arg =
  Arg.(value & opt (some string) None & info [ "schemas" ] ~docv:"DIR" ~doc:"Directory of .yaml binding schemas.")

let certify_arg =
  Arg.(value & flag
       & info [ "certify" ]
           ~doc:"Certify every solver verdict against an independent proof/model \
                 checker; any verdict that fails certification is reported as an \
                 error[CERT] diagnostic and the command exits non-zero.")

let check_cmd =
  let semantic_only =
    Arg.(value & flag & info [ "semantic-only" ] ~doc:"Skip the schema-based syntactic checks.")
  in
  let syntactic_only =
    Arg.(value & flag & info [ "syntactic-only" ] ~doc:"Skip the semantic (address) checks.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a DTS file syntactically and semantically")
    Term.(const cmd_check $ dts_arg $ schema_dir_arg $ semantic_only $ syntactic_only
          $ certify_arg)

let products_cmd =
  let fm = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.fm") in
  let count = Arg.(value & flag & info [ "count" ] ~doc:"Print only the product count.") in
  let dead = Arg.(value & flag & info [ "dead" ] ~doc:"Also report dead features.") in
  let anomalies =
    Arg.(value & flag & info [ "anomalies" ] ~doc:"Report false-optional features and redundant constraints.")
  in
  Cmd.v
    (Cmd.info "products" ~doc:"Analyse a feature model")
    Term.(const cmd_products $ fm $ count $ dead $ anomalies)

let features_arg =
  Arg.(value & opt (list string) [] & info [ "features"; "f" ] ~docv:"F1,F2" ~doc:"Selected features.")

let analyze_cmd =
  let deltas = Arg.(non_empty & opt_all string [] & info [ "deltas" ] ~docv:"FILE.deltas") in
  let fm = Arg.(required & opt (some string) None & info [ "model" ] ~docv:"FILE.fm") in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Static analysis of a delta set against its feature model")
    Term.(const cmd_analyze $ deltas $ fm)

let configure_cmd =
  let fm = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.fm") in
  let decisions =
    Arg.(value & opt_all string [] & info [ "decide"; "d" ] ~docv:"FEATURE[=on|off]"
           ~doc:"Apply a decision (repeatable, in order).")
  in
  Cmd.v
    (Cmd.info "configure" ~doc:"Stepwise configuration with decision propagation")
    Term.(const cmd_configure $ fm $ decisions)

let generate_cmd =
  let core = Arg.(required & opt (some string) None & info [ "core" ] ~docv:"CORE.dts") in
  let deltas = Arg.(required & opt (some string) None & info [ "deltas" ] ~docv:"FILE.deltas") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.dts") in
  let check = Arg.(value & flag & info [ "check" ] ~doc:"Run the semantic checker on the product.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a DTS product from a core and delta modules")
    Term.(const cmd_generate $ core $ deltas $ features_arg $ out $ check)

(* Args shared by `pipeline` and `dispatch` (the fleet dispatcher is the
   same workflow with the local pool swapped for remote workers). *)
let pl_core = Arg.(required & opt (some string) None & info [ "core" ] ~docv:"CORE.dts")
let pl_deltas = Arg.(required & opt (some string) None & info [ "deltas" ] ~docv:"FILE.deltas")
let pl_fm = Arg.(required & opt (some string) None & info [ "model" ] ~docv:"FILE.fm")

let pl_vms =
  Arg.(value & opt_all (list string) [] & info [ "vm" ] ~docv:"F1,F2" ~doc:"Feature selection of one VM (repeatable).")

let pl_exclusive =
  Arg.(value & opt (list string) [] & info [ "exclusive" ] ~docv:"FEATS" ~doc:"Features whose children are exclusive across VMs.")

let pl_out = Arg.(value & opt (some string) None & info [ "out-dir" ] ~docv:"DIR")

let pl_max_conflicts =
  Arg.(value & opt (some int) None & info [ "max-conflicts" ] ~docv:"N"
         ~doc:"Solver budget: cap conflicts per query; exhausted queries report inconclusive.")

let pl_timeout =
  Arg.(value & opt (some float) None & info [ "solver-timeout" ] ~docv:"SECONDS"
         ~doc:"Solver budget: wall-clock deadline per query.")

let pl_retry =
  Arg.(value & opt (some int) None & info [ "retry" ] ~docv:"ATTEMPTS"
         ~doc:"Retry inconclusive (budget-exhausted) solver queries up an \
               escalation ladder of at most $(docv) total attempts: budget \
               x4 per rung with diversified restarts (fresh seed, flipped \
               or randomized phases, alternate VSIDS decay).  Per-attempt \
               statistics are reported for every retried query.")

let pl_journal =
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
         ~doc:"Crash-safe journal: append one fsync'd JSONL record per \
               completed product to $(docv), keyed by a content hash of \
               the run's inputs.  A killed run loses at most the product \
               being checked.")

let pl_resume =
  Arg.(value & flag
       & info [ "resume" ]
           ~doc:"Replay the --journal file: products whose recorded content \
                 hash still matches are skipped (findings replayed \
                 verbatim), stale or missing ones are re-checked.  The \
                 stdout report is byte-identical to an uninterrupted run.")

let pl_unsound =
  Arg.(value & opt (some string) None
       & info [ "unsound" ] ~docv:"KIND:N"
           ~doc:"Testing only: inject a deliberate solver fault every N \
                 queries (drop-lit:N, flip-model:N, mute-proof:N or \
                 force-unknown:N) to exercise certification and \
                 escalation paths.")

let pipeline_cmd =
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Dispatch the per-product check phase across a supervised \
                   pool of $(docv) forked worker processes ($(docv)=0 \
                   auto-detects the number of online CPU cores).  The report \
                   is byte-identical to a sequential run (the merge is \
                   deterministic), the parent remains the sole journal \
                   writer, and a crashed or hung worker's task is reassigned \
                   to a replacement worker.")
  in
  let task_deadline =
    Arg.(value & opt (some float) None
         & info [ "task-deadline" ] ~docv:"SECONDS"
             ~doc:"Supervision: per-task lease for pool workers.  A worker \
                   whose in-flight task outlives $(docv) seconds is killed \
                   and its task reassigned.  Defaults to 32 x \
                   --solver-timeout + 10s when that flag is set, otherwise \
                   no deadline.")
  in
  let max_respawns =
    Arg.(value & opt int 8
         & info [ "max-respawns" ] ~docv:"N"
             ~doc:"Supervision: replace at most $(docv) crashed or killed \
                   pool workers over the whole run (exponential backoff); \
                   once exhausted, remaining tasks finish in-process.")
  in
  let mem_limit =
    Arg.(value & opt (some int) None
         & info [ "mem-limit" ] ~docv:"MIB"
             ~doc:"Resource guard: cap each pool worker's address space at \
                   $(docv) MiB (RLIMIT_AS).  A task that trips the guard \
                   degrades to an error[RESOURCE] diagnostic instead of \
                   taking the checker down.")
  in
  let cpu_limit =
    Arg.(value & opt (some int) None
         & info [ "cpu-limit" ] ~docv:"SECONDS"
             ~doc:"Resource guard: cap each pool worker's CPU time at \
                   $(docv) seconds (RLIMIT_CPU).  A task that trips the \
                   guard degrades to an error[RESOURCE] diagnostic.")
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Run the full llhsc workflow (Fig. 2)")
    Term.(const (cmd_pipeline ?runner:None) $ pl_core $ pl_deltas $ pl_fm $ schema_dir_arg $ pl_vms
          $ pl_exclusive $ pl_out $ pl_max_conflicts $ pl_timeout $ certify_arg
          $ pl_retry $ pl_journal $ pl_resume $ pl_unsound
          $ jobs $ task_deadline $ max_respawns $ mem_limit $ cpu_limit)

let dispatch_cmd =
  let listen =
    Arg.(value & opt string "127.0.0.1:0"
         & info [ "listen" ] ~docv:"HOST:PORT"
             ~doc:"Bind address for worker connections (port 0 picks an \
                   ephemeral port; see --port-file).")
  in
  let min_workers =
    Arg.(value & opt int 1
         & info [ "min-workers" ] ~docv:"N"
             ~doc:"Degradation floor: when fewer than $(docv) workers are \
                   connected (after the --wait-workers grace), remaining \
                   tasks finish in-process so the run always terminates.  \
                   0 waits for workers indefinitely.")
  in
  let wait_workers =
    Arg.(value & opt float 10.
         & info [ "wait-workers" ] ~docv:"SECONDS"
             ~doc:"Registration grace: how long the fleet may stay below \
                   --min-workers before the dispatcher degrades to \
                   in-process checking.")
  in
  let max_inflight =
    Arg.(value & opt int 1
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:"Tasks leased to one worker at a time.")
  in
  let port_file =
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"FILE"
             ~doc:"Write the bound port to $(docv) once listening (workers \
                   can poll it with their own --port-file).")
  in
  let ship =
    Arg.(value & opt_all string []
         & info [ "ship" ] ~docv:"[NAME=]PATH"
             ~doc:"Ship an extra /include/d file to workers under its base \
                   name (or $(b,NAME)).  .dtsi files next to the core are \
                   shipped automatically.")
  in
  let task_deadline =
    Arg.(value & opt (some float) None
         & info [ "task-deadline" ] ~docv:"SECONDS"
             ~doc:"Per-task lease: a worker whose task outlives $(docv) \
                   seconds is presumed hung or partitioned, its connection \
                   dropped and its tasks reassigned.  Defaults to 32 x \
                   --solver-timeout + 10s, else 60s — remote leases always \
                   expire.")
  in
  let secret_file =
    Arg.(value & opt (some string) None
         & info [ "secret-file" ] ~docv:"FILE"
             ~doc:"Shared fleet secret: require every worker to complete a \
                   mutual HMAC-SHA256 challenge-response proving knowledge \
                   of $(docv)'s contents before the run's inputs are \
                   shipped; all later frames carry session-keyed MACs.  \
                   Workers that cannot authenticate are dropped and \
                   counted, never leased a task.")
  in
  let compress =
    Arg.(value & flag
         & info [ "compress" ]
             ~doc:"Ship the run spec LZ77-compressed (dependency-free; \
                   workers detect the encoding automatically).  The spec \
                   hash is always over the uncompressed form.")
  in
  Cmd.v
    (Cmd.info "dispatch"
       ~doc:"Run the pipeline with its check phase sharded over socket workers"
       ~man:
         [ `S Manpage.s_description;
           `P "Runs the same workflow as $(b,pipeline), but dispatches the \
               per-product check tasks to llhsc $(b,worker) processes \
               connected over TCP instead of a local fork pool.  Inputs are \
               shipped to workers in full, so workers need no shared \
               filesystem; results are validated against a spec hash and \
               merged exactly-once (first valid result per task wins), \
               making the stdout report byte-identical to --jobs 1 under \
               any schedule of worker crashes, hangs, disconnects or \
               duplicated results.  If the fleet shrinks below \
               --min-workers, remaining tasks finish in-process — a run \
               that loses every worker still completes." ])
    Term.(const cmd_dispatch $ listen $ min_workers $ wait_workers $ max_inflight
          $ port_file $ ship $ secret_file $ compress $ pl_core $ pl_deltas
          $ pl_fm $ schema_dir_arg $ pl_vms
          $ pl_exclusive $ pl_out $ pl_max_conflicts $ pl_timeout $ certify_arg
          $ pl_retry $ pl_journal $ pl_resume $ pl_unsound $ task_deadline)

let worker_cmd =
  let connect =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"HOST:PORT"
             ~doc:"Dispatcher address.")
  in
  let port_file =
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"FILE"
             ~doc:"Poll the dispatcher's --port-file for the port instead \
                   of naming it in --connect (connects to 127.0.0.1).")
  in
  let max_reconnects =
    Arg.(value & opt int 8
         & info [ "max-reconnects" ] ~docv:"N"
             ~doc:"Give up after $(docv) consecutive failed connections or \
                   broken sessions (exponential backoff between attempts; a \
                   completed handshake resets the budget).")
  in
  let mem_limit =
    Arg.(value & opt (some int) None
         & info [ "mem-limit" ] ~docv:"MIB"
             ~doc:"Resource guard: cap this worker's address space at \
                   $(docv) MiB (RLIMIT_AS), like a fork-pool child's.")
  in
  let cpu_limit =
    Arg.(value & opt (some int) None
         & info [ "cpu-limit" ] ~docv:"SECONDS"
             ~doc:"Resource guard: cap this worker's CPU time at $(docv) \
                   seconds (RLIMIT_CPU).")
  in
  let secret_file =
    Arg.(value & opt (some string) None
         & info [ "secret-file" ] ~docv:"FILE"
             ~doc:"Shared fleet secret: authenticate the dispatcher with a \
                   mutual HMAC-SHA256 challenge-response and refuse specs \
                   from one that cannot prove knowledge of $(docv)'s \
                   contents.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:"Serve check tasks to an llhsc dispatch process"
       ~man:
         [ `S Manpage.s_description;
           `P "Connects to an llhsc $(b,dispatch) process, rebuilds its task \
               list from the shipped inputs, and executes leased tasks until \
               retired (exit 0).  Survives connection loss with \
               jittered exponential-backoff reconnects; exits 1 once \
               --max-reconnects consecutive attempts fail." ])
    Term.(const cmd_worker $ connect $ port_file $ max_reconnects $ mem_limit
          $ cpu_limit $ secret_file)

let chaosproxy_cmd =
  let listen =
    Arg.(value & opt string "127.0.0.1:0"
         & info [ "listen" ] ~docv:"HOST:PORT"
             ~doc:"Bind address for proxied clients (port 0 picks an \
                   ephemeral port; see --port-file).")
  in
  let upstream =
    Arg.(required & opt (some string) None
         & info [ "upstream" ] ~docv:"HOST:PORT"
             ~doc:"Where real connections go (the dispatcher).")
  in
  let port_file =
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"FILE"
             ~doc:"Write the bound port to $(docv) once listening (workers \
                   can poll it with their own --port-file).")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"Seed for the chaos schedule; the same seed injects the \
                   same fault mix.")
  in
  let prob name doc = Arg.(value & opt float 0. & info [ name ] ~docv:"P" ~doc) in
  let corrupt = prob "corrupt" "Per-chunk probability of one flipped byte." in
  let drop = prob "drop" "Per-chunk probability of killing the connection (partition)." in
  let trunc = prob "truncate" "Per-chunk probability of truncating the chunk." in
  let stall = prob "stall" "Per-chunk probability of delaying delivery by --stall-ms." in
  let stall_ms =
    Arg.(value & opt int 100
         & info [ "stall-ms" ] ~docv:"MS" ~doc:"Stall duration in milliseconds.")
  in
  let reorder = prob "reorder" "Per-chunk probability of delivering newer bytes before older ones." in
  let dup = prob "dup" "Per-chunk probability of delivering the chunk twice." in
  let split = prob "split" "Per-chunk probability of splitting the chunk into two writes." in
  Cmd.v
    (Cmd.info "chaosproxy"
       ~doc:"Seeded fault-injecting TCP proxy for fleet testing"
       ~man:
         [ `S Manpage.s_description;
           `P "Relays TCP connections to --upstream while injecting \
               partitions, corruption, truncation, stalls, reordering, \
               duplication and split writes at seeded per-chunk \
               probabilities.  Point llhsc $(b,worker) processes at the \
               proxy and the dispatcher at the other side to rehearse a \
               hostile network: the fleet protocol must degrade every \
               injected fault to dead-worker handling and keep the \
               dispatcher's report byte-identical to a local run." ])
    Term.(const cmd_chaosproxy $ listen $ upstream $ port_file $ seed $ corrupt
          $ drop $ trunc $ stall $ stall_ms $ reorder $ dup $ split)

let dtb_cmd =
  let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUTPUT") in
  let decompile = Arg.(value & flag & info [ "d"; "decompile" ] ~doc:"DTB to DTS.") in
  Cmd.v
    (Cmd.info "dtb" ~doc:"Compile DTS to a flattened DTB, or decompile")
    Term.(const cmd_dtb $ input $ output $ decompile)

let diff_cmd =
  let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"A.dts") in
  let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"B.dts") in
  Cmd.v
    (Cmd.info "diff" ~doc:"Structural diff between two DTS files")
    Term.(const cmd_diff $ a $ b)

let build_cmd =
  let project = Arg.(required & pos 0 (some string) None & info [] ~docv:"PROJECT.yaml") in
  Cmd.v
    (Cmd.info "build" ~doc:"Run the pipeline described by a project file")
    Term.(const cmd_build $ project)

let overlay_cmd =
  let base = Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE.dts") in
  let overlays = Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"OVERLAY.dts...") in
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.dts") in
  let check = Arg.(value & flag & info [ "check" ] ~doc:"Run the semantic checker on the result.") in
  Cmd.v
    (Cmd.info "overlay" ~doc:"Apply DT overlays (dtbo fragments) to a base DTS")
    Term.(const cmd_overlay $ base $ overlays $ output $ check)

let smt2_cmd =
  let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.smt2") in
  Cmd.v
    (Cmd.info "smt2" ~doc:"Export the syntactic constraint problem as SMT-LIB2")
    Term.(const cmd_smt2 $ dts_arg $ schema_dir_arg $ output)

let sat_cmd =
  let cnf = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.cnf") in
  let unsound =
    Arg.(value & opt (some string) None
         & info [ "unsound" ] ~docv:"KIND:N"
             ~doc:"Testing only: inject a deliberate solver unsoundness \
                   (drop-lit:N, flip-model:N or mute-proof:N) so the \
                   certification checker can be shown to catch it.")
  in
  Cmd.v
    (Cmd.info "sat" ~doc:"Solve a DIMACS CNF file (optionally certifying the verdict)")
    Term.(const cmd_sat $ cnf $ certify_arg $ unsound)

let serve_cmd =
  let host =
    Arg.(value & opt string Serve.Server.default_config.Serve.Server.host
         & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.port
         & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Listen port (0 picks an ephemeral port).")
  in
  let workers =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.workers
         & info [ "workers" ] ~docv:"N"
             ~doc:"Maximum concurrently running check jobs.  Each job is a \
                   forked child exec'ing this binary, so a crashed or hung \
                   check never takes the daemon down.")
  in
  let queue =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.queue
         & info [ "queue" ] ~docv:"N"
             ~doc:"Bounded admission queue depth.  A request arriving when \
                   $(docv) jobs already wait is shed immediately with 429 + \
                   Retry-After — the daemon never buffers unbounded work.")
  in
  let tenant_quota =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.tenant_quota
         & info [ "tenant-quota" ] ~docv:"N"
             ~doc:"Maximum in-flight jobs per tenant (the X-Api-Key request \
                   header; requests without one share the \"anonymous\" \
                   tenant).  A tenant at its quota is shed with 429 without \
                   consuming queue space.")
  in
  let request_deadline =
    Arg.(value & opt (some float) Serve.Server.default_config.Serve.Server.request_deadline
         & info [ "request-deadline" ] ~docv:"SECONDS"
             ~doc:"Per-job lease, like the pipeline's --task-deadline one \
                   level up: a job outliving $(docv) seconds has its process \
                   group killed and the client gets 504.")
  in
  let read_timeout =
    Arg.(value & opt float Serve.Server.default_config.Serve.Server.read_timeout
         & info [ "read-timeout" ] ~docv:"SECONDS"
             ~doc:"Slow-loris guard: a connection that has not delivered a \
                   complete request within $(docv) seconds gets 408.")
  in
  let write_timeout =
    Arg.(value & opt float Serve.Server.default_config.Serve.Server.write_timeout
         & info [ "write-timeout" ] ~docv:"SECONDS"
             ~doc:"A response that cannot be flushed within $(docv) seconds \
                   is abandoned and the connection closed.")
  in
  let max_body =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.max_body_bytes
         & info [ "max-body" ] ~docv:"BYTES"
             ~doc:"Request bodies larger than $(docv) bytes are refused with \
                   413, at the Content-Length declaration when possible.")
  in
  let max_header =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.max_header_bytes
         & info [ "max-header" ] ~docv:"BYTES"
             ~doc:"Request header blocks larger than $(docv) bytes are \
                   refused with 431.")
  in
  let retry_after =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.retry_after
         & info [ "retry-after" ] ~docv:"SECONDS"
             ~doc:"Retry-After hint attached to every 429/503 shed response.")
  in
  let max_request_jobs =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.max_request_jobs
         & info [ "max-request-jobs" ] ~docv:"N"
             ~doc:"Clamp on the \"jobs\" field of pipeline request bodies \
                   (each job may fan out onto the supervised shard pool \
                   inside its child).")
  in
  let dispatch =
    Arg.(value & opt (some string) None
         & info [ "dispatch" ] ~docv:"HOST:PORT[,...]"
             ~doc:"Fleet backend: a comma-separated pool of listen \
                   addresses.  Each running pipeline job claims a free \
                   address and is spawned as $(b,llhsc dispatch --listen) \
                   on it, so operator-run $(b,llhsc worker) processes \
                   pointed at the pool execute the tasks.  With no free \
                   address the job falls back to the local fork pool, and \
                   a dispatcher that finds no worker (or cannot bind) \
                   degrades to its in-process sweep — the verdict bytes \
                   never depend on fleet health.  /v1/stats reports \
                   backend_fleet and backend_local counts.")
  in
  let dispatch_secret_file =
    Arg.(value & opt (some string) None
         & info [ "dispatch-secret-file" ] ~docv:"FILE"
             ~doc:"Shared fleet secret passed to each spawned dispatcher \
                   as --secret-file; workers must authenticate before \
                   receiving any work.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Supervision notices on stderr.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the checker as an overload-safe multi-tenant HTTP daemon"
       ~man:
         [ `S Manpage.s_description;
           `P "Serves POST /v1/check (raw DTS body, flags as query \
               parameters) and POST /v1/pipeline (JSON body shipping the \
               core DTS, delta modules, feature model, schemas and VM \
               selections inline), plus GET /healthz, /readyz and \
               /v1/stats.  Each admitted request runs as a forked child of \
               this same binary in a private working directory, so served \
               verdicts are byte-identical to the batch CLI on the same \
               inputs.  SIGTERM drains gracefully: stop accepting, answer \
               every admitted request, exit 0." ])
    Term.(const cmd_serve $ host $ port $ workers $ queue $ tenant_quota
          $ request_deadline $ read_timeout $ write_timeout $ max_body $ max_header
          $ retry_after $ max_request_jobs $ dispatch $ dispatch_secret_file $ verbose)

let journal_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"JOURNAL") in
  let fsck =
    let quiet =
      Arg.(value & flag
           & info [ "q"; "quiet" ] ~doc:"No census on stdout; exit code only.")
    in
    Cmd.v
      (Cmd.info "fsck"
         ~doc:"Check a --journal file: header, per-line CRCs, torn/corrupt \
               census, degradation marker.  Exit 0 clean, 1 recoverable \
               issues, 2 unusable.")
      Term.(const cmd_journal_fsck $ path $ quiet)
  in
  let compact =
    Cmd.v
      (Cmd.info "compact"
         ~doc:"Atomically rewrite a journal to its last-wins entries, \
               dropping torn lines, superseded duplicates and any \
               degradation marker (the explicit recovery step that lets \
               --resume trust a degraded journal again).")
      Term.(const cmd_journal_compact $ path)
  in
  Cmd.group
    (Cmd.info "journal" ~doc:"Inspect and maintain --journal files")
    [ fsck; compact ]

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the paper's running example end to end")
    Term.(const cmd_demo $ const ())

let main_cmd =
  Cmd.group
    (Cmd.info "llhsc" ~version:"1.0.0"
       ~doc:"DeviceTree syntax and semantic checker for static-partitioning hypervisors")
    [ check_cmd; products_cmd; configure_cmd; analyze_cmd; generate_cmd; pipeline_cmd;
      dispatch_cmd; worker_cmd; chaosproxy_cmd; build_cmd; dtb_cmd; diff_cmd;
      overlay_cmd; smt2_cmd; sat_cmd; serve_cmd; journal_cmd; demo_cmd ]

let () = exit (Cmd.eval' main_cmd)
