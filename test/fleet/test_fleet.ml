(* Unit tests for the fleet building blocks: CRC32, the frame codec, the
   shared supervision core, the journal's per-line checksums, and the
   spec's JSON round-trip.  The socket paths themselves are exercised by
   fleet_smoke.ml with real processes. *)

module Util = Llhsc.Util
module Journal = Llhsc.Journal
module Supervise = Llhsc.Supervise
module Json = Llhsc.Json

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- crc32 ------------------------------------------------------------------- *)

let test_crc_known_answer () =
  (* The standard IEEE 802.3 check value. *)
  Alcotest.(check int) "check value" 0xCBF43926 (Util.crc32 "123456789");
  Alcotest.(check int) "empty" 0 (Util.crc32 "")

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let mid = String.length s / 2 in
  let inc =
    Util.crc32_update (Util.crc32_update 0 s 0 mid) s mid (String.length s - mid)
  in
  Alcotest.(check int) "incremental = one-shot" (Util.crc32 s) inc;
  Alcotest.(check bool) "corruption changes crc" true
    (Util.crc32 s <> Util.crc32 (s ^ " "))

(* --- frame codec ------------------------------------------------------------- *)

let next_frame dec =
  match Fleet.Frame.Decoder.next dec with
  | `Frame p -> Some p
  | `Awaiting -> None
  | `Corrupt m -> Alcotest.failf "unexpected corrupt: %s" m

let test_frame_roundtrip () =
  let dec = Fleet.Frame.Decoder.create () in
  let payloads = [ "alpha"; ""; String.make 100_000 'x'; "{\"task\":3}" ] in
  let wire = String.concat "" (List.map Fleet.Frame.encode payloads) in
  (* Feed byte by byte: boundaries must not matter. *)
  let got = ref [] in
  String.iteri
    (fun i _ ->
      Fleet.Frame.Decoder.feed dec wire i 1;
      match next_frame dec with Some p -> got := p :: !got | None -> ())
    wire;
  (* Drain anything completed by the last byte. *)
  let rec drain () =
    match next_frame dec with
    | Some p ->
      got := p :: !got;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "all frames, in order" payloads (List.rev !got)

let test_frame_corruption () =
  let wire = Fleet.Frame.encode "hello fleet" in
  (* Flip one payload byte: checksum must catch it. *)
  let b = Bytes.of_string wire in
  Bytes.set b (String.length wire - 1) '!';
  let dec = Fleet.Frame.Decoder.create () in
  Fleet.Frame.Decoder.feed dec (Bytes.to_string b) 0 (Bytes.length b);
  (match Fleet.Frame.Decoder.next dec with
   | `Corrupt m -> Alcotest.(check bool) "mentions checksum" true (contains m "checksum")
   | `Frame _ | `Awaiting -> Alcotest.fail "corrupt frame accepted");
  (* An absurd declared length is rejected without buffering. *)
  let dec = Fleet.Frame.Decoder.create () in
  Fleet.Frame.Decoder.feed dec "\xff\xff\xff\xff????" 0 8;
  (match Fleet.Frame.Decoder.next dec with
   | `Corrupt m -> Alcotest.(check bool) "mentions size" true (contains m "oversized")
   | `Frame _ | `Awaiting -> Alcotest.fail "oversized frame accepted")

(* --- supervision core -------------------------------------------------------- *)

let test_supervise_first_wins () =
  let st : string Supervise.t = Supervise.create 3 in
  Alcotest.(check bool) "has pending" true (Supervise.has_pending st);
  Alcotest.(check (option int)) "pops in order" (Some 0) (Supervise.next st);
  (match Supervise.resolve st 0 "first" with
   | `Fresh -> ()
   | `Duplicate -> Alcotest.fail "first result flagged duplicate");
  (match Supervise.resolve st 0 "second" with
   | `Duplicate -> ()
   | `Fresh -> Alcotest.fail "duplicate result accepted");
  Alcotest.(check (option string)) "first result kept" (Some "first")
    (Supervise.results st).(0)

let test_supervise_crash_quarantine () =
  let st : unit Supervise.t = Supervise.create 2 in
  ignore (Supervise.next st);
  (match Supervise.record_crash st 0 with
   | `Reassign -> ()
   | _ -> Alcotest.fail "first crash should reassign");
  (* Reassigned to the front of the queue. *)
  Alcotest.(check (option int)) "requeued first" (Some 0) (Supervise.next st);
  (match Supervise.record_crash st 0 with
   | `Quarantine 2 -> ()
   | _ -> Alcotest.fail "second crash should quarantine");
  Alcotest.(check bool) "quarantined" true (Supervise.is_quarantined st 0);
  (* Quarantined tasks are out of the queue but still unresolved. *)
  Alcotest.(check (option int)) "queue skips poison" (Some 1) (Supervise.next st);
  ignore (Supervise.resolve st 1 ());
  Alcotest.(check bool) "pool-side work done" false (Supervise.unfinished st);
  Alcotest.(check (list int)) "sweep list" [ 0 ] (Supervise.unresolved st);
  (* A crash on an already-resolved task is a no-op. *)
  (match Supervise.record_crash st 1 with
   | `Resolved -> ()
   | _ -> Alcotest.fail "crash after resolve should be `Resolved")

let test_lease_clock () =
  let l = Supervise.Lease.create () in
  Supervise.Lease.start l 7 100.0;
  Supervise.Lease.start l 9 101.0;
  Alcotest.(check int) "two leases" 2 (Supervise.Lease.count l);
  Alcotest.(check (list int)) "expired at 103" [ 7 ]
    (List.sort compare (Supervise.Lease.expired l ~deadline:2.5 ~now:103.0));
  (* A heartbeat restarts the clock; one for a non-leased task is ignored. *)
  Supervise.Lease.beat l 7 103.0;
  Supervise.Lease.beat l 42 103.0;
  Alcotest.(check (list int)) "beat deferred expiry" [ 9 ]
    (Supervise.Lease.expired l ~deadline:2.5 ~now:104.0);
  Supervise.Lease.finish l 9;
  Alcotest.(check (list int)) "finish drops" [ 7 ] (Supervise.Lease.tasks l)

(* --- journal per-line checksums ---------------------------------------------- *)

let entry name : Journal.entry =
  { Journal.kind = Journal.Product; name; hash = "h-" ^ name; features = [ "f" ];
    order = []; findings = []; certified = false; cert_failures = 0 }

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let with_tmp f =
  let path = Filename.temp_file "llhsc-journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_journal_checksummed_lines () =
  with_tmp @@ fun path ->
  let sink = Journal.open_ ~path ~inputs_hash:"ih" in
  Journal.record sink (entry "vm1");
  Journal.record sink (entry "vm2");
  Journal.close sink;
  (match read_lines path with
   | [ _header; l1; l2 ] ->
     List.iter
       (fun l ->
         match String.rindex_opt l '\t' with
         | None -> Alcotest.fail "record line has no checksum"
         | Some t ->
           let body = String.sub l 0 t in
           let crc = String.sub l (t + 1) (String.length l - t - 1) in
           Alcotest.(check string) "crc suffix"
             (Printf.sprintf "%08x" (Util.crc32 body)) crc)
       [ l1; l2 ]
   | ls -> Alcotest.failf "expected 3 lines, got %d" (List.length ls));
  let loaded = Journal.load ~path ~inputs_hash:"ih" in
  Alcotest.(check (list string)) "loads back" [ "vm1"; "vm2" ]
    (List.map (fun (e : Journal.entry) -> e.Journal.name) loaded)

let test_journal_corrupt_line_skipped () =
  with_tmp @@ fun path ->
  let sink = Journal.open_ ~path ~inputs_hash:"ih" in
  Journal.record sink (entry "vm1");
  Journal.record sink (entry "vm2");
  Journal.close sink;
  (* Corrupt one byte inside vm1's record body while keeping its old
     checksum: the result is still valid JSON, so only the CRC can tell. *)
  let lines = read_lines path in
  let oc = open_out path in
  List.iter
    (fun l ->
      let l =
        if contains l "vm1" then (
          let b = Bytes.of_string l in
          let i =
            let rec find i = if Bytes.get b i = '1' then i else find (i + 1) in
            find 0
          in
          Bytes.set b i '7';
          Bytes.to_string b)
        else l
      in
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let loaded = Journal.load ~path ~inputs_hash:"ih" in
  Alcotest.(check (list string)) "corrupt record skipped, rest kept" [ "vm2" ]
    (List.map (fun (e : Journal.entry) -> e.Journal.name) loaded)

let test_journal_backward_compat () =
  with_tmp @@ fun path ->
  (* Hand-write an old-format (checksum-less) journal; load must accept it. *)
  let oc = open_out path in
  output_string oc "{\"llhsc-journal\":1,\"inputs\":\"ih\"}\n";
  output_string oc
    "{\"kind\":\"product\",\"name\":\"old\",\"hash\":\"h\",\"features\":[],\
     \"order\":[],\"findings\":[],\"certified\":false,\"cert_failures\":0}\n";
  close_out oc;
  let loaded = Journal.load ~path ~inputs_hash:"ih" in
  Alcotest.(check (list string)) "old lines accepted" [ "old" ]
    (List.map (fun (e : Journal.entry) -> e.Journal.name) loaded)

(* --- spec round-trip ---------------------------------------------------------- *)

let sample_spec =
  { Fleet.Spec.core = { Fleet.Spec.file = "core.dts"; text = "/dts-v1/;\n/ { };\n" };
    deltas = { Fleet.Spec.file = "b.deltas"; text = "" };
    model = "model m\n";
    schemas = [ "s1"; "s2" ];
    files = [ ("inc.dtsi", "/* inc */") ];
    vms = [ [ "a"; "b" ]; [ "c" ] ];
    exclusive = [ "cpus" ];
    certify = true;
    retry = Some 3;
    max_conflicts = None;
    solver_timeout = Some 1.5;
    unsound = None;
    skip = [ "vm2" ] }

let test_spec_roundtrip () =
  let j = Fleet.Spec.to_json sample_spec in
  (match Json.parse (Json.to_string j) with
   | Error e -> Alcotest.failf "spec JSON does not reparse: %s" e
   | Ok j' -> (
     match Fleet.Spec.of_json j' with
     | None -> Alcotest.fail "spec does not decode"
     | Some s ->
       Alcotest.(check bool) "round-trips" true (s = sample_spec);
       Alcotest.(check string) "hash stable" (Fleet.Spec.hash sample_spec)
         (Fleet.Spec.hash s)));
  (* The hash must see every verdict-affecting field. *)
  Alcotest.(check bool) "hash covers certify" true
    (Fleet.Spec.hash sample_spec
    <> Fleet.Spec.hash { sample_spec with Fleet.Spec.certify = false });
  Alcotest.(check bool) "hash covers skip" true
    (Fleet.Spec.hash sample_spec
    <> Fleet.Spec.hash { sample_spec with Fleet.Spec.skip = [] })

let () =
  Alcotest.run "fleet"
    [
      ( "crc32",
        [ Alcotest.test_case "known answer" `Quick test_crc_known_answer;
          Alcotest.test_case "incremental" `Quick test_crc_incremental ] );
      ( "frame",
        [ Alcotest.test_case "roundtrip split reads" `Quick test_frame_roundtrip;
          Alcotest.test_case "corruption" `Quick test_frame_corruption ] );
      ( "supervise",
        [ Alcotest.test_case "first result wins" `Quick test_supervise_first_wins;
          Alcotest.test_case "crash and quarantine" `Quick test_supervise_crash_quarantine;
          Alcotest.test_case "lease clock" `Quick test_lease_clock ] );
      ( "journal-crc",
        [ Alcotest.test_case "lines checksummed" `Quick test_journal_checksummed_lines;
          Alcotest.test_case "corrupt line skipped" `Quick test_journal_corrupt_line_skipped;
          Alcotest.test_case "old format accepted" `Quick test_journal_backward_compat ] );
      ( "spec",
        [ Alcotest.test_case "json roundtrip + hash" `Quick test_spec_roundtrip ] );
    ]
