(* Unit tests for the fleet building blocks: CRC32, the frame codec and
   its session MACs, SHA-256/HMAC against the published vectors, the
   LZ77 spec compressor, the shared supervision core, the journal's
   per-line checksums, and the spec's JSON round-trip — plus qcheck
   properties pushing adversarial bytes through the decoder.  The socket
   paths themselves are exercised by fleet_smoke.ml with real
   processes. *)

module Util = Llhsc.Util
module Journal = Llhsc.Journal
module Supervise = Llhsc.Supervise
module Json = Llhsc.Json
module Hmac = Llhsc.Hmac

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- crc32 ------------------------------------------------------------------- *)

let test_crc_known_answer () =
  (* The standard IEEE 802.3 check value. *)
  Alcotest.(check int) "check value" 0xCBF43926 (Util.crc32 "123456789");
  Alcotest.(check int) "empty" 0 (Util.crc32 "")

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let mid = String.length s / 2 in
  let inc =
    Util.crc32_update (Util.crc32_update 0 s 0 mid) s mid (String.length s - mid)
  in
  Alcotest.(check int) "incremental = one-shot" (Util.crc32 s) inc;
  Alcotest.(check bool) "corruption changes crc" true
    (Util.crc32 s <> Util.crc32 (s ^ " "))

(* --- frame codec ------------------------------------------------------------- *)

let next_frame dec =
  match Fleet.Frame.Decoder.next dec with
  | `Frame p -> Some p
  | `Awaiting -> None
  | `Corrupt m -> Alcotest.failf "unexpected corrupt: %s" m

let test_frame_roundtrip () =
  let dec = Fleet.Frame.Decoder.create () in
  let payloads = [ "alpha"; ""; String.make 100_000 'x'; "{\"task\":3}" ] in
  let wire = String.concat "" (List.map Fleet.Frame.encode payloads) in
  (* Feed byte by byte: boundaries must not matter. *)
  let got = ref [] in
  String.iteri
    (fun i _ ->
      Fleet.Frame.Decoder.feed dec wire i 1;
      match next_frame dec with Some p -> got := p :: !got | None -> ())
    wire;
  (* Drain anything completed by the last byte. *)
  let rec drain () =
    match next_frame dec with
    | Some p ->
      got := p :: !got;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "all frames, in order" payloads (List.rev !got)

let test_frame_corruption () =
  let wire = Fleet.Frame.encode "hello fleet" in
  (* Flip one payload byte: checksum must catch it. *)
  let b = Bytes.of_string wire in
  Bytes.set b (String.length wire - 1) '!';
  let dec = Fleet.Frame.Decoder.create () in
  Fleet.Frame.Decoder.feed dec (Bytes.to_string b) 0 (Bytes.length b);
  (match Fleet.Frame.Decoder.next dec with
   | `Corrupt m -> Alcotest.(check bool) "mentions checksum" true (contains m "checksum")
   | `Frame _ | `Awaiting -> Alcotest.fail "corrupt frame accepted");
  (* An absurd declared length is rejected without buffering. *)
  let dec = Fleet.Frame.Decoder.create () in
  Fleet.Frame.Decoder.feed dec "\xff\xff\xff\xff????" 0 8;
  (match Fleet.Frame.Decoder.next dec with
   | `Corrupt m -> Alcotest.(check bool) "mentions size" true (contains m "oversized")
   | `Frame _ | `Awaiting -> Alcotest.fail "oversized frame accepted")

(* --- sha256 / hmac ----------------------------------------------------------- *)

let test_sha256_known () =
  (* FIPS 180-4 / NIST CAVP vectors. *)
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Hmac.to_hex (Hmac.sha256 "abc"));
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Hmac.to_hex (Hmac.sha256 ""));
  (* 56 bytes forces the two-block padding path. *)
  Alcotest.(check string) "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Hmac.to_hex (Hmac.sha256 "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  (* A million 'a's exercises the length counter across many blocks. *)
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Hmac.to_hex (Hmac.sha256 (String.make 1_000_000 'a')))

let test_hmac_rfc4231 () =
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.to_hex (Hmac.hmac ~key:(String.make 20 '\x0b') "Hi There"));
  Alcotest.(check string) "case 2 (short key)"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.to_hex (Hmac.hmac ~key:"Jefe" "what do ya want for nothing?"));
  (* Key longer than the block size must be hashed first. *)
  Alcotest.(check string) "case 6 (long key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.to_hex
       (Hmac.hmac ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_constant_time_equal () =
  Alcotest.(check bool) "equal" true (Hmac.equal "abcd" "abcd");
  Alcotest.(check bool) "differs" false (Hmac.equal "abcd" "abce");
  Alcotest.(check bool) "first byte differs" false (Hmac.equal "xbcd" "abcd");
  Alcotest.(check bool) "length differs" false (Hmac.equal "abc" "abcd");
  Alcotest.(check bool) "empty" true (Hmac.equal "" "");
  Alcotest.(check int) "nonce is 32 hex chars" 32 (String.length (Hmac.nonce ()));
  Alcotest.(check bool) "nonces differ" true (Hmac.nonce () <> Hmac.nonce ())

(* --- session MACs ------------------------------------------------------------ *)

let test_seal_unseal () =
  let key = Hmac.sha256 "session key" in
  let sealed = Fleet.Frame.seal ~key ~seq:7 "payload bytes" in
  Alcotest.(check (option string)) "roundtrip" (Some "payload bytes")
    (Fleet.Frame.unseal ~key ~seq:7 sealed);
  Alcotest.(check (option string)) "empty body" (Some "")
    (Fleet.Frame.unseal ~key ~seq:0 (Fleet.Frame.seal ~key ~seq:0 ""));
  (* A replayed or reordered frame carries the wrong sequence number. *)
  Alcotest.(check (option string)) "wrong seq" None
    (Fleet.Frame.unseal ~key ~seq:8 sealed);
  Alcotest.(check (option string)) "wrong key" None
    (Fleet.Frame.unseal ~key:(Hmac.sha256 "other") ~seq:7 sealed);
  let b = Bytes.of_string sealed in
  Bytes.set b (Bytes.length b - 1) 'X';
  Alcotest.(check (option string)) "tampered body" None
    (Fleet.Frame.unseal ~key ~seq:7 (Bytes.to_string b));
  let b = Bytes.of_string sealed in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
  Alcotest.(check (option string)) "tampered mac" None
    (Fleet.Frame.unseal ~key ~seq:7 (Bytes.to_string b));
  Alcotest.(check (option string)) "payload shorter than a MAC" None
    (Fleet.Frame.unseal ~key ~seq:0 "short")

(* --- lz77 + base64 ----------------------------------------------------------- *)

let lz_roundtrip s =
  match Fleet.Lz.decompress (Fleet.Lz.compress s) with
  | Some s' -> Alcotest.(check string) "roundtrip" s s'
  | None -> Alcotest.fail "compressed output does not decompress"

let test_lz_known () =
  List.iter lz_roundtrip
    [ ""; "a"; "abcabcabcabcabcabc"; String.make 300_000 'x';
      "the quick brown fox jumps over the lazy dog" ];
  (* A spec-shaped repetitive payload must actually shrink. *)
  let spec =
    String.concat ""
      (List.init 200 (fun i ->
           Printf.sprintf "{\"vm\":[\"memory\",\"cpu@%d\",\"uart@20000000\"]}" i))
  in
  Alcotest.(check bool) "repetitive input shrinks >2x" true
    (String.length (Fleet.Lz.compress spec) * 2 < String.length spec);
  (* Truncated stream: a match token with its distance bytes cut off. *)
  Alcotest.(check (option string)) "truncated stream rejected" None
    (Fleet.Lz.decompress "\x80");
  Alcotest.(check (option string)) "b64 roundtrip" (Some "any + carnal pleasure.")
    (Fleet.Lz.of_base64 (Fleet.Lz.to_base64 "any + carnal pleasure."));
  Alcotest.(check (option string)) "b64 garbage rejected" None
    (Fleet.Lz.of_base64 "!!!!")

let prop_lz_roundtrip_random =
  QCheck.Test.make ~name:"lz roundtrip (random bytes)" ~count:300 QCheck.string
    (fun s -> Fleet.Lz.decompress (Fleet.Lz.compress s) = Some s)

(* Repetitive inputs drive the match-emitting paths (random bytes almost
   never produce a 4-byte repeat). *)
let repetitive_string =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "<%d bytes> %S" (String.length s) s)
    QCheck.Gen.(
      map
        (fun parts ->
          String.concat ""
            (List.concat_map (fun (s, n) -> List.init n (fun _ -> s)) parts))
        (list_size (int_range 0 30)
           (pair (string_size (int_range 0 12)) (int_range 1 60))))

let prop_lz_roundtrip_repetitive =
  QCheck.Test.make ~name:"lz roundtrip (repetitive)" ~count:300 repetitive_string
    (fun s -> Fleet.Lz.decompress (Fleet.Lz.compress s) = Some s)

let prop_lz_decompress_total =
  QCheck.Test.make ~name:"lz decompress never raises" ~count:500 QCheck.string
    (fun s ->
      match Fleet.Lz.decompress s with Some _ | None -> true)

(* --- adversarial frames ------------------------------------------------------ *)

(* Satellite of the trust work: whatever bytes arrive — garbage,
   truncations, bit flips, absurd lengths, MAC tampering — the decoder
   must neither raise nor hand back a payload the MAC layer accepts. *)

let drain_frames wire =
  let dec = Fleet.Frame.Decoder.create () in
  Fleet.Frame.Decoder.feed dec wire 0 (String.length wire);
  let rec go acc =
    match Fleet.Frame.Decoder.next dec with
    | `Frame p -> go (p :: acc)
    | `Awaiting | `Corrupt _ -> List.rev acc
  in
  go []

let adversarial_input =
  QCheck.make
    ~print:(fun (payload, mode, a, b) ->
      Printf.sprintf "mode %d, %d payload bytes, a=%d b=%d" mode
        (String.length payload) a b)
    QCheck.Gen.(
      map
        (fun ((payload, mode), (a, b)) -> (payload, mode, a, b))
        (pair (pair (string_size (int_range 0 200)) (int_range 0 4)) (pair nat nat)))

let prop_adversarial_frames =
  QCheck.Test.make ~name:"adversarial frames: no crash, no accepted forgery"
    ~count:500 adversarial_input (fun (payload, mode, a, b) ->
      let key = Hmac.sha256 "adversarial-key" in
      let flip s i mask =
        let by = Bytes.of_string s in
        Bytes.set by i (Char.chr (Char.code (Bytes.get by i) lxor mask));
        Bytes.to_string by
      in
      let mask = 1 + (b mod 255) in
      let wire =
        match mode with
        | 0 -> payload (* raw garbage *)
        | 1 ->
          let w = Fleet.Frame.encode payload in
          String.sub w 0 (a mod String.length w) (* truncated frame *)
        | 2 ->
          let w = Fleet.Frame.encode payload in
          flip w (a mod String.length w) mask (* one flipped byte *)
        | 3 -> "\xff\xff\xff\xff" ^ payload (* absurd declared length *)
        | _ ->
          (* Valid frame around a MAC-tampered sealed payload. *)
          let sealed = Fleet.Frame.seal ~key ~seq:3 payload in
          Fleet.Frame.encode (flip sealed (a mod Fleet.Frame.mac_len) mask)
      in
      let frames = drain_frames wire in
      match mode with
      | 4 -> (
        (* The frame itself is intact, so it decodes — but the MAC layer
           must refuse it (and accept the untampered original). *)
        Fleet.Frame.unseal ~key ~seq:3 (Fleet.Frame.seal ~key ~seq:3 payload)
        = Some payload
        &&
        match frames with
        | [ f ] -> Fleet.Frame.unseal ~key ~seq:3 f = None
        | _ -> false)
      | _ ->
        (* Corrupted or truncated wire bytes never produce a frame (a
           chance CRC collision is a 2^-32 event). *)
        frames = [])

(* --- worker backoff ----------------------------------------------------------- *)

let test_backoff_bounds () =
  for seed = 1 to 50 do
    for attempt = 1 to 12 do
      let base = Float.min 5.0 (0.2 *. (2. ** float_of_int (attempt - 1))) in
      let d = Fleet.Worker.backoff_delay ~seed ~attempt in
      if d < (0.75 *. base) -. 1e-9 || d >= (1.25 *. base) +. 1e-9 then
        Alcotest.failf "seed %d attempt %d: %g outside [%g, %g)" seed attempt d
          (0.75 *. base) (1.25 *. base)
    done
  done;
  (* The jitter must actually depend on the seed (no thundering herd). *)
  let ds =
    List.init 20 (fun seed -> Fleet.Worker.backoff_delay ~seed:(seed + 1) ~attempt:5)
  in
  Alcotest.(check bool) "seed-dependent" true
    (List.exists (fun d -> d <> List.hd ds) ds)

(* --- supervision core -------------------------------------------------------- *)

let test_supervise_first_wins () =
  let st : string Supervise.t = Supervise.create 3 in
  Alcotest.(check bool) "has pending" true (Supervise.has_pending st);
  Alcotest.(check (option int)) "pops in order" (Some 0) (Supervise.next st);
  (match Supervise.resolve st 0 "first" with
   | `Fresh -> ()
   | `Duplicate -> Alcotest.fail "first result flagged duplicate");
  (match Supervise.resolve st 0 "second" with
   | `Duplicate -> ()
   | `Fresh -> Alcotest.fail "duplicate result accepted");
  Alcotest.(check (option string)) "first result kept" (Some "first")
    (Supervise.results st).(0)

let test_supervise_crash_quarantine () =
  let st : unit Supervise.t = Supervise.create 2 in
  ignore (Supervise.next st);
  (match Supervise.record_crash st 0 with
   | `Reassign -> ()
   | _ -> Alcotest.fail "first crash should reassign");
  (* Reassigned to the front of the queue. *)
  Alcotest.(check (option int)) "requeued first" (Some 0) (Supervise.next st);
  (match Supervise.record_crash st 0 with
   | `Quarantine 2 -> ()
   | _ -> Alcotest.fail "second crash should quarantine");
  Alcotest.(check bool) "quarantined" true (Supervise.is_quarantined st 0);
  (* Quarantined tasks are out of the queue but still unresolved. *)
  Alcotest.(check (option int)) "queue skips poison" (Some 1) (Supervise.next st);
  ignore (Supervise.resolve st 1 ());
  Alcotest.(check bool) "pool-side work done" false (Supervise.unfinished st);
  Alcotest.(check (list int)) "sweep list" [ 0 ] (Supervise.unresolved st);
  (* A crash on an already-resolved task is a no-op. *)
  (match Supervise.record_crash st 1 with
   | `Resolved -> ()
   | _ -> Alcotest.fail "crash after resolve should be `Resolved")

let test_lease_clock () =
  let l = Supervise.Lease.create () in
  Supervise.Lease.start l 7 100.0;
  Supervise.Lease.start l 9 101.0;
  Alcotest.(check int) "two leases" 2 (Supervise.Lease.count l);
  Alcotest.(check (list int)) "expired at 103" [ 7 ]
    (List.sort compare (Supervise.Lease.expired l ~deadline:2.5 ~now:103.0));
  (* A heartbeat restarts the clock; one for a non-leased task is ignored. *)
  Supervise.Lease.beat l 7 103.0;
  Supervise.Lease.beat l 42 103.0;
  Alcotest.(check (list int)) "beat deferred expiry" [ 9 ]
    (Supervise.Lease.expired l ~deadline:2.5 ~now:104.0);
  Supervise.Lease.finish l 9;
  Alcotest.(check (list int)) "finish drops" [ 7 ] (Supervise.Lease.tasks l)

(* --- journal per-line checksums ---------------------------------------------- *)

let entry name : Journal.entry =
  { Journal.kind = Journal.Product; name; hash = "h-" ^ name; features = [ "f" ];
    order = []; findings = []; certified = false; cert_failures = 0 }

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let with_tmp f =
  let path = Filename.temp_file "llhsc-journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_journal_checksummed_lines () =
  with_tmp @@ fun path ->
  let sink = Journal.open_ ~path ~inputs_hash:"ih" in
  Journal.record sink (entry "vm1");
  Journal.record sink (entry "vm2");
  Journal.close sink;
  (match read_lines path with
   | [ _header; l1; l2 ] ->
     List.iter
       (fun l ->
         match String.rindex_opt l '\t' with
         | None -> Alcotest.fail "record line has no checksum"
         | Some t ->
           let body = String.sub l 0 t in
           let crc = String.sub l (t + 1) (String.length l - t - 1) in
           Alcotest.(check string) "crc suffix"
             (Printf.sprintf "%08x" (Util.crc32 body)) crc)
       [ l1; l2 ]
   | ls -> Alcotest.failf "expected 3 lines, got %d" (List.length ls));
  let loaded = Journal.load ~path ~inputs_hash:"ih" in
  Alcotest.(check (list string)) "loads back" [ "vm1"; "vm2" ]
    (List.map (fun (e : Journal.entry) -> e.Journal.name) loaded)

let test_journal_corrupt_line_skipped () =
  with_tmp @@ fun path ->
  let sink = Journal.open_ ~path ~inputs_hash:"ih" in
  Journal.record sink (entry "vm1");
  Journal.record sink (entry "vm2");
  Journal.close sink;
  (* Corrupt one byte inside vm1's record body while keeping its old
     checksum: the result is still valid JSON, so only the CRC can tell. *)
  let lines = read_lines path in
  let oc = open_out path in
  List.iter
    (fun l ->
      let l =
        if contains l "vm1" then (
          let b = Bytes.of_string l in
          let i =
            let rec find i = if Bytes.get b i = '1' then i else find (i + 1) in
            find 0
          in
          Bytes.set b i '7';
          Bytes.to_string b)
        else l
      in
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let loaded = Journal.load ~path ~inputs_hash:"ih" in
  Alcotest.(check (list string)) "corrupt record skipped, rest kept" [ "vm2" ]
    (List.map (fun (e : Journal.entry) -> e.Journal.name) loaded)

let test_journal_backward_compat () =
  with_tmp @@ fun path ->
  (* Hand-write an old-format (checksum-less) journal; load must accept it. *)
  let oc = open_out path in
  output_string oc "{\"llhsc-journal\":1,\"inputs\":\"ih\"}\n";
  output_string oc
    "{\"kind\":\"product\",\"name\":\"old\",\"hash\":\"h\",\"features\":[],\
     \"order\":[],\"findings\":[],\"certified\":false,\"cert_failures\":0}\n";
  close_out oc;
  let loaded = Journal.load ~path ~inputs_hash:"ih" in
  Alcotest.(check (list string)) "old lines accepted" [ "old" ]
    (List.map (fun (e : Journal.entry) -> e.Journal.name) loaded)

(* --- spec round-trip ---------------------------------------------------------- *)

let sample_spec =
  { Fleet.Spec.core = { Fleet.Spec.file = "core.dts"; text = "/dts-v1/;\n/ { };\n" };
    deltas = { Fleet.Spec.file = "b.deltas"; text = "" };
    model = "model m\n";
    schemas = [ "s1"; "s2" ];
    files = [ ("inc.dtsi", "/* inc */") ];
    vms = [ [ "a"; "b" ]; [ "c" ] ];
    exclusive = [ "cpus" ];
    certify = true;
    retry = Some 3;
    max_conflicts = None;
    solver_timeout = Some 1.5;
    unsound = None;
    skip = [ "vm2" ] }

let test_spec_roundtrip () =
  let j = Fleet.Spec.to_json sample_spec in
  (match Json.parse (Json.to_string j) with
   | Error e -> Alcotest.failf "spec JSON does not reparse: %s" e
   | Ok j' -> (
     match Fleet.Spec.of_json j' with
     | None -> Alcotest.fail "spec does not decode"
     | Some s ->
       Alcotest.(check bool) "round-trips" true (s = sample_spec);
       Alcotest.(check string) "hash stable" (Fleet.Spec.hash sample_spec)
         (Fleet.Spec.hash s)));
  (* The hash must see every verdict-affecting field. *)
  Alcotest.(check bool) "hash covers certify" true
    (Fleet.Spec.hash sample_spec
    <> Fleet.Spec.hash { sample_spec with Fleet.Spec.certify = false });
  Alcotest.(check bool) "hash covers skip" true
    (Fleet.Spec.hash sample_spec
    <> Fleet.Spec.hash { sample_spec with Fleet.Spec.skip = [] })

(* --- bandwidth-aware setup ---------------------------------------------------- *)

let test_setup_choice () =
  let h = Fleet.Spec.hash sample_spec in
  Alcotest.(check bool) "cold cache ships" true
    (Fleet.Dispatch.setup_choice ~cached:[] ~spec_hash:h = `Ship);
  Alcotest.(check bool) "other hash ships" true
    (Fleet.Dispatch.setup_choice ~cached:[ "deadbeef" ] ~spec_hash:h = `Ship);
  Alcotest.(check bool) "warm cache skips the transfer" true
    (Fleet.Dispatch.setup_choice ~cached:[ "deadbeef"; h ] ~spec_hash:h = `Cached)

let test_msg_setup_cached_wire () =
  let h = Fleet.Spec.hash sample_spec in
  let full = Json.to_string (Json.Obj [ ("setup", Fleet.Spec.to_json sample_spec);
                                        ("hash", Json.Str h) ]) in
  match Json.parse (Fleet.Dispatch.msg_setup_cached h) with
  | Error e -> Alcotest.failf "cached setup does not parse: %s" e
  | Ok j ->
    Alcotest.(check (option string)) "carries the spec hash" (Some h)
      (Option.bind (Json.member "hash" j) Json.to_str);
    (match Json.member "setup" j with
    | Some sj ->
      Alcotest.(check bool) "marked cached" true
        (Json.member "cached" sj = Some (Json.Bool true));
      Alcotest.(check bool) "no spec body shipped" true
        (Fleet.Spec.of_json sj = None)
    | None -> Alcotest.fail "cached setup lacks a setup member");
    Alcotest.(check bool) "materially smaller than the full setup" true
      (String.length (Fleet.Dispatch.msg_setup_cached h) * 4 < String.length full)

let () =
  Alcotest.run "fleet"
    [
      ( "crc32",
        [ Alcotest.test_case "known answer" `Quick test_crc_known_answer;
          Alcotest.test_case "incremental" `Quick test_crc_incremental ] );
      ( "hmac",
        [ Alcotest.test_case "sha256 vectors" `Quick test_sha256_known;
          Alcotest.test_case "rfc 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "constant-time equal + nonce" `Quick
            test_constant_time_equal ] );
      ( "frame",
        [ Alcotest.test_case "roundtrip split reads" `Quick test_frame_roundtrip;
          Alcotest.test_case "corruption" `Quick test_frame_corruption;
          Alcotest.test_case "seal/unseal" `Quick test_seal_unseal;
          QCheck_alcotest.to_alcotest prop_adversarial_frames ] );
      ( "lz",
        [ Alcotest.test_case "known inputs + base64" `Quick test_lz_known;
          QCheck_alcotest.to_alcotest prop_lz_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_lz_roundtrip_repetitive;
          QCheck_alcotest.to_alcotest prop_lz_decompress_total ] );
      ( "backoff",
        [ Alcotest.test_case "jitter bounds" `Quick test_backoff_bounds ] );
      ( "supervise",
        [ Alcotest.test_case "first result wins" `Quick test_supervise_first_wins;
          Alcotest.test_case "crash and quarantine" `Quick test_supervise_crash_quarantine;
          Alcotest.test_case "lease clock" `Quick test_lease_clock ] );
      ( "journal-crc",
        [ Alcotest.test_case "lines checksummed" `Quick test_journal_checksummed_lines;
          Alcotest.test_case "corrupt line skipped" `Quick test_journal_corrupt_line_skipped;
          Alcotest.test_case "old format accepted" `Quick test_journal_backward_compat ] );
      ( "spec",
        [ Alcotest.test_case "json roundtrip + hash" `Quick test_spec_roundtrip ] );
      ( "setup-cache",
        [ Alcotest.test_case "choice policy" `Quick test_setup_choice;
          Alcotest.test_case "cached setup wire shape" `Quick
            test_msg_setup_cached_wire ] );
    ]
