(* End-to-end smoke harness for fleet mode: a real dispatcher and real
   worker processes on a loopback socket, driven through the fault
   schedule the issue demands —

     - a healthy 3-worker fleet, byte-identical to --jobs 1;
     - workers that die mid-task, hang after heartbeating, delay their
       result past the lease deadline, drop the connection and
       reconnect, and send duplicate results;
     - a fleet that loses every worker (and one that never had any),
       finishing via the in-process fallback with exit 0;
     - --certify/--retry and --journal/--resume variants.

   Every schedule must exit 0 with a report byte-identical to the
   single-process baseline.  Usage: fleet_smoke.exe LLHSC_BINARY FIXTURES_DIR *)

let absolute p = if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
let llhsc = absolute Sys.argv.(1)
let fixtures = absolute Sys.argv.(2)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt
let say fmt = Printf.ksprintf (fun m -> print_endline ("# " ^ m); flush stdout) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let tmp_root =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llhsc-fleet-smoke-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  at_exit (fun () -> rm_rf dir);
  dir

let contains_line ~needle path =
  let body = try read_file path with Sys_error _ -> "" in
  let hl = String.length body and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub body i nl = needle || go (i + 1)) in
  nl > 0 && go 0

(* --- process management ------------------------------------------------------- *)

let spawn ?(env = []) ~out ~err args =
  let fd_out = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let fd_err = Unix.openfile err [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let full_env = Array.append (Unix.environment ()) (Array.of_list env) in
  let pid =
    Unix.create_process_env llhsc
      (Array.of_list (llhsc :: args))
      full_env Unix.stdin fd_out fd_err
  in
  Unix.close fd_out;
  Unix.close fd_err;
  pid

let wait_exit ~what pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> fail "%s died on signal %d" what s

(* Reap a worker that should be exiting on its own (retire, or reconnect
   exhaustion once the dispatcher is gone); SIGKILL stragglers — some
   schedules hang a worker on purpose. *)
let reap pid =
  let rec poll tries =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ when tries > 0 ->
      Unix.sleepf 0.1;
      poll (tries - 1)
    | 0, _ ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid)
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  poll 50

let run_blocking ?(env = []) ~out ~err args =
  wait_exit ~what:(List.nth args 0) (spawn ~env ~out ~err args)

(* --- fixture ------------------------------------------------------------------ *)

let pipeline_args =
  [ "--core"; Filename.concat fixtures "custom-sbc.dts";
    "--deltas"; Filename.concat fixtures "custom-sbc.deltas";
    "--model"; Filename.concat fixtures "custom-sbc.fm";
    "--schemas"; Filename.concat fixtures "schemas";
    "--vm"; "memory,cpu@0,uart@20000000,uart@30000000,veth0";
    "--vm"; "memory,cpu@1,uart@20000000,uart@30000000,veth1";
    "--exclusive"; "cpus" ]

let scenario_dir name =
  let dir = Filename.concat tmp_root name in
  Unix.mkdir dir 0o700;
  dir

(* Single-process reference runs. *)
let baseline ~name extra =
  let dir = scenario_dir name in
  let out = Filename.concat dir "report.txt" in
  let err = Filename.concat dir "err.txt" in
  let code =
    run_blocking ~out ~err (("pipeline" :: pipeline_args) @ ("--jobs" :: "1" :: extra))
  in
  if code <> 0 then fail "%s baseline exited %d:\n%s" name code (read_file err);
  read_file out

let wait_port_file path =
  let rec go tries =
    let ready =
      match open_in path with
      | exception Sys_error _ -> false
      | ic ->
        let ok = match input_line ic with _ -> true | exception End_of_file -> false in
        close_in ic;
        ok
    in
    if ready then ()
    else if tries = 0 then fail "dispatcher never wrote %s" path
    else begin
      Unix.sleepf 0.1;
      go (tries - 1)
    end
  in
  go 100

(* Run one fleet schedule: a dispatcher plus one worker per element of
   [workers] (each element is that worker's extra environment).  Returns
   (dispatcher exit code, report path, dispatcher stderr path, worker pids). *)
let fleet ~name ?(dispatch_flags = []) ?(worker_flags = [ "--max-reconnects"; "3" ])
    ?(pipeline = pipeline_args) ~workers () =
  say "schedule: %s" name;
  let dir = scenario_dir name in
  let pf = Filename.concat dir "port" in
  let out = Filename.concat dir "report.txt" in
  let err = Filename.concat dir "dispatch.err" in
  let dpid =
    spawn ~out ~err
      (("dispatch" :: "--listen" :: "127.0.0.1:0" :: "--port-file" :: pf
        :: dispatch_flags)
      @ pipeline)
  in
  wait_port_file pf;
  let wpids =
    List.mapi
      (fun i env ->
        spawn ~env
          ~out:(Filename.concat dir (Printf.sprintf "w%d.out" i))
          ~err:(Filename.concat dir (Printf.sprintf "w%d.err" i))
          ([ "worker"; "--port-file"; pf ] @ worker_flags))
      workers
  in
  let code = wait_exit ~what:"dispatcher" dpid in
  (code, out, err, wpids)

(* --- fleet trust fixtures ----------------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let secret_file =
  let path = Filename.concat tmp_root "fleet.secret" in
  write_file path "smoke-shared-secret\n";
  path

let wrong_secret_file =
  let path = Filename.concat tmp_root "wrong.secret" in
  write_file path "a-different-secret\n";
  path

let read_port path = String.trim (read_file path)

let check ~name ~base (code, out, err, wpids) =
  if code <> 0 then fail "%s: dispatcher exited %d:\n%s" name code (read_file err);
  let got = read_file out in
  if got <> base then
    fail "%s: fleet report differs from --jobs 1 baseline\n--- fleet ---\n%s--- baseline ---\n%s"
      name got base;
  List.iter reap wpids;
  err

let expect_notice ~name err needle =
  if not (contains_line ~needle err) then
    fail "%s: dispatcher stderr is missing %S:\n%s" name needle (read_file err)

(* --- schedules ---------------------------------------------------------------- *)

let () =
  say "baseline: pipeline --jobs 1";
  let base = baseline ~name:"base" [] in

  (* Healthy fleet: three workers, all retired with exit 0. *)
  let code, out, err, wpids = fleet ~name:"healthy-3" ~workers:[ []; []; [] ] () in
  ignore (check ~name:"healthy-3" ~base (code, out, err, []));
  List.iter
    (fun pid ->
      match wait_exit ~what:"worker" pid with
      | 0 -> ()
      | c -> fail "healthy-3: retired worker exited %d, want 0" c)
    wpids;

  (* The sole worker kills itself mid-task: its lease crashes the task
     back into the queue, and with nobody left past the grace period the
     dispatcher finishes in-process. *)
  let r =
    fleet ~name:"kill"
      ~dispatch_flags:[ "--wait-workers"; "3" ]
      ~workers:[ [ "LLHSC_FAULT_KILL_WORKER=1" ] ] ()
  in
  let err = check ~name:"kill" ~base r in
  expect_notice ~name:"kill" err "reassigning";
  expect_notice ~name:"kill" err "in-process";

  (* The sole worker heartbeats a task and then hangs forever: the lease
     deadline must expire it, drop the worker, and finish in-process. *)
  let r =
    fleet ~name:"hang"
      ~dispatch_flags:[ "--wait-workers"; "3"; "--task-deadline"; "1" ]
      ~workers:[ [ "LLHSC_FAULT_HANG_WORKER=1" ] ] ()
  in
  let err = check ~name:"hang" ~base r in
  expect_notice ~name:"hang" err "deadline";

  (* The sole worker computes its result but sits on it past the
     deadline: the dispatcher reassigns, and the late result lands on a
     closed socket (EPIPE, not a fatal SIGPIPE). *)
  let r =
    fleet ~name:"delay"
      ~dispatch_flags:[ "--wait-workers"; "3"; "--task-deadline"; "1" ]
      ~workers:[ [ "LLHSC_FAULT_DELAY_RESULT_WORKER=1" ] ] ()
  in
  let err = check ~name:"delay" ~base r in
  expect_notice ~name:"delay" err "deadline";

  (* Connection drop + duplicate result on one worker: it must reconnect
     (long grace keeps the floor from tripping), redo the crashed task,
     and have its duplicate suppressed by the first-wins merge. *)
  let r =
    fleet ~name:"drop-dup"
      ~dispatch_flags:[ "--wait-workers"; "30" ]
      ~workers:
        [ [ "LLHSC_FAULT_DROP_CONN_WORKER=1"; "LLHSC_FAULT_DUP_RESULT_WORKER=2" ] ]
      ()
  in
  let err = check ~name:"drop-dup" ~base r in
  expect_notice ~name:"drop-dup" err "duplicate result";

  (* Two workers, one of which dies mid-task: the survivor absorbs the
     reassigned work with no degradation.  (Which worker draws the
     poisoned task index is a scheduling race, so only the invariants —
     exit 0 and byte-identity — are asserted.) *)
  let r =
    fleet ~name:"duo-kill" ~workers:[ [ "LLHSC_FAULT_KILL_WORKER=1" ]; [] ] ()
  in
  ignore (check ~name:"duo-kill" ~base r);

  (* No worker ever registers: after the grace period the dispatcher
     must degrade to in-process checking and still exit 0. *)
  let r = fleet ~name:"no-workers" ~dispatch_flags:[ "--wait-workers"; "1" ] ~workers:[] () in
  let err = check ~name:"no-workers" ~base r in
  expect_notice ~name:"no-workers" err "in-process";

  (* Certify + retry flags must ship to workers and survive a worker
     loss byte-identically. *)
  let cert_flags = [ "--certify"; "--retry"; "2" ] in
  let base_cert = baseline ~name:"base-cert" cert_flags in
  let r =
    fleet ~name:"cert-kill"
      ~pipeline:(pipeline_args @ cert_flags)
      ~workers:[ [ "LLHSC_FAULT_KILL_WORKER=1" ]; [] ] ()
  in
  ignore (check ~name:"cert-kill" ~base:base_cert r);

  (* Journal resume: a completed --jobs 1 journal replayed through the
     fleet — the skip list rides the spec, workers plan the replayed
     products as no-work, and the resumed report matches the original. *)
  let jdir = scenario_dir "journal" in
  let j1 = Filename.concat jdir "run.jsonl" in
  let code =
    run_blocking
      ~out:(Filename.concat jdir "first.txt")
      ~err:(Filename.concat jdir "first.err")
      (("pipeline" :: pipeline_args) @ [ "--jobs"; "1"; "--journal"; j1 ])
  in
  if code <> 0 then fail "journal: seeding run exited %d" code;
  let r =
    fleet ~name:"resume"
      ~dispatch_flags:[ "--journal"; j1; "--resume"; "--wait-workers"; "1" ]
      ~workers:[ [] ] ()
  in
  let err = check ~name:"resume" ~base r in
  expect_notice ~name:"resume" err "replayed from journal";

  (* Authenticated fleet, spec shipped LZ77-compressed: two workers
     complete the HMAC handshake, session MACs seal every frame, and the
     report is still byte-identical. *)
  let code, out, err, wpids =
    fleet ~name:"auth-compress"
      ~dispatch_flags:[ "--secret-file"; secret_file; "--compress" ]
      ~worker_flags:[ "--max-reconnects"; "3"; "--secret-file"; secret_file ]
      ~workers:[ []; [] ] ()
  in
  ignore (check ~name:"auth-compress" ~base (code, out, err, []));
  List.iter
    (fun pid ->
      match wait_exit ~what:"authed worker" pid with
      | 0 -> ()
      | c -> fail "auth-compress: retired worker exited %d, want 0" c)
    wpids;

  (* A worker with no secret knocks on a secret-requiring dispatcher:
     its hellos are dropped with notice[AUTH], it never receives the
     spec, and the dispatcher degrades to the in-process sweep. *)
  let r =
    fleet ~name:"auth-reject"
      ~dispatch_flags:[ "--secret-file"; secret_file; "--wait-workers"; "1" ]
      ~worker_flags:[ "--max-reconnects"; "2" ]
      ~workers:[ [] ] ()
  in
  let err = check ~name:"auth-reject" ~base r in
  expect_notice ~name:"auth-reject" err "notice[AUTH]";
  expect_notice ~name:"auth-reject" err "in-process";
  expect_notice ~name:"auth-reject" err "auth: rejected";

  (* Same with the wrong secret: the mutual handshake fails on the
     worker side (the dispatcher cannot prove knowledge of the worker's
     secret), so the worker refuses the spec and the dispatcher sees
     only a vanished connection and degrades. *)
  let r =
    fleet ~name:"auth-wrong-secret"
      ~dispatch_flags:[ "--secret-file"; secret_file; "--wait-workers"; "1" ]
      ~worker_flags:[ "--max-reconnects"; "2"; "--secret-file"; wrong_secret_file ]
      ~workers:[ [] ] ()
  in
  let err = check ~name:"auth-wrong-secret" ~base r in
  expect_notice ~name:"auth-wrong-secret" err "in-process";
  expect_notice ~name:"auth-wrong-secret"
    (Filename.concat (Filename.concat tmp_root "auth-wrong-secret") "w0.err")
    "dispatcher failed authentication";

  (* Network chaos: the worker reaches the dispatcher only through a
     seeded fault-injecting proxy (corruption, partitions, truncation,
     stalls, reorders, dups, split writes).  Authentication stays on —
     corrupted frames must read as a dead worker, never as data — and
     every seed must still produce the baseline bytes. *)
  List.iter
    (fun seed ->
      let name = Printf.sprintf "chaos-%d" seed in
      say "schedule: %s" name;
      let dir = scenario_dir name in
      let pf = Filename.concat dir "port" in
      let ppf = Filename.concat dir "proxy-port" in
      let out = Filename.concat dir "report.txt" in
      let err = Filename.concat dir "dispatch.err" in
      let dpid =
        spawn ~out ~err
          (("dispatch" :: "--listen" :: "127.0.0.1:0" :: "--port-file" :: pf
            :: "--wait-workers" :: "30" :: "--secret-file" :: secret_file :: [])
          @ pipeline_args)
      in
      wait_port_file pf;
      let proxy =
        spawn
          ~out:(Filename.concat dir "proxy.out")
          ~err:(Filename.concat dir "proxy.err")
          [ "chaosproxy"; "--listen"; "127.0.0.1:0";
            "--upstream"; "127.0.0.1:" ^ read_port pf; "--port-file"; ppf;
            "--seed"; string_of_int seed; "--corrupt"; "0.03"; "--drop"; "0.02";
            "--truncate"; "0.02"; "--stall"; "0.1"; "--stall-ms"; "80";
            "--reorder"; "0.05"; "--dup"; "0.05"; "--split"; "0.3" ]
      in
      wait_port_file ppf;
      let w =
        spawn
          ~out:(Filename.concat dir "w0.out")
          ~err:(Filename.concat dir "w0.err")
          [ "worker"; "--connect"; "127.0.0.1:" ^ read_port ppf;
            "--secret-file"; secret_file; "--max-reconnects"; "50" ]
      in
      let code = wait_exit ~what:"dispatcher" dpid in
      ignore (check ~name ~base (code, out, err, []));
      (try Unix.kill proxy Sys.sigterm with Unix.Unix_error _ -> ());
      reap proxy;
      reap w)
    [ 1; 2 ];

  (* Dispatcher crash-recovery: SIGTERM (via the fault hook) after two
     task results are journalled, then a --resume successor on the same
     port file.  The surviving worker re-reads the port, re-handshakes,
     and the resumed run replays the two completed tasks instead of
     re-running them — byte-identical to the baseline. *)
  say "schedule: term-resume";
  let dir = scenario_dir "term-resume" in
  let pf = Filename.concat dir "port" in
  let jj = Filename.concat dir "run.jsonl" in
  let out1 = Filename.concat dir "report1.txt" in
  let err1 = Filename.concat dir "dispatch1.err" in
  let dpid =
    spawn ~env:[ "LLHSC_FAULT_TERM_AFTER_TASKS=2" ] ~out:out1 ~err:err1
      (("dispatch" :: "--listen" :: "127.0.0.1:0" :: "--port-file" :: pf
        :: "--wait-workers" :: "30" :: "--journal" :: jj
        :: "--secret-file" :: secret_file :: [])
      @ pipeline_args)
  in
  wait_port_file pf;
  let w =
    spawn
      ~out:(Filename.concat dir "w0.out")
      ~err:(Filename.concat dir "w0.err")
      [ "worker"; "--port-file"; pf; "--secret-file"; secret_file;
        "--max-reconnects"; "60" ]
  in
  (match wait_exit ~what:"terminated dispatcher" dpid with
   | 143 -> ()
   | c -> fail "term-resume: dispatcher exited %d, want 143 (128+SIGTERM)" c);
  if not (Sys.file_exists (jj ^ ".tasks")) then
    fail "term-resume: no task journal at %s.tasks" jj;
  Sys.remove pf;
  let out2 = Filename.concat dir "report2.txt" in
  let err2 = Filename.concat dir "dispatch2.err" in
  let dpid =
    spawn ~out:out2 ~err:err2
      (("dispatch" :: "--listen" :: "127.0.0.1:0" :: "--port-file" :: pf
        :: "--wait-workers" :: "30" :: "--journal" :: jj :: "--resume"
        :: "--secret-file" :: secret_file :: [])
      @ pipeline_args)
  in
  let code = wait_exit ~what:"resumed dispatcher" dpid in
  ignore (check ~name:"term-resume" ~base (code, out2, err2, []));
  expect_notice ~name:"term-resume" err2 "resume: replayed 2 task result(s)";
  (match wait_exit ~what:"surviving worker" w with
   | 0 -> ()
   | c -> fail "term-resume: surviving worker exited %d, want 0 (retired)" c);

  say "fleet smoke: all schedules byte-identical, exit 0"
