(* Tests for the CDCL SAT solver substrate: unit behaviour, classic hard
   instances, assumptions/cores, and a qcheck comparison against a
   brute-force model enumerator on random small CNFs. *)

let lit v = Sat.Lit.of_var v
let nlit v = Sat.Lit.neg (Sat.Lit.of_var v)

let fresh_solver n =
  let s = Sat.Solver.create () in
  let vars = Array.init n (fun _ -> Sat.Solver.new_var s) in
  (s, vars)

let check_sat = Alcotest.(check bool)

(* --- basic behaviour ----------------------------------------------------- *)

let test_empty () =
  let s = Sat.Solver.create () in
  check_sat "empty problem is sat" true (Sat.Solver.solve s = Sat.Solver.Sat)

let test_unit_clause () =
  let s, v = fresh_solver 1 in
  ignore (Sat.Solver.add_clause s [ lit v.(0) ] : bool);
  check_sat "sat" true (Sat.Solver.solve s = Sat);
  check_sat "forced true" true (Sat.Solver.value s v.(0))

let test_contradiction () =
  let s, v = fresh_solver 1 in
  ignore (Sat.Solver.add_clause s [ lit v.(0) ] : bool);
  let ok = Sat.Solver.add_clause s [ nlit v.(0) ] in
  check_sat "becomes trivially unsat" false ok;
  check_sat "unsat" true (Sat.Solver.solve s = Unsat)

let test_propagation_chain () =
  (* x0 and a chain x_i -> x_{i+1} forces everything true. *)
  let n = 50 in
  let s, v = fresh_solver n in
  ignore (Sat.Solver.add_clause s [ lit v.(0) ] : bool);
  for i = 0 to n - 2 do
    ignore (Sat.Solver.add_clause s [ nlit v.(i); lit v.(i + 1) ] : bool)
  done;
  check_sat "sat" true (Sat.Solver.solve s = Sat);
  for i = 0 to n - 1 do
    check_sat (Printf.sprintf "x%d true" i) true (Sat.Solver.value s v.(i))
  done

let test_three_coloring_triangle () =
  (* A triangle is 3-colorable but not 2-colorable. *)
  let solve_coloring colors =
    let nodes = 3 in
    let s = Sat.Solver.create () in
    let var = Array.init nodes (fun _ -> Array.init colors (fun _ -> Sat.Solver.new_var s)) in
    for n = 0 to nodes - 1 do
      ignore
        (Sat.Solver.add_clause s (List.init colors (fun c -> lit var.(n).(c))) : bool);
      for c = 0 to colors - 1 do
        for c' = c + 1 to colors - 1 do
          ignore (Sat.Solver.add_clause s [ nlit var.(n).(c); nlit var.(n).(c') ] : bool)
        done
      done
    done;
    let edge a b =
      for c = 0 to colors - 1 do
        ignore (Sat.Solver.add_clause s [ nlit var.(a).(c); nlit var.(b).(c) ] : bool)
      done
    in
    edge 0 1;
    edge 1 2;
    edge 0 2;
    Sat.Solver.solve s
  in
  check_sat "2 colors unsat" true (solve_coloring 2 = Unsat);
  check_sat "3 colors sat" true (solve_coloring 3 = Sat)

let test_pigeonhole () =
  (* PHP(n+1, n): n+1 pigeons in n holes is unsat; classic hard family. *)
  let php pigeons holes =
    let s = Sat.Solver.create () in
    let var =
      Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.Solver.new_var s))
    in
    for p = 0 to pigeons - 1 do
      ignore
        (Sat.Solver.add_clause s (List.init holes (fun h -> lit var.(p).(h))) : bool)
    done;
    for h = 0 to holes - 1 do
      for p = 0 to pigeons - 1 do
        for p' = p + 1 to pigeons - 1 do
          ignore (Sat.Solver.add_clause s [ nlit var.(p).(h); nlit var.(p').(h) ] : bool)
        done
      done
    done;
    Sat.Solver.solve s
  in
  check_sat "php(6,5) unsat" true (php 6 5 = Unsat);
  check_sat "php(5,5) sat" true (php 5 5 = Sat)

(* --- resource budgets ------------------------------------------------------ *)

let test_budget_unknown_on_hard_instance () =
  (* PHP(9,8) needs far more than 100 conflicts; the budget must make the
     solver give up with Unknown instead of running to completion. *)
  let pigeons = 9 and holes = 8 in
  let s = Sat.Solver.create () in
  let var =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.Solver.new_var s))
  in
  for p = 0 to pigeons - 1 do
    ignore (Sat.Solver.add_clause s (List.init holes (fun h -> lit var.(p).(h))) : bool)
  done;
  for h = 0 to holes - 1 do
    for p = 0 to pigeons - 1 do
      for p' = p + 1 to pigeons - 1 do
        ignore (Sat.Solver.add_clause s [ nlit var.(p).(h); nlit var.(p').(h) ] : bool)
      done
    done
  done;
  let budget = Sat.Solver.budget ~max_conflicts:100 () in
  check_sat "unknown under tight budget" true (Sat.Solver.solve ~budget s = Unknown);
  (* The same solver must remain usable: a follow-up budgetless solve on a
     trivial extra query still terminates with a definite answer. *)
  let x = Sat.Solver.new_var s in
  check_sat "usable after unknown" true
    (Sat.Solver.solve ~assumptions:[ lit x ] s <> Unknown)

let test_budget_scrubs_stale_model_and_core () =
  (* Populate a model and a core, then force Unknown: the stale artifacts
     of earlier solves must not leak through the accessors. *)
  let s, v = fresh_solver 3 in
  ignore (Sat.Solver.add_clause s [ lit v.(0) ] : bool);
  check_sat "sat populates model" true (Sat.Solver.solve s = Sat);
  check_sat "model nonempty" true (Sat.Solver.model s <> [||]);
  ignore (Sat.Solver.add_clause s [ nlit v.(1); nlit v.(2) ] : bool);
  check_sat "unsat populates core" true
    (Sat.Solver.solve ~assumptions:[ lit v.(1); lit v.(2) ] s = Unsat);
  check_sat "core nonempty" true (Sat.Solver.unsat_core s <> []);
  let budget = Sat.Solver.budget ~max_decisions:0 ~max_conflicts:0 () in
  check_sat "zero budget gives unknown" true (Sat.Solver.solve ~budget s = Unknown);
  check_sat "model scrubbed" true (Sat.Solver.model s = [||]);
  check_sat "core scrubbed" true (Sat.Solver.unsat_core s = []);
  (* And the budget does not stick to the solver. *)
  check_sat "budget is per-call" true (Sat.Solver.solve s = Sat)

let test_budget_time_limit () =
  let s, v = fresh_solver 2 in
  ignore (Sat.Solver.add_clause s [ lit v.(0); lit v.(1) ] : bool);
  (* An already-expired deadline must yield Unknown even on an easy query. *)
  let expired = Sat.Solver.budget ~time_limit:(-1.0) () in
  check_sat "expired deadline" true (Sat.Solver.solve ~budget:expired s = Unknown);
  let generous = Sat.Solver.budget ~time_limit:60.0 () in
  check_sat "generous deadline" true (Sat.Solver.solve ~budget:generous s = Sat)

(* --- assumptions and cores ----------------------------------------------- *)

let test_assumptions_sat_unsat () =
  let s, v = fresh_solver 2 in
  ignore (Sat.Solver.add_clause s [ nlit v.(0); lit v.(1) ] : bool);
  check_sat "assume x0 sat" true (Sat.Solver.solve ~assumptions:[ lit v.(0) ] s = Sat);
  check_sat "x1 forced" true (Sat.Solver.value s v.(1));
  check_sat "conflicting assumptions unsat" true
    (Sat.Solver.solve ~assumptions:[ lit v.(0); nlit v.(1) ] s = Unsat);
  (* Solver must remain usable afterwards. *)
  check_sat "still sat without assumptions" true (Sat.Solver.solve s = Sat)

let test_unsat_core () =
  let s, v = fresh_solver 4 in
  (* x0 -> x1, x1 -> x2; assuming x0 and !x2 is unsat, x3 irrelevant. *)
  ignore (Sat.Solver.add_clause s [ nlit v.(0); lit v.(1) ] : bool);
  ignore (Sat.Solver.add_clause s [ nlit v.(1); lit v.(2) ] : bool);
  let r = Sat.Solver.solve ~assumptions:[ lit v.(3); lit v.(0); nlit v.(2) ] s in
  check_sat "unsat" true (r = Unsat);
  let core = Sat.Solver.unsat_core s in
  check_sat "core nonempty" true (core <> []);
  check_sat "core excludes irrelevant x3" true
    (not (List.mem (lit v.(3)) core));
  (* The core itself must be unsat. *)
  check_sat "core is unsat" true (Sat.Solver.solve ~assumptions:core s = Unsat)

(* --- formulas / Tseitin --------------------------------------------------- *)

let test_formula_assert () =
  let open Sat.Formula in
  let s, v = fresh_solver 3 in
  let f =
    conj
      [ iff (atom v.(0)) (atom v.(1));
        xor (atom v.(1)) (atom v.(2));
        atom v.(0)
      ]
  in
  check_sat "asserted ok" true (Sat.Formula.assert_in s f);
  check_sat "sat" true (Sat.Solver.solve s = Sat);
  check_sat "x0" true (Sat.Solver.value s v.(0));
  check_sat "x1" true (Sat.Solver.value s v.(1));
  check_sat "x2 false" false (Sat.Solver.value s v.(2))

let test_formula_exactly_one () =
  let open Sat.Formula in
  let s, v = fresh_solver 4 in
  let f = exactly_one (List.init 4 (fun i -> atom v.(i))) in
  check_sat "ok" true (assert_in s f);
  check_sat "sat" true (Sat.Solver.solve s = Sat);
  let count = ref 0 in
  for i = 0 to 3 do
    if Sat.Solver.value s v.(i) then incr count
  done;
  Alcotest.(check int) "exactly one true" 1 !count

let test_define_guard () =
  (* define_in gives an activation literal: guarded formula only bites when
     the guard is assumed. *)
  let open Sat.Formula in
  let s, v = fresh_solver 2 in
  let guard = Sat.Formula.define_in s (conj [ atom v.(0); atom v.(1) ]) in
  check_sat "unguarded sat" true (Sat.Solver.solve ~assumptions:[] s = Sat);
  check_sat "guarded sat" true (Sat.Solver.solve ~assumptions:[ guard ] s = Sat);
  check_sat "x0 under guard" true (Sat.Solver.value s v.(0));
  check_sat "x1 under guard" true (Sat.Solver.value s v.(1));
  ignore (Sat.Solver.add_clause s [ Sat.Lit.neg (lit v.(0)) ] : bool);
  check_sat "guard now unsat" true (Sat.Solver.solve ~assumptions:[ guard ] s = Unsat);
  check_sat "negated guard sat" true
    (Sat.Solver.solve ~assumptions:[ Sat.Lit.neg guard ] s = Sat)

(* --- dimacs --------------------------------------------------------------- *)

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = Sat.Dimacs.parse text in
  Alcotest.(check int) "vars" 3 cnf.num_vars;
  Alcotest.(check int) "clauses" 2 (List.length cnf.clauses);
  let printed = Fmt.str "%a" Sat.Dimacs.print cnf in
  let cnf' = Sat.Dimacs.parse printed in
  Alcotest.(check int) "roundtrip clauses" 2 (List.length cnf'.clauses);
  let solver, ok = Sat.Dimacs.load cnf in
  check_sat "load ok" true ok;
  check_sat "sat" true (Sat.Solver.solve solver = Sat)

let test_dimacs_errors () =
  let expect_error what input =
    match Sat.Dimacs.parse input with
    | (_ : Sat.Dimacs.cnf) -> Alcotest.failf "%s: expected Dimacs.Error" what
    | exception Sat.Dimacs.Error _ -> ()
  in
  expect_error "unterminated clause" "p cnf 2 1\n1 2";
  expect_error "count mismatch" "p cnf 2 2\n1 0\n";
  expect_error "bad token" "p cnf 2 1\n1 x 0\n";
  expect_error "literal out of range" "p cnf 2 1\n1 3 0\n";
  expect_error "malformed problem line" "p cnf x y\n1 0\n";
  expect_error "negative header" "p cnf -2 1\n1 0\n"

(* --- restart diversification & forced Unknown ------------------------------ *)

let php_instance pigeons holes =
  let s = Sat.Solver.create () in
  let var =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.Solver.new_var s))
  in
  for p = 0 to pigeons - 1 do
    ignore (Sat.Solver.add_clause s (List.init holes (fun h -> lit var.(p).(h))) : bool)
  done;
  for h = 0 to holes - 1 do
    for p = 0 to pigeons - 1 do
      for p' = p + 1 to pigeons - 1 do
        ignore (Sat.Solver.add_clause s [ nlit var.(p).(h); nlit var.(p').(h) ] : bool)
      done
    done
  done;
  s

let all_polarity_modes =
  [ Sat.Solver.Phase_saved; Phase_false; Phase_true; Phase_inverted; Phase_random ]

let test_diversification_sound () =
  (* Every (seed, polarity, decay) combination is a different search order
     over the same space: verdicts must never change. *)
  List.iter
    (fun polarity_mode ->
      List.iter
        (fun seed ->
          List.iter
            (fun var_decay ->
              let sat = php_instance 5 5 in
              check_sat "php(5,5) sat under diversification" true
                (Sat.Solver.solve ?seed ~polarity_mode ?var_decay sat = Sat);
              let unsat = php_instance 6 5 in
              check_sat "php(6,5) unsat under diversification" true
                (Sat.Solver.solve ?seed ~polarity_mode ?var_decay unsat = Unsat))
            [ None; Some 0.8; Some 0.99 ])
        [ None; Some 1; Some 42; Some 0x9E3779B9 ])
    all_polarity_modes

let test_diversification_deterministic () =
  (* Same seed, same mode -> byte-identical model: the PRNG is explicit
     state, never wall-clock or global. *)
  let run () =
    let s = php_instance 5 5 in
    check_sat "sat" true
      (Sat.Solver.solve ~seed:1234 ~polarity_mode:Sat.Solver.Phase_random s = Sat);
    Sat.Solver.model s
  in
  Alcotest.(check (array bool)) "same seed, same model" (run ()) (run ())

let test_polarity_modes_differ () =
  (* One clause (x0 or x1), nothing else: phase-false finds x0=false,
     x1=true; phase-true finds all-true.  Diversification really does steer
     the search. *)
  let build () =
    let s, v = fresh_solver 2 in
    ignore (Sat.Solver.add_clause s [ lit v.(0); lit v.(1) ] : bool);
    s
  in
  let s_false = build () and s_true = build () in
  check_sat "sat (false phases)" true
    (Sat.Solver.solve ~polarity_mode:Sat.Solver.Phase_false s_false = Sat);
  check_sat "sat (true phases)" true
    (Sat.Solver.solve ~polarity_mode:Sat.Solver.Phase_true s_true = Sat);
  check_sat "phase-false model differs from phase-true model" false
    (Sat.Solver.model s_false = Sat.Solver.model s_true)

let test_bad_var_decay_rejected () =
  let s, _ = fresh_solver 2 in
  Alcotest.check_raises "decay must be in (0,1)"
    (Invalid_argument "Solver.solve: var_decay 1.5 not in (0,1)")
    (fun () -> ignore (Sat.Solver.solve ~var_decay:1.5 s : Sat.Solver.result))

let test_force_unknown_scrubs () =
  let s, v = fresh_solver 2 in
  ignore (Sat.Solver.add_clause s [ lit v.(0) ] : bool);
  Sat.Solver.inject_unsoundness s (Sat.Solver.Force_unknown 2);
  check_sat "1st solve unaffected" true (Sat.Solver.solve s = Sat);
  check_sat "2nd solve forced Unknown" true (Sat.Solver.solve s = Unknown);
  Alcotest.(check (array bool)) "no model after forced Unknown" [||] (Sat.Solver.model s);
  Alcotest.(check int) "no core after forced Unknown" 0
    (List.length (Sat.Solver.unsat_core s));
  check_sat "3rd solve recovers" true (Sat.Solver.solve s = Sat)

(* --- certification (proof logging + independent checker) ------------------ *)

let check_result what = function
  | Ok (_ : int) -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let expect_error what = function
  | Ok (_ : int) -> Alcotest.failf "%s: expected certification failure" what
  | Error (_ : string) -> ()

let proof_of s =
  match Sat.Solver.proof s with
  | Some p -> p
  | None -> Alcotest.fail "proof logging not enabled"

(* PHP(pigeons, holes) on a proof-enabled solver; unsat for pigeons > holes. *)
let php_solver pigeons holes =
  let s = Sat.Solver.create () in
  Sat.Solver.enable_proof s;
  let var =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.Solver.new_var s))
  in
  for p = 0 to pigeons - 1 do
    ignore (Sat.Solver.add_clause s (List.init holes (fun h -> lit var.(p).(h))) : bool)
  done;
  for h = 0 to holes - 1 do
    for p = 0 to pigeons - 1 do
      for p' = p + 1 to pigeons - 1 do
        ignore (Sat.Solver.add_clause s [ nlit var.(p).(h); nlit var.(p').(h) ] : bool)
      done
    done
  done;
  s

let test_certify_unsat_proof () =
  let s = php_solver 6 5 in
  check_sat "php(6,5) unsat" true (Sat.Solver.solve s = Unsat);
  check_result "refutation certificate" (Sat.Checker.check_proof (proof_of s))

let test_certify_sat_model () =
  let s = php_solver 5 5 in
  check_sat "php(5,5) sat" true (Sat.Solver.solve s = Sat);
  check_result "model certificate"
    (Sat.Checker.check_sat_model (proof_of s) (fun l -> Sat.Solver.lit_value s l))

let test_certify_empty_problem () =
  (* Edge: no clauses at all.  Sat, and the (empty) trace certifies. *)
  let s = Sat.Solver.create () in
  Sat.Solver.enable_proof s;
  check_sat "empty problem sat" true (Sat.Solver.solve s = Sat);
  check_result "empty certificate"
    (Sat.Checker.check_sat_model (proof_of s) (fun l -> Sat.Solver.lit_value s l))

let test_certify_trivially_unsat_at_load () =
  (* Edge: contradiction among the input units; the solver never searches
     (load reports not-ok) yet the trace alone must refute. *)
  let cnf = Sat.Dimacs.parse "p cnf 1 2\n1 0\n-1 0\n" in
  let s, ok = Sat.Dimacs.load ~proof:true cnf in
  check_sat "trivially unsat at load" false ok;
  check_result "input-only refutation" (Sat.Checker.check_proof (proof_of s))

let test_certify_enable_proof_late_rejected () =
  let s, v = fresh_solver 1 in
  ignore (Sat.Solver.add_clause s [ lit v.(0) ] : bool);
  try
    Sat.Solver.enable_proof s;
    Alcotest.fail "enable_proof after add_clause must be rejected"
  with Invalid_argument _ -> ()

(* Injected unsoundness must be caught — this is the acceptance test for the
   whole certification chain: a wrong verdict can never certify. *)
let test_certify_catches_dropped_literal () =
  let s = php_solver 6 5 in
  Sat.Solver.inject_unsoundness s (Sat.Solver.Drop_learnt_literal 2);
  check_sat "still reports unsat" true (Sat.Solver.solve s = Unsat);
  expect_error "dropped learnt literal" (Sat.Checker.check_proof (proof_of s))

let test_certify_catches_muted_proof_step () =
  let s = php_solver 6 5 in
  Sat.Solver.inject_unsoundness s (Sat.Solver.Mute_proof_step 3);
  check_sat "still reports unsat" true (Sat.Solver.solve s = Unsat);
  expect_error "muted proof step" (Sat.Checker.check_proof (proof_of s))

let test_certify_catches_flipped_model_bit () =
  (* Forced chain: the model is unique, so any flipped bit falsifies it. *)
  let n = 30 in
  let s = Sat.Solver.create () in
  Sat.Solver.enable_proof s;
  let v = Array.init n (fun _ -> Sat.Solver.new_var s) in
  ignore (Sat.Solver.add_clause s [ lit v.(0) ] : bool);
  for i = 0 to n - 2 do
    ignore (Sat.Solver.add_clause s [ nlit v.(i); lit v.(i + 1) ] : bool)
  done;
  Sat.Solver.inject_unsoundness s (Sat.Solver.Flip_model_bit 7);
  check_sat "still reports sat" true (Sat.Solver.solve s = Sat);
  expect_error "flipped model bit"
    (Sat.Checker.check_sat_model (proof_of s) (fun l -> Sat.Solver.lit_value s l))

(* --- property: agreement with brute force -------------------------------- *)

let brute_force_sat num_vars clauses =
  (* Enumerate all assignments; clauses are (var, negated) lists. *)
  let rec loop assign =
    if assign >= 1 lsl num_vars then false
    else
      let value v = assign land (1 lsl v) <> 0 in
      let clause_sat c =
        List.exists (fun (v, negd) -> if negd then not (value v) else value v) c
      in
      if List.for_all clause_sat clauses then true else loop (assign + 1)
  in
  loop 0

let gen_cnf =
  let open QCheck.Gen in
  let num_vars = int_range 1 8 in
  num_vars >>= fun nv ->
  let gen_lit = pair (int_range 0 (nv - 1)) bool in
  let gen_clause = list_size (int_range 1 4) gen_lit in
  list_size (int_range 1 30) gen_clause >>= fun clauses -> return (nv, clauses)

let prop_agrees_with_brute_force =
  QCheck.Test.make ~count:500 ~name:"solver agrees with brute force"
    (QCheck.make gen_cnf)
    (fun (nv, clauses) ->
      let s = Sat.Solver.create () in
      let vars = Array.init nv (fun _ -> Sat.Solver.new_var s) in
      let ok =
        List.for_all
          (fun c ->
            Sat.Solver.add_clause s
              (List.map (fun (v, negd) -> Sat.Lit.make ~var:vars.(v) ~negated:negd) c))
          clauses
      in
      let solver_sat = ok && Sat.Solver.solve s = Sat in
      let expected = brute_force_sat nv clauses in
      if solver_sat <> expected then false
      else if solver_sat then
        (* The produced model must actually satisfy every clause. *)
        List.for_all
          (fun c ->
            List.exists
              (fun (v, negd) ->
                let b = Sat.Solver.value s vars.(v) in
                if negd then not b else b)
              c)
          clauses
      else true)

let prop_assumptions_consistent =
  QCheck.Test.make ~count:200 ~name:"unsat core is itself unsat"
    (QCheck.make gen_cnf)
    (fun (nv, clauses) ->
      let s = Sat.Solver.create () in
      let vars = Array.init nv (fun _ -> Sat.Solver.new_var s) in
      let ok =
        List.for_all
          (fun c ->
            Sat.Solver.add_clause s
              (List.map (fun (v, negd) -> Sat.Lit.make ~var:vars.(v) ~negated:negd) c))
          clauses
      in
      if not ok then true
      else begin
        (* Assume all variables positive; if unsat, the core must be unsat. *)
        let assumptions = Array.to_list (Array.map Sat.Lit.of_var vars) in
        match Sat.Solver.solve ~assumptions s with
        | Sat -> true
        | Unknown -> false (* no budget installed: Unknown is a bug *)
        | Unsat ->
          let core = Sat.Solver.unsat_core s in
          List.for_all (fun l -> List.mem l assumptions) core
          && Sat.Solver.solve ~assumptions:core s = Unsat
      end)


(* --- DPLL baseline (differential) ----------------------------------------- *)

let prop_dpll_agrees_with_cdcl =
  QCheck.Test.make ~count:300 ~name:"DPLL agrees with CDCL"
    (QCheck.make gen_cnf)
    (fun (nv, clauses) ->
      let s = Sat.Solver.create () in
      let vars = Array.init nv (fun _ -> Sat.Solver.new_var s) in
      let lits =
        List.map
          (List.map (fun (v, negd) -> Sat.Lit.make ~var:vars.(v) ~negated:negd))
          clauses
      in
      let cdcl_ok = List.for_all (fun c -> Sat.Solver.add_clause s c) lits in
      let cdcl_sat = cdcl_ok && Sat.Solver.solve s = Sat in
      let problem = Sat.Dpll.of_lits ~num_vars:nv lits in
      let dpll_sat = match Sat.Dpll.solve problem with Sat.Dpll.Sat _ -> true | Sat.Dpll.Unsat -> false in
      cdcl_sat = dpll_sat)

(* --- property: DIMACS print -> parse roundtrip ----------------------------- *)

let cnf_of_gen (nv, clauses) =
  { Sat.Dimacs.num_vars = nv;
    clauses =
      List.map (List.map (fun (v, negd) -> Sat.Lit.make ~var:v ~negated:negd)) clauses
  }

let prop_dimacs_roundtrip =
  QCheck.Test.make ~count:300 ~name:"DIMACS print/parse roundtrip"
    (QCheck.make gen_cnf)
    (fun g ->
      let cnf = cnf_of_gen g in
      let cnf' = Sat.Dimacs.parse (Fmt.str "%a" Sat.Dimacs.print cnf) in
      cnf'.Sat.Dimacs.num_vars = cnf.Sat.Dimacs.num_vars
      && cnf'.Sat.Dimacs.clauses = cnf.Sat.Dimacs.clauses)

(* --- property: every verdict certifies ------------------------------------- *)

let prop_verdicts_certify =
  QCheck.Test.make ~count:300 ~name:"every verdict certifies"
    (QCheck.make gen_cnf)
    (fun g ->
      let solver, ok = Sat.Dimacs.load ~proof:true (cnf_of_gen g) in
      let proof =
        match Sat.Solver.proof solver with Some p -> p | None -> assert false
      in
      let result = if ok then Sat.Solver.solve solver else Sat.Solver.Unsat in
      match result with
      | Sat.Solver.Sat ->
        Sat.Checker.check_sat_model proof (fun l -> Sat.Solver.lit_value solver l)
        |> Result.is_ok
      | Sat.Solver.Unsat -> Result.is_ok (Sat.Checker.check_proof proof)
      | Sat.Solver.Unknown -> false (* no budget installed: Unknown is a bug *))

let test_dpll_of_formula () =
  (* Tseitin into DPLL: (x0 <-> x1) & (x0 xor x2) & x0 forces x1, !x2. *)
  let open Sat.Formula in
  let f = conj [ iff (atom 0) (atom 1); xor (atom 1) (atom 2); atom 0 ] in
  let problem = Sat.Dpll.of_formula ~num_vars:3 f in
  (match Sat.Dpll.solve problem with
   | Sat.Dpll.Sat model ->
     check_sat "x0" true model.(0);
     check_sat "x1" true model.(1);
     check_sat "x2 false" false model.(2)
   | Sat.Dpll.Unsat -> Alcotest.fail "expected sat");
  let contradiction = Sat.Dpll.of_formula ~num_vars:1 (conj [ atom 0; neg (atom 0) ]) in
  check_sat "contradiction unsat" true (Sat.Dpll.solve contradiction = Sat.Dpll.Unsat)

let test_dpll_count_models () =
  (* x0 | x1 over 2 vars has 3 models. *)
  let problem = { Sat.Dpll.num_vars = 2; clauses = [ [ 1; 2 ] ] } in
  Alcotest.(check int) "3 models" 3 (Sat.Dpll.count_models problem ~over:[ 0; 1 ])


(* --- container substrate ------------------------------------------------------ *)

let test_vec_operations () =
  let v = Sat.Vec.create 0 in
  for i = 1 to 10 do
    Sat.Vec.push v i
  done;
  Alcotest.(check int) "size" 10 (Sat.Vec.size v);
  Alcotest.(check int) "last" 10 (Sat.Vec.last v);
  Alcotest.(check int) "pop" 10 (Sat.Vec.pop v);
  Sat.Vec.swap_remove v 0;
  (* 1 replaced by the last element (9). *)
  Alcotest.(check int) "swap_remove" 9 (Sat.Vec.get v 0);
  Sat.Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  check_sat "only evens" true (Sat.Vec.for_all (fun x -> x mod 2 = 0) v);
  Sat.Vec.sort compare v;
  let sorted = Sat.Vec.to_list v in
  check_sat "sorted" true (List.sort compare sorted = sorted);
  Sat.Vec.shrink_to v 1;
  Alcotest.(check int) "shrunk" 1 (Sat.Vec.size v);
  Sat.Vec.clear v;
  check_sat "cleared" true (Sat.Vec.is_empty v);
  (try
     ignore (Sat.Vec.get v 0 : int);
     Alcotest.fail "expected bounds error"
   with Invalid_argument _ -> ())

let test_heap_ordering () =
  let scores = Array.make 16 0.0 in
  let h = Sat.Heap.create (fun v -> scores.(v)) in
  List.iter
    (fun (v, s) ->
      scores.(v) <- s;
      Sat.Heap.insert h v)
    [ (0, 1.0); (1, 5.0); (2, 3.0); (3, 4.0) ];
  Alcotest.(check int) "max first" 1 (Sat.Heap.remove_max h);
  (* Bump 0's activity and re-order. *)
  scores.(0) <- 10.0;
  Sat.Heap.decrease h 0;
  Alcotest.(check int) "bumped to top" 0 (Sat.Heap.remove_max h);
  Alcotest.(check int) "then 3" 3 (Sat.Heap.remove_max h);
  Alcotest.(check int) "then 2" 2 (Sat.Heap.remove_max h);
  check_sat "empty" true (Sat.Heap.is_empty h);
  (* Duplicate insert is a no-op. *)
  Sat.Heap.insert h 5;
  Sat.Heap.insert h 5;
  Alcotest.(check int) "no duplicate" 1 (Sat.Heap.size h)

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "unit clause" `Quick test_unit_clause;
          Alcotest.test_case "contradiction" `Quick test_contradiction;
          Alcotest.test_case "propagation chain" `Quick test_propagation_chain;
          Alcotest.test_case "triangle coloring" `Quick test_three_coloring_triangle;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "unknown on hard instance" `Quick
            test_budget_unknown_on_hard_instance;
          Alcotest.test_case "stale model/core scrubbed" `Quick
            test_budget_scrubs_stale_model_and_core;
          Alcotest.test_case "time limit" `Quick test_budget_time_limit;
        ] );
      ( "assumptions",
        [
          Alcotest.test_case "sat/unsat under assumptions" `Quick test_assumptions_sat_unsat;
          Alcotest.test_case "unsat core" `Quick test_unsat_core;
        ] );
      ( "formula",
        [
          Alcotest.test_case "assert" `Quick test_formula_assert;
          Alcotest.test_case "exactly_one" `Quick test_formula_exactly_one;
          Alcotest.test_case "define guard" `Quick test_define_guard;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
        ] );
      ( "diversification",
        [
          Alcotest.test_case "sound under all modes" `Quick test_diversification_sound;
          Alcotest.test_case "deterministic per seed" `Quick
            test_diversification_deterministic;
          Alcotest.test_case "polarity modes steer search" `Quick
            test_polarity_modes_differ;
          Alcotest.test_case "bad var_decay rejected" `Quick test_bad_var_decay_rejected;
          Alcotest.test_case "forced Unknown scrubs model/core" `Quick
            test_force_unknown_scrubs;
        ] );
      ( "containers",
        [
          Alcotest.test_case "vec" `Quick test_vec_operations;
          Alcotest.test_case "heap" `Quick test_heap_ordering;
        ] );
      ( "dpll",
        [
          Alcotest.test_case "of_formula" `Quick test_dpll_of_formula;
          Alcotest.test_case "count_models" `Quick test_dpll_count_models;
        ] );
      ( "certification",
        [
          Alcotest.test_case "unsat proof" `Quick test_certify_unsat_proof;
          Alcotest.test_case "sat model" `Quick test_certify_sat_model;
          Alcotest.test_case "empty problem" `Quick test_certify_empty_problem;
          Alcotest.test_case "trivially unsat at load" `Quick
            test_certify_trivially_unsat_at_load;
          Alcotest.test_case "late enable rejected" `Quick
            test_certify_enable_proof_late_rejected;
          Alcotest.test_case "catches dropped literal" `Quick
            test_certify_catches_dropped_literal;
          Alcotest.test_case "catches muted proof step" `Quick
            test_certify_catches_muted_proof_step;
          Alcotest.test_case "catches flipped model bit" `Quick
            test_certify_catches_flipped_model_bit;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_agrees_with_brute_force;
          QCheck_alcotest.to_alcotest prop_assumptions_consistent;
          QCheck_alcotest.to_alcotest prop_dpll_agrees_with_cdcl;
          QCheck_alcotest.to_alcotest prop_dimacs_roundtrip;
          QCheck_alcotest.to_alcotest prop_verdicts_certify;
        ] );
    ]
