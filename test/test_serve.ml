(* Tests for the serve daemon's HTTP layer: the qcheck split-read
   property (any partition of the same byte stream yields the identical
   verdict), unit tests for the hostile-input posture (oversized bodies,
   bad methods, truncated chunked encoding, header caps), and the
   Json.parse hardening the daemon leans on (depth limit, trailing
   garbage). *)

module Http = Serve.Http

(* Feed [bytes] to a fresh parser in the given [cuts] and return the final
   verdict, normalised for comparison. *)
let parse_with_cuts ?limits bytes cuts =
  let st = Http.create ?limits () in
  let n = String.length bytes in
  let rec go pos = function
    | [] ->
      if pos < n then Http.feed st (String.sub bytes pos (n - pos));
      Http.poll st
    | cut :: rest ->
      let cut = max pos (min cut n) in
      Http.feed st (String.sub bytes pos (cut - pos));
      (* Polling between feeds must not disturb the final verdict. *)
      ignore (Http.poll st);
      go cut rest
  in
  go 0 cuts

let verdict_repr = function
  | `Await -> "await"
  | `Error { Http.status; reason } -> Printf.sprintf "error %d %s" status reason
  | `Request r ->
    Printf.sprintf "request %s %s %s [%s] %S" r.Http.meth r.Http.target r.Http.version
      (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) r.Http.headers))
      r.Http.body

let check_verdict = Alcotest.(check string)

let one_shot ?limits bytes = parse_with_cuts ?limits bytes []

(* --- unit: well-formed requests ------------------------------------------- *)

let test_simple_get () =
  check_verdict "GET parses"
    "request GET /healthz HTTP/1.1 [host=x] \"\""
    (verdict_repr (one_shot "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"))

let test_post_with_body () =
  check_verdict "POST body delivered"
    "request POST /v1/check HTTP/1.1 [content-length=5] \"hello\""
    (verdict_repr (one_shot "POST /v1/check HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"))

let test_bare_lf_lines () =
  (* Sloppy clients terminate lines with bare LF; we accept both. *)
  check_verdict "bare-LF request parses"
    "request GET / HTTP/1.0 [a=b] \"\""
    (verdict_repr (one_shot "GET / HTTP/1.0\na: b\n\n"))

let test_chunked_body () =
  let wire =
    "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    ^ "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"
  in
  check_verdict "chunked body de-chunked"
    "request POST /x HTTP/1.1 [transfer-encoding=chunked] \"hello world\""
    (verdict_repr (one_shot wire))

let test_chunk_extensions_ignored () =
  let wire =
    "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    ^ "5;ext=1\r\nhello\r\n0\r\n\r\n"
  in
  check_verdict "chunk extension ignored"
    "request POST /x HTTP/1.1 [transfer-encoding=chunked] \"hello\""
    (verdict_repr (one_shot wire))

(* --- unit: hostile inputs -------------------------------------------------- *)

let tiny = { Http.max_header_bytes = 256; max_body_bytes = 64 }

let status_of = function `Error { Http.status; _ } -> status | _ -> -1

let test_bad_method () =
  Alcotest.(check int) "space in method -> 400" 400
    (status_of (one_shot "GE T / HTTP/1.1\r\n\r\n"));
  Alcotest.(check int) "empty request line -> 400" 400
    (status_of (one_shot "\r\n\r\n"))

let test_bad_version () =
  Alcotest.(check int) "HTTP/2.0 -> 505" 505
    (status_of (one_shot "GET / HTTP/2.0\r\n\r\n"));
  Alcotest.(check int) "garbage version -> 400" 400
    (status_of (one_shot "GET / FTP/1.1\r\n\r\n"))

let test_oversized_declared_body () =
  (* Refused at the declaration: not a single body byte was sent. *)
  Alcotest.(check int) "Content-Length over cap -> 413" 413
    (status_of
       (one_shot ~limits:tiny "POST /x HTTP/1.1\r\nContent-Length: 65\r\n\r\n"));
  Alcotest.(check int) "absurd Content-Length -> 413" 413
    (status_of
       (one_shot ~limits:tiny
          "POST /x HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n"))

let test_oversized_chunked_body () =
  let wire =
    "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    ^ "41\r\n" ^ String.make 65 'a' ^ "\r\n0\r\n\r\n"
  in
  Alcotest.(check int) "chunked body over cap -> 413" 413
    (status_of (one_shot ~limits:tiny wire))

let test_truncated_chunked () =
  (* Truncation is not an error the parser can prove: it must await (the
     connection read deadline turns it into 408). *)
  let full =
    "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"
  in
  for cut = String.length "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      to String.length full - 1 do
    check_verdict
      (Printf.sprintf "truncated at %d awaits" cut)
      "await"
      (verdict_repr (one_shot (String.sub full 0 cut)))
  done

let test_malformed_chunk_framing () =
  Alcotest.(check int) "non-hex chunk size -> 400" 400
    (status_of
       (one_shot "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"));
  Alcotest.(check int) "missing chunk terminator -> 400" 400
    (status_of
       (one_shot
          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloX\r\n0\r\n\r\n"));
  Alcotest.(check int) "huge hex chunk size -> 413" 413
    (status_of
       (one_shot "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfffffffff\r\n"))

let test_oversized_headers () =
  let wire =
    "GET / HTTP/1.1\r\nX-Pad: " ^ String.make 300 'a' ^ "\r\n\r\n"
  in
  Alcotest.(check int) "header block over cap -> 431" 431
    (status_of (one_shot ~limits:tiny wire));
  (* Even without a newline in sight, an oversized header block is cut. *)
  Alcotest.(check int) "unterminated oversized head -> 431" 431
    (status_of (one_shot ~limits:tiny ("GET / HTTP/1.1\r\nX: " ^ String.make 300 'b')))

let test_conflicting_framing () =
  Alcotest.(check int) "CL + TE -> 400" 400
    (status_of
       (one_shot
          "POST /x HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n"));
  Alcotest.(check int) "conflicting CLs -> 400" 400
    (status_of
       (one_shot "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n"));
  Alcotest.(check int) "gzip TE -> 501" 501
    (status_of (one_shot "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"))

let test_header_syntax () =
  Alcotest.(check int) "obs-fold -> 400" 400
    (status_of (one_shot "GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n"));
  Alcotest.(check int) "colonless header -> 400" 400
    (status_of (one_shot "GET / HTTP/1.1\r\nnocolon\r\n\r\n"));
  Alcotest.(check int) "ctrl char in value -> 400" 400
    (status_of (one_shot "GET / HTTP/1.1\r\nA: b\x01c\r\n\r\n"))

let test_feed_after_verdict_frozen () =
  let st = Http.create () in
  Http.feed st "GET / HTTP/1.1\r\n\r\n";
  let before = verdict_repr (Http.poll st) in
  Http.feed st "GARBAGE MORE BYTES";
  check_verdict "verdict frozen after completion" before (verdict_repr (Http.poll st))

let test_split_target () =
  let path, params = Http.split_target "/v1/check?certify=1&name=a%20b+c" in
  Alcotest.(check string) "path" "/v1/check" path;
  Alcotest.(check (list (pair string string)))
    "params" [ ("certify", "1"); ("name", "a b c") ] params

(* --- property: split-read determinism -------------------------------------- *)

(* Mix of well-formed requests (plain, chunked) and adversarial byte
   soup: the property is not "parses correctly" but "the verdict never
   depends on how the stream was split". *)
let gen_wire =
  let open QCheck.Gen in
  let printable = map Char.chr (int_range 32 126) in
  let soup = string_size ~gen:printable (int_range 0 80) in
  let plain =
    let* path = oneofl [ "/"; "/healthz"; "/v1/check?certify=1" ] in
    let* body = string_size ~gen:printable (int_range 0 40) in
    let* meth = oneofl [ "GET"; "POST"; "BAD METHOD"; "" ] in
    return
      (Printf.sprintf "%s %s HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s"
         meth path (String.length body) body)
  in
  let chunked =
    let* chunks = list_size (int_range 0 4) (string_size ~gen:printable (int_range 0 20)) in
    let framed =
      List.map (fun c -> Printf.sprintf "%x\r\n%s\r\n" (String.length c) c) chunks
    in
    return
      ("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      ^ String.concat "" framed ^ "0\r\n\r\n")
  in
  let truncated =
    let* base = oneof [ plain; chunked ] in
    let* keep = int_range 0 (String.length base) in
    return (String.sub base 0 keep)
  in
  oneof [ plain; chunked; truncated; soup ]

let gen_case =
  let open QCheck.Gen in
  let* wire = gen_wire in
  let* cuts = list_size (int_range 0 12) (int_range 0 (max 1 (String.length wire))) in
  return (wire, List.sort compare cuts)

let prop_split_read_deterministic =
  QCheck.Test.make ~count:1000 ~name:"split reads never change the verdict"
    (QCheck.make gen_case ~print:(fun (wire, cuts) ->
         Printf.sprintf "wire=%S cuts=[%s]" wire
           (String.concat ";" (List.map string_of_int cuts))))
    (fun (wire, cuts) ->
      let whole = verdict_repr (parse_with_cuts wire []) in
      let split = verdict_repr (parse_with_cuts wire cuts) in
      let byte_at_a_time =
        verdict_repr (parse_with_cuts wire (List.init (String.length wire) Fun.id))
      in
      whole = split && whole = byte_at_a_time)

(* --- Json hardening --------------------------------------------------------- *)

let test_json_depth_limit () =
  (* A hostile body of raw '[' must fail with a parse error, not a stack
     overflow. *)
  let deep = String.make 100_000 '[' in
  (match Llhsc.Json.parse deep with
   | Error msg ->
     Alcotest.(check bool) "mentions nesting" true
       (Llhsc.Util.contains msg "nesting")
   | Ok _ -> Alcotest.fail "deep nesting accepted");
  (* Well under the limit still parses. *)
  let shallow = String.make 100 '[' ^ "1" ^ String.make 100 ']' in
  match Llhsc.Json.parse shallow with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("shallow nesting rejected: " ^ msg)

let test_json_trailing_garbage () =
  (match Llhsc.Json.parse "{\"a\":1} extra" with
   | Error msg ->
     Alcotest.(check bool) "mentions trailing" true
       (Llhsc.Util.contains msg "trailing")
   | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Llhsc.Json.parse "  {\"a\": 1}  " with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("surrounding whitespace rejected: " ^ msg)

let () =
  Alcotest.run "serve"
    [
      ( "http well-formed",
        [
          Alcotest.test_case "simple GET" `Quick test_simple_get;
          Alcotest.test_case "POST with body" `Quick test_post_with_body;
          Alcotest.test_case "bare LF lines" `Quick test_bare_lf_lines;
          Alcotest.test_case "chunked body" `Quick test_chunked_body;
          Alcotest.test_case "chunk extensions" `Quick test_chunk_extensions_ignored;
          Alcotest.test_case "split_target" `Quick test_split_target;
        ] );
      ( "http hostile",
        [
          Alcotest.test_case "bad method" `Quick test_bad_method;
          Alcotest.test_case "bad version" `Quick test_bad_version;
          Alcotest.test_case "oversized declared body" `Quick test_oversized_declared_body;
          Alcotest.test_case "oversized chunked body" `Quick test_oversized_chunked_body;
          Alcotest.test_case "truncated chunked awaits" `Quick test_truncated_chunked;
          Alcotest.test_case "malformed chunk framing" `Quick test_malformed_chunk_framing;
          Alcotest.test_case "oversized headers" `Quick test_oversized_headers;
          Alcotest.test_case "conflicting framing" `Quick test_conflicting_framing;
          Alcotest.test_case "header syntax" `Quick test_header_syntax;
          Alcotest.test_case "verdict frozen" `Quick test_feed_after_verdict_frozen;
        ] );
      ( "json hardening",
        [
          Alcotest.test_case "depth limit" `Quick test_json_depth_limit;
          Alcotest.test_case "trailing garbage" `Quick test_json_trailing_garbage;
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest prop_split_read_deterministic ] );
    ]
