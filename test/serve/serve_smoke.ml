(* End-to-end smoke harness for the serve daemon: starts real daemons on
   ephemeral ports and drives them over sockets through the full
   overload+fault schedule the issue demands —

     - valid check/pipeline requests, byte-identical to the batch CLI;
     - malformed, oversized and slow-loris requests (isolation: each
       costs only its own connection);
     - queue saturation and tenant-quota sheds (429 + Retry-After);
     - seeded job kills and hangs (500 / 504), client disconnects;
     - mid-flight SIGTERM: in-flight work answered, drain exits 0.

   Every accepted request must receive exactly one well-formed HTTP
   response.  Usage: serve_smoke.exe LLHSC_BINARY FIXTURES_DIR *)

(* Reference CLI runs cd into scratch directories, so both paths must
   survive a change of working directory. *)
let absolute p = if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
let llhsc = absolute Sys.argv.(1)
let fixtures = absolute Sys.argv.(2)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt
let say fmt = Printf.ksprintf (fun m -> print_endline ("# " ^ m); flush stdout) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let tmp_root =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "llhsc-serve-smoke-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  at_exit (fun () -> rm_rf dir);
  dir

(* --- daemon management ------------------------------------------------------- *)

type daemon = { pid : int; port : int; log : in_channel }

let start_daemon ?(env = []) args =
  let out_r, out_w = Unix.pipe () in
  let full_env =
    Array.append (Unix.environment ()) (Array.of_list env)
  in
  let argv = Array.of_list (llhsc :: "serve" :: "--port" :: "0" :: args) in
  let pid =
    Unix.create_process_env llhsc argv full_env Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let log = Unix.in_channel_of_descr out_r in
  let line = try input_line log with End_of_file -> fail "daemon died before binding" in
  let port =
    try Scanf.sscanf line "llhsc serve: listening on %[0-9.]:%d" (fun _ p -> p)
    with Scanf.Scan_failure _ | End_of_file -> fail "unparsable listen line: %s" line
  in
  { pid; port; log }

(* SIGTERM the daemon and insist the drain exits 0. *)
let stop_daemon d =
  Unix.kill d.pid Sys.sigterm;
  (match Unix.waitpid [] d.pid with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED c -> fail "daemon drain exited %d, want 0" c
   | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> fail "daemon died on signal %d" s);
  close_in_noerr d.log

(* --- minimal HTTP client ----------------------------------------------------- *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let recv_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 16384 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      Buffer.contents buf
  in
  go ()

type resp = { status : int; headers : (string * string) list; body : string }

let parse_response raw =
  let head_end =
    match Llhsc.Util.contains raw "\r\n\r\n" with
    | true ->
      let rec find i = if String.sub raw i 4 = "\r\n\r\n" then i else find (i + 1) in
      find 0
    | false -> fail "no header/body separator in %S" raw
  in
  let head = String.sub raw 0 head_end in
  let body = String.sub raw (head_end + 4) (String.length raw - head_end - 4) in
  match String.split_on_char '\n' head with
  | [] -> fail "empty response"
  | status_line :: header_lines ->
    let status =
      try Scanf.sscanf status_line "HTTP/1.1 %d" (fun s -> s)
      with Scanf.Scan_failure _ -> fail "bad status line %S" status_line
    in
    let headers =
      List.filter_map
        (fun line ->
          let line = String.trim line in
          match String.index_opt line ':' with
          | None -> None
          | Some i ->
            Some
              ( String.lowercase_ascii (String.sub line 0 i),
                String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))
        header_lines
    in
    (* Framing check: declared length must match what arrived. *)
    (match List.assoc_opt "content-length" headers with
     | Some cl when int_of_string cl <> String.length body ->
       fail "Content-Length %s but %d body bytes" cl (String.length body)
     | _ -> ());
    { status; headers; body }

(* One-shot request over a fresh connection. *)
let request ?(headers = []) d meth path body =
  let fd = connect d.port in
  let hdrs =
    List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers
    |> String.concat ""
  in
  send_all fd
    (Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\n%sContent-Length: %d\r\n\r\n%s" meth
       path hdrs (String.length body) body);
  let resp = parse_response (recv_all fd) in
  Unix.close fd;
  resp

let raw_request d bytes =
  let fd = connect d.port in
  send_all fd bytes;
  let resp = parse_response (recv_all fd) in
  Unix.close fd;
  resp

let json_member resp name =
  match Llhsc.Json.parse resp.body with
  | Error m -> fail "response body is not JSON (%s): %S" m resp.body
  | Ok v -> (
    match Llhsc.Json.member name v with
    | Some m -> m
    | None -> fail "response body lacks %S: %s" name resp.body)

let json_str resp name =
  match Llhsc.Json.to_str (json_member resp name) with
  | Some s -> s
  | None -> fail "response %S is not a string" name

let expect_status what want (r : resp) =
  if r.status <> want then fail "%s: status %d, want %d (body %S)" what r.status want r.body

let expect_code what want (r : resp) =
  let got = json_str r "code" in
  if got <> want then fail "%s: error code %S, want %S" what got want

let expect_retry_after what (r : resp) =
  if not (List.mem_assoc "retry-after" r.headers) then
    fail "%s: shed response lacks Retry-After" what

(* --- batch-CLI reference runs ------------------------------------------------ *)

let sh fmt =
  Printf.ksprintf
    (fun cmd ->
      let rc = Sys.command cmd in
      (cmd, rc))
    fmt

(* Run the CLI in [dir] and return (stdout, stderr, exit code). *)
let cli_run ~dir args =
  let out = Filename.concat dir "cli.out" and err = Filename.concat dir "cli.err" in
  let _, rc = sh "cd %s && %s %s > cli.out 2> cli.err" (Filename.quote dir) (Filename.quote llhsc) args in
  (read_file out, read_file err, rc)

let good_dts =
  "/dts-v1/;\n\
   / {\n\
   \t#address-cells = <2>;\n\
   \t#size-cells = <2>;\n\
   \tmemory@80000000 {\n\
   \t\tdevice_type = \"memory\";\n\
   \t\treg = <0x0 0x80000000 0x0 0x40000000>;\n\
   \t};\n\
   };\n"

let bad_dts = "/dts-v1/;\n/ { broken\n"

(* The fixture pipeline request: every input shipped inline, exercising
   schemas, auxiliary files (the /include/d cpus.dtsi), certify and
   retry. *)
let pipeline_body ~jobs =
  let fx name = read_file (Filename.concat fixtures name) in
  let schemas =
    Sys.readdir (Filename.concat fixtures "schemas")
    |> Array.to_list |> List.sort String.compare
    |> List.map (fun n -> (n, Llhsc.Json.Str (fx (Filename.concat "schemas" n))))
  in
  Llhsc.Json.to_string
    (Llhsc.Json.Obj
       [ ("core", Str (fx "custom-sbc.dts"));
         ("deltas", Str (fx "custom-sbc.deltas"));
         ("model", Str (fx "custom-sbc.fm"));
         ("files", Obj [ ("cpus.dtsi", Str (fx "cpus.dtsi")) ]);
         ("schemas", Obj schemas);
         ( "vms",
           List
             [ List
                 (List.map (fun s -> Llhsc.Json.Str s)
                    [ "memory"; "cpu@0"; "uart@20000000"; "uart@30000000"; "veth0" ]);
               List
                 (List.map (fun s -> Llhsc.Json.Str s)
                    [ "memory"; "cpu@1"; "uart@20000000"; "uart@30000000"; "veth1" ])
             ] );
         ("exclusive", List [ Str "cpus" ]);
         ("certify", Bool true);
         ("retry", Int 3);
         ("jobs", Int jobs) ])

(* Mirror of the served pipeline job's working directory, for the
   byte-identity diff. *)
let pipeline_ref_dir () =
  let dir = Filename.concat tmp_root "pipeline-ref" in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  Unix.mkdir (Filename.concat dir "schemas") 0o700;
  let fx name = read_file (Filename.concat fixtures name) in
  write_file (Filename.concat dir "core.dts") (fx "custom-sbc.dts");
  write_file (Filename.concat dir "board.deltas") (fx "custom-sbc.deltas");
  write_file (Filename.concat dir "board.fm") (fx "custom-sbc.fm");
  write_file (Filename.concat dir "cpus.dtsi") (fx "cpus.dtsi");
  Array.iter
    (fun n ->
      write_file
        (Filename.concat (Filename.concat dir "schemas") n)
        (fx (Filename.concat "schemas" n)))
    (Sys.readdir (Filename.concat fixtures "schemas"));
  dir

let pipeline_cli_args =
  "pipeline --core core.dts --deltas board.deltas --model board.fm \
   --schemas schemas --vm memory,cpu@0,uart@20000000,uart@30000000,veth0 \
   --vm memory,cpu@1,uart@20000000,uart@30000000,veth1 --exclusive cpus \
   --certify --retry 3"

(* --- scenarios ---------------------------------------------------------------- *)

let test_functional () =
  let d =
    start_daemon
      ~env:[ "LLHSC_SERVE_TEST_HOOKS=1" ]
      [ "--workers"; "2"; "--read-timeout"; "2"; "--max-body"; "1048576";
        "--max-header"; "4096" ]
  in
  say "healthz / readyz / stats";
  expect_status "healthz" 200 (request d "GET" "/healthz" "");
  expect_status "readyz" 200 (request d "GET" "/readyz" "");
  let stats = request d "GET" "/v1/stats" "" in
  expect_status "stats" 200 stats;
  ignore (json_member stats "accepted");

  say "routing refusals";
  expect_status "404" 404 (request d "GET" "/nope" "");
  expect_status "405 healthz" 405 (request d "POST" "/healthz" "");
  expect_status "405 check" 405 (request d "GET" "/v1/check" "");

  say "malformed HTTP is refused without costing more than its socket";
  expect_status "bad request line" 400 (raw_request d "NOT-HTTP\r\n\r\n");
  expect_status "bad version" 505 (raw_request d "GET / HTTP/9.9\r\n\r\n");
  expect_status "oversized declared body" 413
    (raw_request d "POST /v1/check HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n");
  expect_status "oversized headers" 431
    (raw_request d
       ("GET /healthz HTTP/1.1\r\nX-Pad: " ^ String.make 5000 'a' ^ "\r\n\r\n"));
  expect_status "truncated chunked" 408
    (raw_request d
       "POST /v1/check HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel");

  say "slow-loris partial header times out with 408";
  let t0 = Unix.gettimeofday () in
  let r = raw_request d "GET /healthz HTTP/1.1\r\nX-Slow:" in
  expect_status "slow-loris" 408 r;
  if Unix.gettimeofday () -. t0 > 10. then fail "slow-loris cut took too long";

  say "client disconnect mid-body does not disturb the daemon";
  let fd = connect d.port in
  send_all fd "POST /v1/check HTTP/1.1\r\nContent-Length: 1000\r\n\r\npartial";
  Unix.close fd;
  expect_status "healthz after mid-body disconnect" 200 (request d "GET" "/healthz" "");

  say "check: served verdict is byte-identical to the batch CLI";
  let dir = Filename.concat tmp_root "check-ref" in
  rm_rf dir; Unix.mkdir dir 0o700;
  write_file (Filename.concat dir "request.dts") good_dts;
  let cli_out, _, cli_rc = cli_run ~dir "check request.dts" in
  let r = request d "POST" "/v1/check" good_dts in
  expect_status "check good" 200 r;
  if json_str r "status" <> "clean" then fail "check good: not clean: %s" r.body;
  if cli_rc <> 0 then fail "CLI check rc=%d" cli_rc;
  if json_str r "report" <> cli_out then
    fail "served check report differs from CLI:\n%S\nvs\n%S" (json_str r "report") cli_out;

  say "check --certify: byte-identical too";
  let cli_cert, _, _ = cli_run ~dir "check request.dts --certify" in
  let r = request d "POST" "/v1/check?certify=1" good_dts in
  expect_status "check certify" 200 r;
  if json_str r "report" <> cli_cert then fail "certify report differs from CLI";

  say "check: input errors surface with the CLI's diagnostics and exit code";
  write_file (Filename.concat dir "request.dts") bad_dts;
  let _, cli_err, cli_rc = cli_run ~dir "check request.dts" in
  let r = request d "POST" "/v1/check" bad_dts in
  expect_status "check bad" 200 r;
  if json_str r "status" <> "input-error" then fail "bad dts: not input-error: %s" r.body;
  (match Llhsc.Json.to_int (json_member r "exit") with
   | Some e when e = cli_rc -> ()
   | e -> fail "bad dts: exit %s vs CLI %d"
            (match e with Some e -> string_of_int e | None -> "?") cli_rc);
  let served_err =
    match Llhsc.Json.to_str_list (json_member r "stderr") with
    | Some lines -> String.concat "\n" lines
    | None -> fail "stderr not a string list"
  in
  let cli_err_joined =
    String.concat "\n" (List.filter (fun l -> l <> "") (String.split_on_char '\n' cli_err))
  in
  if served_err <> cli_err_joined then
    fail "served stderr differs from CLI:\n%S\nvs\n%S" served_err cli_err_joined;

  say "pipeline (certify+retry+schemas+aux files): byte-identical to the CLI";
  let ref_dir = pipeline_ref_dir () in
  let cli_out, _, cli_rc = cli_run ~dir:ref_dir pipeline_cli_args in
  if cli_rc <> 0 then fail "CLI pipeline rc=%d" cli_rc;
  let r = request d "POST" "/v1/pipeline" (pipeline_body ~jobs:1) in
  expect_status "pipeline" 200 r;
  if json_str r "status" <> "clean" then fail "pipeline not clean: %s" r.body;
  if json_str r "report" <> cli_out then fail "served pipeline report differs from CLI";

  say "pipeline with jobs>1 (shard pool in the job child): same bytes";
  let r = request d "POST" "/v1/pipeline" (pipeline_body ~jobs:2) in
  expect_status "pipeline jobs=2" 200 r;
  if json_str r "report" <> cli_out then fail "sharded pipeline report differs";

  say "hostile pipeline bodies are 400 PARSE, not daemon casualties";
  let r = request d "POST" "/v1/pipeline" "{ not json" in
  expect_status "bad json" 400 r;
  expect_code "bad json" "PARSE" r;
  let r = request d "POST" "/v1/pipeline" (String.make 200_000 '[') in
  expect_status "deep nesting" 400 r;
  expect_code "deep nesting" "PARSE" r;
  let r = request d "POST" "/v1/pipeline" "{\"core\": \"x\"}" in
  expect_status "missing inputs" 400 r;
  expect_code "missing inputs" "PARSE" r;
  let r =
    request d "POST" "/v1/check" ~headers:[ ("X-Llhsc-Filename", "../escape.dts") ]
      good_dts
  in
  expect_status "path traversal filename" 400 r;

  expect_status "healthz after hostile barrage" 200 (request d "GET" "/healthz" "");
  stop_daemon d

let test_overload () =
  let d =
    start_daemon
      ~env:[ "LLHSC_SERVE_TEST_HOOKS=1" ]
      [ "--workers"; "1"; "--queue"; "1"; "--tenant-quota"; "1" ]
  in
  say "queue saturation: 1 running + 1 queued, the rest shed 429 QUEUE";
  (* Distinct tenants so the queue bound (not the per-tenant quota) is
     what trips.  All four requests are in flight before the first delayed
     job finishes, so admission order is: run, queue, shed, shed. *)
  let delayed tenant =
    let fd = connect d.port in
    send_all fd
      (Printf.sprintf
         "POST /v1/check HTTP/1.1\r\nHost: t\r\nX-Api-Key: %s\r\n\
          X-Llhsc-Test-Delay-Ms: 600\r\nContent-Length: %d\r\n\r\n%s"
         tenant (String.length good_dts) good_dts);
    fd
  in
  let fds = List.map delayed [ "t1"; "t2"; "t3"; "t4" ] in
  let resps =
    List.map
      (fun fd ->
        let r = parse_response (recv_all fd) in
        Unix.close fd;
        r)
      fds
  in
  let count s = List.length (List.filter (fun r -> r.status = s) resps) in
  if count 200 <> 2 || count 429 <> 2 then
    fail "overload: got statuses [%s], want two 200s and two 429s"
      (String.concat ";" (List.map (fun r -> string_of_int r.status) resps));
  List.iter
    (fun r ->
      if r.status = 429 then begin
        expect_retry_after "queue shed" r;
        expect_code "queue shed" "QUEUE" r
      end
      else if json_str r "status" <> "clean" then
        fail "accepted overload request not clean: %s" r.body)
    resps;

  say "tenant quota: same key twice concurrently -> one 200, one 429 QUOTA";
  let a = delayed "same" in
  (* Give the daemon a beat to admit the first before the second lands. *)
  Unix.sleepf 0.15;
  let b = delayed "same" in
  let rb = parse_response (recv_all b) in
  let ra = parse_response (recv_all a) in
  Unix.close a; Unix.close b;
  expect_status "quota first" 200 ra;
  expect_status "quota second" 429 rb;
  expect_code "quota second" "QUOTA" rb;
  expect_retry_after "quota second" rb;

  say "every accepted request above was answered exactly once";
  let stats = request d "GET" "/v1/stats" "" in
  let get name =
    match Llhsc.Json.to_int (json_member stats name) with
    | Some i -> i
    | None -> fail "stats %s not an int" name
  in
  if get "accepted" <> get "completed" then
    fail "accepted=%d but completed=%d" (get "accepted") (get "completed");
  if get "shed_queue" <> 2 then fail "shed_queue=%d, want 2" (get "shed_queue");
  if get "shed_tenant" <> 1 then fail "shed_tenant=%d, want 1" (get "shed_tenant");
  stop_daemon d

let test_faults () =
  let d =
    start_daemon
      ~env:
        [ "LLHSC_SERVE_TEST_HOOKS=1"; "LLHSC_FAULT_KILL_JOB=0";
          "LLHSC_FAULT_HANG_JOB=1" ]
      [ "--workers"; "2"; "--request-deadline"; "1.5" ]
  in
  say "job 0 is killed at birth -> 500 WORKER, exactly one response";
  let r = request d "POST" "/v1/check" good_dts in
  expect_status "killed job" 500 r;
  expect_code "killed job" "WORKER" r;

  say "job 1 hangs -> lease expires -> process group killed -> 504 DEADLINE";
  let t0 = Unix.gettimeofday () in
  let r = request d "POST" "/v1/check" good_dts in
  expect_status "hung job" 504 r;
  expect_code "hung job" "DEADLINE" r;
  if Unix.gettimeofday () -. t0 > 10. then fail "deadline kill took too long";

  say "the daemon survives both faults and serves job 2 normally";
  let r = request d "POST" "/v1/check" good_dts in
  expect_status "after faults" 200 r;
  if json_str r "status" <> "clean" then fail "post-fault check not clean";

  say "client disconnect while job runs: slot freed, daemon healthy";
  let fd = connect d.port in
  send_all fd
    (Printf.sprintf
       "POST /v1/check HTTP/1.1\r\nHost: t\r\nX-Llhsc-Test-Delay-Ms: 400\r\n\
        Content-Length: %d\r\n\r\n%s"
       (String.length good_dts) good_dts);
  Unix.sleepf 0.15;
  Unix.close fd;
  Unix.sleepf 0.1;
  expect_status "healthz after abandoned job" 200 (request d "GET" "/healthz" "");
  stop_daemon d

let test_drain () =
  let d = start_daemon ~env:[ "LLHSC_SERVE_TEST_HOOKS=1" ] [ "--workers"; "1" ] in
  say "SIGTERM drain: in-flight request still answered, daemon exits 0";
  let fd = connect d.port in
  send_all fd
    (Printf.sprintf
       "POST /v1/check HTTP/1.1\r\nHost: t\r\nX-Llhsc-Test-Delay-Ms: 1200\r\n\
        Content-Length: %d\r\n\r\n%s"
       (String.length good_dts) good_dts);
  Unix.sleepf 0.3;
  Unix.kill d.pid Sys.sigterm;
  Unix.sleepf 0.1;
  (* The front door must be shut: a new connect is either refused outright
     (listener closed) or, if a response does come back, it is a 503 — but
     never a fresh admission. *)
  (try
     let fd = connect d.port in
     send_all fd "GET /readyz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n";
     let raw = recv_all fd in
     Unix.close fd;
     if String.length raw > 0 then begin
       let r = parse_response raw in
       if r.status <> 503 then fail "readyz during drain: %d, want 503" r.status
     end
   with Unix.Unix_error _ -> ());
  let r = parse_response (recv_all fd) in
  Unix.close fd;
  expect_status "in-flight during drain" 200 r;
  if json_str r "status" <> "clean" then fail "drained request not clean: %s" r.body;
  (match Unix.waitpid [] d.pid with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED c -> fail "drain exit %d, want 0" c
   | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> fail "drain died on signal %d" s);
  close_in_noerr d.log

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  test_functional ();
  test_overload ();
  test_faults ();
  test_drain ();
  print_endline "serve smoke: all scenarios passed"
