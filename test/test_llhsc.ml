(* Tests for the llhsc core: the semantic checker (memory overlap formula
   (7), E5/E6; interrupts; truncation lint), the resource allocation checker
   (§IV-A), the syntactic checker wrapper, and the end-to-end pipeline of
   Fig. 2 (E3). *)

module T = Devicetree.Tree
module RE = Llhsc.Running_example
module Sem = Llhsc.Semantic
module Rep = Llhsc.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let errors findings = Rep.errors findings

(* --- semantic: memory overlap (E5) -------------------------------------------------- *)

let test_clean_core_has_no_overlap () =
  let findings = Sem.check_memory (RE.core_tree ()) in
  check_int "no collisions" 0 (List.length findings)

let test_uart_memory_clash () =
  (* E5 (§I-A): the serial port's base address clashes with the second
     memory bank.  Syntactically valid; dtc and dt-schema accept it. *)
  let t = RE.core_tree () in
  let clashing =
    [ Devicetree.Ast.Cells
        { bits = 32;
          cells =
            List.map (fun v -> Devicetree.Ast.Cell_int v) [ 0x0L; 0x60000000L; 0x0L; 0x1000L ]
        }
    ]
  in
  let t = T.set_prop t ~path:"/uart@20000000" "reg" clashing in
  (* dt-schema (direct validation) still passes: the reg is structurally fine. *)
  let direct = Llhsc.Syntactic.check_direct ~schemas:(RE.schemas_for t) t in
  check_int "dt-schema baseline is blind to the clash" 0 (List.length (errors direct));
  (* The semantic checker finds it, with the clash address as witness. *)
  let findings = Sem.check_memory t in
  check_int "one collision" 1 (List.length findings);
  let f = List.hd findings in
  check_bool "names both nodes" true
    (Test_util.contains f.Rep.message "/memory@40000000"
    && Test_util.contains f.Rep.message "/uart@20000000");
  check_bool "witness is 0x60000000" true (Test_util.contains f.Rep.message "0x60000000")

let test_adjacent_regions_do_not_collide () =
  (* [0x40000000, 0x60000000) and [0x60000000, 0x80000000) touch but do not
     overlap — the strict bounds of formula (7). *)
  let t = RE.core_tree () in
  let findings = Sem.check_memory t in
  check_int "banks are adjacent, not colliding" 0 (List.length findings)

let test_cpu_ids_not_treated_as_addresses () =
  (* /cpus children have reg = <0>, <1>: CPU ids, not addresses.  They must
     not be reported as colliding with anything (e.g. a device at 0x0). *)
  let t = RE.core_tree () in
  let t = T.set_prop t ~path:"/cpus/cpu@0" "reg"
      [ Devicetree.Ast.Cells { bits = 32; cells = [ Devicetree.Ast.Cell_int 0L ] } ] in
  let findings = Sem.check_memory t in
  check_int "no findings" 0 (List.length findings)

(* --- semantic: truncation (E6) -------------------------------------------------------- *)

let generate_vm1 ~with_d4 =
  let deltas = RE.deltas () in
  let deltas =
    if with_d4 then deltas
    else List.filter (fun d -> d.Delta.Lang.name <> "d4") deltas
  in
  Delta.Apply.generate ~core:(RE.core_tree ()) ~deltas ~selected:RE.vm1_features

let test_omitting_d4_collides_at_zero () =
  (* E6 (§IV-C): without d4, the 64-bit reg is reinterpreted under the
     32-bit cells installed by d3 — four banks appear instead of two, and
     the checker reports a collision at address 0x0. *)
  let t = generate_vm1 ~with_d4:false in
  let memory = T.find_exn t "/memory@40000000" in
  let regions =
    Devicetree.Addresses.decode_reg ~address_cells:1 ~size_cells:1
      (Option.get (T.get_prop memory "reg"))
  in
  check_int "four banks found instead of two" 4 (List.length regions);
  let findings = Sem.check_memory t in
  check_bool "collisions reported" true (findings <> []);
  check_bool "collision at address 0x0" true
    (List.exists (fun f -> Test_util.contains f.Rep.message "at address 0x0") findings);
  (* dt-schema accepts the truncated reg: 8 cells is a multiple of 2. *)
  let direct = Llhsc.Syntactic.check_direct ~schemas:(RE.schemas_for t) t in
  check_bool "dt-schema baseline accepts the truncation" true
    (not
       (List.exists
          (fun f -> Test_util.contains f.Rep.message "multiple")
          (errors direct)))

let test_with_d4_is_clean () =
  let t = generate_vm1 ~with_d4:true in
  check_int "no collisions" 0 (List.length (Sem.check_memory t))

let test_truncation_lint () =
  let t = generate_vm1 ~with_d4:false in
  let warnings = Sem.check_truncation t in
  check_bool "zero-sized banks flagged" true
    (List.exists
       (fun f -> f.Rep.severity = Rep.Warning && f.Rep.node_path = "/memory@40000000")
       warnings)

(* --- semantic: interrupts --------------------------------------------------------------- *)

let test_interrupt_conflict () =
  let src =
    {|
/dts-v1/;
/ {
    #address-cells = <1>; #size-cells = <1>;
    a@1000 { reg = <0x1000 0x10>; interrupts = <7>; };
    b@2000 { reg = <0x2000 0x10>; interrupts = <7>; };
    c@3000 { reg = <0x3000 0x10>; interrupts = <9>; };
};
|}
  in
  let t = T.of_source ~file:"irq.dts" src in
  let findings = Sem.check_interrupts t in
  check_int "one conflict" 1 (List.length findings);
  let f = List.hd findings in
  check_bool "line 7 reported" true (Test_util.contains f.Rep.message "7");
  check_bool "both nodes mentioned" true
    (Test_util.contains f.Rep.message "/a@1000" && Test_util.contains f.Rep.message "/b@2000")

let test_interrupts_distinct_parents_ok () =
  let src =
    {|
/dts-v1/;
/ {
    #address-cells = <1>; #size-cells = <1>;
    gic0: intc@1000 { reg = <0x1000 0x10>; };
    gic1: intc@2000 { reg = <0x2000 0x10>; };
    a@3000 { reg = <0x3000 0x10>; interrupt-parent = <&gic0>; interrupts = <7>; };
    b@4000 { reg = <0x4000 0x10>; interrupt-parent = <&gic1>; interrupts = <7>; };
};
|}
  in
  let t = T.resolve_phandles (T.of_source ~file:"irq2.dts" src) in
  check_int "no conflict across parents" 0 (List.length (Sem.check_interrupts t))

(* --- alloc ------------------------------------------------------------------------------- *)

let test_alloc_auto_assignment () =
  (* CPUs are greyed out in Fig. 1: the checker assigns them automatically. *)
  let fm = RE.feature_model () in
  match
    Llhsc.Alloc.allocate ~exclusive:RE.exclusive fm ~vms:2
      ~requests:
        [ Llhsc.Alloc.request 1 [ "veth0"; "uart@20000000" ];
          Llhsc.Alloc.request 2 [ "veth1"; "uart@30000000" ]
        ]
  with
  | Llhsc.Alloc.Rejected fs ->
    Alcotest.failf "unexpected rejection: %a" Fmt.(list Rep.pp) fs
  | Llhsc.Alloc.Allocated { vms; platform } ->
    let vm1 = List.assoc 1 vms and vm2 = List.assoc 2 vms in
    check_bool "vm1 got cpu@0 (via veth0 => cpu@0)" true (List.mem "cpu@0" vm1);
    check_bool "vm2 got cpu@1" true (List.mem "cpu@1" vm2);
    check_bool "platform union has both" true
      (List.mem "cpu@0" platform && List.mem "cpu@1" platform)

let test_alloc_rejects_double_cpu () =
  let fm = RE.feature_model () in
  match
    Llhsc.Alloc.allocate ~exclusive:RE.exclusive fm ~vms:2
      ~requests:[ Llhsc.Alloc.request 1 [ "cpu@0" ]; Llhsc.Alloc.request 2 [ "cpu@0" ] ]
  with
  | Llhsc.Alloc.Rejected fs ->
    check_bool "platform-level rejection" true
      (List.exists (fun f -> f.Rep.node_path = "platform") fs)
  | Llhsc.Alloc.Allocated _ -> Alcotest.fail "expected rejection"

let test_alloc_rejects_invalid_selection () =
  let fm = RE.feature_model () in
  match
    Llhsc.Alloc.allocate ~exclusive:RE.exclusive fm ~vms:1
      ~requests:[ Llhsc.Alloc.request 1 [ "veth0"; "cpu@1" ] (* violates veth0 => cpu@0 *) ]
  with
  | Llhsc.Alloc.Rejected fs ->
    check_bool "vm1 blamed" true (List.exists (fun f -> f.Rep.node_path = "vm1") fs)
  | Llhsc.Alloc.Allocated _ -> Alcotest.fail "expected rejection"

let test_alloc_bad_vm_index () =
  let fm = RE.feature_model () in
  match
    Llhsc.Alloc.allocate fm ~vms:1 ~requests:[ Llhsc.Alloc.request 5 [ "memory" ] ]
  with
  | Llhsc.Alloc.Rejected _ -> ()
  | Llhsc.Alloc.Allocated _ -> Alcotest.fail "expected rejection"

(* --- pipeline (E3) ------------------------------------------------------------------------ *)

let run_pipeline () =
  Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
    ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
    ~vm_requests:[ RE.vm1_features; RE.vm2_features ] ()

let test_pipeline_end_to_end () =
  let outcome = run_pipeline () in
  check_bool "all checks green" true (Llhsc.Pipeline.ok outcome);
  check_int "three products (2 VMs + platform)" 3 (List.length outcome.Llhsc.Pipeline.products);
  let names = List.map (fun p -> p.Llhsc.Pipeline.name) outcome.Llhsc.Pipeline.products in
  Alcotest.(check (list string)) "product names" [ "vm1"; "vm2"; "platform" ] names;
  (* Delta orders recorded per product (E4). *)
  let vm1_order = List.assoc "vm1" outcome.Llhsc.Pipeline.delta_orders in
  check_bool "vm1 order starts with d3" true (List.hd vm1_order = "d3");
  (* The platform tree carries the union of devices. *)
  let platform =
    List.find (fun p -> p.Llhsc.Pipeline.name = "platform") outcome.Llhsc.Pipeline.products
  in
  check_bool "platform has both veths" true
    (T.find platform.Llhsc.Pipeline.tree "/vEthernet/veth0@80000000" <> None
    && T.find platform.Llhsc.Pipeline.tree "/vEthernet/veth1@90000000" <> None)

let test_pipeline_catches_broken_delta_set () =
  (* Drop d4 from the product line: every product with memory collides. *)
  let deltas = List.filter (fun d -> d.Delta.Lang.name <> "d4") (RE.deltas ()) in
  let outcome =
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
      ~core:(RE.core_tree ()) ~deltas ~schemas_for:RE.schemas_for
      ~vm_requests:[ RE.vm1_features; RE.vm2_features ] ()
  in
  check_bool "pipeline not ok" false (Llhsc.Pipeline.ok outcome);
  let vm1 = List.find (fun p -> p.Llhsc.Pipeline.name = "vm1") outcome.Llhsc.Pipeline.products in
  check_bool "vm1 has semantic errors" true
    (List.exists (fun f -> f.Rep.checker = "semantic") (errors vm1.Llhsc.Pipeline.findings))

let test_pipeline_rejects_bad_allocation () =
  let outcome =
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
      ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
      ~vm_requests:[ [ "cpu@0"; "veth0" ]; [ "cpu@0" ] ] ()
  in
  check_bool "rejected" false (Llhsc.Pipeline.ok outcome);
  check_bool "no products built" true (outcome.Llhsc.Pipeline.products = [])

let test_pipeline_syntactic_failure_reported () =
  (* Corrupt the core so the memory schema const fails in every product. *)
  let core =
    T.set_prop (RE.core_tree ()) ~path:"/memory@40000000" "device_type"
      [ Devicetree.Ast.Str "ram" ]
  in
  let outcome =
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
      ~core ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
      ~vm_requests:[ RE.vm1_features ] ()
  in
  check_bool "not ok" false (Llhsc.Pipeline.ok outcome);
  let vm1 = List.find (fun p -> p.Llhsc.Pipeline.name = "vm1") outcome.Llhsc.Pipeline.products in
  check_bool "syntactic finding with core" true
    (List.exists
       (fun f ->
         f.Rep.checker = "syntactic"
         && List.exists (fun r -> Test_util.contains r "const:device_type") f.Rep.core)
       vm1.Llhsc.Pipeline.findings)


(* --- pipeline resilience ------------------------------------------------------------ *)

let test_pipeline_isolates_corrupt_product () =
  (* The schema supplier blows up for vm1's tree only (it is the product
     with veth0 but not veth1); the other products must still be checked. *)
  let schemas_for tree =
    let has p = T.find tree p <> None in
    if has "/vEthernet/veth0@80000000" && not (has "/vEthernet/veth1@90000000") then
      raise (Schema.Binding.Error "simulated corrupt schema")
    else RE.schemas_for tree
  in
  let outcome =
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
      ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~schemas_for
      ~vm_requests:[ RE.vm1_features; RE.vm2_features ] ()
  in
  check_int "still three products" 3 (List.length outcome.Llhsc.Pipeline.products);
  check_int "one isolated error" 1 (List.length outcome.Llhsc.Pipeline.errors);
  let d = List.hd outcome.Llhsc.Pipeline.errors in
  check_bool "error names product vm1" true (Test_util.contains d.Diag.message "product vm1");
  Alcotest.(check string) "schema error code" "SCHEMA-BINDING" d.Diag.code;
  check_bool "outcome not ok" false (Llhsc.Pipeline.ok outcome);
  (* vm2 and the platform were still fully checked and are clean. *)
  let vm2 = List.find (fun p -> p.Llhsc.Pipeline.name = "vm2") outcome.Llhsc.Pipeline.products in
  let platform =
    List.find (fun p -> p.Llhsc.Pipeline.name = "platform") outcome.Llhsc.Pipeline.products
  in
  check_bool "vm2 checked clean" true (vm2.Llhsc.Pipeline.findings = []);
  check_bool "platform checked clean" true (Rep.is_clean platform.Llhsc.Pipeline.findings)

let test_pipeline_budget_inconclusive () =
  (* A zero budget makes every solver query give up; the pipeline must
     terminate and degrade to "inconclusive" warnings, not hang or throw. *)
  let budget =
    Sat.Solver.budget ~max_conflicts:0 ~max_decisions:0 ~max_propagations:0 ()
  in
  let outcome =
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~budget ~model:(RE.feature_model ())
      ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
      ~vm_requests:[ RE.vm1_features; RE.vm2_features ] ()
  in
  check_bool "no isolated errors" true (outcome.Llhsc.Pipeline.errors = []);
  check_int "three products" 3 (List.length outcome.Llhsc.Pipeline.products);
  let all_findings =
    outcome.Llhsc.Pipeline.partition_findings
    @ List.concat_map (fun p -> p.Llhsc.Pipeline.findings) outcome.Llhsc.Pipeline.products
  in
  check_bool "inconclusive warnings present" true
    (List.exists
       (fun f ->
         f.Rep.severity = Rep.Warning && Test_util.contains f.Rep.message "inconclusive")
       all_findings);
  (* Inconclusive is a warning, not a proof: no false "collision" errors. *)
  check_bool "no error findings under budget" true (errors all_findings = [])

(* --- product-line soundness: every product of the feature model generates
   and checks clean (the "correct by construction" claim). ------------------- *)

let test_all_products_check_clean () =
  let model = RE.feature_model () in
  let env = Featuremodel.Analysis.encode model in
  let products = Featuremodel.Analysis.enumerate_products env in
  check_int "12 products" 12 (List.length products);
  let solver = Smt.Solver.create () in
  List.iteri
    (fun i features ->
      let tree =
        Delta.Apply.generate ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~selected:features
      in
      let name = Printf.sprintf "p%d" i in
      let syntactic =
        Llhsc.Syntactic.check ~solver ~schemas:(RE.schemas_for tree) ~product:name tree
      in
      let semantic = Llhsc.Semantic.check ~solver tree in
      let errs = errors (syntactic @ semantic) in
      if errs <> [] then
        Alcotest.failf "product {%s} has findings: %a" (String.concat ", " features)
          Fmt.(list Rep.pp) errs)
    products


(* --- checking decoded DTBs (binary round trip into the checker) ------------- *)

let test_check_decoded_dtb () =
  (* Encode the clean core to a DTB, decode, and run the semantic checker on
     the untyped result: raw byte values must decode as 32-bit cells. *)
  let blob = Devicetree.Fdt.encode (RE.core_tree ()) in
  let decoded, _ = Devicetree.Fdt.decode blob in
  check_int "clean through DTB" 0 (List.length (errors (Sem.check_memory decoded)));
  (* And a clashing tree keeps its collision through the binary form. *)
  let t = RE.core_tree () in
  let t =
    T.set_prop t ~path:"/uart@20000000" "reg"
      [ Devicetree.Ast.Cells
          { bits = 32;
            cells = List.map (fun v -> Devicetree.Ast.Cell_int v) [ 0x0L; 0x60000000L; 0x0L; 0x1000L ]
          }
      ]
  in
  let decoded_clash, _ = Devicetree.Fdt.decode (Devicetree.Fdt.encode t) in
  check_int "clash survives DTB round trip" 1
    (List.length (errors (Sem.check_memory decoded_clash)))


(* --- cross-VM partitioning ---------------------------------------------------- *)

let run_with ~deltas ~vm_requests =
  Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
    ~core:(RE.core_tree ()) ~deltas ~schemas_for:RE.schemas_for ~vm_requests ()

let test_partition_warnings_on_shared_ram () =
  (* The paper-faithful delta set gives both VMs both banks and both uarts:
     4 warnings (2 RAM overlaps + 2 shared devices), no errors. *)
  let outcome = run_with ~deltas:(RE.deltas ()) ~vm_requests:[ RE.vm1_features; RE.vm2_features ] in
  check_bool "still ok (warnings only)" true (Llhsc.Pipeline.ok outcome);
  let fs = outcome.Llhsc.Pipeline.partition_findings in
  check_int "four warnings" 4 (List.length fs);
  check_bool "all warnings" true (List.for_all (fun f -> f.Rep.severity = Rep.Warning) fs);
  check_bool "RAM not partitioned reported" true
    (List.exists (fun f -> Test_util.contains f.Rep.message "not partitioned") fs)

let test_partitioned_variant_is_clean () =
  (* d7/d8 + per-VM uarts: zero cross-VM findings. *)
  let outcome =
    run_with ~deltas:(RE.partitioned_deltas ())
      ~vm_requests:[ RE.vm1_partitioned_features; RE.vm2_partitioned_features ]
  in
  check_bool "ok" true (Llhsc.Pipeline.ok outcome);
  check_int "no cross-VM findings" 0 (List.length outcome.Llhsc.Pipeline.partition_findings);
  (* Each VM really has one bank. *)
  let vm1 = List.find (fun p -> p.Llhsc.Pipeline.name = "vm1") outcome.Llhsc.Pipeline.products in
  let vm2 = List.find (fun p -> p.Llhsc.Pipeline.name = "vm2") outcome.Llhsc.Pipeline.products in
  let bank p =
    Devicetree.Addresses.decode_reg ~address_cells:1 ~size_cells:1
      (Option.get (T.get_prop (T.find_exn p.Llhsc.Pipeline.tree "/memory@40000000") "reg"))
  in
  (match (bank vm1, bank vm2) with
   | [ b1 ], [ b2 ] ->
     Alcotest.(check int64) "vm1 bank" 0x40000000L b1.Devicetree.Addresses.base;
     Alcotest.(check int64) "vm2 bank" 0x60000000L b2.Devicetree.Addresses.base
   | _ -> Alcotest.fail "expected one bank per VM");
  (* The platform still carries both banks. *)
  let platform =
    List.find (fun p -> p.Llhsc.Pipeline.name = "platform") outcome.Llhsc.Pipeline.products
  in
  check_int "platform keeps two banks" 2 (List.length (bank platform))

let test_partition_cpu_sharing_is_error () =
  (* Hand two trees with the same cpu to the checker directly. *)
  let t = RE.core_tree () in
  let findings = Llhsc.Partition.check ~platform:t [ ("vm1", t); ("vm2", t) ] in
  check_bool "cpu error present" true
    (List.exists
       (fun f -> f.Rep.severity = Rep.Error && Test_util.contains f.Rep.message "CPU")
       findings)

let test_partition_containment () =
  (* A VM with a device at an address the platform does not have. *)
  let platform = RE.core_tree () in
  let vm =
    T.set_prop (RE.core_tree ()) ~path:"/uart@20000000" "reg"
      [ Devicetree.Ast.Cells
          { bits = 32;
            cells = List.map (fun v -> Devicetree.Ast.Cell_int v) [ 0x0L; 0x90000000L; 0x0L; 0x1000L ]
          }
      ]
  in
  let vm = T.remove_node vm ~path:"/cpus/cpu@1" in
  let findings = Llhsc.Partition.check ~platform [ ("vm1", vm) ] in
  check_bool "containment error" true
    (List.exists
       (fun f -> f.Rep.severity = Rep.Error && Test_util.contains f.Rep.message "not backed")
       findings);
  check_bool "witness address reported" true
    (List.exists (fun f -> Test_util.contains f.Rep.message "0x90000000") findings)


(* --- property: sweep prefilter agrees with the pairwise formulation --------- *)

let prop_sweep_equals_pairwise =
  QCheck.Test.make ~count:100 ~name:"sweep strategy = pairwise strategy"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 10)
           (pair (int_bound 0xFFFF) (int_range 1 0x200))))
    (fun raw ->
      (* Build a synthetic tree from the random (base, size) pairs. *)
      let buf = Buffer.create 256 in
      Buffer.add_string buf "/dts-v1/;\n/ { #address-cells = <1>; #size-cells = <1>;\n";
      List.iteri
        (fun i (base, size) ->
          Buffer.add_string buf
            (Printf.sprintf "dev%d@%x { reg = <0x%x 0x%x>; };\n" i base base size))
        raw;
      Buffer.add_string buf "};\n";
      let tree = T.of_source ~file:"rand.dts" (Buffer.contents buf) in
      let summarize findings =
        List.sort_uniq compare (List.map (fun f -> f.Rep.message) findings)
      in
      summarize (Sem.check_memory ~strategy:`Sweep tree)
      = summarize (Sem.check_memory ~strategy:`Pairwise tree))


(* --- unit-address lints ------------------------------------------------------ *)

let test_unit_address_mismatch () =
  let t =
    T.of_source ~file:"ua.dts"
      "/dts-v1/;\n/ { #address-cells = <1>; #size-cells = <1>; dev@1000 { reg = <0x2000 0x10>; }; };"
  in
  let warnings = Sem.check_unit_addresses t in
  check_int "one warning" 1 (List.length warnings);
  check_bool "mentions mismatch" true
    (Test_util.contains (List.hd warnings).Rep.message "does not match")

let test_unit_address_duplicate () =
  let t =
    T.of_source ~file:"ud.dts"
      "/dts-v1/;\n/ { #address-cells = <1>; #size-cells = <1>; a@1000 { reg = <0x1000 0x10>; }; b@1000 { reg = <0x1000 0x10>; }; };"
  in
  let warnings = Sem.check_unit_addresses t in
  check_bool "duplicate reported" true
    (List.exists (fun f -> Test_util.contains f.Rep.message "duplicated") warnings)

let test_unit_address_clean () =
  check_int "running example clean" 0
    (List.length (Sem.check_unit_addresses (RE.core_tree ())))


(* --- quad-core RV64 case study (three VMs, full partitioning) ---------------- *)

module Q = Llhsc.Quad_rv64

let test_quad_pipeline_green () =
  let outcome = Q.run_pipeline () in
  check_bool "ok" true (Llhsc.Pipeline.ok outcome);
  check_int "four products" 4 (List.length outcome.Llhsc.Pipeline.products);
  (* Fully partitioned: no cross-VM findings at all (the shared PLIC is
     hypervisor-virtualised and excluded by design). *)
  check_int "no cross-VM findings" 0 (List.length outcome.Llhsc.Pipeline.partition_findings);
  (* Every product individually clean. *)
  List.iter
    (fun p -> check_bool (p.Llhsc.Pipeline.name ^ " clean") true (p.Llhsc.Pipeline.findings = []))
    outcome.Llhsc.Pipeline.products

let test_quad_pipeline_certified () =
  (* The full case-study pipeline under --certify: every solver verdict of
     the run must carry a validated certificate, and the outcome stays ok. *)
  let outcome = Q.run_pipeline ~certify:true () in
  check_bool "ok" true (Llhsc.Pipeline.ok outcome);
  match outcome.Llhsc.Pipeline.cert with
  | None -> Alcotest.fail "certified run must expose a cert report"
  | Some r ->
    check_bool "enabled" true r.Smt.Solver.enabled;
    check_bool "certified queries" true (r.Smt.Solver.certs <> []);
    check_bool "no failures" true (r.Smt.Solver.failures = []);
    check_bool "every cert ok" true
      (List.for_all (fun c -> c.Smt.Solver.ok) r.Smt.Solver.certs)

let test_quad_products () =
  let outcome = Q.run_pipeline () in
  let product name =
    List.find (fun p -> p.Llhsc.Pipeline.name = name) outcome.Llhsc.Pipeline.products
  in
  let vm1 = (product "vm1").Llhsc.Pipeline.tree in
  check_bool "vm1 has cluster0 cpus" true
    (T.find vm1 "/cpus/cluster0/cpu@0" <> None && T.find vm1 "/cpus/cluster0/cpu@1" <> None);
  check_bool "vm1 lacks cluster1 cpus" true
    (T.find vm1 "/cpus/cluster1/cpu@2" = None && T.find vm1 "/cpus/cluster1/cpu@3" = None);
  check_bool "vm1 vnet0" true (T.find vm1 "/vEthernet/vnet0@c0000000" <> None);
  let vm3 = (product "vm3").Llhsc.Pipeline.tree in
  check_bool "vm3 headless" true (T.find vm3 "/soc/uart@10000000" = None);
  check_bool "vm3 virtio1" true (T.find vm3 "/soc/virtio@10003000" <> None);
  check_bool "vm3 no vEthernet" true (T.find vm3 "/vEthernet" = None)

let test_quad_bao_clusters () =
  let outcome = Q.run_pipeline () in
  let platform =
    (List.find (fun p -> p.Llhsc.Pipeline.name = "platform") outcome.Llhsc.Pipeline.products)
      .Llhsc.Pipeline.tree
  in
  let p = Bao.Platform.of_tree platform in
  check_int "4 cpus" 4 p.Bao.Platform.cpu_num;
  Alcotest.(check (list int)) "two clusters of 2" [ 2; 2 ] p.Bao.Platform.core_nums;
  check_int "4 memory regions" 4 (List.length p.Bao.Platform.regions);
  (* Per-VM configs carry the pass-through interrupts. *)
  let vm1 =
    Bao.Config.vm_of_tree ~name:"vm1"
      (List.find (fun p -> p.Llhsc.Pipeline.name = "vm1") outcome.Llhsc.Pipeline.products)
        .Llhsc.Pipeline.tree
  in
  check_int "vm1 cpus" 2 vm1.Bao.Config.cpu_num;
  check_bool "vm1 irqs include uart 10 and gpio 3" true
    (List.mem 10L vm1.Bao.Config.interrupts && List.mem 3L vm1.Bao.Config.interrupts)

let test_quad_feature_model_size () =
  let env = Featuremodel.Analysis.encode (Q.feature_model ()) in
  (* (2^4-1 banks) x (2^4-1 cpus) x (uarts: 1+3) x (virtio: 1+3) x vnet(3)
     minus the gpio => uart cross constraint carve-outs; just pin the
     exact number as a regression anchor. *)
  check_int "product count" 16200 (Featuremodel.Analysis.count_products env)


(* --- fail-operational: journal round-trips, resume, escalation ---------------- *)

module J = Llhsc.Journal

let outcome_string o = Fmt.str "%a" Llhsc.Pipeline.pp_outcome o

let with_temp_journal f =
  let path = Filename.temp_file "llhsc-journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let quad_inputs_hash = J.inputs_hash ~parts:[ "test-quad"; Llhsc.Quad_rv64.core_dts ]

let sample_entries ~inputs_hash =
  (* The first finding deliberately stresses the JSON layer: quotes,
     backslashes, control characters and multi-byte UTF-8 in every string
     field that reaches the journal. *)
  let weird =
    Rep.finding ~severity:Rep.Warning
      ~core:[ "excl:uart"; "mem[0]" ]
      ~loc:(Devicetree.Loc.make ~file:"odd \"name\"\\dir.dts" ~line:3 ~col:7)
      ~checker:"semantic" ~node_path:"/soc/uart@10000000" "%s"
      "quote \" backslash \\ newline \n tab \t e-acute \xc3\xa9 ctrl \x01 end"
  in
  let plain = Rep.finding ~checker:"alloc" ~node_path:"/memory@80000000" "%s" "plain error" in
  [ { J.kind = J.Product;
      name = "vm1";
      hash = J.product_hash ~inputs_hash ~name:"vm1" ~features:[ "cpu@0"; "uart0" ];
      features = [ "cpu@0"; "uart0" ];
      order = [ "d1"; "d2" ];
      findings = [ weird; plain ];
      certified = true;
      cert_failures = 0
    };
    { J.kind = J.Partition;
      name = "partition";
      hash = J.partition_hash ~inputs_hash ~products:[ ("vm1", [ "cpu@0" ]) ];
      features = [];
      order = [];
      findings = [];
      certified = false;
      cert_failures = 2
    }
  ]

let test_journal_roundtrip () =
  with_temp_journal @@ fun path ->
  let inputs_hash = quad_inputs_hash in
  let entries = sample_entries ~inputs_hash in
  let sink = J.open_ ~path ~inputs_hash in
  List.iter (J.record sink) entries;
  J.close sink;
  let loaded = J.load ~path ~inputs_hash in
  check_int "two entries" 2 (List.length loaded);
  List.iter2
    (fun (written : J.entry) (got : J.entry) ->
      check_bool ("entry " ^ written.J.name ^ " round-trips") true (written = got))
    entries loaded

let test_journal_tolerates_torn_tail () =
  with_temp_journal @@ fun path ->
  let inputs_hash = quad_inputs_hash in
  let sink = J.open_ ~path ~inputs_hash in
  List.iter (J.record sink) (sample_entries ~inputs_hash);
  J.close sink;
  (* Simulate a crash mid-write: half a record, no trailing newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc {|{"kind":"product","name":"vm2","ha|};
  close_out oc;
  let loaded = J.load ~path ~inputs_hash in
  check_int "torn tail skipped" 2 (List.length loaded);
  check_bool "torn record absent" true (J.find loaded J.Product "vm2" = None)

let test_journal_last_record_wins () =
  with_temp_journal @@ fun path ->
  let inputs_hash = quad_inputs_hash in
  let entries = sample_entries ~inputs_hash in
  let first = List.hd entries in
  let updated = { first with J.findings = []; cert_failures = 7 } in
  let sink = J.open_ ~path ~inputs_hash in
  J.record sink first;
  J.record sink (List.nth entries 1);
  J.record sink updated;
  J.close sink;
  let loaded = J.load ~path ~inputs_hash in
  check_int "still two entries" 2 (List.length loaded);
  match J.find loaded J.Product "vm1" with
  | Some e ->
    check_int "latest record wins" 7 e.J.cert_failures;
    check_bool "latest findings win" true (e.J.findings = [])
  | None -> Alcotest.fail "vm1 entry missing"

let test_journal_stale_inputs_hash () =
  with_temp_journal @@ fun path ->
  let inputs_hash = quad_inputs_hash in
  let sink = J.open_ ~path ~inputs_hash in
  List.iter (J.record sink) (sample_entries ~inputs_hash);
  J.close sink;
  (* Different run inputs: the whole journal is stale, nothing loads. *)
  check_bool "whole journal stale" true
    (J.load ~path ~inputs_hash:(J.inputs_hash ~parts:[ "different" ]) = []);
  check_bool "matching hash still loads" true (J.load ~path ~inputs_hash <> [])

(* --- storage faults: Durable fault hooks, journal degradation, fsck ------------ *)

module D = Llhsc.Durable

(* The LLHSC_FAULT_FS schedule is read per-operation, so flipping it with
   putenv works; the counters are process-global and must be rewound
   around every use or a later test inherits a half-spent schedule. *)
let with_fs_fault schedule f =
  Unix.putenv "LLHSC_FAULT_FS" schedule;
  D.reset_faults ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "LLHSC_FAULT_FS" "";
      D.reset_faults ())
    f

let with_temp_file f =
  let path = Filename.temp_file "llhsc-durable" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_durable_atomic_write () =
  with_temp_file @@ fun path ->
  D.write_file ~path "first";
  D.write_file ~path "second";
  Alcotest.(check string) "last commit wins" "second" (slurp path);
  check_bool "no temp file left behind" true
    (Sys.readdir (Filename.dirname path)
    |> Array.for_all (fun f ->
           not (String.length f > String.length (Filename.basename path)
               && String.sub f 0 (String.length (Filename.basename path))
                  = Filename.basename path)))

(* Every injected failure mode must leave the previous contents intact:
   the commit is the rename, and the rename never happens. *)
let check_old_contents_survive name schedule expect_exn =
  with_temp_file @@ fun path ->
  D.write_file ~path "before";
  with_fs_fault schedule @@ fun () ->
  (match D.write_file ~path "after" with
  | () -> Alcotest.fail (name ^ ": injected fault did not fire")
  | exception e ->
    check_bool (name ^ ": expected exception") true (expect_exn e));
  Alcotest.(check string) (name ^ ": old contents intact") "before" (slurp path)

let test_durable_enospc () =
  check_old_contents_survive "enospc" "enospc@1" (function
    | Unix.Unix_error (Unix.ENOSPC, _, _) -> true
    | _ -> false)

let test_durable_short_write () =
  check_old_contents_survive "short" "short@1" (function
    | Unix.Unix_error (Unix.ENOSPC, _, _) -> true
    | _ -> false)

let test_durable_eio_fsync () =
  check_old_contents_survive "eio-fsync" "eio-fsync@1" (function
    | Unix.Unix_error (Unix.EIO, _, _) -> true
    | _ -> false)

let test_durable_erofs () =
  check_old_contents_survive "erofs" "erofs@1" (function
    | Sys_error msg ->
      let sub = "Read-only file system" in
      let n = String.length msg and k = String.length sub in
      let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
      scan 0
    | _ -> false)

let test_durable_crash_between_write_and_rename () =
  with_temp_file @@ fun path ->
  D.write_file ~path "before";
  match Unix.fork () with
  | 0 ->
    (* Child: the hook SIGKILLs the process after the temp file is
       written and fsync'd but before the rename publishes it. *)
    Unix.putenv "LLHSC_FAULT_FS" "crash-rename@1";
    D.reset_faults ();
    (try D.write_file ~path "after" with _ -> ());
    Unix._exit 0 (* only reached if the hook failed to fire *)
  | pid ->
    let _, status = Unix.waitpid [] pid in
    check_bool "child died of SIGKILL before the rename" true
      (status = Unix.WSIGNALED Sys.sigkill);
    Alcotest.(check string) "old contents intact" "before" (slurp path)

let test_journal_degrades_on_enospc () =
  with_temp_journal @@ fun path ->
  let inputs_hash = quad_inputs_hash in
  let entries = sample_entries ~inputs_hash in
  let sink = J.open_ ~path ~inputs_hash in
  J.record sink (List.hd entries);
  check_bool "healthy before the fault" true (J.degradation sink = None);
  (* The next record's write hits ENOSPC: the sink degrades instead of
     raising, and later records are dropped without touching the disk. *)
  with_fs_fault "enospc@1" (fun () -> J.record sink (List.nth entries 1));
  (match J.degradation sink with
  | Some _ -> ()
  | None -> Alcotest.fail "sink did not degrade on ENOSPC");
  J.record sink (List.nth entries 1);
  J.close sink;
  check_bool "degraded journal refused by load" true (J.load ~path ~inputs_hash = []);
  (match J.fsck ~path with
  | Some r ->
    check_bool "fsck sees the degradation marker" true (r.J.degraded_reason <> None);
    check_bool "fsck flags issues" true (J.fsck_issues r);
    check_int "the pre-fault record survived" 1 r.J.entries
  | None -> Alcotest.fail "fsck could not read the journal");
  (* compact is the explicit operator act that re-blesses the survivors. *)
  (match J.compact ~path with
  | Ok (_, entries_after) -> check_int "compact keeps the survivor" 1 entries_after
  | Error e -> Alcotest.fail ("compact failed: " ^ e));
  let reloaded = J.load ~path ~inputs_hash in
  check_int "compacted journal loads again" 1 (List.length reloaded);
  check_bool "surviving entry intact" true (List.hd reloaded = List.hd entries)

let test_journal_degrades_on_fsync_eio () =
  with_temp_journal @@ fun path ->
  let inputs_hash = quad_inputs_hash in
  let entries = sample_entries ~inputs_hash in
  let sink = J.open_ ~path ~inputs_hash in
  (* The record's write lands but its fsync reports EIO: the record may
     not be durable, so the sink must degrade — never pretend-durable. *)
  with_fs_fault "eio-fsync@1" (fun () -> J.record sink (List.hd entries));
  check_bool "sink degraded on fsync failure" true (J.degradation sink <> None);
  J.close sink;
  check_bool "load refuses the degraded journal" true (J.load ~path ~inputs_hash = [])

(* The fsck/load tolerance property: whatever a disk does to a journal —
   truncation at any byte, arbitrary byte flips, appended garbage —
   [load] never raises and never yields an entry that was not written
   (the per-line CRC catches corrupt-but-parseable lines), and [fsck]
   never raises either. *)
let prop_journal_corruption_safe =
  QCheck.Test.make ~count:100 ~name:"corrupted journal: load never raises or fabricates"
    QCheck.(
      triple (int_range 0 8192)
        (list_of_size Gen.(int_range 0 12) (pair small_nat small_nat))
        (option (string_of_size Gen.(int_range 0 64))))
    (fun (cut, flips, garbage) ->
      with_temp_journal @@ fun path ->
      let inputs_hash = quad_inputs_hash in
      let entries = sample_entries ~inputs_hash in
      let sink = J.open_ ~path ~inputs_hash in
      List.iter (J.record sink) entries;
      J.close sink;
      let original = Bytes.of_string (slurp path) in
      let cut = cut mod (Bytes.length original + 1) in
      let corrupted = Bytes.sub original 0 cut in
      List.iter
        (fun (pos, v) ->
          if Bytes.length corrupted > 0 then
            Bytes.set corrupted (pos mod Bytes.length corrupted) (Char.chr (v land 0xff)))
        flips;
      let oc = open_out_bin path in
      output_bytes oc corrupted;
      (match garbage with Some g -> output_string oc g | None -> ());
      close_out oc;
      let fsck_safe = match J.fsck ~path with Some _ | None -> true in
      let load_safe =
        match J.load ~path ~inputs_hash with
        | loaded -> List.for_all (fun e -> List.mem e entries) loaded
        | exception _ -> false
      in
      fsck_safe && load_safe)

let all_quad_record_names = [ "partition"; "platform"; "vm1"; "vm2"; "vm3" ]

let quad_journal_entries path =
  let inputs_hash = quad_inputs_hash in
  let sink = J.open_ ~path ~inputs_hash in
  let baseline = Q.run_pipeline ~inputs_hash ~journal:sink () in
  J.close sink;
  (baseline, J.load ~path ~inputs_hash)

let test_resume_replays_byte_identical () =
  with_temp_journal @@ fun path ->
  let baseline, entries = quad_journal_entries path in
  check_int "four products + partition journaled" 5 (List.length entries);
  let resumed = Q.run_pipeline ~inputs_hash:quad_inputs_hash ~resume:entries () in
  check_bool "everything replayed" true
    (List.sort compare resumed.Llhsc.Pipeline.replayed = all_quad_record_names);
  check_bool "ok" true (Llhsc.Pipeline.ok resumed);
  Alcotest.(check string) "byte-identical report" (outcome_string baseline)
    (outcome_string resumed)

let test_resume_stale_entry_rechecked () =
  with_temp_journal @@ fun path ->
  let baseline, entries = quad_journal_entries path in
  (* A hash mismatch marks vm2's entry stale: vm2 must be re-checked while
     the rest still replays, and the report must not change. *)
  let tampered =
    List.map
      (fun (e : J.entry) -> if e.J.name = "vm2" then { e with J.hash = "stale" } else e)
      entries
  in
  let resumed = Q.run_pipeline ~inputs_hash:quad_inputs_hash ~resume:tampered () in
  check_bool "vm2 re-checked" true
    (not (List.mem "vm2" resumed.Llhsc.Pipeline.replayed));
  check_bool "others replayed" true
    (List.sort compare ("vm2" :: resumed.Llhsc.Pipeline.replayed) = all_quad_record_names);
  Alcotest.(check string) "report unchanged" (outcome_string baseline)
    (outcome_string resumed)

let test_resume_never_fabricates_certificates () =
  with_temp_journal @@ fun path ->
  let _, entries = quad_journal_entries path in
  (* The journal was written by a non-certifying run; a certifying resume
     must not trust it — every verdict is re-derived and certified. *)
  let certified =
    Q.run_pipeline ~certify:true ~inputs_hash:quad_inputs_hash ~resume:entries ()
  in
  check_bool "uncertified entries not trusted" true
    (certified.Llhsc.Pipeline.replayed = []);
  check_bool "ok" true (Llhsc.Pipeline.ok certified);
  match certified.Llhsc.Pipeline.cert with
  | Some c -> check_bool "fresh certificates" true (c.Smt.Solver.certs <> [])
  | None -> Alcotest.fail "certifying resume must expose a cert report"

(* Satellite (c): --resume is idempotent, and corrupt/stale journal entries
   are re-checked rather than replayed — under random per-entry staleness. *)
let prop_resume_idempotent =
  QCheck.Test.make ~count:6 ~name:"resume idempotent; stale entries re-checked"
    QCheck.(list_of_size Gen.(int_range 0 5) bool)
    (fun mask ->
      with_temp_journal @@ fun path ->
      let baseline, entries = quad_journal_entries path in
      let stale i = List.nth_opt mask i = Some true in
      let tampered =
        List.mapi
          (fun i (e : J.entry) -> if stale i then { e with J.hash = "stale" } else e)
          entries
      in
      let stale_names =
        List.filteri (fun i _ -> stale i) (List.map (fun (e : J.entry) -> e.J.name) entries)
      in
      let r1 = Q.run_pipeline ~inputs_hash:quad_inputs_hash ~resume:tampered () in
      let r2 = Q.run_pipeline ~inputs_hash:quad_inputs_hash ~resume:tampered () in
      outcome_string r1 = outcome_string baseline
      && outcome_string r2 = outcome_string r1
      && List.for_all
           (fun n -> not (List.mem n r1.Llhsc.Pipeline.replayed))
           stale_names)

(* Tight enough that several of the per-task (fresh-solver) queries
   exhaust it, loose enough that the x4-per-rung escalation ladder
   recovers every one of them. *)
let tight_budget () = Sat.Solver.budget ~max_propagations:500 ()

let inconclusive_count (outcome : Llhsc.Pipeline.outcome) =
  let count fs =
    List.length
      (List.filter
         (fun (f : Rep.finding) -> Test_util.contains f.Rep.message "inconclusive")
         fs)
  in
  List.fold_left
    (fun acc (p : Llhsc.Pipeline.product) -> acc + count p.Llhsc.Pipeline.findings)
    (count outcome.Llhsc.Pipeline.partition_findings)
    outcome.Llhsc.Pipeline.products

let test_quad_escalation_recovers_tight_budget () =
  (* Acceptance criterion: a budget that leaves the plain pipeline with
     inconclusive verdicts is fully recovered by the escalation ladder,
     and the recovered verdicts certify. *)
  let plain = Q.run_pipeline ~budget:(tight_budget ()) () in
  check_bool "tight budget leaves inconclusive findings" true (inconclusive_count plain >= 1);
  let escalated =
    Q.run_pipeline ~budget:(tight_budget ())
      ~retry:(Smt.Escalation.ladder ~attempts:3 ())
      ~certify:true ()
  in
  check_int "escalation resolves every query" 0 (inconclusive_count escalated);
  check_bool "ok" true (Llhsc.Pipeline.ok escalated);
  (match escalated.Llhsc.Pipeline.retry with
  | None -> Alcotest.fail "retry report expected"
  | Some r ->
    check_bool "some queries escalated" true (r.Smt.Solver.retried <> []);
    check_bool "all recovered" true
      (List.for_all
         (fun (e : Smt.Solver.retry_entry) -> e.Smt.Solver.recovered)
         r.Smt.Solver.retried);
    List.iter
      (fun (e : Smt.Solver.retry_entry) ->
        match e.Smt.Solver.attempts with
        | (a1 : Smt.Solver.attempt) :: rest ->
          check_int "first attempt at base budget" 1 a1.Smt.Solver.scale;
          check_bool "retries scale the budget" true
            (rest <> []
            && List.for_all (fun (a : Smt.Solver.attempt) -> a.Smt.Solver.scale > 1) rest)
        | [] -> Alcotest.fail "retry entry without attempts")
      r.Smt.Solver.retried);
  match escalated.Llhsc.Pipeline.cert with
  | Some c -> check_bool "no certification failures" true (c.Smt.Solver.failures = [])
  | None -> Alcotest.fail "cert report expected"


(* --- json: \u escapes, surrogate pairs, astral code points -------------------- *)

module Js = Llhsc.Json

let parse_str s =
  match Js.parse s with
  | Ok (Js.Str v) -> v
  | Ok _ -> Alcotest.failf "parsed %s to a non-string" s
  | Error e -> Alcotest.failf "parse of %s failed: %s" s e

let test_json_surrogate_pair_decodes () =
  (* Regression: 😀 is ONE code point (U+1F600) escaped as a
     UTF-16 surrogate pair; it must decode to a single 4-byte UTF-8
     sequence.  The old decoder emitted each half as a separate 3-byte
     sequence (CESU-8 mojibake). *)
  Alcotest.(check string) "astral pair" "\xf0\x9f\x98\x80" (parse_str {|"\ud83d\ude00"|});
  Alcotest.(check string) "uppercase hex too" "\xf0\x9f\x98\x80" (parse_str {|"\uD83D\uDE00"|});
  (* Boundary pairs: U+10000 (lowest astral) and U+10FFFF (highest). *)
  Alcotest.(check string) "U+10000" "\xf0\x90\x80\x80" (parse_str {|"\ud800\udc00"|});
  Alcotest.(check string) "U+10FFFF" "\xf4\x8f\xbf\xbf" (parse_str {|"\udbff\udfff"|});
  (* BMP escapes are unaffected: 2-byte and 3-byte sequences. *)
  Alcotest.(check string) "U+00E9" "\xc3\xa9" (parse_str {|"\u00e9"|});
  Alcotest.(check string) "U+20AC" "\xe2\x82\xac" (parse_str {|"\u20ac"|});
  (* Writer round-trip: raw astral UTF-8 passes through to_string/parse. *)
  Alcotest.(check string) "writer round-trip" "\xf0\x9f\x98\x80"
    (parse_str (Js.to_string (Js.Str "\xf0\x9f\x98\x80")))

let test_json_lone_surrogates_rejected () =
  (* A surrogate half on its own is not a code point; decoding it would
     produce invalid UTF-8 in journal records.  Structured parse error,
     not mojibake and not a crash. *)
  let rejected s = match Js.parse s with Error _ -> true | Ok _ -> false in
  check_bool "lone high at end" true (rejected {|"\ud83d"|});
  check_bool "lone high before text" true (rejected {|"\ud83d x"|});
  check_bool "lone high before non-u escape" true (rejected {|"\ud83d\n"|});
  check_bool "high followed by high" true (rejected {|"\ud83d\ud83d"|});
  check_bool "lone low" true (rejected {|"\ude00"|});
  check_bool "truncated second escape" true (rejected {|"\ud83d\ude0|})

(* --- property: the report does not depend on the job count --------------------- *)

(* Acceptance criterion of the --jobs work, under randomly generated
   feature selections (valid or not — rejection reports must match too):
   sharding the check phase across 4 forked workers yields a report
   byte-identical to the single-process run. *)
let prop_parallel_report_identical =
  QCheck.Test.make ~count:8 ~name:"--jobs 4 report = --jobs 1 report"
    QCheck.(
      pair (list_of_size (Gen.return 7) bool) (list_of_size (Gen.return 7) bool))
    (fun (m1, m2) ->
      let feats =
        [ "memory"; "cpu@0"; "cpu@1"; "uart@20000000"; "uart@30000000"; "veth0"; "veth1" ]
      in
      let pick mask = List.filteri (fun i _ -> List.nth mask i) feats in
      let run jobs =
        Llhsc.Pipeline.run ~exclusive:RE.exclusive ~jobs ~model:(RE.feature_model ())
          ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
          ~vm_requests:[ pick m1; pick m2 ] ()
      in
      outcome_string (run 1) = outcome_string (run 4))

(* --- property: supervision does not change the report --------------------------- *)

(* Acceptance criterion of the self-healing pool: with a seeded worker
   fault (SIGKILL or hang) on a random task, the supervised run —
   reassignment, quarantine, in-process retry and all — merges to a
   report byte-identical to the undisturbed single-process run.  The
   fault hooks are read only in forked workers, so the jobs-1 baseline
   is undisturbed by construction. *)
let with_fault_env var value f =
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var "") f

let prop_supervised_crash_report_identical =
  QCheck.Test.make ~count:4
    ~name:"supervised pool with kills/hangs = --jobs 1 report"
    QCheck.(pair (int_range 0 3) bool)
    (fun (victim, hang) ->
      let vm_requests =
        [ [ "memory"; "cpu@0"; "uart@20000000"; "veth0" ]; [ "memory"; "cpu@1" ] ]
      in
      let run ?task_deadline jobs =
        Llhsc.Pipeline.run ~exclusive:RE.exclusive ~jobs ?task_deadline
          ~model:(RE.feature_model ()) ~core:(RE.core_tree ())
          ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for ~vm_requests ()
      in
      let baseline = outcome_string (run 1) in
      let var =
        if hang then "LLHSC_FAULT_HANG_WORKER" else "LLHSC_FAULT_KILL_WORKER"
      in
      let disturbed =
        with_fault_env var (string_of_int victim) (fun () ->
            outcome_string (run ~task_deadline:1.0 2))
      in
      disturbed = baseline)

(* --- supervision unit tests ----------------------------------------------------- *)

let test_resource_limit_diagnostics () =
  (match Diag.of_exn (Diag.Resource_limit "cpu time limit exceeded") with
   | Some d ->
     Alcotest.(check string) "code" "RESOURCE" d.Diag.code;
     check_bool "is error" true (Diag.is_error d)
   | None -> Alcotest.fail "Resource_limit not converted");
  match Diag.of_exn Out_of_memory with
  | Some d -> Alcotest.(check string) "oom code" "RESOURCE" d.Diag.code
  | None -> Alcotest.fail "Out_of_memory not converted"

let test_online_cpus_positive () =
  check_bool "at least one core" true (Llhsc.Shard.online_cpus () >= 1)

let test_jobs_zero_auto_detects () =
  (* jobs <= 0 resolves to the online core count; the report must still
     be byte-identical to the sequential run. *)
  let run jobs =
    Llhsc.Pipeline.run ~exclusive:RE.exclusive ~jobs ~model:(RE.feature_model ())
      ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
      ~vm_requests:[ [ "memory"; "cpu@0" ]; [ "memory"; "cpu@1" ] ] ()
  in
  Alcotest.(check string) "auto-detected report" (outcome_string (run 1))
    (outcome_string (run 0))

(* --- disabled devices claim no resources --------------------------------------- *)

let test_disabled_devices_claim_nothing () =
  (* Two muxed peripherals share a register window and an IRQ; only one is
     enabled at a time — a perfectly legal DTS that must check clean. *)
  let src = {|
/dts-v1/;
/ {
    #address-cells = <1>; #size-cells = <1>;
    spi@10000000 { compatible = "acme,spi"; reg = <0x10000000 0x1000>; interrupts = <5>; status = "okay"; };
    i2c@10000000 { compatible = "acme,i2c"; reg = <0x10000000 0x1000>; interrupts = <5>; status = "disabled"; };
};
|} in
  let t = T.of_source ~file:"mux.dts" src in
  check_int "no collisions" 0 (List.length (errors (Sem.check_memory t)));
  check_int "no irq conflicts" 0 (List.length (errors (Sem.check_interrupts t)));
  (* Enabling both brings the conflicts back. *)
  let t2 = T.set_prop t ~path:"/i2c@10000000" "status" [ Devicetree.Ast.Str "okay" ] in
  check_bool "overlap when both enabled" true (errors (Sem.check_memory t2) <> []);
  check_bool "irq conflict when both enabled" true (errors (Sem.check_interrupts t2) <> [])

let () =
  Alcotest.run "llhsc"
    [
      ( "semantic-memory",
        [
          Alcotest.test_case "clean core" `Quick test_clean_core_has_no_overlap;
          Alcotest.test_case "uart/memory clash (E5)" `Quick test_uart_memory_clash;
          Alcotest.test_case "adjacent regions ok" `Quick test_adjacent_regions_do_not_collide;
          Alcotest.test_case "cpu ids excluded" `Quick test_cpu_ids_not_treated_as_addresses;
        ] );
      ( "semantic-truncation",
        [
          Alcotest.test_case "omitting d4 collides at 0x0 (E6)" `Quick
            test_omitting_d4_collides_at_zero;
          Alcotest.test_case "with d4 clean" `Quick test_with_d4_is_clean;
          Alcotest.test_case "truncation lint" `Quick test_truncation_lint;
        ] );
      ( "semantic-interrupts",
        [
          Alcotest.test_case "conflict" `Quick test_interrupt_conflict;
          Alcotest.test_case "distinct parents" `Quick test_interrupts_distinct_parents_ok;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "auto assignment" `Quick test_alloc_auto_assignment;
          Alcotest.test_case "double cpu rejected" `Quick test_alloc_rejects_double_cpu;
          Alcotest.test_case "invalid selection rejected" `Quick test_alloc_rejects_invalid_selection;
          Alcotest.test_case "bad vm index" `Quick test_alloc_bad_vm_index;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "end to end (E3)" `Quick test_pipeline_end_to_end;
          Alcotest.test_case "broken delta set" `Quick test_pipeline_catches_broken_delta_set;
          Alcotest.test_case "bad allocation" `Quick test_pipeline_rejects_bad_allocation;
          Alcotest.test_case "syntactic failure" `Quick test_pipeline_syntactic_failure_reported;
          Alcotest.test_case "corrupt product isolated" `Quick
            test_pipeline_isolates_corrupt_product;
          Alcotest.test_case "budget inconclusive" `Quick test_pipeline_budget_inconclusive;
        ] );
      ( "partition",
        [
          Alcotest.test_case "shared RAM warned" `Quick test_partition_warnings_on_shared_ram;
          Alcotest.test_case "partitioned variant clean" `Quick test_partitioned_variant_is_clean;
          Alcotest.test_case "cpu sharing error" `Quick test_partition_cpu_sharing_is_error;
          Alcotest.test_case "containment" `Quick test_partition_containment;
        ] );
      ( "dtb",
        [ Alcotest.test_case "check decoded DTB" `Quick test_check_decoded_dtb ] );
      ( "quad-rv64",
        [
          Alcotest.test_case "pipeline green" `Quick test_quad_pipeline_green;
          Alcotest.test_case "pipeline certified" `Quick test_quad_pipeline_certified;
          Alcotest.test_case "products" `Quick test_quad_products;
          Alcotest.test_case "bao clusters" `Quick test_quad_bao_clusters;
          Alcotest.test_case "feature model size" `Quick test_quad_feature_model_size;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick test_journal_tolerates_torn_tail;
          Alcotest.test_case "last record wins" `Quick test_journal_last_record_wins;
          Alcotest.test_case "stale inputs hash" `Quick test_journal_stale_inputs_hash;
        ] );
      ( "storage-faults",
        [
          Alcotest.test_case "atomic write commits last" `Quick test_durable_atomic_write;
          Alcotest.test_case "ENOSPC leaves old contents" `Quick test_durable_enospc;
          Alcotest.test_case "short write leaves old contents" `Quick
            test_durable_short_write;
          Alcotest.test_case "fsync EIO leaves old contents" `Quick test_durable_eio_fsync;
          Alcotest.test_case "read-only dir rejected" `Quick test_durable_erofs;
          Alcotest.test_case "crash before rename leaves old contents" `Quick
            test_durable_crash_between_write_and_rename;
          Alcotest.test_case "journal degrades on ENOSPC" `Quick
            test_journal_degrades_on_enospc;
          Alcotest.test_case "journal degrades on fsync EIO" `Quick
            test_journal_degrades_on_fsync_eio;
        ] );
      ( "resume",
        [
          Alcotest.test_case "replays byte-identical" `Quick test_resume_replays_byte_identical;
          Alcotest.test_case "stale entry re-checked" `Quick test_resume_stale_entry_rechecked;
          Alcotest.test_case "never fabricates certificates" `Quick
            test_resume_never_fabricates_certificates;
        ] );
      ( "escalation",
        [
          Alcotest.test_case "recovers tight budget" `Quick
            test_quad_escalation_recovers_tight_budget;
        ] );
      ( "disabled-devices",
        [ Alcotest.test_case "muxed peripherals" `Quick test_disabled_devices_claim_nothing ] );
      ( "unit-addresses",
        [
          Alcotest.test_case "mismatch" `Quick test_unit_address_mismatch;
          Alcotest.test_case "duplicate" `Quick test_unit_address_duplicate;
          Alcotest.test_case "clean" `Quick test_unit_address_clean;
        ] );
      ( "json",
        [
          Alcotest.test_case "surrogate pair decodes" `Quick test_json_surrogate_pair_decodes;
          Alcotest.test_case "lone surrogates rejected" `Quick
            test_json_lone_surrogates_rejected;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_sweep_equals_pairwise;
          QCheck_alcotest.to_alcotest prop_journal_corruption_safe;
          QCheck_alcotest.to_alcotest prop_resume_idempotent;
          QCheck_alcotest.to_alcotest prop_parallel_report_identical;
          QCheck_alcotest.to_alcotest prop_supervised_crash_report_identical;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "resource-limit diagnostics" `Quick
            test_resource_limit_diagnostics;
          Alcotest.test_case "online cpus" `Quick test_online_cpus_positive;
          Alcotest.test_case "jobs 0 auto-detects" `Quick test_jobs_zero_auto_detects;
        ] );
      ( "product-line",
        [
          Alcotest.test_case "all 12 products check clean" `Quick test_all_products_check_clean;
        ] );
    ]
