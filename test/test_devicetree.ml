(* Tests for the DeviceTree substrate: lexing/parsing, dtc merge semantics,
   deletes, includes, labels and phandles, property decoding, the
   #address-cells/#size-cells interpretation of reg/ranges, the DTS printer
   round trip, and the FDT (DTB) codec round trip. *)

module T = Devicetree.Tree
module A = Devicetree.Ast
module Addr = Devicetree.Addresses

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* The paper's running example (Listing 1), with the processor cluster in an
   included file (Listing 2). *)
let cpus_dtsi =
  {|
/ {
    cpus {
        #address-cells = <0x1>;
        #size-cells = <0x0>;

        cpu@0 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            enable-method = "psci";
            reg = <0x0>;
        };

        cpu@1 {
            compatible = "arm,cortex-a53";
            device_type = "cpu";
            enable-method = "psci";
            reg = <0x1>;
        };
    };
};
|}

let running_example_dts =
  {|
/dts-v1/;

/ {
    #address-cells = <2>;
    #size-cells = <2>;

    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000
               0x0 0x60000000 0x0 0x20000000>;
    };

    uart0: uart@20000000 {
        compatible = "ns16550a";
        reg = <0x0 0x20000000 0x0 0x1000>;
    };

    uart1: uart@30000000 {
        compatible = "ns16550a";
        reg = <0x0 0x30000000 0x0 0x1000>;
    };
};

/include/ "cpus.dtsi"
|}

let loader = function "cpus.dtsi" -> Some cpus_dtsi | _ -> None

let parse_example () = T.of_source ~loader ~file:"example.dts" running_example_dts

(* --- parsing ------------------------------------------------------------------ *)

let test_parse_running_example () =
  let t = parse_example () in
  check_bool "memory exists" true (T.find t "/memory@40000000" <> None);
  check_bool "cpu@0 via include" true (T.find t "/cpus/cpu@0" <> None);
  check_bool "cpu@1 via include" true (T.find t "/cpus/cpu@1" <> None);
  let memory = T.find_exn t "/memory@40000000" in
  check_str "device_type" "memory"
    (Option.get (T.prop_string (Option.get (T.get_prop memory "device_type"))));
  let reg = Option.get (T.get_prop memory "reg") in
  check_int "reg has 8 cells" 8 (List.length (T.prop_u32s reg))

let test_parse_labels () =
  let t = parse_example () in
  match T.find_label t "uart0" with
  | Some (path, _) -> check_str "label path" "/uart@20000000" path
  | None -> Alcotest.fail "label uart0 not found"

let test_missing_include () =
  try
    ignore (T.of_source ~file:"x.dts" "/include/ \"nope.dtsi\"" : T.t);
    Alcotest.fail "expected include error"
  with T.Error (msg, _) -> check_bool "mentions file" true (Test_util.contains msg "nope")

(* --- merge semantics ------------------------------------------------------------ *)

let test_merge_repeated_nodes () =
  let src =
    {|
/dts-v1/;
/ {
    node { a = <1>; b = <2>; };
};
/ {
    node { b = <3>; c = <4>; };
};
|}
  in
  let t = T.of_source ~file:"m.dts" src in
  let node = T.find_exn t "/node" in
  let cell name = List.hd (T.prop_u32s (Option.get (T.get_prop node name))) in
  Alcotest.(check int64) "a kept" 1L (cell "a");
  Alcotest.(check int64) "b overridden" 3L (cell "b");
  Alcotest.(check int64) "c added" 4L (cell "c")

let test_ref_node_overlay () =
  let src =
    {|
/dts-v1/;
/ { lbl: target { x = <1>; }; };
&lbl { y = <2>; };
|}
  in
  let t = T.of_source ~file:"r.dts" src in
  let node = T.find_exn t "/target" in
  check_bool "x present" true (T.has_prop node "x");
  check_bool "y merged via label" true (T.has_prop node "y")

let test_delete_node_and_prop () =
  let src =
    {|
/dts-v1/;
/ {
    keep { p = <1>; q = <2>; };
    drop { };
};
/ {
    /delete-node/ drop;
    keep { /delete-property/ q; };
};
|}
  in
  let t = T.of_source ~file:"d.dts" src in
  check_bool "drop deleted" true (T.find t "/drop" = None);
  let keep = T.find_exn t "/keep" in
  check_bool "p kept" true (T.has_prop keep "p");
  check_bool "q deleted" false (T.has_prop keep "q")

let test_expressions_in_cells () =
  let src = {|
/dts-v1/;
/ { n { v = <(1 + 2 * 3) (1 << 4) (0x10 | 0x1) (10 / 2) (7 % 4) (-1)>; }; };
|} in
  let t = T.of_source ~file:"e.dts" src in
  let n = T.find_exn t "/n" in
  let vals = T.prop_u32s (Option.get (T.get_prop n "v")) in
  Alcotest.(check (list int64)) "folded" [ 7L; 16L; 17L; 5L; 3L; 0xFFFFFFFFL ] vals

let test_strings_and_bytes () =
  let src =
    {|
/dts-v1/;
/ { n {
    s = "hello", "world";
    b = [de ad be ef];
    mixed = "str", <1 2>;
    escaped = "a\"b\n";
}; };
|}
  in
  let t = T.of_source ~file:"s.dts" src in
  let n = T.find_exn t "/n" in
  Alcotest.(check (list string)) "strings" [ "hello"; "world" ]
    (T.prop_strings (Option.get (T.get_prop n "s")));
  (match (Option.get (T.get_prop n "b")).p_value with
   | [ A.Bytes b ] -> check_str "bytes" "\xde\xad\xbe\xef" b
   | _ -> Alcotest.fail "expected bytes");
  check_str "escapes" "a\"b\n" (Option.get (T.prop_string (Option.get (T.get_prop n "escaped"))))

let test_bits_directive () =
  let src = {|
/dts-v1/;
/ { n { wide = /bits/ 64 <0x123456789abcdef0>; narrow = /bits/ 8 <0xff 0x01>; }; };
|} in
  let t = T.of_source ~file:"b.dts" src in
  let n = T.find_exn t "/n" in
  (match T.prop_cells (Option.get (T.get_prop n "wide")) with
   | [ (64, v) ] -> Alcotest.(check int64) "64-bit cell" 0x123456789abcdef0L v
   | _ -> Alcotest.fail "expected one 64-bit cell");
  check_int "two 8-bit cells" 2 (List.length (T.prop_cells (Option.get (T.get_prop n "narrow"))))

let test_parse_errors () =
  let expect_error src =
    try
      ignore (T.of_source ~file:"err.dts" src : T.t);
      Alcotest.fail "expected parse error"
    with
    | Devicetree.Parser.Error _ | Devicetree.Lexer.Error _ | T.Error _ -> ()
  in
  expect_error "/ { node { }; };; extra";
  expect_error "/ { p = ; };";
  expect_error "/ { p = <1 };";
  expect_error "/ { \"unterminated };";
  expect_error "&nolabel { x = <1>; };"

(* --- parser error recovery -------------------------------------------------------- *)

let test_parse_partial_collects_all_errors () =
  (* Three independent entry-level errors: recovery must report each one
     and still parse the healthy entries around them. *)
  let src =
    "/dts-v1/;\n\
     / {\n\
     \tcompatible = \"acme,board\"\n\
     \t#address-cells = <1>;\n\
     \t#size-cells = ;\n\
     \tmemory@0 { device_type = \"memory\"; reg = <0x0 0x10000>; };\n\
     \tchosen { bootargs = 42; };\n\
     };\n"
  in
  let ast, errs = Devicetree.Parser.parse_partial ~file:"multi.dts" src in
  Alcotest.(check int) "three errors" 3 (List.length errs);
  let lines = List.map (fun (_, l) -> l.Devicetree.Loc.line) errs in
  Alcotest.(check (list int)) "error lines in source order" [ 4; 5; 7 ] lines;
  (* The healthy memory node survives in the partial AST. *)
  let t = T.of_ast ast in
  check_bool "memory node parsed" true (T.find t "/memory@0" <> None)

let test_parse_partial_clean_and_fatal () =
  (* Clean input: same AST as the fail-fast parser, no errors. *)
  let src = "/dts-v1/;\n/ { x = <1>; };\n" in
  let ast, errs = Devicetree.Parser.parse_partial ~file:"ok.dts" src in
  check_bool "no errors" true (errs = []);
  check_bool "same ast" true (ast = Devicetree.Parser.parse ~file:"ok.dts" src);
  (* A lexer error is not recoverable: empty AST, one diagnostic. *)
  let ast, errs = Devicetree.Parser.parse_partial ~file:"lex.dts" "/ { \"unterminated };" in
  check_bool "empty ast on lexer error" true (ast = []);
  Alcotest.(check int) "one lexer error" 1 (List.length errs)

let test_parse_partial_missing_brace () =
  let _, errs = Devicetree.Parser.parse_partial ~file:"trunc.dts" "/ { x = <1>;" in
  check_bool "truncated file reports errors" true (errs <> []);
  (* Recovery must terminate on pathological inputs (progress guarantee). *)
  let _, errs = Devicetree.Parser.parse_partial ~file:"junk.dts" "}}}; ;; <>& {" in
  check_bool "junk reports errors" true (errs <> [])

let test_of_source_diags () =
  (* One syntax error and one semantic (merge) error, reported together. *)
  let src = "/dts-v1/;\n/ { p = ; };\n&missing { q = <1>; };\n" in
  (match T.of_source_diags ~file:"both.dts" src with
   | Ok _ -> Alcotest.fail "expected errors"
   | Error errs -> Alcotest.(check int) "syntax + merge errors" 2 (List.length errs));
  match T.of_source_diags ~file:"ok.dts" "/dts-v1/;\n/ { x = <1>; };\n" with
  | Ok t -> check_bool "clean parses" true (T.find t "/" <> None)
  | Error _ -> Alcotest.fail "clean input must be Ok"

(* --- updates --------------------------------------------------------------------- *)

let test_tree_updates () =
  let t = parse_example () in
  let t = T.add_node t ~parent:"/" "vEthernet" in
  check_bool "added" true (T.find t "/vEthernet" <> None);
  let t =
    T.set_prop t ~path:"/vEthernet" "compatible" [ A.Str "veth" ]
  in
  check_str "prop set" "veth"
    (Option.get (T.prop_string (Option.get (T.get_prop (T.find_exn t "/vEthernet") "compatible"))));
  let t = T.remove_prop t ~path:"/vEthernet" "compatible" in
  check_bool "prop removed" false (T.has_prop (T.find_exn t "/vEthernet") "compatible");
  let t = T.remove_node t ~path:"/vEthernet" in
  check_bool "node removed" true (T.find t "/vEthernet" = None);
  (try
     ignore (T.remove_node t ~path:"/nonexistent" : T.t);
     Alcotest.fail "expected error"
   with T.Error _ -> ())

(* --- phandles --------------------------------------------------------------------- *)

let test_phandle_resolution () =
  let src =
    {|
/dts-v1/;
/ {
    intc: interrupt-controller { };
    dev { interrupt-parent = <&intc>; };
};
|}
  in
  let t = T.of_source ~file:"p.dts" src in
  let t = T.resolve_phandles t in
  let intc = T.find_exn t "/interrupt-controller" in
  let phandle = List.hd (T.prop_u32s (Option.get (T.get_prop intc "phandle"))) in
  let dev = T.find_exn t "/dev" in
  let parent = List.hd (T.prop_u32s (Option.get (T.get_prop dev "interrupt-parent"))) in
  Alcotest.(check int64) "reference resolved to phandle" phandle parent

(* --- addresses --------------------------------------------------------------------- *)

let test_reg_decoding_2_2 () =
  let t = parse_example () in
  let regions = Addr.regions_in_root_space t in
  let memory = List.find (fun r -> r.Addr.path = "/memory@40000000") regions in
  Alcotest.(check int) "two banks" 2 (List.length memory.regions);
  let bank1 = List.nth memory.regions 0 and bank2 = List.nth memory.regions 1 in
  Alcotest.(check int64) "bank1 base" 0x40000000L bank1.Addr.base;
  Alcotest.(check int64) "bank1 size" 0x20000000L bank1.Addr.size;
  Alcotest.(check int64) "bank2 base" 0x60000000L bank2.Addr.base

let test_reg_decoding_1_0 () =
  (* Inside /cpus, #address-cells=1 #size-cells=0: reg is a bare CPU id,
     the other interpretation of reg discussed in §II-A. *)
  let t = parse_example () in
  let cpus = T.find_exn t "/cpus" in
  Alcotest.(check int) "address-cells" 1 (Addr.address_cells cpus);
  Alcotest.(check int) "size-cells" 0 (Addr.size_cells cpus);
  let cpu0 = T.find_exn t "/cpus/cpu@0" in
  let regions =
    Addr.decode_reg ~address_cells:1 ~size_cells:0 (Option.get (T.get_prop cpu0 "reg"))
  in
  (match regions with
   | [ r ] ->
     Alcotest.(check int64) "cpu id" 0L r.Addr.base;
     Alcotest.(check int64) "no size" 0L r.Addr.size
   | _ -> Alcotest.fail "expected one entry")

let test_reg_bad_multiple () =
  let src = {|
/dts-v1/;
/ { #address-cells = <2>; #size-cells = <2>;
    dev { reg = <0x0 0x1000 0x0>; };
};
|} in
  let t = T.of_source ~file:"bad.dts" src in
  try
    ignore (Addr.regions_in_root_space t : Addr.node_regions list);
    Alcotest.fail "expected stride error"
  with Addr.Error (msg, _) ->
    check_bool "mentions multiple" true (Test_util.contains msg "multiple")

let test_ranges_translation () =
  let src =
    {|
/dts-v1/;
/ {
    #address-cells = <1>;
    #size-cells = <1>;
    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        ranges = <0x0 0xf0000000 0x10000>;
        serial@100 { reg = <0x100 0x20>; };
    };
};
|}
  in
  let t = T.of_source ~file:"rng.dts" src in
  let regions = Addr.regions_in_root_space t in
  let serial = List.find (fun r -> r.Addr.path = "/soc/serial@100") regions in
  check_bool "translated" true serial.Addr.translated;
  (match serial.Addr.regions with
   | [ r ] -> Alcotest.(check int64) "translated base" 0xf0000100L r.Addr.base
   | _ -> Alcotest.fail "expected one region")

let test_empty_ranges_identity () =
  let src =
    {|
/dts-v1/;
/ {
    #address-cells = <1>; #size-cells = <1>;
    bus { #address-cells = <1>; #size-cells = <1>; ranges;
        dev@8000 { reg = <0x8000 0x100>; };
    };
};
|}
  in
  let t = T.of_source ~file:"id.dts" src in
  let regions = Addr.regions_in_root_space t in
  let dev = List.find (fun r -> r.Addr.path = "/bus/dev@8000") regions in
  check_bool "translated" true dev.Addr.translated;
  (match dev.Addr.regions with
   | [ r ] -> Alcotest.(check int64) "identity base" 0x8000L r.Addr.base
   | _ -> Alcotest.fail "expected one region")

let test_no_ranges_not_translatable () =
  let src =
    {|
/dts-v1/;
/ {
    #address-cells = <1>; #size-cells = <1>;
    bus { #address-cells = <1>; #size-cells = <1>;
        dev@8000 { reg = <0x8000 0x100>; };
    };
};
|}
  in
  let t = T.of_source ~file:"nr.dts" src in
  let regions = Addr.regions_in_root_space t in
  let dev = List.find (fun r -> r.Addr.path = "/bus/dev@8000") regions in
  check_bool "not translated" false dev.Addr.translated

(* --- printer round trip ------------------------------------------------------------- *)

let test_printer_roundtrip () =
  let t = parse_example () in
  let printed = Devicetree.Printer.to_string t in
  let t' = T.of_source ~file:"printed.dts" printed in
  check_bool "round trip equal" true (T.equal t t')

let test_printer_roundtrip_rich () =
  let src =
    {|
/dts-v1/;
/ {
    compatible = "custom,sbc";
    flag;
    lbl: sub@1000 {
        bytes = [01 02 03];
        strs = "a", "b";
        wide = /bits/ 64 <0xdeadbeefcafebabe>;
    };
};
|}
  in
  let t = T.of_source ~file:"rich.dts" src in
  let t' = T.of_source ~file:"printed.dts" (Devicetree.Printer.to_string t) in
  check_bool "round trip equal" true (T.equal t t')

(* --- FDT round trip ------------------------------------------------------------------ *)

(* Compare trees after serialising every property to raw bytes (a decoded
   blob has no type information). *)
let rec canonical (t : T.t) : T.t =
  {
    t with
    props =
      List.map
        (fun p ->
          let raw = Devicetree.Fdt.prop_raw_bytes p in
          { p with T.p_value = (if raw = "" then [] else [ A.Bytes raw ]) })
        t.props;
    children = List.map canonical t.children;
  }

let test_fdt_roundtrip () =
  let t = T.resolve_phandles (parse_example ()) in
  let blob = Devicetree.Fdt.encode t in
  let decoded, memreserves = Devicetree.Fdt.decode blob in
  check_bool "no memreserves" true (memreserves = []);
  check_bool "tree preserved" true (T.equal (canonical t) decoded)

let test_fdt_memreserve () =
  let t = parse_example () in
  let blob = Devicetree.Fdt.encode ~memreserves:[ (0x10000000L, 0x4000L) ] t in
  let _, memreserves = Devicetree.Fdt.decode blob in
  Alcotest.(check (list (pair int64 int64))) "memreserve preserved"
    [ (0x10000000L, 0x4000L) ] memreserves

let test_fdt_header_fields () =
  let t = parse_example () in
  let blob = Devicetree.Fdt.encode t in
  check_bool "magic" true
    (Char.code blob.[0] = 0xd0 && Char.code blob.[1] = 0x0d
     && Char.code blob.[2] = 0xfe && Char.code blob.[3] = 0xed);
  (* total size field matches the actual length *)
  let be32 off =
    (Char.code blob.[off] lsl 24) lor (Char.code blob.[off + 1] lsl 16)
    lor (Char.code blob.[off + 2] lsl 8) lor Char.code blob.[off + 3]
  in
  check_int "totalsize" (String.length blob) (be32 4);
  check_int "version 17" 17 (be32 20)

let test_fdt_bad_magic () =
  try
    ignore (Devicetree.Fdt.decode "not a blob at all..." : T.t * (int64 * int64) list);
    Alcotest.fail "expected magic error"
  with Devicetree.Fdt.Error _ -> ()


(* --- properties: round trips on random trees ---------------------------------- *)

(* Random semantic trees: random names, property shapes, nesting. *)
let gen_tree =
  let open QCheck.Gen in
  let gen_name =
    let* base = oneofl [ "node"; "dev"; "bus"; "mem" ] in
    let* addr = opt (int_bound 0xffff) in
    return (match addr with Some a -> Printf.sprintf "%s@%x" base a | None -> base)
  in
  let gen_piece =
    oneof
      [ (let* n = int_range 1 4 in
         let* cells = list_repeat n (map Int64.of_int (int_bound 0xFFFF)) in
         return (A.Cells { bits = 32; cells = List.map (fun c -> A.Cell_int c) cells }));
        map (fun s -> A.Str s) (oneofl [ "alpha"; "beta"; "x y"; "" ]);
        (let* n = int_range 1 4 in
         let* bytes = list_repeat n (int_bound 255) in
         return (A.Bytes (String.init n (fun i -> Char.chr (List.nth bytes i)))));
      ]
  in
  let gen_prop i =
    let* pieces = list_size (int_range 0 2) gen_piece in
    return { T.p_name = Printf.sprintf "prop%d" i; p_value = pieces; p_loc = Devicetree.Loc.dummy }
  in
  let rec gen_node depth =
    let* name = gen_name in
    let* nprops = int_range 0 3 in
    let* props =
      List.fold_left
        (fun acc i ->
          let* acc = acc in
          let* p = gen_prop i in
          return (p :: acc))
        (return [])
        (List.init nprops (fun i -> i))
    in
    let* children =
      if depth = 0 then return []
      else
        let* n = int_range 0 2 in
        (* Child names must be unique within a parent for round-tripping. *)
        let rec gen_children k acc =
          if k = 0 then return (List.rev acc)
          else
            let* c = gen_node (depth - 1) in
            if List.exists (fun c' -> c'.T.name = c.T.name) acc then gen_children k acc
            else gen_children (k - 1) (c :: acc)
        in
        gen_children n []
    in
    return { T.name; labels = []; props; children; loc = Devicetree.Loc.dummy }
  in
  let* root = gen_node 2 in
  return { root with T.name = "/" }

let prop_printer_roundtrip =
  QCheck.Test.make ~count:200 ~name:"printer round trip (random trees)"
    (QCheck.make gen_tree)
    (fun tree ->
      let printed = Devicetree.Printer.to_string tree in
      let reparsed = T.of_source ~file:"rt.dts" printed in
      T.equal tree reparsed)

let prop_fdt_roundtrip =
  QCheck.Test.make ~count:200 ~name:"FDT round trip (random trees)"
    (QCheck.make gen_tree)
    (fun tree ->
      let blob = Devicetree.Fdt.encode tree in
      let decoded, _ = Devicetree.Fdt.decode blob in
      T.equal (canonical tree) decoded)


(* --- interrupt resolution -------------------------------------------------------- *)

let test_interrupt_inheritance () =
  (* interrupt-parent on the bus is inherited by children. *)
  let src = {|
/dts-v1/;
/ {
    gic: intc { interrupt-controller; #interrupt-cells = <2>; };
    bus {
        interrupt-parent = <&gic>;
        dev-a { interrupts = <0 7>; };
        dev-b { interrupts = <0 9 1 4>; };
    };
};
|} in
  let t = T.resolve_phandles (T.of_source ~file:"i.dts" src) in
  let specs = Devicetree.Interrupts.specs t in
  Alcotest.(check int) "three specifiers" 3 (List.length specs);
  List.iter
    (fun s -> check_str "controller" "/intc" s.Devicetree.Interrupts.controller)
    specs;
  let dev_b = List.filter (fun s -> s.Devicetree.Interrupts.device = "/bus/dev-b") specs in
  Alcotest.(check int) "dev-b raises two" 2 (List.length dev_b);
  check_bool "two-cell specifiers" true
    (List.for_all (fun s -> List.length s.Devicetree.Interrupts.cells = 2) dev_b)

let test_interrupt_controller_ancestor_fallback () =
  (* Without interrupt-parent, the nearest ancestor controller wins. *)
  let src = {|
/dts-v1/;
/ {
    soc {
        interrupt-controller;
        #interrupt-cells = <1>;
        dev { interrupts = <5>; };
    };
};
|} in
  let t = T.of_source ~file:"f.dts" src in
  match Devicetree.Interrupts.specs t with
  | [ s ] -> check_str "ancestor controller" "/soc" s.Devicetree.Interrupts.controller
  | specs -> Alcotest.failf "expected one spec, got %d" (List.length specs)

let test_interrupts_extended () =
  let src = {|
/dts-v1/;
/ {
    gic0: a { interrupt-controller; #interrupt-cells = <1>; };
    gic1: b { interrupt-controller; #interrupt-cells = <2>; };
    dev { interrupts-extended = <&gic0 7 &gic1 0 9>; };
};
|} in
  let t = T.resolve_phandles (T.of_source ~file:"x.dts" src) in
  let specs = Devicetree.Interrupts.specs t in
  Alcotest.(check int) "two specs" 2 (List.length specs);
  let by_ctrl c = List.find (fun s -> s.Devicetree.Interrupts.controller = c) specs in
  check_bool "gic0 one cell" true ((by_ctrl "/a").Devicetree.Interrupts.cells = [ 7L ]);
  check_bool "gic1 two cells" true ((by_ctrl "/b").Devicetree.Interrupts.cells = [ 0L; 9L ])

let test_interrupts_malformed () =
  let src = {|
/dts-v1/;
/ {
    gic: intc { interrupt-controller; #interrupt-cells = <2>; };
    dev { interrupt-parent = <&gic>; interrupts = <1 2 3>; };
};
|} in
  let t = T.resolve_phandles (T.of_source ~file:"m.dts" src) in
  try
    ignore (Devicetree.Interrupts.specs t : Devicetree.Interrupts.spec list);
    Alcotest.fail "expected specifier error"
  with Devicetree.Interrupts.Error (msg, _) ->
    check_bool "mentions specifier" true (Test_util.contains msg "specifier")

let test_spec_key () =
  let mk cells =
    { Devicetree.Interrupts.device = "/d"; controller = "/c"; cells;
      loc = Devicetree.Loc.dummy }
  in
  Alcotest.(check int64) "one cell" 7L (Devicetree.Interrupts.spec_key (mk [ 7L ]));
  Alcotest.(check int64) "two cells" 0x0000000100000007L
    (Devicetree.Interrupts.spec_key (mk [ 1L; 7L ]))


(* --- overlays --------------------------------------------------------------------- *)

let overlay_base_src = {|
/dts-v1/;
/ {
    #address-cells = <1>; #size-cells = <1>;
    u0: uart@10000000 { compatible = "ns16550a"; reg = <0x10000000 0x100>; status = "disabled"; };
    spi@20000000 { reg = <0x20000000 0x100>; };
};
|}

let test_overlay_by_label () =
  let base = T.of_source ~file:"base.dts" overlay_base_src in
  let overlay =
    T.of_source ~file:"ov.dts"
      {|
/dts-v1/;
/ {
    fragment@0 {
        target = <&u0>;
        __overlay__ {
            status = "okay";
            current-speed = <115200>;
        };
    };
};
|}
  in
  let merged = Devicetree.Overlay.apply ~base ~overlay in
  let uart = T.find_exn merged "/uart@10000000" in
  check_str "status flipped" "okay" (Option.get (T.prop_string (Option.get (T.get_prop uart "status"))));
  check_bool "speed added" true (T.has_prop uart "current-speed");
  check_bool "reg untouched" true (T.has_prop uart "reg")

let test_overlay_by_path_with_child () =
  let base = T.of_source ~file:"base.dts" overlay_base_src in
  let overlay =
    T.of_source ~file:"ov.dts"
      {|
/dts-v1/;
/ {
    fragment@0 {
        target-path = "/spi@20000000";
        __overlay__ {
            flash@0 { compatible = "jedec,spi-nor"; reg = <0>; };
        };
    };
};
|}
  in
  let merged = Devicetree.Overlay.apply ~base ~overlay in
  check_bool "flash added under spi" true (T.find merged "/spi@20000000/flash@0" <> None)

let test_overlay_errors () =
  let base = T.of_source ~file:"base.dts" overlay_base_src in
  let missing_target =
    T.of_source ~file:"ov.dts"
      "/dts-v1/;\n/ { fragment@0 { target = <&nosuch>; __overlay__ { x = <1>; }; }; };"
  in
  (try
     ignore (Devicetree.Overlay.apply ~base ~overlay:missing_target : T.t);
     Alcotest.fail "expected error"
   with Devicetree.Overlay.Error (msg, _) ->
     check_bool "mentions target" true (Test_util.contains msg "nosuch"));
  let no_fragments = T.of_source ~file:"ov.dts" "/dts-v1/;\n/ { };" in
  try
    ignore (Devicetree.Overlay.apply ~base ~overlay:no_fragments : T.t);
    Alcotest.fail "expected error"
  with Devicetree.Overlay.Error (msg, _) ->
    check_bool "mentions fragments" true (Test_util.contains msg "fragment")

let test_overlay_then_check () =
  (* An overlay that moves a device into RAM is caught by the semantic
     checker on the merged tree. *)
  let base = T.of_source ~file:"base.dts" {|
/dts-v1/;
/ {
    #address-cells = <1>; #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x10000000>; };
    d0: dma@20000000 { reg = <0x20000000 0x1000>; };
};
|} in
  let overlay =
    T.of_source ~file:"ov.dts"
      "/dts-v1/;\n/ { fragment@0 { target = <&d0>; __overlay__ { reg = <0x48000000 0x1000>; }; }; };"
  in
  let merged = Devicetree.Overlay.apply ~base ~overlay in
  Alcotest.(check int) "collision after overlay" 1
    (List.length (Llhsc.Semantic.check_memory merged))


(* --- structural diff -------------------------------------------------------------- *)

let test_diff_basics () =
  let a = T.of_source ~file:"a.dts" "/dts-v1/;\n/ { n { p = <1>; q = <2>; }; gone { }; };" in
  let b = T.of_source ~file:"b.dts" "/dts-v1/;\n/ { n { p = <1>; q = <3>; r = <4>; }; fresh { }; };" in
  let changes = Devicetree.Diff.diff a b in
  let has c = List.mem c changes in
  check_bool "node added" true (has (Devicetree.Diff.Node_added "/fresh"));
  check_bool "node removed" true (has (Devicetree.Diff.Node_removed "/gone"));
  check_bool "prop changed" true (has (Devicetree.Diff.Prop_changed ("/n", "q")));
  check_bool "prop added" true (has (Devicetree.Diff.Prop_added ("/n", "r")));
  check_bool "unchanged prop silent" false
    (List.exists (fun c -> Devicetree.Diff.path_of c = "/n" && c = Devicetree.Diff.Prop_changed ("/n", "p")) changes);
  Alcotest.(check int) "exact count" 4 (List.length changes)

let test_diff_identity () =
  let t = parse_example () in
  Alcotest.(check int) "no changes" 0 (List.length (Devicetree.Diff.diff t t))

let test_diff_type_insensitive () =
  (* A typed tree and its DTB round trip are diff-equal. *)
  let t = T.resolve_phandles (parse_example ()) in
  let decoded, _ = Devicetree.Fdt.decode (Devicetree.Fdt.encode t) in
  Alcotest.(check int) "typed vs raw: no changes" 0
    (List.length (Devicetree.Diff.diff t decoded))

let test_diff_shows_delta_effect () =
  (* The diff of core vs VM1 product names exactly the delta effects. *)
  let core = Llhsc.Running_example.core_tree () in
  let vm1 =
    Delta.Apply.generate ~core ~deltas:(Llhsc.Running_example.deltas ())
      ~selected:Llhsc.Running_example.vm1_features
  in
  let changes = Devicetree.Diff.diff core vm1 in
  check_bool "vEthernet added" true
    (List.mem (Devicetree.Diff.Node_added "/vEthernet") changes);
  check_bool "cpu@1 removed" true
    (List.mem (Devicetree.Diff.Node_removed "/cpus/cpu@1") changes);
  check_bool "memory reg changed" true
    (List.mem (Devicetree.Diff.Prop_changed ("/memory@40000000", "reg")) changes)


(* --- robustness: the parser never escapes its documented exceptions -------- *)

let prop_parser_total =
  QCheck.Test.make ~count:500 ~name:"parser raises only documented exceptions"
    QCheck.(make Gen.(string_size ~gen:(char_range ' ' '~') (int_bound 80)))
    (fun garbage ->
      match T.of_source ~file:"fuzz.dts" garbage with
      | _ -> true
      | exception (Devicetree.Lexer.Error _ | Devicetree.Parser.Error _ | T.Error _) -> true
      | exception _ -> false)

let prop_yaml_total =
  QCheck.Test.make ~count:500 ~name:"yaml parser raises only documented exceptions"
    QCheck.(make Gen.(string_size ~gen:(char_range ' ' '~') (int_bound 80)))
    (fun garbage ->
      match Schema.Yaml_lite.parse garbage with
      | _ -> true
      | exception Schema.Yaml_lite.Error _ -> true
      | exception _ -> false)


let test_char_literals_and_suffixes () =
  let src = "/dts-v1/;\n/ { n { c = <'A' '\\n'>; suffixed = <10UL 0x20U>; }; };" in
  let t = T.of_source ~file:"cl.dts" src in
  let n = T.find_exn t "/n" in
  Alcotest.(check (list int64)) "char cells" [ 65L; 10L ]
    (T.prop_u32s (Option.get (T.get_prop n "c")));
  Alcotest.(check (list int64)) "suffixes stripped" [ 10L; 32L ]
    (T.prop_u32s (Option.get (T.get_prop n "suffixed")))


let test_interrupt_map_nexus () =
  (* A nexus routes line 0 to gic-a line 40 and line 1 to gic-b line 7 2. *)
  let src = {|
/dts-v1/;
/ {
    gica: gic-a { interrupt-controller; #interrupt-cells = <1>; };
    gicb: gic-b { interrupt-controller; #interrupt-cells = <2>; };
    nexus: router {
        interrupt-controller;
        #interrupt-cells = <1>;
        #address-cells = <0>;
        interrupt-map = <0 &gica 40
                         1 &gicb 7 2>;
    };
    dev-a { interrupt-parent = <&nexus>; interrupts = <0>; };
    dev-b { interrupt-parent = <&nexus>; interrupts = <1>; };
};
|} in
  let t = T.resolve_phandles (T.of_source ~file:"nx.dts" src) in
  let specs = Devicetree.Interrupts.specs t in
  let for_dev d = List.find (fun s -> s.Devicetree.Interrupts.device = d) specs in
  let a = for_dev "/dev-a" in
  check_str "dev-a routed to gic-a" "/gic-a" a.Devicetree.Interrupts.controller;
  check_bool "dev-a line 40" true (a.Devicetree.Interrupts.cells = [ 40L ]);
  let b = for_dev "/dev-b" in
  check_str "dev-b routed to gic-b" "/gic-b" b.Devicetree.Interrupts.controller;
  check_bool "dev-b spec 7 2" true (b.Devicetree.Interrupts.cells = [ 7L; 2L ])

let test_interrupt_map_mask () =
  (* With a mask of 0x3, specifier 5 matches entry 1 (5 land 3 = 1). *)
  let src = {|
/dts-v1/;
/ {
    gic: gic { interrupt-controller; #interrupt-cells = <1>; };
    nexus: router {
        interrupt-controller;
        #interrupt-cells = <1>;
        #address-cells = <0>;
        interrupt-map-mask = <0x3>;
        interrupt-map = <1 &gic 100>;
    };
    dev { interrupt-parent = <&nexus>; interrupts = <5>; };
};
|} in
  let t = T.resolve_phandles (T.of_source ~file:"nxm.dts" src) in
  (match Devicetree.Interrupts.specs t with
   | [ s ] ->
     check_str "routed" "/gic" s.Devicetree.Interrupts.controller;
     check_bool "line 100" true (s.Devicetree.Interrupts.cells = [ 100L ])
   | specs -> Alcotest.failf "expected one spec, got %d" (List.length specs))

let test_interrupt_map_unmatched () =
  let src = {|
/dts-v1/;
/ {
    gic: gic { interrupt-controller; #interrupt-cells = <1>; };
    nexus: router {
        interrupt-controller;
        #interrupt-cells = <1>;
        #address-cells = <0>;
        interrupt-map = <0 &gic 40>;
    };
    dev { interrupt-parent = <&nexus>; interrupts = <9>; };
};
|} in
  let t = T.resolve_phandles (T.of_source ~file:"nxu.dts" src) in
  try
    ignore (Devicetree.Interrupts.specs t : Devicetree.Interrupts.spec list);
    Alcotest.fail "expected unmatched-entry error"
  with Devicetree.Interrupts.Error (msg, _) ->
    check_bool "mentions no entry" true (Test_util.contains msg "no interrupt-map entry")

let () =
  Alcotest.run "devicetree"
    [
      ( "parsing",
        [
          Alcotest.test_case "running example" `Quick test_parse_running_example;
          Alcotest.test_case "labels" `Quick test_parse_labels;
          Alcotest.test_case "missing include" `Quick test_missing_include;
          Alcotest.test_case "expressions in cells" `Quick test_expressions_in_cells;
          Alcotest.test_case "strings and bytes" `Quick test_strings_and_bytes;
          Alcotest.test_case "/bits/ widths" `Quick test_bits_directive;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "recovery collects all errors" `Quick
            test_parse_partial_collects_all_errors;
          Alcotest.test_case "recovery clean/fatal" `Quick test_parse_partial_clean_and_fatal;
          Alcotest.test_case "recovery missing brace" `Quick test_parse_partial_missing_brace;
          Alcotest.test_case "of_source_diags" `Quick test_of_source_diags;
          Alcotest.test_case "char literals and suffixes" `Quick test_char_literals_and_suffixes;
        ] );
      ( "merge",
        [
          Alcotest.test_case "repeated nodes" `Quick test_merge_repeated_nodes;
          Alcotest.test_case "&label overlay" `Quick test_ref_node_overlay;
          Alcotest.test_case "deletes" `Quick test_delete_node_and_prop;
        ] );
      ( "updates",
        [
          Alcotest.test_case "set/remove prop, add/remove node" `Quick test_tree_updates;
          Alcotest.test_case "phandles" `Quick test_phandle_resolution;
        ] );
      ( "addresses",
        [
          Alcotest.test_case "reg with 2/2 cells" `Quick test_reg_decoding_2_2;
          Alcotest.test_case "reg with 1/0 cells (cpu ids)" `Quick test_reg_decoding_1_0;
          Alcotest.test_case "bad reg stride" `Quick test_reg_bad_multiple;
          Alcotest.test_case "ranges translation" `Quick test_ranges_translation;
          Alcotest.test_case "empty ranges is identity" `Quick test_empty_ranges_identity;
          Alcotest.test_case "no ranges blocks translation" `Quick test_no_ranges_not_translatable;
        ] );
      ( "printer",
        [
          Alcotest.test_case "round trip (running example)" `Quick test_printer_roundtrip;
          Alcotest.test_case "round trip (rich values)" `Quick test_printer_roundtrip_rich;
        ] );
      ( "diff",
        [
          Alcotest.test_case "basics" `Quick test_diff_basics;
          Alcotest.test_case "identity" `Quick test_diff_identity;
          Alcotest.test_case "type-insensitive" `Quick test_diff_type_insensitive;
          Alcotest.test_case "delta effect" `Quick test_diff_shows_delta_effect;
        ] );
      ( "overlays",
        [
          Alcotest.test_case "target by label" `Quick test_overlay_by_label;
          Alcotest.test_case "target by path, new child" `Quick test_overlay_by_path_with_child;
          Alcotest.test_case "errors" `Quick test_overlay_errors;
          Alcotest.test_case "overlay then semantic check" `Quick test_overlay_then_check;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "parent inheritance" `Quick test_interrupt_inheritance;
          Alcotest.test_case "ancestor fallback" `Quick test_interrupt_controller_ancestor_fallback;
          Alcotest.test_case "interrupts-extended" `Quick test_interrupts_extended;
          Alcotest.test_case "malformed specifier" `Quick test_interrupts_malformed;
          Alcotest.test_case "spec key" `Quick test_spec_key;
          Alcotest.test_case "interrupt-map nexus" `Quick test_interrupt_map_nexus;
          Alcotest.test_case "interrupt-map mask" `Quick test_interrupt_map_mask;
          Alcotest.test_case "interrupt-map unmatched" `Quick test_interrupt_map_unmatched;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_printer_roundtrip;
          QCheck_alcotest.to_alcotest prop_fdt_roundtrip;
          QCheck_alcotest.to_alcotest prop_parser_total;
          QCheck_alcotest.to_alcotest prop_yaml_total;
        ] );
      ( "fdt",
        [
          Alcotest.test_case "round trip" `Quick test_fdt_roundtrip;
          Alcotest.test_case "memreserve" `Quick test_fdt_memreserve;
          Alcotest.test_case "header fields" `Quick test_fdt_header_fields;
          Alcotest.test_case "bad magic" `Quick test_fdt_bad_magic;
        ] );
    ]
