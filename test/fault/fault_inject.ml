(* Fault-injection harness: mutate every kind of input file llhsc consumes
   (DTS, includes, deltas, feature models, project YAML, binding schemas)
   and assert the CLI's crash contract on each mutant:

     - exit code is 0 (clean), 1 (findings) or 2 (input error) — never
       cmdliner's 124/125, never a signal;
     - stderr carries structured diagnostics, not an OCaml backtrace.

   Runs ~200 mutants from a fixed seed, so failures reproduce exactly.
   Usage: fault_inject.exe LLHSC_BINARY FIXTURES_DIR *)

(* --- deterministic PRNG (xorshift64*, fixed seed) --------------------------- *)

let rng = ref 0x9E3779B97F4A7C15L

let rand_bits () =
  let x = !rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  rng := x;
  Int64.to_int (Int64.shift_right_logical x 2)

let rand_int n = if n <= 0 then 0 else rand_bits () mod n

(* --- small file helpers ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let rec copy_dir src dst =
  if not (Sys.file_exists dst) then Unix.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let s = Filename.concat src name and d = Filename.concat dst name in
      if Sys.is_directory s then copy_dir s d else write_file d (read_file s))
    (Sys.readdir src)

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> remove_tree (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* --- mutators ---------------------------------------------------------------- *)

let structural = "{};=<>&,\"[]:-"

let mutate_truncate s =
  if s = "" then s else String.sub s 0 (rand_int (String.length s))

let mutate_flip_byte s =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let i = rand_int (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl rand_int 8)));
    Bytes.to_string b
  end

let mutate_insert_structural s =
  let i = rand_int (String.length s + 1) in
  let c = structural.[rand_int (String.length structural)] in
  String.sub s 0 i ^ String.make 1 c ^ String.sub s i (String.length s - i)

let mutate_delete_structural s =
  let idxs = ref [] in
  String.iteri (fun i c -> if String.contains structural c then idxs := i :: !idxs) s;
  match !idxs with
  | [] -> mutate_truncate s
  | idxs ->
    let idxs = Array.of_list idxs in
    let i = idxs.(rand_int (Array.length idxs)) in
    String.sub s 0 i ^ String.sub s (i + 1) (String.length s - i - 1)

let on_lines f s =
  let lines = String.split_on_char '\n' s in
  String.concat "\n" (f (Array.of_list lines))

let mutate_delete_line s =
  on_lines
    (fun lines ->
      if Array.length lines <= 1 then Array.to_list lines
      else
        let k = rand_int (Array.length lines) in
        List.filteri (fun i _ -> i <> k) (Array.to_list lines))
    s

let mutate_duplicate_line s =
  on_lines
    (fun lines ->
      if Array.length lines = 0 then []
      else
        let k = rand_int (Array.length lines) in
        List.concat_map
          (fun (i, l) -> if i = k then [ l; l ] else [ l ])
          (List.mapi (fun i l -> (i, l)) (Array.to_list lines)))
    s

let mutate_garbage s =
  let junk = [ "\x00\x01\xff"; "}}}}"; "/*"; "= <0x"; "\"";
               "/include/ \"missing.dtsi\";"; "4294967296999999999" ] in
  let g = List.nth junk (rand_int (List.length junk)) in
  let i = rand_int (String.length s + 1) in
  String.sub s 0 i ^ g ^ String.sub s i (String.length s - i)

let mutate_empty _ = ""

let mutators =
  [| mutate_truncate; mutate_flip_byte; mutate_insert_structural;
     mutate_delete_structural; mutate_delete_line; mutate_duplicate_line;
     mutate_garbage; mutate_empty
  |]

let mutate s = mutators.(rand_int (Array.length mutators)) s

(* --- running the CLI ---------------------------------------------------------- *)

(* Run [argv], devnull stdin/stdout, stderr to a file; return (status, stderr). *)
let run_cli binary args ~stderr_file =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let err = Unix.openfile stderr_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process binary (Array.of_list (binary :: args)) devnull devnull err
  in
  Unix.close devnull;
  Unix.close err;
  let _, status = Unix.waitpid [] pid in
  (status, read_file stderr_file)

(* --- targets ------------------------------------------------------------------- *)

(* (file to mutate, CLI invocation given the sandbox dir) *)
let targets dir =
  let p f = Filename.concat dir f in
  [
    ("custom-sbc.dts", [ "check"; p "custom-sbc.dts"; "--schemas"; p "schemas" ]);
    ("cpus.dtsi", [ "check"; p "custom-sbc.dts"; "--schemas"; p "schemas" ]);
    ("custom-sbc.deltas",
     [ "analyze"; "--deltas"; p "custom-sbc.deltas"; "--model"; p "custom-sbc.fm" ]);
    ("custom-sbc.fm", [ "products"; p "custom-sbc.fm" ]);
    ("custom-sbc.proj.yaml", [ "build"; p "custom-sbc.proj.yaml" ]);
    ("schemas/memory.yaml", [ "check"; p "custom-sbc.dts"; "--schemas"; p "schemas" ]);
    ("schemas/cpu.yaml", [ "check"; p "custom-sbc.dts"; "--schemas"; p "schemas" ]);
    ("custom-sbc.dts", [ "dtb"; p "custom-sbc.dts"; "-o"; p "out.dtb" ]);
    ("custom-sbc.dts",
     [ "generate"; "--core"; p "custom-sbc.dts"; "--deltas"; p "custom-sbc.deltas";
       "-f"; "memory,cpu@0"; "-o"; p "gen.dts" ]);
    ("custom-sbc.fm", [ "configure"; p "custom-sbc.fm"; "-d"; "veth0" ]);
  ]

(* --- solver-mutation phase ------------------------------------------------------ *)

(* The input mutants above attack the parsers; these attack the *solver*:
   `sat --certify --unsound KIND:N` makes the solver deliberately unsound
   (dropped learnt literals, flipped model bits, muted proof steps) and the
   contract is that certification catches every one — exit 1 with an
   error[CERT] diagnostic, never a clean exit 0. *)
let solver_mutations dir =
  let p f = Filename.concat dir f in
  List.concat_map
    (fun n ->
      [ (p "unsat.cnf", Printf.sprintf "drop-lit:%d" n);
        (p "unsat.cnf", Printf.sprintf "mute-proof:%d" n);
        (p "sat.cnf", Printf.sprintf "flip-model:%d" n)
      ])
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let run_solver_mutations binary sandbox ~failures ~total =
  let stderr_file = Filename.concat sandbox "stderr.txt" in
  let bad what reason err =
    incr failures;
    Printf.printf "FAIL (certify, %s): %s\n  stderr: %s\n" what reason
      (if err = "" then "(empty)" else String.trim err)
  in
  (* Honest baseline first: certification of a sound solver must pass. *)
  List.iter
    (fun cnf ->
      incr total;
      let status, err =
        run_cli binary [ "sat"; Filename.concat sandbox cnf; "--certify" ] ~stderr_file
      in
      match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n ->
        bad (cnf ^ " honest") (Printf.sprintf "exit %d (want 0)" n) err
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
        bad (cnf ^ " honest") (Printf.sprintf "signal %d" s) err)
    [ "sat.cnf"; "unsat.cnf" ];
  List.iter
    (fun (cnf, spec) ->
      incr total;
      let status, err =
        run_cli binary [ "sat"; cnf; "--certify"; "--unsound"; spec ] ~stderr_file
      in
      let what = Filename.basename cnf ^ " " ^ spec in
      match status with
      | Unix.WEXITED 1 when contains err "[CERT]" -> ()
      | Unix.WEXITED 0 -> bad what "unsound verdict escaped certification (exit 0)" err
      | Unix.WEXITED 1 -> bad what "exit 1 but no [CERT] diagnostic on stderr" err
      | Unix.WEXITED n -> bad what (Printf.sprintf "exit %d (want 1)" n) err
      | Unix.WSIGNALED s | Unix.WSTOPPED s -> bad what (Printf.sprintf "signal %d" s) err)
    (solver_mutations sandbox)

let () =
  let binary, fixtures =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ ->
      prerr_endline "usage: fault_inject.exe LLHSC_BINARY FIXTURES_DIR";
      exit 2
  in
  let rounds = 20 in (* x 10 targets = 200 mutants *)
  let failures = ref 0 in
  let total = ref 0 in
  let sandbox = Filename.concat (Filename.get_temp_dir_name ()) "llhsc-fault" in
  for round = 1 to rounds do
    List.iter
      (fun (victim, args) ->
        incr total;
        if Sys.file_exists sandbox then remove_tree sandbox;
        copy_dir fixtures sandbox;
        let victim_path = Filename.concat sandbox victim in
        write_file victim_path (mutate (read_file victim_path));
        let stderr_file = Filename.concat sandbox "stderr.txt" in
        let status, err = run_cli binary args ~stderr_file in
        let bad reason =
          incr failures;
          Printf.printf "FAIL (round %d, %s): %s\n  argv: %s\n  stderr: %s\n" round
            victim reason (String.concat " " args)
            (if err = "" then "(empty)" else String.trim err)
        in
        (match status with
         | Unix.WEXITED (0 | 1 | 2) -> ()
         | Unix.WEXITED n -> bad (Printf.sprintf "exit code %d" n)
         | Unix.WSIGNALED s -> bad (Printf.sprintf "killed by signal %d" s)
         | Unix.WSTOPPED s -> bad (Printf.sprintf "stopped by signal %d" s));
        if contains err "Fatal error" || contains err "Raised at" || contains err "Raised by"
        then bad "uncaught OCaml exception on stderr")
      (targets sandbox)
  done;
  (* Solver-mutation phase: pristine fixtures, mutated *solver*. *)
  if Sys.file_exists sandbox then remove_tree sandbox;
  copy_dir fixtures sandbox;
  run_solver_mutations binary sandbox ~failures ~total;
  if Sys.file_exists sandbox then remove_tree sandbox;
  Printf.printf "fault injection: %d mutants, %d contract violations\n" !total !failures;
  if !failures > 0 then exit 1
