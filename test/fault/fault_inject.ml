(* Fault-injection harness: mutate every kind of input file llhsc consumes
   (DTS, includes, deltas, feature models, project YAML, binding schemas)
   and assert the CLI's crash contract on each mutant:

     - exit code is 0 (clean), 1 (findings) or 2 (input error) — never
       cmdliner's 124/125, never a signal;
     - stderr carries structured diagnostics, not an OCaml backtrace.

   Runs ~200 mutants from a fixed seed, so failures reproduce exactly.
   Usage: fault_inject.exe LLHSC_BINARY FIXTURES_DIR *)

(* --- deterministic PRNG (xorshift64*, fixed seed) --------------------------- *)

let rng = ref 0x9E3779B97F4A7C15L

let rand_bits () =
  let x = !rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  rng := x;
  Int64.to_int (Int64.shift_right_logical x 2)

let rand_int n = if n <= 0 then 0 else rand_bits () mod n

(* --- small file helpers ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let rec copy_dir src dst =
  if not (Sys.file_exists dst) then Unix.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let s = Filename.concat src name and d = Filename.concat dst name in
      if Sys.is_directory s then copy_dir s d else write_file d (read_file s))
    (Sys.readdir src)

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> remove_tree (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* --- mutators ---------------------------------------------------------------- *)

let structural = "{};=<>&,\"[]:-"

let mutate_truncate s =
  if s = "" then s else String.sub s 0 (rand_int (String.length s))

let mutate_flip_byte s =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let i = rand_int (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl rand_int 8)));
    Bytes.to_string b
  end

let mutate_insert_structural s =
  let i = rand_int (String.length s + 1) in
  let c = structural.[rand_int (String.length structural)] in
  String.sub s 0 i ^ String.make 1 c ^ String.sub s i (String.length s - i)

let mutate_delete_structural s =
  let idxs = ref [] in
  String.iteri (fun i c -> if String.contains structural c then idxs := i :: !idxs) s;
  match !idxs with
  | [] -> mutate_truncate s
  | idxs ->
    let idxs = Array.of_list idxs in
    let i = idxs.(rand_int (Array.length idxs)) in
    String.sub s 0 i ^ String.sub s (i + 1) (String.length s - i - 1)

let on_lines f s =
  let lines = String.split_on_char '\n' s in
  String.concat "\n" (f (Array.of_list lines))

let mutate_delete_line s =
  on_lines
    (fun lines ->
      if Array.length lines <= 1 then Array.to_list lines
      else
        let k = rand_int (Array.length lines) in
        List.filteri (fun i _ -> i <> k) (Array.to_list lines))
    s

let mutate_duplicate_line s =
  on_lines
    (fun lines ->
      if Array.length lines = 0 then []
      else
        let k = rand_int (Array.length lines) in
        List.concat_map
          (fun (i, l) -> if i = k then [ l; l ] else [ l ])
          (List.mapi (fun i l -> (i, l)) (Array.to_list lines)))
    s

let mutate_garbage s =
  let junk = [ "\x00\x01\xff"; "}}}}"; "/*"; "= <0x"; "\"";
               "/include/ \"missing.dtsi\";"; "4294967296999999999" ] in
  let g = List.nth junk (rand_int (List.length junk)) in
  let i = rand_int (String.length s + 1) in
  String.sub s 0 i ^ g ^ String.sub s i (String.length s - i)

let mutate_empty _ = ""

let mutators =
  [| mutate_truncate; mutate_flip_byte; mutate_insert_structural;
     mutate_delete_structural; mutate_delete_line; mutate_duplicate_line;
     mutate_garbage; mutate_empty
  |]

let mutate s = mutators.(rand_int (Array.length mutators)) s

(* --- running the CLI ---------------------------------------------------------- *)

(* Start [argv]; stdin from /dev/null, stdout devnulled unless
   [stdout_file] is given, stderr to a file.  [env] appends NAME=VALUE
   bindings (the fault hooks).  Returns the pid — the fleet phase runs a
   dispatcher and workers concurrently; everything else waits. *)
let spawn_cli ?env ?stdout_file binary args ~stderr_file =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let out =
    match stdout_file with
    | None -> devnull
    | Some f -> Unix.openfile f [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let err = Unix.openfile stderr_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let argv = Array.of_list (binary :: args) in
  let pid =
    match env with
    | None -> Unix.create_process binary argv devnull out err
    | Some bindings ->
      Unix.create_process_env binary argv
        (Array.append (Unix.environment ()) (Array.of_list bindings))
        devnull out err
  in
  Unix.close devnull;
  if out <> devnull then Unix.close out;
  Unix.close err;
  pid

(* Run [argv] to completion; returns (status, stderr). *)
let run_cli ?env ?stdout_file binary args ~stderr_file =
  let pid = spawn_cli ?env ?stdout_file binary args ~stderr_file in
  let _, status = Unix.waitpid [] pid in
  (status, read_file stderr_file)

(* Every contract violation, one reproducible line each; dumped to the
   artifact file (argv[3]) on failure so CI can upload it. *)
let failure_log : string list ref = ref []
let log_failure fmt = Printf.ksprintf (fun s -> failure_log := s :: !failure_log) fmt

(* --- targets ------------------------------------------------------------------- *)

(* (file to mutate, CLI invocation given the sandbox dir) *)
let targets dir =
  let p f = Filename.concat dir f in
  [
    ("custom-sbc.dts", [ "check"; p "custom-sbc.dts"; "--schemas"; p "schemas" ]);
    ("cpus.dtsi", [ "check"; p "custom-sbc.dts"; "--schemas"; p "schemas" ]);
    ("custom-sbc.deltas",
     [ "analyze"; "--deltas"; p "custom-sbc.deltas"; "--model"; p "custom-sbc.fm" ]);
    ("custom-sbc.fm", [ "products"; p "custom-sbc.fm" ]);
    ("custom-sbc.proj.yaml", [ "build"; p "custom-sbc.proj.yaml" ]);
    ("schemas/memory.yaml", [ "check"; p "custom-sbc.dts"; "--schemas"; p "schemas" ]);
    ("schemas/cpu.yaml", [ "check"; p "custom-sbc.dts"; "--schemas"; p "schemas" ]);
    ("custom-sbc.dts", [ "dtb"; p "custom-sbc.dts"; "-o"; p "out.dtb" ]);
    ("custom-sbc.dts",
     [ "generate"; "--core"; p "custom-sbc.dts"; "--deltas"; p "custom-sbc.deltas";
       "-f"; "memory,cpu@0"; "-o"; p "gen.dts" ]);
    ("custom-sbc.fm", [ "configure"; p "custom-sbc.fm"; "-d"; "veth0" ]);
  ]

(* --- solver-mutation phase ------------------------------------------------------ *)

(* The input mutants above attack the parsers; these attack the *solver*:
   `sat --certify --unsound KIND:N` makes the solver deliberately unsound
   (dropped learnt literals, flipped model bits, muted proof steps) and the
   contract is that certification catches every one — exit 1 with an
   error[CERT] diagnostic, never a clean exit 0. *)
let solver_mutations dir =
  let p f = Filename.concat dir f in
  List.concat_map
    (fun n ->
      [ (p "unsat.cnf", Printf.sprintf "drop-lit:%d" n);
        (p "unsat.cnf", Printf.sprintf "mute-proof:%d" n);
        (p "sat.cnf", Printf.sprintf "flip-model:%d" n)
      ])
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let run_solver_mutations binary sandbox ~failures ~total =
  let stderr_file = Filename.concat sandbox "stderr.txt" in
  let bad what reason err =
    incr failures;
    log_failure "phase=certify what=%S reason=%S" what reason;
    Printf.printf "FAIL (certify, %s): %s\n  stderr: %s\n" what reason
      (if err = "" then "(empty)" else String.trim err)
  in
  (* Honest baseline first: certification of a sound solver must pass. *)
  List.iter
    (fun cnf ->
      incr total;
      let status, err =
        run_cli binary [ "sat"; Filename.concat sandbox cnf; "--certify" ] ~stderr_file
      in
      match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n ->
        bad (cnf ^ " honest") (Printf.sprintf "exit %d (want 0)" n) err
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
        bad (cnf ^ " honest") (Printf.sprintf "signal %d" s) err)
    [ "sat.cnf"; "unsat.cnf" ];
  List.iter
    (fun (cnf, spec) ->
      incr total;
      let status, err =
        run_cli binary [ "sat"; cnf; "--certify"; "--unsound"; spec ] ~stderr_file
      in
      let what = Filename.basename cnf ^ " " ^ spec in
      match status with
      | Unix.WEXITED 1 when contains err "[CERT]" -> ()
      | Unix.WEXITED 0 -> bad what "unsound verdict escaped certification (exit 0)" err
      | Unix.WEXITED 1 -> bad what "exit 1 but no [CERT] diagnostic on stderr" err
      | Unix.WEXITED n -> bad what (Printf.sprintf "exit %d (want 1)" n) err
      | Unix.WSIGNALED s | Unix.WSTOPPED s -> bad what (Printf.sprintf "signal %d" s) err)
    (solver_mutations sandbox)

(* --- kill-and-resume phase ------------------------------------------------------ *)

(* Crash-safety contract of the --journal/--resume pipeline: SIGKILL the
   run at a seeded point (after the n-th fsync'd record, or halfway through
   writing it), then resume from the journal; the resumed run's stdout and
   exit code must be byte-identical to an uninterrupted run.  Runs without
   --certify/--retry, whose reports legitimately depend on how much solver
   work the resumed run skipped. *)

let pipeline_args dir ~vms ~journal ~resume =
  let p f = Filename.concat dir f in
  [ "pipeline"; "--core"; p "custom-sbc.dts"; "--deltas"; p "custom-sbc.deltas";
    "--model"; p "custom-sbc.fm"; "--schemas"; p "schemas" ]
  @ List.concat_map (fun vm -> [ "--vm"; vm ]) vms
  @ [ "--exclusive"; "cpus" ]
  @ (match journal with None -> [] | Some j -> [ "--journal"; j ])
  @ (if resume then [ "--resume" ] else [])

(* (label, VM feature selections, journal records the run writes:
   one per product + one for the partition check). *)
let kill_configs =
  [ ("two-vm",
     [ "memory,cpu@0,uart@20000000,uart@30000000,veth0";
       "memory,cpu@1,uart@20000000,uart@30000000,veth1" ], 4);
    ("two-vm-partial",
     [ "memory,cpu@0,veth0"; "memory,cpu@1,veth1" ], 4);
    ("one-vm", [ "memory,cpu@0,uart@20000000" ], 3) ]

let run_kill_resume binary sandbox ~failures ~total =
  let stderr_file = Filename.concat sandbox "stderr.txt" in
  let journal = Filename.concat sandbox "journal.jsonl" in
  let base_out = Filename.concat sandbox "base.out" in
  let res_out = Filename.concat sandbox "resume.out" in
  List.iter
    (fun (label, vms, records) ->
      (* Uninterrupted baseline, no journal: the byte-identity reference. *)
      let base_status, _ =
        run_cli binary ~stdout_file:base_out
          (pipeline_args sandbox ~vms ~journal:None ~resume:false)
          ~stderr_file
      in
      let baseline = read_file base_out in
      List.iter
        (fun (hook, mode) ->
          for n = 1 to records do
            incr total;
            let what = Printf.sprintf "%s %s=%d" label mode n in
            let bad reason err =
              incr failures;
              log_failure "phase=kill-resume what=%S reason=%S" what reason;
              Printf.printf "FAIL (kill-resume, %s): %s\n  stderr: %s\n" what
                reason
                (if err = "" then "(empty)" else String.trim err)
            in
            if Sys.file_exists journal then Sys.remove journal;
            let kill_status, kerr =
              run_cli binary
                ~env:[ Printf.sprintf "%s=%d" hook n ]
                (pipeline_args sandbox ~vms ~journal:(Some journal)
                   ~resume:false)
                ~stderr_file
            in
            (match kill_status with
             | Unix.WSIGNALED s when s = Sys.sigkill -> ()
             | Unix.WSIGNALED _ | Unix.WSTOPPED _ | Unix.WEXITED _ ->
               bad "kill hook did not SIGKILL the run" kerr);
            let res_status, rerr =
              run_cli binary ~stdout_file:res_out
                (pipeline_args sandbox ~vms ~journal:(Some journal)
                   ~resume:true)
                ~stderr_file
            in
            if res_status <> base_status then
              bad
                (Printf.sprintf "resumed exit differs from baseline (%s vs %s)"
                   (match res_status with
                    | Unix.WEXITED n -> string_of_int n
                    | _ -> "signal")
                   (match base_status with
                    | Unix.WEXITED n -> string_of_int n
                    | _ -> "signal"))
                rerr
            else if read_file res_out <> baseline then
              bad "resumed report is not byte-identical to baseline" rerr
          done)
        [ ("LLHSC_FAULT_KILL_AFTER_RECORDS", "after");
          ("LLHSC_FAULT_KILL_MID_RECORD", "mid") ])
    kill_configs

(* --- kill-a-worker phase -------------------------------------------------------- *)

(* Self-healing contract: SIGKILL the worker dispatched the n-th task
   (the LLHSC_FAULT_KILL_WORKER hook in Shard).  The supervised pool must
   reassign the task, quarantine it after a second crash and retry it
   in-process, so EVERY kill index — in range or not — yields exit 0, a
   report byte-identical to the unkilled run, and zero error[WORKER]
   diagnostics.  In single-process mode (--jobs 1) the hook is inert. *)
let run_kill_worker binary sandbox ~failures ~total =
  let stderr_file = Filename.concat sandbox "stderr.txt" in
  let out_file = Filename.concat sandbox "worker.out" in
  let base_out = Filename.concat sandbox "worker-base.out" in
  let vms =
    [ "memory,cpu@0,uart@20000000,uart@30000000,veth0";
      "memory,cpu@1,uart@20000000,uart@30000000,veth1" ]
  in
  let args jobs =
    pipeline_args sandbox ~vms ~journal:None ~resume:false @ [ "--jobs"; jobs ]
  in
  let bad what reason err =
    incr failures;
    log_failure "phase=kill-worker what=%S reason=%S" what reason;
    Printf.printf "FAIL (kill-worker, %s): %s\n  stderr: %s\n" what reason
      (if err = "" then "(empty)" else String.trim err)
  in
  (* Unkilled baseline; --jobs determinism makes it the reference for the
     --jobs 1 hook-inertness check too. *)
  let base_status, base_err = run_cli binary ~stdout_file:base_out (args "4") ~stderr_file in
  (match base_status with
   | Unix.WEXITED 0 -> ()
   | _ -> bad "baseline" "unkilled --jobs 4 pipeline did not exit 0" base_err);
  let baseline = read_file base_out in
  List.iter
    (fun n ->
      incr total;
      let what = Printf.sprintf "task=%d jobs=4" n in
      let status, err =
        run_cli binary
          ~env:[ Printf.sprintf "LLHSC_FAULT_KILL_WORKER=%d" n ]
          ~stdout_file:out_file (args "4") ~stderr_file
      in
      let stdout = read_file out_file in
      (match status with
       | Unix.WEXITED 0 when stdout = baseline -> ()
       | Unix.WEXITED 0 -> bad what "clean exit but report differs from unkilled run" err
       | Unix.WEXITED c ->
         bad what (Printf.sprintf "exit %d (self-healing pool must recover to 0)" c) err
       | Unix.WSIGNALED s -> bad what (Printf.sprintf "parent killed by signal %d" s) err
       | Unix.WSTOPPED s -> bad what (Printf.sprintf "parent stopped by signal %d" s) err);
      if contains stdout "error[WORKER]" then
        bad what "reassignment left an error[WORKER] diagnostic" err;
      if contains err "Fatal error" || contains err "Raised at" then
        bad what "uncaught OCaml exception on stderr" err)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 64 ];
  incr total;
  let status, err =
    run_cli binary
      ~env:[ "LLHSC_FAULT_KILL_WORKER=0" ]
      ~stdout_file:out_file (args "1") ~stderr_file
  in
  (match status with
   | Unix.WEXITED 0 when read_file out_file = baseline -> ()
   | Unix.WEXITED 0 -> bad "jobs=1" "hook changed the single-process report" err
   | _ -> bad "jobs=1" "kill hook fired with --jobs 1 (must be inert)" err)

(* --- supervision phase ----------------------------------------------------------- *)

(* The rest of the self-healing contract: hung workers (heartbeats stop)
   are killed at the task deadline and their tasks reassigned; respawn
   budget exhaustion falls back to in-process checking; a worker that
   trips its RLIMIT_AS guard degrades the task to error[RESOURCE]; and
   crash recovery composes with --certify/--retry byte-identically. *)
let run_supervision binary sandbox ~failures ~total =
  let stderr_file = Filename.concat sandbox "stderr.txt" in
  let out_file = Filename.concat sandbox "supervision.out" in
  let base_out = Filename.concat sandbox "supervision-base.out" in
  let vms =
    [ "memory,cpu@0,uart@20000000,uart@30000000,veth0";
      "memory,cpu@1,uart@20000000,uart@30000000,veth1" ]
  in
  let args extra =
    pipeline_args sandbox ~vms ~journal:None ~resume:false @ extra
  in
  let bad what reason err =
    incr failures;
    log_failure "phase=supervision what=%S reason=%S" what reason;
    Printf.printf "FAIL (supervision, %s): %s\n  stderr: %s\n" what reason
      (if err = "" then "(empty)" else String.trim err)
  in
  let baseline_of extra =
    let status, err =
      run_cli binary ~stdout_file:base_out (args extra) ~stderr_file
    in
    (match status with
     | Unix.WEXITED 0 -> ()
     | _ -> bad "baseline" "undisturbed --jobs 1 pipeline did not exit 0" err);
    read_file base_out
  in
  (* Expect a disturbed run to recover: exit 0, byte-identical stdout,
     no error[WORKER], no backtrace; [expect_err] must appear on stderr. *)
  let expect_recovery what ~env ~extra ~baseline ?expect_err () =
    incr total;
    let status, err = run_cli binary ~env ~stdout_file:out_file (args extra) ~stderr_file in
    let stdout = read_file out_file in
    (match status with
     | Unix.WEXITED 0 when stdout = baseline -> ()
     | Unix.WEXITED 0 -> bad what "recovered exit but report differs from baseline" err
     | Unix.WEXITED c -> bad what (Printf.sprintf "exit %d (want 0)" c) err
     | Unix.WSIGNALED s -> bad what (Printf.sprintf "parent killed by signal %d" s) err
     | Unix.WSTOPPED s -> bad what (Printf.sprintf "parent stopped by signal %d" s) err);
    if contains stdout "error[WORKER]" then
      bad what "recovery left an error[WORKER] diagnostic" err;
    (match expect_err with
     | Some needle when not (contains err needle) ->
       bad what (Printf.sprintf "expected %S notice on stderr" needle) err
     | _ -> ());
    if contains err "Fatal error" || contains err "Raised at" then
      bad what "uncaught OCaml exception on stderr" err
  in
  let plain_baseline = baseline_of [ "--jobs"; "1" ] in
  (* Hung workers: every seeded hang index must be recovered through the
     deadline/reassign path. *)
  List.iter
    (fun n ->
      expect_recovery
        (Printf.sprintf "hang task=%d" n)
        ~env:[ Printf.sprintf "LLHSC_FAULT_HANG_WORKER=%d" n ]
        ~extra:[ "--jobs"; "2"; "--task-deadline"; "1" ]
        ~baseline:plain_baseline ~expect_err:"deadline" ())
    [ 0; 2; 5 ];
  (* Respawn exhaustion: no replacement workers allowed, so the pool must
     finish the remaining tasks in-process. *)
  expect_recovery "respawn-exhaustion"
    ~env:[ "LLHSC_FAULT_KILL_WORKER=0" ]
    ~extra:[ "--jobs"; "2"; "--max-respawns"; "0" ]
    ~baseline:plain_baseline ~expect_err:"exhausted" ();
  (* Crash recovery composes with certification and retry: the disturbed
     report must still carry identical certificate/escalation stats. *)
  let cr_flags = [ "--certify"; "--unsound"; "force-unknown:3"; "--retry"; "3" ] in
  let cr_baseline = baseline_of ([ "--jobs"; "1" ] @ cr_flags) in
  expect_recovery "kill under certify+retry"
    ~env:[ "LLHSC_FAULT_KILL_WORKER=1" ]
    ~extra:([ "--jobs"; "2" ] @ cr_flags)
    ~baseline:cr_baseline ();
  expect_recovery "hang under certify+retry"
    ~env:[ "LLHSC_FAULT_HANG_WORKER=1" ]
    ~extra:([ "--jobs"; "2"; "--task-deadline"; "1" ] @ cr_flags)
    ~baseline:cr_baseline ~expect_err:"deadline" ();
  (* RLIMIT_AS guard: the OOM-injected task degrades to error[RESOURCE]
     (exit 2), never to error[WORKER], and never crashes the parent. *)
  incr total;
  let status, err =
    run_cli binary
      ~env:[ "LLHSC_FAULT_OOM_WORKER=0" ]
      ~stdout_file:out_file
      (args [ "--jobs"; "2"; "--mem-limit"; "512" ])
      ~stderr_file
  in
  let stdout = read_file out_file in
  (match status with
   | Unix.WEXITED 2 when contains stdout "error[RESOURCE]" -> ()
   | Unix.WEXITED 2 -> bad "rlimit-oom" "exit 2 but no error[RESOURCE] diagnostic" err
   | Unix.WEXITED c -> bad "rlimit-oom" (Printf.sprintf "exit %d (want 2)" c) err
   | Unix.WSIGNALED s -> bad "rlimit-oom" (Printf.sprintf "parent killed by signal %d" s) err
   | Unix.WSTOPPED s -> bad "rlimit-oom" (Printf.sprintf "parent stopped by signal %d" s) err);
  if contains stdout "error[WORKER]" then
    bad "rlimit-oom" "OOM degraded to error[WORKER] instead of error[RESOURCE]" err;
  if contains err "Fatal error" || contains err "Raised at" then
    bad "rlimit-oom" "uncaught OCaml exception on stderr" err;
  (* The hooks are inert without workers: a --jobs 1 run with every hook
     set must be byte-identical to the undisturbed baseline. *)
  expect_recovery "hooks inert in-process"
    ~env:[ "LLHSC_FAULT_HANG_WORKER=0"; "LLHSC_FAULT_OOM_WORKER=0" ]
    ~extra:[ "--jobs"; "1" ]
    ~baseline:plain_baseline ()

(* --- fleet phase ----------------------------------------------------------------- *)

(* Socket-transport half of the self-healing contract: a real dispatcher
   and a real worker over a loopback socket, with the worker-side fault
   hooks — connection drop, result delayed past the lease deadline,
   duplicate result — injected at seeded task indices (in range or not).
   Every schedule must exit 0 with a report byte-identical to the
   --jobs 1 baseline: reassignment, reconnection and first-wins
   duplicate suppression are invisible in the merge. *)
let run_fleet binary sandbox ~failures ~total =
  let stderr_file = Filename.concat sandbox "fleet-dispatch.err" in
  let out_file = Filename.concat sandbox "fleet.out" in
  let base_out = Filename.concat sandbox "fleet-base.out" in
  let port_file = Filename.concat sandbox "fleet.port" in
  let vms =
    [ "memory,cpu@0,uart@20000000,uart@30000000,veth0";
      "memory,cpu@1,uart@20000000,uart@30000000,veth1" ]
  in
  let bad what reason err =
    incr failures;
    log_failure "phase=fleet what=%S reason=%S" what reason;
    Printf.printf "FAIL (fleet, %s): %s\n  stderr: %s\n" what reason
      (if err = "" then "(empty)" else String.trim err)
  in
  let base_status, base_err =
    run_cli binary ~stdout_file:base_out
      (pipeline_args sandbox ~vms ~journal:None ~resume:false @ [ "--jobs"; "1" ])
      ~stderr_file
  in
  (match base_status with
   | Unix.WEXITED 0 -> ()
   | _ -> bad "baseline" "undisturbed --jobs 1 pipeline did not exit 0" base_err);
  let baseline = read_file base_out in
  let wait_port () =
    let rec go tries =
      if Sys.file_exists port_file && (Unix.stat port_file).Unix.st_size > 0 then true
      else if tries = 0 then false
      else begin
        Unix.sleepf 0.1;
        go (tries - 1)
      end
    in
    go 100
  in
  (* Reap a worker, SIGKILLing it if it does not exit on its own. *)
  let reap pid =
    let rec poll tries =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ when tries > 0 ->
        Unix.sleepf 0.1;
        poll (tries - 1)
      | 0, _ ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      | _ -> ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    in
    poll 50
  in
  let schedule what ~env ~flags =
    incr total;
    if Sys.file_exists port_file then Sys.remove port_file;
    let dispatch_args =
      "dispatch" :: "--listen" :: "127.0.0.1:0" :: "--port-file" :: port_file
      :: flags
      @ List.tl (pipeline_args sandbox ~vms ~journal:None ~resume:false)
    in
    let dpid = spawn_cli binary ~stdout_file:out_file dispatch_args ~stderr_file in
    if not (wait_port ()) then begin
      (try Unix.kill dpid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] dpid);
      bad what "dispatcher never wrote its port file" (read_file stderr_file)
    end
    else begin
      let wpid =
        spawn_cli binary ~env
          [ "worker"; "--port-file"; port_file; "--max-reconnects"; "3" ]
          ~stderr_file:(Filename.concat sandbox "fleet-worker.err")
      in
      let _, status = Unix.waitpid [] dpid in
      let err = read_file stderr_file in
      let stdout = read_file out_file in
      (match status with
       | Unix.WEXITED 0 when stdout = baseline -> ()
       | Unix.WEXITED 0 -> bad what "clean exit but report differs from --jobs 1 run" err
       | Unix.WEXITED c -> bad what (Printf.sprintf "exit %d (want 0)" c) err
       | Unix.WSIGNALED s -> bad what (Printf.sprintf "dispatcher killed by signal %d" s) err
       | Unix.WSTOPPED s -> bad what (Printf.sprintf "dispatcher stopped by signal %d" s) err);
      if contains stdout "error[WORKER]" then
        bad what "fleet recovery left an error[WORKER] diagnostic" err;
      if contains err "Fatal error" || contains err "Raised at" then
        bad what "uncaught OCaml exception on stderr" err;
      reap wpid
    end
  in
  (* Connection drops: the worker must reconnect and redo the crashed
     task (the long grace keeps the fleet floor from tripping); an
     out-of-range index leaves the hook inert. *)
  List.iter
    (fun n ->
      schedule
        (Printf.sprintf "drop-conn task=%d" n)
        ~env:[ Printf.sprintf "LLHSC_FAULT_DROP_CONN_WORKER=%d" n ]
        ~flags:[ "--wait-workers"; "30" ])
    [ 0; 1; 64 ];
  (* A result delayed past the lease deadline: reassigned, and the late
     copy lands on a closed socket without upsetting the merge. *)
  schedule "delay-result task=1"
    ~env:[ "LLHSC_FAULT_DELAY_RESULT_WORKER=1" ]
    ~flags:[ "--wait-workers"; "3"; "--task-deadline"; "1" ];
  (* Duplicate results: the second copy must be suppressed first-wins. *)
  List.iter
    (fun n ->
      schedule
        (Printf.sprintf "dup-result task=%d" n)
        ~env:[ Printf.sprintf "LLHSC_FAULT_DUP_RESULT_WORKER=%d" n ]
        ~flags:[ "--wait-workers"; "30" ])
    [ 0; 2 ]

(* --- network-chaos phase --------------------------------------------------------- *)

(* The dispatcher/worker link runs through llhsc's own seeded
   fault-injecting TCP proxy (corruption, partitions, truncation,
   stalls, reorders, duplicated and split writes), with authentication
   on.  The contract: every damaged frame collapses to dead-worker
   handling, the run still exits 0 with the baseline bytes, and nothing
   ever crashes. *)
let run_network_chaos binary sandbox ~failures ~total =
  let stderr_file = Filename.concat sandbox "chaos-dispatch.err" in
  let out_file = Filename.concat sandbox "chaos.out" in
  let base_out = Filename.concat sandbox "chaos-base.out" in
  let port_file = Filename.concat sandbox "chaos.port" in
  let proxy_port_file = Filename.concat sandbox "chaos-proxy.port" in
  let secret_file = Filename.concat sandbox "chaos.secret" in
  write_file secret_file "fault-harness-secret\n";
  let vms =
    [ "memory,cpu@0,uart@20000000,uart@30000000,veth0";
      "memory,cpu@1,uart@20000000,uart@30000000,veth1" ]
  in
  let bad what reason err =
    incr failures;
    log_failure "phase=network-chaos what=%S reason=%S" what reason;
    Printf.printf "FAIL (network-chaos, %s): %s\n  stderr: %s\n" what reason
      (if err = "" then "(empty)" else String.trim err)
  in
  let base_status, base_err =
    run_cli binary ~stdout_file:base_out
      (pipeline_args sandbox ~vms ~journal:None ~resume:false @ [ "--jobs"; "1" ])
      ~stderr_file
  in
  (match base_status with
   | Unix.WEXITED 0 -> ()
   | _ -> bad "baseline" "undisturbed --jobs 1 pipeline did not exit 0" base_err);
  let baseline = read_file base_out in
  let wait_file path =
    let rec go tries =
      if Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 then true
      else if tries = 0 then false
      else begin
        Unix.sleepf 0.1;
        go (tries - 1)
      end
    in
    go 100
  in
  let reap pid =
    let rec poll tries =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ when tries > 0 ->
        Unix.sleepf 0.1;
        poll (tries - 1)
      | 0, _ ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      | _ -> ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    in
    poll 50
  in
  let kill_now pid =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid)
  in
  let schedule seed =
    incr total;
    let what = Printf.sprintf "chaos seed=%d" seed in
    List.iter
      (fun f -> if Sys.file_exists f then Sys.remove f)
      [ port_file; proxy_port_file ];
    let dpid =
      spawn_cli binary ~stdout_file:out_file
        ("dispatch" :: "--listen" :: "127.0.0.1:0" :: "--port-file" :: port_file
         :: "--wait-workers" :: "30" :: "--secret-file" :: secret_file
         :: List.tl (pipeline_args sandbox ~vms ~journal:None ~resume:false))
        ~stderr_file
    in
    if not (wait_file port_file) then begin
      kill_now dpid;
      bad what "dispatcher never wrote its port file" (read_file stderr_file)
    end
    else begin
      let ppid =
        spawn_cli binary
          [ "chaosproxy"; "--listen"; "127.0.0.1:0";
            "--upstream"; "127.0.0.1:" ^ String.trim (read_file port_file);
            "--port-file"; proxy_port_file; "--seed"; string_of_int seed;
            "--corrupt"; "0.03"; "--drop"; "0.02"; "--truncate"; "0.02";
            "--stall"; "0.1"; "--stall-ms"; "80"; "--reorder"; "0.05";
            "--dup"; "0.05"; "--split"; "0.3" ]
          ~stderr_file:(Filename.concat sandbox "chaos-proxy.err")
      in
      if not (wait_file proxy_port_file) then begin
        kill_now ppid;
        kill_now dpid;
        bad what "chaos proxy never wrote its port file"
          (read_file (Filename.concat sandbox "chaos-proxy.err"))
      end
      else begin
        let wpid =
          spawn_cli binary
            [ "worker";
              "--connect"; "127.0.0.1:" ^ String.trim (read_file proxy_port_file);
              "--secret-file"; secret_file; "--max-reconnects"; "50" ]
            ~stderr_file:(Filename.concat sandbox "chaos-worker.err")
        in
        let _, status = Unix.waitpid [] dpid in
        let err = read_file stderr_file in
        let stdout = read_file out_file in
        (match status with
         | Unix.WEXITED 0 when stdout = baseline -> ()
         | Unix.WEXITED 0 -> bad what "clean exit but report differs from --jobs 1 run" err
         | Unix.WEXITED c -> bad what (Printf.sprintf "exit %d (want 0)" c) err
         | Unix.WSIGNALED s -> bad what (Printf.sprintf "dispatcher killed by signal %d" s) err
         | Unix.WSTOPPED s -> bad what (Printf.sprintf "dispatcher stopped by signal %d" s) err);
        if contains stdout "error[WORKER]" then
          bad what "chaos recovery left an error[WORKER] diagnostic" err;
        if contains err "Fatal error" || contains err "Raised at" then
          bad what "uncaught OCaml exception on stderr" err;
        (try Unix.kill ppid Sys.sigterm with Unix.Unix_error _ -> ());
        reap ppid;
        reap wpid
      end
    end
  in
  List.iter schedule [ 1; 2; 3 ]

(* --- forced-Unknown phase ------------------------------------------------------- *)

(* Inject Unknown verdicts (a budget-style degradation, not an
   unsoundness) every n-th solver call, with and without the escalation
   ladder.  The contract: the exit-code contract holds, nothing crashes,
   and a saturating injection (n=1, every attempt Unknown) degrades to
   "inconclusive" warnings — never a fake verdict, never a backtrace. *)
let run_forced_unknown binary sandbox ~failures ~total =
  let stderr_file = Filename.concat sandbox "stderr.txt" in
  let out_file = Filename.concat sandbox "unknown.out" in
  let vms =
    [ "memory,cpu@0,uart@20000000,uart@30000000,veth0";
      "memory,cpu@1,uart@20000000,uart@30000000,veth1" ]
  in
  List.iter
    (fun (n, retry) ->
      incr total;
      let what =
        Printf.sprintf "force-unknown:%d%s" n
          (match retry with Some r -> " --retry " ^ r | None -> "")
      in
      let bad reason err =
        incr failures;
        log_failure "phase=force-unknown what=%S reason=%S" what reason;
        Printf.printf "FAIL (force-unknown, %s): %s\n  stderr: %s\n" what reason
          (if err = "" then "(empty)" else String.trim err)
      in
      let args =
        pipeline_args sandbox ~vms ~journal:None ~resume:false
        @ [ "--unsound"; Printf.sprintf "force-unknown:%d" n ]
        @ (match retry with Some r -> [ "--retry"; r ] | None -> [])
      in
      let status, err = run_cli binary ~stdout_file:out_file args ~stderr_file in
      let stdout = read_file out_file in
      (match status with
       | Unix.WEXITED (0 | 1 | 2) -> ()
       | Unix.WEXITED c -> bad (Printf.sprintf "exit code %d" c) err
       | Unix.WSIGNALED s -> bad (Printf.sprintf "killed by signal %d" s) err
       | Unix.WSTOPPED s -> bad (Printf.sprintf "stopped by signal %d" s) err);
      if contains err "Fatal error" || contains err "Raised at" then
        bad "uncaught OCaml exception on stderr" err;
      (* Saturating injection: every solve attempt (retries included)
         returns Unknown, so the run must degrade to inconclusive
         warnings rather than claim a verdict. *)
      if n = 1 && not (contains stdout "inconclusive") then
        bad "saturating Unknown produced no inconclusive warning" err)
    (List.concat_map
       (fun n -> [ (n, None); (n, Some "3") ])
       [ 1; 2; 3; 5 ])

(* --- disk-fault phase ----------------------------------------------------------- *)

(* Storage contract (LLHSC_FAULT_FS, lib/llhsc/durable.ml): under any
   seeded disk fault the checker never crashes mid-check and never
   pretends data is durable when it is not.

   - [enospc@n]/[eio-fsync@n] on a journaled run: the journal degrades,
     the run completes with its baseline exit code, the report carries a
     warning[JOURNAL] line and is otherwise byte-identical to baseline;
     a subsequent --resume refuses the degraded journal, re-checks
     everything, and reproduces the baseline report byte-for-byte.
   - [erofs@1] on the journal open: structured error[IO], exit 2.
   - [short@1] during an atomic output commit: structured error[IO],
     exit 2, and the previous output file contents survive untouched.
   - [crash-rename@1] during an atomic output commit: the process dies
     of the injected SIGKILL and the previous contents survive — the
     reader never sees a torn half-file. *)
let run_disk_faults binary sandbox ~failures ~total =
  let stderr_file = Filename.concat sandbox "stderr.txt" in
  let journal = Filename.concat sandbox "journal.jsonl" in
  let base_out = Filename.concat sandbox "disk-base.out" in
  let out_file = Filename.concat sandbox "disk.out" in
  let res_out = Filename.concat sandbox "disk-resume.out" in
  let bad what reason err =
    incr failures;
    log_failure "phase=disk what=%S reason=%S" what reason;
    Printf.printf "FAIL (disk, %s): %s\n  stderr: %s\n" what reason
      (if err = "" then "(empty)" else String.trim err)
  in
  let exit_str = function
    | Unix.WEXITED n -> string_of_int n
    | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
    | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s
  in
  let strip_journal_warning s =
    String.split_on_char '\n' s
    |> List.filter (fun l -> not (contains l "warning[JOURNAL]"))
    |> String.concat "\n"
  in
  List.iter
    (fun (label, vms, records) ->
      let base_status, _ =
        run_cli binary ~stdout_file:base_out
          (pipeline_args sandbox ~vms ~journal:None ~resume:false)
          ~stderr_file
      in
      let baseline = read_file base_out in
      (* Every write and every fsync the journal performs (header +
         [records] records) fails in turn: fail-operational, loudly. *)
      List.iter
        (fun kind ->
          for n = 1 to records + 1 do
            incr total;
            let what = Printf.sprintf "%s %s@%d" label kind n in
            if Sys.file_exists journal then Sys.remove journal;
            let status, err =
              run_cli binary ~stdout_file:out_file
                ~env:[ Printf.sprintf "LLHSC_FAULT_FS=%s@%d" kind n ]
                (pipeline_args sandbox ~vms ~journal:(Some journal) ~resume:false)
                ~stderr_file
            in
            let stdout = read_file out_file in
            if contains err "Fatal error" || contains err "Raised at" then
              bad what "uncaught OCaml exception on stderr" err
            else if status <> base_status then
              bad what
                (Printf.sprintf "exit %s under a journal fault (baseline %s)"
                   (exit_str status) (exit_str base_status))
                err
            else if not (contains stdout "warning[JOURNAL]") then
              bad what "journal write fault degraded silently (no warning[JOURNAL])"
                err
            else if strip_journal_warning stdout <> baseline then
              bad what "degraded report differs beyond the JOURNAL warning" err
            else begin
              (* The degraded journal must be refused: the resume
                 re-checks everything and reproduces the baseline. *)
              incr total;
              let res_status, rerr =
                run_cli binary ~stdout_file:res_out
                  (pipeline_args sandbox ~vms ~journal:(Some journal) ~resume:true)
                  ~stderr_file
              in
              if res_status <> base_status then
                bad (what ^ " resume")
                  (Printf.sprintf "resumed exit %s (baseline %s)"
                     (exit_str res_status) (exit_str base_status))
                  rerr
              else if read_file res_out <> baseline then
                bad (what ^ " resume")
                  "resume after degradation is not byte-identical to baseline" rerr
              else if not (contains rerr "not trusting it") then
                bad (what ^ " resume") "no degradation notice on resume stderr" rerr
            end
          done)
        [ "enospc"; "eio-fsync" ];
      (* Read-only journal directory: a structured input error, never a
         crash or a silently unjournaled run. *)
      incr total;
      if Sys.file_exists journal then Sys.remove journal;
      let status, err =
        run_cli binary ~stdout_file:out_file ~env:[ "LLHSC_FAULT_FS=erofs@1" ]
          (pipeline_args sandbox ~vms ~journal:(Some journal) ~resume:false)
          ~stderr_file
      in
      (match status with
       | Unix.WEXITED 2 when contains err "error[IO]" -> ()
       | Unix.WEXITED 2 -> bad (label ^ " erofs") "exit 2 but no error[IO] on stderr" err
       | s -> bad (label ^ " erofs") (Printf.sprintf "exit %s (want 2)" (exit_str s)) err))
    kill_configs;
  (* Atomic output commit: generate -o through the durable write path. *)
  let gen = Filename.concat sandbox "gen.dts" in
  let gen_args =
    [ "generate"; "--core"; Filename.concat sandbox "custom-sbc.dts";
      "--deltas"; Filename.concat sandbox "custom-sbc.deltas";
      "-f"; "memory,cpu@0"; "-o"; gen ]
  in
  List.iter
    (fun (kind, check) ->
      incr total;
      write_file gen "previous contents\n";
      let status, err =
        run_cli binary ~env:[ "LLHSC_FAULT_FS=" ^ kind ] gen_args ~stderr_file
      in
      check status err;
      if read_file gen <> "previous contents\n" then
        bad ("generate " ^ kind) "previous output contents did not survive the fault"
          err)
    [ ("short@1",
       fun status err ->
         match status with
         | Unix.WEXITED 2 when contains err "error[IO]" -> ()
         | s ->
           bad "generate short@1"
             (Printf.sprintf "exit %s (want 2 with error[IO])" (exit_str s)) err);
      ("crash-rename@1",
       fun status err ->
         match status with
         | Unix.WSIGNALED s when s = Sys.sigkill -> ()
         | s ->
           bad "generate crash-rename@1"
             (Printf.sprintf "exit %s (want the injected SIGKILL)" (exit_str s)) err)
    ];
  (* And with the fault cleared the same command commits atomically. *)
  incr total;
  let status, err = run_cli binary gen_args ~stderr_file in
  (match status with
   | Unix.WEXITED 0 when read_file gen <> "previous contents\n" && read_file gen <> "" -> ()
   | Unix.WEXITED 0 -> bad "generate clean" "output was never replaced" err
   | s -> bad "generate clean" (Printf.sprintf "exit %s (want 0)" (exit_str s)) err)

let () =
  let binary, fixtures, artifact =
    match Sys.argv with
    | [| _; b; f |] -> (b, f, None)
    | [| _; b; f; a |] -> (b, f, Some a)
    | _ ->
      prerr_endline "usage: fault_inject.exe LLHSC_BINARY FIXTURES_DIR [ARTIFACT_FILE]";
      exit 2
  in
  let rounds = 20 in (* x 10 targets = 200 mutants *)
  let failures = ref 0 in
  let total = ref 0 in
  let sandbox = Filename.concat (Filename.get_temp_dir_name ()) "llhsc-fault" in
  for round = 1 to rounds do
    List.iter
      (fun (victim, args) ->
        incr total;
        if Sys.file_exists sandbox then remove_tree sandbox;
        copy_dir fixtures sandbox;
        let victim_path = Filename.concat sandbox victim in
        (* Snapshot the PRNG state before mutating: the logged state plus
           round/victim pins the surviving mutant exactly. *)
        let rng_state = !rng in
        write_file victim_path (mutate (read_file victim_path));
        let stderr_file = Filename.concat sandbox "stderr.txt" in
        let status, err = run_cli binary args ~stderr_file in
        let bad reason =
          incr failures;
          log_failure "phase=input round=%d victim=%s rng=0x%Lx reason=%S argv=%S"
            round victim rng_state reason (String.concat " " args);
          Printf.printf "FAIL (round %d, %s): %s\n  argv: %s\n  stderr: %s\n" round
            victim reason (String.concat " " args)
            (if err = "" then "(empty)" else String.trim err)
        in
        (match status with
         | Unix.WEXITED (0 | 1 | 2) -> ()
         | Unix.WEXITED n -> bad (Printf.sprintf "exit code %d" n)
         | Unix.WSIGNALED s -> bad (Printf.sprintf "killed by signal %d" s)
         | Unix.WSTOPPED s -> bad (Printf.sprintf "stopped by signal %d" s));
        if contains err "Fatal error" || contains err "Raised at" || contains err "Raised by"
        then bad "uncaught OCaml exception on stderr")
      (targets sandbox)
  done;
  (* Solver-mutation phase: pristine fixtures, mutated *solver*. *)
  if Sys.file_exists sandbox then remove_tree sandbox;
  copy_dir fixtures sandbox;
  run_solver_mutations binary sandbox ~failures ~total;
  (* Kill-and-resume phase: SIGKILL at every seeded journal record, resume,
     demand a byte-identical report. *)
  if Sys.file_exists sandbox then remove_tree sandbox;
  copy_dir fixtures sandbox;
  run_kill_resume binary sandbox ~failures ~total;
  (* Disk-fault phase: seeded ENOSPC/EIO/short-write/read-only/crash
     schedules through the durable I/O layer; degradation must be loud,
     resumable state trustworthy, atomic commits all-or-nothing. *)
  if Sys.file_exists sandbox then remove_tree sandbox;
  copy_dir fixtures sandbox;
  run_disk_faults binary sandbox ~failures ~total;
  (* Kill-a-worker phase: SIGKILL a forked check worker at every seeded
     task index, demand isolated WORKER diagnostics and a live parent. *)
  if Sys.file_exists sandbox then remove_tree sandbox;
  copy_dir fixtures sandbox;
  run_kill_worker binary sandbox ~failures ~total;
  (* Supervision phase: hung workers, respawn exhaustion, rlimit OOM, and
     crash recovery under --certify/--retry. *)
  if Sys.file_exists sandbox then remove_tree sandbox;
  copy_dir fixtures sandbox;
  run_supervision binary sandbox ~failures ~total;
  (* Fleet phase: the same recovery contract over the socket transport —
     connection drops, late results, duplicate results. *)
  if Sys.file_exists sandbox then remove_tree sandbox;
  copy_dir fixtures sandbox;
  run_fleet binary sandbox ~failures ~total;
  (* Network-chaos phase: the fleet link through the seeded
     fault-injecting proxy, authentication on. *)
  if Sys.file_exists sandbox then remove_tree sandbox;
  copy_dir fixtures sandbox;
  run_network_chaos binary sandbox ~failures ~total;
  (* Forced-Unknown phase: saturate the solver with Unknown verdicts, with
     and without the escalation ladder. *)
  if Sys.file_exists sandbox then remove_tree sandbox;
  copy_dir fixtures sandbox;
  run_forced_unknown binary sandbox ~failures ~total;
  if Sys.file_exists sandbox then remove_tree sandbox;
  (match artifact with
   | Some path when !failures > 0 ->
     write_file path (String.concat "\n" (List.rev !failure_log) ^ "\n");
     Printf.printf "surviving-mutant log written to %s\n" path
   | _ -> ());
  Printf.printf "fault injection: %d mutants, %d contract violations\n" !total !failures;
  if !failures > 0 then exit 1
