#!/bin/sh
# CLI integration tests: exercises every llhsc subcommand against the
# file-based fixtures in examples/files.  Invoked by the dune runtest alias
# with $1 = path to the llhsc binary and $2 = path to the fixtures.
set -e

LLHSC=$1
FIXTURES=$2
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

echo "# check: clean DTS passes"
"$LLHSC" check "$FIXTURES/custom-sbc.dts" --schemas "$FIXTURES/schemas" \
  > "$TMP/check.out" || fail "check should pass"
grep -q "all checks passed" "$TMP/check.out" || fail "expected 'all checks passed'"

echo "# check: clash is detected and exits non-zero"
sed 's/0x0 0x20000000 0x0 0x1000/0x0 0x60000000 0x0 0x1000/' \
  "$FIXTURES/custom-sbc.dts" > "$TMP/clash.dts"
cp "$FIXTURES/cpus.dtsi" "$TMP/"
if "$LLHSC" check "$TMP/clash.dts" > "$TMP/clash.out"; then
  fail "clash check should fail"
fi
grep -q "collide" "$TMP/clash.out" || fail "expected collision report"
grep -q "0x60000000" "$TMP/clash.out" || fail "expected witness address"

echo "# products: 12 products, none dead"
"$LLHSC" products "$FIXTURES/custom-sbc.fm" --dead > "$TMP/products.out"
grep -q "12 valid product(s)" "$TMP/products.out" || fail "expected 12 products"
grep -q "no dead features" "$TMP/products.out" || fail "expected no dead features"

echo "# generate: VM1 product"
"$LLHSC" generate --core "$FIXTURES/custom-sbc.dts" --deltas "$FIXTURES/custom-sbc.deltas" \
  -f "memory,cpu@0,uart@20000000,uart@30000000,veth0" --check -o "$TMP/vm1.dts" \
  > "$TMP/generate.out" || fail "generate should pass"
grep -q "applied deltas: d3 < d4" "$TMP/generate.out" || fail "expected delta order"
grep -q "veth0@80000000" "$TMP/vm1.dts" || fail "expected veth0 node in output"

echo "# generated DTS re-parses and re-checks clean"
"$LLHSC" check "$TMP/vm1.dts" > /dev/null || fail "generated DTS should check clean"

echo "# pipeline: artifacts written"
"$LLHSC" pipeline --core "$FIXTURES/custom-sbc.dts" --deltas "$FIXTURES/custom-sbc.deltas" \
  --model "$FIXTURES/custom-sbc.fm" --schemas "$FIXTURES/schemas" \
  --vm "memory,cpu@0,uart@20000000,uart@30000000,veth0" \
  --vm "memory,cpu@1,uart@20000000,uart@30000000,veth1" \
  --exclusive cpus --out-dir "$TMP/out" > "$TMP/pipeline.out" || fail "pipeline should pass"
for f in vm1.dts vm2.dts platform.dts platform.c config.c; do
  [ -f "$TMP/out/$f" ] || fail "missing artifact $f"
done
grep -q "cpu_num = 2" "$TMP/out/platform.c" || fail "platform.c content"
grep -q "vmlist_size = 2" "$TMP/out/config.c" || fail "config.c content"

echo "# pipeline: invalid allocation rejected"
if "$LLHSC" pipeline --core "$FIXTURES/custom-sbc.dts" --deltas "$FIXTURES/custom-sbc.deltas" \
  --model "$FIXTURES/custom-sbc.fm" \
  --vm "memory,cpu@0" --vm "memory,cpu@0" --exclusive cpus > "$TMP/bad.out"; then
  fail "double-cpu pipeline should fail"
fi
grep -q "no allocation" "$TMP/bad.out" || fail "expected allocation error"

echo "# dtb: round trip"
"$LLHSC" dtb "$FIXTURES/custom-sbc.dts" -o "$TMP/board.dtb" > /dev/null
[ -s "$TMP/board.dtb" ] || fail "dtb not written"
"$LLHSC" dtb -d "$TMP/board.dtb" -o "$TMP/board-roundtrip.dts" > /dev/null
grep -q "memory@40000000" "$TMP/board-roundtrip.dts" || fail "decompiled DTS content"

echo "# overlay: merge and check"
cat > "$TMP/base.dts" <<'EOF'
/dts-v1/;
/ {
    #address-cells = <1>; #size-cells = <1>;
    memory@40000000 { device_type = "memory"; reg = <0x40000000 0x10000000>; };
    u0: uart@10000000 { compatible = "ns16550a"; reg = <0x10000000 0x100>; status = "disabled"; };
};
EOF
cat > "$TMP/enable-uart.dts" <<'EOF'
/dts-v1/;
/ {
    fragment@0 {
        target = <&u0>;
        __overlay__ { status = "okay"; };
    };
};
EOF
"$LLHSC" overlay "$TMP/base.dts" "$TMP/enable-uart.dts" --check -o "$TMP/merged.dts"   > /dev/null || fail "overlay should pass"
grep -q 'status = "okay"' "$TMP/merged.dts" || fail "overlay not applied"

echo "# smt2 export"
"$LLHSC" smt2 "$FIXTURES/custom-sbc.dts" --schemas "$FIXTURES/schemas" -o "$TMP/problem.smt2" > /dev/null
grep -q "(set-logic" "$TMP/problem.smt2" || fail "smt2 header"
grep -q "(check-sat)" "$TMP/problem.smt2" || fail "smt2 footer"

echo "# products anomalies"
"$LLHSC" products "$FIXTURES/custom-sbc.fm" --anomalies > "$TMP/anom.out"
grep -q "no false-optional features" "$TMP/anom.out" || fail "expected no false optionals"

echo "# diff"
"$LLHSC" diff "$FIXTURES/custom-sbc.dts" "$FIXTURES/custom-sbc.dts" > "$TMP/diff0.out" \
  || fail "identical files should diff clean"
grep -q "no differences" "$TMP/diff0.out" || fail "expected no differences"
if "$LLHSC" diff "$FIXTURES/custom-sbc.dts" "$TMP/vm1.dts" > "$TMP/diff1.out"; then
  fail "different files should exit 1"
fi
grep -q "+ node /vEthernet" "$TMP/diff1.out" || fail "expected vEthernet addition"

echo "# build from project file"
"$LLHSC" build "$FIXTURES/custom-sbc.proj.yaml" > "$TMP/build.out" || fail "build should pass"
grep -q "product platform" "$TMP/build.out" || fail "expected platform product"

echo "# configure with propagation"
"$LLHSC" configure "$FIXTURES/custom-sbc.fm" -d veth0 > "$TMP/conf.out" || fail "configure should pass"
grep -Eq "cpu@0 +forced" "$TMP/conf.out" || fail "cpu@0 should be forced"
grep -Eq "cpu@1 +forbidden" "$TMP/conf.out" || fail "cpu@1 should be forbidden"
if "$LLHSC" configure "$FIXTURES/custom-sbc.fm" -d veth0 -d "cpu@1" 2> "$TMP/confbad.out"; then
  fail "invalid decision should be rejected"
fi
grep -q "rejected" "$TMP/confbad.out" || fail "expected rejection message"

echo "# delta-set analysis"
"$LLHSC" analyze --deltas "$FIXTURES/custom-sbc.deltas" --model "$FIXTURES/custom-sbc.fm" \
  > "$TMP/analyze.out" || fail "analyze should exit 0 (no conflicts)"
grep -q "dead deltas: rm-memory" "$TMP/analyze.out" || fail "expected rm-memory dead"
grep -q "no unordered write conflicts" "$TMP/analyze.out" || fail "expected no conflicts"

echo "# demo runs green"
"$LLHSC" demo > "$TMP/demo.out" || fail "demo should pass"
grep -q "12 valid products" "$TMP/demo.out" || fail "demo product count"
grep -q "all checks passed" "$TMP/demo.out" || fail "demo checks"

echo "# parse error reporting"
echo "/ { broken" > "$TMP/broken.dts"
if "$LLHSC" check "$TMP/broken.dts" 2> "$TMP/err.out"; then
  fail "broken DTS should fail"
fi
grep -q "error\[DT-" "$TMP/err.out" || fail "expected structured error message"

echo "# parse error recovery reports every error in one run"
cat > "$TMP/multi.dts" <<'EOF'
/dts-v1/;
/ {
    compatible = "acme,board"
    #address-cells = <1>;
    #size-cells = ;
    memory@0 { device_type = "memory"; reg = <0x0 0x10000>; };
    chosen { bootargs = 42; };
};
EOF
set +e
"$LLHSC" check "$TMP/multi.dts" 2> "$TMP/multi.err"
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "multi-error check should exit 2 (got $rc)"
[ "$(grep -c 'error\[DT-PARSE\]' "$TMP/multi.err")" -eq 3 ] \
  || fail "expected exactly 3 parse errors, got: $(cat "$TMP/multi.err")"

echo "# missing input file is a structured IO error, exit 2"
set +e
"$LLHSC" check "$TMP/does-not-exist.dts" 2> "$TMP/missing.err"
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "missing file should exit 2 (got $rc)"
grep -q "error\[IO\]" "$TMP/missing.err" || fail "expected error[IO] diagnostic"

echo "# solver budget: pipeline stays green with a generous budget"
"$LLHSC" pipeline --core "$FIXTURES/custom-sbc.dts" --deltas "$FIXTURES/custom-sbc.deltas" \
  --model "$FIXTURES/custom-sbc.fm" --schemas "$FIXTURES/schemas" \
  --vm "memory,cpu@0,uart@20000000,uart@30000000,veth0" \
  --vm "memory,cpu@1,uart@20000000,uart@30000000,veth1" \
  --exclusive cpus --max-conflicts 100000 --solver-timeout 60 \
  > "$TMP/budget.out" || fail "budgeted pipeline should pass"
grep -q "all checks passed" "$TMP/budget.out" || fail "budgeted pipeline checks"

echo "# sat: malformed and truncated DIMACS exit 2 with a structured error"
printf 'p cnf 2 2\n1 2 0\n-1' > "$TMP/truncated.cnf"     # clause not terminated by 0
printf 'p cnf x y\n' > "$TMP/badheader.cnf"              # non-numeric problem line
printf 'p cnf 1 1\n5 0\n' > "$TMP/outofrange.cnf"        # literal out of range
for cnf in truncated badheader outofrange; do
  set +e
  "$LLHSC" sat "$TMP/$cnf.cnf" 2> "$TMP/$cnf.err"
  rc=$?
  set -e
  [ "$rc" -eq 2 ] || fail "sat on $cnf.cnf should exit 2 (got $rc)"
  grep -q "error\[PARSE\]" "$TMP/$cnf.err" || fail "expected error[PARSE] for $cnf.cnf"
  grep -q "Fatal error" "$TMP/$cnf.err" && fail "uncaught exception for $cnf.cnf"
done
set +e
"$LLHSC" sat "$TMP/no-such.cnf" 2> "$TMP/satmissing.err"
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "sat on missing file should exit 2 (got $rc)"
grep -q "error\[IO\]" "$TMP/satmissing.err" || fail "expected error[IO] for missing CNF"

echo "# build: duplicate YAML mapping key is a structured error, exit 2"
cat > "$TMP/dup.proj.yaml" <<EOF
core: $FIXTURES/custom-sbc.dts
core: $FIXTURES/custom-sbc.dts
EOF
set +e
"$LLHSC" build "$TMP/dup.proj.yaml" 2> "$TMP/dup.err"
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "duplicate-key build should exit 2 (got $rc)"
grep -q 'error\[YAML\].*duplicate mapping key "core"' "$TMP/dup.err" \
  || fail "expected error[YAML] duplicate-key diagnostic"

echo "# journal + resume: resumed report is byte-identical"
run_journaled_pipeline() {
  "$LLHSC" pipeline --core "$FIXTURES/custom-sbc.dts" --deltas "$FIXTURES/custom-sbc.deltas" \
    --model "$FIXTURES/custom-sbc.fm" --schemas "$FIXTURES/schemas" \
    --vm "memory,cpu@0,uart@20000000,uart@30000000,veth0" \
    --vm "memory,cpu@1,uart@20000000,uart@30000000,veth1" \
    --exclusive cpus --journal "$TMP/run.journal" "$@"
}
run_journaled_pipeline > "$TMP/journal1.out" 2> /dev/null || fail "journaled pipeline should pass"
[ -s "$TMP/run.journal" ] || fail "journal not written"
run_journaled_pipeline --resume > "$TMP/journal2.out" 2> "$TMP/resume.err" \
  || fail "resumed pipeline should pass"
cmp -s "$TMP/journal1.out" "$TMP/journal2.out" || fail "resumed report differs from original"
grep -q "resume: replayed from journal" "$TMP/resume.err" || fail "expected resume status on stderr"

echo "# journal + SIGTERM: interrupted run exits 143 and is resume-able"
rm -f "$TMP/run.journal"
set +e
LLHSC_FAULT_TERM_AFTER_RECORDS=2 run_journaled_pipeline > "$TMP/term.out" 2> "$TMP/term.err"
rc=$?
set -e
[ "$rc" -eq 143 ] || fail "interrupted pipeline should exit 143 (got $rc)"
grep -q "interrupted by signal 15" "$TMP/term.err" || fail "expected interrupt notice"
grep -q "rerun with --resume" "$TMP/term.err" || fail "expected resume hint"
[ -s "$TMP/run.journal" ] || fail "interrupted journal not written"
run_journaled_pipeline --resume > "$TMP/term-resume.out" 2> "$TMP/term-resume.err" \
  || fail "resume after SIGTERM should pass"
cmp -s "$TMP/journal1.out" "$TMP/term-resume.out" \
  || fail "post-SIGTERM resumed report differs from uninterrupted run"
grep -q "resume: replayed from journal" "$TMP/term-resume.err" \
  || fail "expected replay after SIGTERM (journal was not durable)"

echo "# journal fsck: exit-code contract (0 clean / 1 issues / 2 unusable)"
"$LLHSC" journal fsck "$TMP/run.journal" > "$TMP/fsck.out" \
  || fail "fsck of a clean journal should exit 0"
grep -q "header ok" "$TMP/fsck.out" || fail "expected a header verdict"
printf 'torn line with a bad checksum\tdeadbeef\n' >> "$TMP/run.journal"
set +e
"$LLHSC" journal fsck "$TMP/run.journal" > "$TMP/fsck-torn.out"
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "fsck of a torn journal should exit 1 (got $rc)"
grep -q "torn: 1" "$TMP/fsck-torn.out" || fail "expected the torn-line census"
set +e
"$LLHSC" journal fsck "$TMP/no-such.journal" 2> "$TMP/fsck-missing.err"
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "fsck of a missing journal should exit 2 (got $rc)"
grep -q 'error\[IO\]' "$TMP/fsck-missing.err" || fail "expected error[IO] for a missing journal"

echo "# journal compact: drops torn lines, compacted journal is clean and resumable"
"$LLHSC" journal compact "$TMP/run.journal" > "$TMP/compact.out" \
  || fail "compact should exit 0"
grep -q "compacted" "$TMP/compact.out" || fail "expected a compaction summary"
"$LLHSC" journal fsck -q "$TMP/run.journal" || fail "compacted journal should fsck clean"
run_journaled_pipeline --resume > "$TMP/compact-resume.out" 2> "$TMP/compact-resume.err" \
  || fail "resume from the compacted journal should pass"
cmp -s "$TMP/journal1.out" "$TMP/compact-resume.out" \
  || fail "post-compact resumed report differs from uninterrupted run"
grep -q "resume: replayed from journal" "$TMP/compact-resume.err" \
  || fail "expected replay from the compacted journal"

echo "# kill mid-record: fsck reports the torn tail, resume recovers byte-identically"
rm -f "$TMP/run.journal"
set +e
(export LLHSC_FAULT_KILL_MID_RECORD=2; run_journaled_pipeline > /dev/null 2> /dev/null)
rc=$?
set -e
[ "$rc" -eq 137 ] || fail "mid-record kill should die of SIGKILL (got $rc)"
set +e
"$LLHSC" journal fsck "$TMP/run.journal" > "$TMP/fsck-killed.out"
rc=$?
set -e
[ "$rc" -eq 1 ] || fail "fsck after a mid-record kill should exit 1 (got $rc)"
run_journaled_pipeline --resume > "$TMP/killed-resume.out" 2> "$TMP/killed-resume.err" \
  || fail "resume after a mid-record kill should pass"
cmp -s "$TMP/journal1.out" "$TMP/killed-resume.out" \
  || fail "post-kill resumed report differs from uninterrupted run"
grep -q "skipping .* torn/corrupt line" "$TMP/killed-resume.err" \
  || fail "expected the quiet-fsck torn-line notice on resume stderr"

echo "# retry: escalation recovers injected Unknown verdicts"
"$LLHSC" pipeline --core "$FIXTURES/custom-sbc.dts" --deltas "$FIXTURES/custom-sbc.deltas" \
  --model "$FIXTURES/custom-sbc.fm" --schemas "$FIXTURES/schemas" \
  --vm "memory,cpu@0,uart@20000000,uart@30000000,veth0" \
  --vm "memory,cpu@1,uart@20000000,uart@30000000,veth1" \
  --exclusive cpus --unsound force-unknown:3 --retry 3 > "$TMP/retry.out" \
  || fail "retrying pipeline should pass"
grep -q "all checks passed" "$TMP/retry.out" || fail "retry pipeline checks"
grep -q "escalation: .* recovered" "$TMP/retry.out" || fail "expected escalation summary"
grep -q "inconclusive" "$TMP/retry.out" && fail "escalation left inconclusive verdicts"

echo "# parallel: --jobs 4 reports are byte-identical to --jobs 1"
run_pipeline_at() {
  njobs=$1; shift
  "$LLHSC" pipeline --core "$FIXTURES/custom-sbc.dts" --deltas "$FIXTURES/custom-sbc.deltas" \
    --model "$FIXTURES/custom-sbc.fm" --schemas "$FIXTURES/schemas" \
    --vm "memory,cpu@0,uart@20000000,uart@30000000,veth0" \
    --vm "memory,cpu@1,uart@20000000,uart@30000000,veth1" \
    --exclusive cpus --jobs="$njobs" "$@"
}
run_pipeline_at 1 > "$TMP/j1.out" || fail "--jobs 1 pipeline should pass"
run_pipeline_at 4 > "$TMP/j4.out" || fail "--jobs 4 pipeline should pass"
cmp -s "$TMP/j1.out" "$TMP/j4.out" || fail "--jobs 4 report differs from --jobs 1"
run_pipeline_at 1 --certify > "$TMP/j1c.out" || fail "--jobs 1 --certify should pass"
run_pipeline_at 4 --certify > "$TMP/j4c.out" || fail "--jobs 4 --certify should pass"
cmp -s "$TMP/j1c.out" "$TMP/j4c.out" || fail "--certify report differs across job counts"
run_pipeline_at 1 --unsound force-unknown:3 --retry 3 > "$TMP/j1r.out" \
  || fail "--jobs 1 --retry pipeline should pass"
run_pipeline_at 4 --unsound force-unknown:3 --retry 3 > "$TMP/j4r.out" \
  || fail "--jobs 4 --retry pipeline should pass"
cmp -s "$TMP/j1r.out" "$TMP/j4r.out" || fail "--retry report differs across job counts"

echo "# parallel: --jobs 0 auto-detects cores, report identical to --jobs 1"
run_pipeline_at 0 > "$TMP/j0.out" || fail "--jobs 0 pipeline should pass (auto-detect)"
cmp -s "$TMP/j1.out" "$TMP/j0.out" || fail "--jobs 0 report differs from --jobs 1"

echo "# parallel: negative --jobs is rejected with a structured error"
# the function passes --jobs=-1 glued: cmdliner reads a bare -1 as a flag
set +e
run_pipeline_at -1 2> "$TMP/jneg.err"
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "--jobs -1 should exit 2 (got $rc)"
grep -q "jobs" "$TMP/jneg.err" || fail "expected --jobs validation message"

echo "# supervision: SIGKILLed workers are reassigned, report byte-identical"
# env assignments live in subshells: VAR=x fn leaks the var in some shells
(export LLHSC_FAULT_KILL_WORKER=0; run_pipeline_at 2 > "$TMP/skill.out" 2> "$TMP/skill.err") \
  || fail "pipeline with killed worker should still pass"
cmp -s "$TMP/j1.out" "$TMP/skill.out" || fail "killed-worker report differs from --jobs 1"
grep -q "error\[WORKER\]" "$TMP/skill.out" && fail "self-healing pool left error[WORKER]"
grep -q "reassigning\|quarantined" "$TMP/skill.err" || fail "expected supervision notice on stderr"

echo "# supervision: kills under --certify --retry stay byte-identical"
run_pipeline_at 1 --certify --unsound force-unknown:3 --retry 3 > "$TMP/j1cr.out" \
  || fail "--jobs 1 --certify --retry should pass"
(export LLHSC_FAULT_KILL_WORKER=1; run_pipeline_at 2 --certify --unsound force-unknown:3 \
  --retry 3 > "$TMP/skillcr.out" 2> /dev/null) \
  || fail "killed-worker --certify --retry should pass"
cmp -s "$TMP/j1cr.out" "$TMP/skillcr.out" \
  || fail "killed-worker --certify --retry report differs from --jobs 1"

echo "# supervision: hung worker hits the task deadline and its task is reassigned"
(export LLHSC_FAULT_HANG_WORKER=0; run_pipeline_at 2 --task-deadline 1 \
  > "$TMP/hang.out" 2> "$TMP/hang.err") || fail "pipeline with hung worker should still pass"
cmp -s "$TMP/j1.out" "$TMP/hang.out" || fail "hung-worker report differs from --jobs 1"
grep -q "deadline" "$TMP/hang.err" || fail "expected deadline-expiry notice on stderr"
grep -q "error\[WORKER\]" "$TMP/hang.out" && fail "hung worker left error[WORKER]"

echo "# supervision: respawn budget exhaustion falls back to in-process checking"
(export LLHSC_FAULT_KILL_WORKER=0; run_pipeline_at 2 --max-respawns 0 \
  > "$TMP/exhaust.out" 2> "$TMP/exhaust.err") \
  || fail "respawn-exhausted pipeline should still pass"
cmp -s "$TMP/j1.out" "$TMP/exhaust.out" || fail "respawn-exhausted report differs from --jobs 1"

echo "# supervision: rlimit OOM degrades to error[RESOURCE], exit 2"
set +e
(export LLHSC_FAULT_OOM_WORKER=0; run_pipeline_at 2 --mem-limit 512 \
  > "$TMP/oom.out" 2> "$TMP/oom.err")
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "OOM-injected pipeline should exit 2 (got $rc)"
grep -q "error\[RESOURCE\]" "$TMP/oom.out" || fail "expected error[RESOURCE] diagnostic"
grep -q "error\[WORKER\]" "$TMP/oom.out" && fail "OOM should degrade to RESOURCE, not WORKER"
grep -q "Fatal error" "$TMP/oom.err" && fail "OOM must not crash the checker"

echo "# supervision: flag validation"
set +e
run_pipeline_at 2 --task-deadline 0 2> "$TMP/baddl.err"
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "--task-deadline 0 should exit 2 (got $rc)"
grep -q "task-deadline" "$TMP/baddl.err" || fail "expected --task-deadline validation message"
set +e
run_pipeline_at 2 --mem-limit 0 2> "$TMP/badmem.err"
rc=$?
set -e
[ "$rc" -eq 2 ] || fail "--mem-limit 0 should exit 2 (got $rc)"
grep -q "mem-limit" "$TMP/badmem.err" || fail "expected --mem-limit validation message"

echo "# parallel: journal written at --jobs 4 resumes at --jobs 1"
run_pipeline_at 4 --journal "$TMP/par.journal" > "$TMP/par4.out" 2> /dev/null \
  || fail "journaled --jobs 4 pipeline should pass"
[ -s "$TMP/par.journal" ] || fail "parallel journal not written"
run_pipeline_at 1 --journal "$TMP/par.journal" --resume > "$TMP/par1.out" 2> "$TMP/par.err" \
  || fail "cross-job-count resume should pass"
cmp -s "$TMP/par4.out" "$TMP/par1.out" || fail "cross-job-count resumed report differs"
grep -q "resume: replayed from journal" "$TMP/par.err" || fail "expected resume status on stderr"

echo "all CLI tests passed"
