(* Tests for the SMT layer: bit-vector semantics (differentially against the
   reference interpreter), enum sorts, predicates and finite quantifiers,
   incremental push/pop, named assertions and unsat cores, and models. *)

module T = Smt.Term
module S = Smt.Solver

let check_bool = Alcotest.(check bool)
let check_int64 = Alcotest.(check int64)

let is_sat = function S.Sat -> true | S.Unsat _ | S.Unknown -> false

(* --- bit-vector basics ----------------------------------------------------- *)

let test_bv_arith_model () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:8 and y = T.bv_var "y" ~width:8 in
  S.assert_ s (T.eq (T.add x y) (T.bv_of_int ~width:8 10));
  S.assert_ s (T.eq (T.sub x y) (T.bv_of_int ~width:8 4));
  check_bool "sat" true (is_sat (S.check s));
  check_int64 "x" 7L (S.get_bv s x);
  check_int64 "y" 3L (S.get_bv s y)

let test_bv_overflow_wraps () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:4 in
  S.assert_ s (T.eq (T.add x (T.bv_of_int ~width:4 1)) (T.bv_of_int ~width:4 0));
  check_bool "sat" true (is_sat (S.check s));
  check_int64 "x = 15 wraps" 15L (S.get_bv s x)

let test_bv_mul () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:8 in
  S.assert_ s (T.eq (T.mul x (T.bv_of_int ~width:8 3)) (T.bv_of_int ~width:8 21));
  S.assert_ s (T.ult x (T.bv_of_int ~width:8 10));
  check_bool "sat" true (is_sat (S.check s));
  check_int64 "x" 7L (S.get_bv s x)

let test_bv_unsigned_vs_signed () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:4 in
  (* x > 7 unsigned but x < 0 signed: any of 8..15. *)
  S.assert_ s (T.ugt x (T.bv_of_int ~width:4 7));
  S.assert_ s (T.slt x (T.bv_of_int ~width:4 0));
  check_bool "sat" true (is_sat (S.check s));
  let v = S.get_bv s x in
  check_bool "in 8..15" true (v >= 8L && v <= 15L)

let test_bv_shift () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:8 in
  S.assert_ s (T.eq (T.shl (T.bv_of_int ~width:8 1) x) (T.bv_of_int ~width:8 16));
  check_bool "sat" true (is_sat (S.check s));
  check_int64 "x=4" 4L (S.get_bv s x);
  (* shift beyond width yields zero *)
  let s2 = S.create () in
  S.assert_ s2
    (T.eq
       (T.shl (T.bv_of_int ~width:8 255) (T.bv_of_int ~width:8 9))
       (T.bv_of_int ~width:8 0));
  check_bool "oversized shift is zero" true (is_sat (S.check s2))

let test_bv_extract_concat () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:16 in
  S.assert_ s (T.eq (T.extract ~hi:15 ~lo:8 x) (T.bv_of_int ~width:8 0xAB));
  S.assert_ s (T.eq (T.extract ~hi:7 ~lo:0 x) (T.bv_of_int ~width:8 0xCD));
  check_bool "sat" true (is_sat (S.check s));
  check_int64 "x" 0xABCDL (S.get_bv s x);
  let s2 = S.create () in
  let y = T.bv_var "y" ~width:16 in
  S.assert_ s2
    (T.eq y (T.concat (T.bv_of_int ~width:8 0x12) (T.bv_of_int ~width:8 0x34)));
  check_bool "sat" true (is_sat (S.check s2));
  check_int64 "concat" 0x1234L (S.get_bv s2 y)

let test_bv_extend () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:4 in
  S.assert_ s (T.eq x (T.bv_of_int ~width:4 0xF));
  S.assert_ s
    (T.eq (T.zero_extend ~by:4 x) (T.bv_of_int ~width:8 0x0F));
  S.assert_ s
    (T.eq (T.sign_extend ~by:4 x) (T.bv_of_int ~width:8 0xFF));
  check_bool "extends agree" true (is_sat (S.check s))

let test_wide_64bit () =
  (* 64-bit address arithmetic as used for DT memory regions. *)
  let s = S.create () in
  let base = T.bv_var "base" ~width:64 in
  S.assert_ s
    (T.eq (T.add base (T.bv ~width:64 0x20000000L)) (T.bv ~width:64 0x60000000L));
  check_bool "sat" true (is_sat (S.check s));
  check_int64 "base" 0x40000000L (S.get_bv s base)

(* --- overlap formula (paper formula (7) shape) ------------------------------ *)

let regions_overlap s (b1, s1) (b2, s2) =
  let bv v = T.bv ~width:64 v in
  (* exists x in [b1, b1+s1) and [b2, b2+s2): standard interval intersection
     b1 < b2+s2 && b2 < b1+s1 *)
  S.assert_ s
    (T.and_
       [ T.ult (bv b1) (T.add (bv b2) (bv s2)); T.ult (bv b2) (T.add (bv b1) (bv s1)) ]);
  is_sat (S.check s)

let test_overlap_disjoint () =
  check_bool "disjoint regions" false
    (regions_overlap (S.create ()) (0x40000000L, 0x20000000L) (0x60000000L, 0x20000000L))

let test_overlap_clash () =
  check_bool "overlapping regions" true
    (regions_overlap (S.create ()) (0x40000000L, 0x40000000L) (0x60000000L, 0x20000000L))

(* --- enum sorts and predicates ---------------------------------------------- *)

let test_enum_basic () =
  let s = S.create () in
  S.declare_enum s "prop" [ "reg"; "device_type"; "compatible" ];
  let x = T.enum_var "x" ~sort:"prop" in
  S.assert_ s (T.not_ (T.eq x (T.enum ~sort:"prop" "reg")));
  S.assert_ s (T.not_ (T.eq x (T.enum ~sort:"prop" "compatible")));
  check_bool "sat" true (is_sat (S.check s));
  Alcotest.(check string) "only device_type remains" "device_type" (S.get_enum s x)

let test_enum_exhausted () =
  let s = S.create () in
  S.declare_enum s "ab" [ "a"; "b" ];
  let x = T.enum_var "x" ~sort:"ab" in
  S.assert_ s (T.not_ (T.eq x (T.enum ~sort:"ab" "a")));
  S.assert_ s (T.not_ (T.eq x (T.enum ~sort:"ab" "b")));
  check_bool "unsat when universe exhausted" false (is_sat (S.check s))

let test_enum_redeclare () =
  let s = S.create () in
  S.declare_enum s "e" [ "x"; "y" ];
  S.declare_enum s "e" [ "x"; "y" ];
  Alcotest.check_raises "different universe rejected"
    (S.Error "enum sort e redeclared with a different universe") (fun () ->
      S.declare_enum s "e" [ "x"; "z" ])

let test_pred_and_forall () =
  (* The paper's closure axiom (6): forall x. (C(x) -> R(x)) & (!C(x) -> !R(x)),
     with C defined by (5) as x = reg or x = device_type. *)
  let s = S.create () in
  S.declare_enum s "prop" [ "reg"; "device_type"; "compatible" ];
  let c x = T.pred "C" [ x ] and r x = T.pred "R" [ x ] in
  S.assert_ s
    (S.forall_enum s ~sort:"prop" (fun x ->
         T.iff (c x)
           (T.or_
              [ T.eq x (T.enum ~sort:"prop" "reg");
                T.eq x (T.enum ~sort:"prop" "device_type")
              ])));
  S.assert_ s
    (S.forall_enum s ~sort:"prop" (fun x ->
         T.and_ [ T.implies (c x) (r x); T.implies (T.not_ (c x)) (T.not_ (r x)) ]));
  check_bool "sat" true (is_sat (S.check s));
  check_bool "R(reg)" true (S.get_bool s (r (T.enum ~sort:"prop" "reg")));
  check_bool "R(device_type)" true (S.get_bool s (r (T.enum ~sort:"prop" "device_type")));
  check_bool "!R(compatible)" false (S.get_bool s (r (T.enum ~sort:"prop" "compatible")));
  (* Requiring R(compatible) now contradicts the closure. *)
  S.assert_ s (r (T.enum ~sort:"prop" "compatible"));
  check_bool "unsat" false (is_sat (S.check s))

let test_exists_enum () =
  let s = S.create () in
  S.declare_enum s "e" [ "a"; "b"; "c" ];
  let p x = T.pred "P" [ x ] in
  S.assert_ s (S.exists_enum s ~sort:"e" p);
  S.assert_ s (T.not_ (p (T.enum ~sort:"e" "a")));
  S.assert_ s (T.not_ (p (T.enum ~sort:"e" "b")));
  check_bool "sat" true (is_sat (S.check s));
  check_bool "P(c) forced" true (S.get_bool s (p (T.enum ~sort:"e" "c")))

(* --- incremental interface --------------------------------------------------- *)

let test_push_pop () =
  let s = S.create () in
  let x = T.bool_var "x" in
  S.assert_ s (T.or_ [ x; T.not_ x ]);
  check_bool "sat" true (is_sat (S.check s));
  S.push s;
  S.assert_ s x;
  S.assert_ s (T.not_ x);
  check_bool "unsat inside scope" false (is_sat (S.check s));
  S.pop s;
  check_bool "sat after pop" true (is_sat (S.check s));
  Alcotest.(check int) "no scopes" 0 (S.num_scopes s)

let test_nested_scopes () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:4 in
  S.push s;
  S.assert_ s (T.ult x (T.bv_of_int ~width:4 5));
  S.push s;
  S.assert_ s (T.ugt x (T.bv_of_int ~width:4 10));
  check_bool "unsat nested" false (is_sat (S.check s));
  S.pop s;
  check_bool "sat after inner pop" true (is_sat (S.check s));
  check_bool "outer constraint still active" true (S.get_bv s x < 5L);
  S.pop s;
  Alcotest.check_raises "pop on empty" (S.Error "pop without matching push") (fun () ->
      S.pop s)

let test_named_core () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:8 in
  S.assert_named s "lower" (T.ugt x (T.bv_of_int ~width:8 10));
  S.assert_named s "upper" (T.ult x (T.bv_of_int ~width:8 5));
  S.assert_named s "irrelevant" (T.ult x (T.bv_of_int ~width:8 200));
  match S.check s with
  | S.Sat | S.Unknown -> Alcotest.fail "expected unsat"
  | S.Unsat core ->
    check_bool "lower in core" true (List.mem "lower" core);
    check_bool "upper in core" true (List.mem "upper" core);
    check_bool "irrelevant not in core" false (List.mem "irrelevant" core)

let test_check_assumptions () =
  let s = S.create () in
  let x = T.bool_var "x" and y = T.bool_var "y" in
  S.assert_ s (T.implies x y);
  check_bool "sat assuming x" true (is_sat (S.check ~assumptions:[ x ] s));
  check_bool "y forced" true (S.get_bool s y);
  check_bool "unsat assuming x & !y" false
    (is_sat (S.check ~assumptions:[ x; T.not_ y ] s));
  check_bool "recovers" true (is_sat (S.check s))

(* --- error handling ----------------------------------------------------------- *)

let test_sort_errors () =
  let s = S.create () in
  Alcotest.check_raises "bv as assertion"
    (S.Error "assertion has sort (_ BitVec 8), expected Bool") (fun () ->
      S.assert_ s (T.bv_of_int ~width:8 3));
  (try
     S.assert_ s (T.eq (T.bv_of_int ~width:8 1) (T.bv_of_int ~width:4 1));
     Alcotest.fail "expected width mismatch error"
   with S.Error _ -> ());
  try
    S.assert_ s (T.eq (T.enum_var "e" ~sort:"nope") (T.enum_var "f" ~sort:"nope"));
    Alcotest.fail "expected unknown sort error"
  with S.Error _ -> ()

let test_model_unavailable () =
  let s = S.create () in
  S.assert_ s T.ff;
  check_bool "unsat" false (is_sat (S.check s));
  try
    ignore (S.get_bool s (T.bool_var "x") : bool);
    Alcotest.fail "expected model error"
  with S.Error _ -> ()

(* --- certification ------------------------------------------------------------ *)

let test_certify_mixed_queries () =
  (* Sat and Unsat verdicts across push/pop scopes, all on one certified
     incremental solver: every query certifies, none fails. *)
  let s = S.create ~certify:true () in
  check_bool "certifying" true (S.certifying s);
  let x = T.bv_var "x" ~width:8 in
  S.assert_ s (T.ugt x (T.bv_of_int ~width:8 10));
  check_bool "q0 sat" true (is_sat (S.check s));
  S.push s;
  S.assert_ s (T.ult x (T.bv_of_int ~width:8 5));
  check_bool "q1 unsat in scope" false (is_sat (S.check s));
  S.pop s;
  check_bool "q2 sat after pop" true (is_sat (S.check s));
  check_bool "q3 unsat under assumptions" false
    (is_sat (S.check ~assumptions:[ T.ult x (T.bv_of_int ~width:8 3) ] s));
  let r = S.cert_report s in
  check_bool "enabled" true r.S.enabled;
  Alcotest.(check int) "4 certs" 4 (List.length r.S.certs);
  Alcotest.(check (list string)) "no failures" [] r.S.failures;
  check_bool "all ok" true (List.for_all (fun c -> c.S.ok) r.S.certs);
  check_bool "verdict mix" true
    (List.map (fun c -> c.S.verdict) r.S.certs = [ `Sat; `Unsat; `Sat; `Unsat ])

let test_certify_unknown_exempt () =
  (* An Unknown verdict asserts nothing, so there is nothing to certify:
     no cert entry and no failure. *)
  let s = S.create ~certify:true () in
  let x = T.bv_var "x" ~width:8 in
  S.assert_ s (T.ugt x (T.bv_of_int ~width:8 10));
  S.set_budget s (Some (Sat.Solver.budget ~max_decisions:0 ~max_conflicts:0 ()));
  (match S.check s with
   | S.Unknown -> ()
   | S.Sat | S.Unsat _ -> Alcotest.fail "expected Unknown under zero budget");
  let r = S.cert_report s in
  check_bool "enabled" true r.S.enabled;
  Alcotest.(check int) "no certs" 0 (List.length r.S.certs);
  Alcotest.(check (list string)) "no failures" [] r.S.failures;
  (* The solver stays certifiable after the exempt query. *)
  S.set_budget s None;
  check_bool "sat after budget removed" true (is_sat (S.check s));
  let r = S.cert_report s in
  Alcotest.(check int) "one cert" 1 (List.length r.S.certs);
  Alcotest.(check (list string)) "still no failures" [] r.S.failures

(* --- retry-with-escalation ladder ------------------------------------------- *)

let test_escalation_recovers_forced_unknown () =
  (* Force_unknown 2 hits every 2nd SAT-solve call.  Check #1 (call 1)
     concludes on attempt 1; check #2's first attempt (call 2) is forced
     Unknown, and the ladder's first retry (call 3) recovers. *)
  let s = S.create () in
  let x = T.bv_var "x" ~width:8 in
  S.assert_ s (T.ugt x (T.bv_of_int ~width:8 10));
  S.set_escalation s (Some Smt.Escalation.default);
  S.inject_unsoundness s (Sat.Solver.Force_unknown 2);
  check_bool "check #1 concludes on attempt 1" true (is_sat (S.check s));
  check_bool "check #2 recovers via retry" true (is_sat (S.check s));
  let r = S.retry_report s in
  check_bool "retry policy was in force" true r.S.retry_enabled;
  Alcotest.(check int) "both checks counted" 2 r.S.total_queries;
  match r.S.retried with
  | [ e ] ->
    Alcotest.(check int) "the retried query is check #2" 1 e.S.rquery;
    check_bool "recovered" true e.S.recovered;
    (match e.S.attempts with
     | [ a1; a2 ] ->
       Alcotest.(check int) "attempt numbering" 1 a1.S.attempt;
       check_bool "attempt 1 unknown" true (a1.S.result = `Unknown);
       Alcotest.(check int) "attempt 1 at scale 1" 1 a1.S.scale;
       check_bool "attempt 2 concluded" true (a2.S.result = `Sat);
       Alcotest.(check int) "attempt 2 at scale 4" 4 a2.S.scale;
       check_bool "retry attempt carries a seed" true (a2.S.seed <> None)
     | l -> Alcotest.failf "expected 2 attempts, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 retried query, got %d" (List.length l)

let test_escalation_exhausts_honestly () =
  (* Force_unknown 1 fires on every attempt: the ladder runs out and the
     answer degrades to Unknown — never a fabricated verdict. *)
  let s = S.create () in
  let x = T.bv_var "x" ~width:8 in
  S.assert_ s (T.ugt x (T.bv_of_int ~width:8 10));
  S.inject_unsoundness s (Sat.Solver.Force_unknown 1);
  (match S.check s ~retry:(Smt.Escalation.ladder ~attempts:3 ()) with
   | S.Unknown -> ()
   | S.Sat | S.Unsat _ -> Alcotest.fail "exhausted ladder must stay Unknown");
  let r = S.retry_report s in
  match r.S.retried with
  | [ e ] ->
    check_bool "not recovered" false e.S.recovered;
    Alcotest.(check int) "all 3 attempts logged" 3 (List.length e.S.attempts);
    check_bool "every attempt Unknown" true
      (List.for_all (fun (a : S.attempt) -> a.S.result = `Unknown) e.S.attempts)
  | l -> Alcotest.failf "expected 1 retried query, got %d" (List.length l)

let test_escalation_certifies_final_attempt () =
  (* PR 2's guarantee survives escalation: the verdict that concludes —
     on whichever rung — is the one certified, and it passes. *)
  let s = S.create ~certify:true () in
  let x = T.bv_var "x" ~width:8 in
  S.assert_ s (T.ugt x (T.bv_of_int ~width:8 10));
  S.set_escalation s (Some Smt.Escalation.default);
  S.inject_unsoundness s (Sat.Solver.Force_unknown 2);
  check_bool "query 0 sat" true (is_sat (S.check s));
  check_bool "query 1 recovers" true (is_sat (S.check s));
  let cert = S.cert_report s in
  Alcotest.(check (list string)) "escalated verdict certifies" [] cert.S.failures;
  Alcotest.(check int) "both final verdicts certified" 2 (List.length cert.S.certs);
  let r = S.retry_report s in
  Alcotest.(check int) "one query escalated" 1 (List.length r.S.retried)

let test_escalation_none_is_inert () =
  let s = S.create () in
  S.assert_ s (T.bool_var "p");
  check_bool "sat" true (is_sat (S.check s ~retry:Smt.Escalation.none));
  let r = S.retry_report s in
  check_bool "policy with no steps never retries" true (r.S.retried = []);
  check_bool "but counts as enabled" true r.S.retry_enabled

let test_escalation_budget_scaling () =
  let b = Sat.Solver.budget ~max_conflicts:10 ~max_propagations:max_int ~time_limit:0.5 () in
  match Smt.Escalation.scale_budget (Some b) 4 with
  | None -> Alcotest.fail "scaled budget must stay Some"
  | Some b' ->
    Alcotest.(check (option int)) "conflicts x4" (Some 40) b'.Sat.Solver.max_conflicts;
    Alcotest.(check (option int)) "saturates at max_int" (Some max_int)
      b'.Sat.Solver.max_propagations;
    check_bool "time x4" true (b'.Sat.Solver.time_limit = Some 2.0);
    check_bool "unbudgeted stays unbudgeted" true
      (Smt.Escalation.scale_budget None 16 = None)

let test_certify_catches_unsound_solver () =
  (* Acceptance test for the ISSUE: a solver made deliberately unsound is
     caught by certification and surfaces as a failure, never a silent ok. *)
  let s = S.create ~certify:true () in
  S.inject_unsoundness s (Sat.Solver.Flip_model_bit 5);
  let x = T.bv_var "x" ~width:16 in
  S.assert_ s (T.eq x (T.bv_of_int ~width:16 0xBEEF));
  (match S.check s with
   | S.Sat -> ()
   | S.Unsat _ | S.Unknown -> Alcotest.fail "expected (unsound) Sat");
  let r = S.cert_report s in
  check_bool "failure recorded" true (r.S.failures <> []);
  check_bool "cert flagged not ok" true
    (List.exists (fun c -> not c.S.ok) r.S.certs)

let test_certify_off_by_default () =
  let s = S.create () in
  check_bool "not certifying" false (S.certifying s);
  S.assert_ s (T.bool_var "b");
  check_bool "sat" true (is_sat (S.check s));
  let r = S.cert_report s in
  check_bool "disabled" false r.S.enabled;
  Alcotest.(check int) "no certs" 0 (List.length r.S.certs)

(* --- differential property tests --------------------------------------------- *)

(* Random bit-vector term generator over variables a b of a given width. *)
let gen_term width =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return (T.bv_var "a" ~width);
        return (T.bv_var "b" ~width);
        map (fun v -> T.bv ~width (Int64.of_int v)) (int_bound 1000);
      ]
  in
  fix
    (fun self n ->
      if n = 0 then leaf
      else
        let sub = self (n / 2) in
        oneof
          [ leaf;
            map2 T.add sub sub;
            map2 T.sub sub sub;
            map2 T.mul sub sub;
            map2 T.band sub sub;
            map2 T.bor sub sub;
            map2 T.bxor sub sub;
            map T.bnot sub;
            map T.neg sub;
            map2 T.shl sub sub;
            map2 T.lshr sub sub;
          ])
    3

let interp_env ~a ~b : Smt.Interp.env =
  {
    bool_var = (fun _ -> false);
    bv_var = (fun name -> if name = "a" then a else b);
    enum_var = (fun _ -> "");
    pred = (fun _ _ -> false);
  }

let prop_blaster_matches_interp width =
  QCheck.Test.make ~count:120
    ~name:(Printf.sprintf "blaster = interpreter (width %d)" width)
    QCheck.(
      make
        Gen.(triple (gen_term width) (int_bound 0xFFFF) (int_bound 0xFFFF)))
    (fun (term, a, b) ->
      let a = Int64.of_int a and b = Int64.of_int b in
      let expected =
        match Smt.Interp.eval (interp_env ~a ~b) term with
        | Smt.Interp.V_bv { value; _ } -> value
        | _ -> QCheck.assume_fail ()
      in
      let s = S.create () in
      S.assert_ s (T.eq (T.bv_var "a" ~width) (T.bv ~width a));
      S.assert_ s (T.eq (T.bv_var "b" ~width) (T.bv ~width b));
      S.assert_ s (T.eq term (T.bv ~width expected));
      is_sat (S.check s))

let prop_comparisons_match width =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "comparison blasting (width %d)" width)
    QCheck.(make Gen.(pair (int_bound 0xFFFF) (int_bound 0xFFFF)))
    (fun (a, b) ->
      let a64 = Int64.of_int a and b64 = Int64.of_int b in
      let s = S.create () in
      let ta = T.bv ~width a64 and tb = T.bv ~width b64 in
      let mask v =
        if width = 64 then v
        else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)
      in
      let sext v =
        let m = mask v in
        if width < 64 && Int64.logand m (Int64.shift_left 1L (width - 1)) <> 0L then
          Int64.logor m (Int64.shift_left (-1L) width)
        else m
      in
      let cases =
        [ (T.ult ta tb, Int64.unsigned_compare (mask a64) (mask b64) < 0);
          (T.ule ta tb, Int64.unsigned_compare (mask a64) (mask b64) <= 0);
          (T.slt ta tb, Int64.compare (sext a64) (sext b64) < 0);
          (T.sle ta tb, Int64.compare (sext a64) (sext b64) <= 0);
        ]
      in
      List.for_all
        (fun (term, expected) ->
          let s' = s in
          S.push s';
          S.assert_ s' (if expected then term else T.not_ term);
          let r = is_sat (S.check s') in
          S.pop s';
          r)
        cases)


(* --- introspection ----------------------------------------------------------- *)

let test_assertions_tracking () =
  let s = S.create () in
  S.assert_ s (T.bool_var "a");
  S.assert_named s "n1" (T.bool_var "b");
  Alcotest.(check int) "two live" 2 (List.length (S.assertions s));
  S.push s;
  S.assert_ s (T.bool_var "c");
  Alcotest.(check int) "three live" 3 (List.length (S.assertions s));
  S.pop s;
  Alcotest.(check int) "two after pop" 2 (List.length (S.assertions s));
  match S.assertions s with
  | [ (None, _); (Some "n1", _) ] -> ()
  | _ -> Alcotest.fail "unexpected assertion list shape"

let test_smtlib_dump () =
  let s = S.create () in
  S.declare_enum s "prop" [ "reg"; "device_type" ];
  S.assert_ s (T.ult (T.bv_var "x" ~width:8) (T.bv_of_int ~width:8 5));
  S.assert_named s "presence" (T.pred "R" [ T.enum_var "p" ~sort:"prop" ]);
  let dump = Fmt.str "%a" S.pp_smtlib s in
  let has n = Test_util.contains dump n in
  check_bool "logic line" true (has "(set-logic");
  check_bool "bv decl" true (has "(declare-const x (_ BitVec 8))");
  check_bool "pred decl" true (has "(declare-fun R");
  check_bool "named assert" true (has ":named \"presence\"");
  check_bool "bvult" true (has "(bvult x (_ bv5 8))");
  check_bool "sort comment" true (has "; sort prop = { reg device_type }");
  check_bool "check-sat" true (has "(check-sat)")


(* --- optimization ------------------------------------------------------------ *)

let test_minimize_basic () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:8 in
  S.assert_ s (T.ugt x (T.bv_of_int ~width:8 41));
  S.assert_ s (T.not_ (T.eq x (T.bv_of_int ~width:8 42)));
  Alcotest.(check (option int64)) "min is 43" (Some 43L) (S.minimize s x);
  (* The solver remains usable and unpoisoned. *)
  check_bool "still sat" true (is_sat (S.check s));
  Alcotest.(check (option int64)) "repeatable" (Some 43L) (S.minimize s x)

let test_minimize_unsat () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:4 in
  S.assert_ s (T.ult x (T.bv_of_int ~width:4 3));
  S.assert_ s (T.ugt x (T.bv_of_int ~width:4 10));
  Alcotest.(check (option int64)) "none" None (S.minimize s x)

let test_minimize_with_assumptions () =
  let s = S.create () in
  let x = T.bv_var "x" ~width:8 and flag = T.bool_var "flag" in
  S.assert_ s (T.implies flag (T.uge x (T.bv_of_int ~width:8 100)));
  Alcotest.(check (option int64)) "free minimum" (Some 0L) (S.minimize s x);
  Alcotest.(check (option int64)) "under assumption" (Some 100L)
    (S.minimize ~assumptions:[ flag ] s x);
  (* Minimizing an expression, not just a variable. *)
  let y = T.add x (T.bv_of_int ~width:8 5) in
  Alcotest.(check (option int64)) "expression minimum" (Some 0L) (S.minimize s y)

let test_minimize_64bit () =
  let s = S.create () in
  let x = T.bv_var "addr" ~width:64 in
  S.assert_ s (T.uge x (T.bv ~width:64 0x40000000L));
  Alcotest.(check (option int64)) "64-bit bound" (Some 0x40000000L) (S.minimize s x)

let test_minimize_sort_error () =
  let s = S.create () in
  try
    ignore (S.minimize s (T.bool_var "b") : int64 option);
    Alcotest.fail "expected sort error"
  with S.Error _ -> ()


(* --- additional term coverage -------------------------------------------------- *)

let test_distinct_three () =
  let s = S.create () in
  let xs = List.init 3 (fun i -> T.bv_var (Printf.sprintf "d%d" i) ~width:2) in
  S.assert_ s (T.distinct xs);
  (* 3 distinct values fit in 2 bits... *)
  check_bool "3 in 2 bits sat" true (is_sat (S.check s));
  (* ...but 5 distinct values cannot. *)
  let s2 = S.create () in
  let ys = List.init 5 (fun i -> T.bv_var (Printf.sprintf "e%d" i) ~width:2) in
  S.assert_ s2 (T.distinct ys);
  check_bool "5 in 2 bits unsat" false (is_sat (S.check s2))

let test_ite_on_bitvectors () =
  let s = S.create () in
  let c = T.bool_var "c" in
  let x = T.ite c (T.bv_of_int ~width:8 10) (T.bv_of_int ~width:8 20) in
  S.assert_ s (T.eq x (T.bv_of_int ~width:8 20));
  check_bool "sat" true (is_sat (S.check s));
  check_bool "condition false" false (S.get_bool s c)

let test_ite_on_enums () =
  let s = S.create () in
  S.declare_enum s "e" [ "a"; "b"; "c" ];
  let c = T.bool_var "c" in
  let x = T.ite c (T.enum ~sort:"e" "a") (T.enum ~sort:"e" "b") in
  S.assert_ s c;
  S.assert_ s (T.eq (T.enum_var "y" ~sort:"e") x);
  check_bool "sat" true (is_sat (S.check s));
  Alcotest.(check string) "y = a" "a" (S.get_enum s (T.enum_var "y" ~sort:"e"))

let test_binary_predicate () =
  (* A binary "requires" relation over a finite sort. *)
  let s = S.create () in
  S.declare_enum s "f" [ "cpu"; "mem"; "net" ];
  let req a b = T.pred "Req" [ T.enum ~sort:"f" a; T.enum ~sort:"f" b ] in
  S.assert_ s (req "net" "cpu");
  S.assert_ s (req "cpu" "mem");
  (* Transitivity axiom, grounded. *)
  S.assert_ s
    (S.forall_enum s ~sort:"f" (fun x ->
         S.forall_enum s ~sort:"f" (fun y ->
             S.forall_enum s ~sort:"f" (fun z ->
                 T.implies
                   (T.and_ [ T.pred "Req" [ x; y ]; T.pred "Req" [ y; z ] ])
                   (T.pred "Req" [ x; z ])))));
  check_bool "sat" true (is_sat (S.check s));
  check_bool "transitive consequence" true (S.get_bool s (req "net" "mem"));
  S.assert_ s (T.not_ (req "net" "mem"));
  check_bool "contradiction unsat" false (is_sat (S.check s))

let () =
  Alcotest.run "smt"
    [
      ( "bitvectors",
        [
          Alcotest.test_case "arith model" `Quick test_bv_arith_model;
          Alcotest.test_case "overflow wraps" `Quick test_bv_overflow_wraps;
          Alcotest.test_case "mul" `Quick test_bv_mul;
          Alcotest.test_case "signed vs unsigned" `Quick test_bv_unsigned_vs_signed;
          Alcotest.test_case "shift" `Quick test_bv_shift;
          Alcotest.test_case "extract/concat" `Quick test_bv_extract_concat;
          Alcotest.test_case "extend" `Quick test_bv_extend;
          Alcotest.test_case "64-bit addresses" `Quick test_wide_64bit;
        ] );
      ( "overlap",
        [
          Alcotest.test_case "disjoint" `Quick test_overlap_disjoint;
          Alcotest.test_case "clash" `Quick test_overlap_clash;
        ] );
      ( "enums",
        [
          Alcotest.test_case "basic" `Quick test_enum_basic;
          Alcotest.test_case "exhausted universe" `Quick test_enum_exhausted;
          Alcotest.test_case "redeclare" `Quick test_enum_redeclare;
          Alcotest.test_case "pred + forall (closure axiom)" `Quick test_pred_and_forall;
          Alcotest.test_case "exists" `Quick test_exists_enum;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "push/pop" `Quick test_push_pop;
          Alcotest.test_case "nested scopes" `Quick test_nested_scopes;
          Alcotest.test_case "named core" `Quick test_named_core;
          Alcotest.test_case "assumptions" `Quick test_check_assumptions;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "distinct (3+)" `Quick test_distinct_three;
          Alcotest.test_case "ite on bitvectors" `Quick test_ite_on_bitvectors;
          Alcotest.test_case "ite on enums" `Quick test_ite_on_enums;
          Alcotest.test_case "binary predicate + grounded transitivity" `Quick test_binary_predicate;
        ] );
      ( "optimization",
        [
          Alcotest.test_case "basic" `Quick test_minimize_basic;
          Alcotest.test_case "unsat" `Quick test_minimize_unsat;
          Alcotest.test_case "assumptions + expressions" `Quick test_minimize_with_assumptions;
          Alcotest.test_case "64-bit" `Quick test_minimize_64bit;
          Alcotest.test_case "sort error" `Quick test_minimize_sort_error;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "assertions tracking" `Quick test_assertions_tracking;
          Alcotest.test_case "smtlib dump" `Quick test_smtlib_dump;
        ] );
      ( "errors",
        [
          Alcotest.test_case "sort errors" `Quick test_sort_errors;
          Alcotest.test_case "model unavailable" `Quick test_model_unavailable;
        ] );
      ( "certification",
        [
          Alcotest.test_case "mixed queries across scopes" `Quick test_certify_mixed_queries;
          Alcotest.test_case "unknown exempt" `Quick test_certify_unknown_exempt;
          Alcotest.test_case "catches unsound solver" `Quick
            test_certify_catches_unsound_solver;
          Alcotest.test_case "off by default" `Quick test_certify_off_by_default;
        ] );
      ( "escalation",
        [
          Alcotest.test_case "recovers forced Unknown" `Quick
            test_escalation_recovers_forced_unknown;
          Alcotest.test_case "exhausts honestly" `Quick test_escalation_exhausts_honestly;
          Alcotest.test_case "certifies final attempt" `Quick
            test_escalation_certifies_final_attempt;
          Alcotest.test_case "none is inert" `Quick test_escalation_none_is_inert;
          Alcotest.test_case "budget scaling" `Quick test_escalation_budget_scaling;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest (prop_blaster_matches_interp 8);
          QCheck_alcotest.to_alcotest (prop_blaster_matches_interp 16);
          QCheck_alcotest.to_alcotest (prop_blaster_matches_interp 32);
          QCheck_alcotest.to_alcotest (prop_comparisons_match 8);
          QCheck_alcotest.to_alcotest (prop_comparisons_match 16);
        ] );
    ]
