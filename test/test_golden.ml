(* Golden-file snapshot tests: the generated artifacts of the running
   example must match the checked-in expectations byte for byte.  These pin
   the DTS printer and the Bao C generators against incidental formatting
   regressions.

   To regenerate after an intentional change, run the snippet in
   test/golden/README (or see the git history of this file). *)

module RE = Llhsc.Running_example

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let outcome =
  lazy
    (Llhsc.Pipeline.run ~exclusive:RE.exclusive ~model:(RE.feature_model ())
       ~core:(RE.core_tree ()) ~deltas:(RE.deltas ()) ~schemas_for:RE.schemas_for
       ~vm_requests:[ RE.vm1_features; RE.vm2_features ] ())

let product name =
  List.find
    (fun p -> p.Llhsc.Pipeline.name = name)
    (Lazy.force outcome).Llhsc.Pipeline.products

let check_golden ~expected actual () =
  let want = read_file (Filename.concat "golden" expected) in
  Alcotest.(check string) expected want (actual ())

(* A DTS with three distinct syntax errors; parser recovery must surface
   all of them, formatted as the CLI would print them. *)
let multi_error_src =
  "/dts-v1/;\n\
   / {\n\
   \tcompatible = \"acme,board\"\n\
   \t#address-cells = <1>;\n\
   \t#size-cells = ;\n\
   \tmemory@0 { device_type = \"memory\"; reg = <0x0 0x10000>; };\n\
   \tchosen { bootargs = 42; };\n\
   };\n"

let multi_error_report () =
  match Devicetree.Tree.of_source_diags ~file:"broken.dts" multi_error_src with
  | Ok _ -> "unexpected: parsed clean"
  | Error errs ->
    String.concat ""
      (List.map (fun e -> Fmt.str "%a\n" Diag.pp (Diag.parse_error e)) errs)

let () =
  Alcotest.run "golden"
    [
      ( "artifacts",
        [
          Alcotest.test_case "vm1.dts" `Quick
            (check_golden ~expected:"vm1.dts.expected" (fun () ->
                 Devicetree.Printer.to_string (product "vm1").Llhsc.Pipeline.tree));
          Alcotest.test_case "platform.c" `Quick
            (check_golden ~expected:"platform.c.expected" (fun () ->
                 Bao.Platform.to_c (Bao.Platform.of_tree (product "platform").Llhsc.Pipeline.tree)));
          Alcotest.test_case "config.c" `Quick
            (check_golden ~expected:"config.c.expected" (fun () ->
                 Bao.Config.to_c
                   (Bao.Config.of_vm_trees
                      [ ("vm1", (product "vm1").Llhsc.Pipeline.tree);
                        ("vm2", (product "vm2").Llhsc.Pipeline.tree)
                      ])));
          Alcotest.test_case "multi-error diagnostics" `Quick
            (check_golden ~expected:"multi_error.expected" multi_error_report);
        ] );
    ]
