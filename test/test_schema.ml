(* Tests for the dt-schema fragment: the YAML-subset parser, schema model
   and selection, the direct (dt-schema-baseline) validator, and the SMT
   compilation of constraints (1)-(6) with unsat-core-based violation
   reporting. *)

module Y = Schema.Yaml_lite
module B = Schema.Binding
module V = Schema.Validate
module T = Devicetree.Tree

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- yaml ----------------------------------------------------------------------- *)

let test_yaml_scalars () =
  check_bool "int" true (Y.parse "x: 42" = Y.Map [ ("x", Y.Int 42L) ]);
  check_bool "hex" true (Y.parse "x: 0x10" = Y.Map [ ("x", Y.Int 16L) ]);
  check_bool "bool" true (Y.parse "x: true" = Y.Map [ ("x", Y.Bool true) ]);
  check_bool "string" true (Y.parse "x: hello" = Y.Map [ ("x", Y.Str "hello") ]);
  check_bool "quoted" true (Y.parse {|x: "a: b"|} = Y.Map [ ("x", Y.Str "a: b") ]);
  check_bool "null" true (Y.parse "x:" = Y.Map [ ("x", Y.Null) ])

let test_yaml_nesting () =
  let src = {|
properties:
  device_type:
    const: memory
  reg:
    minItems: 1
    maxItems: 1024
required:
  - device_type
  - reg
|} in
  let y = Y.parse src in
  let props = Option.get (Y.find "properties" y) in
  let dt = Option.get (Y.find "device_type" props) in
  check_bool "const" true (Y.find "const" dt = Some (Y.Str "memory"));
  let reg = Option.get (Y.find "reg" props) in
  check_bool "minItems" true (Y.find "minItems" reg = Some (Y.Int 1L));
  check_bool "required list" true
    (Y.find "required" y = Some (Y.List [ Y.Str "device_type"; Y.Str "reg" ]))

let test_yaml_flow_list () =
  check_bool "flow" true
    (Y.parse "xs: [a, b, 3]" = Y.Map [ ("xs", Y.List [ Y.Str "a"; Y.Str "b"; Y.Int 3L ]) ])

let test_yaml_comments () =
  let y = Y.parse "# header\nx: 1 # trailing\ny: \"#notcomment\"" in
  check_bool "values" true
    (y = Y.Map [ ("x", Y.Int 1L); ("y", Y.Str "#notcomment") ])

let test_yaml_list_of_maps () =
  let src = {|
items:
  - name: a
    size: 1
  - name: b
    size: 2
|} in
  match Y.parse src with
  | Y.Map [ ("items", Y.List [ Y.Map a; Y.Map b ]) ] ->
    check_bool "a" true (List.assoc "name" a = Y.Str "a" && List.assoc "size" a = Y.Int 1L);
    check_bool "b" true (List.assoc "name" b = Y.Str "b" && List.assoc "size" b = Y.Int 2L)
  | other -> Alcotest.failf "unexpected parse: %a" Y.pp other

let test_yaml_errors () =
  (try
     ignore (Y.parse "x: 1\n  bad indent: 2" : Y.t);
     Alcotest.fail "expected error"
   with Y.Error _ -> ())

(* Malformed inputs must fail with [Error (msg, line)] carrying the right
   1-based source line — the CLI prints it, so it has to point at the
   offending line, not at line 0 or the line count. *)
let yaml_error src =
  match Y.parse src with
  | exception Y.Error (msg, line) -> (msg, line)
  | _ -> Alcotest.fail "expected Y.Error"

let test_yaml_malformed_line_numbers () =
  let msg, line = yaml_error "key: \"unterminated" in
  check_bool "unterminated msg" true (msg = "unterminated quoted string");
  check_int "unterminated line" 1 line;
  (* Error below leading clean lines: the line number must follow. *)
  let msg, line = yaml_error "a: 1\nb: 2\nc: 'open" in
  check_bool "unterminated' msg" true (msg = "unterminated quoted string");
  check_int "unterminated' line" 3 line;
  let _, line = yaml_error "x: 1\n  bad indent: 2" in
  check_int "bad indent line" 2 line;
  (* Top-level content that is neither a map entry nor a list item. *)
  let msg, line = yaml_error "a: 1\n}{ garbage" in
  check_bool "garbage msg" true
    (String.length msg >= 8 && String.sub msg 0 8 = "expected");
  check_int "garbage line" 2 line

let test_yaml_duplicate_keys () =
  (* Real YAML forbids duplicate mapping keys; silently taking either value
     would make a schema lie about what it checks.  Regression: flat maps,
     nested maps, and inline maps inside list items all reject dups, with
     the message naming the key and the line pointing at the duplicate. *)
  let msg, line = yaml_error "a: 1\nb: 2\na: 3" in
  check_bool "flat dup names key" true (Test_util.contains msg "duplicate mapping key \"a\"");
  check_int "flat dup line" 3 line;
  let msg, line = yaml_error "top:\n  x: 1\n  x: 2" in
  check_bool "nested dup names key" true (Test_util.contains msg "duplicate mapping key \"x\"");
  check_int "nested dup line" 3 line;
  let msg, _ = yaml_error "items:\n  - a: 1\n    a: 2" in
  check_bool "list-item dup names key" true
    (Test_util.contains msg "duplicate mapping key \"a\"");
  (* Same key at different nesting levels, or in sibling maps, is fine. *)
  check_bool "same key in sibling maps ok" true
    (match Y.parse "a:\n  x: 1\nb:\n  x: 2" with Y.Map _ -> true | _ -> false);
  check_bool "same key at different depths ok" true
    (match Y.parse "a:\n  a: 1" with Y.Map _ -> true | _ -> false);
  check_bool "list of maps reusing keys ok" true
    (match Y.parse "items:\n  - name: a\n  - name: b" with Y.Map _ -> true | _ -> false)

let test_yaml_empty_inputs () =
  (* Empty and comment/separator-only files parse to Null, not an error. *)
  check_bool "empty" true (Y.parse "" = Y.Null);
  check_bool "blank lines" true (Y.parse "\n\n" = Y.Null);
  check_bool "comment only" true (Y.parse "# nothing here\n" = Y.Null);
  check_bool "document separator" true (Y.parse "---\n" = Y.Null)

let test_yaml_midword_hash () =
  (* Regression: '#' opens a comment only at line start or after
     whitespace (real YAML semantics); a hash inside a plain scalar is
     content.  The old strip_comment truncated "acme,uart#1" to
     "acme,uart". *)
  check_bool "mid-word hash kept" true
    (Y.parse "x: acme,uart#1" = Y.Map [ ("x", Y.Str "acme,uart#1") ]);
  check_bool "hash after space is comment" true
    (Y.parse "x: val # note" = Y.Map [ ("x", Y.Str "val") ]);
  check_bool "hash after tab is comment" true
    (Y.parse "x: val\t# note" = Y.Map [ ("x", Y.Str "val") ]);
  check_bool "line-leading hash is comment" true
    (Y.parse "# header\nx: 1" = Y.Map [ ("x", Y.Int 1L) ]);
  check_bool "mid-word hash in flow list kept" true
    (Y.parse "xs: [uart#1, b]" = Y.Map [ ("xs", Y.List [ Y.Str "uart#1"; Y.Str "b" ]) ])

let test_yaml_tab_indentation () =
  (* Regression: YAML forbids tabs in indentation; the old parser counted
     a tab as one column and silently mis-nested the mapping.  Now it is
     a structured error naming the offending line. *)
  let msg, line = yaml_error "a:\n\tx: 1" in
  check_bool "tab msg" true (Test_util.contains msg "tab in indentation");
  check_int "tab line" 2 line;
  let msg, line = yaml_error "a: 1\nb:\n  ok: 1\n \t- x" in
  check_bool "space-then-tab msg" true (Test_util.contains msg "tab in indentation");
  check_int "space-then-tab line" 4 line;
  (* Tabs in *content* stay legal: inside scalars, and before comments. *)
  check_bool "tab inside scalar ok" true (Y.parse "x: a\tb" = Y.Map [ ("x", Y.Str "a\tb") ]);
  check_bool "tab-indented comment ok" true
    (Y.parse "a: 1\n\t# note" = Y.Map [ ("a", Y.Int 1L) ])

(* --- schema model ----------------------------------------------------------------- *)

(* The paper's Listing 5 schema for the memory node, with the array-stride
   extension discussed in §I-A (sub-arrays of #address+#size cells). *)
let memory_schema_src =
  {|
$id: memory
description: Fragment of the dt-schema for the memory DT node
select:
  node-name: memory
properties:
  device_type:
    const: memory
  reg:
    minItems: 1
    maxItems: 1024
    multipleOf: 4
required:
  - device_type
  - reg
|}

let memory_schema = B.of_string memory_schema_src

let uart_schema =
  B.of_string
    {|
$id: uart
select:
  compatible: [ns16550a, arm,pl011]
properties:
  compatible:
    enum: [ns16550a, arm,pl011]
  reg:
    minItems: 1
    maxItems: 1
    multipleOf: 4
required:
  - compatible
  - reg
|}

let memory_node_dts =
  {|
/dts-v1/;
/ {
    #address-cells = <2>;
    #size-cells = <2>;
    memory@40000000 {
        device_type = "memory";
        reg = <0x0 0x40000000 0x0 0x20000000
               0x0 0x60000000 0x0 0x20000000>;
    };
    uart@20000000 {
        compatible = "ns16550a";
        reg = <0x0 0x20000000 0x0 0x1000>;
    };
};
|}

let parse_tree src = T.of_source ~file:"test.dts" src

let test_schema_parse () =
  check_str "id" "memory" memory_schema.B.id;
  check_bool "select by name" true (memory_schema.B.select_node_name = Some "memory");
  let reg = List.assoc "reg" memory_schema.B.properties in
  check_bool "minItems" true (reg.B.min_items = Some 1);
  check_bool "maxItems" true (reg.B.max_items = Some 1024);
  check_bool "multipleOf" true (reg.B.multiple_of = Some 4);
  Alcotest.(check (list string)) "required" [ "device_type"; "reg" ] memory_schema.B.required

let test_schema_missing_id () =
  try
    ignore (B.of_string "properties:\n  x:\n    const: 1" : B.t);
    Alcotest.fail "expected error"
  with B.Error _ -> ()

let test_selection () =
  let t = parse_tree memory_node_dts in
  let app = B.applicable [ memory_schema; uart_schema ] t in
  let paths = List.map (fun (p, _, _) -> p) app in
  Alcotest.(check (list string)) "applicable nodes"
    [ "/memory@40000000"; "/uart@20000000" ] paths;
  let _, _, schemas_for_mem = List.hd app in
  Alcotest.(check (list string)) "memory schema selected" [ "memory" ]
    (List.map (fun s -> s.B.id) schemas_for_mem)

(* --- direct validation (dt-schema baseline) ----------------------------------------- *)

let test_validate_ok () =
  let t = parse_tree memory_node_dts in
  Alcotest.(check int) "no violations" 0
    (List.length (V.check [ memory_schema; uart_schema ] t))

let test_validate_wrong_const () =
  let t = parse_tree memory_node_dts in
  let t = T.set_prop t ~path:"/memory@40000000" "device_type" [ Devicetree.Ast.Str "ram" ] in
  let violations = V.check [ memory_schema ] t in
  check_int "one violation" 1 (List.length violations);
  let v = List.hd violations in
  check_str "rule" "memory:const:device_type" v.V.rule;
  check_str "node" "/memory@40000000" v.V.node_path

let test_validate_missing_required () =
  let t = parse_tree memory_node_dts in
  let t = T.remove_prop t ~path:"/memory@40000000" "reg" in
  let violations = V.check [ memory_schema ] t in
  check_bool "missing reg reported" true
    (List.exists (fun v -> v.V.rule = "memory:required:reg") violations)

let test_validate_multiple_of () =
  (* dt-schema's structural reg check from §I-A: with 2+2 cells, the cell
     count must be a multiple of 4.  Drop one cell to break it. *)
  let t = parse_tree memory_node_dts in
  let cells = List.init 7 (fun i -> Devicetree.Ast.Cell_int (Int64.of_int i)) in
  let t =
    T.set_prop t ~path:"/memory@40000000" "reg"
      [ Devicetree.Ast.Cells { bits = 32; cells } ]
  in
  let violations = V.check [ memory_schema ] t in
  check_bool "multipleOf violated" true
    (List.exists (fun v -> v.V.rule = "memory:multipleOf:reg") violations)

let test_validate_max_items () =
  let schema =
    B.of_string
      {|
$id: limited
select:
  node-name: memory
properties:
  reg:
    maxItems: 1
    multipleOf: 4
required: [reg]
|}
  in
  let t = parse_tree memory_node_dts in
  (* memory has 2 banks = 2 items of 4 cells; maxItems 1 must fire. *)
  let violations = V.check [ schema ] t in
  check_bool "maxItems violated" true
    (List.exists (fun v -> v.V.rule = "limited:maxItems:reg") violations)

let test_validate_required_node () =
  let schema =
    B.of_string
      {|
$id: root
select:
  node-name: testroot
requiredNodes: [cpus]
|}
  in
  let t = parse_tree "/dts-v1/;\n/ { testroot { }; };" in
  let violations = V.check [ schema ] t in
  check_bool "required node reported" true
    (List.exists (fun v -> v.V.rule = "root:requiredNode:cpus") violations)

let test_validate_types () =
  let schema =
    B.of_string
      {|
$id: typed
select:
  node-name: typed
properties:
  s:
    type: string
  c:
    type: cells
  f:
    type: flag
required: []
|}
  in
  let good = parse_tree "/dts-v1/;\n/ { typed { s = \"x\"; c = <1>; f; }; };" in
  check_int "well-typed" 0 (List.length (V.check [ schema ] good));
  let bad = parse_tree "/dts-v1/;\n/ { typed { s = <1>; c = \"x\"; f = <1>; }; };" in
  check_int "three type violations" 3 (List.length (V.check [ schema ] bad))

(* --- SMT compilation ------------------------------------------------------------------ *)

let smt_check schemas tree =
  let solver = Smt.Solver.create () in
  Schema.Compile.check_tree solver ~schemas tree

let test_smt_ok () =
  let t = parse_tree memory_node_dts in
  Alcotest.(check int) "no failures" 0
    (List.length (smt_check [ memory_schema; uart_schema ] t))

let test_smt_wrong_const_core () =
  let t = parse_tree memory_node_dts in
  let t = T.set_prop t ~path:"/memory@40000000" "device_type" [ Devicetree.Ast.Str "ram" ] in
  match smt_check [ memory_schema ] t with
  | [ (path, core) ] ->
    check_str "failing node" "/memory@40000000" path;
    (* The core must contain the const rule and the value obligation. *)
    check_bool "const rule in core" true
      (List.exists (fun r -> Test_util.contains r "const:device_type") core);
    check_bool "value obligation in core" true
      (List.exists (fun r -> Test_util.contains r "value:device_type") core)
  | other -> Alcotest.failf "expected one failure, got %d" (List.length other)

let test_smt_missing_required_core () =
  let t = parse_tree memory_node_dts in
  let t = T.remove_prop t ~path:"/memory@40000000" "reg" in
  match smt_check [ memory_schema ] t with
  | [ (_, core) ] ->
    check_bool "required rule in core" true
      (List.exists (fun r -> Test_util.contains r "required:reg") core);
    check_bool "closure in core" true
      (List.exists (fun r -> Test_util.contains r "closure") core)
  | other -> Alcotest.failf "expected one failure, got %d" (List.length other)

let test_smt_multiple_of () =
  let t = parse_tree memory_node_dts in
  let cells = List.init 7 (fun i -> Devicetree.Ast.Cell_int (Int64.of_int i)) in
  let t =
    T.set_prop t ~path:"/memory@40000000" "reg"
      [ Devicetree.Ast.Cells { bits = 32; cells } ]
  in
  match smt_check [ memory_schema ] t with
  | [ (_, core) ] ->
    check_bool "multipleOf in core" true
      (List.exists (fun r -> Test_util.contains r "multipleOf:reg") core)
  | other -> Alcotest.failf "expected one failure, got %d" (List.length other)

let test_smt_required_node () =
  let schema =
    B.of_string
      {|
$id: root
select:
  node-name: testroot
requiredNodes: [cpus]
|}
  in
  let missing = parse_tree "/dts-v1/;\n/ { testroot { }; };" in
  (match smt_check [ schema ] missing with
   | [ (_, core) ] ->
     check_bool "requiredNode in core" true
       (List.exists (fun r -> Test_util.contains r "requiredNode:cpus") core)
   | other -> Alcotest.failf "expected one failure, got %d" (List.length other));
  let present = parse_tree "/dts-v1/;\n/ { testroot { cpus { }; }; };" in
  Alcotest.(check int) "present is fine" 0 (List.length (smt_check [ schema ] present))

let test_smt_agrees_with_direct () =
  (* On a collection of mutations, the SMT checker and the direct validator
     must agree on pass/fail per node. *)
  let base = parse_tree memory_node_dts in
  let mutations =
    [ ("intact", base);
      ("wrong const", T.set_prop base ~path:"/memory@40000000" "device_type" [ Devicetree.Ast.Str "ram" ]);
      ("missing reg", T.remove_prop base ~path:"/memory@40000000" "reg");
      ("missing device_type", T.remove_prop base ~path:"/memory@40000000" "device_type");
      ( "bad stride",
        T.set_prop base ~path:"/memory@40000000" "reg"
          [ Devicetree.Ast.Cells { bits = 32; cells = [ Devicetree.Ast.Cell_int 1L ] } ] );
      ( "wrong uart compatible",
        T.set_prop base ~path:"/uart@20000000" "compatible" [ Devicetree.Ast.Str "bogus" ] );
    ]
  in
  List.iter
    (fun (name, t) ->
      let direct_fails =
        V.check [ memory_schema; uart_schema ] t
        |> List.map (fun v -> v.V.node_path)
        |> List.sort_uniq String.compare
      in
      let smt_fails =
        smt_check [ memory_schema; uart_schema ] t |> List.map fst |> List.sort_uniq String.compare
      in
      Alcotest.(check (list string)) (name ^ ": same failing nodes") direct_fails smt_fails)
    mutations


(* --- value ranges (manufacturer constraints, e.g. clock-frequency) --------------- *)

let clock_schema =
  B.of_string
    {|
$id: clock
select:
  node-name: osc
properties:
  clock-frequency:
    minimum: 1000000
    maximum: 100000000
required: [clock-frequency]
|}

let osc_tree freq =
  parse_tree
    (Printf.sprintf "/dts-v1/;\n/ { osc { clock-frequency = <%Ld>; }; };" freq)

let test_validate_ranges () =
  check_int "in range" 0 (List.length (V.check [ clock_schema ] (osc_tree 24_000_000L)));
  let low = V.check [ clock_schema ] (osc_tree 1000L) in
  check_bool "below minimum" true
    (List.exists (fun v -> v.V.rule = "clock:minimum:clock-frequency") low);
  let high = V.check [ clock_schema ] (osc_tree 200_000_000L) in
  check_bool "above maximum" true
    (List.exists (fun v -> v.V.rule = "clock:maximum:clock-frequency") high)

let test_smt_ranges () =
  check_int "in range" 0 (List.length (smt_check [ clock_schema ] (osc_tree 24_000_000L)));
  (match smt_check [ clock_schema ] (osc_tree 1000L) with
   | [ (_, core) ] ->
     check_bool "minimum rule in core" true
       (List.exists (fun r -> Test_util.contains r "minimum:clock-frequency") core)
   | other -> Alcotest.failf "expected one failure, got %d" (List.length other));
  match smt_check [ clock_schema ] (osc_tree 200_000_000L) with
  | [ (_, core) ] ->
    check_bool "maximum rule in core" true
      (List.exists (fun r -> Test_util.contains r "maximum:clock-frequency") core)
  | other -> Alcotest.failf "expected one failure, got %d" (List.length other)

let test_range_requires_cell_value () =
  (* A string where a bounded cell is expected violates the obligation. *)
  let t = parse_tree "/dts-v1/;\n/ { osc { clock-frequency = \"fast\"; }; };" in
  check_bool "direct rejects" true (V.check [ clock_schema ] t <> []);
  check_bool "smt rejects" true (smt_check [ clock_schema ] t <> [])


(* --- property: SMT checker and direct validator agree on random inputs ------ *)

(* Random prop schemas over a small name/value universe, and random nodes;
   the two checkers must produce the same pass/fail verdict. *)
let gen_schema_and_node =
  let open QCheck.Gen in
  let prop_names = [ "pa"; "pb"; "pc" ] in
  let values = [ "va"; "vb"; "vc" ] in
  let gen_prop_schema =
    let* const = opt (oneofl values) in
    let* enum = oneofl [ []; [ "va" ]; [ "va"; "vb" ] ] in
    let* min_items = opt (int_range 1 3) in
    let* max_items = opt (int_range 1 3) in
    let* multiple_of = opt (int_range 1 3) in
    let* minimum = opt (map Int64.of_int (int_range 0 50)) in
    let* maximum = opt (map Int64.of_int (int_range 0 50)) in
    return
      { B.empty_prop_schema with
        B.const_string = const;
        enum_values = enum;
        min_items;
        max_items;
        multiple_of;
        minimum;
        maximum
      }
  in
  let* schema_props =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* present = bool in
        if present then
          let* ps = gen_prop_schema in
          return ((name, ps) :: acc)
        else return acc)
      (return []) prop_names
  in
  let* required =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* req = bool in
        return (if req then name :: acc else acc))
      (return []) prop_names
  in
  let schema =
    { B.id = "rand";
      description = None;
      select_compatible = [];
      select_node_name = Some "node";
      properties = schema_props;
      required;
      required_nodes = [];
      additional_properties = true
    }
  in
  (* Random node: subset of props, each either a string or cells. *)
  let* props =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* present = bool in
        if not present then return acc
        else
          let* use_string = bool in
          if use_string then
            let* v = oneofl values in
            return ((name, [ Devicetree.Ast.Str v ]) :: acc)
          else
            let* ncells = int_range 1 4 in
            let* cells = list_repeat ncells (map Int64.of_int (int_range 0 60)) in
            return
              ((name, [ Devicetree.Ast.Cells { bits = 32; cells = List.map (fun c -> Devicetree.Ast.Cell_int c) cells } ])
              :: acc))
      (return []) prop_names
  in
  return (schema, props)

let prop_smt_agrees_with_direct_random =
  QCheck.Test.make ~count:150 ~name:"SMT checker = direct validator (random schemas)"
    (QCheck.make gen_schema_and_node)
    (fun (schema, props) ->
      let tree =
        List.fold_left
          (fun t (name, value) -> T.set_prop t ~path:"/node" name value)
          (parse_tree "/dts-v1/;\n/ { node { }; };")
          props
      in
      let direct_ok = V.check [ schema ] tree = [] in
      let solver = Smt.Solver.create () in
      let smt_ok = Schema.Compile.check_tree solver ~schemas:[ schema ] tree = [] in
      direct_ok = smt_ok)


(* --- strict mode (additionalProperties: false) ------------------------------- *)

let strict_schema =
  B.of_string
    {|
$id: strict
select:
  node-name: strictnode
properties:
  allowed:
    type: cells
required: [allowed]
additionalProperties: false
|}

let test_strict_mode () =
  let good = parse_tree "/dts-v1/;\n/ { strictnode { allowed = <1>; status = \"okay\"; }; };" in
  check_int "declared + standard props pass" 0 (List.length (V.check [ strict_schema ] good));
  check_int "smt agrees" 0 (List.length (smt_check [ strict_schema ] good));
  let bad = parse_tree "/dts-v1/;\n/ { strictnode { allowed = <1>; rogue = <2>; }; };" in
  let direct = V.check [ strict_schema ] bad in
  check_bool "direct rejects rogue" true
    (List.exists (fun v -> v.V.rule = "strict:additionalProperties:rogue") direct);
  (match smt_check [ strict_schema ] bad with
   | [ (_, core) ] ->
     check_bool "smt core names the rule" true
       (List.exists (fun r -> Test_util.contains r "additionalProperties:rogue") core)
   | other -> Alcotest.failf "expected one failure, got %d" (List.length other))

let () =
  Alcotest.run "schema"
    [
      ( "yaml",
        [
          Alcotest.test_case "scalars" `Quick test_yaml_scalars;
          Alcotest.test_case "nesting" `Quick test_yaml_nesting;
          Alcotest.test_case "flow list" `Quick test_yaml_flow_list;
          Alcotest.test_case "comments" `Quick test_yaml_comments;
          Alcotest.test_case "list of maps" `Quick test_yaml_list_of_maps;
          Alcotest.test_case "errors" `Quick test_yaml_errors;
          Alcotest.test_case "malformed line numbers" `Quick test_yaml_malformed_line_numbers;
          Alcotest.test_case "duplicate keys rejected" `Quick test_yaml_duplicate_keys;
          Alcotest.test_case "empty inputs" `Quick test_yaml_empty_inputs;
          Alcotest.test_case "mid-word hash is content" `Quick test_yaml_midword_hash;
          Alcotest.test_case "tab indentation rejected" `Quick test_yaml_tab_indentation;
        ] );
      ( "model",
        [
          Alcotest.test_case "parse schema" `Quick test_schema_parse;
          Alcotest.test_case "missing $id" `Quick test_schema_missing_id;
          Alcotest.test_case "selection" `Quick test_selection;
        ] );
      ( "validate",
        [
          Alcotest.test_case "ok" `Quick test_validate_ok;
          Alcotest.test_case "wrong const" `Quick test_validate_wrong_const;
          Alcotest.test_case "missing required" `Quick test_validate_missing_required;
          Alcotest.test_case "multipleOf" `Quick test_validate_multiple_of;
          Alcotest.test_case "maxItems" `Quick test_validate_max_items;
          Alcotest.test_case "required node" `Quick test_validate_required_node;
          Alcotest.test_case "types" `Quick test_validate_types;
          Alcotest.test_case "value ranges" `Quick test_validate_ranges;
        ] );
      ( "smt",
        [
          Alcotest.test_case "ok" `Quick test_smt_ok;
          Alcotest.test_case "wrong const core" `Quick test_smt_wrong_const_core;
          Alcotest.test_case "missing required core" `Quick test_smt_missing_required_core;
          Alcotest.test_case "multipleOf" `Quick test_smt_multiple_of;
          Alcotest.test_case "required node" `Quick test_smt_required_node;
          Alcotest.test_case "agrees with direct validator" `Quick test_smt_agrees_with_direct;
          Alcotest.test_case "value ranges" `Quick test_smt_ranges;
          Alcotest.test_case "range needs cell value" `Quick test_range_requires_cell_value;
          Alcotest.test_case "strict mode" `Quick test_strict_mode;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_smt_agrees_with_direct_random ] );
    ]
