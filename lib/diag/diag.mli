(** Structured diagnostics: the single error currency of the llhsc
    pipeline.

    Every layer of the checker historically defined its own [exception
    Error of ...]; a missed branch in the CLI's handler crashed the whole
    run with a raw backtrace.  This module gives each failure a severity, a
    stable machine-readable code, an optional source location and a
    human-readable message — and, crucially, one place ({!of_exn}) where
    the whole zoo of per-module exceptions is converted, so the conversion
    list cannot drift out of sync with the modules again. *)

type severity = Error | Warning | Info

(** Raised when an installed resource guard trips (e.g. the worker pool's
    [RLIMIT_CPU] SIGXCPU handler).  Converted by {!of_exn} into an
    [error[RESOURCE]] diagnostic at every isolation boundary. *)
exception Resource_limit of string

type t = {
  severity : severity;
  code : string;  (** stable, e.g. ["DT-PARSE"], ["SMT-SORT"], ["IO"] *)
  message : string;
  loc : Devicetree.Loc.t option;
}

(** Build a diagnostic with a formatted message (default severity
    [Error]). *)
val make :
  ?severity:severity ->
  ?loc:Devicetree.Loc.t ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

(** A DTS parse error as reported by the recovering parser. *)
val parse_error : string * Devicetree.Loc.t -> t

(** [error[CODE]: file:line:col: message] (location omitted when absent). *)
val pp : Format.formatter -> t -> unit

val is_error : t -> bool

(** CLI exit code for a diagnostic set: [0] when no [Error]-severity
    diagnostics are present, [2] otherwise (the "input error" code). *)
val exit_code : t list -> int

(** Convert any known llhsc exception into a diagnostic; [None] for
    exceptions the pipeline does not own, which should keep propagating.
    This is the exhaustive catalogue of every [exception Error] in the
    libraries plus the runtime escape hatches ([Sys_error], [Failure],
    [Invalid_argument], [Not_found], [Stack_overflow]) that would
    otherwise crash the CLI.  {!Resource_limit} and [Out_of_memory] map
    to [error[RESOURCE]]: a tripped rlimit guard degrades to a per-task
    diagnostic instead of killing the checker. *)
val of_exn : exn -> t option

(** Run a thunk, converting known exceptions into a diagnostic. Unknown
    exceptions propagate. *)
val catch : (unit -> 'a) -> ('a, t) result

(** Mutable accumulator for diagnostics, for pipelines that keep going
    after the first problem. *)
module Collector : sig
  type diag = t
  type t

  val create : unit -> t
  val add : t -> diag -> unit

  (** Record a formatted [Error]-severity diagnostic. *)
  val error :
    t ->
    ?loc:Devicetree.Loc.t ->
    code:string ->
    ('a, Format.formatter, unit, unit) format4 ->
    'a

  val has_errors : t -> bool

  (** Collected diagnostics, oldest first. *)
  val to_list : t -> diag list
end
