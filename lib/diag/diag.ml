(* Structured diagnostics and the one exhaustive exception-to-diagnostic
   conversion for the whole pipeline.  When a library gains a new
   [exception Error], add it to [of_exn] here; the CLI and the pipeline
   isolation both route through this function, so one addition covers every
   boundary. *)

type severity = Error | Warning | Info

(* Raised when an installed resource guard trips (a worker's RLIMIT_CPU
   SIGXCPU handler, an explicit quota check).  Owned here rather than by
   the pool so every isolation boundary that already routes through
   [of_exn] converts it to an [error[RESOURCE]] diagnostic for free. *)
exception Resource_limit of string

type t = {
  severity : severity;
  code : string;
  message : string;
  loc : Devicetree.Loc.t option;
}

let make ?(severity = Error) ?loc ~code fmt =
  Fmt.kstr (fun message -> { severity; code; message; loc }) fmt

let parse_error (msg, loc) = make ~code:"DT-PARSE" ~loc "%s" msg

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let pp ppf d =
  match d.loc with
  | Some loc ->
    Fmt.pf ppf "%a[%s]: %a: %s" pp_severity d.severity d.code Devicetree.Loc.pp loc
      d.message
  | None -> Fmt.pf ppf "%a[%s]: %s" pp_severity d.severity d.code d.message

let is_error d = d.severity = Error
let exit_code diags = if List.exists is_error diags then 2 else 0

let of_exn exn =
  let at ?loc code fmt = Fmt.kstr (fun m -> Some (make ?loc ~code "%s" m)) fmt in
  match exn with
  (* devicetree *)
  | Devicetree.Lexer.Error (msg, loc) -> at ~loc "DT-LEX" "%s" msg
  | Devicetree.Parser.Error (msg, loc) -> at ~loc "DT-PARSE" "%s" msg
  | Devicetree.Tree.Error (msg, loc) -> at ~loc "DT-TREE" "%s" msg
  | Devicetree.Addresses.Error (msg, loc) -> at ~loc "DT-ADDR" "%s" msg
  | Devicetree.Interrupts.Error (msg, loc) -> at ~loc "DT-IRQ" "%s" msg
  | Devicetree.Overlay.Error (msg, loc) -> at ~loc "DT-OVERLAY" "%s" msg
  | Devicetree.Fdt.Error msg -> at "DT-FDT" "%s" msg
  (* delta language *)
  | Delta.Parse.Error (msg, loc) -> at ~loc "DELTA-PARSE" "%s" msg
  | Delta.Apply.Error e ->
    at ~loc:e.Delta.Apply.loc "DELTA-APPLY" "%s%s" e.Delta.Apply.message
      (match e.Delta.Apply.delta with
       | Some d -> Printf.sprintf " (delta %s)" d
       | None -> "")
  (* schemas *)
  | Schema.Binding.Error msg -> at "SCHEMA-BINDING" "%s" msg
  | Schema.Yaml_lite.Error (msg, line) -> at "YAML" "%s (line %d)" msg line
  (* feature models *)
  | Featuremodel.Parse.Error (msg, line) -> at "FM-PARSE" "%s (line %d)" msg line
  | Featuremodel.Model.Error msg -> at "FM-MODEL" "%s" msg
  | Featuremodel.Analysis.Error msg -> at "FM-ANALYSIS" "%s" msg
  | Featuremodel.Multi.Error msg -> at "FM-ALLOC" "%s" msg
  | Featuremodel.Configurator.Error msg -> at "FM-CONFIG" "%s" msg
  (* solvers *)
  | Sat.Dimacs.Error msg -> at "PARSE" "dimacs: %s" msg
  | Smt.Solver.Error msg -> at "SMT" "%s" msg
  | Smt.Interp.Eval_error msg -> at "SMT-EVAL" "%s" msg
  | Smt.Term.Sort_error msg -> at "SMT-SORT" "%s" msg
  (* hypervisor back end *)
  | Bao.Platform.Error msg -> at "BAO-PLATFORM" "%s" msg
  | Bao.Config.Error msg -> at "BAO-CONFIG" "%s" msg
  | Bao.Qemu.Error msg -> at "BAO-QEMU" "%s" msg
  | Bao.Cparse.Error msg -> at "BAO-CPARSE" "%s" msg
  (* runtime escape hatches: these indicate an internal bug, but the
     checker must degrade to a diagnostic, not a backtrace *)
  | Sys_error msg -> at "IO" "%s" msg
  (* disk errors that escape the fail-operational journal path (e.g. an
     atomic report write hitting ENOSPC) are input-environment errors *)
  | Unix.Unix_error (e, op, arg) ->
    at "IO" "%s%s: %s" op
      (if arg = "" then "" else " " ^ arg)
      (Unix.error_message e)
  | Failure msg -> at "FAIL" "%s" msg
  | Invalid_argument msg -> at "INTERNAL" "invalid argument: %s" msg
  | Not_found -> at "INTERNAL" "internal lookup failed (Not_found)"
  | Stack_overflow -> at "INTERNAL" "stack overflow (input too deeply nested?)"
  (* resource exhaustion: a tripped rlimit guard (or a genuine OOM) must
     degrade to a per-task diagnostic, not take the whole checker down *)
  | Resource_limit msg -> at "RESOURCE" "%s" msg
  | Out_of_memory -> at "RESOURCE" "out of memory (memory limit exceeded?)"
  | _ -> None

let catch f =
  match f () with
  | v -> Ok v
  | exception e -> (match of_exn e with Some d -> Error d | None -> raise e)

module Collector = struct
  type diag = t
  type nonrec t = { mutable diags : diag list (* newest first *) }

  let create () = { diags = [] }
  let add c d = c.diags <- d :: c.diags

  let error c ?loc ~code fmt =
    Fmt.kstr (fun message -> add c { severity = Error; code; message; loc }) fmt

  let has_errors c = List.exists is_error c.diags
  let to_list c = List.rev c.diags
end
