(** Semantic DeviceTree: the result of parsing DTS input and applying dtc's
    merge semantics (repeated definitions of a node merge, later properties
    win, [/delete-node/] and [/delete-property/] apply in order).

    Trees are immutable; all update operations return a new tree.  Paths are
    slash-separated full node names including unit addresses, e.g.
    ["/cpus/cpu@0"]; the root is ["/"]. *)

type prop = {
  p_name : string;
  p_value : Ast.piece list; (* empty = boolean/empty property *)
  p_loc : Loc.t;
}

type t = {
  name : string; (* full node name with unit address; "/" for the root *)
  labels : string list;
  props : prop list;     (* in definition order *)
  children : t list;     (* in definition order *)
  loc : Loc.t;
}

exception Error of string * Loc.t

(** An empty root node. *)
val empty : t

(** [of_source ?loader ~file src] parses DTS text and builds the tree.
    [loader] resolves [/include/ "name"] directives to their content;
    unresolved includes raise {!Error}.  Raises {!Error}, [Lexer.Error] or
    [Parser.Error] on bad input. *)
val of_source : ?loader:(string -> string option) -> file:string -> string -> t

(** Like {!of_source}, but never raises on bad input: parses with error
    recovery (see [Parser.parse_partial]) and processes each top-level item
    in isolation, collecting {e all} syntax and merge errors in source
    order.  [Ok tree] iff the input was clean. *)
val of_source_diags :
  ?loader:(string -> string option) ->
  file:string ->
  string ->
  (t, (string * Loc.t) list) result

(** Build from an already-parsed file. *)
val of_ast : ?loader:(string -> string option) -> Ast.file -> t

(** Memory reservations ([/memreserve/]) collected from the source. *)
val memreserves_of_ast : Ast.file -> (int64 * int64) list

(** {1 Queries} *)

val find : t -> string -> t option
val find_exn : t -> string -> t
val get_prop : t -> string -> prop option
val has_prop : t -> string -> bool

(** Locate a node carrying the given label; returns its path and the node. *)
val find_label : t -> string -> (string * t) option

(** All node paths in preorder, root first. *)
val paths : t -> string list

(** [join_path parent child] appends a path segment ("/" parent is special). *)
val join_path : string -> string -> string

(** Split a path into segments; the root is []. *)
val split_path : string -> string list

(** Fold over nodes in preorder with their full path. *)
val fold : (string -> t -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Property decoding} *)

(** Concatenated integer cells of the property (all [Cells] pieces, in
    order).  Each element is one cell as an unsigned value, paired with the
    cell width in bits (32 unless [/bits/] was used).  [Bytes] pieces whose
    length is a non-zero multiple of 4 — the untyped form DTB decoding
    produces, and dtc's byte-string alternative for cell arrays — are
    reinterpreted as big-endian 32-bit cells. *)
val prop_cells : prop -> (int * int64) list

(** Cells assuming the default 32-bit width; raises {!Error} when the
    property mixes widths. *)
val prop_u32s : prop -> int64 list

(** First string piece, if any. *)
val prop_string : prop -> string option

(** All string pieces. *)
val prop_strings : prop -> string list

(** {1 Updates} *)

(** [set_prop t ~path name value] creates or replaces a property.  Raises
    {!Error} if [path] does not exist. *)
val set_prop : t -> path:string -> string -> Ast.piece list -> t

(** [remove_prop t ~path name] removes a property if present. *)
val remove_prop : t -> path:string -> string -> t

(** [merge_at t ~path node_body] merges an AST node body into the node at
    [path] (dtc overlay semantics). *)
val merge_at : t -> path:string -> Ast.node -> t

(** [add_node t ~parent name] creates an empty child (no-op if it exists). *)
val add_node : t -> parent:string -> string -> t

(** [remove_node t ~path] deletes the node at [path]; removing the root or a
    missing node raises {!Error}. *)
val remove_node : t -> path:string -> t

(** {1 Phandles} *)

(** Resolve all [&label] cell references to numeric phandles, inserting
    [phandle] properties into referenced nodes.  Raises {!Error} on a
    dangling reference. *)
val resolve_phandles : t -> t

(** Structural equality ignoring source locations. *)
val equal : t -> t -> bool
