(* Recursive-descent parser for DeviceTree source, producing [Ast.file].

   Grammar (after dtc):
     file      ::= ("/dts-v1/;" | "/include/" string | "/memreserve/" int int ";"
                   | "/" node ";" | "&"label node ";" | "/delete-node/" ref ";")*
     node      ::= "{" entry* "}"
     entry     ::= prop | label* name node ";" | "/delete-node/" name ";"
                 | "/delete-property/" name ";"
     prop      ::= name ";" | name "=" value ("," value)* ";"
     value     ::= cells | string | bytes | "&"label
     cells     ::= ["/bits/" int] "<" (int | "("expr")" | "&"label)* ">"

   Arithmetic expressions follow C precedence and are constant-folded here;
   only integer operands are allowed inside parentheses. *)

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

type state = {
  toks : (Lexer.token * Loc.t) array;
  mutable pos : int;
  mutable errors : (string * Loc.t) list; (* newest first *)
  recover : bool;
}

let record_error st msg loc = st.errors <- (msg, loc) :: st.errors

let peek st = fst st.toks.(st.pos)
let peek_loc st = snd st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Lexer.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st
  else error (peek_loc st) "expected %s, found %a" what Lexer.pp_token (peek st)

(* --- panic-mode recovery ---------------------------------------------------- *)

(* Skip a balanced '{' ... '}' block (assumes the current token is '{');
   stops early at EOF. *)
let skip_block st =
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.LBRACE ->
      incr depth;
      advance st
    | Lexer.RBRACE ->
      decr depth;
      advance st;
      if !depth <= 0 then continue := false
    | Lexer.EOF -> continue := false
    | _ -> advance st
  done

(* Synchronize after a syntax error inside a node body: skip to the next
   ';' (consumed) or stop just before '}' / EOF, stepping over nested
   blocks wholesale so their semicolons don't cut the resync short. *)
let rec sync_entry st =
  match peek st with
  | Lexer.SEMI -> advance st
  | Lexer.RBRACE | Lexer.EOF -> ()
  | Lexer.LBRACE ->
    skip_block st;
    sync_entry st
  | _ ->
    advance st;
    sync_entry st

(* Synchronize at the top level: skip past the next ';' or stop at EOF. *)
let rec sync_toplevel st =
  match peek st with
  | Lexer.SEMI -> advance st
  | Lexer.EOF -> ()
  | Lexer.LBRACE ->
    skip_block st;
    sync_toplevel st
  | _ ->
    advance st;
    sync_toplevel st

(* --- constant expressions -------------------------------------------------- *)

(* C-like precedence climbing over the token stream.  '<<' and '>>' arrive as
   two consecutive LT/GT tokens (see lexer). *)
let rec parse_ternary st =
  let c = parse_logical_or st in
  match peek st with
  | Lexer.OP '?' ->
    advance st;
    let a = parse_ternary st in
    expect st (Lexer.OP ':') "':'";
    let b = parse_ternary st in
    if c <> 0L then a else b
  | _ -> c

and parse_logical_or st =
  let a = ref (parse_logical_and st) in
  while peek st = Lexer.OP 'O' do
    advance st;
    let b = parse_logical_and st in
    a := if !a <> 0L || b <> 0L then 1L else 0L
  done;
  !a

and parse_logical_and st =
  let a = ref (parse_bitor st) in
  while peek st = Lexer.OP 'A' do
    advance st;
    let b = parse_bitor st in
    a := if !a <> 0L && b <> 0L then 1L else 0L
  done;
  !a

and parse_bitor st =
  let a = ref (parse_bitxor st) in
  while peek st = Lexer.OP '|' do
    advance st;
    a := Int64.logor !a (parse_bitxor st)
  done;
  !a

and parse_bitxor st =
  let a = ref (parse_bitand st) in
  while peek st = Lexer.OP '^' do
    advance st;
    a := Int64.logxor !a (parse_bitand st)
  done;
  !a

and parse_bitand st =
  let a = ref (parse_equality st) in
  while peek st = Lexer.OP '&' do
    advance st;
    a := Int64.logand !a (parse_equality st)
  done;
  !a

and parse_equality st =
  let a = ref (parse_relational st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.OP 'E' ->
      advance st;
      let b = parse_relational st in
      a := if Int64.equal !a b then 1L else 0L
    | Lexer.OP 'N' ->
      advance st;
      let b = parse_relational st in
      a := if Int64.equal !a b then 0L else 1L
    | _ -> continue := false
  done;
  !a

and parse_relational st =
  let a = ref (parse_shift st) in
  let continue = ref true in
  while !continue do
    match (peek st, peek2 st) with
    | Lexer.LT, Lexer.LT | Lexer.GT, Lexer.GT -> continue := false (* shift, below *)
    | Lexer.LT, _ ->
      advance st;
      let b = parse_shift st in
      a := if Int64.compare !a b < 0 then 1L else 0L
    | Lexer.GT, _ ->
      advance st;
      let b = parse_shift st in
      a := if Int64.compare !a b > 0 then 1L else 0L
    | Lexer.OP 'l', _ ->
      advance st;
      let b = parse_shift st in
      a := if Int64.compare !a b <= 0 then 1L else 0L
    | Lexer.OP 'g', _ ->
      advance st;
      let b = parse_shift st in
      a := if Int64.compare !a b >= 0 then 1L else 0L
    | _ -> continue := false
  done;
  !a

and parse_shift st =
  let a = ref (parse_additive st) in
  let continue = ref true in
  while !continue do
    match (peek st, peek2 st) with
    | Lexer.LT, Lexer.LT ->
      advance st;
      advance st;
      let b = parse_additive st in
      a := Int64.shift_left !a (Int64.to_int b)
    | Lexer.GT, Lexer.GT ->
      advance st;
      advance st;
      let b = parse_additive st in
      a := Int64.shift_right_logical !a (Int64.to_int b)
    | _ -> continue := false
  done;
  !a

and parse_additive st =
  let a = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.OP '+' ->
      advance st;
      a := Int64.add !a (parse_multiplicative st)
    | Lexer.OP '-' ->
      advance st;
      a := Int64.sub !a (parse_multiplicative st)
    | _ -> continue := false
  done;
  !a

and parse_multiplicative st =
  let a = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.OP '*' ->
      advance st;
      a := Int64.mul !a (parse_unary st)
    | Lexer.SLASH ->
      advance st;
      let b = parse_unary st in
      if Int64.equal b 0L then error (peek_loc st) "division by zero in expression";
      a := Int64.div !a b
    | Lexer.OP '%' ->
      advance st;
      let b = parse_unary st in
      if Int64.equal b 0L then error (peek_loc st) "modulo by zero in expression";
      a := Int64.rem !a b
    | _ -> continue := false
  done;
  !a

and parse_unary st =
  match peek st with
  | Lexer.OP '-' ->
    advance st;
    Int64.neg (parse_unary st)
  | Lexer.OP '~' ->
    advance st;
    Int64.lognot (parse_unary st)
  | Lexer.OP '!' ->
    advance st;
    if Int64.equal (parse_unary st) 0L then 1L else 0L
  | Lexer.NUMBER n ->
    advance st;
    n
  | Lexer.LPAREN ->
    advance st;
    let v = parse_ternary st in
    expect st Lexer.RPAREN "')'";
    v
  | tok -> error (peek_loc st) "expected expression, found %a" Lexer.pp_token tok

let parse_paren_expr st =
  expect st Lexer.LPAREN "'('";
  let v = parse_ternary st in
  expect st Lexer.RPAREN "')'";
  v

(* --- values ------------------------------------------------------------------ *)

let parse_cells st ~bits =
  expect st Lexer.LT "'<'";
  let cells = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.GT ->
      advance st;
      continue := false
    | Lexer.NUMBER n ->
      advance st;
      cells := Ast.Cell_int n :: !cells
    | Lexer.REF label ->
      advance st;
      cells := Ast.Cell_ref label :: !cells
    | Lexer.LPAREN -> cells := Ast.Cell_int (parse_paren_expr st) :: !cells
    | tok -> error (peek_loc st) "expected cell value, found %a" Lexer.pp_token tok
  done;
  Ast.Cells { bits; cells = List.rev !cells }

let parse_value st =
  match peek st with
  | Lexer.DIRECTIVE "bits" ->
    advance st;
    let bits =
      match peek st with
      | Lexer.NUMBER n when List.mem n [ 8L; 16L; 32L; 64L ] ->
        advance st;
        Int64.to_int n
      | _ -> error (peek_loc st) "expected 8, 16, 32 or 64 after /bits/"
    in
    parse_cells st ~bits
  | Lexer.LT -> parse_cells st ~bits:32
  | Lexer.STRING s ->
    advance st;
    Ast.Str s
  | Lexer.BYTES b ->
    advance st;
    Ast.Bytes b
  | Lexer.REF label ->
    advance st;
    Ast.Ref_path label
  | tok -> error (peek_loc st) "expected property value, found %a" Lexer.pp_token tok

let parse_prop_value st =
  let first = parse_value st in
  let rec more acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      more (parse_value st :: acc)
    end
    else List.rev acc
  in
  more [ first ]

(* --- nodes -------------------------------------------------------------------- *)

let parse_name st what =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | Lexer.NUMBER _ ->
    (* Names that look numeric (e.g. a node named "0") come back as numbers;
       recover the original text via the lexeme. *)
    error (peek_loc st) "unexpected number where %s expected" what
  | tok -> error (peek_loc st) "expected %s, found %a" what Lexer.pp_token tok

let rec parse_node_body st ~labels ~name ~loc =
  expect st Lexer.LBRACE "'{'";
  let entries = ref [] in
  let continue = ref true in
  while !continue do
    try
      match peek st with
      | Lexer.RBRACE ->
        advance st;
        continue := false
      | Lexer.EOF ->
        error (peek_loc st) "unexpected end of file: missing '}' closing node %s" name
      | Lexer.DIRECTIVE "delete-node" ->
      let dloc = peek_loc st in
      advance st;
      let target =
        match peek st with
        | Lexer.IDENT n ->
          advance st;
          n
        | Lexer.REF label ->
          advance st;
          "&" ^ label
        | tok -> error (peek_loc st) "expected node name, found %a" Lexer.pp_token tok
      in
      expect st Lexer.SEMI "';'";
      entries := Ast.Delete_node (target, dloc) :: !entries
    | Lexer.DIRECTIVE "delete-property" ->
      let dloc = peek_loc st in
      advance st;
      let target = parse_name st "property name" in
      expect st Lexer.SEMI "';'";
      entries := Ast.Delete_prop (target, dloc) :: !entries
    | Lexer.LABEL _ | Lexer.IDENT _ -> begin
      (* Collect labels, then decide property vs child by lookahead. *)
      let labels = ref [] in
      while (match peek st with Lexer.LABEL _ -> true | _ -> false) do
        (match peek st with
         | Lexer.LABEL l -> labels := l :: !labels
         | _ -> assert false);
        advance st
      done;
      let eloc = peek_loc st in
      let name = parse_name st "node or property name" in
      match peek st with
      | Lexer.LBRACE ->
        let child = parse_node_body st ~labels:(List.rev !labels) ~name ~loc:eloc in
        expect st Lexer.SEMI "';'";
        entries := Ast.Child child :: !entries
      | Lexer.EQUALS ->
        if !labels <> [] then error eloc "labels are not allowed on properties";
        advance st;
        let value = parse_prop_value st in
        expect st Lexer.SEMI "';'";
        entries := Ast.Prop { prop_name = name; prop_value = value; prop_loc = eloc } :: !entries
      | Lexer.SEMI ->
        if !labels <> [] then error eloc "labels are not allowed on properties";
        advance st;
        entries := Ast.Prop { prop_name = name; prop_value = []; prop_loc = eloc } :: !entries
      | tok ->
        error (peek_loc st) "expected '{', '=' or ';' after %S, found %a" name
          Lexer.pp_token tok
    end
    | tok -> error (peek_loc st) "expected node entry, found %a" Lexer.pp_token tok
    with Error (msg, eloc) when st.recover ->
      (* Panic-mode: record and resynchronize on ';' / '}', then keep
         collecting entries so one bad entry costs only itself. *)
      record_error st msg eloc;
      if peek st = Lexer.EOF then continue := false else sync_entry st
  done;
  {
    Ast.node_labels = labels;
    node_name = name;
    node_entries = List.rev !entries;
    node_loc = loc;
  }

let parse_toplevel st =
  match peek st with
  | Lexer.DIRECTIVE "dts-v1" ->
    advance st;
    expect st Lexer.SEMI "';'";
    Some Ast.Version_tag
  | Lexer.DIRECTIVE "include" -> begin
    let loc = peek_loc st in
    advance st;
    match peek st with
    | Lexer.STRING file ->
      advance st;
      Some (Ast.Include (file, loc))
    | tok -> error (peek_loc st) "expected file name after /include/, found %a" Lexer.pp_token tok
  end
  | Lexer.DIRECTIVE "memreserve" -> begin
    advance st;
    let addr =
      match peek st with
      | Lexer.NUMBER n ->
        advance st;
        n
      | _ -> error (peek_loc st) "expected address after /memreserve/"
    in
    let size =
      match peek st with
      | Lexer.NUMBER n ->
        advance st;
        n
      | _ -> error (peek_loc st) "expected size after /memreserve/"
    in
    expect st Lexer.SEMI "';'";
    Some (Ast.Memreserve (addr, size))
  end
  | Lexer.DIRECTIVE "delete-node" -> begin
    let loc = peek_loc st in
    advance st;
    match peek st with
    | Lexer.REF label ->
      advance st;
      expect st Lexer.SEMI "';'";
      Some (Ast.Delete_node_top (label, loc))
    | tok -> error (peek_loc st) "expected &label after /delete-node/, found %a" Lexer.pp_token tok
  end
  | Lexer.SLASH ->
    let loc = peek_loc st in
    advance st;
    let node = parse_node_body st ~labels:[] ~name:"/" ~loc in
    expect st Lexer.SEMI "';'";
    Some (Ast.Root node)
  | Lexer.REF label ->
    let loc = peek_loc st in
    advance st;
    let node = parse_node_body st ~labels:[] ~name:("&" ^ label) ~loc in
    expect st Lexer.SEMI "';'";
    Some (Ast.Ref_node (label, node))
  | Lexer.EOF -> None
  | tok -> error (peek_loc st) "expected top-level construct, found %a" Lexer.pp_token tok

let parse_file st =
  let rec go acc =
    let pos0 = st.pos in
    match
      try `Top (parse_toplevel st)
      with Error (msg, eloc) when st.recover ->
        record_error st msg eloc;
        sync_toplevel st;
        (* Guarantee progress even if resync lands back where we started. *)
        if st.pos = pos0 && peek st <> Lexer.EOF then advance st;
        `Retry
    with
    | `Top (Some t) -> go (t :: acc)
    | `Top None -> List.rev acc
    | `Retry -> go acc
  in
  go []

let parse ~file src =
  let toks = Lexer.tokenize ~file src in
  let st = { toks; pos = 0; errors = []; recover = false } in
  parse_file st

let parse_partial ~file src =
  match Lexer.tokenize ~file src with
  | exception Lexer.Error (msg, loc) -> ([], [ (msg, loc) ])
  | toks ->
    let st = { toks; pos = 0; errors = []; recover = true } in
    let ast = parse_file st in
    (ast, List.rev st.errors)
