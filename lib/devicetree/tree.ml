type prop = {
  p_name : string;
  p_value : Ast.piece list;
  p_loc : Loc.t;
}

type t = {
  name : string;
  labels : string list;
  props : prop list;
  children : t list;
  loc : Loc.t;
}

exception Error of string * Loc.t

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

let empty = { name = "/"; labels = []; props = []; children = []; loc = Loc.dummy }

(* --- paths -------------------------------------------------------------------- *)

let split_path path =
  if path = "/" || path = "" then []
  else
    String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let join_path parent child = if parent = "/" then "/" ^ child else parent ^ "/" ^ child

(* --- queries -------------------------------------------------------------------- *)

let child_opt t name = List.find_opt (fun c -> String.equal c.name name) t.children

let rec find_segments t = function
  | [] -> Some t
  | seg :: rest ->
    (match child_opt t seg with None -> None | Some c -> find_segments c rest)

let find t path = find_segments t (split_path path)

let find_exn t path =
  match find t path with
  | Some n -> n
  | None -> error Loc.dummy "node %s not found" path

let get_prop t name = List.find_opt (fun p -> String.equal p.p_name name) t.props
let has_prop t name = get_prop t name <> None

let fold f t acc =
  let rec go path t acc =
    let acc = f path t acc in
    List.fold_left (fun acc c -> go (join_path path c.name) c acc) acc t.children
  in
  go "/" t acc

let paths t = List.rev (fold (fun path _ acc -> path :: acc) t [])

let find_label t label =
  fold
    (fun path node acc ->
      match acc with
      | Some _ -> acc
      | None -> if List.mem label node.labels then Some (path, node) else None)
    t None

(* --- property decoding ------------------------------------------------------------ *)

let prop_cells p =
  List.concat_map
    (function
      | Ast.Cells { bits; cells } ->
        List.map
          (function
            | Ast.Cell_int v -> (bits, v)
            | Ast.Cell_ref label ->
              error p.p_loc "unresolved reference &%s in property %s" label p.p_name)
          cells
      | Ast.Bytes raw when String.length raw > 0 && String.length raw mod 4 = 0 ->
        (* Untyped values decoded from a DTB: reinterpret as big-endian
           32-bit cells, the representation every cell array flattens to. *)
        List.init
          (String.length raw / 4)
          (fun i ->
            let b k = Int64.of_int (Char.code raw.[(4 * i) + k]) in
            ( 32,
              Int64.logor
                (Int64.shift_left (b 0) 24)
                (Int64.logor
                   (Int64.shift_left (b 1) 16)
                   (Int64.logor (Int64.shift_left (b 2) 8) (b 3))) ))
      | Ast.Str _ | Ast.Bytes _ | Ast.Ref_path _ -> [])
    p.p_value

let prop_u32s p =
  List.map
    (fun (bits, v) ->
      if bits <> 32 then error p.p_loc "property %s uses /bits/ %d cells" p.p_name bits;
      Int64.logand v 0xFFFFFFFFL)
    (prop_cells p)

let prop_string p =
  List.find_map (function Ast.Str s -> Some s | _ -> None) p.p_value

let prop_strings p =
  List.filter_map (function Ast.Str s -> Some s | _ -> None) p.p_value

(* --- functional updates ------------------------------------------------------------ *)

let rec update_at t segments (f : t -> t) =
  match segments with
  | [] -> f t
  | seg :: rest ->
    let found = ref false in
    let children =
      List.map
        (fun c ->
          if String.equal c.name seg then begin
            found := true;
            update_at c rest f
          end
          else c)
        t.children
    in
    if not !found then error Loc.dummy "node %s not found" seg;
    { t with children }

let set_prop t ~path name value =
  update_at t (split_path path) (fun node ->
      let prop = { p_name = name; p_value = value; p_loc = Loc.dummy } in
      let replaced = ref false in
      let props =
        List.map
          (fun p ->
            if String.equal p.p_name name then begin
              replaced := true;
              prop
            end
            else p)
          node.props
      in
      { node with props = (if !replaced then props else props @ [ prop ]) })

let remove_prop t ~path name =
  update_at t (split_path path) (fun node ->
      { node with props = List.filter (fun p -> not (String.equal p.p_name name)) node.props })

let add_node t ~parent name =
  update_at t (split_path parent) (fun node ->
      match child_opt node name with
      | Some _ -> node
      | None ->
        let child = { empty with name; loc = Loc.dummy } in
        { node with children = node.children @ [ child ] })

let remove_node t ~path =
  match List.rev (split_path path) with
  | [] -> error Loc.dummy "cannot remove the root node"
  | last :: rev_parent ->
    let parent_segs = List.rev rev_parent in
    (match find_segments t parent_segs with
     | None -> error Loc.dummy "node %s not found" path
     | Some parent_node ->
       if child_opt parent_node last = None then error Loc.dummy "node %s not found" path);
    update_at t parent_segs (fun node ->
        { node with children = List.filter (fun c -> not (String.equal c.name last)) node.children })

(* --- merging (dtc overlay semantics) ------------------------------------------------ *)

(* Apply an AST node body on top of an existing tree node. *)
let rec apply_entries node entries =
  List.fold_left
    (fun node entry ->
      match entry with
      | Ast.Prop { prop_name; prop_value; prop_loc } ->
        let prop = { p_name = prop_name; p_value = prop_value; p_loc = prop_loc } in
        let replaced = ref false in
        let props =
          List.map
            (fun p ->
              if String.equal p.p_name prop_name then begin
                replaced := true;
                prop
              end
              else p)
            node.props
        in
        { node with props = (if !replaced then props else props @ [ prop ]) }
      | Ast.Child child_ast ->
        let merged = ref false in
        let children =
          List.map
            (fun c ->
              if String.equal c.name child_ast.Ast.node_name then begin
                merged := true;
                merge_node c child_ast
              end
              else c)
            node.children
        in
        if !merged then { node with children }
        else
          let fresh =
            {
              name = child_ast.Ast.node_name;
              labels = [];
              props = [];
              children = [];
              loc = child_ast.Ast.node_loc;
            }
          in
          { node with children = node.children @ [ merge_node fresh child_ast ] }
      | Ast.Delete_node (target, _loc) ->
        { node with children = List.filter (fun c -> not (String.equal c.name target)) node.children }
      | Ast.Delete_prop (target, _loc) ->
        { node with props = List.filter (fun p -> not (String.equal p.p_name target)) node.props })
    node entries

and merge_node node (ast : Ast.node) =
  let node =
    {
      node with
      labels = node.labels @ List.filter (fun l -> not (List.mem l node.labels)) ast.node_labels;
    }
  in
  apply_entries node ast.node_entries

let merge_at t ~path (ast : Ast.node) =
  update_at t (split_path path) (fun node -> merge_node node ast)

(* --- building from AST -------------------------------------------------------------- *)

let rec process_toplevels ~loader root = function
  | [] -> root
  | item :: rest ->
    let root =
      match item with
      | Ast.Version_tag -> root
      | Ast.Memreserve _ -> root
      | Ast.Include (file, loc) -> begin
        match loader file with
        | None -> error loc "cannot resolve /include/ %S" file
        | Some src ->
          let ast = Parser.parse ~file src in
          process_toplevels ~loader root ast
      end
      | Ast.Root node -> merge_node root node
      | Ast.Ref_node (label, node) -> begin
        match find_label root label with
        | None -> error node.Ast.node_loc "reference to undefined label &%s" label
        | Some (path, _) -> update_at root (split_path path) (fun n -> merge_node n node)
      end
      | Ast.Delete_node_top (label, loc) -> begin
        match find_label root label with
        | None -> error loc "reference to undefined label &%s" label
        | Some (path, _) -> remove_node root ~path
      end
    in
    process_toplevels ~loader root rest

let of_ast ?(loader = fun _ -> None) ast = process_toplevels ~loader empty ast

let of_source ?loader ~file src = of_ast ?loader (Parser.parse ~file src)

(* Multi-error loading: parse with recovery, then process each top-level
   item in isolation, so every syntax error and every semantic merge error
   in the file (and its includes) is reported in one run. *)
let of_source_diags ?(loader = fun _ -> None) ~file src =
  let errs = ref [] in
  let note msg loc = errs := !errs @ [ (msg, loc) ] in
  let parse_one ~file src =
    let ast, es = Parser.parse_partial ~file src in
    List.iter (fun (msg, loc) -> note msg loc) es;
    ast
  in
  let rec go root = function
    | [] -> root
    | item :: rest ->
      let root =
        try
          match item with
          | Ast.Include (file, loc) -> begin
            match loader file with
            | None ->
              note (Fmt.str "cannot resolve /include/ %S" file) loc;
              root
            | Some src -> go root (parse_one ~file src)
          end
          | item -> process_toplevels ~loader root [ item ]
        with Error (msg, loc) ->
          note msg loc;
          root
      in
      go root rest
  in
  let root = go empty (parse_one ~file src) in
  match !errs with [] -> Ok root | errs -> Result.Error errs

let memreserves_of_ast ast =
  List.filter_map (function Ast.Memreserve (a, s) -> Some (a, s) | _ -> None) ast

(* --- phandle resolution -------------------------------------------------------------- *)

let resolve_phandles t =
  (* First pass: collect referenced labels. *)
  let referenced =
    fold
      (fun _path node acc ->
        List.fold_left
          (fun acc p ->
            List.fold_left
              (fun acc piece ->
                match piece with
                | Ast.Cells { cells; _ } ->
                  List.fold_left
                    (fun acc c ->
                      match c with Ast.Cell_ref l when not (List.mem l acc) -> l :: acc | _ -> acc)
                    acc cells
                | Ast.Str _ | Ast.Bytes _ | Ast.Ref_path _ -> acc)
              acc p.p_value)
          acc node.props)
      t []
  in
  (* Assign phandle numbers, respecting already-present phandle properties. *)
  let used =
    fold
      (fun _path node acc ->
        match get_prop node "phandle" with
        | Some p -> (match prop_u32s p with [ v ] -> v :: acc | _ -> acc)
        | None -> acc)
      t []
  in
  let next = ref 1L in
  let fresh_phandle () =
    while List.mem !next used do
      next := Int64.add !next 1L
    done;
    let v = !next in
    next := Int64.add !next 1L;
    v
  in
  let assignment =
    List.map
      (fun label ->
        match find_label t label with
        | None -> error Loc.dummy "reference to undefined label &%s" label
        | Some (path, node) ->
          let v =
            match get_prop node "phandle" with
            | Some p -> (match prop_u32s p with [ v ] -> v | _ -> fresh_phandle ())
            | None -> fresh_phandle ()
          in
          (label, path, v))
      (List.rev referenced)
  in
  (* Insert phandle properties. *)
  let t =
    List.fold_left
      (fun t (_label, path, v) ->
        set_prop t ~path "phandle" [ Ast.Cells { bits = 32; cells = [ Ast.Cell_int v ] } ])
      t assignment
  in
  (* Rewrite references. *)
  let rewrite_piece piece =
    match piece with
    | Ast.Cells { bits; cells } ->
      Ast.Cells
        {
          bits;
          cells =
            List.map
              (function
                | Ast.Cell_ref l ->
                  let (_, _, v) =
                    List.find (fun (l', _, _) -> String.equal l l') assignment
                  in
                  Ast.Cell_int v
                | Ast.Cell_int _ as c -> c)
              cells;
        }
    | Ast.Str _ | Ast.Bytes _ | Ast.Ref_path _ -> piece
  in
  let rec rewrite node =
    {
      node with
      props = List.map (fun p -> { p with p_value = List.map rewrite_piece p.p_value }) node.props;
      children = List.map rewrite node.children;
    }
  in
  rewrite t

(* --- equality -------------------------------------------------------------------------- *)

let rec equal a b =
  String.equal a.name b.name
  && List.length a.props = List.length b.props
  && List.for_all2
       (fun p q ->
         String.equal p.p_name q.p_name && p.p_value = q.p_value)
       a.props b.props
  && List.length a.children = List.length b.children
  && List.for_all2 equal a.children b.children
