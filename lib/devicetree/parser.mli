(** Recursive-descent parser for DeviceTree source.

    The token-stream state and [parse_node_body] are exposed so that other
    front ends (notably the delta-module language, which embeds DTS node
    bodies) can reuse the grammar. *)

exception Error of string * Loc.t

type state = {
  toks : (Lexer.token * Loc.t) array;
  mutable pos : int;
  mutable errors : (string * Loc.t) list;
      (** Syntax errors recorded (newest first) when [recover] is set. *)
  recover : bool;
      (** When set, syntax errors are recorded and the parser resynchronizes
          on [';'] / ['}'] instead of raising {!Error}. *)
}

(** Parse a whole DTS file.  Raises {!Error} on the first syntax error. *)
val parse : file:string -> string -> Ast.file

(** Parse with panic-mode error recovery: on a syntax error, record it,
    skip to the next [';'] (or the enclosing ['}']), and keep going, so one
    run reports every syntax error in the file.  Returns the partial AST
    (bad entries dropped) and all recorded errors in source order.  Lexer
    errors are not recoverable: the result is then an empty AST with the
    single lexer diagnostic. *)
val parse_partial : file:string -> string -> Ast.file * (string * Loc.t) list

(** Parse a brace-delimited node body at the current position; consumes the
    closing brace but not a trailing semicolon. *)
val parse_node_body : state -> labels:string list -> name:string -> loc:Loc.t -> Ast.node

(** Parse and constant-fold a parenthesised C-like integer expression. *)
val parse_paren_expr : state -> int64
