module L = Sat.Lit

type answer =
  | Sat
  | Unsat of string list
  | Unknown

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

type scope = {
  act : L.t; (* activation literal guarding assertions of this scope *)
  saved_named : (string * L.t) list;
  saved_assertions : (string option * Term.t) list;
}

type cert = {
  query : int;
  verdict : [ `Sat | `Unsat ];
  steps : int; (* certificate trace length when this query was certified *)
  time : float; (* seconds spent checking this query's certificate *)
  ok : bool;
}

type cert_report = {
  enabled : bool;
  certs : cert list; (* oldest first *)
  failures : string list; (* oldest first *)
}

(* One solve attempt of one query, as recorded in a retry ladder's log. *)
type attempt = {
  attempt : int; (* 1-based; attempt 1 is the original budgeted call *)
  scale : int; (* budget multiplier this attempt ran under *)
  seed : int option;
  polarity : Sat.Solver.polarity_mode;
  result : [ `Sat | `Unsat | `Unknown ];
  conflicts : int; (* conflicts spent during this attempt *)
  time : float; (* seconds spent in this attempt *)
}

type retry_entry = {
  rquery : int; (* 0-based index of the [check] call *)
  attempts : attempt list; (* oldest first; length >= 2 *)
  recovered : bool; (* a retry turned [Unknown] into a verdict *)
}

type retry_report = {
  retry_enabled : bool;
  total_queries : int;
  retried : retry_entry list; (* oldest first; single-attempt queries omitted *)
}

type t = {
  sat : Sat.Solver.t;
  ctx : Blast.ctx;
  enums : (string, string array) Hashtbl.t;
  mutable scopes : scope list;
  mutable named : (string * L.t) list; (* live named assertions *)
  mutable assertions : (string option * Term.t) list; (* newest first *)
  mutable last_sat : bool;
  mutable budget : Sat.Solver.budget option; (* default for every [check] *)
  mutable escalation : Escalation.t option; (* default retry policy *)
  mutable any_retry_policy : bool; (* a policy was in force for some check *)
  mutable retries : retry_entry list; (* newest first *)
  (* certification state ([checker] is [Some] iff created with ~certify) *)
  checker : Sat.Checker.t option;
  mutable replay_cursor : int; (* trace steps already fed to the checker *)
  mutable n_checks : int;
  mutable certs : cert list; (* newest first *)
  mutable cert_failures : string list; (* newest first *)
}

let enum_sorts t name =
  Hashtbl.find_opt t.enums name |> Option.map Array.to_list

let create ?(certify = false) () =
  let sat = Sat.Solver.create () in
  (* Proof logging must precede every clause, including the true-literal
     unit [Blast.create] adds below. *)
  if certify then Sat.Solver.enable_proof sat;
  let enums = Hashtbl.create 16 in
  let enum_universe name =
    match Hashtbl.find_opt enums name with
    | Some u -> u
    | None -> error "undeclared enum sort %s" name
  in
  let rec t =
    lazy
      (let sort_of term =
         try
           Term.sort_of ~enum_sorts:(fun n -> enum_sorts (Lazy.force t) n) term
         with Term.Sort_error msg -> error "%s" msg
       in
       {
         sat;
         ctx = Blast.create ~sat ~enum_universe ~sort_of;
         enums;
         scopes = [];
         named = [];
         assertions = [];
         last_sat = false;
         budget = None;
         escalation = None;
         any_retry_policy = false;
         retries = [];
         checker = (if certify then Some (Sat.Checker.create ()) else None);
         replay_cursor = 0;
         n_checks = 0;
         certs = [];
         cert_failures = [];
       })
  in
  Lazy.force t

let certifying t = t.checker <> None
let inject_unsoundness t m = Sat.Solver.inject_unsoundness t.sat m

let cert_report t =
  {
    enabled = t.checker <> None;
    certs = List.rev t.certs;
    failures = List.rev t.cert_failures;
  }

let declare_enum t name universe =
  if universe = [] then error "enum sort %s must have a non-empty universe" name;
  let sorted = List.sort_uniq String.compare universe in
  if List.length sorted <> List.length universe then
    error "enum sort %s has duplicate members" name;
  match Hashtbl.find_opt t.enums name with
  | Some existing ->
    if Array.to_list existing <> universe then
      error "enum sort %s redeclared with a different universe" name
  | None -> Hashtbl.add t.enums name (Array.of_list universe)

let enum_universe t name =
  match Hashtbl.find_opt t.enums name with
  | Some u -> Array.to_list u
  | None -> error "undeclared enum sort %s" name

let check_bool_sort t term =
  let sort =
    try Term.sort_of ~enum_sorts:(enum_sorts t) term
    with Term.Sort_error msg -> error "%s" msg
  in
  match sort with
  | Term.Bool -> ()
  | s -> error "assertion has sort %a, expected Bool" Term.pp_sort s

let blast_checked t term =
  check_bool_sort t term;
  try Blast.blast_bool t.ctx term
  with Invalid_argument msg -> error "%s" msg

let assert_ t term =
  t.last_sat <- false;
  let l = blast_checked t term in
  t.assertions <- (None, term) :: t.assertions;
  match t.scopes with
  | [] -> ignore (Sat.Solver.add_clause t.sat [ l ] : bool)
  | { act; _ } :: _ -> ignore (Sat.Solver.add_clause t.sat [ L.neg act; l ] : bool)

let assert_named t name term =
  t.last_sat <- false;
  if List.mem_assoc name t.named then error "assertion name %S already in use" name;
  let l = blast_checked t term in
  let guard = L.of_var (Sat.Solver.new_var t.sat) in
  ignore (Sat.Solver.add_clause t.sat [ L.neg guard; l ] : bool);
  t.assertions <- (Some name, term) :: t.assertions;
  t.named <- (name, guard) :: t.named

let push t =
  let act = L.of_var (Sat.Solver.new_var t.sat) in
  t.scopes <- { act; saved_named = t.named; saved_assertions = t.assertions } :: t.scopes

let pop t =
  match t.scopes with
  | [] -> error "pop without matching push"
  | { act; saved_named; saved_assertions } :: rest ->
    t.last_sat <- false;
    t.scopes <- rest;
    t.named <- saved_named;
    t.assertions <- saved_assertions;
    (* Permanently disable the scope's assertions. *)
    ignore (Sat.Solver.add_clause t.sat [ L.neg act ] : bool)

let num_scopes t = List.length t.scopes

let set_budget t budget = t.budget <- budget
let set_escalation t policy = t.escalation <- policy

let retry_report t =
  {
    retry_enabled = t.any_retry_policy;
    total_queries = t.n_checks;
    retried = List.rev t.retries;
  }

(* --- model extraction (needed below by certification) ----------------------- *)

let bits_value t bits =
  let v = ref 0L in
  Array.iteri
    (fun i l -> if Sat.Solver.lit_value t.sat l then v := Int64.logor !v (Int64.shift_left 1L i))
    bits;
  !v

let model_env t : Interp.env =
  {
    bool_var =
      (fun name ->
        match Hashtbl.find_opt t.ctx.bool_vars name with
        | Some l -> Sat.Solver.lit_value t.sat l
        | None -> false);
    bv_var =
      (fun name ->
        match Hashtbl.find_opt t.ctx.bv_vars name with
        | Some bits -> bits_value t bits
        | None -> 0L);
    enum_var =
      (fun name ->
        match Hashtbl.find_opt t.ctx.enum_vars name with
        | Some (sort, bits) ->
          let universe = Hashtbl.find t.enums sort in
          let i = Int64.to_int (bits_value t bits) in
          if i < Array.length universe then universe.(i)
          else universe.(0)
        | None ->
          (* Variable never blasted: any member is a valid default, but we
             cannot know the sort here; fail loudly instead. *)
          error "enum variable %s has no value in the current model" name);
    pred =
      (fun name values ->
        let key = name ^ "(" ^ String.concat "," values ^ ")" in
        match Hashtbl.find_opt t.ctx.pred_vars key with
        | Some l -> Sat.Solver.lit_value t.sat l
        | None -> false);
  }

(* --- certification ----------------------------------------------------------- *)

(* Certify the answer just produced by [Sat.Solver.solve].  Sat answers are
   model-checked twice: once at CNF level against every input clause of the
   trace, and once at term level by re-evaluating every live assertion (and
   this call's assumptions) under the extracted model via [Interp] — the
   latter catches bit-blasting bugs the former cannot.  Unsat answers replay
   the certificate trace through the independent checker and confirm the
   conflict twice: under the full assumption set and again restricted to the
   reported unsat core.  Unknown answers prove nothing and are exempt.
   Failures are recorded (never raised): callers surface them as error[CERT]
   diagnostics. *)
let certify_answer t ck ~lits ~assumption_terms answer =
  let q = t.n_checks in
  let fail fmt =
    Fmt.kstr
      (fun m -> t.cert_failures <- Fmt.str "query %d: %s" q m :: t.cert_failures)
      fmt
  in
  let t0 = Unix.gettimeofday () in
  let proof =
    match Sat.Solver.proof t.sat with
    | Some p -> p
    | None -> assert false (* enabled at creation whenever [ck] exists *)
  in
  let failures_before = List.length t.cert_failures in
  (* Feed trace steps produced since the last certified query. *)
  while t.replay_cursor < Sat.Proof.length proof do
    (match Sat.Checker.replay ck (Sat.Proof.step proof t.replay_cursor) with
     | Ok () -> ()
     | Error m -> fail "proof step %d: %s" t.replay_cursor m);
    t.replay_cursor <- t.replay_cursor + 1
  done;
  let record verdict =
    t.certs <-
      {
        query = q;
        verdict;
        steps = Sat.Proof.length proof;
        time = Unix.gettimeofday () -. t0;
        ok = List.length t.cert_failures = failures_before;
      }
      :: t.certs
  in
  match answer with
  | Unknown -> () (* inconclusive by construction: nothing to certify *)
  | Sat ->
    (match Sat.Checker.check_model ck (fun l -> Sat.Solver.lit_value t.sat l) with
     | Ok () -> ()
     | Error m -> fail "%s" m);
    let env = model_env t in
    let eval_true what name term =
      match Interp.eval env term with
      | Interp.V_bool true -> ()
      | Interp.V_bool false -> fail "model falsifies %s %s" what name
      | _ -> fail "%s %s is not boolean under the model" what name
      | exception Interp.Eval_error m -> fail "evaluating %s %s: %s" what name m
      | exception Error m -> fail "evaluating %s %s: %s" what name m
    in
    List.iter
      (fun (name, term) ->
        let name = match name with Some n -> Fmt.str "%S" n | None -> "(unnamed)" in
        eval_true "assertion" name term)
      t.assertions;
    List.iteri
      (fun i term -> eval_true "assumption" (string_of_int i) term)
      assumption_terms;
    record `Sat
  | Unsat names ->
    (match Sat.Checker.check_conflict ck lits with
     | Ok () -> ()
     | Error m -> fail "%s" m);
    let core = Sat.Solver.unsat_core t.sat in
    (match Sat.Checker.check_conflict ck core with
     | Ok () -> ()
     | Error m ->
       fail "unsat core [%s] not confirmed: %s" (String.concat "; " names) m);
    record `Unsat

(* Decide satisfiability, escalating on [Unknown].  The original attempt
   runs under the base budget with default heuristics; each rung of the
   retry policy re-runs the same query with a scaled budget and diversified
   restart parameters.  The SAT solver keeps its learnt clauses across
   attempts, so every retry resumes from all the work done so far.
   Certification (below) sees only the final answer — whichever attempt
   concluded produced the model/proof being certified. *)
let check ?(assumptions = []) ?budget ?retry t =
  let budget = match budget with Some _ as b -> b | None -> t.budget in
  let policy = match retry with Some _ as r -> r | None -> t.escalation in
  let extra = List.map (fun term -> (term, blast_checked t term)) assumptions in
  let lits =
    List.map (fun s -> s.act) t.scopes
    @ List.map snd t.named
    @ List.map snd extra
  in
  let solve_attempt ~attempt ~scale ?seed ?(polarity = Sat.Solver.Phase_saved)
      ?var_decay budget =
    let c0 = Sat.Solver.num_conflicts t.sat in
    let t0 = Unix.gettimeofday () in
    let r =
      Sat.Solver.solve ~assumptions:lits ?budget ?seed ~polarity_mode:polarity
        ?var_decay t.sat
    in
    {
      attempt;
      scale;
      seed;
      polarity;
      result =
        (match r with
         | Sat.Solver.Sat -> `Sat
         | Sat.Solver.Unsat -> `Unsat
         | Sat.Solver.Unknown -> `Unknown);
      conflicts = Sat.Solver.num_conflicts t.sat - c0;
      time = Unix.gettimeofday () -. t0;
    }
  in
  let first = solve_attempt ~attempt:1 ~scale:1 budget in
  let attempts =
    match (first.result, policy) with
    | `Unknown, Some { Escalation.steps = _ :: _ as steps } ->
      let rec escalate acc n = function
        | [] -> acc
        | (step : Escalation.step) :: rest ->
          let a =
            solve_attempt ~attempt:n ~scale:step.Escalation.scale
              ~seed:step.Escalation.seed ~polarity:step.Escalation.polarity
              ?var_decay:step.Escalation.var_decay
              (Escalation.scale_budget budget step.Escalation.scale)
          in
          if a.result = `Unknown then escalate (a :: acc) (n + 1) rest
          else a :: acc
      in
      List.rev (escalate [ first ] 2 steps)
    | _ -> [ first ]
  in
  if policy <> None then t.any_retry_policy <- true;
  (match attempts with
   | _ :: _ :: _ ->
     let last = List.nth attempts (List.length attempts - 1) in
     t.retries <-
       { rquery = t.n_checks; attempts; recovered = last.result <> `Unknown }
       :: t.retries
   | _ -> ());
  let answer =
    match (List.nth attempts (List.length attempts - 1)).result with
    | `Sat ->
      t.last_sat <- true;
      Sat
    | `Unsat ->
      t.last_sat <- false;
      let core = Sat.Solver.unsat_core t.sat in
      let names =
        List.filter_map
          (fun (name, guard) -> if List.mem guard core then Some name else None)
          t.named
      in
      Unsat names
    | `Unknown ->
      t.last_sat <- false;
      Unknown
  in
  (match t.checker with
   | Some ck -> certify_answer t ck ~lits ~assumption_terms:assumptions answer
   | None -> ());
  t.n_checks <- t.n_checks + 1;
  answer

let forall_enum t ~sort f =
  Term.and_ (List.map (fun c -> f (Term.enum ~sort c)) (enum_universe t sort))

let exists_enum t ~sort f =
  Term.or_ (List.map (fun c -> f (Term.enum ~sort c)) (enum_universe t sort))

(* --- models ----------------------------------------------------------------- *)

let model_eval t term =
  if not t.last_sat then error "no model available (last answer was not Sat)";
  (* Sort-check first so evaluation errors are reported as such. *)
  (try ignore (Term.sort_of ~enum_sorts:(enum_sorts t) term : Term.sort)
   with Term.Sort_error msg -> error "%s" msg);
  try Interp.eval (model_env t) term
  with Interp.Eval_error msg -> error "%s" msg

let get_bool t term =
  match model_eval t term with
  | Interp.V_bool b -> b
  | v -> error "expected a boolean value, got %a" Interp.pp_value v

let get_bv t term =
  match model_eval t term with
  | Interp.V_bv { value; _ } -> value
  | v -> error "expected a bit-vector value, got %a" Interp.pp_value v

let get_enum t term =
  match model_eval t term with
  | Interp.V_enum { value; _ } -> value
  | v -> error "expected an enum value, got %a" Interp.pp_value v

(* Smallest value of a bit-vector term consistent with the live assertions,
   by binary search over check-sat calls (each probe in its own scope) —
   the incremental-solving pattern an optimizing solver runs internally. *)
let minimize ?(assumptions = []) t term =
  let width =
    match Term.sort_of ~enum_sorts:(enum_sorts t) term with
    | Term.Bitvec w -> w
    | s -> error "minimize: expected a bit-vector term, got %a" Term.pp_sort s
    | exception Term.Sort_error msg -> error "%s" msg
  in
  match check ~assumptions t with
  | Unsat _ | Unknown -> None
  | Sat ->
    (* Unsigned binary search: [lo] is a proven lower bound, [hi] is
       achievable; every probe either tightens [hi] to a model value or
       raises [lo] past the midpoint. *)
    let lo = ref 0L and hi = ref (get_bv t term) in
    while Int64.unsigned_compare !lo !hi < 0 do
      let mid = Int64.add !lo (Int64.shift_right_logical (Int64.sub !hi !lo) 1) in
      push t;
      assert_ t (Term.ule term (Term.bv ~width mid));
      (match check ~assumptions t with
       | Sat -> hi := get_bv t term
       | Unsat _ -> lo := Int64.add mid 1L
       (* budget exhausted: stop the descent, keep the best model value *)
       | Unknown -> lo := !hi);
      pop t
    done;
    Some !hi

let assertions t = List.rev t.assertions

(* SMT-LIB2-flavoured dump of the live assertion set: sort and function
   declarations synthesised from the terms, then one (assert ...) per live
   assertion (named ones with :named attributes). *)
let pp_smtlib ppf t =
  let live = assertions t in
  (* Collect declarations from the terms. *)
  let bools = Hashtbl.create 16
  and bvs = Hashtbl.create 16
  and enums = Hashtbl.create 16
  and preds = Hashtbl.create 16 in
  let rec collect (term : Term.t) =
    match term with
    | Term.Bool_var v -> Hashtbl.replace bools v ()
    | Term.Bv_var (v, w) -> Hashtbl.replace bvs v w
    | Term.Enum_var (v, sort) -> Hashtbl.replace enums v sort
    | Term.Pred (name, args) ->
      Hashtbl.replace preds name (List.length args);
      List.iter collect args
    | Term.Not a | Term.Bv_unop (_, a) | Term.Bv_extract { arg = a; _ }
    | Term.Bv_extend { arg = a; _ } ->
      collect a
    | Term.And ts | Term.Or ts | Term.Distinct ts -> List.iter collect ts
    | Term.Implies (a, b) | Term.Iff (a, b) | Term.Xor (a, b) | Term.Eq (a, b)
    | Term.Bv_binop (_, a, b) | Term.Bv_cmp (_, a, b) | Term.Bv_concat (a, b) ->
      collect a;
      collect b
    | Term.Ite (c, a, b) ->
      collect c;
      collect a;
      collect b
    | Term.True | Term.False | Term.Bv_const _ | Term.Enum_const _ -> ()
  in
  List.iter (fun (_, term) -> collect term) live;
  let used_sorts = Hashtbl.create 8 in
  Hashtbl.iter (fun _ sort -> Hashtbl.replace used_sorts sort ()) enums;
  Fmt.pf ppf "(set-logic QF_BV) ; enums/predicates grounded over finite sorts@.";
  Hashtbl.iter
    (fun sort () ->
      match Hashtbl.find_opt t.enums sort with
      | Some universe ->
        Fmt.pf ppf "; sort %s = { %s }@." sort
          (String.concat " " (Array.to_list universe))
      | None -> ())
    used_sorts;
  Hashtbl.iter (fun v () -> Fmt.pf ppf "(declare-const %s Bool)@." v) bools;
  Hashtbl.iter (fun v w -> Fmt.pf ppf "(declare-const %s (_ BitVec %d))@." v w) bvs;
  Hashtbl.iter (fun v sort -> Fmt.pf ppf "(declare-const %s %s)@." v sort) enums;
  Hashtbl.iter
    (fun name arity ->
      Fmt.pf ppf "(declare-fun %s (%s) Bool)@." name
        (String.concat " " (List.init arity (fun _ -> "String"))))
    preds;
  List.iter
    (fun (name, term) ->
      match name with
      | Some n -> Fmt.pf ppf "(assert (! %a :named %S))@." Term.pp term n
      | None -> Fmt.pf ppf "(assert %a)@." Term.pp term)
    live;
  Fmt.pf ppf "(check-sat)@."

let pp_stats ppf t = Sat.Solver.pp_stats ppf t.sat
