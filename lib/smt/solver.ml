module L = Sat.Lit

type answer =
  | Sat
  | Unsat of string list
  | Unknown

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

type scope = {
  act : L.t; (* activation literal guarding assertions of this scope *)
  saved_named : (string * L.t) list;
  saved_assertions : (string option * Term.t) list;
}

type t = {
  sat : Sat.Solver.t;
  ctx : Blast.ctx;
  enums : (string, string array) Hashtbl.t;
  mutable scopes : scope list;
  mutable named : (string * L.t) list; (* live named assertions *)
  mutable assertions : (string option * Term.t) list; (* newest first *)
  mutable last_sat : bool;
  mutable budget : Sat.Solver.budget option; (* default for every [check] *)
}

let enum_sorts t name =
  Hashtbl.find_opt t.enums name |> Option.map Array.to_list

let create () =
  let sat = Sat.Solver.create () in
  let enums = Hashtbl.create 16 in
  let enum_universe name =
    match Hashtbl.find_opt enums name with
    | Some u -> u
    | None -> error "undeclared enum sort %s" name
  in
  let rec t =
    lazy
      (let sort_of term =
         try
           Term.sort_of ~enum_sorts:(fun n -> enum_sorts (Lazy.force t) n) term
         with Term.Sort_error msg -> error "%s" msg
       in
       {
         sat;
         ctx = Blast.create ~sat ~enum_universe ~sort_of;
         enums;
         scopes = [];
         named = [];
         assertions = [];
         last_sat = false;
         budget = None;
       })
  in
  Lazy.force t

let declare_enum t name universe =
  if universe = [] then error "enum sort %s must have a non-empty universe" name;
  let sorted = List.sort_uniq String.compare universe in
  if List.length sorted <> List.length universe then
    error "enum sort %s has duplicate members" name;
  match Hashtbl.find_opt t.enums name with
  | Some existing ->
    if Array.to_list existing <> universe then
      error "enum sort %s redeclared with a different universe" name
  | None -> Hashtbl.add t.enums name (Array.of_list universe)

let enum_universe t name =
  match Hashtbl.find_opt t.enums name with
  | Some u -> Array.to_list u
  | None -> error "undeclared enum sort %s" name

let check_bool_sort t term =
  let sort =
    try Term.sort_of ~enum_sorts:(enum_sorts t) term
    with Term.Sort_error msg -> error "%s" msg
  in
  match sort with
  | Term.Bool -> ()
  | s -> error "assertion has sort %a, expected Bool" Term.pp_sort s

let blast_checked t term =
  check_bool_sort t term;
  try Blast.blast_bool t.ctx term
  with Invalid_argument msg -> error "%s" msg

let assert_ t term =
  t.last_sat <- false;
  let l = blast_checked t term in
  t.assertions <- (None, term) :: t.assertions;
  match t.scopes with
  | [] -> ignore (Sat.Solver.add_clause t.sat [ l ] : bool)
  | { act; _ } :: _ -> ignore (Sat.Solver.add_clause t.sat [ L.neg act; l ] : bool)

let assert_named t name term =
  t.last_sat <- false;
  if List.mem_assoc name t.named then error "assertion name %S already in use" name;
  let l = blast_checked t term in
  let guard = L.of_var (Sat.Solver.new_var t.sat) in
  ignore (Sat.Solver.add_clause t.sat [ L.neg guard; l ] : bool);
  t.assertions <- (Some name, term) :: t.assertions;
  t.named <- (name, guard) :: t.named

let push t =
  let act = L.of_var (Sat.Solver.new_var t.sat) in
  t.scopes <- { act; saved_named = t.named; saved_assertions = t.assertions } :: t.scopes

let pop t =
  match t.scopes with
  | [] -> error "pop without matching push"
  | { act; saved_named; saved_assertions } :: rest ->
    t.last_sat <- false;
    t.scopes <- rest;
    t.named <- saved_named;
    t.assertions <- saved_assertions;
    (* Permanently disable the scope's assertions. *)
    ignore (Sat.Solver.add_clause t.sat [ L.neg act ] : bool)

let num_scopes t = List.length t.scopes

let set_budget t budget = t.budget <- budget

let check ?(assumptions = []) ?budget t =
  let budget = match budget with Some _ as b -> b | None -> t.budget in
  let extra = List.map (fun term -> (term, blast_checked t term)) assumptions in
  let lits =
    List.map (fun s -> s.act) t.scopes
    @ List.map snd t.named
    @ List.map snd extra
  in
  match Sat.Solver.solve ~assumptions:lits ?budget t.sat with
  | Sat.Solver.Sat ->
    t.last_sat <- true;
    Sat
  | Sat.Solver.Unsat ->
    t.last_sat <- false;
    let core = Sat.Solver.unsat_core t.sat in
    let names =
      List.filter_map
        (fun (name, guard) -> if List.mem guard core then Some name else None)
        t.named
    in
    Unsat names
  | Sat.Solver.Unknown ->
    t.last_sat <- false;
    Unknown

let forall_enum t ~sort f =
  Term.and_ (List.map (fun c -> f (Term.enum ~sort c)) (enum_universe t sort))

let exists_enum t ~sort f =
  Term.or_ (List.map (fun c -> f (Term.enum ~sort c)) (enum_universe t sort))

(* --- models ----------------------------------------------------------------- *)

let bits_value t bits =
  let v = ref 0L in
  Array.iteri
    (fun i l -> if Sat.Solver.lit_value t.sat l then v := Int64.logor !v (Int64.shift_left 1L i))
    bits;
  !v

let model_env t : Interp.env =
  {
    bool_var =
      (fun name ->
        match Hashtbl.find_opt t.ctx.bool_vars name with
        | Some l -> Sat.Solver.lit_value t.sat l
        | None -> false);
    bv_var =
      (fun name ->
        match Hashtbl.find_opt t.ctx.bv_vars name with
        | Some bits -> bits_value t bits
        | None -> 0L);
    enum_var =
      (fun name ->
        match Hashtbl.find_opt t.ctx.enum_vars name with
        | Some (sort, bits) ->
          let universe = Hashtbl.find t.enums sort in
          let i = Int64.to_int (bits_value t bits) in
          if i < Array.length universe then universe.(i)
          else universe.(0)
        | None ->
          (* Variable never blasted: any member is a valid default, but we
             cannot know the sort here; fail loudly instead. *)
          error "enum variable %s has no value in the current model" name);
    pred =
      (fun name values ->
        let key = name ^ "(" ^ String.concat "," values ^ ")" in
        match Hashtbl.find_opt t.ctx.pred_vars key with
        | Some l -> Sat.Solver.lit_value t.sat l
        | None -> false);
  }

let model_eval t term =
  if not t.last_sat then error "no model available (last answer was not Sat)";
  (* Sort-check first so evaluation errors are reported as such. *)
  (try ignore (Term.sort_of ~enum_sorts:(enum_sorts t) term : Term.sort)
   with Term.Sort_error msg -> error "%s" msg);
  try Interp.eval (model_env t) term
  with Interp.Eval_error msg -> error "%s" msg

let get_bool t term =
  match model_eval t term with
  | Interp.V_bool b -> b
  | v -> error "expected a boolean value, got %a" Interp.pp_value v

let get_bv t term =
  match model_eval t term with
  | Interp.V_bv { value; _ } -> value
  | v -> error "expected a bit-vector value, got %a" Interp.pp_value v

let get_enum t term =
  match model_eval t term with
  | Interp.V_enum { value; _ } -> value
  | v -> error "expected an enum value, got %a" Interp.pp_value v

(* Smallest value of a bit-vector term consistent with the live assertions,
   by binary search over check-sat calls (each probe in its own scope) —
   the incremental-solving pattern an optimizing solver runs internally. *)
let minimize ?(assumptions = []) t term =
  let width =
    match Term.sort_of ~enum_sorts:(enum_sorts t) term with
    | Term.Bitvec w -> w
    | s -> error "minimize: expected a bit-vector term, got %a" Term.pp_sort s
    | exception Term.Sort_error msg -> error "%s" msg
  in
  match check ~assumptions t with
  | Unsat _ | Unknown -> None
  | Sat ->
    (* Unsigned binary search: [lo] is a proven lower bound, [hi] is
       achievable; every probe either tightens [hi] to a model value or
       raises [lo] past the midpoint. *)
    let lo = ref 0L and hi = ref (get_bv t term) in
    while Int64.unsigned_compare !lo !hi < 0 do
      let mid = Int64.add !lo (Int64.shift_right_logical (Int64.sub !hi !lo) 1) in
      push t;
      assert_ t (Term.ule term (Term.bv ~width mid));
      (match check ~assumptions t with
       | Sat -> hi := get_bv t term
       | Unsat _ -> lo := Int64.add mid 1L
       (* budget exhausted: stop the descent, keep the best model value *)
       | Unknown -> lo := !hi);
      pop t
    done;
    Some !hi

let assertions t = List.rev t.assertions

(* SMT-LIB2-flavoured dump of the live assertion set: sort and function
   declarations synthesised from the terms, then one (assert ...) per live
   assertion (named ones with :named attributes). *)
let pp_smtlib ppf t =
  let live = assertions t in
  (* Collect declarations from the terms. *)
  let bools = Hashtbl.create 16
  and bvs = Hashtbl.create 16
  and enums = Hashtbl.create 16
  and preds = Hashtbl.create 16 in
  let rec collect (term : Term.t) =
    match term with
    | Term.Bool_var v -> Hashtbl.replace bools v ()
    | Term.Bv_var (v, w) -> Hashtbl.replace bvs v w
    | Term.Enum_var (v, sort) -> Hashtbl.replace enums v sort
    | Term.Pred (name, args) ->
      Hashtbl.replace preds name (List.length args);
      List.iter collect args
    | Term.Not a | Term.Bv_unop (_, a) | Term.Bv_extract { arg = a; _ }
    | Term.Bv_extend { arg = a; _ } ->
      collect a
    | Term.And ts | Term.Or ts | Term.Distinct ts -> List.iter collect ts
    | Term.Implies (a, b) | Term.Iff (a, b) | Term.Xor (a, b) | Term.Eq (a, b)
    | Term.Bv_binop (_, a, b) | Term.Bv_cmp (_, a, b) | Term.Bv_concat (a, b) ->
      collect a;
      collect b
    | Term.Ite (c, a, b) ->
      collect c;
      collect a;
      collect b
    | Term.True | Term.False | Term.Bv_const _ | Term.Enum_const _ -> ()
  in
  List.iter (fun (_, term) -> collect term) live;
  let used_sorts = Hashtbl.create 8 in
  Hashtbl.iter (fun _ sort -> Hashtbl.replace used_sorts sort ()) enums;
  Fmt.pf ppf "(set-logic QF_BV) ; enums/predicates grounded over finite sorts@.";
  Hashtbl.iter
    (fun sort () ->
      match Hashtbl.find_opt t.enums sort with
      | Some universe ->
        Fmt.pf ppf "; sort %s = { %s }@." sort
          (String.concat " " (Array.to_list universe))
      | None -> ())
    used_sorts;
  Hashtbl.iter (fun v () -> Fmt.pf ppf "(declare-const %s Bool)@." v) bools;
  Hashtbl.iter (fun v w -> Fmt.pf ppf "(declare-const %s (_ BitVec %d))@." v w) bvs;
  Hashtbl.iter (fun v sort -> Fmt.pf ppf "(declare-const %s %s)@." v sort) enums;
  Hashtbl.iter
    (fun name arity ->
      Fmt.pf ppf "(declare-fun %s (%s) Bool)@." name
        (String.concat " " (List.init arity (fun _ -> "String"))))
    preds;
  List.iter
    (fun (name, term) ->
      match name with
      | Some n -> Fmt.pf ppf "(assert (! %a :named %S))@." Term.pp term n
      | None -> Fmt.pf ppf "(assert %a)@." Term.pp term)
    live;
  Fmt.pf ppf "(check-sat)@."

let pp_stats ppf t = Sat.Solver.pp_stats ppf t.sat
