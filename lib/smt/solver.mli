(** Incremental SMT solver over the {!Term} language — the drop-in stand-in
    for the Z3 instance the paper drives through its Python API.

    Supports the features llhsc relies on (§IV, §VI): incremental addition of
    constraints to the same solver instance, named assertions with unsat-core
    extraction, push/pop scopes, model extraction, and finite expansion of
    universal quantifiers over enumeration sorts. *)

type t

(** Answer of {!check}.  On [Unsat], the core lists the names of the named
    assertions (see {!assert_named}) that participate in the conflict.
    [Unknown] means the solver's resource budget (see {!set_budget} and the
    [?budget] argument of {!check}) ran out before a verdict: the query is
    inconclusive, and no model or core is available. *)
type answer =
  | Sat
  | Unsat of string list
  | Unknown

exception Error of string

(** With [~certify:true] the solver certifies every {!check} answer as it is
    produced: the underlying SAT solver records a DRUP-style proof trace
    (see {!Sat.Proof}), and an independent unit-propagation checker
    ({!Sat.Checker}) validates each verdict — models at both CNF and term
    level for [Sat], proof replay plus unsat-core confirmation for [Unsat];
    [Unknown] answers are exempt.  Certification never changes an answer:
    failures accumulate in {!cert_report} for the caller to surface (the
    llhsc pipeline turns them into [error[CERT]] diagnostics). *)
val create : ?certify:bool -> unit -> t

val certifying : t -> bool

(** [declare_enum t name universe] declares a finite sort.  Redeclaring with
    a different universe raises {!Error}; redeclaring identically is a
    no-op.  The universe must be non-empty and duplicate-free. *)
val declare_enum : t -> string -> string list -> unit

(** Universe of a declared enum sort. *)
val enum_universe : t -> string -> string list

(** Assert a boolean term at the current scope.  Sort errors raise {!Error}. *)
val assert_ : t -> Term.t -> unit

(** Assert a boolean term under a name; named assertions can appear in unsat
    cores.  Names must be unique among live assertions. *)
val assert_named : t -> string -> Term.t -> unit

(** Open a scope: assertions added after [push] are retracted by {!pop}. *)
val push : t -> unit

(** Close the innermost scope.  Raises {!Error} if no scope is open. *)
val pop : t -> unit

(** Current scope depth. *)
val num_scopes : t -> int

(** Decide satisfiability of all live assertions, plus optional extra
    assumptions for this call only.  [?budget] overrides the solver-level
    default budget (see {!set_budget}) for this call; [?retry] overrides the
    solver-level escalation policy (see {!set_escalation}).  With a retry
    policy in force, an [Unknown] first attempt is re-run up the ladder —
    scaled budget, diversified restart — until a rung concludes or the
    ladder is exhausted; every attempt is recorded (see {!retry_report}),
    and certification applies to whichever attempt produced the final
    answer. *)
val check :
  ?assumptions:Term.t list ->
  ?budget:Sat.Solver.budget ->
  ?retry:Escalation.t ->
  t ->
  answer

(** Install a default resource budget applied to every subsequent {!check}
    (and the checks done by {!minimize}); [None] removes it.  With a budget
    in place, long-running queries degrade to [Unknown] instead of
    hanging. *)
val set_budget : t -> Sat.Solver.budget option -> unit

(** Install a default retry-with-escalation policy applied to every
    subsequent {!check} (including the probes of {!minimize}); [None]
    removes it. *)
val set_escalation : t -> Escalation.t option -> unit

(** {1 Quantifier expansion over finite sorts} *)

(** [forall_enum t ~sort f] is the conjunction of [f c] for every constant
    [c] of the declared enum [sort]. *)
val forall_enum : t -> sort:string -> (Term.t -> Term.t) -> Term.t

(** [exists_enum t ~sort f] is the disjunction over the sort's constants. *)
val exists_enum : t -> sort:string -> (Term.t -> Term.t) -> Term.t

(** {1 Models}

    Valid after a [Sat] answer, until the next [check]/[assert_]. *)

(** Evaluate any term under the current model.  Raises {!Error} if the last
    answer was not [Sat] or the term is ill-sorted. *)
val model_eval : t -> Term.t -> Interp.value

val get_bool : t -> Term.t -> bool
val get_bv : t -> Term.t -> int64
val get_enum : t -> Term.t -> string

(** {1 Optimization} *)

(** Smallest value of a bit-vector term consistent with the live assertions
    (and the optional extra assumptions); [None] when unsatisfiable or when
    the very first budgeted probe is inconclusive.  Under a budget the
    result is best-effort: an [Unknown] probe mid-descent stops early and
    the smallest model value seen so far is returned.  Implemented by
    descent over incremental check-sat probes. *)
val minimize : ?assumptions:Term.t list -> t -> Term.t -> int64 option

(** {1 Introspection} *)

(** The live assertions, oldest first; named ones carry their name. *)
val assertions : t -> (string option * Term.t) list

(** SMT-LIB2-flavoured dump of the live assertion set (declarations
    synthesised from the terms; enum sorts listed as comments). *)
val pp_smtlib : Format.formatter -> t -> unit

(** Statistics of the underlying SAT solver. *)
val pp_stats : Format.formatter -> t -> unit

(** {1 Certification} *)

(** Stats for one certified query. *)
type cert = {
  query : int; (** 0-based index of the {!check} call *)
  verdict : [ `Sat | `Unsat ];
  steps : int; (** certificate trace length when the query was certified *)
  time : float; (** seconds spent checking this query's certificate *)
  ok : bool;
}

type cert_report = {
  enabled : bool;
  certs : cert list; (** oldest first; [Unknown] answers never appear *)
  failures : string list; (** oldest first; empty iff every verdict certified *)
}

(** Certification results accumulated so far.  [{enabled = false; _}] when
    the solver was created without [~certify:true]. *)
val cert_report : t -> cert_report

(** {1 Retry ladder statistics} *)

(** One solve attempt of one query, as recorded when a retry policy is in
    force. *)
type attempt = {
  attempt : int; (** 1-based; attempt 1 is the original budgeted call *)
  scale : int; (** budget multiplier this attempt ran under *)
  seed : int option;
  polarity : Sat.Solver.polarity_mode;
  result : [ `Sat | `Unsat | `Unknown ];
  conflicts : int; (** conflicts spent during this attempt *)
  time : float; (** seconds spent in this attempt *)
}

type retry_entry = {
  rquery : int; (** 0-based index of the {!check} call *)
  attempts : attempt list; (** oldest first; length >= 2 *)
  recovered : bool; (** a retry turned [Unknown] into a verdict *)
}

type retry_report = {
  retry_enabled : bool; (** a retry policy was in force for some check *)
  total_queries : int;
  retried : retry_entry list;
      (** oldest first; queries that concluded on attempt 1 are omitted *)
}

(** Escalation statistics accumulated so far: every query that needed more
    than one attempt, with its full per-attempt log. *)
val retry_report : t -> retry_report

(** Test-only: corrupt the underlying SAT solver (see
    {!Sat.Solver.inject_unsoundness}) so certification tests can
    demonstrate that wrong verdicts are caught. *)
val inject_unsoundness : t -> Sat.Solver.unsound_mutation -> unit
