(** Retry-with-escalation policies for inconclusive solver queries.

    A budgeted {!Solver.check} that runs out of resources answers [Unknown]
    — a dead end for the caller.  An escalation ladder turns that dead end
    into a retry discipline: the query is re-run up the ladder, each rung
    with a larger resource budget and a diversified restart (fresh seed,
    different initial phases, different VSIDS decay), until a rung concludes
    or the ladder is exhausted.  Every rung is deterministic, so a recovered
    verdict is reproducible — and the certification machinery observes
    whichever attempt concludes, exactly as it would a first-try verdict. *)

(** One rung of the ladder: how to re-run the query after an [Unknown]. *)
type step = {
  scale : int;
      (** multiply every counter of the base budget (and the time limit) by
          this factor; the base budget is the one the original attempt ran
          under *)
  seed : int;  (** deterministic diversification seed for this rung *)
  polarity : Sat.Solver.polarity_mode;  (** initial phases for this rung *)
  var_decay : float option;
      (** EVSIDS decay override for this rung ([None] = solver default) *)
}

(** A policy is the list of retry rungs, in escalation order.  The original
    attempt is not part of the list: a policy with [n] steps allows up to
    [n + 1] attempts in total. *)
type t = { steps : step list }

(** No retries: every [Unknown] is final. *)
val none : t

(** The default ladder — two retries at budget × 4 (inverted phases) and
    budget × 16 (seeded random phases, slower decay), i.e. 3 attempts with
    budget × {1, 4, 16}. *)
val default : t

(** [ladder ~attempts ()] builds a policy allowing [attempts] total
    attempts (so [attempts - 1] retries), with budgets scaled by
    [base]^(rung) (default [base = 4]) and deterministically varied
    seeds/polarities/decays per rung.  [attempts <= 1] yields {!none};
    [ladder ~attempts:3 ()] is {!default}'s shape. *)
val ladder : ?base:int -> attempts:int -> unit -> t

(** Scale a base budget by a rung's factor (saturating); [None] — an
    unlimited budget — stays unlimited. *)
val scale_budget :
  Sat.Solver.budget option -> int -> Sat.Solver.budget option

val pp_polarity : Format.formatter -> Sat.Solver.polarity_mode -> unit
val pp_step : Format.formatter -> step -> unit
