(* Retry-with-escalation policies for inconclusive solver queries.

   Rung parameters are chosen to make consecutive attempts explore
   *different* parts of the search tree, not just search longer: budgets
   grow geometrically (x4 per rung, so three attempts cost at most ~1.3x a
   single run at the top budget), phases flip then randomize, and the VSIDS
   decay alternates between aggressive (0.8: the heuristic chases recent
   conflicts) and conservative (0.99: activity accumulates globally). *)

type step = {
  scale : int;
  seed : int;
  polarity : Sat.Solver.polarity_mode;
  var_decay : float option;
}

type t = { steps : step list }

let none = { steps = [] }

(* Per-rung seeds: any fixed distinct constants work; these are splitmix64
   increments, convenient well-mixed odd numbers. *)
let rung_seed rung = 0x9E3779B9 + (rung * 0x85EBCA6B)

let rung_polarity rung =
  match rung mod 4 with
  | 0 -> Sat.Solver.Phase_inverted
  | 1 -> Sat.Solver.Phase_random
  | 2 -> Sat.Solver.Phase_false
  | _ -> Sat.Solver.Phase_true

let rung_decay rung = Some (if rung mod 2 = 0 then 0.8 else 0.99)

let ladder ?(base = 4) ~attempts () =
  if base < 2 then invalid_arg "Escalation.ladder: base must be >= 2";
  if attempts <= 1 then none
  else
    {
      steps =
        List.init (attempts - 1) (fun rung ->
            {
              scale = int_of_float (float_of_int base ** float_of_int (rung + 1));
              seed = rung_seed rung;
              polarity = rung_polarity rung;
              var_decay = rung_decay rung;
            });
    }

let default = ladder ~attempts:3 ()

let scale_budget budget scale =
  match budget with
  | None -> None
  | Some (b : Sat.Solver.budget) ->
    let counter = Option.map (fun n ->
        (* Saturating multiply: budgets near max_int must not wrap. *)
        if n > max_int / max 1 scale then max_int else n * scale)
    in
    Some
      {
        Sat.Solver.max_conflicts = counter b.Sat.Solver.max_conflicts;
        max_decisions = counter b.Sat.Solver.max_decisions;
        max_propagations = counter b.Sat.Solver.max_propagations;
        time_limit =
          Option.map (fun s -> s *. float_of_int scale) b.Sat.Solver.time_limit;
      }

let pp_polarity ppf (m : Sat.Solver.polarity_mode) =
  Fmt.string ppf
    (match m with
     | Sat.Solver.Phase_saved -> "saved"
     | Phase_false -> "false"
     | Phase_true -> "true"
     | Phase_inverted -> "inverted"
     | Phase_random -> "random")

let pp_step ppf s =
  Fmt.pf ppf "x%d seed=%#x polarity=%a decay=%s" s.scale s.seed pp_polarity
    s.polarity
    (match s.var_decay with Some d -> Fmt.str "%.2f" d | None -> "default")
