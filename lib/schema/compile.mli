(** Compilation of binding schemas and DT bindings into SMT constraints —
    the paper's syntactic checker (§IV-B, constraints (1)–(6)).

    Schema rules become implications guarded by the presence predicate R;
    the binding instance contributes proof obligations (actual values,
    coverage predicate C, and the closure axiom identifying R with C).
    Every assertion is named so unsatisfiable cores map back to the
    conflicting rules. *)

(** Stable assertion/rule name, e.g. ["memory:const:device_type@/memory@0"]. *)
val rule : schema_id:string -> path:string -> string -> string -> string

(** Assert all constraints and obligations for one node/schema pair into the
    solver at the current scope. *)
val compile_node :
  Smt.Solver.t -> schema:Binding.t -> path:string -> Devicetree.Tree.t -> unit

(** Check one node in a fresh scope.  [`Invalid core] carries the core rule
    names of the violation; [`Inconclusive] means the solver's resource
    budget ran out before a verdict (only possible when a budget is
    installed on the solver). *)
val check_node :
  Smt.Solver.t ->
  schema:Binding.t ->
  path:string ->
  Devicetree.Tree.t ->
  [ `Valid | `Invalid of string list | `Inconclusive ]

(** Compile every applicable node/schema pair into the solver at the
    current scope without checking — for exporting the constraint problem
    (e.g. via [Smt.Solver.pp_smtlib]). *)
val compile_tree : Smt.Solver.t -> schemas:Binding.t list -> Devicetree.Tree.t -> unit

(** Check a whole tree against a schema set, incrementally on one solver
    instance; returns (path, core) for each failing node.  Inconclusive
    (budget-exhausted) nodes report the pseudo-core
    ["inconclusive:budget-exhausted"]. *)
val check_tree :
  Smt.Solver.t -> schemas:Binding.t list -> Devicetree.Tree.t -> (string * string list) list
