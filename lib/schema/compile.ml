(* Compilation of binding schemas and DT bindings into SMT constraints —
   the paper's syntactic checker (§IV-B).

   For a node at [path] checked against schema [s], we build:

   - an enum sort of property names (the "hybrid theory" string encoding),
     whose universe is every name the schema or the node mentions;
   - a Boolean variable [node|path] denoting validity of the node;
   - presence predicate R over property names;
   - schema constraints:
       (1)  R(p) -> value_p = const          for each const-constrained p
       (2,3) node -> R(p)                    for each required p
            plus item-count bounds as bit-vector constraints;
   - proof obligations extracted from the binding instance:
       (4)  value_p = actual                 for each present p
       (5)  forall x. C(x) <-> (x = p1 \/ ... \/ x = pn)   (present props)
       (6)  forall x. (C(x) -> R(x)) /\ (~C(x) -> ~R(x))   (closure)

   Every assertion is named; an unsatisfiable core maps back to the schema
   rules and obligations that conflict, which is how violations are
   reported.  All constraints go into one incremental solver instance
   (scoped by push/pop), matching the paper's use of Z3 (§VI). *)

module T = Devicetree.Tree
module Term = Smt.Term
module Solver = Smt.Solver

(* All symbols are scoped by schema id and node path so that checking the
   same node against several schemas (or re-checking in a later scope) never
   collides on sorts or variables. *)
let prop_sort ~sid ~path = Printf.sprintf "props|%s|%s" sid path
let value_sort ~sid ~path prop = Printf.sprintf "val|%s|%s|%s" sid path prop
let node_var ~path = Term.bool_var ("node|" ^ path)
let r_pred ~sid ~path x = Term.pred (Printf.sprintf "R|%s|%s" sid path) [ x ]
let c_pred ~sid ~path x = Term.pred (Printf.sprintf "C|%s|%s" sid path) [ x ]
let count_var ~sid ~path prop = Term.bv_var (Printf.sprintf "cnt|%s|%s|%s" sid path prop) ~width:16
let cell_var ~sid ~path prop i =
  Term.bv_var (Printf.sprintf "cell|%s|%s|%s|%d" sid path prop i) ~width:32
let value_var ~sid ~path prop sort = Term.enum_var (Printf.sprintf "valv|%s|%s|%s" sid path prop) ~sort

(* Stable assertion names; these double as violation rule ids. *)
let rule ~schema_id ~path kind prop = Printf.sprintf "%s:%s:%s@%s" schema_id kind prop path

let dedup xs = List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] xs

(* Universe of property names relevant to this node+schema. *)
let prop_universe (schema : Binding.t) (node : T.t) =
  dedup
    (List.map fst schema.properties
    @ schema.required
    @ List.map (fun p -> p.T.p_name) node.T.props)

let compile_node solver ~(schema : Binding.t) ~path (node : T.t) =
  let schema_id = schema.id in
  let sid = schema_id in
  let psort = prop_sort ~sid ~path in
  let universe = prop_universe schema node in
  (* A schema with no property constraints on a bare node has no name
     universe; the quantified axioms (5)/(6) are vacuous then. *)
  let has_props = universe <> [] in
  if has_props then Solver.declare_enum solver psort universe;
  let pname name = Term.enum ~sort:psort name in
  let node_v = node_var ~path in
  let assert_rule kind prop term = Solver.assert_named solver (rule ~schema_id ~path kind prop) term in

  (* --- schema constraints -------------------------------------------------- *)
  List.iter
    (fun (prop, (ps : Binding.prop_schema)) ->
      (* The string-value sort for this property: schema constants, schema
         enum members, and the actual value found in the binding.  Declared
         once so the const and enum branches agree on the universe. *)
      let vsort = value_sort ~sid ~path prop in
      let declare_vsort () =
        let actual = Option.bind (T.get_prop node prop) T.prop_string in
        let universe =
          dedup (Option.to_list ps.const_string @ ps.enum_values @ Option.to_list actual)
        in
        Solver.declare_enum solver vsort universe
      in
      (* (1) const value constraints, guarded by presence. *)
      (match ps.const_string with
       | Some const ->
         declare_vsort ();
         let v = value_var ~sid ~path prop vsort in
         assert_rule "const" prop
           (Term.implies (r_pred ~sid ~path (pname prop)) (Term.eq v (Term.enum ~sort:vsort const)))
       | None -> ());
      (if ps.enum_values <> [] then begin
         declare_vsort ();
         let v = value_var ~sid ~path prop vsort in
         assert_rule "enum" prop
           (Term.implies (r_pred ~sid ~path (pname prop))
              (Term.or_ (List.map (fun e -> Term.eq v (Term.enum ~sort:vsort e)) ps.enum_values)))
       end);
      (match ps.const_cells with
       | Some cells ->
         List.iteri
           (fun i c ->
             assert_rule "const-cell" prop
               (Term.implies (r_pred ~sid ~path (pname prop))
                  (Term.eq (cell_var ~sid ~path prop i) (Term.bv ~width:32 c))))
           cells
       | None -> ());
      (* Value-range bounds on the first cell, as 64-bit vector constraints
         (manufacturer-given ranges, e.g. clock-frequency). *)
      let first_cell_var =
        Term.bv_var (Printf.sprintf "cell0|%s|%s|%s" sid path prop) ~width:64
      in
      (match ps.minimum with
       | Some min ->
         assert_rule "minimum" prop
           (Term.implies (r_pred ~sid ~path (pname prop))
              (Term.uge first_cell_var (Term.bv ~width:64 min)))
       | None -> ());
      (match ps.maximum with
       | Some max ->
         assert_rule "maximum" prop
           (Term.implies (r_pred ~sid ~path (pname prop))
              (Term.ule first_cell_var (Term.bv ~width:64 max)))
       | None -> ());
      (* Item-count bounds as bit-vector constraints. *)
      let cnt = count_var ~sid ~path prop in
      (match ps.min_items with
       | Some n ->
         assert_rule "minItems" prop
           (Term.implies (r_pred ~sid ~path (pname prop))
              (Term.ule (Term.bv_of_int ~width:16 n) cnt))
       | None -> ());
      (match ps.max_items with
       | Some n ->
         assert_rule "maxItems" prop
           (Term.implies (r_pred ~sid ~path (pname prop))
              (Term.ule cnt (Term.bv_of_int ~width:16 n)))
       | None -> ());
      (match ps.multiple_of with
       | Some m when m > 0 ->
         (* count = m * q for some q; computed at double width so the
            product cannot wrap and fabricate divisibility. *)
         let q = Term.bv_var (Printf.sprintf "q|%s|%s|%s" sid path prop) ~width:16 in
         let wide t = Term.zero_extend ~by:16 t in
         let cells_cnt =
           Term.bv_var (Printf.sprintf "cells|%s|%s|%s" sid path prop) ~width:16
         in
         assert_rule "multipleOf" prop
           (Term.implies (r_pred ~sid ~path (pname prop))
              (Term.eq (wide cells_cnt) (Term.mul (wide (Term.bv_of_int ~width:16 m)) (wide q))))
       | Some _ | None -> ()))
    schema.properties;

  (* (2,3) required properties. *)
  List.iter
    (fun prop ->
      assert_rule "required" prop (Term.implies node_v (r_pred ~sid ~path (pname prop))))
    schema.required;

  (* Strict mode (additionalProperties: false): the schema forbids presence
     of any property it does not mention; with the closure axiom (6) forcing
     R for every present property, an unknown property yields UNSAT with
     this rule in the core. *)
  (if (not schema.Binding.additional_properties) && has_props then begin
     let known = Binding.known_properties schema in
     List.iter
       (fun (p : T.prop) ->
         if not (List.mem p.T.p_name known) then
           assert_rule "additionalProperties" p.T.p_name
             (Term.implies node_v (Term.not_ (r_pred ~sid ~path (pname p.T.p_name)))))
       node.T.props
   end);

  (* Required child nodes (the paper's extension beyond dt-schema). *)
  List.iter
    (fun child ->
      let child_path = T.join_path path child in
      assert_rule "requiredNode" child (Term.implies node_v (node_var ~path:child_path));
      let present =
        List.exists
          (fun c -> String.equal (Devicetree.Ast.base_name c.T.name) child)
          node.T.children
      in
      assert_rule "node-presence" child
        (Term.iff (node_var ~path:child_path) (if present then Term.tt else Term.ff)))
    schema.required_nodes;

  (* --- proof obligations from the binding instance -------------------------- *)
  (* (4) actual values. *)
  List.iter
    (fun (p : T.prop) ->
      let prop = p.T.p_name in
      let ps = List.assoc_opt prop schema.properties in
      let needs_value =
        match ps with
        | Some ps -> ps.Binding.const_string <> None || ps.Binding.enum_values <> []
        | None -> false
      in
      (if needs_value then
         match T.prop_string p with
         | Some actual ->
           let vsort = value_sort ~sid ~path prop in
           let v = value_var ~sid ~path prop vsort in
           assert_rule "value" prop (Term.eq v (Term.enum ~sort:vsort actual))
         | None ->
           (* The schema constrains a string value but the binding supplies
              none: the obligation is unsatisfiable by construction. *)
           assert_rule "value" prop Term.ff);
      (match ps with
       | Some { Binding.const_cells = Some _; _ } ->
         List.iteri
           (fun i (_bits, c) ->
             assert_rule "value-cell" prop (Term.eq (cell_var ~sid ~path prop i) (Term.bv ~width:32 c)))
           (T.prop_cells p)
       | _ -> ());
      (* First-cell value, for range-bounded properties. *)
      (match ps with
       | Some { Binding.minimum = Some _; _ } | Some { Binding.maximum = Some _; _ } ->
         let first_cell_var =
           Term.bv_var (Printf.sprintf "cell0|%s|%s|%s" sid path prop) ~width:64
         in
         (match T.prop_cells p with
          | (_, v) :: _ ->
            assert_rule "value-cell0" prop (Term.eq first_cell_var (Term.bv ~width:64 v))
          | [] -> assert_rule "value-cell0" prop Term.ff)
       | _ -> ());
      (* Item and cell counts. *)
      (match ps with
       | Some ps ->
         let items = Binding.item_count ps p in
         assert_rule "count" prop
           (Term.eq (count_var ~sid ~path prop) (Term.bv_of_int ~width:16 items));
         if ps.Binding.multiple_of <> None then
           assert_rule "cell-count" prop
             (Term.eq
                (Term.bv_var (Printf.sprintf "cells|%s|%s|%s" sid path prop) ~width:16)
                (Term.bv_of_int ~width:16 (List.length (T.prop_cells p))))
       | None -> ()))
    node.T.props;

  if has_props then begin
    (* (5) C(x) characterises exactly the present properties. *)
    let present = List.map (fun p -> p.T.p_name) node.T.props in
    Solver.assert_named solver (rule ~schema_id ~path "covered" "*")
      (Solver.forall_enum solver ~sort:psort (fun x ->
           Term.iff (c_pred ~sid ~path x) (Term.or_ (List.map (fun p -> Term.eq x (pname p)) present))));

    (* (6) closure: R coincides with C. *)
    Solver.assert_named solver (rule ~schema_id ~path "closure" "*")
      (Solver.forall_enum solver ~sort:psort (fun x ->
           Term.and_
             [ Term.implies (c_pred ~sid ~path x) (r_pred ~sid ~path x);
               Term.implies (Term.not_ (c_pred ~sid ~path x)) (Term.not_ (r_pred ~sid ~path x))
             ]))
  end;

  (* The node under check is asserted valid; unsatisfiability then yields
     the conflicting rules as the core. *)
  Solver.assert_named solver (rule ~schema_id ~path "node" "*") node_v

(* Check one node against one schema in a fresh scope; returns the core rule
   names on failure. *)
let check_node solver ~schema ~path node =
  Solver.push solver;
  compile_node solver ~schema ~path node;
  let result =
    match Solver.check solver with
    | Solver.Sat -> `Valid
    | Solver.Unsat core ->
      `Invalid (match core with [] -> [ "unsat:no-core" ] | _ -> core)
    | Solver.Unknown -> `Inconclusive
  in
  Solver.pop solver;
  result

(* Compile every applicable (node, schema) pair into the solver at the
   current scope, without checking — used to inspect or export the full
   constraint problem (e.g. as SMT-LIB). *)
let compile_tree solver ~schemas tree =
  List.iter
    (fun (path, node, applicable) ->
      List.iter (fun schema -> compile_node solver ~schema ~path node) applicable)
    (Binding.applicable schemas tree)

(* SMT-based syntactic check of a whole tree: every applicable (node, schema)
   pair, incrementally on one solver instance.  Returns (path, core) pairs
   for failing nodes. *)
let check_tree solver ~schemas tree =
  List.filter_map
    (fun (path, node, applicable) ->
      let failures =
        List.concat_map
          (fun schema ->
            match check_node solver ~schema ~path node with
            | `Valid -> []
            | `Invalid core -> core
            | `Inconclusive -> [ "inconclusive:budget-exhausted" ])
          applicable
      in
      match failures with [] -> None | _ -> Some (path, failures))
    (Binding.applicable schemas tree)
