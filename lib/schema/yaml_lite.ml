(* A small YAML-subset parser, enough for dt-schema-style binding schemas:
   block maps, block lists, flow lists, quoted/plain scalars, integers
   (including 0x...), booleans, comments.  No anchors, no multi-line
   scalars, no multi-document streams. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Str of string
  | List of t list
  | Map of (string * t) list

exception Error of string * int (* message, line *)

let error line fmt = Fmt.kstr (fun msg -> raise (Error (msg, line))) fmt

(* --- scalars -------------------------------------------------------------- *)

let parse_scalar line s =
  let s = String.trim s in
  if s = "" || s = "~" || s = "null" then Null
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else if String.length s >= 2 && s.[0] = '"' then begin
    if s.[String.length s - 1] <> '"' then error line "unterminated quoted string";
    Str (String.sub s 1 (String.length s - 2))
  end
  else if String.length s >= 2 && s.[0] = '\'' then begin
    if s.[String.length s - 1] <> '\'' then error line "unterminated quoted string";
    Str (String.sub s 1 (String.length s - 2))
  end
  else
    match Int64.of_string_opt s with
    | Some v -> Int v
    | None -> Str s

let parse_flow_list line s =
  (* [a, b, c] with scalar items; commas inside quotes do not split. *)
  let inner = String.sub s 1 (String.length s - 2) in
  let items = ref [] in
  let buf = Buffer.create 16 in
  let in_quote = ref false and quote_char = ref ' ' in
  let flush () =
    let item = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if item <> "" then items := item :: !items
  in
  String.iter
    (fun c ->
      match c with
      | ('"' | '\'') when not !in_quote ->
        in_quote := true;
        quote_char := c;
        Buffer.add_char buf c
      | c when !in_quote && c = !quote_char ->
        in_quote := false;
        Buffer.add_char buf c
      | ',' when not !in_quote -> flush ()
      | c -> Buffer.add_char buf c)
    inner;
  flush ();
  List (List.rev_map (parse_scalar line) !items)

let parse_value line s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']' then
    parse_flow_list line s
  else parse_scalar line s

(* --- lines ----------------------------------------------------------------- *)

type line = {
  num : int;
  indent : int;
  content : string; (* stripped of indentation and comments *)
}

let strip_comment s =
  (* Per YAML, '#' starts a comment only at the start of the line or after
     whitespace (and never inside quotes): a plain scalar like
     "acme,uart#1" keeps its '#'. *)
  let len = String.length s in
  let rec go i in_quote quote_char =
    if i >= len then s
    else
      match s.[i] with
      | ('"' | '\'') as c when not in_quote -> go (i + 1) true c
      | c when in_quote && c = quote_char -> go (i + 1) false ' '
      | '#'
        when (not in_quote)
             && (i = 0 || s.[i - 1] = ' ' || s.[i - 1] = '\t') ->
        String.sub s 0 i
      | _ -> go (i + 1) in_quote quote_char
  in
  go 0 false ' '

let split_lines src =
  String.split_on_char '\n' src
  |> List.mapi (fun i raw ->
         let raw = strip_comment raw in
         let indent =
           let rec count i = if i < String.length raw && raw.[i] = ' ' then count (i + 1) else i in
           count 0
         in
         let content = String.trim raw in
         (* Tabs in indentation are forbidden by YAML; counting them as
            zero-width would silently reparent the line's block. *)
         if content <> "" && indent < String.length raw && raw.[indent] = '\t'
         then error (i + 1) "tab in indentation (YAML indentation is spaces only)";
         { num = i + 1; indent; content })
  |> List.filter (fun l -> l.content <> "" && l.content <> "---")

(* --- block structure ---------------------------------------------------------- *)

(* Split "key: value" handling quoted keys and URLs (no space after colon is
   not a mapping separator in real YAML; we require ": " or line-final ":"). *)
let split_key_value line content =
  let len = String.length content in
  let rec find i in_quote quote_char =
    if i >= len then None
    else
      match content.[i] with
      | ('"' | '\'') as c when not in_quote -> find (i + 1) true c
      | c when in_quote && c = quote_char -> find (i + 1) false ' '
      | ':' when (not in_quote) && (i = len - 1 || content.[i + 1] = ' ') -> Some i
      | _ -> find (i + 1) in_quote quote_char
  in
  match find 0 false ' ' with
  | None -> None
  | Some i ->
    let key = String.trim (String.sub content 0 i) in
    let key =
      match parse_scalar line key with
      | Str s -> s
      | Int v -> Int64.to_string v
      | Bool b -> string_of_bool b
      | Null -> ""
      | List _ | Map _ -> key
    in
    let value = if i = len - 1 then "" else String.sub content (i + 1) (len - i - 1) in
    Some (key, String.trim value)

let rec parse_block lines indent =
  match lines with
  | [] -> (Null, [])
  | first :: _ when first.indent < indent -> (Null, lines)
  | first :: _ ->
    if String.length first.content >= 1 && first.content.[0] = '-'
       && (String.length first.content = 1 || first.content.[1] = ' ')
    then parse_list lines first.indent
    else parse_map lines first.indent

and parse_list lines indent =
  let rec go lines acc =
    match lines with
    | { indent = i; content; num } :: rest
      when i = indent
           && String.length content >= 1
           && content.[0] = '-'
           && (String.length content = 1 || content.[1] = ' ') ->
      let item_text = if String.length content = 1 then "" else String.trim (String.sub content 1 (String.length content - 1)) in
      if item_text = "" then begin
        (* Nested block as list item. *)
        let value, rest = parse_block rest (indent + 1) in
        go rest (value :: acc)
      end
      else begin
        match split_key_value num item_text with
        | Some (key, v) ->
          (* "- key: value" starts an inline map item; its continuation lines
             are indented past the dash. *)
          let first_entry =
            if v = "" then begin
              fun rest ->
                let value, rest = parse_block rest (indent + 3) in
                ((key, value), rest)
            end
            else fun rest -> ((key, parse_value num v), rest)
          in
          let (entry, rest) = first_entry rest in
          let more, rest = parse_map_entries rest (indent + 2) in
          if List.mem_assoc (fst entry) more then
            error num "duplicate mapping key %S" (fst entry);
          go rest (Map (entry :: more) :: acc)
        | None -> go rest (parse_value num item_text :: acc)
      end
    | _ -> (List (List.rev acc), lines)
  in
  go lines []

and parse_map lines indent =
  let entries, rest = parse_map_entries lines indent in
  (Map entries, rest)

and parse_map_entries lines indent =
  let rec go lines acc =
    match lines with
    | { indent = i; content; num } :: rest when i = indent -> begin
      match split_key_value num content with
      | None -> error num "expected 'key: value', got %S" content
      | Some (key, v) ->
        (* Real YAML forbids duplicate keys; silently keeping the first (or
           last) would let a schema author shadow a constraint unnoticed. *)
        if List.mem_assoc key acc then error num "duplicate mapping key %S" key;
        if v = "" then begin
          let value, rest = parse_block rest (indent + 1) in
          go rest ((key, value) :: acc)
        end
        else go rest ((key, parse_value num v) :: acc)
    end
    | _ -> (List.rev acc, lines)
  in
  go lines []

let parse src =
  let lines = split_lines src in
  match lines with
  | [] -> Null
  | first :: _ ->
    let value, rest = parse_block lines first.indent in
    (match rest with
     | [] -> value
     | { num; content; _ } :: _ -> error num "unexpected content %S (bad indentation?)" content)

(* --- accessors ------------------------------------------------------------------ *)

let find key = function Map entries -> List.assoc_opt key entries | _ -> None

let as_list = function List l -> Some l | _ -> None

let as_string = function
  | Str s -> Some s
  | Int v -> Some (Int64.to_string v)
  | _ -> None

let as_int = function Int v -> Some v | _ -> None

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int v -> Fmt.pf ppf "%Ld" v
  | Str s -> Fmt.pf ppf "%S" s
  | List l -> Fmt.pf ppf "[@[%a@]]" Fmt.(list ~sep:comma pp) l
  | Map m ->
    Fmt.pf ppf "{@[%a@]}"
      Fmt.(list ~sep:comma (pair ~sep:(any ": ") string pp))
      m
