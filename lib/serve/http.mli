(** Hand-rolled HTTP/1.1 request parsing and response rendering for the
    [llhsc serve] daemon — no external dependency, built to survive
    hostile clients.

    The parser is {e incremental}: the connection loop feeds it whatever
    bytes [read] produced and polls for a verdict.  Parsing is a pure
    function of the concatenation of the fed bytes, so any split of the
    same byte stream — one-shot, byte-at-a-time, or adversarially
    chunked — yields the identical verdict (qcheck-tested).

    Hostile-input posture:
    - header block capped at [max_header_bytes] → [431];
    - declared or chunked body capped at [max_body_bytes] → [413],
      decided as early as the declaration allows (a client announcing an
      oversized [Content-Length] is refused before it sends the body);
    - malformed request lines, header syntax, lengths and chunk framing
      → [400]; unsupported transfer encodings → [501];
    - truncated input (including truncated chunked framing) never
      completes: the connection layer's read deadline turns it into
      [408]. *)

type limits = {
  max_header_bytes : int;  (** request line + headers, CRLFs included *)
  max_body_bytes : int;    (** decoded body bytes *)
}

val default_limits : limits

type request = {
  meth : string;     (** verbatim token, e.g. ["POST"] *)
  target : string;   (** request target, query string included *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;
      (** in wire order; names lowercased, values trimmed *)
  body : string;     (** decoded (de-chunked) body *)
}

(** A request that must be refused: the HTTP status to answer with and a
    human-readable reason for the response body. *)
type error = { status : int; reason : string }

type state

val create : ?limits:limits -> unit -> state

(** Append bytes from the wire.  Feeding after a non-[`Await] verdict is
    a no-op: one [state] parses exactly one request (the daemon serves
    one request per connection). *)
val feed : state -> string -> unit

(** Current verdict.  [`Await] means the request is incomplete — feed
    more bytes (or let the read deadline expire).  Both other verdicts
    are final and stable. *)
val poll : state -> [ `Await | `Request of request | `Error of error ]

(** First value of a (lowercased) header, if present. *)
val header : request -> string -> string option

(** Path and decoded query parameters of a request target:
    ["/v1/check?certify=1"] → [("/v1/check", [("certify", "1")])]. *)
val split_target : string -> string * (string * string) list

(** Render a complete HTTP/1.1 response with [Content-Length] and
    [Connection: close] (the daemon serves one request per connection,
    which keeps response framing trivially correct under faults). *)
val response : status:int -> ?headers:(string * string) list -> body:string -> unit -> string

(** Standard reason phrase for the status codes the daemon emits. *)
val reason_phrase : int -> string
