(* The serve daemon event loop.  See the .mli for the robustness
   contract.  Shape: one nonblocking select loop owns the listen socket,
   every client connection, a signal self-pipe, and the stdout/stderr
   pipes of every running job child.  All checking work happens in job
   children (fork + setsid + exec of the llhsc binary itself), so the
   loop's only blocking operations are tiny file writes at admission
   time; a hung or crashed check can never stall the front door.

   Supervision mirrors the Shard pool's lease machinery one level up:
   a running job holds a lease (started now, expiring at now +
   request_deadline); an expired lease SIGKILLs the job's whole process
   group (the child is a session leader, so a pipeline job's shard
   workers die with it) and the client gets a 504.  Every accepted
   request is answered exactly once, on every path. *)

type config = {
  host : string;
  port : int;
  workers : int;
  queue : int;
  tenant_quota : int;
  request_deadline : float option;
  read_timeout : float;
  write_timeout : float;
  max_body_bytes : int;
  max_header_bytes : int;
  retry_after : int;
  max_request_jobs : int;
  exec : string;
  dispatch : (string * int) list;
  dispatch_secret_file : string option;
  verbose : bool;
}

let default_config =
  { host = "127.0.0.1";
    port = 8080;
    workers = 2;
    queue = 16;
    tenant_quota = 8;
    request_deadline = Some 60.;
    read_timeout = 10.;
    write_timeout = 10.;
    max_body_bytes = Http.default_limits.Http.max_body_bytes;
    max_header_bytes = Http.default_limits.Http.max_header_bytes;
    retry_after = 1;
    max_request_jobs = 4;
    exec = Sys.executable_name;
    dispatch = [];
    dispatch_secret_file = None;
    verbose = false }

let now () = Unix.gettimeofday ()
let retry_eintr = Llhsc.Util.retry_eintr

(* Hard backstops that are not worth a flag: sockets the daemon will hold
   at once, and bytes of child output it will buffer per job. *)
let max_connections = 1024
let max_job_output = 64 * 1024 * 1024

(* --- tiny fs helpers --------------------------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (try Sys.readdir path with _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

(* Job inputs are materialised atomically (write-temp/fsync/rename) so a
   worker that starts checking never sees a torn file, and a daemon crash
   mid-submit leaves no partial job dir contents behind. *)
let write_file path contents = Llhsc.Durable.write_file ~path contents

(* --- responses --------------------------------------------------------------- *)

module Json = Llhsc.Json

let json_headers = [ ("Content-Type", "application/json") ]

(* Daemon-generated refusals share the CLI's structured-diagnostic codes:
   {"error": reason, "code": PARSE|QUOTA|QUEUE|DEADLINE|WORKER|DRAIN|HTTP}. *)
let error_body ~code reason =
  Json.to_string (Json.Obj [ ("error", Json.Str reason); ("code", Json.Str code) ]) ^ "\n"

type response = { status : int; headers : (string * string) list; body : string }

let resp ?(headers = json_headers) status body = { status; headers; body }

let shed_headers retry_after =
  ("Retry-After", string_of_int retry_after) :: json_headers

(* --- jobs -------------------------------------------------------------------- *)

type job = {
  id : int;
  tenant : string;
  mutable conn_fd : Unix.file_descr option; (* None once the client is gone *)
  dir : string;
  mutable argv : string array;              (* rewritten at start for fleet jobs *)
  mutable fleet_addr : (string * int) option; (* claimed dispatch listen address *)
  delay_ms : int;                           (* test hook, see .mli *)
  mutable cancelled : bool;                 (* client vanished while queued *)
  mutable tenant_released : bool;
  mutable pid : int;                        (* 0 until started *)
  mutable out_fd : Unix.file_descr option;
  mutable err_fd : Unix.file_descr option;
  out_buf : Buffer.t;
  err_buf : Buffer.t;
  mutable lease_expiry : float;             (* infinity = no lease *)
  mutable timed_out : bool;
  mutable output_overflow : bool;
}

type phase =
  | Reading of Http.state
  | Waiting of int (* job id *)
  | Writing of { data : string; mutable off : int }

type conn = { fd : Unix.file_descr; mutable phase : phase; mutable deadline : float }

type stats = {
  mutable accepted : int;       (* jobs admitted to the queue *)
  mutable completed : int;      (* jobs answered with a checker verdict *)
  mutable shed_queue : int;     (* 429: bounded queue full *)
  mutable shed_tenant : int;    (* 429: tenant over quota *)
  mutable shed_drain : int;     (* 503: refused while draining *)
  mutable refused : int;        (* 4xx: malformed / unroutable requests *)
  mutable timeouts : int;       (* 504: lease expired, job killed *)
  mutable crashes : int;        (* 500: job child died on a signal *)
  mutable disconnects : int;    (* clients that vanished mid-request *)
  mutable read_timeouts : int;  (* 408: slow-loris reads cut *)
  mutable backend_fleet : int;  (* pipeline jobs handed to a fleet dispatcher *)
  mutable backend_local : int;  (* pipeline jobs run by the local fork pool *)
}

(* --- request-to-argv preparation --------------------------------------------- *)

(* Everything written under a job's working directory uses a vetted
   relative file name: the request can pick what the report calls its
   inputs (so served reports diff clean against the batch CLI run in the
   same directory) but can never escape the job dir. *)
let safe_name name =
  name <> ""
  && String.length name <= 64
  && name.[0] <> '.'
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       name

let truthy = function Some ("1" | "true" | "yes") -> true | _ -> false

(* POST /v1/check: the body is the DTS source itself; query parameters
   carry the CLI flags.  Returns the argv tail (after the binary name)
   plus the files to materialise. *)
let prepare_check req params =
  let fname =
    match Http.header req "x-llhsc-filename" with
    | Some n -> n
    | None -> "request.dts"
  in
  if not (safe_name fname) then
    Error (resp 400 (error_body ~code:"HTTP" "bad X-Llhsc-Filename"))
  else
    let flag name arg = if truthy (List.assoc_opt name params) then [ arg ] else [] in
    let argv =
      [ "check"; fname ]
      @ flag "certify" "--certify"
      @ flag "semantic-only" "--semantic-only"
      @ flag "syntactic-only" "--syntactic-only"
    in
    Ok (argv, [ (fname, req.Http.body) ])

(* POST /v1/pipeline: the body is a JSON object shipping every input file
   inline plus the run's flags.  Parsed with the hardened Json.parse, so
   hostile nesting/garbage surfaces as an error[PARSE]-coded 400. *)
let prepare_pipeline cfg req =
  let reject reason = Error (resp 400 (error_body ~code:"PARSE" reason)) in
  match Json.parse req.Http.body with
  | Error msg -> reject ("request body: " ^ msg)
  | Ok body ->
    let str name = Option.bind (Json.member name body) Json.to_str in
    let int name = Option.bind (Json.member name body) Json.to_int in
    let bool name =
      Option.value ~default:false
        (Option.bind (Json.member name body) Json.to_bool)
    in
    (match (str "core", str "deltas", str "model") with
     | Some core, Some deltas, Some model -> (
       let vms =
         match Option.bind (Json.member "vms" body) Json.to_list with
         | Some items ->
           let parsed = List.filter_map Json.to_str_list items in
           if List.length parsed = List.length items && parsed <> [] then Some parsed
           else None
         | None -> None
       in
       match vms with
       | None -> reject "missing or malformed \"vms\" (want a non-empty list of feature lists)"
       | Some vms -> (
         let exclusive =
           Option.value ~default:[]
             (Option.bind (Json.member "exclusive" body) Json.to_str_list)
         in
         let schemas =
           match Json.member "schemas" body with
           | None -> Ok []
           | Some (Json.Obj fields) ->
             let rec go acc = function
               | [] -> Ok (List.rev acc)
               | (name, Json.Str contents) :: rest
                 when safe_name name
                      && (Filename.check_suffix name ".yaml"
                         || Filename.check_suffix name ".yml") ->
                 go ((Filename.concat "schemas" name, contents) :: acc) rest
               | (name, _) :: _ ->
                 Error (Printf.sprintf "bad schema entry %S" name)
             in
             go [] fields
           | Some _ -> Error "malformed \"schemas\" (want an object of file -> contents)"
         in
         (* Auxiliary inputs (e.g. a .dtsi the core /include/s), shipped
            inline like the schemas and written next to core.dts. *)
         let reserved = [ "core.dts"; "board.deltas"; "board.fm"; "schemas" ] in
         let extra_files =
           match Json.member "files" body with
           | None -> Ok []
           | Some (Json.Obj fields) ->
             let rec go acc = function
               | [] -> Ok (List.rev acc)
               | (name, Json.Str contents) :: rest
                 when safe_name name && not (List.mem name reserved) ->
                 go ((name, contents) :: acc) rest
               | (name, _) :: _ -> Error (Printf.sprintf "bad file entry %S" name)
             in
             go [] fields
           | Some _ -> Error "malformed \"files\" (want an object of file -> contents)"
         in
         match (schemas, extra_files) with
         | Error reason, _ | _, Error reason -> reject reason
         | Ok schema_files, Ok extra_files ->
           let jobs =
             match int "jobs" with
             | Some n when n > 1 -> min n (max 1 cfg.max_request_jobs)
             | _ -> 1
           in
           let opt_int name arg =
             match int name with Some n when n > 0 -> [ arg; string_of_int n ] | _ -> []
           in
           let argv =
             [ "pipeline"; "--core"; "core.dts"; "--deltas"; "board.deltas";
               "--model"; "board.fm" ]
             @ (if schema_files = [] then [] else [ "--schemas"; "schemas" ])
             @ List.concat_map (fun fs -> [ "--vm"; String.concat "," fs ]) vms
             @ (if exclusive = [] then [] else [ "--exclusive"; String.concat "," exclusive ])
             @ (if bool "certify" then [ "--certify" ] else [])
             @ opt_int "retry" "--retry"
             @ opt_int "max_conflicts" "--max-conflicts"
             @ opt_int "solver_timeout" "--solver-timeout"
             @ opt_int "mem_limit" "--mem-limit"
             @ opt_int "cpu_limit" "--cpu-limit"
             @ (if jobs > 1 then [ "--jobs"; string_of_int jobs ] else [])
             @
             (* A sharded job inherits the request lease as its shard-task
                deadline: the same machinery, one level down. *)
             (match (cfg.request_deadline, jobs > 1) with
              | Some d, true -> [ "--task-deadline"; Printf.sprintf "%g" d ]
              | _ -> [])
           in
           let files =
             [ ("core.dts", core); ("board.deltas", deltas); ("board.fm", model) ]
             @ extra_files @ schema_files
           in
           Ok (argv, files)))
     | _ -> reject "missing \"core\"/\"deltas\"/\"model\" inputs")

(* --- the daemon -------------------------------------------------------------- *)

let run cfg =
  let test_hooks = Sys.getenv_opt "LLHSC_SERVE_TEST_HOOKS" = Some "1" in
  let fault_kill_job =
    Option.bind (Sys.getenv_opt "LLHSC_FAULT_KILL_JOB") int_of_string_opt
  in
  let fault_hang_job =
    Option.bind (Sys.getenv_opt "LLHSC_FAULT_HANG_JOB") int_of_string_opt
  in
  let limits =
    { Http.max_header_bytes = cfg.max_header_bytes;
      max_body_bytes = cfg.max_body_bytes }
  in
  let stats =
    { accepted = 0; completed = 0; shed_queue = 0; shed_tenant = 0;
      shed_drain = 0; refused = 0; timeouts = 0; crashes = 0; disconnects = 0;
      read_timeouts = 0; backend_fleet = 0; backend_local = 0 }
  in
  let note fmt =
    Printf.ksprintf
      (fun m -> if cfg.verbose then (prerr_string ("llhsc serve: " ^ m ^ "\n"); flush stderr))
      fmt
  in
  (* Signal plumbing: the handler only flips a ref and pokes the
     self-pipe; everything else happens at the top of the loop. *)
  let drain_requested = ref false in
  let sig_r, sig_w = Unix.pipe () in
  Unix.set_nonblock sig_r;
  Unix.set_nonblock sig_w;
  Unix.set_close_on_exec sig_r;
  Unix.set_close_on_exec sig_w;
  let on_signal _ =
    drain_requested := true;
    try ignore (Unix.write_substring sig_w "!" 0 1) with Unix.Unix_error _ -> ()
  in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  (* Peer disconnect mid-write must degrade to this connection's EPIPE,
     never a process-wide SIGPIPE death (shared idiom with the fleet's
     socket paths). *)
  let restore_pipe = Llhsc.Util.ignore_sigpipe () in
  (* SIGCHLD pokes the self-pipe too: a job child's pipes hit EOF while it
     is still exiting, so the waitpid probe can race ahead of the zombie
     and the job then has no fd left to wake select.  Without this the
     reap only happens on the next timeout tick (~1s added latency). *)
  let on_child _ =
    try ignore (Unix.write_substring sig_w "!" 0 1) with Unix.Unix_error _ -> ()
  in
  let prev_chld = Sys.signal Sys.sigchld (Sys.Signal_handle on_child) in
  (* Listen socket. *)
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.set_close_on_exec listen_fd;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen listen_fd 128;
  Unix.set_nonblock listen_fd;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  Printf.printf "llhsc serve: listening on %s:%d (workers=%d queue=%d quota=%d)\n"
    cfg.host bound_port cfg.workers cfg.queue cfg.tenant_quota;
  flush stdout;
  (* Per-run working directory for job inputs. *)
  let work_root =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "llhsc-serve-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir
  in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let running : (int, job) Hashtbl.t = Hashtbl.create 16 in
  let pending : job Queue.t = Queue.create () in
  let tenants : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let next_job_id = ref 0 in
  let draining = ref false in
  let tenant_count t = Option.value ~default:0 (Hashtbl.find_opt tenants t) in
  let tenant_take t = Hashtbl.replace tenants t (tenant_count t + 1) in
  let tenant_release (job : job) =
    if not job.tenant_released then begin
      job.tenant_released <- true;
      let n = tenant_count job.tenant - 1 in
      if n <= 0 then Hashtbl.remove tenants job.tenant
      else Hashtbl.replace tenants job.tenant n
    end
  in
  (* --- fleet backend --- *)
  (* [--dispatch] reserves each listed listen address for one running
     pipeline job at a time and rewrites that job's argv from
     [pipeline ...] to [dispatch --listen HOST:PORT ...]: the child
     becomes a fleet dispatcher serving the operator's long-lived
     workers.  Every fleet degradation (no worker inside the grace,
     address already bound, workers lost mid-run) collapses to the
     dispatcher's own in-process sweep, so the verdict bytes never
     depend on the fleet being healthy.  When all addresses are claimed
     the job keeps its plain pipeline argv (local fork pool). *)
  let free_addrs = ref cfg.dispatch in
  let claim_addr () =
    match !free_addrs with
    | [] -> None
    | a :: rest ->
      free_addrs := rest;
      Some a
  in
  let release_addr (job : job) =
    match job.fleet_addr with
    | None -> ()
    | Some a ->
      job.fleet_addr <- None;
      free_addrs := a :: !free_addrs
  in
  let fleet_argv argv (host, port) =
    (* Strip the fork-pool-only flags [dispatch] does not take. *)
    let rec strip = function
      | [] -> []
      | ("--jobs" | "--mem-limit" | "--cpu-limit") :: _ :: rest -> strip rest
      | a :: rest -> a :: strip rest
    in
    match Array.to_list argv with
    | "pipeline" :: rest ->
      let secret =
        match cfg.dispatch_secret_file with
        | None -> []
        | Some p ->
          (* The child execs from inside the job directory. *)
          let p = if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p in
          [ "--secret-file"; p ]
      in
      Array.of_list
        ("dispatch" :: "--listen"
         :: Printf.sprintf "%s:%d" host port
         :: "--wait-workers" :: "2"
         :: (secret @ strip rest))
    | _ -> argv
  in
  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let close_conn conn =
    Hashtbl.remove conns conn.fd;
    close_fd conn.fd
  in
  let respond conn { status; headers; body } =
    let data = Http.response ~status ~headers ~body () in
    conn.phase <- Writing { data; off = 0 };
    conn.deadline <- now () +. cfg.write_timeout
  in
  (* --- job lifecycle --- *)
  let start_job (job : job) =
    if Array.length job.argv > 0 && job.argv.(0) = "pipeline" then
      (match claim_addr () with
       | Some (h, p) ->
         job.fleet_addr <- Some (h, p);
         stats.backend_fleet <- stats.backend_fleet + 1;
         job.argv <- fleet_argv job.argv (h, p);
         note "job %d: fleet backend at %s:%d" job.id h p
       | None ->
         stats.backend_local <- stats.backend_local + 1;
         if cfg.dispatch <> [] then
           note "job %d: all dispatch addresses busy; local backend" job.id);
    let out_r, out_w = Unix.pipe () in
    let err_r, err_w = Unix.pipe () in
    Unix.set_close_on_exec out_r;
    Unix.set_close_on_exec err_r;
    let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
    (match Unix.fork () with
     | 0 ->
       (* Child: own session (=> own process group: a lease kill takes the
          job's whole tree, shard workers included), stdio rewired, then
          exec the llhsc binary from inside the job directory so every
          path in the report is relative — byte-identical to a batch CLI
          run in the same directory. *)
       (try
          ignore (Unix.setsid ());
          (match fault_kill_job with
           | Some n when n = job.id -> Unix.kill (Unix.getpid ()) Sys.sigkill
           | _ -> ());
          (match fault_hang_job with
           | Some n when n = job.id -> Unix.sleep 3600
           | _ -> ());
          if job.delay_ms > 0 then Unix.sleepf (float_of_int job.delay_ms /. 1000.);
          Unix.chdir job.dir;
          Unix.dup2 null Unix.stdin;
          Unix.dup2 out_w Unix.stdout;
          Unix.dup2 err_w Unix.stderr;
          Unix.execv cfg.exec (Array.of_list (cfg.exec :: Array.to_list job.argv))
        with _ -> Unix._exit 127)
     | pid ->
       close_fd out_w;
       close_fd err_w;
       close_fd null;
       Unix.set_nonblock out_r;
       Unix.set_nonblock err_r;
       job.pid <- pid;
       job.out_fd <- Some out_r;
       job.err_fd <- Some err_r;
       job.lease_expiry <-
         (match cfg.request_deadline with Some d -> now () +. d | None -> infinity);
       Hashtbl.replace running job.id job)
  in
  let kill_job (job : job) =
    if job.pid > 0 then begin
      (try Unix.kill (-job.pid) Sys.sigkill with Unix.Unix_error _ -> ());
      try Unix.kill job.pid Sys.sigkill with Unix.Unix_error _ -> ()
    end
  in
  let job_response (job : job) status =
    if job.timed_out then begin
      stats.timeouts <- stats.timeouts + 1;
      resp 504 (error_body ~code:"DEADLINE" "request deadline exceeded; job killed")
    end
    else if job.output_overflow then begin
      stats.crashes <- stats.crashes + 1;
      resp 500 (error_body ~code:"WORKER" "checker output exceeded the buffer cap")
    end
    else
      match status with
      | Unix.WEXITED code ->
        stats.completed <- stats.completed + 1;
        let verdict =
          match code with
          | 0 -> "clean"
          | 1 -> "findings"
          | 2 -> "input-error"
          | _ -> "error"
        in
        let stderr_lines =
          String.split_on_char '\n' (Buffer.contents job.err_buf)
          |> List.filter (fun l -> l <> "")
        in
        resp 200
          (Json.to_string
             (Json.Obj
                [ ("status", Json.Str verdict);
                  ("exit", Json.Int code);
                  ("report", Json.Str (Buffer.contents job.out_buf));
                  ("stderr", Json.List (List.map (fun l -> Json.Str l) stderr_lines)) ])
          ^ "\n")
      | Unix.WSIGNALED s | Unix.WSTOPPED s ->
        stats.crashes <- stats.crashes + 1;
        resp 500
          (error_body ~code:"WORKER"
             (Printf.sprintf "checker died on signal %d before finishing" s))
  in
  let finish_job (job : job) status =
    Hashtbl.remove running job.id;
    Option.iter close_fd job.out_fd;
    Option.iter close_fd job.err_fd;
    job.out_fd <- None;
    job.err_fd <- None;
    tenant_release job;
    release_addr job;
    rm_rf job.dir;
    match job.conn_fd with
    | None -> () (* client vanished; verdict dropped *)
    | Some fd -> (
      match Hashtbl.find_opt conns fd with
      | Some conn -> respond conn (job_response job status)
      | None -> ())
  in
  (* Pull pending jobs into free worker slots. *)
  let rec schedule () =
    if Hashtbl.length running < cfg.workers && not (Queue.is_empty pending) then begin
      let job = Queue.pop pending in
      if job.cancelled then begin
        rm_rf job.dir;
        schedule ()
      end
      else begin
        start_job job;
        schedule ()
      end
    end
  in
  (* Client connection went away: release everything it owned. *)
  let abandon_conn conn =
    (match conn.phase with
     | Waiting id -> (
       match Hashtbl.find_opt running id with
       | Some job ->
         note "job %d: client disconnected; killing" id;
         job.conn_fd <- None;
         kill_job job
       | None ->
         (* still queued: mark cancelled, release the quota slot now *)
         Queue.iter
           (fun (j : job) ->
             if j.id = id then begin
               j.cancelled <- true;
               j.conn_fd <- None;
               tenant_release j
             end)
           pending)
     | _ -> ());
    stats.disconnects <- stats.disconnects + 1;
    close_conn conn
  in
  (* --- admission --- *)
  let admit conn (req : Http.request) kind params =
    if !draining then begin
      stats.shed_drain <- stats.shed_drain + 1;
      respond conn
        (resp ~headers:(shed_headers cfg.retry_after) 503
           (error_body ~code:"DRAIN" "daemon is draining; retry elsewhere"))
    end
    else
      let tenant =
        match Http.header req "x-api-key" with
        | Some k when k <> "" && String.length k <= 128 -> k
        | _ -> "anonymous"
      in
      if tenant_count tenant >= cfg.tenant_quota then begin
        stats.shed_tenant <- stats.shed_tenant + 1;
        note "tenant %s over quota; shedding" tenant;
        respond conn
          (resp ~headers:(shed_headers cfg.retry_after) 429
             (error_body ~code:"QUOTA"
                (Printf.sprintf "tenant has %d requests in flight (quota %d)"
                   (tenant_count tenant) cfg.tenant_quota)))
      end
      else if Queue.length pending >= cfg.queue then begin
        stats.shed_queue <- stats.shed_queue + 1;
        note "queue full (%d); shedding" (Queue.length pending);
        respond conn
          (resp ~headers:(shed_headers cfg.retry_after) 429
             (error_body ~code:"QUEUE"
                (Printf.sprintf "admission queue full (%d waiting)"
                   (Queue.length pending))))
      end
      else begin
        let prepared =
          match kind with
          | `Check -> prepare_check req params
          | `Pipeline -> prepare_pipeline cfg req
        in
        match prepared with
        | Error r ->
          stats.refused <- stats.refused + 1;
          respond conn r
        | Ok (argv, files) -> (
          let id = !next_job_id in
          incr next_job_id;
          let dir = Filename.concat work_root (Printf.sprintf "job-%d" id) in
          match
            Unix.mkdir dir 0o700;
            List.iter
              (fun (name, contents) ->
                let path = Filename.concat dir name in
                let parent = Filename.dirname path in
                if not (Sys.file_exists parent) then Unix.mkdir parent 0o700;
                write_file path contents)
              files
          with
          | exception e ->
            rm_rf dir;
            stats.refused <- stats.refused + 1;
            respond conn
              (resp 500
                 (error_body ~code:"WORKER"
                    ("failed to materialise request inputs: " ^ Printexc.to_string e)))
          | () ->
            let delay_ms =
              if test_hooks then
                Option.value ~default:0
                  (Option.bind
                     (Http.header req "x-llhsc-test-delay-ms")
                     int_of_string_opt)
              else 0
            in
            let job =
              { id; tenant; conn_fd = Some conn.fd; dir;
                argv = Array.of_list argv; fleet_addr = None;
                delay_ms; cancelled = false;
                tenant_released = false; pid = 0; out_fd = None; err_fd = None;
                out_buf = Buffer.create 1024; err_buf = Buffer.create 256;
                lease_expiry = infinity; timed_out = false;
                output_overflow = false }
            in
            tenant_take tenant;
            stats.accepted <- stats.accepted + 1;
            Queue.push job pending;
            conn.phase <- Waiting id;
            conn.deadline <- infinity;
            schedule ())
      end
  in
  let stats_body () =
    Json.to_string
      (Json.Obj
         [ ("accepted", Json.Int stats.accepted);
           ("completed", Json.Int stats.completed);
           ("shed_queue", Json.Int stats.shed_queue);
           ("shed_tenant", Json.Int stats.shed_tenant);
           ("shed_drain", Json.Int stats.shed_drain);
           ("refused", Json.Int stats.refused);
           ("timeouts", Json.Int stats.timeouts);
           ("crashes", Json.Int stats.crashes);
           ("disconnects", Json.Int stats.disconnects);
           ("read_timeouts", Json.Int stats.read_timeouts);
           ("backend_fleet", Json.Int stats.backend_fleet);
           ("backend_local", Json.Int stats.backend_local);
           ("queued", Json.Int (Queue.length pending));
           ("running", Json.Int (Hashtbl.length running));
           ("draining", Json.Bool !draining) ])
    ^ "\n"
  in
  let route conn (req : Http.request) =
    let path, params = Http.split_target req.target in
    match (req.meth, path) with
    | "GET", "/healthz" ->
      respond conn (resp ~headers:[ ("Content-Type", "text/plain") ] 200 "ok\n")
    | "GET", "/readyz" ->
      if !draining then
        respond conn
          (resp ~headers:(shed_headers cfg.retry_after) 503
             (error_body ~code:"DRAIN" "draining"))
      else if Queue.length pending >= cfg.queue then
        respond conn
          (resp ~headers:(shed_headers cfg.retry_after) 503
             (error_body ~code:"QUEUE" "admission queue full"))
      else respond conn (resp ~headers:[ ("Content-Type", "text/plain") ] 200 "ready\n")
    | "GET", "/v1/stats" -> respond conn (resp 200 (stats_body ()))
    | "POST", "/v1/check" -> admit conn req `Check params
    | "POST", "/v1/pipeline" -> admit conn req `Pipeline params
    | _, ("/healthz" | "/readyz" | "/v1/stats") ->
      stats.refused <- stats.refused + 1;
      respond conn
        (resp ~headers:(("Allow", "GET") :: json_headers) 405
           (error_body ~code:"HTTP" "method not allowed"))
    | _, ("/v1/check" | "/v1/pipeline") ->
      stats.refused <- stats.refused + 1;
      respond conn
        (resp ~headers:(("Allow", "POST") :: json_headers) 405
           (error_body ~code:"HTTP" "method not allowed"))
    | _ ->
      stats.refused <- stats.refused + 1;
      respond conn (resp 404 (error_body ~code:"HTTP" "no such endpoint"))
  in
  (* --- socket events --- *)
  let read_chunk = Bytes.create 16384 in
  let handle_conn_readable conn =
    match
      try `Read (Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk))
      with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> `Again
      | Unix.Unix_error _ -> `Closed
    with
    | `Again -> ()
    | `Closed -> abandon_conn conn
    | `Read 0 -> (
      match conn.phase with
      | Writing _ -> () (* half-close while we flush: keep writing *)
      | _ -> abandon_conn conn)
    | `Read n -> (
      match conn.phase with
      | Writing _ -> () (* pipelined extra bytes: ignored *)
      | Waiting _ -> () (* extra bytes after the request: ignored *)
      | Reading st -> (
        Http.feed st (Bytes.sub_string read_chunk 0 n);
        match Http.poll st with
        | `Await -> ()
        | `Error { Http.status; reason } ->
          stats.refused <- stats.refused + 1;
          respond conn (resp status (error_body ~code:"HTTP" reason))
        | `Request req -> route conn req))
  in
  let handle_conn_writable conn =
    match conn.phase with
    | Writing w -> (
      let len = String.length w.data - w.off in
      match
        try `Wrote (Unix.write_substring conn.fd w.data w.off len)
        with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> `Again
        | Unix.Unix_error _ -> `Closed
      with
      | `Again -> ()
      | `Closed -> close_conn conn
      | `Wrote n ->
        w.off <- w.off + n;
        if w.off >= String.length w.data then close_conn conn)
    | _ -> ()
  in
  let accept_new () =
    let rec loop () =
      match Unix.accept ~cloexec:true listen_fd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
      | fd, _addr ->
        if Hashtbl.length conns >= max_connections then close_fd fd
        else begin
          Unix.set_nonblock fd;
          Hashtbl.replace conns fd
            { fd; phase = Reading (Http.create ~limits ());
              deadline = now () +. cfg.read_timeout }
        end;
        loop ()
    in
    loop ()
  in
  let handle_job_pipes job readables =
    let drain_fd which fd =
      if List.memq fd readables then begin
        match
          try `Read (Unix.read fd read_chunk 0 (Bytes.length read_chunk))
          with
          | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> `Again
          | Unix.Unix_error _ -> `Eof
        with
        | `Again -> ()
        | `Eof | `Read 0 ->
          close_fd fd;
          (match which with
           | `Out -> job.out_fd <- None
           | `Err -> job.err_fd <- None)
        | `Read n ->
          let buf = match which with `Out -> job.out_buf | `Err -> job.err_buf in
          Buffer.add_subbytes buf read_chunk 0 n;
          if Buffer.length job.out_buf + Buffer.length job.err_buf > max_job_output
             && not job.output_overflow
          then begin
            job.output_overflow <- true;
            kill_job job
          end
      end
    in
    Option.iter (drain_fd `Out) job.out_fd;
    Option.iter (drain_fd `Err) job.err_fd
  in
  (* --- main loop --- *)
  let listen_closed = ref false in
  let close_listen () =
    if not !listen_closed then begin
      listen_closed := true;
      try Unix.close listen_fd with Unix.Unix_error _ -> ()
    end
  in
  let cleanup_and_exit code =
    close_listen ();
    Hashtbl.iter (fun _ c -> close_fd c.fd) conns;
    Hashtbl.iter
      (fun _ j ->
        kill_job j;
        (try ignore (retry_eintr (fun () -> Unix.waitpid [] j.pid))
         with Unix.Unix_error _ -> ());
        rm_rf j.dir)
      running;
    Queue.iter (fun (j : job) -> rm_rf j.dir) pending;
    rm_rf work_root;
    close_fd sig_r;
    close_fd sig_w;
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int;
    restore_pipe ();
    Sys.set_signal Sys.sigchld prev_chld;
    note
      "drained: accepted=%d completed=%d shed_queue=%d shed_tenant=%d \
       timeouts=%d crashes=%d disconnects=%d"
      stats.accepted stats.completed stats.shed_queue stats.shed_tenant
      stats.timeouts stats.crashes stats.disconnects;
    code
  in
  let rec loop () =
    (* Drain transition: stop accepting; connections still mid-read get an
       immediate 503 (their requests were never accepted); admitted jobs
       keep running and will be answered. *)
    if !drain_requested && not !draining then begin
      draining := true;
      (* Close the front door outright: late connects are refused by the
         kernel instead of rotting unaccepted in the backlog. *)
      close_listen ();
      note "drain requested: %d running, %d queued, %d connections"
        (Hashtbl.length running) (Queue.length pending) (Hashtbl.length conns);
      Hashtbl.iter
        (fun _ conn ->
          match conn.phase with
          | Reading _ ->
            stats.shed_drain <- stats.shed_drain + 1;
            respond conn
              (resp ~headers:(shed_headers cfg.retry_after) 503
                 (error_body ~code:"DRAIN" "daemon is draining"))
          | _ -> ())
        conns
    end;
    if !draining
       && Hashtbl.length running = 0
       && Queue.is_empty pending
       && Hashtbl.length conns = 0
    then cleanup_and_exit 0
    else begin
      let t = now () in
      (* Expired leases and connection deadlines. *)
      Hashtbl.iter
        (fun _ job ->
          if t >= job.lease_expiry && not job.timed_out then begin
            job.timed_out <- true;
            note "job %d: lease expired; killing process group %d" job.id job.pid;
            kill_job job
          end)
        running;
      let expired =
        Hashtbl.fold
          (fun _ conn acc -> if t >= conn.deadline then conn :: acc else acc)
          conns []
      in
      List.iter
        (fun conn ->
          match conn.phase with
          | Reading _ ->
            stats.read_timeouts <- stats.read_timeouts + 1;
            respond conn
              (resp 408 (error_body ~code:"HTTP" "timed out reading the request"))
          | Writing _ -> close_conn conn
          | Waiting _ -> ())
        expired;
      (* Reap any job whose pipes are drained. *)
      let done_jobs =
        Hashtbl.fold
          (fun _ job acc ->
            if job.out_fd = None && job.err_fd = None then job :: acc else acc)
          running []
      in
      List.iter
        (fun job ->
          match retry_eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] job.pid) with
          | 0, _ -> () (* closed its stdio but still running: wait more *)
          | exception Unix.Unix_error _ -> finish_job job (Unix.WEXITED 127)
          | _, status -> finish_job job status)
        done_jobs;
      schedule ();
      (* Build the fd sets. *)
      let reads = ref [ sig_r ] in
      let writes = ref [] in
      if not !draining then reads := listen_fd :: !reads;
      Hashtbl.iter
        (fun _ conn ->
          match conn.phase with
          | Reading _ | Waiting _ -> reads := conn.fd :: !reads
          | Writing _ -> writes := conn.fd :: !writes)
        conns;
      Hashtbl.iter
        (fun _ job ->
          Option.iter (fun fd -> reads := fd :: !reads) job.out_fd;
          Option.iter (fun fd -> reads := fd :: !reads) job.err_fd)
        running;
      (* Wake for the earliest deadline, within [5ms, 1s]. *)
      let timeout =
        let earliest =
          Hashtbl.fold (fun _ c acc -> Float.min acc c.deadline) conns
            (Hashtbl.fold (fun _ j acc -> Float.min acc j.lease_expiry) running infinity)
        in
        if earliest = infinity then 1.0
        else Float.max 0.005 (Float.min 1.0 (earliest -. t))
      in
      let readable, writable, _ =
        try Unix.select !reads !writes [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.memq sig_r readable then begin
        try
          while Unix.read sig_r read_chunk 0 16 > 0 do () done
        with Unix.Unix_error _ -> ()
      end;
      if List.memq listen_fd readable then accept_new ();
      Hashtbl.iter (fun _ job -> handle_job_pipes job readable) running;
      (* Snapshot: handlers mutate the connection table. *)
      let snapshot = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
      List.iter
        (fun conn ->
          if Hashtbl.mem conns conn.fd then begin
            if List.memq conn.fd readable then handle_conn_readable conn;
            if Hashtbl.mem conns conn.fd && List.memq conn.fd writable then
              handle_conn_writable conn
          end)
        snapshot;
      loop ()
    end
  in
  loop ()
