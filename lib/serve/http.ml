(* Incremental HTTP/1.1 request parsing for the serve daemon.  See the
   .mli for the contract; the invariant that makes the qcheck split-read
   property hold is that every verdict is a pure function of the prefix
   of bytes fed so far: header parsing is (re-)attempted on the
   accumulated buffer, the body plan is decided once at header
   completion, and a non-[`Await] verdict freezes the state. *)

type limits = {
  max_header_bytes : int;
  max_body_bytes : int;
}

let default_limits = { max_header_bytes = 16 * 1024; max_body_bytes = 8 * 1024 * 1024 }

type request = {
  meth : string;
  target : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type error = { status : int; reason : string }

(* What the headers said about the body, decided exactly once. *)
type body_plan =
  | No_body
  | Length of int
  | Chunked

type head = {
  req : request;            (* body still empty *)
  body_start : int;         (* offset of the first body byte in [acc] *)
  plan : body_plan;
}

type verdict = [ `Await | `Request of request | `Error of error ]

type state = {
  limits : limits;
  acc : Buffer.t;
  mutable head : head option;    (* parsed header block, if complete *)
  mutable final : verdict option; (* non-Await verdicts are frozen here *)
}

let create ?(limits = default_limits) () =
  { limits; acc = Buffer.create 512; head = None; final = None }

let err status reason = `Error { status; reason }

(* --- token / header syntax --------------------------------------------------- *)

let is_tchar = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9'
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' -> true
  | _ -> false

let is_token s = s <> "" && String.for_all is_tchar s

let trim_ows s =
  let n = String.length s in
  let i = ref 0 and j = ref n in
  while !i < !j && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  while !j > !i && (s.[!j - 1] = ' ' || s.[!j - 1] = '\t') do decr j done;
  String.sub s !i (!j - !i)

(* Lines are LF-terminated with an optional trailing CR: strict CRLF
   requests parse, and so do bare-LF ones from sloppy clients. *)
let split_line src ~pos =
  match String.index_from_opt src pos '\n' with
  | None -> None
  | Some nl ->
    let stop = if nl > pos && src.[nl - 1] = '\r' then nl - 1 else nl in
    Some (String.sub src pos (stop - pos), nl + 1)

(* --- header block ------------------------------------------------------------ *)

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
    if not (is_token meth) then err 400 "malformed method token"
    else if target = "" || String.exists (fun c -> c <= ' ' || c = '\127') target then
      err 400 "malformed request target"
    else if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
      if String.length version >= 5 && String.sub version 0 5 = "HTTP/" then
        err 505 "unsupported HTTP version"
      else err 400 "malformed request line"
    else `Line (meth, target, version)
  | _ -> err 400 "malformed request line"

let parse_header_field line =
  match String.index_opt line ':' with
  | None -> err 400 "malformed header field"
  | Some i ->
    let name = String.sub line 0 i in
    if not (is_token name) then err 400 "malformed header name"
    else
      let value = trim_ows (String.sub line (i + 1) (String.length line - i - 1)) in
      if String.exists (fun c -> (c < ' ' && c <> '\t') || c = '\127') value then
        err 400 "control character in header value"
      else `Field (String.lowercase_ascii name, value)

let find_all name headers =
  List.filter_map (fun (n, v) -> if n = name then Some v else None) headers

(* Decide the body plan from the complete header block.  The oversized
   declaration is refused here — before a single body byte is read. *)
let body_plan limits headers =
  let cls = find_all "content-length" headers in
  let tes = find_all "transfer-encoding" headers in
  match (cls, tes) with
  | _ :: _, _ :: _ -> err 400 "both Content-Length and Transfer-Encoding"
  | [], [] -> `Plan No_body
  | [], [ te ] when String.lowercase_ascii te = "chunked" -> `Plan Chunked
  | [], _ -> err 501 "unsupported transfer encoding"
  | cl :: rest, [] ->
    if List.exists (fun v -> v <> cl) rest then err 400 "conflicting Content-Length"
    else if cl = "" || not (String.for_all (fun c -> c >= '0' && c <= '9') cl) then
      err 400 "malformed Content-Length"
    else (
      (* > 15 digits cannot be a legitimate body and would overflow. *)
      match if String.length cl > 15 then None else int_of_string_opt cl with
      | None -> err 413 "declared body too large"
      | Some n when n > limits.max_body_bytes -> err 413 "declared body too large"
      | Some n -> `Plan (Length n))

let parse_head limits src =
  (* The header block ends at the first empty line. *)
  let rec go pos line_no acc_headers pending =
    match split_line src ~pos with
    | None ->
      if String.length src > limits.max_header_bytes then
        err 431 "header block too large"
      else `Await
    | Some (_, next) when next > limits.max_header_bytes ->
      err 431 "header block too large"
    | Some (line, next) ->
      if line = "" then begin
        match pending with
        | None -> err 400 "empty request line"
        | Some (meth, target, version) -> (
          let headers = List.rev acc_headers in
          match body_plan limits headers with
          | `Error _ as e -> e
          | `Plan plan ->
            `Head
              { req = { meth; target; version; headers; body = "" };
                body_start = next;
                plan })
      end
      else if line_no = 0 then (
        match parse_request_line line with
        | `Error _ as e -> e
        | `Line rl -> go next 1 [] (Some rl))
      else if line.[0] = ' ' || line.[0] = '\t' then
        err 400 "obsolete header folding"
      else (
        match parse_header_field line with
        | `Error _ as e -> e
        | `Field f -> go next (line_no + 1) (f :: acc_headers) pending)
  in
  go 0 0 [] None

(* --- body -------------------------------------------------------------------- *)

(* Decode a chunked body from [src] starting at [pos].  Re-run from the
   body start on every poll: decoding is linear and bodies are bounded by
   the limit, so the re-scan stays cheap, and statelessness is what makes
   the split-read property trivially true. *)
let decode_chunked limits src pos =
  let len = String.length src in
  let body = Buffer.create 256 in
  let rec chunk pos =
    match split_line src ~pos with
    | None ->
      if len - pos > 1024 then err 400 "oversized chunk-size line" else `Await
    | Some (line, _) when String.length line > 1024 ->
      (* Same verdict whether or not the line's newline has arrived yet —
         the split-read property depends on it. *)
      err 400 "oversized chunk-size line"
    | Some (line, next) ->
      let size_text =
        match String.index_opt line ';' with
        | Some i -> trim_ows (String.sub line 0 i) (* extensions ignored *)
        | None -> trim_ows line
      in
      let valid_hex =
        size_text <> "" && String.length size_text <= 7
        && String.for_all
             (function 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> true | _ -> false)
             size_text
      in
      if not valid_hex then
        if size_text <> ""
           && String.length size_text > 7
           && String.for_all
                (function 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> true | _ -> false)
                size_text
        then err 413 "chunk too large"
        else err 400 "malformed chunk size"
      else
        let size = int_of_string ("0x" ^ size_text) in
        if size = 0 then trailers next
        else if Buffer.length body + size > limits.max_body_bytes then
          err 413 "chunked body too large"
        else if next + size + 1 > len then `Await
        else begin
          Buffer.add_substring body src next size;
          (* chunk data must be followed by its own CRLF *)
          match split_line src ~pos:(next + size) with
          | None -> `Await
          | Some ("", after) -> chunk after
          | Some _ -> err 400 "malformed chunk terminator"
        end
  and trailers pos =
    match split_line src ~pos with
    | None -> if len - pos > 4096 then err 400 "oversized trailers" else `Await
    | Some ("", _) -> `Body (Buffer.contents body)
    | Some (line, _) when String.length line > 4096 -> err 400 "oversized trailers"
    | Some (line, next) -> (
      match parse_header_field line with
      | `Error _ as e -> e
      | `Field _ -> trailers next)
  in
  chunk pos

(* --- driver ------------------------------------------------------------------ *)

let compute state : verdict =
  let src = Buffer.contents state.acc in
  let head =
    match state.head with
    | Some h -> `Head h
    | None -> parse_head state.limits src
  in
  match head with
  | `Await -> `Await
  | `Error _ as e -> e
  | `Head h ->
    state.head <- Some h;
    (match h.plan with
     | No_body -> `Request h.req
     | Length n ->
       if String.length src - h.body_start >= n then
         `Request { h.req with body = String.sub src h.body_start n }
       else `Await
     | Chunked -> (
       match decode_chunked state.limits src h.body_start with
       | `Await -> `Await
       | `Error _ as e -> e
       | `Body b -> `Request { h.req with body = b }))

let poll state =
  match state.final with
  | Some v -> v
  | None -> (
    match compute state with
    | `Await -> `Await
    | v ->
      state.final <- Some v;
      v)

let feed state bytes =
  match state.final with
  | Some _ -> () (* one state parses one request *)
  | None -> Buffer.add_string state.acc bytes

(* --- accessors --------------------------------------------------------------- *)

let header req name = List.assoc_opt name req.headers

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i >= n then Buffer.contents buf
    else
      match s.[i] with
      | '+' ->
        Buffer.add_char buf ' ';
        go (i + 1)
      | '%' when i + 2 < n -> (
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          go (i + 3)
        | _ ->
          Buffer.add_char buf '%';
          go (i + 1))
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some q ->
    let path = String.sub target 0 q in
    let query = String.sub target (q + 1) (String.length target - q - 1) in
    let params =
      String.split_on_char '&' query
      |> List.filter (fun kv -> kv <> "")
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | None -> (percent_decode kv, "")
             | Some i ->
               ( percent_decode (String.sub kv 0 i),
                 percent_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))
    in
    (path, params)

(* --- responses --------------------------------------------------------------- *)

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Unknown"

let response ~status ?(headers = []) ~body () =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_phrase status));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\nConnection: close\r\n\r\n"
       (String.length body));
  Buffer.add_string buf body;
  Buffer.contents buf
