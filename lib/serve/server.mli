(** [llhsc serve]: a long-lived, overload-safe, multi-tenant HTTP
    checking daemon over the batch pipeline.

    One select-driven event loop owns every socket; checking work never
    runs in the daemon process.  Each admitted request becomes a {e job}:
    a fresh working directory holding the request's input files, plus a
    forked child (its own session/process group) that execs the llhsc
    binary itself on those files — the same code path, byte for byte, as
    the batch CLI, so a served verdict can be diffed against
    [llhsc check]/[llhsc pipeline] on the same inputs.  Pipeline jobs may
    fan out onto the supervised {!Llhsc.Shard} pool inside the child
    ([jobs] in the request body, clamped by [max_request_jobs]).

    Robustness contract (see DESIGN.md for the full table):
    - {b Bounded admission.}  At most [queue] jobs wait and [workers]
      run; a request arriving beyond that is shed {e immediately} with
      [429] + [Retry-After] — the daemon never buffers unbounded work.
    - {b Tenant quotas.}  Jobs in flight are counted per API key
      ([X-Api-Key], default tenant ["anonymous"]); a tenant at its
      [tenant_quota] is shed with [429] without touching the queue.
    - {b Request leases.}  A running job holds a lease exactly like a
      shard task: started now, expiring at now + [request_deadline];
      an expired job's process group is SIGKILLed and the client gets
      [504].
    - {b Connection hygiene.}  Slow-loris reads are cut by
      [read_timeout] ([408]); stuck writes by [write_timeout]; bodies by
      [max_body_bytes] ([413], refused at the Content-Length declaration
      when possible); header blocks by [max_header_bytes] ([431]).
      A malformed or hostile connection only ever costs its own socket.
    - {b Exactly one response.}  Every accepted request is answered
      exactly once — including when its job crashes ([500]), overruns
      its lease ([504]), or the daemon is asked to drain ([503] for
      not-yet-admitted requests).  A client that disconnects first has
      its job killed and its slot released.
    - {b Graceful drain.}  SIGTERM/SIGINT stop the accept loop, finish
      (and answer) every admitted job, then return 0. *)

type config = {
  host : string;              (** bind address, e.g. ["127.0.0.1"] *)
  port : int;                 (** 0 picks an ephemeral port *)
  workers : int;              (** max concurrently running jobs *)
  queue : int;                (** max jobs waiting for a worker slot *)
  tenant_quota : int;         (** max in-flight jobs per API key *)
  request_deadline : float option;  (** seconds per job; [None] = no lease *)
  read_timeout : float;       (** seconds to receive a complete request *)
  write_timeout : float;      (** seconds to flush a response *)
  max_body_bytes : int;
  max_header_bytes : int;
  retry_after : int;          (** seconds hinted on every 429/503 shed *)
  max_request_jobs : int;     (** clamp on the request body's [jobs] field *)
  exec : string;              (** llhsc binary to exec for each job *)
  dispatch : (string * int) list;
      (** fleet listen addresses ([--dispatch HOST:PORT,...]): each is
          reserved by at most one running pipeline job at a time, whose
          argv is rewritten to [llhsc dispatch --listen HOST:PORT ...]
          so operator-run workers execute the tasks.  Fleet trouble —
          no worker inside the registration grace, address already
          bound, workers lost mid-run — degrades to the dispatcher's
          in-process sweep; with no free address the job runs the plain
          local fork pool.  [/v1/stats] counts both backends. *)
  dispatch_secret_file : string option;
      (** passed through as the spawned dispatcher's [--secret-file] *)
  verbose : bool;             (** supervision notices on stderr *)
}

val default_config : config

(** Run the daemon until a drain signal completes; returns the process
    exit code (0 on a clean drain).  Prints one
    ["llhsc serve: listening on HOST:PORT ..."] line on stdout once the
    socket is bound (test harnesses parse it for the ephemeral port).

    Test hook: when the environment variable [LLHSC_SERVE_TEST_HOOKS=1]
    is set, the [X-Llhsc-Test-Delay-Ms] request header makes the job
    child sleep before exec'ing — deterministic queue saturation and
    deadline overruns for the smoke harness, inert in production. *)
val run : config -> int
