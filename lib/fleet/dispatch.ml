(* The fleet dispatcher: shard a task array across remote socket workers
   with the same supervision guarantees as the fork pool.

   Single-threaded nonblocking select loop.  Workers connect, handshake
   (hello -> setup -> ready, with the spec hash and task count checked
   so a worker that planned a different run is rejected before it can
   contribute a result), then receive task indices up to the per-worker
   in-flight bound.  The {!Llhsc.Supervise} core — shared with the fork
   pool — owns the pending queue, first-wins results (exactly-once
   merge), crash counts and poison quarantine; this module owns only the
   sockets.

   Remote workers cannot be SIGKILLed, so every fault collapses to one
   remedy: drop the connection and record a crash for each of its
   leases (reassigning them, or quarantining a task on its second
   crash).  That covers death, partition, hangs (lease deadline) and
   protocol violations (bad frame, bad hash, bad result) uniformly.

   Termination never depends on workers: when the live fleet falls below
   the configured floor after the registration grace, the loop exits and
   a final in-process sweep runs every unresolved task locally — a run
   that loses ALL its workers still completes, merging to the same bytes
   (each task is a deterministic closure on a fresh solver, wherever it
   runs). *)

module Json = Llhsc.Json
module Shard = Llhsc.Shard
module Supervise = Llhsc.Supervise
module Util = Llhsc.Util

type config = {
  host : string;
  port : int; (* 0 picks an ephemeral port *)
  min_workers : int; (* degrade to in-process below this floor *)
  wait_workers : float; (* registration grace before the floor applies *)
  deadline : float; (* per-task lease, seconds *)
  max_inflight : int; (* tasks leased to one worker at a time *)
  port_file : string option; (* write the bound port here (for tests) *)
  secret : string option; (* require the HMAC handshake (--secret-file) *)
  compress : bool; (* ship the spec LZ77-compressed (--compress) *)
  task_journal : string option; (* journal per-task results here *)
  resume : bool; (* replay a matching task journal before dispatching *)
}

let notice fmt =
  Format.kfprintf
    (fun f -> Format.pp_print_newline f (); Format.pp_print_flush f ())
    Format.err_formatter
    ("llhsc dispatch: " ^^ fmt)

(* How long a freshly accepted connection may dawdle before Ready; a
   connected-but-silent peer must not stall degradation forever. *)
let handshake_timeout = 10.0

type state = Awaiting_hello | Awaiting_auth | Awaiting_ready | Ready

type conn = {
  fd : Unix.file_descr;
  peer : string;
  dec : Frame.Decoder.t;
  out : Buffer.t; (* encoded frames not yet written *)
  mutable out_pos : int;
  mutable state : state;
  mutable alive : bool;
  created : float;
  leases : Supervise.Lease.t;
  mutable nonces : string * string; (* (nonce_w, nonce_d) during auth *)
  mutable cached : string list; (* spec hashes the hello advertised *)
  mutable sent_cached : bool; (* last setup sent was hash-only *)
  mutable skey : string option; (* session key once authenticated *)
  mutable seq_in : int; (* next expected worker->dispatcher MAC seq *)
  mutable seq_out : int; (* next dispatcher->worker MAC seq *)
}

let env_int name =
  match Sys.getenv_opt name with None -> None | Some v -> int_of_string_opt v

let addr_of host port =
  let ip =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  Unix.ADDR_INET (ip, port)

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | Unix.ADDR_UNIX p -> p
  | exception Unix.Unix_error _ -> "?"

(* --- protocol messages ------------------------------------------------------ *)

let msg_setup ~compress spec hash =
  Json.to_string
    (Json.Obj [ ("setup", Spec.to_wire ~compress spec); ("hash", Json.Str hash) ])

(* Bandwidth-aware setup: a worker whose hello advertised this spec hash
   already holds the built task array from an earlier session, so the
   setup carries only the hash — no spec body.  A worker that lost its
   cache replies with an error and the dispatcher falls back to shipping
   in full. *)
let msg_setup_cached hash =
  Json.to_string
    (Json.Obj
       [ ("setup", Json.Obj [ ("cached", Json.Bool true) ]);
         ("hash", Json.Str hash) ])

let setup_choice ~cached ~spec_hash =
  if List.mem spec_hash cached then `Cached else `Ship

let msg_task i = Json.to_string (Json.Obj [ ("task", Json.Int i) ])
let msg_retire = Json.to_string (Json.Obj [ ("retire", Json.Bool true) ])

(* --- task journal -----------------------------------------------------------

   Crash recovery for the dispatcher itself: every task result that wins
   the first-wins merge is appended — one CRC-checksummed JSON line, the
   same per-line framing as the pipeline journal — and fsync'd before
   the next frame is processed.  The header binds the journal to the
   spec hash and task count, so a journal from a different run (or from
   a resumed run whose product-journal skip set changed the task array)
   is ignored wholesale rather than replaying results onto the wrong
   indices.  [dispatch --resume] preloads matching records through
   {!Supervise.resolve}, which removes those tasks from the pending
   queue; a reconnecting worker that completes the same task later
   merges as a harmless duplicate. *)

let task_journal_header ~spec_hash ~n =
  Json.to_string
    (Json.Obj
       [ ("llhsc-tasks", Json.Int 1);
         ("spec", Json.Str spec_hash);
         ("count", Json.Int n) ])

(* Appended (best-effort) when a task-journal write or fsync fails: the
   dispatcher carried on without journaling, so the file is incomplete
   from an unknowable point and a resumed run must not trust it. *)
let task_degraded_json reason =
  Json.to_string (Json.Obj [ ("llhsc-tasks-degraded", Json.Str reason) ])

(* (header_matches, entries) — entries only from a matching header.  A
   journal carrying a degradation marker is refused wholesale (header
   reported as non-matching, so the caller rewrites it fresh). *)
let load_task_journal path ~spec_hash ~(tasks : Shard.task array) =
  let n = Array.length tasks in
  match open_in path with
  | exception Sys_error _ -> (false, [])
  | ic ->
    let ok_header =
      match input_line ic with
      | exception End_of_file -> false
      | line -> (
        match Json.parse line with
        | Error _ -> false
        | Ok j ->
          Json.member "llhsc-tasks" j = Some (Json.Int 1)
          && Option.bind (Json.member "spec" j) Json.to_str = Some spec_hash
          && Option.bind (Json.member "count" j) Json.to_int = Some n)
    in
    let out = ref [] in
    let degraded = ref false in
    if ok_header then begin
      try
        while true do
          let line = input_line ic in
          match Llhsc.Journal.verify_line line with
          | None -> () (* torn or corrupt record: skip *)
          | Some body -> (
            match Json.parse body with
            | Error _ -> ()
            | Ok j ->
              if Json.member "llhsc-tasks-degraded" j <> None then degraded := true
              else (
                match
                  ( Option.bind (Json.member "task" j) Json.to_int,
                    Option.bind (Json.member "r" j) Shard.result_of_json )
                with
                | Some i, Some r
                  when i >= 0 && i < n && r.Shard.product = tasks.(i).Shard.owner
                  ->
                  out := (i, r) :: !out
                | _ -> ()))
        done
      with End_of_file -> ()
    end;
    close_in ic;
    if !degraded then (false, []) else (ok_header, List.rev !out)

(* --- run -------------------------------------------------------------------- *)

let run cfg ~spec (tasks : Shard.task array) =
  let n = Array.length tasks in
  let st : Shard.result Supervise.t = Supervise.create n in
  let spec_hash = Spec.hash spec in
  let setup_payload = msg_setup ~compress:cfg.compress spec spec_hash in
  let restore_sigpipe = Util.ignore_sigpipe () in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let conns = ref ([] : conn list) in
  let degraded = ref false in
  (* Auth bookkeeping: hello nonces seen this run (replay rejection) and
     the rejected-connection count surfaced in the final stats line. *)
  let seen_nonces : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let auth_rejected = ref 0 in
  (* Spec transfers skipped because the worker's hello advertised a warm
     cache of this spec hash (bandwidth-aware scheduling). *)
  let spec_skips = ref 0 in

  (* Task journal: preload completed results on --resume, then append
     every fresh result.  Preloaded tasks leave the pending queue before
     any worker connects, so they are never dispatched again. *)
  let header_ok, preloaded =
    match cfg.task_journal with
    | Some path when cfg.resume -> load_task_journal path ~spec_hash ~tasks
    | _ -> (false, [])
  in
  List.iter (fun (i, r) -> ignore (Supervise.resolve st i r)) preloaded;
  if preloaded <> [] then
    notice "resume: replayed %d task result(s) from %s" (List.length preloaded)
      (Option.get cfg.task_journal);
  (* Fail-operational task journaling, mirroring the pipeline journal: a
     write/fsync failure stops journaling (loud notice, best-effort
     degradation marker so --resume refuses the file) but never stops the
     dispatch — the merge and the report do not depend on the journal. *)
  let tj_degraded = ref None in
  let tj_degrade oc e =
    let reason =
      match e with
      | Unix.Unix_error (err, op, _) ->
        Printf.sprintf "%s: %s" op (Unix.error_message err)
      | Sys_error m -> m
      | e -> Printexc.to_string e
    in
    tj_degraded := Some reason;
    notice
      "warning[JOURNAL] task journal %s: %s; journaling disabled for the rest \
       of the run"
      (Option.value ~default:"?" cfg.task_journal)
      reason;
    try
      output_char oc '\n';
      output_string oc (Llhsc.Journal.checksummed (task_degraded_json reason));
      output_char oc '\n';
      flush oc
    with Sys_error _ -> ()
  in
  let tj_oc =
    match cfg.task_journal with
    | None -> None
    | Some path ->
      let oc =
        if header_ok then
          open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
        else begin
          (* New run, or a stale/degraded journal (different spec/skip
             set, or a marker): start over rather than appending under a
             wrong header. *)
          let oc =
            open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path
          in
          (try
             Llhsc.Durable.out_string oc (task_journal_header ~spec_hash ~n ^ "\n")
           with (Unix.Unix_error _ | Sys_error _) as e -> tj_degrade oc e);
          oc
        end
      in
      Some oc
  in
  let tasks_recorded = ref 0 in
  let term_after = env_int "LLHSC_FAULT_TERM_AFTER_TASKS" in
  let record_task i r =
    match tj_oc with
    | None -> ()
    | Some _ when !tj_degraded <> None -> ()
    | Some oc ->
      (match
         Llhsc.Durable.out_string oc
           (Llhsc.Journal.checksummed
              (Json.to_string
                 (Json.Obj
                    [ ("task", Json.Int i); ("r", Shard.result_to_json r) ]))
           ^ "\n");
         Llhsc.Durable.sync oc
       with
       | () -> ()
       | exception ((Unix.Unix_error _ | Sys_error _) as e) -> tj_degrade oc e);
      if !tj_degraded = None then begin
        incr tasks_recorded;
        (* Test hook: raise SIGTERM in-process after the n-th record,
           exercising the CLI's graceful-interrupt + --resume path. *)
        if term_after = Some !tasks_recorded then
          Unix.kill (Unix.getpid ()) Sys.sigterm
      end
  in

  let drop_conn c reason =
    if c.alive then begin
      c.alive <- false;
      conns := List.filter (fun c' -> c' != c) !conns;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      List.iter
        (fun i ->
          Supervise.Lease.finish c.leases i;
          match Supervise.record_crash st i with
          | `Resolved -> ()
          | `Reassign ->
            notice "worker %s %s; reassigning task %d (product %s)" c.peer
              reason i tasks.(i).Shard.owner
          | `Quarantine k ->
            notice
              "task %d (product %s) crashed %d workers; quarantined as poison \
               task, will retry in-process"
              i tasks.(i).Shard.owner k)
        (Supervise.Lease.tasks c.leases)
    end
  in

  (* Flush as much of the outbuf as the socket accepts right now.  A
     write error is a lost worker: drop the connection (its leases are
     reassigned) rather than erroring the run — SIGPIPE is ignored, so a
     peer vanishing mid-write surfaces here as EPIPE/ECONNRESET. *)
  let flush_out c =
    if c.alive then begin
      let s = Buffer.contents c.out in
      let len = String.length s in
      (try
         let continue = ref true in
         while !continue && c.out_pos < len do
           match
             Util.retry_eintr (fun () ->
                 Unix.write_substring c.fd s c.out_pos (len - c.out_pos))
           with
           | 0 -> continue := false
           | k -> c.out_pos <- c.out_pos + k
           | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
             ->
             continue := false
         done
       with Unix.Unix_error _ -> drop_conn c "failed mid-write");
      if c.alive && c.out_pos >= len then begin
        Buffer.clear c.out;
        c.out_pos <- 0
      end
    end
  in

  let send c payload =
    let payload =
      match c.skey with
      | Some key ->
        let sealed = Frame.seal ~key ~seq:c.seq_out payload in
        c.seq_out <- c.seq_out + 1;
        sealed
      | None -> payload
    in
    Buffer.add_string c.out (Frame.encode payload);
    flush_out c
  in

  (* Ship the spec, or just its hash when the worker's hello advertised a
     warm cache for it — the worker rebuilds its task array from the cache
     and replies ready exactly as if the spec had been shipped. *)
  let send_setup c =
    match setup_choice ~cached:c.cached ~spec_hash with
    | `Cached ->
      c.sent_cached <- true;
      incr spec_skips;
      notice "worker %s has spec %s cached; skipping spec transfer" c.peer
        spec_hash;
      send c (msg_setup_cached spec_hash)
    | `Ship ->
      c.sent_cached <- false;
      send c setup_payload
  in

  (* Authentication failures are counted and surfaced distinctly — they
     are a property of the fleet's environment, not of any task — but
     the remedy is the usual one: the connection dies, and an
     unauthenticated peer never holds leases, never sees the spec, and
     never contributes a result. *)
  let auth_reject c reason =
    incr auth_rejected;
    notice "notice[AUTH] %s: %s" c.peer reason;
    drop_conn c "failed authentication"
  in

  (* Lease tasks to a ready worker up to the in-flight bound. *)
  let rec fill c =
    if c.alive && c.state = Ready
       && Supervise.Lease.count c.leases < cfg.max_inflight
    then
      match Supervise.next st with
      | None -> ()
      | Some i ->
        (* Lease before the (fallible) send: if the write drops the
           connection, the lease is already on the books and the crash
           path reassigns it. *)
        Supervise.Lease.start c.leases i (Unix.gettimeofday ());
        send c (msg_task i);
        fill c
  in

  let fill_all () = List.iter fill !conns in

  let handle_msg c payload =
    match Json.parse payload with
    | Error e -> drop_conn c (Printf.sprintf "sent unparsable frame (%s)" e)
    | Ok j -> (
      match c.state with
      | Awaiting_hello -> (
        match Json.member "hello" j with
        | Some hello -> (
          c.cached <-
            Option.value ~default:[]
              (Option.bind (Json.member "cached" hello) Json.to_str_list);
          match cfg.secret with
          | None ->
            c.state <- Awaiting_ready;
            send_setup c
          | Some secret -> (
            (* Challenge–response: never ship the spec to a peer that
               has not proven knowledge of the shared secret. *)
            match Option.bind (Json.member "nonce" hello) Json.to_str with
            | None -> auth_reject c "unauthenticated hello (no nonce)"
            | Some nw when Hashtbl.mem seen_nonces nw ->
              auth_reject c "replayed hello nonce"
            | Some nw ->
              Hashtbl.add seen_nonces nw ();
              let nd = Llhsc.Hmac.nonce () in
              c.nonces <- (nw, nd);
              c.state <- Awaiting_auth;
              send c
                (Json.to_string
                   (Json.Obj
                      [ ( "challenge",
                          Json.Obj
                            [ ("nonce", Json.Str nd);
                              ( "mac",
                                Json.Str
                                  (Llhsc.Hmac.to_hex
                                     (Llhsc.Hmac.hmac ~key:secret
                                        ("llhsc-disp:" ^ nw ^ ":" ^ nd))) )
                            ] ) ]))))
        | None -> drop_conn c "spoke before hello")
      | Awaiting_auth -> (
        match (Json.member "auth" j, cfg.secret) with
        | Some aj, Some secret -> (
          let nw, nd = c.nonces in
          match Option.bind (Json.member "mac" aj) Json.to_str with
          | None -> auth_reject c "auth without mac"
          | Some mac_w ->
            let expect =
              Llhsc.Hmac.to_hex
                (Llhsc.Hmac.hmac ~key:secret ("llhsc-work:" ^ nd ^ ":" ^ nw))
            in
            if Llhsc.Hmac.equal expect mac_w then begin
              c.skey <-
                Some
                  (Llhsc.Hmac.hmac ~key:secret ("llhsc-sess:" ^ nw ^ ":" ^ nd));
              c.state <- Awaiting_ready;
              send_setup c
            end
            else auth_reject c "bad auth mac")
        | _ -> auth_reject c "spoke before authenticating")
      | Awaiting_ready -> (
        match Json.member "ready" j with
        | Some r ->
          let h = Option.bind (Json.member "spec" r) Json.to_str in
          let k = Option.bind (Json.member "tasks" r) Json.to_int in
          if h = Some spec_hash && k = Some n then begin
            c.state <- Ready;
            notice "worker %s ready (%d in fleet)" c.peer
              (List.length
                 (List.filter (fun c' -> c'.state = Ready) !conns));
            fill c
          end
          else
            (* The worker planned a different run (version skew, wrong
               inputs): none of its results would be trustworthy. *)
            drop_conn c
              (Printf.sprintf "planned a different run (spec %s, %s tasks)"
                 (Option.value ~default:"?" h)
                 (match k with Some k -> string_of_int k | None -> "?"))
        | None -> (
          match Option.bind (Json.member "error" j) Json.to_str with
          | Some msg when c.sent_cached ->
            (* The worker advertised this spec but lost its cache (e.g. a
               restart between hello and setup): fall back to shipping in
               full rather than dropping a healthy worker. *)
            notice "worker %s lost its cached spec (%s); shipping in full"
              c.peer msg;
            c.sent_cached <- false;
            decr spec_skips;
            send c setup_payload
          | Some msg -> drop_conn c (Printf.sprintf "failed to plan: %s" msg)
          | None -> drop_conn c "spoke before ready"))
      | Ready -> (
        match Json.member "result" j with
        | Some r -> (
          let h = Option.bind (Json.member "spec" r) Json.to_str in
          let i = Option.bind (Json.member "task" r) Json.to_int in
          let res = Option.bind (Json.member "r" r) Shard.result_of_json in
          match (h, i, res) with
          | Some h, Some i, Some res
            when h = spec_hash && i >= 0 && i < n
                 && res.Shard.product = tasks.(i).Shard.owner -> (
            Supervise.Lease.finish c.leases i;
            match Supervise.resolve st i res with
            | `Fresh ->
              record_task i res;
              fill c
            | `Duplicate ->
              (* A reassigned task completing twice (or a duplicated
                 send): first valid result won, drop this copy. *)
              notice "duplicate result for task %d from %s ignored" i c.peer;
              fill c)
          | _ ->
            (* A result we cannot trust taints the whole connection. *)
            drop_conn c "sent an invalid result")
        | None -> (
          match Json.member "hb" j with
          | Some hb -> (
            let h = Option.bind (Json.member "spec" hb) Json.to_str in
            match Option.bind (Json.member "task" hb) Json.to_int with
            | Some i when h = Some spec_hash ->
              Supervise.Lease.beat c.leases i (Unix.gettimeofday ())
            | _ -> ())
          | None -> (
            match Option.bind (Json.member "error" j) Json.to_str with
            | Some msg -> drop_conn c (Printf.sprintf "failed: %s" msg)
            | None -> drop_conn c "sent an unknown message"))))
  in

  let handle_readable c =
    match Frame.read_chunk c.fd c.dec with
    | exception Unix.Unix_error _ -> drop_conn c "failed mid-read"
    | `Eof -> drop_conn c "disconnected"
    | `Data _ ->
      let continue = ref true in
      while c.alive && !continue do
        match Frame.Decoder.next c.dec with
        | `Awaiting -> continue := false
        | `Corrupt msg -> drop_conn c (Printf.sprintf "sent a corrupt frame (%s)" msg)
        | `Frame payload -> (
          match c.skey with
          | None -> handle_msg c payload
          | Some key -> (
            (* Post-handshake, every frame must carry the session MAC
               with the next sequence number; a forged, spliced or
               replayed frame is a dead worker, never data. *)
            match Frame.unseal ~key ~seq:c.seq_in payload with
            | None -> auth_reject c "frame MAC mismatch mid-stream"
            | Some body ->
              c.seq_in <- c.seq_in + 1;
              handle_msg c body))
      done
  in

  let accept_new () =
    match Util.retry_eintr (fun () -> Unix.accept lfd) with
    | exception Unix.Unix_error _ -> () (* EAGAIN, ECONNABORTED, ... *)
    | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      conns :=
        { fd; peer = peer_name fd; dec = Frame.Decoder.create ();
          out = Buffer.create 256; out_pos = 0; state = Awaiting_hello;
          alive = true; created = Unix.gettimeofday ();
          leases = Supervise.Lease.create (); nonces = ("", "");
          cached = []; sent_cached = false;
          skey = None; seq_in = 0; seq_out = 0 }
        :: !conns
  in

  (* Remote lease expiry: a worker can't be SIGKILLed like a fork-pool
     child, so one overdue lease condemns the whole connection — every
     lease it holds is reassigned (or quarantined). *)
  let expire now =
    List.iter
      (fun c ->
        if c.state = Ready then (
          match
            Supervise.Lease.expired c.leases ~deadline:cfg.deadline ~now
          with
          | [] -> ()
          | i :: _ ->
            notice
              "task %d (product %s): deadline of %.1fs expired; dropping hung \
               worker %s"
              i tasks.(i).Shard.owner cfg.deadline c.peer;
            drop_conn c "hung")
        else if now -. c.created > handshake_timeout then
          drop_conn c "stalled during handshake")
      !conns
  in

  let select_timeout now =
    let t = ref 0.25 in
    List.iter
      (fun c ->
        if c.state = Ready then
          match
            Supervise.Lease.next_expiry c.leases ~deadline:cfg.deadline ~now
          with
          | Some dt -> t := Float.min !t (Float.max 0. dt)
          | None -> ())
      !conns;
    !t
  in

  let supervise () =
    (* A dispatcher that cannot listen (port stolen, host misresolved)
       still completes the run: degrade straight to the in-process
       sweep instead of erroring — the serve daemon relies on this when
       it races other jobs for fleet listen addresses. *)
    (match
       Unix.setsockopt lfd Unix.SO_REUSEADDR true;
       Unix.bind lfd (addr_of cfg.host cfg.port);
       Unix.listen lfd 64;
       Unix.set_nonblock lfd
     with
    | () ->
      let bound_port =
        match Unix.getsockname lfd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      notice "listening on %s:%d (fleet floor %d, grace %.1fs)" cfg.host
        bound_port cfg.min_workers cfg.wait_workers;
      (* Atomic: a polling reader sees the old port file or the complete
         new one, never a partially-written port number. *)
      Option.iter
        (fun path ->
          Llhsc.Durable.write_file ~path (Printf.sprintf "%d\n" bound_port))
        cfg.port_file
    | exception (Unix.Unix_error _ | Failure _) ->
      degraded := true;
      notice "cannot listen on %s:%d; finishing %d task(s) in-process"
        cfg.host cfg.port
        (List.length (Supervise.unresolved st)));
    let t0 = Unix.gettimeofday () in
    while Supervise.unfinished st && not !degraded do
      let now = Unix.gettimeofday () in
      expire now;
      let live = List.length !conns in
      if now -. t0 >= cfg.wait_workers && live < cfg.min_workers then begin
        degraded := true;
        notice
          "fleet below %d worker(s) (%d connected); finishing %d task(s) \
           in-process"
          cfg.min_workers live
          (List.length (Supervise.unresolved st))
      end
      else if Supervise.unfinished st then begin
        let rfds = lfd :: List.map (fun c -> c.fd) !conns in
        let wfds =
          List.filter_map
            (fun c ->
              if Buffer.length c.out > c.out_pos then Some c.fd else None)
            !conns
        in
        match Unix.select rfds wfds [] (select_timeout now) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, writable, _ ->
          if List.memq lfd readable then accept_new ();
          List.iter
            (fun c ->
              if c.alive && List.memq c.fd writable then flush_out c)
            !conns;
          List.iter
            (fun c ->
              if c.alive && List.memq c.fd readable then handle_readable c)
            !conns;
          fill_all ()
      end
    done;
    (* Retire the surviving fleet (best effort — a worker that vanishes
       during retirement has nothing left to contribute). *)
    List.iter
      (fun c ->
        (try
           Unix.clear_nonblock c.fd;
           flush_out c;
           if c.alive then begin
             (* Retirement rides the session too: an authenticated
                worker treats an unsealed frame as an injected one. *)
             let payload =
               match c.skey with
               | Some key ->
                 let s = Frame.seal ~key ~seq:c.seq_out msg_retire in
                 c.seq_out <- c.seq_out + 1;
                 s
               | None -> msg_retire
             in
             Frame.write c.fd payload
           end
         with Unix.Unix_error _ | Sys_error _ -> ());
        try Unix.close c.fd with Unix.Unix_error _ -> ())
      !conns;
    conns := [];
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    (* In-process sweep, exactly as the fork pool's: quarantined poison
       tasks get their one local retry here, and after degradation every
       leftover task finishes locally — so the run terminates (exit 0 on
       clean inputs) even with zero workers ever connecting. *)
    List.iter
      (fun i ->
        if Supervise.is_quarantined st i then
          notice "task %d (product %s): retrying poison task in-process" i
            tasks.(i).Shard.owner;
        match Shard.run_task_guarded tasks.(i) with
        | r ->
          (match Supervise.resolve st i r with
          | `Fresh -> record_task i r
          | `Duplicate -> ())
        | exception e ->
          notice "task %d (product %s): in-process retry failed (%s)" i
            tasks.(i).Shard.owner (Printexc.to_string e))
      (Supervise.unresolved st);
    if !auth_rejected > 0 then
      notice "auth: rejected %d connection attempt(s)" !auth_rejected;
    if !spec_skips > 0 then
      notice "spec cache: skipped %d spec transfer(s) to worker(s) with a \
              warm cache" !spec_skips
  in
  let finish () =
    restore_sigpipe ();
    (* Flush-and-fsync the task journal even on SIGTERM/SIGINT — the
       interrupt arrives as an exception, and a resumed run replays
       exactly what reached the disk. *)
    Option.iter
      (fun oc ->
        try
          flush oc;
          (try Unix.fsync (Unix.descr_of_out_channel oc)
           with Unix.Unix_error _ -> ());
          close_out oc
        with Sys_error _ -> ())
      tj_oc
  in
  Fun.protect ~finally:finish supervise;
  Supervise.results st
