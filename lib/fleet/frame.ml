(* Length-framed, checksummed messages over a byte stream.

   A frame is [u32be payload-length | u32be crc32(payload) | payload].
   TCP guarantees ordered bytes but not message boundaries or payload
   integrity against bugs on either end (a worker that dies mid-write, a
   proxy that truncates); the length prefix restores boundaries and the
   CRC turns "parseable garbage" into a detectable protocol error so the
   dispatcher can drop the connection instead of merging a corrupt
   result.  The decoder is incremental: feed it whatever [read] returned
   and pull zero or more complete frames out. *)

module Util = Llhsc.Util

(* Generous cap: a shipped spec carries whole input files, but 64 MiB of
   DTS is far beyond anything real.  A length above this means a corrupt
   or hostile peer, not a big message. *)
let max_payload = 64 * 1024 * 1024

let put_u32be b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32be b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let encode payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Frame.encode: oversized payload";
  let b = Bytes.create (8 + n) in
  put_u32be b 0 n;
  put_u32be b 4 (Util.crc32 payload);
  Bytes.blit_string payload 0 b 8 n;
  Bytes.unsafe_to_string b

module Decoder = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let feed t s off n =
    if n > 0 then begin
      let need = t.len + n in
      if need > Bytes.length t.buf then begin
        let cap = ref (Bytes.length t.buf) in
        while !cap < need do
          cap := !cap * 2
        done;
        let buf = Bytes.create !cap in
        Bytes.blit t.buf 0 buf 0 t.len;
        t.buf <- buf
      end;
      Bytes.blit_string s off t.buf t.len n;
      t.len <- t.len + n
    end

  (* Drop the first [n] consumed bytes.  A plain blit keeps the decoder
     allocation-free in the steady state (one frame in, one frame out). *)
  let consume t n =
    Bytes.blit t.buf n t.buf 0 (t.len - n);
    t.len <- t.len - n

  let next t =
    if t.len < 8 then `Awaiting
    else begin
      let plen = get_u32be t.buf 0 in
      if plen > max_payload then `Corrupt "oversized frame"
      else if t.len < 8 + plen then `Awaiting
      else begin
        let crc = get_u32be t.buf 4 in
        let payload = Bytes.sub_string t.buf 8 plen in
        if Util.crc32 payload <> crc then `Corrupt "frame checksum mismatch"
        else begin
          consume t (8 + plen);
          `Frame payload
        end
      end
    end
end

(* Session MACs.  After the authenticated handshake each direction
   carries a monotonically increasing sequence number; a frame's payload
   becomes [HMAC(session_key, u64be(seq) || body) | body] with the MAC's
   32 raw bytes in front.  Binding the sequence number into the MAC
   means a mid-stream injector can neither forge frames (no key), splice
   in a recorded frame from another position (wrong seq), nor replay one
   (seq already consumed) — any of those fails [unseal] and the peer is
   handled as a dead worker, never as a source of data. *)

let mac_len = 32

let u64be v =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((v lsr (8 * (7 - i))) land 0xff))
  done;
  Bytes.unsafe_to_string b

let seal ~key ~seq body =
  Llhsc.Hmac.hmac ~key (u64be seq ^ body) ^ body

let unseal ~key ~seq payload =
  if String.length payload < mac_len then None
  else begin
    let mac = String.sub payload 0 mac_len in
    let body = String.sub payload mac_len (String.length payload - mac_len) in
    if Llhsc.Hmac.equal mac (Llhsc.Hmac.hmac ~key (u64be seq ^ body)) then
      Some body
    else None
  end

(* Blocking full write of one encoded frame.  EINTR is retried; every
   other write error (EPIPE with SIGPIPE ignored, ECONNRESET, ...)
   propagates for the caller's per-connection handling. *)
let write fd payload =
  let s = encode payload in
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    let written =
      Util.retry_eintr (fun () ->
          Unix.write_substring fd s !pos (n - !pos))
    in
    pos := !pos + written
  done

let scratch = Bytes.create 65536

(* One [read] into the decoder.  [`Eof] on a closed peer; [`Data 0] on a
   spuriously-readable nonblocking socket. *)
let read_chunk fd dec =
  match Util.retry_eintr (fun () -> Unix.read fd scratch 0 (Bytes.length scratch)) with
  | 0 -> `Eof
  | n ->
    Decoder.feed dec (Bytes.unsafe_to_string scratch) 0 n;
    `Data n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Data 0
