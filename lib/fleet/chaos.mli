(** Seeded network-chaos TCP proxy backing [llhsc chaosproxy].

    Relays client connections to an upstream dispatcher while injecting,
    per read chunk and driven by one xorshift64* stream, the listed
    fault probabilities.  Used by the fleet smoke/fault harnesses to
    assert byte-identical reports under hostile networks. *)

type config = {
  listen_host : string;
  listen_port : int; (* 0 = ephemeral *)
  upstream_host : string;
  upstream_port : int;
  port_file : string option; (* write the bound port here *)
  seed : int;
  corrupt : float; (* per-chunk probability of one flipped byte *)
  drop : float; (* per-chunk probability of killing the connection *)
  trunc : float; (* per-chunk probability of truncating the chunk *)
  stall : float; (* per-chunk probability of delaying delivery *)
  stall_ms : int;
  reorder : float; (* per-chunk probability of jumping the queue *)
  dup : float; (* per-chunk probability of delivering twice *)
  split : float; (* per-chunk probability of two separate writes *)
}

(** All probabilities 0, listen 127.0.0.1:0, seed 1. *)
val default : config

(** Run forever (terminated by signal).  Raises [Unix_error]/[Failure]
    on bind or upstream-resolution failure. *)
val run : config -> unit
