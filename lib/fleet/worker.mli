(** A fleet worker process: connect to a dispatcher, rebuild its task
    array from the shipped {!Spec}, and execute leased tasks until
    retired.

    Stateless across connections: the setup message carries everything,
    and the built task array is cached by spec hash so reconnects
    re-handshake without re-parsing.  Connection loss is survived with
    exponential-backoff reconnects (±25% seeded jitter so a restarted
    dispatcher is not hit by a thundering herd), bounded by
    [max_reconnects] {e consecutive} failures (a completed handshake
    resets the budget).  Resource guards ([mem_limit] MiB /
    [cpu_limit] seconds) are installed once at startup, like a
    fork-pool child's.

    With [secret] set, the worker requires the mutual HMAC-SHA256
    challenge–response handshake (see DESIGN.md "fleet trust"): it
    refuses specs from a dispatcher that does not prove knowledge of
    the secret, and all post-handshake frames carry session-keyed MACs.

    Fault hooks ([LLHSC_FAULT_{KILL,HANG,DROP_CONN,DELAY_RESULT,
    DUP_RESULT}_WORKER=N], test harness only) inject worker death,
    hangs, connection drops, slow results and duplicate results at task
    [N]; see [worker.ml] for exact semantics. *)

type config = {
  host : string;
  port : int option;
  port_file : string option;
      (** poll the dispatcher's [--port-file] when [port] is [None] *)
  max_reconnects : int;
  mem_limit : int option;
  cpu_limit : int option;
  secret : string option;  (** shared fleet secret ([--secret-file]) *)
}

(** Reconnect delay before attempt [attempt] (1-based consecutive
    failure count): exponential base [min 5.0 (0.2 * 2^(attempt-1))]
    with deterministic ±25% jitter drawn from [seed].  Pure; exposed
    for the bounds unit test. *)
val backoff_delay : seed:int -> attempt:int -> float

(** Serve until retired.  Returns the process exit code: 0 after a
    [retire] message, 1 when the reconnect budget is exhausted or no
    dispatcher port could be resolved. *)
val run : config -> int
