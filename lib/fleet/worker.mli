(** A fleet worker process: connect to a dispatcher, rebuild its task
    array from the shipped {!Spec}, and execute leased tasks until
    retired.

    Stateless across connections: the setup message carries everything,
    and the built task array is cached by spec hash so reconnects
    re-handshake without re-parsing.  Connection loss is survived with
    exponential-backoff reconnects, bounded by [max_reconnects]
    {e consecutive} failures (a completed handshake resets the budget).
    Resource guards ([mem_limit] MiB / [cpu_limit] seconds) are
    installed once at startup, like a fork-pool child's.

    Fault hooks ([LLHSC_FAULT_{KILL,HANG,DROP_CONN,DELAY_RESULT,
    DUP_RESULT}_WORKER=N], test harness only) inject worker death,
    hangs, connection drops, slow results and duplicate results at task
    [N]; see [worker.ml] for exact semantics. *)

type config = {
  host : string;
  port : int option;
  port_file : string option;
      (** poll the dispatcher's [--port-file] when [port] is [None] *)
  max_reconnects : int;
  mem_limit : int option;
  cpu_limit : int option;
}

(** Serve until retired.  Returns the process exit code: 0 after a
    [retire] message, 1 when the reconnect budget is exhausted or no
    dispatcher port could be resolved. *)
val run : config -> int
