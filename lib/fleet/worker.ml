(* A fleet worker: connect to a dispatcher, replan its run from the
   shipped spec, and execute leased tasks until retired.

   The worker is deliberately stateless across connections: everything
   it needs arrives in the setup message, and the task array it builds
   is cached by spec hash so a reconnect (network blip, injected drop)
   re-handshakes in microseconds instead of re-parsing.  Task results go
   back as one frame each, stamped with the spec hash and validated
   again on the dispatcher — the worker is not trusted, merely useful.

   Connection loss is survived, not fatal: exponential-backoff reconnect,
   bounded by [max_reconnects] consecutive failures (a completed
   handshake resets the counter).  A [retire] message is the one clean
   exit (code 0); exhausting reconnects exits 1 so a supervisor can tell
   "fleet finished without me" from "I was told to go".

   Fault hooks (test harness only; task index N):
     LLHSC_FAULT_KILL_WORKER=N          SIGKILL self when task N arrives
     LLHSC_FAULT_HANG_WORKER=N          heartbeat, then hang forever
     LLHSC_FAULT_DROP_CONN_WORKER=N     drop the connection mid-task,
                                        once per process, then reconnect
     LLHSC_FAULT_DELAY_RESULT_WORKER=N  sleep ~2s before sending task
                                        N's result (overlaps the
                                        dispatcher's lease deadline in
                                        tests, forcing reassignment
                                        plus a late duplicate)
     LLHSC_FAULT_DUP_RESULT_WORKER=N    send task N's result twice *)

module Json = Llhsc.Json
module Shard = Llhsc.Shard
module Util = Llhsc.Util

type config = {
  host : string;
  port : int option;
  port_file : string option; (* read the port from here when [port] is None *)
  max_reconnects : int;
  mem_limit : int option;
  cpu_limit : int option;
  secret : string option; (* shared fleet secret (--secret-file) *)
}

let notice fmt =
  Format.kfprintf
    (fun f -> Format.pp_print_newline f (); Format.pp_print_flush f ())
    Format.err_formatter
    ("llhsc worker: " ^^ fmt)

let env_int name =
  match Sys.getenv_opt name with None -> None | Some v -> int_of_string_opt v

exception Protocol of string
exception Retired
exception Dropped (* injected connection drop; reconnect *)

let read_port_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let r = try int_of_string_opt (String.trim (input_line ic)) with _ -> None in
    close_in ic;
    r

(* The dispatcher writes the port file after binding; give it a moment. *)
let resolve_port cfg =
  match (cfg.port, cfg.port_file) with
  | Some p, _ -> Some p
  | None, Some path ->
    let rec wait tries =
      match read_port_file path with
      | Some p -> Some p
      | None when tries > 0 ->
        Unix.sleepf 0.1;
        wait (tries - 1)
      | None -> None
    in
    wait 100
  | None, None -> None

let connect cfg =
  match resolve_port cfg with
  | None -> failwith "no dispatcher port: need --connect HOST:PORT or --port-file"
  | Some port ->
    let ip =
      try Unix.inet_addr_of_string cfg.host
      with Failure _ -> (
        try (Unix.gethostbyname cfg.host).Unix.h_addr_list.(0)
        with Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" cfg.host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (ip, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    fd

(* Reconnect delay before attempt [attempt]: exponential base capped at
   5 s, with deterministic ±25% jitter drawn from (seed, attempt) so a
   restarted dispatcher sees its workers trickle back instead of a
   thundering herd of synchronized reconnects.  Pure (exposed for the
   bounds unit test); [run] seeds it with the worker's pid. *)
let backoff_delay ~seed ~attempt =
  let base = Float.min 5.0 (0.2 *. (2. ** float_of_int (attempt - 1))) in
  let x =
    ref (Int64.logxor 0x9E3779B97F4A7C15L (Int64.of_int ((seed * 1000003) + attempt)))
  in
  if !x = 0L then x := 1L;
  for _ = 1 to 3 do
    x := Int64.logxor !x (Int64.shift_left !x 13);
    x := Int64.logxor !x (Int64.shift_right_logical !x 7);
    x := Int64.logxor !x (Int64.shift_left !x 17)
  done;
  let u =
    Int64.to_float (Int64.shift_right_logical (Int64.mul !x 0x2545F4914F6CDD1DL) 11)
    /. 9007199254740992.0
  in
  base *. (0.75 +. (0.5 *. u))

(* Blocking: next complete frame, [None] on EOF. *)
let next_frame fd dec =
  let rec go () =
    match Frame.Decoder.next dec with
    | `Frame p -> Some p
    | `Corrupt msg -> raise (Protocol msg)
    | `Awaiting -> (
      match Frame.read_chunk fd dec with
      | `Eof -> None
      | `Data _ -> go ())
  in
  go ()

(* One connection's lifetime: hello (with a fresh nonce when a secret
   is configured), the mutual HMAC challenge–response, build (or reuse)
   the task array, then serve task messages until retire/EOF.  Returns
   [true] when the handshake completed (resets the reconnect budget).

   Auth protocol (see DESIGN.md "fleet trust"): the worker's hello
   carries nonce_w; a secret-holding dispatcher replies with
   {challenge: {nonce: nonce_d, mac: HMAC(secret, "llhsc-disp:" ^
   nonce_w ^ ":" ^ nonce_d)}}; the worker verifies (constant-time) and
   answers {auth: {mac: HMAC(secret, "llhsc-work:" ^ nonce_d ^ ":" ^
   nonce_w)}}.  Both sides then derive session_key = HMAC(secret,
   "llhsc-sess:" ^ nonce_w ^ ":" ^ nonce_d) and every further frame in
   each direction is sealed with the session key and a per-direction
   sequence number ({!Frame.seal}).  A secret-configured worker never
   accepts a spec from a dispatcher that did not complete the
   challenge. *)
let session fd ~secret ~cache ~drop_fired =
  let kill_at = env_int "LLHSC_FAULT_KILL_WORKER" in
  let hang_at = env_int "LLHSC_FAULT_HANG_WORKER" in
  let drop_at = env_int "LLHSC_FAULT_DROP_CONN_WORKER" in
  let delay_at = env_int "LLHSC_FAULT_DELAY_RESULT_WORKER" in
  let dup_at = env_int "LLHSC_FAULT_DUP_RESULT_WORKER" in
  let dec = Frame.Decoder.create () in
  let handshaken = ref false in
  let spec_hash = ref "" in
  let tasks = ref [||] in
  let skey = ref None in
  let seq_in = ref 0 and seq_out = ref 0 in
  let nonce_w =
    match secret with Some _ -> Some (Llhsc.Hmac.nonce ()) | None -> None
  in
  let send_msg j =
    let body = Json.to_string j in
    match !skey with
    | Some key ->
      Frame.write fd (Frame.seal ~key ~seq:!seq_out body);
      incr seq_out
    | None -> Frame.write fd body
  in
  (* Advertise which spec hashes we already hold so the dispatcher can
     skip re-shipping the spec body on reconnect (bandwidth-aware
     scheduling; it sends a hash-only setup and we answer from cache). *)
  send_msg
    (Json.Obj
       [ ( "hello",
           Json.Obj
             (("pid", Json.Int (Unix.getpid ()))
             :: ( "cached",
                  Json.List
                    (match !cache with
                    | Some (h, _) -> [ Json.Str h ]
                    | None -> []) )
             ::
             (match nonce_w with
             | Some n -> [ ("nonce", Json.Str n) ]
             | None -> [])) ) ]);
  let handle j =
    match Json.member "challenge" j with
    | Some cj -> (
      match (secret, nonce_w) with
      | Some secret, Some nw ->
        let nd =
          match Option.bind (Json.member "nonce" cj) Json.to_str with
          | Some n -> n
          | None -> raise (Protocol "challenge without nonce")
        in
        let mac_d =
          match Option.bind (Json.member "mac" cj) Json.to_str with
          | Some m -> m
          | None -> raise (Protocol "challenge without mac")
        in
        let expect =
          Llhsc.Hmac.to_hex
            (Llhsc.Hmac.hmac ~key:secret ("llhsc-disp:" ^ nw ^ ":" ^ nd))
        in
        if not (Llhsc.Hmac.equal expect mac_d) then
          raise (Protocol "dispatcher failed authentication");
        send_msg
          (Json.Obj
             [ ( "auth",
                 Json.Obj
                   [ ( "mac",
                       Json.Str
                         (Llhsc.Hmac.to_hex
                            (Llhsc.Hmac.hmac ~key:secret
                               ("llhsc-work:" ^ nd ^ ":" ^ nw))) ) ] ) ]);
        skey :=
          Some (Llhsc.Hmac.hmac ~key:secret ("llhsc-sess:" ^ nw ^ ":" ^ nd))
      | _ ->
        raise (Protocol "dispatcher requires authentication (--secret-file)"))
    | None -> (
      match Json.member "setup" j with
      | Some sj -> (
        if secret <> None && !skey = None then
          raise (Protocol "dispatcher did not authenticate");
        let h =
          match Option.bind (Json.member "hash" j) Json.to_str with
          | Some h -> h
          | None -> raise (Protocol "setup without hash")
        in
        let cached_only =
          match Json.member "cached" sj with
          | Some (Json.Bool true) -> true
          | _ -> false
        in
        let built =
          match !cache with
          | Some (h', ts) when h' = h -> Ok ts
          | _ ->
            (* A hash-only setup with a cold cache (e.g. the worker
               restarted between hello and setup) cannot be planned;
               the dispatcher falls back to shipping the full spec. *)
            if cached_only then Error "spec not cached"
            else (
              match Spec.of_wire sj with
              | None -> Error "malformed spec"
              | Some spec ->
                if Spec.hash spec <> h then Error "spec hash mismatch"
                else Spec.build spec)
        in
        match built with
        | Error msg ->
          send_msg (Json.Obj [ ("error", Json.Str msg) ]);
          notice "cannot plan the shipped run: %s" msg
        | Ok ts ->
          cache := Some (h, ts);
          spec_hash := h;
          tasks := ts;
          handshaken := true;
          send_msg
            (Json.Obj
               [ ( "ready",
                   Json.Obj
                     [ ("spec", Json.Str h);
                       ("tasks", Json.Int (Array.length ts)) ] ) ]))
      | None -> (
        match Option.bind (Json.member "task" j) Json.to_int with
        | Some i ->
          if i < 0 || i >= Array.length !tasks then
            raise (Protocol (Printf.sprintf "task %d out of range" i));
          if kill_at = Some i then Unix.kill (Unix.getpid ()) Sys.sigkill;
          send_msg
            (Json.Obj
               [ ( "hb",
                   Json.Obj
                     [ ("task", Json.Int i); ("spec", Json.Str !spec_hash) ] )
               ]);
          if hang_at = Some i then
            while true do
              Unix.sleep 3600
            done;
          if drop_at = Some i && not !drop_fired then begin
            drop_fired := true;
            raise Dropped
          end;
          let r = Shard.run_task_guarded !tasks.(i) in
          if delay_at = Some i then Unix.sleepf 2.0;
          let msg =
            Json.Obj
              [ ( "result",
                  Json.Obj
                    [ ("task", Json.Int i);
                      ("spec", Json.Str !spec_hash);
                      ("r", Shard.result_to_json r) ] ) ]
          in
          send_msg msg;
          if dup_at = Some i then send_msg msg
        | None ->
          if Json.member "retire" j <> None then raise Retired
          else raise (Protocol "unknown message")))
  in
  let recv () =
    match next_frame fd dec with
    | None -> None
    | Some payload -> (
      match !skey with
      | None -> Some payload
      | Some key -> (
        match Frame.unseal ~key ~seq:!seq_in payload with
        | None -> raise (Protocol "frame MAC mismatch")
        | Some body ->
          incr seq_in;
          Some body))
  in
  let rec loop () =
    match recv () with
    | None -> ()
    | Some payload -> (
      match Json.parse payload with
      | Error e -> raise (Protocol ("unparsable frame: " ^ e))
      | Ok j ->
        handle j;
        loop ())
  in
  loop ();
  !handshaken

let run cfg =
  Shard.install_guards ~mem_limit:cfg.mem_limit ~cpu_limit:cfg.cpu_limit;
  let restore_sigpipe = Util.ignore_sigpipe () in
  let cache = ref None in
  let drop_fired = ref false in
  let failures = ref 0 in
  let code = ref 1 in
  (try
     let again = ref true in
     while !again do
       (match
          let fd = connect cfg in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> session fd ~secret:cfg.secret ~cache ~drop_fired)
        with
        | handshaken -> if handshaken then failures := 0 else incr failures
        | exception Retired ->
          notice "retired by dispatcher";
          code := 0;
          again := false
        | exception Dropped ->
          notice "injected connection drop; reconnecting"
          (* not a failure: the hook wants an immediate reconnect *)
        | exception Protocol msg ->
          notice "protocol error: %s" msg;
          incr failures
        | exception Unix.Unix_error (e, _, _) ->
          notice "connection failed: %s" (Unix.error_message e);
          incr failures);
       if !again then
         if !failures > cfg.max_reconnects then begin
           notice "reconnect budget (%d) exhausted; giving up" cfg.max_reconnects;
           again := false
         end
         else if !failures > 0 then
           Unix.sleepf
             (backoff_delay ~seed:(Unix.getpid ()) ~attempt:!failures)
     done
   with Failure msg ->
     notice "%s" msg);
  restore_sigpipe ();
  !code
