(** Length-framed, checksummed messages over a byte stream.

    One frame is [u32be length | u32be crc32(payload) | payload].  The
    length restores message boundaries over TCP; the CRC (same IEEE
    802.3 polynomial as the journal's per-line checksum) turns silent
    payload corruption into a detectable protocol error, so a fleet peer
    drops the connection instead of acting on garbage. *)

(** Hard cap on one payload (64 MiB).  A declared length above this is
    reported as [`Corrupt] without buffering. *)
val max_payload : int

(** Encode one payload as a complete frame.  Raises [Invalid_argument]
    above {!max_payload}. *)
val encode : string -> string

(** Incremental frame parser: feed raw bytes in whatever chunks the
    socket produced, pull complete frames out. *)
module Decoder : sig
  type t

  val create : unit -> t

  (** [feed t s off n] appends [n] bytes of [s] starting at [off]. *)
  val feed : t -> string -> int -> int -> unit

  (** Extract the next complete frame, if any.  [`Corrupt] (bad length
      or checksum) is sticky in practice: the stream cannot be
      resynchronised, so the caller should drop the connection. *)
  val next : t -> [ `Frame of string | `Awaiting | `Corrupt of string ]
end

(** {1 Session MACs}

    After the authenticated handshake (see {!Dispatch}/{!Worker}) every
    frame body is prefixed with
    [HMAC-SHA256(session_key, u64be(seq) || body)] — 32 raw bytes —
    where [seq] counts frames per direction.  Forged, spliced, and
    replayed frames all fail {!unseal} and collapse to dead-worker
    handling. *)

(** Byte length of the MAC prefix (32). *)
val mac_len : int

val seal : key:string -> seq:int -> string -> string

(** [None] if the payload is too short or the MAC does not verify
    (constant-time compare). *)
val unseal : key:string -> seq:int -> string -> string option

(** Blocking write of one complete frame.  Retries [EINTR]; any other
    error ([EPIPE], [ECONNRESET], ...) propagates as [Unix_error] for
    per-connection handling — fleet processes run with SIGPIPE ignored. *)
val write : Unix.file_descr -> string -> unit

(** One [read(2)] into the decoder: [`Eof] on a closed peer, [`Data n]
    otherwise ([`Data 0] for a spuriously-readable nonblocking fd). *)
val read_chunk : Unix.file_descr -> Decoder.t -> [ `Eof | `Data of int ]
