(** Dependency-free LZ77 + base64 used by [dispatch --compress] to
    shrink shipped specs.  Decoding functions validate everything and
    return [None] on malformed input — they consume bytes straight off
    the wire. *)

val compress : string -> string
val decompress : string -> string option

val to_base64 : string -> string
val of_base64 : string -> string option
