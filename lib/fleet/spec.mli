(** The shippable description of one pipeline run.

    Closures cannot cross a socket, so fleet mode ships {e inputs}: the
    raw bytes of every file the run depends on plus its verdict-affecting
    flags, as one JSON value.  A worker feeds the shipped texts through
    the same parsers the CLI uses on the original files (keeping the
    original file-name strings, so diagnostic locations match
    byte-for-byte) and replans with [Pipeline.plan_tasks] — deterministic
    in these inputs — to obtain a task array identical to the
    dispatcher's.  {!hash} digests the canonical JSON rendering and rides
    on every protocol message as proof both sides planned the same run. *)

type input = { file : string; text : string }

type t = {
  core : input;
  deltas : input;
  model : string;  (** feature model source text *)
  schemas : string list;  (** schema texts, pre-sorted by file name *)
  files : (string * string) list;  (** /include/ name -> contents *)
  vms : string list list;
  exclusive : string list;
  certify : bool;
  retry : int option;
  max_conflicts : int option;
  solver_timeout : float option;
  unsound : string option;
  skip : string list;
      (** products the dispatcher replayed from its resume journal;
          workers plan them as no-work products (see
          [Pipeline.plan_tasks]) *)
}

val to_json : t -> Llhsc.Json.t

(** [None] on a structurally invalid encoding. *)
val of_json : Llhsc.Json.t -> t option

(** Digest of the canonical JSON rendering; the protocol's spec identity.
    Always computed over the uncompressed form, so compressed and plain
    transports agree. *)
val hash : t -> string

(** Wire encoding: canonical JSON, or with [~compress:true] an
    [{"z": base64(lz77(json))}] envelope ([dispatch --compress]). *)
val to_wire : ?compress:bool -> t -> Llhsc.Json.t

(** Decode either wire form; [None] on structural, base64, or LZ
    corruption. *)
val of_wire : Llhsc.Json.t -> t option

(** Parse the shipped inputs and rebuild the dispatcher's task array.
    [Error msg] when the texts do not parse or a flag is malformed —
    version skew or corruption, since the dispatcher parsed the same
    bytes successfully. *)
val build : t -> (Llhsc.Shard.task array, string) result
