(* Dependency-free LZ77 for spec shipping (`dispatch --compress`).
   Specs carry whole DTS/YAML file bodies, which are highly repetitive;
   a greedy single-candidate LZ77 with a 64 KiB window recovers most of
   the easy redundancy without pulling in zlib.

   Token stream:
     control byte c < 0x80  -> literal run of (c + 1) bytes follows
     control byte c >= 0x80 -> match of length (c land 0x7f) + 4
                               (4..131), followed by u16be distance
                               (1..65535) back from the current output
                               position.

   [decompress] validates every distance/length against the bytes
   produced so far and returns [None] on any malformed input — the
   worker feeds it bytes straight off the wire. *)

let max_dist = 65535
let max_len = 131
let min_len = 4

let compress s =
  let n = String.length s in
  let out = Buffer.create ((n / 2) + 16) in
  let lits = Buffer.create 128 in
  let flush_lits () =
    let l = Buffer.contents lits in
    Buffer.clear lits;
    let len = String.length l in
    let i = ref 0 in
    while !i < len do
      let run = min 128 (len - !i) in
      Buffer.add_char out (Char.chr (run - 1));
      Buffer.add_substring out l !i run;
      i := !i + run
    done
  in
  (* Most recent position of each 4-byte prefix hash. *)
  let tbl = Hashtbl.create 4096 in
  let key i =
    (Char.code s.[i] lsl 24)
    lor (Char.code s.[i + 1] lsl 16)
    lor (Char.code s.[i + 2] lsl 8)
    lor Char.code s.[i + 3]
  in
  let i = ref 0 in
  while !i < n do
    let emitted =
      if !i + min_len <= n then begin
        let k = key !i in
        let cand = Hashtbl.find_opt tbl k in
        Hashtbl.replace tbl k !i;
        match cand with
        | Some j when !i - j <= max_dist ->
          let limit = min max_len (n - !i) in
          let len = ref 0 in
          while !len < limit && s.[j + !len] = s.[!i + !len] do incr len done;
          if !len >= min_len then begin
            flush_lits ();
            let dist = !i - j in
            Buffer.add_char out (Char.chr (0x80 lor (!len - min_len)));
            Buffer.add_char out (Char.chr (dist lsr 8));
            Buffer.add_char out (Char.chr (dist land 0xff));
            (* Seed the table inside the match so later repeats of its
               interior can still be found. *)
            let stop = min (!i + !len) (n - min_len) in
            let p = ref (!i + 1) in
            while !p < stop do
              Hashtbl.replace tbl (key !p) !p;
              incr p
            done;
            i := !i + !len;
            true
          end
          else false
        | _ -> false
      end
      else false
    in
    if not emitted then begin
      Buffer.add_char lits s.[!i];
      incr i
    end
  done;
  flush_lits ();
  Buffer.contents out

let decompress s =
  let n = String.length s in
  let out = Buffer.create (n * 2) in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    let c = Char.code s.[!i] in
    incr i;
    if c < 0x80 then begin
      let len = c + 1 in
      if !i + len > n then ok := false
      else begin
        Buffer.add_substring out s !i len;
        i := !i + len
      end
    end
    else begin
      let len = (c land 0x7f) + min_len in
      if !i + 2 > n then ok := false
      else begin
        let dist = (Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1] in
        i := !i + 2;
        if dist = 0 || dist > Buffer.length out then ok := false
        else
          (* Byte-at-a-time so overlapping matches (dist < len)
             replicate correctly. *)
          for _ = 1 to len do
            Buffer.add_char out (Buffer.nth out (Buffer.length out - dist))
          done
      end
    end
  done;
  if !ok then Some (Buffer.contents out) else None

(* Minimal base64 (RFC 4648, with padding) so compressed bytes can ride
   inside a JSON string. *)
let b64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let to_base64 s =
  let n = String.length s in
  let out = Buffer.create (((n + 2) / 3) * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let x =
      (Char.code s.[!i] lsl 16) lor (Char.code s.[!i + 1] lsl 8)
      lor Char.code s.[!i + 2]
    in
    Buffer.add_char out b64_alphabet.[(x lsr 18) land 63];
    Buffer.add_char out b64_alphabet.[(x lsr 12) land 63];
    Buffer.add_char out b64_alphabet.[(x lsr 6) land 63];
    Buffer.add_char out b64_alphabet.[x land 63];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
    let x = Char.code s.[!i] lsl 16 in
    Buffer.add_char out b64_alphabet.[(x lsr 18) land 63];
    Buffer.add_char out b64_alphabet.[(x lsr 12) land 63];
    Buffer.add_string out "=="
  | 2 ->
    let x = (Char.code s.[!i] lsl 16) lor (Char.code s.[!i + 1] lsl 8) in
    Buffer.add_char out b64_alphabet.[(x lsr 18) land 63];
    Buffer.add_char out b64_alphabet.[(x lsr 12) land 63];
    Buffer.add_char out b64_alphabet.[(x lsr 6) land 63];
    Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

let b64_value = function
  | 'A' .. 'Z' as c -> Some (Char.code c - 65)
  | 'a' .. 'z' as c -> Some (Char.code c - 97 + 26)
  | '0' .. '9' as c -> Some (Char.code c - 48 + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let of_base64 s =
  let n = String.length s in
  (* Strip padding. *)
  let n = if n > 0 && s.[n - 1] = '=' then n - 1 else n in
  let n = if n > 0 && s.[n - 1] = '=' then n - 1 else n in
  if n mod 4 = 1 then None
  else begin
    let out = Buffer.create ((n * 3) / 4) in
    let acc = ref 0 and bits = ref 0 in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      (match b64_value s.[!i] with
      | None -> ok := false
      | Some v ->
        acc := (!acc lsl 6) lor v;
        bits := !bits + 6;
        if !bits >= 8 then begin
          bits := !bits - 8;
          Buffer.add_char out (Char.chr ((!acc lsr !bits) land 0xff))
        end);
      incr i
    done;
    if !ok then Some (Buffer.contents out) else None
  end
